package genedit_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"genedit"
	"genedit/internal/feedback"
)

// TestGenerationCacheDisabledMatchesEnabled: with the cache off the service
// reproduces uncached behavior exactly; with it on, responses carry the
// identical SQL with the shared Record, and repeats are flagged Cached.
func TestGenerationCacheDisabledMatchesEnabled(t *testing.T) {
	ctx := context.Background()
	suite := genedit.NewBenchmark(1)
	plain := genedit.NewService(suite, genedit.WithModelSeed(42))
	cached := genedit.NewService(suite, genedit.WithModelSeed(42), genedit.WithGenerationCache(128))
	zero := genedit.NewService(suite, genedit.WithModelSeed(42), genedit.WithGenerationCache(0))

	if plain.GenerationCacheEnabled() || zero.GenerationCacheEnabled() {
		t.Fatal("cache should be disabled by default and at size 0")
	}
	if !cached.GenerationCacheEnabled() {
		t.Fatal("WithGenerationCache(128) should enable the cache")
	}

	for i, c := range dbCases(suite) {
		if i >= 6 {
			break
		}
		req := genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence}
		want, err := plain.Generate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		zresp, err := zero.Generate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if zresp.SQL != want.SQL || zresp.OK != want.OK || zresp.Cached {
			t.Errorf("case %s: size-0 cache diverged from uncached serving", c.ID)
		}
		first, err := cached.Generate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		second, err := cached.Generate(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if first.Cached {
			t.Errorf("case %s: first request reported Cached", c.ID)
		}
		if !second.Cached {
			t.Errorf("case %s: repeat request not served from cache", c.ID)
		}
		if first.SQL != want.SQL || second.SQL != want.SQL {
			t.Errorf("case %s: cached SQL %q / %q, want %q", c.ID, first.SQL, second.SQL, want.SQL)
		}
		if first.Record != second.Record {
			t.Errorf("case %s: cache hit did not share the Record", c.ID)
		}
	}
	st := cached.GenerationCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("cache stats = %+v, want hits and misses", st)
	}
}

// TestCoalescedGenerateSharesOneRecord fires many concurrent identical cold
// requests and checks they all resolve to the same shared Record — one
// pipeline run, not N.
func TestCoalescedGenerateSharesOneRecord(t *testing.T) {
	ctx := context.Background()
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, genedit.WithModelSeed(42), genedit.WithGenerationCache(128))
	c := dbCases(suite)[0]

	// Prewarm the engine so workers race on the generation, not the build.
	if _, err := svc.Engine(ctx, storeDB); err != nil {
		t.Fatal(err)
	}

	const workers = 12
	recs := make([]*genedit.Record, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			recs[i] = resp.Record
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if recs[i] != recs[0] {
			t.Fatalf("worker %d resolved a different Record than worker 0", i)
		}
	}
	st := svc.GenerationCacheStats()
	if st.Misses != 1 {
		t.Errorf("stats = %+v, want exactly one generation (miss)", st)
	}
	if st.Hits+st.Coalesced != workers-1 {
		t.Errorf("stats = %+v, want %d shared servings", st, workers-1)
	}
}

// TestConcurrentGenerateHotSwapClose is the serving-path stress test:
// concurrent Generate traffic (cache hits and misses) interleaved with
// Approve-driven engine hot-swaps and a final Close, run under -race in CI.
// It asserts the version-keyed cache contract: a question answered (and
// cached) before a swap is re-generated against the new knowledge version
// after it — post-swap requests never see pre-swap records.
func TestConcurrentGenerateHotSwapClose(t *testing.T) {
	ctx := context.Background()
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite,
		genedit.WithModelSeed(42),
		genedit.WithGenerationCache(512),
		genedit.WithStorePath(t.TempDir()))

	cases := dbCases(suite)
	if len(cases) < 8 {
		t.Fatalf("need at least 8 cases for %s, have %d", storeDB, len(cases))
	}
	// Workers replay the first few questions (hits after the first pass)
	// plus unique variants (misses); the feedback loop scans the rest.
	hotCases, swapCases := cases[:4], cases[4:]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c := hotCases[(w+i)%len(hotCases)]
				q := c.Question
				if i%3 == 2 {
					// A never-repeated spelling: exercises the miss path and
					// LRU churn alongside the hits.
					q = fmt.Sprintf("%s (variant %d-%d)", q, w, i)
				}
				if _, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: q, Evidence: c.Evidence}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Drive one full feedback session to an approval while traffic flows.
	solver, err := svc.Solver(ctx, storeDB, goldenOf(suite))
	if err != nil {
		t.Fatal(err)
	}
	sme := feedback.NewSimulatedSME(7)
	swapped := false
	for _, c := range swapCases {
		pre, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		// Cache the question pre-swap (a second call must hit).
		pre2, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		if !pre2.Cached || pre2.Record != pre.Record {
			t.Fatalf("case %s: expected pre-swap repeat to be cached", c.ID)
		}
		sess, err := solver.OpenContext(ctx, c.Question, c.Evidence)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := sess.Feedback(sme.FeedbackFor(c, sess.Record))
		if err != nil {
			t.Fatal(err)
		}
		staged, _ := sme.ReviewEdits(c, fb.Edits)
		sess.Stage(staged...)
		regen, err := sess.RegenerateContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if regen.FinalSQL == pre.SQL {
			continue // the merge would not change this question's answer
		}
		res, err := sess.SubmitContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed {
			continue
		}
		if err := solver.Approve(res.Pending, "reviewer"); err != nil {
			t.Fatal(err)
		}
		// Version-key isolation: the post-swap request must be re-generated
		// against the new knowledge version, not served the stale record.
		post, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		if post.Record == pre.Record {
			t.Fatalf("case %s: post-swap request served the pre-swap record", c.ID)
		}
		if post.SQL != regen.FinalSQL {
			t.Errorf("case %s: post-swap SQL %q, want regenerated %q", c.ID, post.SQL, regen.FinalSQL)
		}
		swapped = true
		break
	}
	if !swapped {
		t.Fatal("no hot-swap was exercised (no approvable change altered its question's SQL)")
	}

	close(stop)
	wg.Wait()

	// Close while a last burst of requests is in flight: in-flight and
	// post-Close generations run on in-memory engines and must not fail.
	var cg sync.WaitGroup
	for i := 0; i < 4; i++ {
		cg.Add(1)
		go func(i int) {
			defer cg.Done()
			c := hotCases[i%len(hotCases)]
			if _, err := svc.Generate(ctx, genedit.Request{Database: storeDB, Question: c.Question, Evidence: c.Evidence}); err != nil {
				t.Errorf("generate during close: %v", err)
			}
		}(i)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	cg.Wait()

	st := svc.GenerationCacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("stress run recorded no cache traffic: %+v", st)
	}
}
