package genedit

import (
	"context"
	"errors"
	"sync"
	"time"

	"genedit/internal/admission"
	"genedit/internal/embed"
	"genedit/internal/kstore"
	"genedit/internal/metrics"
	"genedit/internal/pipeline"
)

// TenantStats is one tenant's admission record (see AdmissionStats.Tenants).
type TenantStats = admission.TenantStats

// WithMetrics routes the service's instrumentation into reg. Without this
// option every service reports into the process-global metrics.Default()
// registry — the right sink for a long-lived daemon holding one service.
// Tests (and any process holding several services) that assert exact
// counter values should pass their own metrics.NewRegistry so concurrent
// services cannot bridge over each other's series.
func WithMetrics(reg *metrics.Registry) Option {
	return func(s *Service) { s.mreg = reg }
}

// WithOperatorSampling turns on per-operator pipeline timing metrics
// (genedit_operator_duration_seconds): every nth Generate request runs with
// a trace hook that feeds the operator histograms. n <= 0 (the default)
// disables sampling.
//
// Sampling is deliberately opt-in and sparse because tracing is not free at
// the caching layer: the generation cache's contract is that a traced
// request reports timings of an actual pipeline run, so traced requests
// bypass the cache and are not inserted into it. A sampled request
// therefore always pays full pipeline cost. Requests already traced via
// WithTrace or WithTraceContext feed the same histograms at no extra cost
// (they bypass the cache anyway).
func WithOperatorSampling(n int) Option {
	return func(s *Service) { s.opSampleEvery = n }
}

// Metrics returns the registry this service reports into (never nil).
// geneditd exposes it on GET /metrics and derives /v1/stats from its
// Gather snapshot.
func (s *Service) Metrics() *metrics.Registry { return s.mreg }

// requestOutcomes is the closed outcome vocabulary of
// genedit_requests_total — closed so the label stays low-cardinality and
// dashboards can enumerate it.
var requestOutcomes = []string{
	"ok",           // generation succeeded and the SQL executed
	"failed_sql",   // generation completed but the final SQL failed (syntax or exec)
	"stale",        // shed request degraded onto a cached prior-version answer
	"rate_limited", // shed by the tenant's token bucket (429)
	"overloaded",   // shed for capacity: queue full, deadline, shutdown (503)
	"canceled",     // caller's context died
	"error",        // everything else (engine build failure, operator error)
}

// serviceMetrics is the service's resolved instrument set. Per-db children
// are cached in perDB so the steady-state Generate path is a map load plus
// one atomic add (and one histogram observe on success).
type serviceMetrics struct {
	requests  *metrics.CounterVec   // genedit_requests_total{db,outcome}
	latency   *metrics.HistogramVec // genedit_request_duration_seconds{db}
	opLatency *metrics.HistogramVec // genedit_operator_duration_seconds{db,operator}
	perDB     sync.Map              // db -> *dbMetrics
}

// dbMetrics is one database's resolved children, outcome counters
// pre-resolved for the whole closed vocabulary.
type dbMetrics struct {
	outcomes map[string]*metrics.Counter
	latency  *metrics.Histogram
}

func (m *serviceMetrics) forDB(db string) *dbMetrics {
	if v, ok := m.perDB.Load(db); ok {
		return v.(*dbMetrics)
	}
	d := &dbMetrics{
		outcomes: make(map[string]*metrics.Counter, len(requestOutcomes)),
		latency:  m.latency.With(db),
	}
	for _, o := range requestOutcomes {
		d.outcomes[o] = m.requests.With(db, o)
	}
	v, _ := m.perDB.LoadOrStore(db, d)
	return v.(*dbMetrics)
}

// initMetrics registers the service's metric catalog and scrape-time
// bridges. Families are registered unconditionally — /metrics advertises
// the full catalog (HELP/TYPE) even for disabled subsystems — while
// bridges are wired only for subsystems that exist, so a disabled cache
// contributes no series.
//
// Bridging (vs. double-instrumenting the hot paths): the generation cache,
// admission controller, failure ledger and miner already keep their own
// counters; an OnScrape hook copies their snapshot into the registry at
// Gather time. Every read surface — the text exposition and the JSON
// stats derivations below — reads the same Gather snapshot, so they can
// never disagree.
func (s *Service) initMetrics() {
	if s.mreg == nil {
		s.mreg = metrics.Default()
	}
	reg := s.mreg
	m := &serviceMetrics{
		requests: reg.Counter("genedit_requests_total",
			"Generate requests by database and outcome.", "db", "outcome"),
		latency: reg.Histogram("genedit_request_duration_seconds",
			"End-to-end Generate latency for successful requests (ok, stale and failed_sql outcomes), including any engine build waited on.", nil, "db"),
		opLatency: reg.Histogram("genedit_operator_duration_seconds",
			"Per-operator pipeline timings from sampled traced requests (WithOperatorSampling / WithTrace).", nil, "db", "operator"),
	}
	s.smetrics = m

	// Failure classes (always tracked; see FailureStats).
	fails := reg.Counter("genedit_failures_total",
		"Failed generations by database and class: syntax (final SQL unparseable), exec (parsed but failed execution), canceled (abandoned mid-pipeline).", "db", "kind")
	reg.OnScrape(func() {
		for db, fs := range s.FailureStats() {
			fails.With(db, "syntax").Set(fs.Syntax)
			fails.With(db, "exec").Set(fs.Exec)
			fails.With(db, "canceled").Set(fs.Canceled)
		}
	})

	// Generation cache (WithGenerationCache).
	hits := reg.Counter("genedit_gencache_hits_total", "Generation-cache LRU hits.")
	misses := reg.Counter("genedit_gencache_misses_total", "Generation-cache misses (pipeline runs as flight leader).")
	coalesced := reg.Counter("genedit_gencache_coalesced_total", "Requests that joined another request's in-flight generation.")
	staleServes := reg.Counter("genedit_gencache_stale_serves_total", "Shed requests degraded onto a cached prior-version record.")
	entries := reg.Gauge("genedit_gencache_entries", "Generation-cache LRU fill.")
	capacity := reg.Gauge("genedit_gencache_capacity", "Generation-cache LRU bound.")
	if s.gencache != nil {
		reg.OnScrape(func() {
			st := s.gencache.Stats()
			hits.With().Set(st.Hits)
			misses.With().Set(st.Misses)
			coalesced.With().Set(st.Coalesced)
			staleServes.With().Set(st.StaleServed)
			entries.With().Set(float64(st.Entries))
			capacity.With().Set(float64(st.Capacity))
		})
	}

	// Admission control (WithAdmission).
	admitted := reg.Counter("genedit_admission_admitted_total", "Requests granted an execution slot (including after queueing).")
	shed := reg.Counter("genedit_admission_shed_total",
		"Requests shed by admission control, by cause: rate_limited (token bucket), queue_full, deadline (estimated wait overran the request deadline), canceled_in_queue, shutdown.", "kind")
	inFlight := reg.Gauge("genedit_admission_in_flight", "Currently executing admitted requests.")
	queued := reg.Gauge("genedit_admission_queued", "Requests currently waiting for a slot.")
	queuePeak := reg.Gauge("genedit_admission_queue_depth_peak", "High-water mark of the admission queue.")
	avgSvc := reg.Gauge("genedit_admission_avg_service_seconds", "EWMA of admitted-request service time (the deadline-shedding estimate).")
	tenantAdmitted := reg.Counter("genedit_admission_tenant_admitted_total", "Admitted requests per tenant.", "db")
	tenantLimited := reg.Counter("genedit_admission_tenant_rate_limited_total", "Token-bucket sheds per tenant.", "db")
	if s.admission != nil {
		reg.OnScrape(func() {
			st := s.admission.Stats()
			admitted.With().Set(st.Admitted)
			shed.With("rate_limited").Set(st.RateLimited)
			shed.With("queue_full").Set(st.ShedQueueFull)
			shed.With("deadline").Set(st.ShedDeadline)
			shed.With("canceled_in_queue").Set(st.CanceledInQueue)
			shed.With("shutdown").Set(st.ShedShutdown)
			inFlight.With().Set(float64(st.InFlight))
			queued.With().Set(float64(st.Queued))
			queuePeak.With().Set(float64(st.MaxQueueDepth))
			avgSvc.With().Set(st.AvgServiceMS / 1000)
			for tenant, ts := range st.Tenants {
				tenantAdmitted.With(tenant).Set(ts.Admitted)
				tenantLimited.With(tenant).Set(ts.RateLimited)
			}
		})
	}

	// Failure miner (WithMiner).
	minerFams := map[string]*metrics.CounterVec{
		"rounds":       reg.Counter("genedit_miner_rounds_total", "Completed mining rounds per database.", "db"),
		"scanned":      reg.Counter("genedit_miner_scanned_total", "Failed records examined by the miner.", "db"),
		"clusters":     reg.Counter("genedit_miner_clusters_total", "Recurring failure clusters found.", "db"),
		"candidates":   reg.Counter("genedit_miner_candidates_total", "Candidate changes submitted to the regression gate.", "db"),
		"merged":       reg.Counter("genedit_miner_merged_total", "Mined candidates that passed the gate and merged.", "db"),
		"rejected":     reg.Counter("genedit_miner_rejected_total", "Mined candidates the regression gate refused.", "db"),
		"unactionable": reg.Counter("genedit_miner_unactionable_total", "Clusters the miner declined to distill.", "db"),
	}
	if s.minerCfg != nil {
		reg.OnScrape(func() {
			for db, ms := range s.MinerStats() {
				minerFams["rounds"].With(db).Set(uint64(ms.Rounds))
				minerFams["scanned"].With(db).Set(uint64(ms.Scanned))
				minerFams["clusters"].With(db).Set(uint64(ms.Clusters))
				minerFams["candidates"].With(db).Set(uint64(ms.Candidates))
				minerFams["merged"].With(db).Set(uint64(ms.Merged))
				minerFams["rejected"].With(db).Set(uint64(ms.Rejected))
				minerFams["unactionable"].With(db).Set(uint64(ms.Unactionable))
			}
		})
	}

	// Knowledge retrieval (always on: every engine keeps per-index search
	// counters — see embed.SearchStats). Candidates-scanned versus searches
	// is the sub-linearity evidence for the ANN layer; full sweeps count its
	// exactness guard degenerating to brute force.
	retrSearches := reg.Counter("genedit_retrieval_searches_total",
		"Top-k retrieval searches per database and index (examples/instructions), by path: ann (partitioned sweep) or scan (full scan).", "db", "index", "path")
	retrScanned := reg.Counter("genedit_retrieval_candidates_scanned_total",
		"Stored vectors scored during retrieval; sub-linear growth relative to searches x index size is the ANN win.", "db", "index")
	retrProbed := reg.Counter("genedit_retrieval_partitions_probed_total",
		"Partitions scanned by ANN searches (probe floor plus exactness-guard extensions).", "db", "index")
	retrSweeps := reg.Counter("genedit_retrieval_full_sweeps_total",
		"ANN searches whose exactness guard swept every partition (automatic brute-force fallback).", "db", "index")
	retrSeconds := reg.Gauge("genedit_retrieval_seconds_total",
		"Cumulative wall time spent inside retrieval searches.", "db", "index")
	reg.OnScrape(func() {
		for db, rs := range s.RetrievalStats() {
			for index, st := range map[string]embed.SearchStats{
				"examples":     rs.Examples,
				"instructions": rs.Instructions,
			} {
				retrSearches.With(db, index, "ann").Set(st.ANNSearches)
				retrSearches.With(db, index, "scan").Set(st.Searches - st.ANNSearches)
				retrScanned.With(db, index).Set(st.CandidatesScanned)
				retrProbed.With(db, index).Set(st.PartitionsProbed)
				retrSweeps.With(db, index).Set(st.FullSweeps)
				retrSeconds.With(db, index).Set(float64(st.SearchNanos) / 1e9)
			}
		}
	})

	// Durable-store families: pre-registered whenever the service is durable
	// so the catalog is visible before the first store opens (stores open
	// lazily); per-store children attach in openStore via kstore.WithMetrics.
	if s.storePath != "" {
		kstore.RegisterMetrics(reg)
	}
}

// observeRequest records one completed Generate on the metrics registry:
// outcome counter always, latency histogram only for requests that returned
// a response (latency of a shed or failed request measures the shedding
// path, not generation). db is always a known tenant — Generate rejects
// unknown names before metrics, so garbage input cannot mint label values.
func (s *Service) observeRequest(db string, resp *Response, err error, dur time.Duration) {
	d := s.smetrics.forDB(db)
	d.outcomes[outcomeOf(resp, err)].Inc()
	if err == nil {
		d.latency.Observe(dur.Seconds())
	}
}

// outcomeOf classifies one Generate result into the closed outcome
// vocabulary.
func outcomeOf(resp *Response, err error) string {
	switch {
	case err == nil && resp.Stale:
		return "stale"
	case err == nil && resp.Record != nil && !resp.Record.OK:
		return "failed_sql"
	case err == nil:
		return "ok"
	case errors.Is(err, ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errCanceled(err):
		return "canceled"
	default:
		return "error"
	}
}

// maybeTraceContext decides a request's trace hook. Precedence: a hook
// already on ctx (WithTraceContext) wins untouched; a service-level
// WithTrace hook is wrapped so the operator histograms ride along for free
// (the request bypasses the cache either way); otherwise every
// opSampleEvery-th request is sampled into the histograms.
func (s *Service) maybeTraceContext(ctx context.Context) context.Context {
	if pipeline.HasTrace(ctx) {
		return ctx
	}
	if s.trace != nil {
		user := s.trace
		return pipeline.WithTrace(ctx, func(tr *Trace) {
			s.observeTrace(tr)
			user(tr)
		})
	}
	if s.opSampleEvery > 0 && s.opSampleN.Add(1)%uint64(s.opSampleEvery) == 0 {
		return pipeline.WithTrace(ctx, s.observeTrace)
	}
	return ctx
}

// observeTrace feeds one request's per-operator timings into
// genedit_operator_duration_seconds.
func (s *Service) observeTrace(tr *Trace) {
	for _, op := range tr.Ops {
		s.smetrics.opLatency.With(tr.Database, op.Op).Observe(op.Duration.Seconds())
	}
}

// StoreHealth reports each opened durable store's terminal failure state
// (nil for healthy), keyed by database. Empty for an in-memory service and
// for databases not yet served. CompactionErr is deliberately not included:
// a store with failing compactions still commits durably, so it should not
// fail a readiness probe — it is surfaced via
// genedit_kstore_compaction_errors_total and KnowledgeInfo instead.
func (s *Service) StoreHealth() map[string]error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]error, len(s.stores))
	for db, st := range s.stores {
		out[db] = st.Failed()
	}
	return out
}

// The FromSnapshot derivations rebuild the legacy JSON stats structures
// from a registry Gather snapshot. geneditd's /v1/stats uses these instead
// of calling the subsystems directly, which makes the registry the single
// source of truth: /metrics and the JSON stats are two renderings of one
// snapshot and cannot disagree.

// GenerationCacheStatsFromSnapshot derives the generation-cache counters
// from a registry snapshot.
func GenerationCacheStatsFromSnapshot(snap *metrics.Snapshot) GenerationCacheStats {
	return GenerationCacheStats{
		Hits:        snap.CounterValue("genedit_gencache_hits_total"),
		Misses:      snap.CounterValue("genedit_gencache_misses_total"),
		Coalesced:   snap.CounterValue("genedit_gencache_coalesced_total"),
		StaleServed: snap.CounterValue("genedit_gencache_stale_serves_total"),
		Entries:     int(snap.GaugeValue("genedit_gencache_entries")),
		Capacity:    int(snap.GaugeValue("genedit_gencache_capacity")),
	}
}

// AdmissionStatsFromSnapshot derives the admission counters (including the
// per-tenant breakdown) from a registry snapshot.
func AdmissionStatsFromSnapshot(snap *metrics.Snapshot) AdmissionStats {
	st := AdmissionStats{
		Admitted:        snap.CounterValue("genedit_admission_admitted_total"),
		RateLimited:     snap.CounterValue("genedit_admission_shed_total", "rate_limited"),
		ShedQueueFull:   snap.CounterValue("genedit_admission_shed_total", "queue_full"),
		ShedDeadline:    snap.CounterValue("genedit_admission_shed_total", "deadline"),
		CanceledInQueue: snap.CounterValue("genedit_admission_shed_total", "canceled_in_queue"),
		ShedShutdown:    snap.CounterValue("genedit_admission_shed_total", "shutdown"),
		InFlight:        int(snap.GaugeValue("genedit_admission_in_flight")),
		Queued:          int(snap.GaugeValue("genedit_admission_queued")),
		MaxQueueDepth:   int(snap.GaugeValue("genedit_admission_queue_depth_peak")),
		AvgServiceMS:    snap.GaugeValue("genedit_admission_avg_service_seconds") * 1000,
	}
	tenants := make(map[string]TenantStats)
	if f := snap.Family("genedit_admission_tenant_admitted_total"); f != nil {
		for i := range f.Series {
			ts := tenants[f.Series[i].LabelValues[0]]
			ts.Admitted = f.Series[i].Count
			tenants[f.Series[i].LabelValues[0]] = ts
		}
	}
	if f := snap.Family("genedit_admission_tenant_rate_limited_total"); f != nil {
		for i := range f.Series {
			ts := tenants[f.Series[i].LabelValues[0]]
			ts.RateLimited = f.Series[i].Count
			tenants[f.Series[i].LabelValues[0]] = ts
		}
	}
	if len(tenants) > 0 {
		st.Tenants = tenants
	}
	return st
}

// FailureStatsFromSnapshot derives the per-database failure-class counters
// from a registry snapshot.
func FailureStatsFromSnapshot(snap *metrics.Snapshot) map[string]FailureStats {
	out := make(map[string]FailureStats)
	f := snap.Family("genedit_failures_total")
	if f == nil {
		return out
	}
	for i := range f.Series {
		db, kind := f.Series[i].LabelValues[0], f.Series[i].LabelValues[1]
		fs := out[db]
		switch kind {
		case "syntax":
			fs.Syntax = f.Series[i].Count
		case "exec":
			fs.Exec = f.Series[i].Count
		case "canceled":
			fs.Canceled = f.Series[i].Count
		}
		out[db] = fs
	}
	return out
}

// MinerStatsFromSnapshot derives the per-database miner counters from a
// registry snapshot.
func MinerStatsFromSnapshot(snap *metrics.Snapshot) map[string]MinerStats {
	out := make(map[string]MinerStats)
	rounds := snap.Family("genedit_miner_rounds_total")
	if rounds == nil {
		return out
	}
	for i := range rounds.Series {
		db := rounds.Series[i].LabelValues[0]
		out[db] = MinerStats{
			Rounds:       int(rounds.Series[i].Count),
			Scanned:      int(snap.CounterValue("genedit_miner_scanned_total", db)),
			Clusters:     int(snap.CounterValue("genedit_miner_clusters_total", db)),
			Candidates:   int(snap.CounterValue("genedit_miner_candidates_total", db)),
			Merged:       int(snap.CounterValue("genedit_miner_merged_total", db)),
			Rejected:     int(snap.CounterValue("genedit_miner_rejected_total", db)),
			Unactionable: int(snap.CounterValue("genedit_miner_unactionable_total", db)),
		}
	}
	return out
}
