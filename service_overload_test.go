package genedit_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"genedit"
	"genedit/internal/generr"
)

// TestAdmissionRateLimit drives one tenant past its token budget and
// asserts the typed 429-class error with a Retry-After hint.
func TestAdmissionRateLimit(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite,
		genedit.WithModelSeed(42),
		genedit.WithAdmission(genedit.AdmissionConfig{RatePerSec: 0.001, Burst: 2}),
	)
	defer svc.Close()
	// Buckets are per-tenant: all three requests must hit one database.
	req := testRequests(t, suite, 1)[0]

	for i := 0; i < 2; i++ {
		if _, err := svc.Generate(context.Background(), req); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	_, err := svc.Generate(context.Background(), req)
	if !errors.Is(err, genedit.ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
	if hint, ok := generr.RetryAfterHint(err); !ok || hint <= 0 {
		t.Fatalf("want positive Retry-After hint, got %v ok=%v", hint, ok)
	}
	st := svc.AdmissionStats()
	if st.Admitted != 2 || st.RateLimited != 1 {
		t.Fatalf("admission stats = %+v", st)
	}
	if !svc.AdmissionEnabled() {
		t.Fatal("AdmissionEnabled() = false with WithAdmission configured")
	}
}

// TestAdmissionStaleServeOnShed: a shed request whose question has a
// completed cached answer degrades onto the stale copy instead of failing.
func TestAdmissionStaleServeOnShed(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite,
		genedit.WithModelSeed(42),
		genedit.WithGenerationCache(64),
		genedit.WithAdmission(genedit.AdmissionConfig{RatePerSec: 0.001, Burst: 1}),
	)
	defer svc.Close()
	req := testRequests(t, suite, 1)[0]

	fresh, err := svc.Generate(context.Background(), req)
	if err != nil {
		t.Fatalf("warming request: %v", err)
	}
	if fresh.Stale {
		t.Fatal("warming request marked stale")
	}

	// Budget is spent: the identical question is shed but served stale.
	stale, err := svc.Generate(context.Background(), req)
	if err != nil {
		t.Fatalf("shed request with warm cache: %v", err)
	}
	if !stale.Stale || !stale.Cached {
		t.Fatalf("want stale cached response, got stale=%v cached=%v", stale.Stale, stale.Cached)
	}
	if stale.SQL != fresh.SQL {
		t.Fatalf("stale SQL %q != fresh SQL %q", stale.SQL, fresh.SQL)
	}
	if cs := svc.GenerationCacheStats(); cs.StaleServed != 1 {
		t.Fatalf("StaleServed = %d, want 1", cs.StaleServed)
	}
	if st := svc.AdmissionStats(); st.RateLimited != 1 {
		t.Fatalf("stale serve must still count as rate-limited: %+v", st)
	}

	// A cold question has nothing stale to fall back on: typed error.
	cold := req
	cold.Question = req.Question + " (never asked)"
	if _, err := svc.Generate(context.Background(), cold); !errors.Is(err, genedit.ErrRateLimited) {
		t.Fatalf("cold shed: want ErrRateLimited, got %v", err)
	}
}

// TestAdmissionStaleServeDisabled asserts DisableStaleServe turns shed
// requests into hard errors even with a warm cache.
func TestAdmissionStaleServeDisabled(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite,
		genedit.WithModelSeed(42),
		genedit.WithGenerationCache(64),
		genedit.WithAdmission(genedit.AdmissionConfig{
			RatePerSec: 0.001, Burst: 1, DisableStaleServe: true,
		}),
	)
	defer svc.Close()
	req := testRequests(t, suite, 1)[0]
	if _, err := svc.Generate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Generate(context.Background(), req); !errors.Is(err, genedit.ErrRateLimited) {
		t.Fatalf("want ErrRateLimited with stale serve disabled, got %v", err)
	}
}

// TestAdmissionOverloadParity floods a tightly provisioned service from
// many goroutines (run under -race in CI) and asserts the overload
// contract: every request resolves promptly to either a correct answer —
// bit-identical SQL to an unthrottled reference service — or a typed
// overload error. Nothing hangs, nothing is silently dropped.
func TestAdmissionOverloadParity(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	reqs := testRequests(t, suite, 8)

	// Reference answers from an unthrottled service with the same seed.
	ref := genedit.NewService(suite, genedit.WithModelSeed(42))
	want := make(map[string]string, len(reqs))
	for _, r := range reqs {
		resp, err := ref.Generate(context.Background(), r)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		want[r.Question] = resp.SQL
	}

	svc := genedit.NewService(suite,
		genedit.WithModelSeed(42),
		genedit.WithGenerationCache(64),
		genedit.WithAdmission(genedit.AdmissionConfig{
			RatePerSec:        20,
			Burst:             4,
			MaxConcurrent:     2,
			MaxQueue:          2,
			DisableStaleServe: true, // successes must be live answers for parity
		}),
	)
	defer svc.Close()

	const goroutines = 16
	const perG = 6
	var (
		mu        sync.Mutex
		successes int
		shed      int
	)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				req := reqs[(g+i)%len(reqs)]
				resp, err := svc.Generate(context.Background(), req)
				switch {
				case err == nil:
					if resp.SQL != want[req.Question] {
						t.Errorf("divergent SQL under overload for %q", req.Question)
					}
					mu.Lock()
					successes++
					mu.Unlock()
				case errors.Is(err, genedit.ErrRateLimited), errors.Is(err, genedit.ErrOverloaded):
					mu.Lock()
					shed++
					mu.Unlock()
				default:
					t.Errorf("unexpected error class: %v", err)
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	total := goroutines * perG
	if successes+shed != total {
		t.Fatalf("accounting: %d successes + %d shed != %d requests", successes, shed, total)
	}
	if shed == 0 {
		t.Fatal("tightly provisioned service shed nothing: admission control inert")
	}
	if successes == 0 {
		t.Fatal("service shed everything: token budget should admit some load")
	}
	st := svc.AdmissionStats()
	if int(st.Admitted) != successes {
		t.Fatalf("Admitted=%d != successes=%d", st.Admitted, successes)
	}
	if got := int(st.RateLimited + st.ShedQueueFull + st.ShedDeadline); got != shed {
		t.Fatalf("shed breakdown %d != observed shed %d (stats %+v)", got, shed, st)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("gauges did not drain: %+v", st)
	}
}

// TestServiceCloseShedsAdmission: Close refuses subsequent work with the
// overload taxonomy instead of hanging or panicking.
func TestServiceCloseShedsAdmission(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite,
		genedit.WithModelSeed(42),
		genedit.WithAdmission(genedit.AdmissionConfig{RatePerSec: 100}),
	)
	req := testRequests(t, suite, 1)[0]
	if _, err := svc.Generate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Generate(context.Background(), req); !errors.Is(err, genedit.ErrOverloaded) {
		t.Fatalf("post-Close Generate: want ErrOverloaded, got %v", err)
	}
}
