// Benchmarks regenerating every quantitative exhibit of the paper, plus
// substrate micro-benchmarks. Execution accuracy is attached to each run as
// a custom "EX%" metric so `go test -bench` reproduces the tables' numbers:
//
//	go test -bench=Table1 -benchmem      # paper Table 1, row by row
//	go test -bench=Table2 -benchmem      # paper Table 2, row by row
//	go test -bench=Edits                 # §4.2.3 acceptance metrics
//	go test -bench=Improvement           # continuous-improvement loop
package genedit_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"genedit"
	"genedit/internal/bench"
	"genedit/internal/decompose"
	"genedit/internal/embed"
	"genedit/internal/eval"
	"genedit/internal/feedback"
	"genedit/internal/pipeline"
	"genedit/internal/sqldb"
	"genedit/internal/sqlexec"
	"genedit/internal/sqlparse"
	"genedit/internal/task"
	"genedit/internal/workload"
)

const (
	benchWorkloadSeed = 1
	benchModelSeed    = 42
)

// benchSuite is shared across benchmarks; workload generation is itself
// measured separately in BenchmarkSuiteGeneration.
var benchSuite = workload.NewSuite(benchWorkloadSeed)

// reportEX attaches per-difficulty execution accuracy as benchmark metrics.
func reportEX(b *testing.B, rep *eval.Report) {
	b.Helper()
	b.ReportMetric(rep.EX(task.Simple), "EX-simple%")
	b.ReportMetric(rep.EX(task.Moderate), "EX-moderate%")
	b.ReportMetric(rep.EX(task.Challenging), "EX-challenging%")
	b.ReportMetric(rep.EX(""), "EX-all%")
}

// runSystem evaluates one system over the full eval set b.N times.
func runSystem(b *testing.B, sys eval.System) {
	b.Helper()
	runner := eval.NewRunner(benchSuite.Databases)
	var rep *eval.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := runner.Run(sys, benchSuite.Cases)
		if err != nil {
			b.Fatal(err)
		}
		rep = r
	}
	b.StopTimer()
	reportEX(b, rep)
}

// --- Table 1: GenEdit vs the five baselines ---

func BenchmarkTable1_GenEdit(b *testing.B) {
	sys, err := bench.NewGenEditSystem("GenEdit", benchSuite, pipeline.DefaultConfig(), benchModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	runSystem(b, sys)
}

func benchmarkBaseline(b *testing.B, name string) {
	for _, sys := range bench.AllBaselines(benchSuite, benchModelSeed) {
		if sys.Name() == name {
			runSystem(b, sys)
			return
		}
	}
	b.Fatalf("baseline %s not found", name)
}

func BenchmarkTable1_CHESS(b *testing.B)   { benchmarkBaseline(b, "CHESS") }
func BenchmarkTable1_MACSQL(b *testing.B)  { benchmarkBaseline(b, "MAC-SQL") }
func BenchmarkTable1_TASQL(b *testing.B)   { benchmarkBaseline(b, "TA-SQL") }
func BenchmarkTable1_DAILSQL(b *testing.B) { benchmarkBaseline(b, "DAIL-SQL") }
func BenchmarkTable1_C3SQL(b *testing.B)   { benchmarkBaseline(b, "C3-SQL") }

// --- Table 2: operator ablations ---

func benchmarkAblation(b *testing.B, name string) {
	for _, ab := range append(bench.Table2Ablations(), bench.ExtraAblations()...) {
		if ab.Name != name {
			continue
		}
		sys, err := bench.NewGenEditSystem(ab.Name, benchSuite, ab.Cfg, benchModelSeed)
		if err != nil {
			b.Fatal(err)
		}
		runSystem(b, sys)
		return
	}
	b.Fatalf("ablation %s not found", name)
}

func BenchmarkTable2_Full(b *testing.B)            { benchmarkAblation(b, "GenEdit") }
func BenchmarkTable2_NoSchemaLinking(b *testing.B) { benchmarkAblation(b, "w/o Schema Linking") }
func BenchmarkTable2_NoInstructions(b *testing.B)  { benchmarkAblation(b, "w/o Instructions") }
func BenchmarkTable2_NoExamples(b *testing.B)      { benchmarkAblation(b, "w/o Examples") }
func BenchmarkTable2_NoPseudoSQL(b *testing.B)     { benchmarkAblation(b, "w/o Pseudo-SQL") }
func BenchmarkTable2_NoDecomposition(b *testing.B) { benchmarkAblation(b, "w/o Decomposition") }

// --- Design-choice ablations (beyond the paper's Table 2) ---

func BenchmarkAblation_NoContextExpansion(b *testing.B) {
	benchmarkAblation(b, "w/o Context Expansion")
}
func BenchmarkAblation_NoPlanning(b *testing.B)       { benchmarkAblation(b, "w/o Planning") }
func BenchmarkAblation_NoSelfCorrection(b *testing.B) { benchmarkAblation(b, "w/o Self-Correction") }
func BenchmarkAblation_OneAttempt(b *testing.B)       { benchmarkAblation(b, "k=1 retry") }

// --- §4.2.3: edits-recommendation acceptance ---

func BenchmarkEditsAcceptance(b *testing.B) {
	var stats *feedback.AcceptanceStats
	for i := 0; i < b.N; i++ {
		s, err := feedback.RunAcceptanceExperiment(benchSuite, benchModelSeed, 3)
		if err != nil {
			b.Fatal(err)
		}
		stats = s
	}
	b.StopTimer()
	if stats.Sessions > 0 {
		b.ReportMetric(100*float64(stats.AcceptedAsIs)/float64(stats.Sessions), "accepted-as-is%")
		b.ReportMetric(100*float64(stats.AcceptedAfterIter)/float64(stats.Sessions), "accepted-after-iter%")
	}
}

// --- Continuous improvement (§4 / demo) ---

func BenchmarkContinuousImprovement(b *testing.B) {
	var res *feedback.ImprovementResult
	for i := 0; i < b.N; i++ {
		r, err := feedback.RunImprovementExperiment(benchSuite, benchModelSeed, 3, 20)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.StopTimer()
	if len(res.Rounds) > 0 {
		b.ReportMetric(res.Rounds[0].EX, "EX-round0%")
		b.ReportMetric(res.Rounds[len(res.Rounds)-1].EX, "EX-final%")
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkSuiteGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.NewSuite(uint64(i + 1))
	}
}

func BenchmarkSQLParse(b *testing.B) {
	sql := benchSuite.CasesByDifficulty(task.Challenging)[0].GoldSQL
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSQLExecuteChallenging(b *testing.B) {
	c := benchSuite.CasesByDifficulty(task.Challenging)[0]
	exec := sqlexec.New(benchSuite.Databases[c.DB])
	// Query (not pre-parse + Exec): a statement-cache hit measures the
	// steady-state serving path — Exec would re-compile every iteration.
	if _, err := exec.Query(c.GoldSQL); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Query(c.GoldSQL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecomposeCompose(b *testing.B) {
	sql := benchSuite.CasesByDifficulty(task.Challenging)[0].GoldSQL
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frags, err := decompose.DecomposeSQL(sql)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := decompose.ComposeSQL(frags); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmbedAndSearch(b *testing.B) {
	ix := embed.NewIndex()
	kset, err := benchSuite.BuildKnowledge("sports_holdings")
	if err != nil {
		b.Fatal(err)
	}
	for _, ex := range kset.Examples() {
		ix.Add(ex.ID, ex.Text())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("quarter over quarter revenue per viewer for our organisations", 8)
	}
}

// BenchmarkANNSearch compares exact brute-force retrieval against the
// partitioned ANN index over real knowledge-set vectors at growing
// knowledge scales (KnowledgeFactor 1/10/100 of the sports_holdings query
// log). The ANN contract is exactness, so the hit lists are asserted
// identical before timing; the candidates/search metric shows the
// sub-linear scan the partition bound buys.
func BenchmarkANNSearch(b *testing.B) {
	for _, factor := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("kx%d", factor), func(b *testing.B) {
			s := workload.NewScaledSuite(benchWorkloadSeed,
				workload.ScaleConfig{DBFactor: 1, KnowledgeFactor: factor})
			kset, err := s.BuildKnowledge("sports_holdings")
			if err != nil {
				b.Fatal(err)
			}
			brute := embed.NewIndex()
			ann := embed.NewIndex()
			ann.EnableANN(embed.ANNConfig{MinSize: 1})
			for _, ex := range kset.Examples() {
				brute.Add(ex.ID, ex.Text())
				ann.Add(ex.ID, ex.Text())
			}
			ann.Build()
			qv := embed.Text("quarter over quarter revenue per viewer for our organisations")
			want := brute.SearchVectorBrute(qv, 8)
			got := ann.SearchVector(qv, 8)
			if len(want) != len(got) {
				b.Fatalf("ANN returned %d hits, brute force %d", len(got), len(want))
			}
			for i := range want {
				if want[i].ID != got[i].ID || want[i].Score != got[i].Score {
					b.Fatalf("ANN hit %d = %+v, brute force = %+v", i, got[i], want[i])
				}
			}
			b.Run("brute", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					brute.SearchVectorBrute(qv, 8)
				}
			})
			b.Run("ann", func(b *testing.B) {
				b.ReportAllocs()
				before := ann.Stats()
				for i := 0; i < b.N; i++ {
					ann.SearchVector(qv, 8)
				}
				st := ann.Stats()
				if n := st.ANNSearches - before.ANNSearches; n > 0 {
					b.ReportMetric(float64(st.CandidatesScanned-before.CandidatesScanned)/float64(n),
						"candidates/search")
				}
			})
		})
	}
}

// --- Hot-path micro-benchmarks (hash join, statement cache, parallel
// eval, top-k retrieval) ---

// joinBenchDB builds a two-table FK-join fixture: n parents, n children,
// ~n/fanout children per parent.
func joinBenchDB(n, fanout int) *sqldb.Database {
	db := sqldb.NewDatabase("joinbench")
	parents := sqldb.NewTable("PARENTS", sqldb.Column{Name: "ID"}, sqldb.Column{Name: "NAME"})
	children := sqldb.NewTable("CHILDREN", sqldb.Column{Name: "PARENT_ID"}, sqldb.Column{Name: "AMOUNT"})
	for i := 0; i < n; i++ {
		parents.MustAppend(sqldb.Int(int64(i)), sqldb.Str(fmt.Sprintf("p%04d", i)))
		children.MustAppend(sqldb.Int(int64((i*7)%(n/fanout))), sqldb.Int(int64(i%97)))
	}
	db.AddTable(parents)
	db.AddTable(children)
	return db
}

// BenchmarkHashJoin compares the nested-loop baseline against the hash-join
// fast path on an equi-join dominated aggregate at suite scale.
func BenchmarkHashJoin(b *testing.B) {
	db := joinBenchDB(600, 10)
	sql := "SELECT COUNT(*), SUM(AMOUNT) FROM PARENTS JOIN CHILDREN ON PARENTS.ID = CHILDREN.PARENT_ID"
	for _, mode := range []struct {
		name string
		hash bool
	}{{"nested", false}, {"hash", true}} {
		b.Run(mode.name, func(b *testing.B) {
			exec := sqlexec.New(db)
			exec.SetHashJoin(mode.hash)
			if _, err := exec.Query(sql); err != nil { // warm the plan cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStatementCache measures repeated Executor.Query of the same SQL
// (the regeneration-loop / gold-evaluation / regression-suite pattern) with
// the parsed-statement cache off and on. The fixture is parse-bound — a
// large statement over a small table — to isolate the work the cache
// eliminates; execution-bound statements see proportionally smaller wins.
func BenchmarkStatementCache(b *testing.B) {
	db := sqldb.NewDatabase("stmtbench")
	t := sqldb.NewTable("T", sqldb.Column{Name: "A"}, sqldb.Column{Name: "B"})
	for i := 0; i < 2; i++ {
		t.MustAppend(sqldb.Int(int64(i)), sqldb.Str(fmt.Sprintf("v%d", i)))
	}
	db.AddTable(t)
	sql := "SELECT A"
	for i := 0; i < 40; i++ {
		sql += fmt.Sprintf(", A*%d + CASE WHEN A > %d THEN %d ELSE -%d END AS c%d", i+1, i, i, i, i)
	}
	sql += " FROM T WHERE A >= 0"
	for i := 0; i < 20; i++ {
		sql += fmt.Sprintf(" OR B = 'v%d'", i)
	}
	for _, mode := range []struct {
		name    string
		caching bool
	}{{"uncached", false}, {"cached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			exec := sqlexec.New(db)
			exec.SetStatementCaching(mode.caching)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelEval runs the full GenEdit evaluation with varying worker
// counts; outcomes (and therefore EX) are identical across counts.
func BenchmarkParallelEval(b *testing.B) {
	sys, err := bench.NewGenEditSystem("GenEdit", benchSuite, pipeline.DefaultConfig(), benchModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			runner := eval.NewRunner(benchSuite.Databases)
			runner.SetWorkers(workers)
			var rep *eval.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := runner.Run(sys, benchSuite.Cases)
				if err != nil {
					b.Fatal(err)
				}
				rep = r
			}
			b.StopTimer()
			reportEX(b, rep)
		})
	}
}

// BenchmarkTopK compares the full-sort reference against the bounded-heap
// top-k on a knowledge-set-scale index.
func BenchmarkTopK(b *testing.B) {
	ix := embed.NewIndex()
	words := []string{"revenue", "viewer", "organisation", "quarter", "canada", "sports",
		"total", "margin", "cost", "views", "holding", "fiscal"}
	for i := 0; i < 2000; i++ {
		text := words[i%len(words)] + " " + words[(i*3+1)%len(words)] + " " + words[(i*7+2)%len(words)]
		ix.Add(fmt.Sprintf("item-%04d", i), text)
	}
	qv := embed.Text("quarter over quarter revenue per viewer for our organisations")
	b.Run("sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.SearchVectorBrute(qv, 8)
		}
	})
	b.Run("heap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.SearchVector(qv, 8)
		}
	})
}

// --- Compiled execution micro-benchmarks (PR 3) ---

// compiledBenchModes runs a sub-benchmark per execution engine over the
// same SQL; Query is used so the compiled and batch modes measure the
// cached-plan serving path (parse and compile amortized away, as in the
// k=3 loop). Statements outside the batch gate (joins, subqueries, CTEs)
// fall back to the row path, so their "batch" numbers track "compiled".
func compiledBenchModes(b *testing.B, db *sqldb.Database, sql string) {
	b.Helper()
	for _, mode := range []struct {
		name     string
		compiled bool
		batch    bool
	}{{"interpreted", false, false}, {"compiled", true, false}, {"batch", true, true}} {
		b.Run(mode.name, func(b *testing.B) {
			exec := sqlexec.New(db)
			exec.SetCompiledExec(mode.compiled)
			exec.SetBatchExec(mode.batch)
			if _, err := exec.Query(sql); err != nil { // warm the statement cache
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// exprBenchDB is a single table at workload width (10 columns) for
// expression-bound scans.
func exprBenchDB(n int) *sqldb.Database {
	db := sqldb.NewDatabase("exprbench")
	t := sqldb.NewTable("T",
		sqldb.Column{Name: "A"}, sqldb.Column{Name: "B"},
		sqldb.Column{Name: "C"}, sqldb.Column{Name: "D"},
		sqldb.Column{Name: "E"}, sqldb.Column{Name: "F"},
		sqldb.Column{Name: "G"}, sqldb.Column{Name: "H"},
		sqldb.Column{Name: "AMT"}, sqldb.Column{Name: "S"})
	for i := 0; i < n; i++ {
		t.MustAppend(sqldb.Int(int64(i)), sqldb.Int(int64(i%97)),
			sqldb.Float(float64(i)*0.5), sqldb.Int(int64(i%7)),
			sqldb.Int(int64(i%11)), sqldb.Int(int64(i%13)),
			sqldb.Int(int64(i%17)), sqldb.Int(int64(i%19)),
			sqldb.Float(float64(i%1000)*1.25), sqldb.Str(fmt.Sprintf("name%04d", i%200)))
	}
	db.AddTable(t)
	return db
}

// BenchmarkCompiledExpr measures an expression-bound scan: per-row ordinal
// access, pre-dispatched operators and a pre-analyzed LIKE pattern versus
// the interpreter's per-row environment allocation, name resolution and DP
// pattern matching.
func BenchmarkCompiledExpr(b *testing.B) {
	db := exprBenchDB(20000)
	sql := "SELECT A * 2 + F, CASE WHEN AMT > 50 THEN UPPER(S) ELSE S END, G % 7 + H " +
		"FROM T WHERE F + A % 13 > 3 AND S LIKE 'name%' AND AMT >= 0"
	compiledBenchModes(b, db, sql)
}

// BenchmarkTopNLimit measures ORDER BY with a small static LIMIT over a
// large result: the compiled engine's bounded heap versus the full stable
// sort.
func BenchmarkTopNLimit(b *testing.B) {
	db := exprBenchDB(50000)
	sql := "SELECT A, B FROM T ORDER BY B DESC, A LIMIT 5"
	compiledBenchModes(b, db, sql)
}

// BenchmarkPredicatePushdown measures a selective single-side WHERE over an
// FK join: pushed below the join it shrinks the hash build/probe inputs,
// above it the join materializes every matching pair first.
func BenchmarkPredicatePushdown(b *testing.B) {
	db := joinBenchDB(4000, 10)
	sql := "SELECT COUNT(*), SUM(AMOUNT) FROM PARENTS JOIN CHILDREN ON PARENTS.ID = CHILDREN.PARENT_ID " +
		"WHERE PARENTS.NAME = 'p0001'"
	compiledBenchModes(b, db, sql)
}

// --- Columnar batch execution micro-benchmarks (PR 6) ---

// BenchmarkBatchScanFilter measures a filtered projection scan: the batch
// engine evaluates the predicate as typed vector kernels over columnar
// morsels and materializes only surviving lanes, versus the row engines'
// per-row closure dispatch.
func BenchmarkBatchScanFilter(b *testing.B) {
	db := exprBenchDB(50000)
	sql := "SELECT A, B, AMT FROM T WHERE B < 24 AND AMT > 100.0"
	compiledBenchModes(b, db, sql)
}

// BenchmarkBatchAggregate measures an ungrouped multi-aggregate over the
// full table: the batch engine's typed column-major accumulators never box
// a value, versus the row paths' per-row argument collection.
func BenchmarkBatchAggregate(b *testing.B) {
	db := exprBenchDB(50000)
	sql := "SELECT COUNT(*), SUM(AMT), AVG(A), MIN(B), MAX(AMT) FROM T"
	compiledBenchModes(b, db, sql)
}

// BenchmarkBatchGroupBy measures hash GROUP BY aggregation through the
// batch pipeline (vectorized filter, sequential morsel-order grouping for
// bit-identical float sums).
func BenchmarkBatchGroupBy(b *testing.B) {
	db := exprBenchDB(50000)
	sql := "SELECT D, COUNT(*), SUM(AMT), MAX(B) FROM T WHERE A % 3 <> 0 GROUP BY D"
	compiledBenchModes(b, db, sql)
}

// BenchmarkBatchMorselParallel runs one aggregate query at several morsel
// worker counts. Morsels merge in deterministic order, so results are
// identical at every count; on a single-core runner the counts should show
// wall-clock parity (scheduler overhead is one task handoff per morsel),
// while multi-core runners see the filter phase scale.
func BenchmarkBatchMorselParallel(b *testing.B) {
	db := exprBenchDB(100000)
	sql := "SELECT COUNT(*), SUM(AMT), AVG(A) FROM T WHERE B < 48 AND F % 5 <> 2"
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			exec := sqlexec.New(db)
			exec.SetMorselWorkers(workers)
			if _, err := exec.Query(sql); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Query(sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPipelineSingleGeneration(b *testing.B) {
	sys, err := bench.NewGenEditSystem("GenEdit", benchSuite, pipeline.DefaultConfig(), benchModelSeed)
	if err != nil {
		b.Fatal(err)
	}
	c := benchSuite.CasesByDifficulty(task.Challenging)[0]
	engine := sys.Engine(c.DB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Generate(c.Question, c.Evidence); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Concurrent serving benchmarks (PR 5): generation cache, coalescing,
// sharded statement cache ---

// newServingService builds a prewarmed Service over the shared bench suite.
func newServingService(b *testing.B, opts ...genedit.Option) *genedit.Service {
	b.Helper()
	svc := genedit.NewService(genedit.NewBenchmark(benchWorkloadSeed),
		append([]genedit.Option{genedit.WithModelSeed(benchModelSeed)}, opts...)...)
	if err := svc.Prewarm(context.Background()); err != nil {
		b.Fatal(err)
	}
	return svc
}

// BenchmarkGenerationCache measures one repeated question through the
// serving path: "cold" (cache disabled) runs the full compounding-operator
// pipeline every time, "hit" serves the completed record from the versioned
// LRU, and "hit-parallel" hammers the hit path from all procs at once. The
// acceptance bar for the cache is hit >= 10x faster than cold.
func BenchmarkGenerationCache(b *testing.B) {
	ctx := context.Background()
	c := benchSuite.CasesByDifficulty(task.Challenging)[0]
	req := genedit.Request{Database: c.DB, Question: c.Question, Evidence: c.Evidence}

	b.Run("cold", func(b *testing.B) {
		svc := newServingService(b) // no cache: every request generates
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Generate(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		svc := newServingService(b, genedit.WithGenerationCache(256))
		if _, err := svc.Generate(ctx, req); err != nil { // warm the entry
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := svc.Generate(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Cached {
				b.Fatal("expected a cache hit")
			}
		}
	})
	b.Run("hit-parallel", func(b *testing.B) {
		svc := newServingService(b, genedit.WithGenerationCache(256))
		if _, err := svc.Generate(ctx, req); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := svc.Generate(ctx, req); err != nil {
					b.Error(err) // Fatal must not run on a RunParallel worker
					return
				}
			}
		})
	})
}

// BenchmarkGenerationCoalescing: every iteration presents a fresh (never
// cached) question to GOMAXPROCS concurrent requesters; singleflight must
// collapse them onto one pipeline run, so per-iteration cost tracks ONE
// generation plus coordination, not N generations.
func BenchmarkGenerationCoalescing(b *testing.B) {
	ctx := context.Background()
	c := benchSuite.CasesByDifficulty(task.Challenging)[0]
	svc := newServingService(b, genedit.WithGenerationCache(4096))
	waiters := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := genedit.Request{
			Database: c.DB,
			Question: fmt.Sprintf("%s (load variant %d)", c.Question, i),
			Evidence: c.Evidence,
		}
		var wg sync.WaitGroup
		for w := 0; w < waiters; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := svc.Generate(ctx, req); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	st := svc.GenerationCacheStats()
	if b.N > 0 {
		b.ReportMetric(float64(st.Misses)/float64(b.N), "generations/iter")
	}
}

// BenchmarkStatementCacheParallel measures repeated cache-hit Query over a
// working set of statements, single-goroutine vs all procs. With the
// lock-striped shards, parallel per-op time must not degrade against the
// serial run (the old global mutex serialized every worker onto one lock).
func BenchmarkStatementCacheParallel(b *testing.B) {
	db := sqldb.NewDatabase("shardbench")
	t := sqldb.NewTable("T", sqldb.Column{Name: "A"}, sqldb.Column{Name: "B"})
	for i := 0; i < 8; i++ {
		t.MustAppend(sqldb.Int(int64(i)), sqldb.Str(fmt.Sprintf("v%d", i)))
	}
	db.AddTable(t)
	stmts := make([]string, 32)
	for i := range stmts {
		stmts[i] = fmt.Sprintf("SELECT A, B FROM T WHERE A >= %d", i%8)
		if i >= 8 {
			stmts[i] += fmt.Sprintf(" AND A < %d", i+2)
		}
	}
	exec := sqlexec.New(db)
	for _, sql := range stmts { // warm every statement
		if _, err := exec.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := exec.Query(stmts[i%len(stmts)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if _, err := exec.Query(stmts[i%len(stmts)]); err != nil {
					b.Error(err) // Fatal must not run on a RunParallel worker
					return
				}
				i++
			}
		})
	})
}
