package genedit_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"genedit"
)

func testRequests(t *testing.T, suite *genedit.Benchmark, n int) []genedit.Request {
	t.Helper()
	var reqs []genedit.Request
	for _, c := range suite.Cases {
		reqs = append(reqs, genedit.Request{Database: c.DB, Question: c.Question, Evidence: c.Evidence})
		if len(reqs) == n {
			break
		}
	}
	if len(reqs) < n {
		t.Fatalf("suite has only %d cases, want %d", len(reqs), n)
	}
	return reqs
}

func TestServiceGenerate(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, genedit.WithModelSeed(42))
	req := testRequests(t, suite, 1)[0]

	resp, err := svc.Generate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.SQL == "" || resp.Record == nil {
		t.Fatalf("incomplete response: %+v", resp)
	}
	if resp.SQL != resp.Record.FinalSQL {
		t.Fatalf("SQL %q != Record.FinalSQL %q", resp.SQL, resp.Record.FinalSQL)
	}
	if resp.OK && resp.Failure != nil {
		t.Fatalf("OK response carries failure %v", resp.Failure)
	}

	// The service must match the deprecated positional API verbatim.
	engine, err := genedit.NewEngine(suite, req.Database, genedit.DefaultConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := engine.Generate(req.Question, req.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FinalSQL != resp.SQL {
		t.Fatalf("service SQL %q != engine SQL %q", resp.SQL, rec.FinalSQL)
	}
}

func TestServiceUnknownDatabase(t *testing.T) {
	svc := genedit.NewService(genedit.NewBenchmark(1))
	_, err := svc.Generate(context.Background(), genedit.Request{Database: "nope", Question: "q"})
	if !errors.Is(err, genedit.ErrUnknownDatabase) {
		t.Fatalf("err = %v, want ErrUnknownDatabase", err)
	}
}

// TestServiceCoalescedBuild asserts that concurrent requests for the same
// database share one engine build: every caller must observe the same
// *Engine pointer.
func TestServiceCoalescedBuild(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite)
	db := svc.Databases()[0]

	const goroutines = 16
	engines := make([]*genedit.Engine, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			<-start
			e, err := svc.Engine(context.Background(), db)
			if err != nil {
				t.Error(err)
				return
			}
			engines[i] = e
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if engines[i] != engines[0] {
			t.Fatalf("goroutine %d got a different engine: builds were not coalesced", i)
		}
	}
}

// TestServiceConcurrentGenerate drives mixed Generate and GenerateBatch
// traffic against one service from many goroutines (run under -race in CI)
// and asserts every response matches the sequential answer.
func TestServiceConcurrentGenerate(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, genedit.WithWorkers(4))
	reqs := testRequests(t, suite, 24)

	// Sequential ground truth from a fresh, identically-seeded service.
	want := make([]string, len(reqs))
	ref := genedit.NewService(genedit.NewBenchmark(1))
	for i, req := range reqs {
		resp, err := ref.Generate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp.SQL
	}

	const goroutines = 8
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				for i, req := range reqs {
					resp, err := svc.Generate(context.Background(), req)
					if err != nil {
						t.Errorf("goroutine %d req %d: %v", g, i, err)
						return
					}
					if resp.SQL != want[i] {
						t.Errorf("goroutine %d req %d: SQL %q, want %q", g, i, resp.SQL, want[i])
					}
				}
				return
			}
			resps, err := svc.GenerateBatch(context.Background(), reqs)
			if err != nil {
				t.Errorf("goroutine %d batch: %v", g, err)
				return
			}
			for i, resp := range resps {
				if resp.Err != nil {
					t.Errorf("goroutine %d batch item %d: %v", g, i, resp.Err)
					continue
				}
				if resp.SQL != want[i] {
					t.Errorf("goroutine %d batch item %d: SQL %q, want %q", g, i, resp.SQL, want[i])
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServiceCancellation asserts a ctx that dies mid-pipeline surfaces the
// full taxonomy: ErrCanceled plus the underlying context error, promptly.
func TestServiceCancellation(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite)
	req := testRequests(t, suite, 1)[0]

	// Warm the engine so cancellation exercises the pipeline, not the build.
	if _, err := svc.Engine(context.Background(), req.Database); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := svc.Generate(ctx, req)
	if !errors.Is(err, genedit.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to match context.Canceled too", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancellation took %s, want prompt return", d)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer dcancel()
	_, err = svc.Generate(dctx, req)
	if !errors.Is(err, genedit.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v, want ErrCanceled matching DeadlineExceeded", err)
	}
}

func TestGenerateBatchCancellation(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, genedit.WithWorkers(2))
	reqs := testRequests(t, suite, 8)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resps, err := svc.GenerateBatch(ctx, reqs)
	if !errors.Is(err, genedit.ErrCanceled) {
		t.Fatalf("batch err = %v, want ErrCanceled", err)
	}
	if len(resps) != len(reqs) {
		t.Fatalf("responses = %d, want %d", len(resps), len(reqs))
	}
	for i, resp := range resps {
		if resp.Err == nil {
			t.Errorf("item %d of a canceled batch has no error", i)
		}
	}
}

func TestServiceTrace(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	var mu sync.Mutex
	var traces []*genedit.Trace
	svc := genedit.NewService(suite, genedit.WithTrace(func(tr *genedit.Trace) {
		mu.Lock()
		traces = append(traces, tr)
		mu.Unlock()
	}))
	req := testRequests(t, suite, 1)[0]

	if _, err := svc.Generate(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("trace hook fired %d times, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Database != req.Database || tr.Question != req.Question {
		t.Fatalf("trace identifies %s/%q, want %s/%q", tr.Database, tr.Question, req.Database, req.Question)
	}
	ops := make(map[string]bool)
	for _, op := range tr.Ops {
		ops[op.Op] = true
	}
	for _, want := range []string{"reformulation", "intent_classification", "example_selection", "instruction_selection", "schema_linking", "planning", "generation_loop"} {
		if !ops[want] {
			t.Errorf("trace missing operator %q (got %v)", want, tr.Ops)
		}
	}
	if tr.Total <= 0 {
		t.Errorf("trace total = %v, want > 0", tr.Total)
	}

	// A per-request hook attached to the ctx overrides the service hook.
	perReq := 0
	ctx := genedit.WithTraceContext(context.Background(), func(*genedit.Trace) { perReq++ })
	if _, err := svc.Generate(ctx, req); err != nil {
		t.Fatal(err)
	}
	if perReq != 1 {
		t.Fatalf("per-request hook fired %d times, want 1", perReq)
	}
	if len(traces) != 1 {
		t.Fatalf("service hook fired for a request with its own hook (total %d)", len(traces))
	}
}

func TestServicePrewarm(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, genedit.WithWorkers(4))
	if err := svc.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	// After prewarm every engine resolves without building.
	for _, db := range svc.Databases() {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		if _, err := svc.Engine(ctx, db); err != nil {
			t.Errorf("engine %s after prewarm: %v", db, err)
		}
		cancel()
	}
}

func TestFailureTaxonomy(t *testing.T) {
	ge := &genedit.GenerationError{Kind: "syntax", Msg: "unexpected token"}
	if !errors.Is(ge, genedit.ErrSyntaxFailure) {
		t.Error("syntax failure should match ErrSyntaxFailure")
	}
	if errors.Is(ge, genedit.ErrExecFailure) {
		t.Error("syntax failure must not match ErrExecFailure")
	}
	ge = &genedit.GenerationError{Kind: "exec", Msg: "no such column"}
	if !errors.Is(ge, genedit.ErrExecFailure) {
		t.Error("exec failure should match ErrExecFailure")
	}
}

// TestWithBatchExec asserts the batch-executor switch is pure performance
// surface: the same requests served with the columnar engine on (default)
// and off produce identical SQL, status and result tables.
func TestWithBatchExec(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	batch := genedit.NewService(suite, genedit.WithModelSeed(42))
	rowOnly := genedit.NewService(suite, genedit.WithModelSeed(42), genedit.WithBatchExec(false))

	for _, req := range testRequests(t, suite, 4) {
		a, err := batch.Generate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rowOnly.Generate(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if a.SQL != b.SQL || a.OK != b.OK {
			t.Fatalf("batch/row divergence on %q: (%q, %v) vs (%q, %v)",
				req.Question, a.SQL, a.OK, b.SQL, b.OK)
		}
		ra, rb := a.Record.Result, b.Record.Result
		if (ra == nil) != (rb == nil) {
			t.Fatalf("result presence diverges on %q", req.Question)
		}
		if ra == nil {
			continue
		}
		if len(ra.Rows) != len(rb.Rows) {
			t.Fatalf("row count diverges on %q: %d vs %d", req.Question, len(ra.Rows), len(rb.Rows))
		}
		for i := range ra.Rows {
			for j := range ra.Rows[i] {
				va, vb := ra.Rows[i][j], rb.Rows[i][j]
				if va.IsNull() != vb.IsNull() || (!va.IsNull() && !va.Equal(vb)) {
					t.Fatalf("cell [%d][%d] diverges on %q: %v vs %v", i, j, req.Question, va, vb)
				}
			}
		}
	}
}
