package genedit

import (
	"context"
	"strings"
	"testing"

	"genedit/internal/knowledge"
	"genedit/internal/workload"
)

func TestMinerConvergenceRaisesEX(t *testing.T) {
	rounds, err := RunMinerConvergence(1, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rounds) != 3 {
		t.Fatalf("got %d rounds", len(rounds))
	}
	first, last := rounds[0], rounds[len(rounds)-1]
	if first.EX != 0 {
		t.Errorf("round 1 EX = %.1f, want 0 (injected families exec-fail before mining)", first.EX)
	}
	if first.Merged == 0 {
		t.Error("round 1 merged no mined candidates")
	}
	if last.EX <= first.EX {
		t.Errorf("EX did not rise: %.1f -> %.1f", first.EX, last.EX)
	}
	if last.EX < 80 {
		t.Errorf("final EX = %.1f, want >= 80 after mined knowledge merges", last.EX)
	}
	// Quiescence: once the exec-failure gaps are covered, the miner must
	// stop merging rather than thrash (the staleness filter drops failures
	// already fixed at the current knowledge version).
	if last.Merged != 0 {
		t.Errorf("round %d still merged %d candidates after convergence", last.Round, last.Merged)
	}
}

func TestMinerProvenanceAndAudit(t *testing.T) {
	suite, injected := workload.NewMinerSuite(1)
	svc := NewService(suite, WithGenerationCache(64), WithMiner(MinerConfig{}))
	defer svc.Close()
	ctx := context.Background()

	db := injected[0].DB
	for _, c := range injected {
		if c.DB != db {
			continue
		}
		if _, err := svc.Generate(ctx, Request{Database: db, Question: c.Question}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := svc.MineRound(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merged == 0 {
		t.Fatalf("no merges: %+v", rep)
	}

	engine, err := svc.Engine(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	mined := 0
	for _, ev := range engine.KnowledgeSet().History() {
		if ev.Editor == MinerEditor {
			mined++
			if !strings.HasPrefix(ev.FeedbackID, "miner-") {
				t.Errorf("mined event %d has feedback ID %q", ev.Seq, ev.FeedbackID)
			}
		}
	}
	if mined == 0 {
		t.Error("no history events carry the miner provenance tag")
	}
	stats := svc.MinerStats()[db]
	if stats.Merged != rep.Merged || stats.Rounds != 1 {
		t.Errorf("miner stats = %+v, want merged=%d rounds=1", stats, rep.Merged)
	}

	// A second round over the same (now stale) failures must not re-merge:
	// the WAL-history dedupe plus the staleness filter make mining
	// idempotent.
	rep2, err := svc.MineRound(ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Merged != 0 {
		t.Errorf("second round re-merged %d candidates", rep2.Merged)
	}
}

func TestMinerDisabledByDefault(t *testing.T) {
	suite := NewBenchmark(1)
	svc := NewService(suite)
	defer svc.Close()
	if _, err := svc.MineRound(context.Background(), "sports_holdings"); err == nil {
		t.Fatal("MineRound succeeded without WithMiner")
	}
	if n := len(svc.MinerStats()); n != 0 {
		t.Fatalf("MinerStats has %d entries on a miner-less service", n)
	}
}

func TestFailureStatsCounters(t *testing.T) {
	suite, injected := workload.NewMinerSuite(1)
	svc := NewService(suite)
	defer svc.Close()
	ctx := context.Background()

	c := injected[0]
	resp, err := svc.Generate(ctx, Request{Database: c.DB, Question: c.Question})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Fatal("injected case unexpectedly succeeded")
	}
	stats := svc.FailureStats()[c.DB]
	if stats.Exec == 0 {
		t.Errorf("exec failures not counted: %+v", stats)
	}

	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := svc.Generate(cctx, Request{Database: c.DB, Question: c.Question}); err == nil {
		t.Fatal("canceled request succeeded")
	}
	if got := svc.FailureStats()[c.DB].Canceled; got == 0 {
		t.Error("cancellation not counted")
	}
}

// TestMinerGateRejectionNeverMerges drives a deliberately regressing
// candidate through the miner's submission path and checks the regression
// gate refuses it: nothing merges, the knowledge version is unchanged, and
// no pending change lingers.
func TestMinerGateRejectionNeverMerges(t *testing.T) {
	suite := NewBenchmark(1)
	svc := NewService(suite)
	defer svc.Close()
	ctx := context.Background()
	db := "sports_holdings"

	var golden []*Case
	for _, c := range suite.Cases {
		if c.DB == db {
			golden = append(golden, c)
		}
	}
	solver, err := svc.Solver(ctx, db, golden)
	if err != nil {
		t.Fatal(err)
	}
	kset := solver.Engine().KnowledgeSet()
	versionBefore := kset.Version()

	// Deleting every term-defining instruction regresses the golden cases
	// that depend on domain jargon (s-our, s-adj, m-ratio, ...).
	var edits []knowledge.Edit
	for _, ins := range kset.Instructions() {
		if len(ins.Terms) > 0 {
			edits = append(edits, knowledge.Edit{
				Op: knowledge.EditDelete, Kind: knowledge.InstructionEntity, ID: ins.ID,
			})
		}
	}
	if len(edits) == 0 {
		t.Fatal("knowledge set has no term-defining instructions to delete")
	}

	res, err := solver.SubmitCandidate(ctx, "miner-regressing", MinerEditor, edits)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Fatalf("regression gate passed a candidate deleting all term definitions: %s", res.Detail)
	}
	if res.Pending != nil {
		t.Error("rejected candidate produced a pending change")
	}
	if len(solver.Pending()) != 0 {
		t.Error("rejected candidate is queued for approval")
	}
	if got := solver.Engine().KnowledgeSet().Version(); got != versionBefore {
		t.Errorf("knowledge version moved %d -> %d on a rejected candidate", versionBefore, got)
	}
}
