// Command kbctl is the knowledge set library (§4.2.2) as a CLI: it shows
// the components of a database's knowledge set with their provenance, the
// audit history, and demonstrates checkpoint/revert.
//
//	kbctl -db sports_holdings -show stats
//	kbctl -db sports_holdings -show examples | instructions | intents | terms
//	kbctl -db sports_holdings -show history
//	kbctl -db sports_holdings -show mined      auto-mined knowledge + audit trail
//	kbctl -db sports_holdings -demo-revert     scripted edit → checkpoint → revert
//	kbctl -db sports_holdings -demo-mine       scripted failures → mine → audit
//
// -store points kbctl at a daemon's durable knowledge directory, so -show
// mined audits exactly what a restarted geneditd would serve (mined merges
// are fsynced to the WAL like SME merges).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"genedit"
	"genedit/internal/knowledge"
	"genedit/internal/workload"
)

func main() {
	db := flag.String("db", "sports_holdings", "target database")
	show := flag.String("show", "stats", "what to display: stats, examples, instructions, intents, terms, history, checkpoints, mined")
	limit := flag.Int("n", 12, "max items to list")
	seed := flag.Uint64("seed", 1, "workload seed")
	store := flag.String("store", "", "durable knowledge directory (as passed to geneditd -store)")
	demoRevert := flag.Bool("demo-revert", false, "demonstrate checkpoint/revert on the set")
	demoMine := flag.Bool("demo-mine", false, "demonstrate the failure miner: serve recurring failures, mine, audit")
	flag.Parse()

	if *demoMine {
		if err := runMineDemo(*db, *seed); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// The service owns engine (and knowledge-set) construction, so kbctl
	// inspects exactly the set a served engine would use — including, with
	// -store, anything recovered from a daemon's WAL.
	opts := []genedit.Option{}
	if *store != "" {
		opts = append(opts, genedit.WithStorePath(*store))
	}
	svc := genedit.NewService(genedit.NewBenchmark(*seed), opts...)
	defer svc.Close()
	engine, err := svc.Engine(context.Background(), *db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	set := engine.KnowledgeSet()

	if *demoRevert {
		runRevertDemo(set)
		return
	}

	switch *show {
	case "stats":
		st := set.Stats()
		fmt.Printf("database:     %s\n", *db)
		fmt.Printf("examples:     %d\n", st.Examples)
		fmt.Printf("instructions: %d\n", st.Instructions)
		fmt.Printf("intents:      %d\n", st.Intents)
		fmt.Printf("directives:   %d\n", st.Directives)
		fmt.Printf("version:      %d\n", st.Version)
		printStoreHealth(svc, *db)
	case "examples":
		for i, ex := range set.Examples() {
			if i >= *limit {
				fmt.Printf("... (%d more)\n", len(set.Examples())-i)
				break
			}
			fmt.Printf("%-8s [%s] %s\n         %s\n         source: %s\n",
				ex.ID, ex.Clause, ex.NL, ex.Pseudo, ex.Provenance.Source)
		}
	case "instructions":
		for _, ins := range set.Instructions() {
			fmt.Printf("%-8s %s\n", ins.ID, ins.Text)
			if ins.SQLHint != "" {
				fmt.Printf("         expected SQL: %s\n", ins.SQLHint)
			}
			if len(ins.Terms) > 0 {
				fmt.Printf("         defines: %v\n", ins.Terms)
			}
			fmt.Printf("         source: %s\n", ins.Provenance.Source)
		}
	case "intents":
		for _, it := range set.Intents() {
			fmt.Printf("%-12s %s (%d schema elements)\n", it.ID, it.Name, len(it.Elements))
		}
	case "terms":
		for _, t := range set.TermsIndex() {
			def := set.DefinesTerm(t)
			fmt.Printf("%-8s %s\n", t, def.Text)
		}
	case "history":
		for i, ev := range set.History() {
			if i >= *limit {
				fmt.Printf("... (%d more)\n", len(set.History())-i)
				break
			}
			fmt.Printf("#%03d v%03d %-10s %-12s %-10s %s\n",
				ev.Seq, ev.Version, ev.Op, ev.Kind, ev.EntityID, ev.Summary)
		}
	case "mined":
		printMinedAudit(set)
	case "checkpoints":
		cps := set.Checkpoints()
		if len(cps) == 0 {
			fmt.Println("no checkpoints")
		}
		for _, cp := range cps {
			fmt.Printf("cp-%d %-24s at version %d\n", cp.ID, cp.Name, cp.Version)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -show %q\n", *show)
		os.Exit(2)
	}
}

// printStoreHealth appends a durable-store section to -show stats: the
// persisted sequence, snapshot version, compaction activity, and — most
// importantly — the two failure states an operator needs to see. A terminal
// store failure (a WAL rollback that could not restore the durable
// boundary; the store refuses further commits) and a compaction error
// (commits stay durable but the WAL is no longer being truncated) are
// otherwise silent in a CLI session.
func printStoreHealth(svc *genedit.Service, db string) {
	info, err := svc.Knowledge(context.Background(), db, 0)
	if err != nil || !info.Persisted {
		return
	}
	fmt.Printf("\nstore:\n")
	fmt.Printf("  persisted seq:    %d\n", info.PersistedSeq)
	fmt.Printf("  snapshot version: %d\n", info.SnapshotVersion)
	snap := svc.Metrics().Gather()
	fmt.Printf("  compactions:      %d (%d failed)\n",
		snap.CounterValue("genedit_kstore_compactions_total", db),
		snap.CounterValue("genedit_kstore_compaction_errors_total", db))
	switch {
	case info.StoreFailed != "":
		fmt.Printf("  health:           FAILED — %s\n", info.StoreFailed)
		fmt.Printf("                    (WAL rollback failed; store refuses further commits)\n")
	case info.CompactionErr != "":
		fmt.Printf("  health:           DEGRADED — compaction error: %s\n", info.CompactionErr)
		fmt.Printf("                    (commits remain durable; WAL is not being truncated)\n")
	default:
		fmt.Printf("  health:           ok\n")
	}
}

// printMinedAudit lists auto-mined knowledge with its audit trail: each
// live miner-authored instruction with its candidate ID and merge version,
// then the change events the miner committed. The gate verdict is implicit
// in presence — only candidates that passed the regression gate ever reach
// the set or its history; rejected candidates are discarded unmerged.
func printMinedAudit(set *knowledge.Set) {
	live := 0
	for _, ins := range set.Instructions() {
		if ins.Provenance.Editor != genedit.MinerEditor {
			continue
		}
		live++
		fmt.Printf("%-18s %s\n", ins.ID, ins.Text)
		if len(ins.Terms) > 0 {
			fmt.Printf("%18s defines: %v\n", "", ins.Terms)
		}
		fmt.Printf("%18s candidate %s, merged at version %d (passed regression gate)\n",
			"", ins.Provenance.FeedbackID, ins.Provenance.Version)
	}
	if live == 0 {
		fmt.Println("no mined knowledge in the live set")
	}
	fmt.Println()
	events := 0
	for _, ev := range set.History() {
		if ev.Editor != genedit.MinerEditor {
			continue
		}
		events++
		fmt.Printf("#%03d v%03d %-10s %-12s %-18s %s (candidate %s)\n",
			ev.Seq, ev.Version, ev.Op, ev.Kind, ev.EntityID, ev.Summary, ev.FeedbackID)
	}
	if events == 0 {
		fmt.Println("no mined merges in the audit history")
	}
}

// runMineDemo walks the self-improving loop end to end: a service over the
// miner workload serves the database's injected recurring exec failures,
// mines them, and prints the resulting audit — the same flow geneditd runs
// in the background under -miner.
func runMineDemo(db string, seed uint64) error {
	suite, injected := workload.NewMinerSuite(seed)
	svc := genedit.NewService(suite,
		genedit.WithModelSeed(42),
		genedit.WithGenerationCache(256),
		genedit.WithMiner(genedit.MinerConfig{}))
	defer svc.Close()
	ctx := context.Background()

	served, failed := 0, 0
	for _, c := range injected {
		if c.DB != db {
			continue
		}
		resp, err := svc.Generate(ctx, genedit.Request{Database: c.DB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			return err
		}
		served++
		if !resp.OK {
			failed++
		}
	}
	if served == 0 {
		return fmt.Errorf("database %q has no injected miner cases (try sports_holdings or retail_chain)", db)
	}
	fmt.Printf("served %d recurring questions, %d failed\n", served, failed)

	rep, err := svc.MineRound(ctx, db)
	if err != nil {
		return err
	}
	fmt.Printf("mining round: scanned=%d clusters=%d submitted=%d merged=%d rejected=%d unactionable=%d\n\n",
		rep.Scanned, rep.Clusters, rep.Submitted, rep.Merged, rep.Rejected, rep.Unactionable)

	engine, err := svc.Engine(ctx, db)
	if err != nil {
		return err
	}
	printMinedAudit(engine.KnowledgeSet())
	return nil
}

// runRevertDemo walks the library's edit → checkpoint → revert flow.
func runRevertDemo(set *knowledge.Set) {
	fmt.Printf("initial: %d instructions, version %d\n", set.Stats().Instructions, set.Version())
	cp := set.Checkpoint("demo-baseline")
	fmt.Printf("checkpoint cp-%d recorded\n", cp)

	err := set.Apply(knowledge.Edit{
		Op:   knowledge.EditInsert,
		Kind: knowledge.InstructionEntity,
		Instruction: &knowledge.Instruction{
			Text: "Demo: always round currency values to two decimals.",
		},
	}, "demo-sme", "fb-demo")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("after insert: %d instructions, version %d\n", set.Stats().Instructions, set.Version())

	if err := set.Revert(cp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("after revert: %d instructions, version %d\n", set.Stats().Instructions, set.Version())
	last := set.History()[len(set.History())-1]
	fmt.Printf("history tail: %s %s (%s)\n", last.Op, last.EntityID, last.Summary)
}
