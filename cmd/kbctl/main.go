// Command kbctl is the knowledge set library (§4.2.2) as a CLI: it shows
// the components of a database's knowledge set with their provenance, the
// audit history, and demonstrates checkpoint/revert.
//
//	kbctl -db sports_holdings -show stats
//	kbctl -db sports_holdings -show examples | instructions | intents | terms
//	kbctl -db sports_holdings -show history
//	kbctl -db sports_holdings -demo-revert     scripted edit → checkpoint → revert
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"genedit"
	"genedit/internal/knowledge"
)

func main() {
	db := flag.String("db", "sports_holdings", "target database")
	show := flag.String("show", "stats", "what to display: stats, examples, instructions, intents, terms, history, checkpoints")
	limit := flag.Int("n", 12, "max items to list")
	seed := flag.Uint64("seed", 1, "workload seed")
	demoRevert := flag.Bool("demo-revert", false, "demonstrate checkpoint/revert on the set")
	flag.Parse()

	// The service owns engine (and knowledge-set) construction, so kbctl
	// inspects exactly the set a served engine would use.
	svc := genedit.NewService(genedit.NewBenchmark(*seed))
	engine, err := svc.Engine(context.Background(), *db)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	set := engine.KnowledgeSet()

	if *demoRevert {
		runRevertDemo(set)
		return
	}

	switch *show {
	case "stats":
		st := set.Stats()
		fmt.Printf("database:     %s\n", *db)
		fmt.Printf("examples:     %d\n", st.Examples)
		fmt.Printf("instructions: %d\n", st.Instructions)
		fmt.Printf("intents:      %d\n", st.Intents)
		fmt.Printf("directives:   %d\n", st.Directives)
		fmt.Printf("version:      %d\n", st.Version)
	case "examples":
		for i, ex := range set.Examples() {
			if i >= *limit {
				fmt.Printf("... (%d more)\n", len(set.Examples())-i)
				break
			}
			fmt.Printf("%-8s [%s] %s\n         %s\n         source: %s\n",
				ex.ID, ex.Clause, ex.NL, ex.Pseudo, ex.Provenance.Source)
		}
	case "instructions":
		for _, ins := range set.Instructions() {
			fmt.Printf("%-8s %s\n", ins.ID, ins.Text)
			if ins.SQLHint != "" {
				fmt.Printf("         expected SQL: %s\n", ins.SQLHint)
			}
			if len(ins.Terms) > 0 {
				fmt.Printf("         defines: %v\n", ins.Terms)
			}
			fmt.Printf("         source: %s\n", ins.Provenance.Source)
		}
	case "intents":
		for _, it := range set.Intents() {
			fmt.Printf("%-12s %s (%d schema elements)\n", it.ID, it.Name, len(it.Elements))
		}
	case "terms":
		for _, t := range set.TermsIndex() {
			def := set.DefinesTerm(t)
			fmt.Printf("%-8s %s\n", t, def.Text)
		}
	case "history":
		for i, ev := range set.History() {
			if i >= *limit {
				fmt.Printf("... (%d more)\n", len(set.History())-i)
				break
			}
			fmt.Printf("#%03d v%03d %-10s %-12s %-10s %s\n",
				ev.Seq, ev.Version, ev.Op, ev.Kind, ev.EntityID, ev.Summary)
		}
	case "checkpoints":
		cps := set.Checkpoints()
		if len(cps) == 0 {
			fmt.Println("no checkpoints")
		}
		for _, cp := range cps {
			fmt.Printf("cp-%d %-24s at version %d\n", cp.ID, cp.Name, cp.Version)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown -show %q\n", *show)
		os.Exit(2)
	}
}

// runRevertDemo walks the library's edit → checkpoint → revert flow.
func runRevertDemo(set *knowledge.Set) {
	fmt.Printf("initial: %d instructions, version %d\n", set.Stats().Instructions, set.Version())
	cp := set.Checkpoint("demo-baseline")
	fmt.Printf("checkpoint cp-%d recorded\n", cp)

	err := set.Apply(knowledge.Edit{
		Op:   knowledge.EditInsert,
		Kind: knowledge.InstructionEntity,
		Instruction: &knowledge.Instruction{
			Text: "Demo: always round currency values to two decimals.",
		},
	}, "demo-sme", "fb-demo")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("after insert: %d instructions, version %d\n", set.Stats().Instructions, set.Version())

	if err := set.Revert(cp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("after revert: %d instructions, version %d\n", set.Stats().Instructions, set.Version())
	last := set.History()[len(set.History())-1]
	fmt.Printf("history tail: %s %s (%s)\n", last.Op, last.EntityID, last.Summary)
}
