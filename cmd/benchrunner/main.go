// Command benchrunner regenerates every quantitative exhibit of the paper:
//
//	benchrunner -table 1            Table 1 (GenEdit vs baselines)
//	benchrunner -table 2            Table 2 (operator ablations)
//	benchrunner -table extra        design-choice ablations beyond Table 2
//	benchrunner -table edits        §4.2.3 edits-acceptance metrics
//	benchrunner -table improvement  continuous-improvement rounds (§4)
//	benchrunner -table miner        self-improving loop: failure mining convergence
//	benchrunner -table all          everything
//
// The -seed flag varies the synthetic workload; -modelseed varies the
// simulated model's deterministic draws. Paper reference numbers are printed
// alongside for comparison.
//
// -parallel N switches to closed-loop load mode instead of regenerating
// tables: N workers issue Generate requests against a serving Service (the
// whole eval set as the request mix, repeated), reporting throughput
// (gen/sec), p50/p95/p99 latency and generation-cache counters. -requests
// bounds the total request count and -gencache sizes the cache (0 = serve
// every request through the full pipeline):
//
//	benchrunner -parallel 8 -requests 4000
//	benchrunner -parallel 8 -requests 4000 -gencache 0     # uncached baseline
//
// Load mode scales: -scale N swaps the standard suite for the stress-scale
// suite (every domain cloned into N tenant databases with distinct seeded
// data), and -kscale M multiplies each database's query-log knowledge with
// parameter variants, growing the retrieval indexes past the ANN
// partitioning threshold. -approvers N runs N concurrent SME approver
// loops whose merges hot-swap engines (re-partitioning the retrieval
// indexes) while the load workers generate. The 100x hardening run is:
//
//	benchrunner -parallel 8 -requests 4000 -adversarial -scale 100 -approvers 4
//
// Load mode can also exercise the overload defenses: -adversarial swaps in
// the hostile request mix (hot-key skew on one tenant + cache-busting
// unique questions), -admitrate/-admitburst enable per-tenant token-bucket
// rate limiting, -maxinflight/-maxqueue bound concurrency with a
// deadline-aware queue, and -reqtimeout attaches a per-request deadline.
// The report then includes the outcome breakdown (ok / stale-served /
// rate-limited / overloaded / deadline-exceeded) and admission counters:
//
//	benchrunner -parallel 16 -requests 4000 -adversarial -admitrate 200 -maxinflight 8 -reqtimeout 2s
//
// Every load run ends with a dump of the run's metrics registry in
// Prometheus text exposition — the same series a geneditd /metrics scrape
// would serve for that traffic (-metricsdump=false to suppress;
// -tracesample N adds sampled per-operator latency histograms).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"genedit"
	"genedit/internal/bench"
	"genedit/internal/embed"
	"genedit/internal/eval"
	"genedit/internal/feedback"
	"genedit/internal/metrics"
	"genedit/internal/sqlexec"
	"genedit/internal/task"
	"genedit/internal/workload"
)

var paperTable1 = `Paper Table 1 (BIRD-dev 10%):
Method                  Simple  Moderate  Challenging     All
--------------------------------------------------------------
CHESS                    65.43     64.81        58.33   64.62
MAC-SQL                  65.73     52.69        40.28   59.39
TA-SQL                   63.14     48.60        36.11   56.19
DAIL-SQL                 62.50     43.20        37.50   54.30
C3-SQL                   58.90     38.50        31.90   50.20
GenEdit                  69.89     39.29        36.36   60.61`

var paperTable2 = `Paper Table 2 (ablations):
Method                  Simple  Moderate  Challenging     All
--------------------------------------------------------------
GenEdit                  69.89     39.29        36.36   60.61
w/o Schema Linking       67.74     42.86        18.18   58.33
w/o Instructions         58.06     28.57        36.36   50.00
w/o Examples             69.89     35.71         9.09   59.09
w/o Pseudo-SQL           62.37     25.00        18.18   50.76
w/o Decomposition        66.67     46.43        18.18   58.33`

// jsonRow is one system's EX row in the -json output.
type jsonRow struct {
	System      string  `json:"system"`
	Simple      float64 `json:"ex_simple"`
	Moderate    float64 `json:"ex_moderate"`
	Challenging float64 `json:"ex_challenging"`
	All         float64 `json:"ex_all"`
}

// execConfig records the SQL execution-engine configuration a run used, so
// committed baselines say which engine produced them.
type execConfig struct {
	BatchExec     bool `json:"batch_exec"`
	MorselSize    int  `json:"morsel_size"`
	MorselWorkers int  `json:"morsel_workers"`
}

// allocStat is a -benchmem-style allocation summary for one exhibit:
// heap allocation count and megabytes allocated while regenerating it
// (runtime.MemStats deltas, so background allocation is included — treat
// as a trajectory signal, not an exact figure).
type allocStat struct {
	Allocs  uint64  `json:"allocs"`
	AllocMB float64 `json:"alloc_mb"`
}

// benchRecord is the machine-readable result file -json writes; committed
// baselines (BENCH_0.json) give future PRs a perf and accuracy trajectory.
// The parity gate (checkParity) compares Tables only; the remaining fields
// are informational and may grow without invalidating old baselines.
type benchRecord struct {
	Seed        uint64               `json:"seed"`
	ModelSeed   uint64               `json:"model_seed"`
	Exec        execConfig           `json:"exec"`
	DurationsMS map[string]float64   `json:"durations_ms"`
	AllocStats  map[string]allocStat `json:"alloc_stats"`
	Tables      map[string][]jsonRow `json:"tables"`
}

func jsonRows(reports []*eval.Report) []jsonRow {
	out := make([]jsonRow, 0, len(reports))
	for _, rep := range reports {
		out = append(out, jsonRow{
			System:      rep.System,
			Simple:      rep.EX(task.Simple),
			Moderate:    rep.EX(task.Moderate),
			Challenging: rep.EX(task.Challenging),
			All:         rep.EX(""),
		})
	}
	return out
}

func main() {
	table := flag.String("table", "all", "which exhibit to regenerate: 1, 2, extra, edits, improvement, miner, all")
	seed := flag.Uint64("seed", 1, "workload seed")
	modelSeed := flag.Uint64("modelseed", 42, "simulated-model seed")
	rounds := flag.Int("rounds", 4, "improvement rounds")
	jsonPath := flag.String("json", "", "also write results (EX tables + wall-clock) as JSON to this file")
	baseline := flag.String("baseline", "", "EX-parity gate: compare the regenerated EX tables against this committed JSON baseline and exit non-zero on any drift")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	parallel := flag.Int("parallel", 0, "closed-loop load mode: N concurrent workers issuing Generate requests (skips table regeneration)")
	requests := flag.Int("requests", 2000, "total requests to issue in -parallel load mode")
	genCache := flag.Int("gencache", 4096, "generation-cache size in -parallel load mode (0 = disabled)")
	noBatch := flag.Bool("nobatch", false, "serve -parallel load mode through the compiled row engine instead of the columnar batch engine")
	adversarial := flag.Bool("adversarial", false, "load mode: replace the round-robin eval mix with the adversarial overload mix (hot-key skew + cache-busting uniques)")
	hotFrac := flag.Float64("hotfrac", 0.4, "adversarial mix: fraction of requests hammering the hot key set")
	uniqueFrac := flag.Float64("uniquefrac", 0.2, "adversarial mix: fraction of cache-busting unique requests")
	admitRate := flag.Float64("admitrate", 0, "load mode: per-tenant token-bucket refill rate in requests/sec (0 = admission control off)")
	admitBurst := flag.Float64("admitburst", 0, "load mode: per-tenant token-bucket burst capacity (0 = defaults to -admitrate)")
	maxInflight := flag.Int("maxinflight", 0, "load mode: service-wide concurrent-generation cap (0 = unlimited)")
	maxQueue := flag.Int("maxqueue", 64, "load mode: bounded admission-queue depth once -maxinflight is reached")
	reqTimeout := flag.Duration("reqtimeout", 0, "load mode: per-request deadline (0 = none); deadline-aware shedding rejects requests that cannot start in time")
	traceSample := flag.Int("tracesample", 0, "load mode: record per-operator timings for every Nth request (traced requests bypass the generation cache; 0 = off)")
	metricsDump := flag.Bool("metricsdump", true, "load mode: dump the metrics-registry snapshot (Prometheus text exposition) at end of run")
	scale := flag.Int("scale", 0, "load mode: clone every domain into N tenant databases via the stress-scale suite (0 = standard suite); -scale 100 is the 100x hardening run")
	kscale := flag.Int("kscale", 10, "load mode, with -scale: per-database query-log knowledge multiplier (parameter-variant log rounds growing each retrieval index past the ANN partitioning threshold)")
	approvers := flag.Int("approvers", 0, "load mode: N concurrent SME approver loops; approved merges hot-swap engines (and re-partition retrieval indexes) while load workers generate")
	noANN := flag.Bool("noann", false, "load mode: disable ANN-partitioned retrieval (every search scans the full index), for A/B against the default")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "creating cpu profile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "starting cpu profile:", err)
			os.Exit(1)
		}
		// Stopped explicitly before exit; error paths os.Exit and drop the
		// partial profile, which is fine for a diagnostics flag.
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *parallel > 0 {
		// Load mode produces no EX tables, so the table-record flags are
		// rejected rather than silently ignored; -cpuprofile (set up above)
		// profiles the load run itself.
		if *baseline != "" {
			fmt.Fprintln(os.Stderr, "-baseline gates the EX tables; it cannot be combined with -parallel load mode")
			os.Exit(1)
		}
		if *jsonPath != "" {
			fmt.Fprintln(os.Stderr, "-json records the EX tables; it cannot be combined with -parallel load mode")
			os.Exit(1)
		}
		cfg := loadConfig{
			scale:         *scale,
			kscale:        *kscale,
			approvers:     *approvers,
			annOff:        *noANN,
			workers:       *parallel,
			totalRequests: *requests,
			genCacheSize:  *genCache,
			batchExec:     !*noBatch,
			adversarial:   *adversarial,
			hotFrac:       *hotFrac,
			uniqueFrac:    *uniqueFrac,
			admitRate:     *admitRate,
			admitBurst:    *admitBurst,
			maxInflight:   *maxInflight,
			maxQueue:      *maxQueue,
			reqTimeout:    *reqTimeout,
			traceSample:   *traceSample,
			metricsDump:   *metricsDump,
		}
		if err := runParallelLoad(*seed, *modelSeed, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "load mode failed:", err)
			os.Exit(1)
		}
		return
	}

	if *scale > 0 || *approvers > 0 || *noANN {
		// Table regeneration always runs the standard suite at production
		// defaults — the stress knobs would silently change the exhibits.
		fmt.Fprintln(os.Stderr, "-scale/-approvers/-noann apply to -parallel load mode only")
		os.Exit(1)
	}

	record := benchRecord{
		Seed:      *seed,
		ModelSeed: *modelSeed,
		// Exhibits regenerate through engines at production defaults: batch
		// execution on, morsels at the default size, fan-out bounded by
		// GOMAXPROCS.
		Exec: execConfig{
			BatchExec:     true,
			MorselSize:    sqlexec.DefaultMorselSize,
			MorselWorkers: runtime.GOMAXPROCS(0),
		},
		DurationsMS: make(map[string]float64),
		AllocStats:  make(map[string]allocStat),
		Tables:      make(map[string][]jsonRow),
	}

	suiteStart := time.Now()
	suite := workload.NewSuite(*seed)
	record.DurationsMS["suite_generation"] = float64(time.Since(suiteStart).Microseconds()) / 1000
	if err := suite.ValidateGold(); err != nil {
		fmt.Fprintln(os.Stderr, "workload validation failed:", err)
		os.Exit(1)
	}

	run := func(name string, fn func() error) {
		if *table != "all" && *table != name {
			return
		}
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "table %s failed: %v\n", name, err)
			os.Exit(1)
		}
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		record.DurationsMS["table_"+name] = float64(elapsed.Microseconds()) / 1000
		st := allocStat{
			Allocs:  after.Mallocs - before.Mallocs,
			AllocMB: float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		}
		record.AllocStats["table_"+name] = st
		fmt.Printf("[table %s: %s, %d allocs, %.1f MB allocated]\n\n",
			name, elapsed.Round(time.Millisecond), st.Allocs, st.AllocMB)
	}

	run("1", func() error {
		reports, err := bench.Table1(suite, *modelSeed)
		if err != nil {
			return err
		}
		record.Tables["table1"] = jsonRows(reports)
		fmt.Println(eval.FormatTable("Table 1 — execution accuracy on mini-BIRD (93/28/11 cases)", reports))
		rank := eval.Rank(reports, "GenEdit")
		total := len(reports)
		fmt.Printf("GenEdit ranks %d of %d compared systems by overall EX (paper: 2nd among open-source).\n\n", rank, total)
		fmt.Println(paperTable1)
		fmt.Println()
		return nil
	})

	run("2", func() error {
		reports, err := bench.RunAblations(suite, *modelSeed, bench.Table2Ablations())
		if err != nil {
			return err
		}
		record.Tables["table2"] = jsonRows(reports)
		fmt.Println(eval.FormatTable("Table 2 — operator ablations", reports))
		fmt.Println(paperTable2)
		fmt.Println()
		return nil
	})

	run("extra", func() error {
		reports, err := bench.RunAblations(suite, *modelSeed, bench.ExtraAblations())
		if err != nil {
			return err
		}
		record.Tables["extra"] = jsonRows(reports)
		fmt.Println(eval.FormatTable("Design-choice ablations (beyond the paper's Table 2)", reports))
		return nil
	})

	run("edits", func() error {
		stats, err := feedback.RunAcceptanceExperiment(suite, *modelSeed, 3)
		if err != nil {
			return err
		}
		fmt.Println("§4.2.3 — edits recommendation acceptance (simulated SMEs over all failed eval cases)")
		fmt.Println(stats)
		return nil
	})

	run("improvement", func() error {
		res, err := feedback.RunImprovementExperiment(suite, *modelSeed, *rounds, 20)
		if err != nil {
			return err
		}
		fmt.Println("Continuous improvement — EX per feedback round, starting from a degraded")
		fmt.Println("knowledge set (no instructions) and merging approved edits each round:")
		fmt.Println(res)
		fmt.Printf("audit history events across databases: %d\n\n", res.FinalHistoryLen)
		return nil
	})

	run("miner", func() error {
		rounds, err := genedit.RunMinerConvergence(*seed, *modelSeed, 3)
		if err != nil {
			return err
		}
		fmt.Println("Self-improving loop — EX over the injected recurring-failure families,")
		fmt.Println("measured at each round's start; the miner then clusters that round's")
		fmt.Println("failures and merges whatever passes the regression gate:")
		fmt.Printf("%-8s %8s %8s %9s %13s\n", "round", "EX", "merged", "rejected", "unactionable")
		rows := make([]jsonRow, 0, len(rounds))
		for _, r := range rounds {
			fmt.Printf("%-8d %7.1f%% %8d %9d %13d\n", r.Round, r.EX, r.Merged, r.Rejected, r.Unactionable)
			// The injected families are all Simple-difficulty cases, so the
			// round's EX doubles as its Simple and overall EX.
			rows = append(rows, jsonRow{System: fmt.Sprintf("round %d", r.Round), Simple: r.EX, All: r.EX})
		}
		fmt.Println()
		record.Tables["miner_convergence"] = rows
		return nil
	})

	if *table == "all" || *table == "counts" {
		fmt.Printf("eval set: %d simple / %d moderate / %d challenging (%d total) across %d databases\n",
			len(suite.CasesByDifficulty(task.Simple)),
			len(suite.CasesByDifficulty(task.Moderate)),
			len(suite.CasesByDifficulty(task.Challenging)),
			len(suite.Cases), workload.Domains())
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "encoding json results:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "writing json results:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}

	if *baseline != "" {
		if err := checkParity(&record, *baseline); err != nil {
			fmt.Fprintln(os.Stderr, "EX parity gate FAILED:", err)
			os.Exit(1)
		}
		fmt.Printf("EX parity gate passed: tables bit-identical to %s\n", *baseline)
	}
}

// loadConfig bundles the load-mode knobs.
type loadConfig struct {
	workers       int
	totalRequests int
	genCacheSize  int
	batchExec     bool
	adversarial   bool
	hotFrac       float64
	uniqueFrac    float64
	admitRate     float64
	admitBurst    float64
	maxInflight   int
	maxQueue      int
	reqTimeout    time.Duration
	traceSample   int
	metricsDump   bool
	scale         int
	kscale        int
	approvers     int
	annOff        bool
}

// loadCounters aggregates per-request outcomes across workers.
type loadCounters struct {
	ok          atomic.Int64 // err == nil, live answer
	stale       atomic.Int64 // err == nil, degraded onto a stale cached answer
	failedRec   atomic.Int64 // err == nil but the record's SQL failed (pipeline failure, not overload)
	rateLimited atomic.Int64 // 429-class: tenant over budget
	overloaded  atomic.Int64 // 503-class: queue full / deadline unmeetable
	timeout     atomic.Int64 // canceled by the per-request deadline mid-flight
}

// runParallelLoad drives a serving Service with workers concurrent
// closed-loop clients (each issues its next request as soon as the previous
// one completes) and reports throughput, latency percentiles, an outcome
// breakdown (ok/stale/shed/timeout) and the generation-cache and admission
// counters. The default request mix is the full eval set visited
// round-robin, so repeat traffic exercises the cache-hit path exactly the
// way recurring enterprise questions do; -adversarial swaps in the overload
// mix (hot-key skew + cache-busting uniques) and -admitrate/-maxinflight
// enable the admission-control defenses under test.
func runParallelLoad(seed, modelSeed uint64, cfg loadConfig) error {
	if cfg.totalRequests < 1 {
		cfg.totalRequests = 1
	}
	var suite *workload.Suite
	if cfg.scale > 0 {
		sc := workload.ScaleConfig{DBFactor: cfg.scale, KnowledgeFactor: cfg.kscale}
		suite = workload.NewScaledSuite(seed, sc)
		fmt.Printf("stress-scale suite: %d databases, %d cases (DBFactor %d, KnowledgeFactor %d)\n",
			len(suite.Databases), len(suite.Cases), sc.DBFactor, sc.KnowledgeFactor)
	} else {
		suite = workload.NewSuite(seed)
	}
	// A private registry rather than the process default: the dump at the
	// end of the run then contains exactly this run's counters.
	reg := metrics.NewRegistry()
	opts := []genedit.Option{genedit.WithModelSeed(modelSeed), genedit.WithBatchExec(cfg.batchExec),
		genedit.WithMetrics(reg)}
	if cfg.annOff {
		opts = append(opts, genedit.WithANNRetrieval(genedit.ANNRetrieval{Disable: true}))
	}
	if cfg.traceSample > 0 {
		opts = append(opts, genedit.WithOperatorSampling(cfg.traceSample))
	}
	if cfg.genCacheSize > 0 {
		opts = append(opts, genedit.WithGenerationCache(cfg.genCacheSize))
	}
	admissionOn := cfg.admitRate > 0 || cfg.maxInflight > 0
	if admissionOn {
		opts = append(opts, genedit.WithAdmission(genedit.AdmissionConfig{
			RatePerSec:    cfg.admitRate,
			Burst:         cfg.admitBurst,
			MaxConcurrent: cfg.maxInflight,
			MaxQueue:      cfg.maxQueue,
		}))
	}
	svc := genedit.NewService(suite, opts...)
	defer svc.Close()
	ctx := context.Background()

	fmt.Printf("prewarming %d engines...\n", len(svc.Databases()))
	warmStart := time.Now()
	if err := svc.Prewarm(ctx); err != nil {
		return err
	}
	fmt.Printf("prewarmed in %s\n", time.Since(warmStart).Round(time.Millisecond))

	var mix *workload.OverloadMix
	if cfg.adversarial {
		mix = workload.NewOverloadMix(suite, seed, cfg.hotFrac, cfg.uniqueFrac)
	}
	requestAt := func(i int64) genedit.Request {
		if mix != nil {
			r := mix.Request(int(i))
			return genedit.Request{Database: r.Database, Question: r.Question, Evidence: r.Evidence}
		}
		c := suite.Cases[int(i)%len(suite.Cases)]
		return genedit.Request{Database: c.DB, Question: c.Question, Evidence: c.Evidence}
	}

	approvals := startApprovers(ctx, svc, suite, seed, cfg.approvers)

	var (
		next     atomic.Int64
		counters loadCounters
	)
	latencies := make([][]time.Duration, cfg.workers)
	errs := make([]error, cfg.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, cfg.totalRequests/cfg.workers+1)
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.totalRequests) {
					break
				}
				req := requestAt(i)
				reqCtx, cancel := ctx, context.CancelFunc(nil)
				if cfg.reqTimeout > 0 {
					reqCtx, cancel = context.WithTimeout(ctx, cfg.reqTimeout)
				}
				reqStart := time.Now()
				resp, err := svc.Generate(reqCtx, req)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					lats = append(lats, time.Since(reqStart))
					switch {
					case resp.Stale:
						counters.stale.Add(1)
					case !resp.OK:
						counters.failedRec.Add(1)
					default:
						counters.ok.Add(1)
					}
				case errors.Is(err, genedit.ErrRateLimited):
					counters.rateLimited.Add(1)
				case errors.Is(err, genedit.ErrOverloaded):
					counters.overloaded.Add(1)
				case errors.Is(err, genedit.ErrCanceled):
					counters.timeout.Add(1)
				default:
					errs[w] = err
					latencies[w] = lats
					return
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	approvals.stop()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	engine := "columnar batch (morsel size " + fmt.Sprint(sqlexec.DefaultMorselSize) + ")"
	if !cfg.batchExec {
		engine = "compiled row"
	}
	mixName := fmt.Sprintf("%d cases round-robin", len(suite.Cases))
	if mix != nil {
		mixName = fmt.Sprintf("adversarial (%.0f%% hot on %s, %.0f%% cache-busting)",
			100*cfg.hotFrac, mix.HotDatabase(), 100*cfg.uniqueFrac)
	}
	fmt.Printf("\nclosed-loop load: %d workers, %d requests, mix %s, %s sql engine\n",
		cfg.workers, cfg.totalRequests, mixName, engine)
	fmt.Printf("  wall clock   %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput   %.1f gen/sec (completed requests)\n", float64(len(all))/elapsed.Seconds())
	fmt.Printf("  latency      p50 %s   p95 %s   p99 %s   max %s\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))

	shed := counters.rateLimited.Load() + counters.overloaded.Load() + counters.timeout.Load()
	fmt.Printf("  outcomes     %d ok / %d stale-served / %d failed-sql / %d rate-limited (429) / %d overloaded (503) / %d deadline-exceeded\n",
		counters.ok.Load(), counters.stale.Load(), counters.failedRec.Load(),
		counters.rateLimited.Load(), counters.overloaded.Load(), counters.timeout.Load())
	fmt.Printf("  error rate   %.1f%% shed or timed out (%d of %d)\n",
		100*float64(shed)/float64(cfg.totalRequests), shed, cfg.totalRequests)

	st := svc.GenerationCacheStats()
	if svc.GenerationCacheEnabled() {
		served := st.Hits + st.Misses + st.Coalesced
		fmt.Printf("  gen cache    %d hits / %d misses / %d coalesced (%.1f%% served without a pipeline run), %d stale serves, %d/%d entries\n",
			st.Hits, st.Misses, st.Coalesced,
			100*float64(st.Hits+st.Coalesced)/float64(max(served, 1)),
			st.StaleServed, st.Entries, st.Capacity)
	} else {
		fmt.Printf("  gen cache    disabled (every request ran the full pipeline)\n")
	}
	if admissionOn {
		ast := svc.AdmissionStats()
		fmt.Printf("  admission    %d admitted, peak queue %d; shed: %d rate-limited, %d queue-full, %d deadline, %d canceled-in-queue\n",
			ast.Admitted, ast.MaxQueueDepth, ast.RateLimited, ast.ShedQueueFull, ast.ShedDeadline, ast.CanceledInQueue)
		tenants := make([]string, 0, len(ast.Tenants))
		for db := range ast.Tenants {
			tenants = append(tenants, db)
		}
		sort.Strings(tenants)
		for _, db := range tenants {
			ts := ast.Tenants[db]
			if ts.RateLimited == 0 && ts.Admitted == 0 {
				continue
			}
			fmt.Printf("    tenant %-24s %6d admitted %6d rate-limited\n", db, ts.Admitted, ts.RateLimited)
		}
	} else {
		fmt.Printf("  admission    disabled (-admitrate / -maxinflight to enable)\n")
	}

	var agg embed.SearchStats
	for _, rs := range svc.RetrievalStats() {
		for _, st := range []embed.SearchStats{rs.Examples, rs.Instructions} {
			agg.Searches += st.Searches
			agg.ANNSearches += st.ANNSearches
			agg.CandidatesScanned += st.CandidatesScanned
			agg.PartitionsProbed += st.PartitionsProbed
			agg.FullSweeps += st.FullSweeps
		}
	}
	if agg.Searches > 0 {
		fmt.Printf("  retrieval    %d searches (%d ann-partitioned / %d full-scan), %d candidates scanned (avg %.1f/search), %d partitions probed, %d full-sweep fallbacks\n",
			agg.Searches, agg.ANNSearches, agg.Searches-agg.ANNSearches,
			agg.CandidatesScanned, float64(agg.CandidatesScanned)/float64(agg.Searches),
			agg.PartitionsProbed, agg.FullSweeps)
	}
	if cfg.approvers > 0 {
		fmt.Printf("  approvals    %d approver loops: %d feedback sessions, %d merges hot-swapped, %d regression-rejected\n",
			cfg.approvers, approvals.sessions.Load(), approvals.merged.Load(), approvals.rejected.Load())
	}

	if cfg.metricsDump {
		// The same bytes a geneditd /metrics scrape would serve for this
		// traffic — grep-friendly ground truth for regressions in the report
		// numbers above (-metricsdump=false to suppress).
		fmt.Printf("\nmetrics snapshot (Prometheus text exposition 0.0.4):\n")
		if err := reg.Gather().WriteText(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// approverPool tracks the concurrent SME approver loops running alongside
// the load workers (-approvers). Each loop opens a feedback session against
// one database's solver, stages the recommended edits, submits them through
// the regression gate and approves on pass — every approval rebuilds the
// engine's retrieval indexes (re-partitioning the ANN layer) and hot-swaps
// the engine into serving while load workers keep generating against their
// old immutable snapshot. This is the concurrent-approval half of the
// stress-scale run: it proves rebuilds never serve a stale or torn index.
type approverPool struct {
	sessions atomic.Int64
	merged   atomic.Int64
	rejected atomic.Int64
	cancel   context.CancelFunc
	wg       sync.WaitGroup
}

// stop cancels the loops and waits for in-flight sessions to wind down.
func (p *approverPool) stop() {
	if p.cancel != nil {
		p.cancel()
	}
	p.wg.Wait()
}

// startApprovers launches n approver loops round-robining over the suite's
// databases. Each loop runs its first session to completion on the parent
// context before honoring cancellation, so even short load runs submit at
// least one change per approver deterministically.
func startApprovers(ctx context.Context, svc *genedit.Service, suite *workload.Suite, seed uint64, n int) *approverPool {
	p := &approverPool{}
	if n <= 0 {
		return p
	}
	loopCtx, cancel := context.WithCancel(ctx)
	p.cancel = cancel
	dbs := svc.Databases()
	sort.Strings(dbs)
	casesByDB := make(map[string][]*genedit.Case)
	for _, c := range suite.Cases {
		casesByDB[c.DB] = append(casesByDB[c.DB], c)
	}
	for a := 0; a < n; a++ {
		p.wg.Add(1)
		go func(a int) {
			defer p.wg.Done()
			sme := feedback.NewSimulatedSME(seed ^ uint64(0xa11*(a+1)))
			for round := 0; ; round++ {
				sessCtx := ctx
				if round > 0 {
					if loopCtx.Err() != nil {
						return
					}
					sessCtx = loopCtx
				}
				db := dbs[(a+round*n)%len(dbs)]
				cases := casesByDB[db]
				if len(cases) < 3 {
					continue
				}
				// First cases form the golden regression suite; feedback
				// sessions target the rest.
				golden := cases[:2]
				c := cases[2+(a+round)%(len(cases)-2)]
				if err := p.runSession(sessCtx, svc, sme, db, golden, c, a); err != nil {
					if errors.Is(err, genedit.ErrCanceled) {
						return
					}
					// Other errors are tolerated: the load run, not the
					// approver loop, decides pass/fail.
				}
			}
		}(a)
	}
	return p
}

// runSession drives one open → feedback → stage → submit → approve cycle.
func (p *approverPool) runSession(ctx context.Context, svc *genedit.Service, sme *feedback.SimulatedSME, db string, golden []*genedit.Case, c *genedit.Case, a int) error {
	solver, err := svc.Solver(ctx, db, golden)
	if err != nil {
		return err
	}
	sess, err := solver.OpenContext(ctx, c.Question, c.Evidence)
	if err != nil {
		return err
	}
	p.sessions.Add(1)
	rec, err := sess.Feedback(sme.FeedbackFor(c, sess.Record))
	if err != nil {
		return err
	}
	staged, _ := sme.ReviewEdits(c, rec.Edits)
	if len(staged) == 0 {
		return nil
	}
	sess.Stage(staged...)
	res, err := sess.SubmitContext(ctx)
	if err != nil {
		return err
	}
	if !res.Passed {
		p.rejected.Add(1)
		return nil
	}
	if err := solver.Approve(res.Pending, fmt.Sprintf("approver-%d", a)); err != nil {
		return err
	}
	p.merged.Add(1)
	return nil
}

// checkParity diffs the regenerated EX tables against a committed baseline
// record. Every table present in the baseline must have been regenerated
// this run (so -baseline is only meaningful with -table all or a superset)
// and must match row-for-row, bit-for-bit — wall-clock durations are
// deliberately excluded. This is the CI gate that keeps API refactors from
// silently drifting the paper's exhibits.
func checkParity(record *benchRecord, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base benchRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("decoding baseline: %w", err)
	}
	if base.Seed != record.Seed || base.ModelSeed != record.ModelSeed {
		return fmt.Errorf("seed mismatch: run (%d, %d) vs baseline (%d, %d) — rerun with -seed %d -modelseed %d",
			record.Seed, record.ModelSeed, base.Seed, base.ModelSeed, base.Seed, base.ModelSeed)
	}
	names := make([]string, 0, len(base.Tables))
	for name := range base.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	var drift []string
	for _, name := range names {
		got, ok := record.Tables[name]
		if !ok {
			drift = append(drift, fmt.Sprintf("table %q not regenerated this run", name))
			continue
		}
		want := base.Tables[name]
		if len(got) != len(want) {
			drift = append(drift, fmt.Sprintf("table %q: %d rows vs baseline %d", name, len(got), len(want)))
			continue
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				drift = append(drift, fmt.Sprintf("table %q row %d: %+v vs baseline %+v", name, i, got[i], want[i]))
			}
		}
	}
	if len(drift) > 0 {
		for _, d := range drift {
			fmt.Fprintln(os.Stderr, "  drift:", d)
		}
		return fmt.Errorf("%d drift(s) vs %s", len(drift), path)
	}
	return nil
}
