// Command genedit runs the GenEdit pipeline for a single question against
// one of the synthetic benchmark databases:
//
//	genedit -db sports_holdings -q "top 5 sports organisations by total revenue in Canada for 2023"
//	genedit -db sports_holdings -q "..." -prompt      also print the Fig. 2 prompt
//	genedit -db sports_holdings -q "..." -trace       print per-operator timings
//	genedit -list                                     list databases
//
// The tool drives the genedit.Service API — the same construction path as
// the geneditd daemon — and prints the reformulated question, classified
// intents, the CoT plan, every self-correction attempt, and the executed
// result. -timeout bounds the whole request; an expired deadline aborts
// mid-pipeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"genedit"
	"genedit/internal/workload"
)

func main() {
	db := flag.String("db", "sports_holdings", "target database")
	q := flag.String("q", "", "natural-language question")
	evidence := flag.String("evidence", "", "external-knowledge evidence string")
	seed := flag.Uint64("seed", 1, "workload seed")
	modelSeed := flag.Uint64("modelseed", 42, "simulated-model seed")
	timeout := flag.Duration("timeout", 30*time.Second, "request deadline (0 = none)")
	showPrompt := flag.Bool("prompt", false, "print the generation prompt (Fig. 2 structure)")
	showTrace := flag.Bool("trace", false, "print per-operator timings")
	list := flag.Bool("list", false, "list databases and exit")
	flag.Parse()

	suite := genedit.NewBenchmark(*seed)
	if *list {
		for _, name := range workload.DomainNames() {
			sch := suite.Schemas[name]
			fmt.Printf("%-22s %d tables, %d columns\n", name, len(sch.Tables), sch.ColumnCount())
		}
		return
	}
	if *q == "" {
		fmt.Fprintln(os.Stderr, "missing -q question (try -list for databases)")
		os.Exit(2)
	}

	opts := []genedit.Option{genedit.WithModelSeed(*modelSeed)}
	var trace *genedit.Trace
	if *showTrace {
		opts = append(opts, genedit.WithTrace(func(t *genedit.Trace) { trace = t }))
	}
	svc := genedit.NewService(suite, opts...)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	resp, err := svc.Generate(ctx, genedit.Request{Database: *db, Question: *q, Evidence: *evidence})
	if err != nil {
		fmt.Fprintln(os.Stderr, "generation failed:", err)
		os.Exit(1)
	}
	rec := resp.Record

	fmt.Println("question:     ", rec.Question)
	fmt.Println("reformulated: ", rec.Reformulated)
	fmt.Println("intents:      ", strings.Join(rec.IntentNames, ", "))
	fmt.Printf("retrieved:     %d examples, %d instructions, %d linked columns\n",
		len(rec.Context.Examples), len(rec.Context.Instructions), len(rec.Context.LinkedElements))
	fmt.Printf("plan:          %d steps (%d with pseudo-SQL)\n", len(rec.Plan.Steps), anchoredSteps(rec))
	for i, s := range rec.Plan.Steps {
		fmt.Printf("  %2d. %s\n", i+1, s.Description)
		if s.Pseudo != "" {
			fmt.Printf("      %s\n", s.Pseudo)
		}
	}
	for i, a := range rec.Attempts {
		status := a.Kind
		if a.Err != "" {
			status += ": " + a.Err
		}
		fmt.Printf("attempt %d:     %s\n", i+1, status)
	}
	fmt.Println("final SQL:")
	fmt.Println("  " + resp.SQL)
	if resp.Failure != nil {
		fmt.Printf("failure:       %s\n", resp.Failure)
	}

	if *showPrompt {
		fmt.Println("\n--- generation prompt (Fig. 2 structure) ---")
		fmt.Println(rec.Prompt())
	}

	if *showTrace && trace != nil {
		fmt.Println("\nper-operator timings:")
		for _, op := range trace.Ops {
			fmt.Printf("  %-22s %s\n", op.Op, op.Duration)
		}
		fmt.Printf("  %-22s %s (request %s)\n", "total", trace.Total, resp.Duration)
	}

	if resp.OK && rec.Result != nil {
		printResult(rec.Result)
	}
}

func anchoredSteps(rec *genedit.Record) int {
	n := 0
	for _, s := range rec.Plan.Steps {
		if s.Pseudo != "" {
			n++
		}
	}
	return n
}

func printResult(res *genedit.Result) {
	fmt.Println("\nresult:")
	fmt.Println("  " + strings.Join(res.Columns, " | "))
	for i, row := range res.Rows {
		if i >= 12 {
			fmt.Printf("  ... (%d more rows)\n", len(res.Rows)-i)
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Println("  " + strings.Join(parts, " | "))
	}
}
