// Command geneditd serves the GenEdit pipeline as a JSON-over-HTTP daemon —
// the deployment shape the paper describes: a long-lived service that many
// enterprise sessions query concurrently, one knowledge set per company
// database.
//
//	geneditd -addr :8080
//	geneditd -addr :8080 -prewarm -workers 8 -timeout 10s -stmtcache 2048
//	geneditd -addr :8080 -store /var/lib/genedit   durable knowledge sets
//
// Endpoints:
//
//	POST /v1/generate                   {"database": "...", "question": "...", "evidence": "..."}
//	POST /v1/generate/batch             {"requests": [{...}, ...]}
//	GET  /v1/databases                  list servable databases
//	POST /v1/feedback/open              start an SME feedback session
//	POST /v1/feedback/{id}/regenerate   critique -> staged edits -> regenerate
//	POST /v1/feedback/{id}/submit       regression-test the staged edits
//	POST /v1/feedback/{id}/approve      merge (persist + hot-swap the engine)
//	GET  /v1/knowledge/{db}             knowledge version, counts, change history
//	GET  /v1/miner/{db}                 failure counters + miner stats for one database
//	POST /v1/miner/{db}/mine            run one mining round now (requires -miner)
//	GET  /v1/stats                      serving counters (generation cache, admission, per-db failures, miner)
//	GET  /metrics                       Prometheus text exposition (disable with -metrics=false)
//	GET  /healthz                       liveness probe
//	GET  /readyz                        readiness probe: 503 until prewarm completes and every opened store is healthy
//
// Engines are built lazily per database (coalesced across concurrent
// requests) unless -prewarm front-loads them. -timeout bounds each request;
// a deadline that expires mid-pipeline returns 504 with the cancellation
// error. -trace logs per-operator timings for every request.
//
// Overload behavior: -admitrate / -admitburst put a per-database token
// bucket in front of generation (shed requests get 429 + Retry-After);
// -maxinflight / -maxqueue bound concurrently executing and queued
// generations (a full queue or an unmeetable deadline sheds with 503 +
// Retry-After). When the generation cache holds an answer for a shed
// request's question from a previous knowledge version, the daemon serves
// it instead, marked "stale": true with its "stale_version". -maxsessions
// (default 1024) caps concurrently open feedback sessions; opens beyond
// the cap get 429. Admission counters are reported on /v1/stats.
//
// -gencache (default 1024, 0 disables) caches completed generations per
// (database, knowledge version, normalized question, evidence) with
// concurrent duplicates coalesced onto one pipeline run; responses served
// this way carry "cached": true. Approved feedback merges bump the
// knowledge version, which invalidates by key — no flush. Note -trace
// effectively bypasses the cache: traced requests must run the pipeline.
//
// -miner enables the background failure miner: recurring failed generations
// are clustered, distilled into candidate instructions, and pushed through
// the same regression gate -> approve -> persist -> hot-swap path SME edits
// take. The flag's duration is the mining interval (e.g. -miner 5m); mining
// can also be triggered per database via POST /v1/miner/{db}/mine. Without
// the flag the serving path is byte-identical to a miner-less daemon — only
// the always-on failure counters on /v1/stats remain.
//
// -store makes the continuous-improvement loop durable: each database's
// knowledge set is backed by a WAL + snapshot store under <dir>/<database>.
// Approved feedback merges are fsynced before the serving engine hot-swaps,
// and a restarted daemon recovers the exact knowledge version, audit
// history and checkpoints instead of re-running the seed build.
//
// Observability: the daemon reports into the process-global metrics
// registry and exposes it as Prometheus text exposition on GET /metrics
// (opt out with -metrics=false) — request outcomes and latency histograms
// per database, generation-cache and admission counters, WAL append/fsync
// latency, compaction health, and miner progress; see DESIGN.md
// "Observability" for the metric catalog. /v1/stats is derived from the
// same registry snapshot, so the JSON stats and /metrics always agree.
// -tracesample N (default 64, 0 disables) feeds per-operator pipeline
// timings (genedit_operator_duration_seconds) from every Nth request; a
// sampled request bypasses the generation cache because operator timings
// require an actual pipeline run. With -prewarm the engine builds run in
// the background: the daemon accepts connections immediately but GET
// /readyz returns 503 until every engine is built, so a load balancer can
// hold traffic without the listener staying dark for the whole build.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"sync"
	"syscall"
	"time"

	"genedit"
	"genedit/internal/generr"
)

// wire types: the JSON surface is decoupled from the Go API so the Go types
// can evolve without breaking clients.

type generateRequest struct {
	Database string `json:"database"`
	Question string `json:"question"`
	Evidence string `json:"evidence,omitempty"`
}

type batchRequest struct {
	Requests []generateRequest `json:"requests"`
}

type failureJSON struct {
	Kind string `json:"kind"` // "syntax" or "exec"
	Msg  string `json:"msg"`
}

type generateResponse struct {
	Database     string       `json:"database"`
	SQL          string       `json:"sql"`
	OK           bool         `json:"ok"`
	Cached       bool         `json:"cached,omitempty"`
	Stale        bool         `json:"stale,omitempty"`
	StaleVersion int          `json:"stale_version,omitempty"`
	Reformulated string       `json:"reformulated,omitempty"`
	Intents      []string     `json:"intents,omitempty"`
	Attempts     int          `json:"attempts"`
	Rows         int          `json:"rows"`
	Failure      *failureJSON `json:"failure,omitempty"`
	Error        string       `json:"error,omitempty"`
	DurationMS   float64      `json:"duration_ms"`
}

type batchResponse struct {
	Responses []generateResponse `json:"responses"`
}

// statsResponse is the GET /v1/stats body: serving-path counters — the
// generation cache's hit/miss/coalesce numbers, per-database failure-type
// counters (always on), and per-database miner counters (when -miner is set
// and a database has been mined at least once).
type statsResponse struct {
	GenerationCacheEnabled bool                            `json:"generation_cache_enabled"`
	GenerationCache        genedit.GenerationCacheStats    `json:"generation_cache"`
	AdmissionEnabled       bool                            `json:"admission_enabled"`
	Admission              genedit.AdmissionStats          `json:"admission"`
	MinerEnabled           bool                            `json:"miner_enabled"`
	Failures               map[string]genedit.FailureStats `json:"failures,omitempty"`
	Miner                  map[string]genedit.MinerStats   `json:"miner,omitempty"`
}

// minerStatusResponse is the GET /v1/miner/{db} body.
type minerStatusResponse struct {
	Database string               `json:"database"`
	Enabled  bool                 `json:"enabled"`
	Failures genedit.FailureStats `json:"failures"`
	Stats    genedit.MinerStats   `json:"stats"`
}

// mineResponse is the POST /v1/miner/{db}/mine body.
type mineResponse struct {
	Database string                   `json:"database"`
	Report   genedit.MinerRoundReport `json:"report"`
}

func toWire(req genedit.Request, resp *genedit.Response) generateResponse {
	out := generateResponse{Database: req.Database}
	if resp == nil {
		return out
	}
	out.SQL = resp.SQL
	out.OK = resp.OK
	out.Cached = resp.Cached
	out.Stale = resp.Stale
	out.StaleVersion = resp.StaleVersion
	out.DurationMS = float64(resp.Duration.Microseconds()) / 1000
	if resp.Record != nil {
		out.Reformulated = resp.Record.Reformulated
		out.Intents = resp.Record.IntentNames
		out.Attempts = len(resp.Record.Attempts)
		if resp.Record.Result != nil {
			out.Rows = len(resp.Record.Result.Rows)
		}
	}
	if resp.Failure != nil {
		out.Failure = &failureJSON{Kind: resp.Failure.Kind, Msg: resp.Failure.Msg}
	}
	if resp.Err != nil {
		out.Error = resp.Err.Error()
	}
	return out
}

// statusFor maps the service error taxonomy onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, genedit.ErrUnknownDatabase):
		return http.StatusNotFound
	case errors.Is(err, genedit.ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, genedit.ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, genedit.ErrCanceled):
		// Canceled without a deadline: the client went away.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeServiceError maps a service error to its HTTP status and, for shed
// requests (429/503), attaches the admission controller's Retry-After hint
// so well-behaved clients back off for exactly as long as the token bucket
// or queue needs.
func writeServiceError(w http.ResponseWriter, err error) {
	if hint, ok := generr.RetryAfterHint(err); ok && hint > 0 {
		// Retry-After is whole seconds; round up so a 50ms hint does not
		// become "retry immediately".
		secs := int64(math.Ceil(hint.Seconds()))
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeError(w, statusFor(err), err.Error())
}

// readiness tracks the daemon's startup state for GET /readyz. The zero
// value reports not-ready; markReady flips it exactly once (prewarm
// completion, or immediately when prewarm is off).
type readiness struct {
	mu    sync.Mutex
	ready bool
	err   error
}

func (r *readiness) markReady(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ready = err == nil
	r.err = err
}

func (r *readiness) status() (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ready, r.err
}

// readyNow returns an already-ready readiness — the state of a daemon that
// builds engines lazily (no -prewarm) and of httptest servers.
func readyNow() *readiness {
	r := &readiness{}
	r.markReady(nil)
	return r
}

// muxConfig carries the daemon knobs newMux needs beyond the service
// itself. The zero value serves unbounded requests with default session
// caps, metrics on, and immediate readiness.
type muxConfig struct {
	// perReq bounds each request's wall-clock time (0 = unbounded).
	perReq time.Duration
	// maxSessions caps concurrently open feedback sessions (<= 0 = default).
	maxSessions int
	// ready gates GET /readyz (nil = ready immediately).
	ready *readiness
	// noMetrics disables the GET /metrics exposition endpoint
	// (-metrics=false); the registry keeps accumulating either way.
	noMetrics bool
}

// newMux wires the service behind the daemon's routes. It is split out from
// main so tests can drive the daemon end-to-end with httptest. suite is the
// tenant registry the feedback hub picks golden regression cases from.
func newMux(svc *genedit.Service, suite *genedit.Benchmark, cfg muxConfig) *http.ServeMux {
	withTimeout := func(ctx context.Context) (context.Context, context.CancelFunc) {
		if cfg.perReq <= 0 {
			return ctx, func() {}
		}
		return context.WithTimeout(ctx, cfg.perReq)
	}
	if cfg.ready == nil {
		cfg.ready = readyNow()
	}

	mux := http.NewServeMux()
	newFeedbackHub(svc, suite, cfg.maxSessions).registerRoutes(mux, withTimeout)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	// Readiness is distinct from liveness: the process is up (healthz) but
	// traffic should hold until prewarm finished and no opened store has
	// failed terminally. A store with failing compactions stays ready —
	// commits are still durable — but a store that refused writes after a
	// failed WAL rollback must drain: approvals on it are lost.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, err := cfg.ready.status()
		switch {
		case err != nil:
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "failed", "error": err.Error()})
			return
		case !ready:
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
			return
		}
		var failed []string
		for db, herr := range svc.StoreHealth() {
			if herr != nil {
				failed = append(failed, db)
			}
		}
		if len(failed) > 0 {
			sort.Strings(failed)
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "store_failed", "databases": failed})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})

	if !cfg.noMetrics {
		mux.Handle("GET /metrics", svc.Metrics().Handler())
	}

	// /v1/stats is derived from the same registry snapshot /metrics renders
	// (the bridges run at Gather), so the JSON stats and the Prometheus
	// exposition can never disagree.
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		snap := svc.Metrics().Gather()
		writeJSON(w, http.StatusOK, statsResponse{
			GenerationCacheEnabled: svc.GenerationCacheEnabled(),
			GenerationCache:        genedit.GenerationCacheStatsFromSnapshot(snap),
			AdmissionEnabled:       svc.AdmissionEnabled(),
			Admission:              genedit.AdmissionStatsFromSnapshot(snap),
			MinerEnabled:           svc.MinerEnabled(),
			Failures:               genedit.FailureStatsFromSnapshot(snap),
			Miner:                  genedit.MinerStatsFromSnapshot(snap),
		})
	})

	knownDB := func(db string) bool {
		for _, d := range svc.Databases() {
			if d == db {
				return true
			}
		}
		return false
	}

	mux.HandleFunc("GET /v1/miner/{db}", func(w http.ResponseWriter, r *http.Request) {
		db := r.PathValue("db")
		if !knownDB(db) {
			writeError(w, http.StatusNotFound, "unknown database "+db)
			return
		}
		writeJSON(w, http.StatusOK, minerStatusResponse{
			Database: db,
			Enabled:  svc.MinerEnabled(),
			Failures: svc.FailureStats()[db],
			Stats:    svc.MinerStats()[db],
		})
	})

	mux.HandleFunc("POST /v1/miner/{db}/mine", func(w http.ResponseWriter, r *http.Request) {
		db := r.PathValue("db")
		if !knownDB(db) {
			writeError(w, http.StatusNotFound, "unknown database "+db)
			return
		}
		if !svc.MinerEnabled() {
			writeError(w, http.StatusConflict, "miner is not enabled; start the daemon with -miner")
			return
		}
		ctx, cancel := withTimeout(r.Context())
		defer cancel()
		rep, err := svc.MineRound(ctx, db)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, mineResponse{Database: db, Report: rep})
	})

	mux.HandleFunc("GET /v1/databases", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string][]string{"databases": svc.Databases()})
	})

	mux.HandleFunc("POST /v1/generate", func(w http.ResponseWriter, r *http.Request) {
		var req generateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if req.Database == "" || req.Question == "" {
			writeError(w, http.StatusBadRequest, "database and question are required")
			return
		}
		ctx, cancel := withTimeout(r.Context())
		defer cancel()
		greq := genedit.Request{Database: req.Database, Question: req.Question, Evidence: req.Evidence}
		resp, err := svc.Generate(ctx, greq)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, toWire(greq, resp))
	})

	mux.HandleFunc("POST /v1/generate/batch", func(w http.ResponseWriter, r *http.Request) {
		var req batchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if len(req.Requests) == 0 {
			writeError(w, http.StatusBadRequest, "requests must be non-empty")
			return
		}
		greqs := make([]genedit.Request, len(req.Requests))
		for i, gr := range req.Requests {
			greqs[i] = genedit.Request{Database: gr.Database, Question: gr.Question, Evidence: gr.Evidence}
		}
		ctx, cancel := withTimeout(r.Context())
		defer cancel()
		// GenerateBatch's only batch-level error is cancellation; it still
		// returns one response per request, so serve the partial results
		// with the cancellation status rather than discarding them.
		resps, err := svc.GenerateBatch(ctx, greqs)
		out := batchResponse{Responses: make([]generateResponse, len(resps))}
		for i, resp := range resps {
			out.Responses[i] = toWire(greqs[i], resp)
		}
		status := http.StatusOK
		if err != nil {
			status = statusFor(err)
		}
		writeJSON(w, status, out)
	})

	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Uint64("seed", 1, "workload seed")
	modelSeed := flag.Uint64("modelseed", 42, "simulated-model seed")
	workers := flag.Int("workers", 0, "batch worker pool (0 = GOMAXPROCS)")
	stmtCache := flag.Int("stmtcache", 0, "per-engine parsed-statement LRU size (0 = default 512)")
	genCache := flag.Int("gencache", 1024, "generation-cache size: completed records cached per (database, knowledge version, question); 0 disables")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request deadline (0 = none)")
	prewarm := flag.Bool("prewarm", false, "build all engines at startup (in the background; /readyz turns 200 when done) instead of lazily")
	trace := flag.Bool("trace", false, "log per-operator timings for every request")
	metricsOn := flag.Bool("metrics", true, "expose Prometheus text exposition on GET /metrics")
	traceSample := flag.Int("tracesample", 64, "feed per-operator timing histograms from every Nth request (sampled requests bypass the generation cache; 0 disables)")
	store := flag.String("store", "", "directory for durable per-database knowledge stores (empty = in-memory)")
	minerIvl := flag.Duration("miner", 0, "background failure-mining interval (0 = miner disabled)")
	maxSessions := flag.Int("maxsessions", defaultMaxOpenSessions, "max concurrently open feedback sessions; opens beyond it get 429")
	admitRate := flag.Float64("admitrate", 0, "per-database token-bucket refill rate in requests/sec (0 = no rate limit)")
	admitBurst := flag.Float64("admitburst", 0, "per-database token-bucket burst capacity (0 = max(1, admitrate))")
	maxInflight := flag.Int("maxinflight", 0, "max concurrently executing generations (0 = unbounded)")
	maxQueue := flag.Int("maxqueue", 64, "max requests queued for an execution slot before shedding with 503")
	ann := flag.Bool("ann", true, "partitioned ANN retrieval index (exact: results identical to the full scan; disable for brute-vs-ANN comparisons)")
	annMinSize := flag.Int("annminsize", 0, "min knowledge-index size before ANN partitioning kicks in (0 = default)")
	annProbes := flag.Int("annprobes", 0, "ANN partitions scanned before the exactness guard takes over (0 = default)")
	exFanout := flag.Int("exfanout", 0, "example-retrieval fan-out; candidates pulled per query before re-ranking (0 = default 24; non-default values can change generated SQL)")
	insFanout := flag.Int("insfanout", 0, "instruction-retrieval fan-out (0 = default 16; non-default values can change generated SQL)")
	flag.Parse()

	opts := []genedit.Option{genedit.WithModelSeed(*modelSeed)}
	if !*ann || *annMinSize > 0 || *annProbes > 0 {
		opts = append(opts, genedit.WithANNRetrieval(genedit.ANNRetrieval{
			Disable: !*ann,
			MinSize: *annMinSize,
			Probes:  *annProbes,
		}))
	}
	if *exFanout > 0 || *insFanout > 0 {
		opts = append(opts, genedit.WithRetrievalFanout(*exFanout, *insFanout))
	}
	if *admitRate > 0 || *maxInflight > 0 {
		opts = append(opts, genedit.WithAdmission(genedit.AdmissionConfig{
			RatePerSec:    *admitRate,
			Burst:         *admitBurst,
			MaxConcurrent: *maxInflight,
			MaxQueue:      *maxQueue,
		}))
	}
	if *minerIvl > 0 {
		opts = append(opts, genedit.WithMiner(genedit.MinerConfig{}))
	}
	if *store != "" {
		opts = append(opts, genedit.WithStorePath(*store))
	}
	if *workers > 0 {
		opts = append(opts, genedit.WithWorkers(*workers))
	}
	if *stmtCache > 0 {
		opts = append(opts, genedit.WithStatementCacheSize(*stmtCache))
	}
	if *genCache > 0 {
		opts = append(opts, genedit.WithGenerationCache(*genCache))
	}
	if *traceSample > 0 {
		opts = append(opts, genedit.WithOperatorSampling(*traceSample))
	}
	if *trace {
		opts = append(opts, genedit.WithTrace(func(t *genedit.Trace) {
			log.Printf("trace db=%s total=%s ops=%s", t.Database, t.Total, formatOps(t.Ops))
		}))
	}

	suite := genedit.NewBenchmark(*seed)
	svc := genedit.NewService(suite, opts...)

	// Prewarm runs in the background so the listener comes up immediately;
	// /readyz holds load-balancer traffic until the builds finish. Without
	// -prewarm the daemon is ready at once and builds engines lazily.
	ready := readyNow()
	if *prewarm {
		ready = &readiness{}
		go func() {
			start := time.Now()
			if err := svc.Prewarm(context.Background()); err != nil {
				log.Printf("prewarm failed: %v", err)
				ready.markReady(err)
				return
			}
			log.Printf("prewarmed %d engines in %s", len(svc.Databases()), time.Since(start).Round(time.Millisecond))
			ready.markReady(nil)
		}()
	}

	if svc.AdmissionEnabled() {
		log.Printf("admission control enabled: rate=%g/s burst=%g inflight=%d queue=%d",
			*admitRate, *admitBurst, *maxInflight, *maxQueue)
	}

	server := &http.Server{Addr: *addr, Handler: newMux(svc, suite, muxConfig{
		perReq:      *timeout,
		maxSessions: *maxSessions,
		ready:       ready,
		noMetrics:   !*metricsOn,
	})}

	minerCtx, stopMiner := context.WithCancel(context.Background())
	defer stopMiner()
	if *minerIvl > 0 {
		go runMinerLoop(minerCtx, svc, *minerIvl)
		log.Printf("failure miner enabled, interval %s", *minerIvl)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		<-stop
		log.Println("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = server.Shutdown(ctx)
		close(drained)
	}()

	log.Printf("geneditd serving %d databases on %s", len(svc.Databases()), *addr)
	err := server.ListenAndServe()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the drain
	// so in-flight requests finish before the process exits.
	<-drained
	// Stop background mining before releasing the stores, and release the
	// durable stores only after every in-flight approval has committed.
	stopMiner()
	if err := svc.Close(); err != nil {
		log.Printf("closing stores: %v", err)
	}
}

// runMinerLoop periodically mines every database that has accumulated
// failures. A round's merges go through the regression gate, so a quiet
// system (no recurring failures, or nothing that passes the gate) simply
// reports empty rounds.
func runMinerLoop(ctx context.Context, svc *genedit.Service, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for db, fs := range svc.FailureStats() {
			if fs.Syntax+fs.Exec == 0 {
				continue
			}
			rep, err := svc.MineRound(ctx, db)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				log.Printf("miner %s: %v", db, err)
				continue
			}
			if rep.Submitted > 0 {
				log.Printf("miner %s: scanned=%d clusters=%d submitted=%d merged=%d rejected=%d",
					db, rep.Scanned, rep.Clusters, rep.Submitted, rep.Merged, rep.Rejected)
			}
		}
	}
}

func formatOps(ops []genedit.OpTiming) string {
	s := ""
	for i, op := range ops {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%s", op.Op, op.Duration)
	}
	return s
}
