package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"genedit"
	"genedit/internal/eval"
	"genedit/internal/feedback"
	"genedit/internal/task"
)

// seriesRe matches one Prometheus text-exposition sample line:
// name{labels} value.
var seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) (\S+)$`)

// parseExposition parses a /metrics body into series → value, failing the
// test on any line that is neither a comment nor a well-formed sample.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		m := seriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil && m[2] != "+Inf" {
			t.Fatalf("unparseable sample value in %q: %v", line, err)
		}
		out[m[1]] = v
	}
	return out
}

func getMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, raw := getURL(t, base+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	return parseExposition(t, string(raw))
}

// TestMetricsEndToEnd drives a durable, cache- and admission-enabled daemon
// through the full serving repertoire — generate, cache hit, feedback
// approve (a WAL commit), and a rate-limit shed — then asserts GET /metrics
// parses as text exposition with every counter moved accordingly, and that
// GET /v1/stats (derived from the same registry snapshot) agrees with it.
func TestMetricsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(
		genedit.WithModelSeed(42),
		genedit.WithStorePath(dir),
		genedit.WithGenerationCache(64),
		// A big burst that never refills: the scripted flow fits inside it,
		// and draining the remainder produces a deterministic 429 at the
		// end. Stale-serving is disabled so the shed is visible as a 429
		// rather than a degraded 200.
		genedit.WithAdmission(genedit.AdmissionConfig{
			RatePerSec:        0.0001,
			Burst:             40,
			DisableStaleServe: true,
		}),
	)...)
	t.Cleanup(func() { svc.Close() })
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: 30 * time.Second}))
	t.Cleanup(srv.Close)

	// Readiness: no prewarm and healthy stores — ready from the start.
	resp, raw := getURL(t, srv.URL+"/readyz")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /readyz = %d: %s", resp.StatusCode, raw)
	}

	// Local twin to find a failing case for the approve leg and craft SME
	// feedback for it.
	local := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42))...)
	runner := eval.NewRunner(suite.Databases)
	sme := feedback.NewSimulatedSME(7)
	var failing *task.Case
	var failingRec *genedit.Record
	for _, c := range suite.Cases {
		if c.DB != fbDB {
			continue
		}
		lresp, err := local.Generate(t.Context(), genedit.Request{Database: fbDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := runner.Evaluate(c, lresp.SQL); !ok {
			failing, failingRec = c, lresp.Record
			break
		}
	}
	if failing == nil {
		t.Fatal("no failing case found for the approve leg")
	}

	// Generate the same question twice: one miss, one cache hit.
	genBody, _ := json.Marshal(generateRequest{Database: failing.DB, Question: failing.Question, Evidence: failing.Evidence})
	for i := 0; i < 2; i++ {
		hresp, hraw := postJSON(t, srv.URL+"/v1/generate", string(genBody))
		if hresp.StatusCode != 200 {
			t.Fatalf("generate %d = %d: %s", i, hresp.StatusCode, hraw)
		}
	}

	// Approve leg: open → regenerate → submit → approve. Whether the gate
	// passes depends on the case; the WAL metrics only need the approve's
	// commit, so require a passing submit (the first failing case for this
	// suite/seed passes — the feedback e2e relies on the same flow).
	body, _ := json.Marshal(feedbackOpenRequest{Database: fbDB, Question: failing.Question, Evidence: failing.Evidence})
	hresp, hraw := postJSON(t, srv.URL+"/v1/feedback/open", string(body))
	if hresp.StatusCode != 200 {
		t.Fatalf("open = %d: %s", hresp.StatusCode, hraw)
	}
	opened := decode[feedbackOpenResponse](t, hraw)
	fbText, _ := json.Marshal(regenerateRequest{Feedback: sme.FeedbackFor(failing, failingRec)})
	hresp, hraw = postJSON(t, srv.URL+"/v1/feedback/"+opened.ID+"/regenerate", string(fbText))
	if hresp.StatusCode != 200 {
		t.Fatalf("regenerate = %d: %s", hresp.StatusCode, hraw)
	}
	hresp, hraw = postJSON(t, srv.URL+"/v1/feedback/"+opened.ID+"/submit", `{}`)
	if hresp.StatusCode != 200 {
		t.Fatalf("submit = %d: %s", hresp.StatusCode, hraw)
	}
	approved := decode[submitResponse](t, hraw).Passed
	if approved {
		hresp, hraw = postJSON(t, srv.URL+"/v1/feedback/"+opened.ID+"/approve", `{"approver":"reviewer"}`)
		if hresp.StatusCode != 200 {
			t.Fatalf("approve = %d: %s", hresp.StatusCode, hraw)
		}
	}

	// Drain the remaining burst until the bucket sheds a 429.
	got429 := false
	for i := 0; i < 60 && !got429; i++ {
		hresp, _ := postJSON(t, srv.URL+"/v1/generate", string(genBody))
		switch hresp.StatusCode {
		case 200:
		case 429:
			got429 = true
		default:
			t.Fatalf("drain request %d = %d, want 200 or 429", i, hresp.StatusCode)
		}
	}
	if !got429 {
		t.Fatal("token bucket never shed a 429")
	}

	m := getMetrics(t, srv.URL)
	series := func(name string) float64 {
		v, ok := m[name]
		if !ok {
			t.Fatalf("missing series %s in /metrics", name)
		}
		return v
	}
	okReqs := series(fmt.Sprintf(`genedit_requests_total{db="%s",outcome="ok"}`, fbDB))
	if okReqs < 2 {
		t.Errorf("ok requests = %g, want >= 2", okReqs)
	}
	if v := series(fmt.Sprintf(`genedit_requests_total{db="%s",outcome="rate_limited"}`, fbDB)); v < 1 {
		t.Errorf("rate_limited requests = %g, want >= 1", v)
	}
	if v := series(fmt.Sprintf(`genedit_request_duration_seconds_count{db="%s"}`, fbDB)); v != okReqs {
		t.Errorf("latency observations = %g, want %g (one per ok request)", v, okReqs)
	}
	if v := series("genedit_gencache_hits_total"); v < 1 {
		t.Errorf("cache hits = %g, want >= 1", v)
	}
	if v := series("genedit_admission_admitted_total"); v < 2 {
		t.Errorf("admitted = %g, want >= 2", v)
	}
	if v := series(`genedit_admission_shed_total{kind="rate_limited"}`); v < 1 {
		t.Errorf("shed rate_limited = %g, want >= 1", v)
	}
	// The durable seed build compacts at open, and an approve commits
	// through the WAL; either way the store's instruments must have fired.
	if v := series(fmt.Sprintf(`genedit_kstore_compactions_total{db="%s"}`, fbDB)); v < 1 {
		t.Errorf("compactions = %g, want >= 1 (seed snapshot)", v)
	}
	if approved {
		if v := series(fmt.Sprintf(`genedit_kstore_wal_append_seconds_count{db="%s"}`, fbDB)); v < 1 {
			t.Errorf("WAL appends = %g, want >= 1 after approve", v)
		}
	}

	// /v1/stats derives from the same registry snapshot; with no traffic
	// between the two reads the JSON numbers must equal the exposition's.
	var st statsResponse
	stResp, stRaw := getURL(t, srv.URL+"/v1/stats")
	if stResp.StatusCode != 200 {
		t.Fatalf("GET /v1/stats = %d: %s", stResp.StatusCode, stRaw)
	}
	if err := json.Unmarshal(stRaw, &st); err != nil {
		t.Fatal(err)
	}
	if float64(st.GenerationCache.Hits) != series("genedit_gencache_hits_total") {
		t.Errorf("stats hits %d != metrics %g", st.GenerationCache.Hits, series("genedit_gencache_hits_total"))
	}
	if float64(st.GenerationCache.Misses) != series("genedit_gencache_misses_total") {
		t.Errorf("stats misses %d != metrics %g", st.GenerationCache.Misses, series("genedit_gencache_misses_total"))
	}
	if float64(st.Admission.Admitted) != series("genedit_admission_admitted_total") {
		t.Errorf("stats admitted %d != metrics %g", st.Admission.Admitted, series("genedit_admission_admitted_total"))
	}
	if float64(st.Admission.RateLimited) != series(`genedit_admission_shed_total{kind="rate_limited"}`) {
		t.Errorf("stats rate_limited %d != metrics", st.Admission.RateLimited)
	}
	if ts, ok := st.Admission.Tenants[fbDB]; !ok {
		t.Errorf("stats tenants missing %s: %+v", fbDB, st.Admission.Tenants)
	} else if float64(ts.Admitted) != series(fmt.Sprintf(`genedit_admission_tenant_admitted_total{db="%s"}`, fbDB)) {
		t.Errorf("stats tenant admitted %d != metrics", ts.Admitted)
	}
}

// TestReadyzGatesOnPrewarm covers the readiness state machine: 503 while
// starting, 200 once marked ready, 503 with the error after a failed start.
func TestReadyzGatesOnPrewarm(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42))...)
	t.Cleanup(func() { svc.Close() })
	ready := &readiness{}
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: 30 * time.Second, ready: ready}))
	t.Cleanup(srv.Close)

	resp, raw := getURL(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("starting /readyz = %d, want 503; %s", resp.StatusCode, raw)
	}
	if st := decode[map[string]string](t, raw); st["status"] != "starting" {
		t.Errorf("starting status = %q", st["status"])
	}
	// Liveness is unaffected by readiness.
	if resp, _ := getURL(t, srv.URL+"/healthz"); resp.StatusCode != 200 {
		t.Errorf("healthz while starting = %d, want 200", resp.StatusCode)
	}

	ready.markReady(nil)
	if resp, raw := getURL(t, srv.URL+"/readyz"); resp.StatusCode != 200 {
		t.Errorf("ready /readyz = %d: %s", resp.StatusCode, raw)
	}

	ready.markReady(fmt.Errorf("prewarm failed: boom"))
	resp, raw = getURL(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("failed /readyz = %d, want 503", resp.StatusCode)
	}
	if st := decode[map[string]string](t, raw); st["status"] != "failed" || !strings.Contains(st["error"], "boom") {
		t.Errorf("failed status = %+v", st)
	}
}

// TestMetricsOptOut asserts -metrics=false removes the endpoint.
func TestMetricsOptOut(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42))...)
	t.Cleanup(func() { svc.Close() })
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{noMetrics: true}))
	t.Cleanup(srv.Close)
	resp, _ := getURL(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with noMetrics = %d, want 404", resp.StatusCode)
	}
	// /v1/stats still works — it reads the registry directly.
	if resp, raw := getURL(t, srv.URL+"/v1/stats"); resp.StatusCode != 200 {
		t.Fatalf("/v1/stats with noMetrics = %d: %s", resp.StatusCode, raw)
	}
}
