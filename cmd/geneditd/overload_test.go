package main

// Overload-path tests: the HTTP surface of admission control. The service's
// shedding semantics are tested at the library layer (service_overload_test);
// here we assert the daemon's mapping of them — status codes, Retry-After,
// the stale wire fields, the -maxsessions cap — and that a loaded daemon
// shuts down cleanly: in-flight requests drain or shed, the store closes
// after the drain, and no goroutines leak.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genedit"
)

// firstCase returns the suite's first eval case (a known database/question
// pair the simulated model answers deterministically).
func firstCase(suite *genedit.Benchmark) (db, q string) {
	c := suite.Cases[0]
	return c.DB, c.Question
}

func TestDaemonRateLimitReturns429WithRetryAfter(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42),
		// A bucket that effectively never refills: the first request spends
		// the only token, the second must shed.
		genedit.WithAdmission(genedit.AdmissionConfig{RatePerSec: 0.001, Burst: 1}),
	)...)
	defer svc.Close()
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: 30 * time.Second}))
	defer srv.Close()

	db, q := firstCase(suite)
	body, _ := json.Marshal(generateRequest{Database: db, Question: q})

	resp, _ := postJSON(t, srv.URL+"/v1/generate", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", resp.StatusCode)
	}

	resp, raw := postJSON(t, srv.URL+"/v1/generate", string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429; body %s", resp.StatusCode, raw)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 response lacks a Retry-After header")
	}
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive whole-second count", ra)
	}
	var e map[string]string
	if err := json.Unmarshal(raw, &e); err != nil || e["error"] == "" {
		t.Fatalf("429 body %s is not an error document", raw)
	}

	// The shed shows up on the stats surface.
	var st statsResponse
	getJSON(t, srv.URL+"/v1/stats", &st)
	if !st.AdmissionEnabled {
		t.Fatal("stats: admission_enabled = false")
	}
	if st.Admission.RateLimited == 0 {
		t.Fatalf("stats: rate_limited = 0 after a 429; admission = %+v", st.Admission)
	}
}

func TestDaemonServesStaleOnShed(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42),
		genedit.WithGenerationCache(64),
		genedit.WithAdmission(genedit.AdmissionConfig{RatePerSec: 0.001, Burst: 1}),
	)...)
	defer svc.Close()
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: 30 * time.Second}))
	defer srv.Close()

	db, q := firstCase(suite)
	body, _ := json.Marshal(generateRequest{Database: db, Question: q})

	// Warm the generation cache (spends the only token), then shed: the
	// daemon degrades onto the cached record instead of failing.
	resp, _ := postJSON(t, srv.URL+"/v1/generate", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d, want 200", resp.StatusCode)
	}
	resp, raw := postJSON(t, srv.URL+"/v1/generate", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shed request: status %d, want 200 (stale serve); body %s", resp.StatusCode, raw)
	}
	var got generateResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if !got.Stale || got.StaleVersion < 1 {
		t.Fatalf("stale serve: stale=%v stale_version=%d, want true/>=1; body %s", got.Stale, got.StaleVersion, raw)
	}
	if got.SQL == "" {
		t.Fatal("stale response carries no SQL")
	}
}

func TestDaemonMaxSessionsCap(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42))...)
	defer svc.Close()
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: 30 * time.Second, maxSessions: 1}))
	defer srv.Close()

	db, q := firstCase(suite)
	body, _ := json.Marshal(feedbackOpenRequest{Database: db, Question: q})

	resp, raw := postJSON(t, srv.URL+"/v1/feedback/open", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first open: status %d; body %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, srv.URL+"/v1/feedback/open", string(body))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second open with -maxsessions 1: status %d, want 429; body %s", resp.StatusCode, raw)
	}
}

// TestDaemonGracefulShutdownUnderLoad closes the server while concurrent
// generate traffic is queued inside admission control, mirroring the
// daemon's shutdown order (drain HTTP, then close the service and its
// store). Every in-flight request must complete with a well-defined status
// — drained (200) or shed (429/503/504) — the durable store must close
// cleanly after the drain and survive a reopen, and the goroutine count
// must return to its pre-load baseline.
func TestDaemonGracefulShutdownUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	dir := t.TempDir()
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42),
		genedit.WithStorePath(dir),
		genedit.WithGenerationCache(64),
		// A narrow execution gate so shutdown really does catch requests
		// waiting in the admission queue, not just mid-pipeline.
		genedit.WithAdmission(genedit.AdmissionConfig{
			RatePerSec:    500,
			Burst:         100,
			MaxConcurrent: 2,
			MaxQueue:      8,
		}),
	)...)
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: 5 * time.Second}))

	var ok200, shed, other atomic.Int64
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				c := suite.Cases[(w*31+i)%len(suite.Cases)]
				body, _ := json.Marshal(generateRequest{Database: c.DB, Question: c.Question})
				resp, err := http.Post(srv.URL+"/v1/generate", "application/json", bytes.NewReader(body))
				if err != nil {
					// The listener is gone: shutdown has begun and this
					// worker's job is done.
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(w)
	}

	// Let the queue fill, then shut down mid-flight. httptest's Close waits
	// for active handlers exactly like http.Server.Shutdown: queued
	// requests either get a slot and drain or shed on their deadline.
	time.Sleep(150 * time.Millisecond)
	srv.Close()
	wg.Wait()

	// Daemon order: the store closes only after the HTTP drain.
	if err := svc.Close(); err != nil {
		t.Fatalf("service close after drain: %v", err)
	}

	if n := other.Load(); n > 0 {
		t.Fatalf("%d requests finished with an unexpected status (not 200/429/503/504)", n)
	}
	if ok200.Load() == 0 {
		t.Fatal("no request ever succeeded under load")
	}
	st := svc.AdmissionStats()
	if st.MaxQueueDepth > 8 {
		t.Fatalf("queue depth %d exceeded the configured bound 8", st.MaxQueueDepth)
	}
	t.Logf("drained: ok=%d shed=%d admitted=%d maxdepth=%d",
		ok200.Load(), shed.Load(), st.Admitted, st.MaxQueueDepth)

	// The drained store reopens and serves: nothing was torn mid-write.
	rec := genedit.NewService(genedit.NewBenchmark(1), testOpts(genedit.WithModelSeed(42),
		genedit.WithStorePath(dir))...)
	db, q := firstCase(suite)
	if _, err := rec.Generate(context.Background(), genedit.Request{Database: db, Question: q}); err != nil {
		t.Fatalf("generate after reopen: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("closing reopened store: %v", err)
	}

	// No goroutine leaks: workers, queue waiters and store writers are all
	// gone once the dust settles.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d+3\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
