package main

// The online feedback surface: the continuous-improvement loop of §4.2
// exposed over HTTP so SMEs can drive open → regenerate → submit → approve
// against the live daemon. Approved merges flow through the service's
// merge hook — persisted to the knowledge store (when -store is set) and
// hot-swapped into serving — so the loop compounds across requests and
// survives restarts.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"genedit"
	"genedit/internal/feedback"
)

// goldenPerDB is the size of each database's golden regression suite: the
// first cases of the database, mirroring the paper demo's "few selected
// golden queries".
const goldenPerDB = 4

// feedbackHub owns the daemon's SME sessions: one lazily built solver per
// database (sharing the service's engines and merge hook) and the open
// sessions keyed by a hub-global feedback ID.
type feedbackHub struct {
	svc   *genedit.Service
	suite *genedit.Benchmark
	// maxSessions bounds the abandoned-session leak: clients that open
	// sessions and walk away hold a generation record and staged edits
	// each. Set from the -maxsessions flag.
	maxSessions int

	mu       sync.Mutex
	solvers  map[string]*genedit.Solver
	sessions map[string]*fbSession
}

// fbSession is one SME exchange. Its mutex serializes the session's own
// lifecycle (regenerate/submit/approve); different sessions proceed
// concurrently, and the solver underneath is itself concurrency-safe.
type fbSession struct {
	mu      sync.Mutex
	id      string
	db      string
	sess    *feedback.Session
	pending *feedback.PendingChange
	done    bool
}

func newFeedbackHub(svc *genedit.Service, suite *genedit.Benchmark, maxSessions int) *feedbackHub {
	if maxSessions <= 0 {
		maxSessions = defaultMaxOpenSessions
	}
	return &feedbackHub{
		svc:         svc,
		suite:       suite,
		maxSessions: maxSessions,
		solvers:     make(map[string]*genedit.Solver),
		sessions:    make(map[string]*fbSession),
	}
}

// golden picks the database's regression suite.
func (h *feedbackHub) golden(db string) []*genedit.Case {
	var out []*genedit.Case
	for _, c := range h.suite.Cases {
		if c.DB == db && len(out) < goldenPerDB {
			out = append(out, c)
		}
	}
	return out
}

// solverFor returns the database's solver, building it on first use.
func (h *feedbackHub) solverFor(ctx context.Context, db string) (*genedit.Solver, error) {
	h.mu.Lock()
	if s, ok := h.solvers[db]; ok {
		h.mu.Unlock()
		return s, nil
	}
	h.mu.Unlock()
	// Built outside the lock: Service.Solver may trigger an engine build.
	s, err := h.svc.Solver(ctx, db, h.golden(db))
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if prior, ok := h.solvers[db]; ok {
		return prior, nil // lost the race; share the first solver
	}
	h.solvers[db] = s
	return s, nil
}

func (h *feedbackHub) register(db string, sess *feedback.Session) (*fbSession, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.sessions) >= h.maxSessions {
		return nil, fmt.Errorf("too many open feedback sessions (%d); submit, approve or abandon some first", len(h.sessions))
	}
	// The API session ID embeds the solver's per-database FeedbackID (the
	// value stamped into audit-history provenance), so GET /v1/knowledge
	// entries trace back to the exact API session that produced them.
	fs := &fbSession{id: db + "." + sess.FeedbackID, db: db, sess: sess}
	h.sessions[fs.id] = fs
	return fs, nil
}

func (h *feedbackHub) session(id string) *fbSession {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sessions[id]
}

// evict removes a finished session from the registry so the map does not
// grow with every approval (later requests for the ID get 404).
func (h *feedbackHub) evict(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.sessions, id)
}

// defaultMaxOpenSessions is the open-session cap when -maxsessions is not
// given (or is <= 0).
const defaultMaxOpenSessions = 1024

// wire types

type feedbackOpenRequest struct {
	Database string `json:"database"`
	Question string `json:"question"`
	Evidence string `json:"evidence,omitempty"`
}

type feedbackOpenResponse struct {
	ID       string `json:"id"`
	Database string `json:"database"`
	SQL      string `json:"sql"`
	OK       bool   `json:"ok"`
}

type regenerateRequest struct {
	// Feedback is the SME's natural-language critique; the recommender
	// turns it into knowledge-set edits which are staged for this session.
	Feedback string `json:"feedback"`
}

type regenerateResponse struct {
	ID  string `json:"id"`
	SQL string `json:"sql"`
	OK  bool   `json:"ok"`
	// Edits describes everything staged in this session so far.
	Edits      []string `json:"edits"`
	Iterations int      `json:"iterations"`
}

type submitResponse struct {
	ID      string `json:"id"`
	Passed  bool   `json:"passed"`
	Detail  string `json:"detail"`
	Pending bool   `json:"pending"`
}

type approveRequest struct {
	Approver string `json:"approver"`
}

type approveResponse struct {
	ID string `json:"id"`
	// KnowledgeVersion is the served version after the merge; PersistedSeq
	// is how far the durable store has fsynced (0 when running in-memory).
	KnowledgeVersion int  `json:"knowledge_version"`
	PersistedSeq     int  `json:"persisted_seq"`
	Persisted        bool `json:"persisted"`
}

type knowledgeEventJSON struct {
	Seq        int    `json:"seq"`
	Version    int    `json:"version"`
	Op         string `json:"op"`
	Kind       string `json:"kind"`
	EntityID   string `json:"entity_id,omitempty"`
	Summary    string `json:"summary,omitempty"`
	Editor     string `json:"editor,omitempty"`
	FeedbackID string `json:"feedback_id,omitempty"`
}

type knowledgeResponse struct {
	Database        string `json:"database"`
	Version         int    `json:"version"`
	Examples        int    `json:"examples"`
	Instructions    int    `json:"instructions"`
	Intents         int    `json:"intents"`
	Directives      int    `json:"directives"`
	Persisted       bool   `json:"persisted"`
	PersistedSeq    int    `json:"persisted_seq,omitempty"`
	SnapshotVersion int    `json:"snapshot_version,omitempty"`
	HistoryLen      int    `json:"history_len"`
	// History is the tail of the audit log (most recent last), bounded by
	// the ?n= query parameter (default 20; n=0 returns the full log).
	History []knowledgeEventJSON `json:"history"`
}

// registerFeedbackRoutes mounts the online-feedback and knowledge
// endpoints onto the daemon mux.
func (h *feedbackHub) registerRoutes(mux *http.ServeMux, withTimeout func(context.Context) (context.Context, context.CancelFunc)) {
	mux.HandleFunc("POST /v1/feedback/open", func(w http.ResponseWriter, r *http.Request) {
		var req feedbackOpenRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if req.Database == "" || req.Question == "" {
			writeError(w, http.StatusBadRequest, "database and question are required")
			return
		}
		ctx, cancel := withTimeout(r.Context())
		defer cancel()
		solver, err := h.solverFor(ctx, req.Database)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		sess, err := solver.OpenContext(ctx, req.Question, req.Evidence)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		fs, err := h.register(req.Database, sess)
		if err != nil {
			writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, feedbackOpenResponse{
			ID: fs.id, Database: req.Database,
			SQL: sess.Record.FinalSQL, OK: sess.Record.OK,
		})
	})

	mux.HandleFunc("POST /v1/feedback/{id}/regenerate", func(w http.ResponseWriter, r *http.Request) {
		fs := h.session(r.PathValue("id"))
		if fs == nil {
			writeError(w, http.StatusNotFound, "unknown feedback session")
			return
		}
		var req regenerateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if req.Feedback == "" {
			writeError(w, http.StatusBadRequest, "feedback text is required")
			return
		}
		ctx, cancel := withTimeout(r.Context())
		defer cancel()
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if fs.done {
			writeError(w, http.StatusConflict, "session already approved")
			return
		}
		rec, err := fs.sess.Feedback(req.Feedback)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		fs.sess.Stage(rec.Edits...)
		regen, err := fs.sess.RegenerateContext(ctx)
		if err != nil {
			// Unstage this round's edits so a client retry (the recommender
			// is deterministic) does not stage a duplicate copy and wedge
			// the session on "already exists".
			fs.sess.Staged = fs.sess.Staged[:len(fs.sess.Staged)-len(rec.Edits)]
			writeServiceError(w, err)
			return
		}
		out := regenerateResponse{ID: fs.id, SQL: regen.FinalSQL, OK: regen.OK, Iterations: fs.sess.Iterations}
		for _, e := range fs.sess.Staged {
			out.Edits = append(out.Edits, e.Describe())
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("POST /v1/feedback/{id}/submit", func(w http.ResponseWriter, r *http.Request) {
		fs := h.session(r.PathValue("id"))
		if fs == nil {
			writeError(w, http.StatusNotFound, "unknown feedback session")
			return
		}
		ctx, cancel := withTimeout(r.Context())
		defer cancel()
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if fs.done {
			writeError(w, http.StatusConflict, "session already approved")
			return
		}
		res, err := fs.sess.SubmitContext(ctx)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		if res.Pending != nil {
			fs.pending = res.Pending
		}
		writeJSON(w, http.StatusOK, submitResponse{
			ID: fs.id, Passed: res.Passed, Detail: res.Detail, Pending: res.Pending != nil,
		})
	})

	mux.HandleFunc("POST /v1/feedback/{id}/approve", func(w http.ResponseWriter, r *http.Request) {
		fs := h.session(r.PathValue("id"))
		if fs == nil {
			writeError(w, http.StatusNotFound, "unknown feedback session")
			return
		}
		var req approveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if req.Approver == "" {
			req.Approver = "reviewer"
		}
		ctx, cancel := withTimeout(r.Context())
		defer cancel()
		fs.mu.Lock()
		defer fs.mu.Unlock()
		if fs.done {
			writeError(w, http.StatusConflict, "session already approved")
			return
		}
		if fs.pending == nil {
			writeError(w, http.StatusConflict, "no passing submission to approve")
			return
		}
		solver, err := h.solverFor(ctx, fs.db)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		if err := solver.Approve(fs.pending, req.Approver); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		fs.done = true
		h.evict(fs.id)
		info, err := h.svc.Knowledge(ctx, fs.db, 0)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, approveResponse{
			ID: fs.id, KnowledgeVersion: info.Version,
			PersistedSeq: info.PersistedSeq, Persisted: info.Persisted,
		})
	})

	mux.HandleFunc("GET /v1/knowledge/{db}", func(w http.ResponseWriter, r *http.Request) {
		n := 20
		if q := r.URL.Query().Get("n"); q != "" {
			if _, err := fmt.Sscanf(q, "%d", &n); err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "n must be a non-negative integer")
				return
			}
		}
		lastN := n
		if n == 0 {
			lastN = -1 // the wire contract: n=0 means the full log
		}
		ctx, cancel := withTimeout(r.Context())
		defer cancel()
		info, err := h.svc.Knowledge(ctx, r.PathValue("db"), lastN)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		out := knowledgeResponse{
			Database:        info.Database,
			Version:         info.Version,
			Examples:        info.Examples,
			Instructions:    info.Instructions,
			Intents:         info.Intents,
			Directives:      info.Directives,
			Persisted:       info.Persisted,
			PersistedSeq:    info.PersistedSeq,
			SnapshotVersion: info.SnapshotVersion,
			HistoryLen:      info.HistoryLen,
		}
		for _, ev := range info.History {
			out.History = append(out.History, knowledgeEventJSON{
				Seq: ev.Seq, Version: ev.Version, Op: string(ev.Op), Kind: string(ev.Kind),
				EntityID: ev.EntityID, Summary: ev.Summary, Editor: ev.Editor, FeedbackID: ev.FeedbackID,
			})
		}
		writeJSON(w, http.StatusOK, out)
	})
}
