package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"genedit"
	"genedit/internal/eval"
	"genedit/internal/feedback"
	"genedit/internal/task"
)

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, raw
}

const fbDB = "sports_holdings"

// newStoreServer spins up a daemon over a durable store directory and
// returns the test server plus a closer that simulates a clean kill.
func newStoreServer(t *testing.T, dir string) (*httptest.Server, func()) {
	t.Helper()
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42), genedit.WithStorePath(dir))...)
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: 30 * time.Second}))
	closed := false
	closer := func() {
		if closed {
			return
		}
		closed = true
		srv.Close()
		svc.Close()
	}
	t.Cleanup(closer)
	return srv, closer
}

func decode[T any](t *testing.T, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return v
}

func getKnowledge(t *testing.T, base string) knowledgeResponse {
	t.Helper()
	resp, raw := getURL(t, base+"/v1/knowledge/"+fbDB)
	if resp.StatusCode != 200 {
		t.Fatalf("GET knowledge = %d: %s", resp.StatusCode, raw)
	}
	return decode[knowledgeResponse](t, raw)
}

// TestFeedbackLoopEndToEnd drives the full online continuous-improvement
// flow over HTTP — open → regenerate → submit → approve — against a
// durable store, then restarts the daemon and asserts the knowledge
// version and audit history survive the kill.
func TestFeedbackLoopEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, kill := newStoreServer(t, dir)

	// A deterministic twin of the daemon's stack crafts the SME feedback
	// (FeedbackFor needs the generation record) and finds failing cases.
	suite := genedit.NewBenchmark(1)
	local := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42))...)
	runner := eval.NewRunner(suite.Databases)
	sme := feedback.NewSimulatedSME(7)

	var cases []*task.Case
	for _, c := range suite.Cases {
		if c.DB == fbDB {
			cases = append(cases, c)
		}
	}

	approvedVersion := 0
	for _, c := range cases {
		resp, err := local.Generate(t.Context(), genedit.Request{Database: fbDB, Question: c.Question, Evidence: c.Evidence})
		if err != nil {
			t.Fatal(err)
		}
		if ok, _ := runner.Evaluate(c, resp.SQL); ok {
			continue
		}

		body, _ := json.Marshal(feedbackOpenRequest{Database: fbDB, Question: c.Question, Evidence: c.Evidence})
		hresp, raw := postJSON(t, srv.URL+"/v1/feedback/open", string(body))
		if hresp.StatusCode != 200 {
			t.Fatalf("open = %d: %s", hresp.StatusCode, raw)
		}
		opened := decode[feedbackOpenResponse](t, raw)
		if opened.ID == "" || opened.SQL == "" {
			t.Fatalf("open response incomplete: %s", raw)
		}
		if opened.SQL != resp.SQL {
			t.Fatalf("daemon initial SQL %q != local twin %q", opened.SQL, resp.SQL)
		}

		fbText, _ := json.Marshal(regenerateRequest{Feedback: sme.FeedbackFor(c, resp.Record)})
		hresp, raw = postJSON(t, srv.URL+"/v1/feedback/"+opened.ID+"/regenerate", string(fbText))
		if hresp.StatusCode != 200 {
			t.Fatalf("regenerate = %d: %s", hresp.StatusCode, raw)
		}
		regen := decode[regenerateResponse](t, raw)
		if len(regen.Edits) == 0 {
			t.Fatalf("regenerate staged no edits: %s", raw)
		}

		hresp, raw = postJSON(t, srv.URL+"/v1/feedback/"+opened.ID+"/submit", `{}`)
		if hresp.StatusCode != 200 {
			t.Fatalf("submit = %d: %s", hresp.StatusCode, raw)
		}
		sub := decode[submitResponse](t, raw)
		if !sub.Passed {
			continue // regression gate rejected; try another case
		}

		hresp, raw = postJSON(t, srv.URL+"/v1/feedback/"+opened.ID+"/approve", `{"approver":"reviewer"}`)
		if hresp.StatusCode != 200 {
			t.Fatalf("approve = %d: %s", hresp.StatusCode, raw)
		}
		appr := decode[approveResponse](t, raw)
		if !appr.Persisted || appr.PersistedSeq != appr.KnowledgeVersion {
			t.Fatalf("approve not persisted through its version: %+v", appr)
		}
		// An approved session is evicted; a second approval must 404.
		hresp, _ = postJSON(t, srv.URL+"/v1/feedback/"+opened.ID+"/approve", `{}`)
		if hresp.StatusCode != 404 {
			t.Errorf("double approve = %d, want 404 after eviction", hresp.StatusCode)
		}
		approvedVersion = appr.KnowledgeVersion
		break
	}
	if approvedVersion == 0 {
		t.Fatal("no feedback session reached approval")
	}

	before := getKnowledge(t, srv.URL)
	if before.Version != approvedVersion {
		t.Errorf("knowledge version = %d, want %d", before.Version, approvedVersion)
	}
	if !before.Persisted || before.PersistedSeq != before.Version {
		t.Errorf("store not caught up: %+v", before)
	}
	if before.HistoryLen == 0 || len(before.History) == 0 {
		t.Error("knowledge endpoint returned no history")
	}

	// Kill the daemon and restart over the same store: the approved
	// version and full change history must survive.
	kill()
	srv2, _ := newStoreServer(t, dir)
	after := getKnowledge(t, srv2.URL)
	if after.Version != before.Version {
		t.Errorf("restarted version = %d, want %d", after.Version, before.Version)
	}
	if after.HistoryLen != before.HistoryLen {
		t.Errorf("restarted history len = %d, want %d", after.HistoryLen, before.HistoryLen)
	}
	if after.Examples != before.Examples || after.Instructions != before.Instructions {
		t.Errorf("restarted counts %+v, want %+v", after, before)
	}

	// And the restarted daemon still serves generations over the recovered
	// knowledge.
	body, _ := json.Marshal(generateRequest{Database: fbDB, Question: cases[0].Question, Evidence: cases[0].Evidence})
	hresp, raw := postJSON(t, srv2.URL+"/v1/generate", string(body))
	if hresp.StatusCode != 200 {
		t.Fatalf("generate after restart = %d: %s", hresp.StatusCode, raw)
	}
	if got := decode[generateResponse](t, raw); got.SQL == "" {
		t.Error("empty SQL after restart")
	}
}

func TestFeedbackEndpointErrors(t *testing.T) {
	srv := newTestServer(t, 30*time.Second)

	// Unknown session IDs.
	for _, ep := range []string{"regenerate", "submit", "approve"} {
		resp, _ := postJSON(t, srv.URL+"/v1/feedback/nope/"+ep, `{"feedback":"x"}`)
		if resp.StatusCode != 404 {
			t.Errorf("%s on unknown session = %d, want 404", ep, resp.StatusCode)
		}
	}
	// Unknown database on open and on the knowledge endpoint.
	resp, _ := postJSON(t, srv.URL+"/v1/feedback/open", `{"database":"nope","question":"q"}`)
	if resp.StatusCode != 404 {
		t.Errorf("open on unknown db = %d, want 404", resp.StatusCode)
	}
	resp, _ = getURL(t, srv.URL+"/v1/knowledge/nope")
	if resp.StatusCode != 404 {
		t.Errorf("knowledge on unknown db = %d, want 404", resp.StatusCode)
	}
	// Missing fields.
	resp, _ = postJSON(t, srv.URL+"/v1/feedback/open", `{"database":"retail_chain"}`)
	if resp.StatusCode != 400 {
		t.Errorf("open without question = %d, want 400", resp.StatusCode)
	}

	// Approve before a passing submit must conflict.
	suite := genedit.NewBenchmark(1)
	var c *task.Case
	for _, cc := range suite.Cases {
		if cc.DB == fbDB {
			c = cc
			break
		}
	}
	body, _ := json.Marshal(feedbackOpenRequest{Database: fbDB, Question: c.Question, Evidence: c.Evidence})
	hresp, raw := postJSON(t, srv.URL+"/v1/feedback/open", string(body))
	if hresp.StatusCode != 200 {
		t.Fatalf("open = %d: %s", hresp.StatusCode, raw)
	}
	opened := decode[feedbackOpenResponse](t, raw)
	hresp, _ = postJSON(t, srv.URL+"/v1/feedback/"+opened.ID+"/approve", `{}`)
	if hresp.StatusCode != 409 {
		t.Errorf("approve without submit = %d, want 409", hresp.StatusCode)
	}
	// Submitting with nothing staged is a client error, not a crash.
	hresp, _ = postJSON(t, srv.URL+"/v1/feedback/"+opened.ID+"/submit", `{}`)
	if hresp.StatusCode == 200 {
		t.Error("submit with nothing staged should fail")
	}
}

// TestKnowledgeEndpoint covers the inspection surface on a plain in-memory
// daemon: counts are populated and the ?n= bound works.
func TestKnowledgeEndpoint(t *testing.T) {
	srv := newTestServer(t, 30*time.Second)
	resp, raw := getURL(t, srv.URL+"/v1/knowledge/"+fbDB+"?n=5")
	if resp.StatusCode != 200 {
		t.Fatalf("knowledge = %d: %s", resp.StatusCode, raw)
	}
	got := decode[knowledgeResponse](t, raw)
	if got.Database != fbDB || got.Version == 0 || got.Examples == 0 || got.Instructions == 0 {
		t.Errorf("knowledge response incomplete: %+v", got)
	}
	if got.Persisted {
		t.Error("in-memory daemon must not report a persistent store")
	}
	if len(got.History) != 5 {
		t.Errorf("history tail = %d events, want 5", len(got.History))
	}
	if got.HistoryLen <= 5 {
		t.Errorf("history_len = %d, want the full log length", got.HistoryLen)
	}
	resp, _ = getURL(t, srv.URL+"/v1/knowledge/"+fbDB+"?n=bogus")
	if resp.StatusCode != 400 {
		t.Errorf("bad n = %d, want 400", resp.StatusCode)
	}
}
