package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"genedit"
	"genedit/internal/metrics"
	"genedit/internal/workload"
)

// testOpts prefixes a fresh metrics registry onto the service options.
// Without it every test service would report into the process-global
// default registry, and tests asserting exact counter values (via /v1/stats,
// which is derived from the registry) could see each other's bridges.
func testOpts(opts ...genedit.Option) []genedit.Option {
	return append([]genedit.Option{genedit.WithMetrics(metrics.NewRegistry())}, opts...)
}

func newTestServer(t *testing.T, timeout time.Duration) *httptest.Server {
	t.Helper()
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42))...)
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: timeout}))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, raw
}

// TestGenerateEndToEnd drives the daemon's generate endpoint against a real
// suite case and asserts the produced SQL matches what the library API
// returns for the same request.
func TestGenerateEndToEnd(t *testing.T) {
	srv := newTestServer(t, 30*time.Second)

	suite := genedit.NewBenchmark(1)
	var q, db string
	for _, c := range suite.Cases {
		q, db = c.Question, c.DB
		break
	}

	body, _ := json.Marshal(generateRequest{Database: db, Question: q})
	resp, raw := postJSON(t, srv.URL+"/v1/generate", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, raw)
	}
	var got generateResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if got.SQL == "" {
		t.Fatalf("empty SQL in response %s", raw)
	}
	if got.Database != db {
		t.Fatalf("database = %q, want %q", got.Database, db)
	}
	if got.Attempts < 1 {
		t.Fatalf("attempts = %d, want >= 1", got.Attempts)
	}

	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42))...)
	want, err := svc.Generate(t.Context(), genedit.Request{Database: db, Question: q})
	if err != nil {
		t.Fatalf("library generate: %v", err)
	}
	if got.SQL != want.SQL {
		t.Fatalf("daemon SQL %q != library SQL %q", got.SQL, want.SQL)
	}
}

func TestGenerateUnknownDatabase(t *testing.T) {
	srv := newTestServer(t, time.Second)
	resp, raw := postJSON(t, srv.URL+"/v1/generate", `{"database":"nope","question":"q"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404; body %s", resp.StatusCode, raw)
	}
}

func TestGenerateBadRequest(t *testing.T) {
	srv := newTestServer(t, time.Second)
	resp, _ := postJSON(t, srv.URL+"/v1/generate", `{"database":"retail_chain"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing question: status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/generate", `{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status = %d, want 400", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv := newTestServer(t, 30*time.Second)
	suite := genedit.NewBenchmark(1)
	var reqs []generateRequest
	for _, c := range suite.Cases {
		reqs = append(reqs, generateRequest{Database: c.DB, Question: c.Question, Evidence: c.Evidence})
		if len(reqs) == 4 {
			break
		}
	}
	reqs = append(reqs, generateRequest{Database: "nope", Question: "q"})
	body, _ := json.Marshal(batchRequest{Requests: reqs})

	resp, raw := postJSON(t, srv.URL+"/v1/generate/batch", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, raw)
	}
	var got batchResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if len(got.Responses) != len(reqs) {
		t.Fatalf("responses = %d, want %d", len(got.Responses), len(reqs))
	}
	for i := 0; i < 4; i++ {
		if got.Responses[i].SQL == "" {
			t.Errorf("response %d: empty SQL", i)
		}
	}
	if got.Responses[4].Error == "" {
		t.Errorf("unknown-database batch item should carry an error, got %+v", got.Responses[4])
	}
}

func TestDatabasesAndHealth(t *testing.T) {
	srv := newTestServer(t, time.Second)
	resp, err := http.Get(srv.URL + "/v1/databases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Databases []string `json:"databases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Databases) != 8 {
		t.Fatalf("databases = %d, want 8", len(got.Databases))
	}
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", hresp.StatusCode)
	}
}

// TestMinerEndpoints drives the self-improving loop over HTTP: serve the
// miner workload's injected recurring-failure cases, check the failure
// counters surface on /v1/miner/{db} and /v1/stats, trigger a mining round
// via POST /v1/miner/{db}/mine, and check it reports gated merges.
func TestMinerEndpoints(t *testing.T) {
	suite, injected := workload.NewMinerSuite(1)
	svc := genedit.NewService(suite, testOpts(
		genedit.WithModelSeed(42),
		genedit.WithGenerationCache(256),
		genedit.WithMiner(genedit.MinerConfig{}))...)
	t.Cleanup(func() { svc.Close() })
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: 30 * time.Second}))
	t.Cleanup(srv.Close)

	db := injected[0].DB
	for _, c := range injected {
		if c.DB != db {
			continue
		}
		body, _ := json.Marshal(generateRequest{Database: c.DB, Question: c.Question, Evidence: c.Evidence})
		resp, raw := postJSON(t, srv.URL+"/v1/generate", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("generate %s: status %d, body %s", c.ID, resp.StatusCode, raw)
		}
	}

	var status minerStatusResponse
	getJSON(t, srv.URL+"/v1/miner/"+db, &status)
	if !status.Enabled {
		t.Error("miner should report enabled")
	}
	if status.Failures.Exec == 0 {
		t.Errorf("failures = %+v, want exec failures recorded", status.Failures)
	}

	resp, raw := postJSON(t, srv.URL+"/v1/miner/"+db+"/mine", `{}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mine: status %d, body %s", resp.StatusCode, raw)
	}
	var mined mineResponse
	if err := json.Unmarshal(raw, &mined); err != nil {
		t.Fatal(err)
	}
	if mined.Report.Merged == 0 {
		t.Fatalf("mining round merged nothing: %s", raw)
	}

	var stats statsResponse
	getJSON(t, srv.URL+"/v1/stats", &stats)
	if !stats.MinerEnabled {
		t.Error("stats should report the miner enabled")
	}
	if stats.Miner[db].Merged != mined.Report.Merged {
		t.Errorf("stats miner counters = %+v, want merged %d", stats.Miner[db], mined.Report.Merged)
	}
	if stats.Failures[db].Exec == 0 {
		t.Error("stats should carry the per-db failure counters")
	}

	if resp, _ := postJSON(t, srv.URL+"/v1/miner/nope/mine", `{}`); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown db mine: status %d, want 404", resp.StatusCode)
	}
}

// TestMinerDisabledEndpoints checks the default daemon: status reports the
// miner off, and a manual mining trigger is refused.
func TestMinerDisabledEndpoints(t *testing.T) {
	srv := newTestServer(t, time.Second)

	var status minerStatusResponse
	getJSON(t, srv.URL+"/v1/miner/retail_chain", &status)
	if status.Enabled {
		t.Error("miner should report disabled by default")
	}
	resp, _ := postJSON(t, srv.URL+"/v1/miner/retail_chain/mine", `{}`)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("mine without -miner: status %d, want 409", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/v1/miner/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown db status: %d, want 404", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestGenerationCacheAndStats drives /v1/generate twice with an identical
// request against a cache-enabled service and checks the second response is
// served from the cache with identical SQL, and that /v1/stats reports the
// hit.
func TestGenerationCacheAndStats(t *testing.T) {
	suite := genedit.NewBenchmark(1)
	svc := genedit.NewService(suite, testOpts(genedit.WithModelSeed(42), genedit.WithGenerationCache(64))...)
	srv := httptest.NewServer(newMux(svc, suite, muxConfig{perReq: 30 * time.Second}))
	t.Cleanup(srv.Close)

	var q, db string
	for _, c := range suite.Cases {
		q, db = c.Question, c.DB
		break
	}
	body, _ := json.Marshal(generateRequest{Database: db, Question: q})

	var first, second generateResponse
	for i, out := range []*generateResponse{&first, &second} {
		resp, raw := postJSON(t, srv.URL+"/v1/generate", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d, body %s", i, resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatal(err)
		}
	}
	if first.Cached {
		t.Error("first request should not be cached")
	}
	if !second.Cached {
		t.Error("second identical request should be served from the cache")
	}
	if first.SQL == "" || first.SQL != second.SQL {
		t.Errorf("cached SQL diverged: %q vs %q", first.SQL, second.SQL)
	}

	sresp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.GenerationCacheEnabled {
		t.Error("stats should report the cache enabled")
	}
	if stats.GenerationCache.Hits != 1 || stats.GenerationCache.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", stats.GenerationCache)
	}
	if stats.GenerationCache.Entries != 1 || stats.GenerationCache.Capacity != 64 {
		t.Errorf("stats fill = %+v, want 1 entry / capacity 64", stats.GenerationCache)
	}
}
