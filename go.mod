module genedit

go 1.24
