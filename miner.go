package genedit

import (
	"context"
	"errors"
	"fmt"

	"genedit/internal/eval"
	"genedit/internal/gencache"
	"genedit/internal/generr"
	"genedit/internal/miner"
	"genedit/internal/pipeline"
	"genedit/internal/task"
	"genedit/internal/workload"
)

// Miner re-exports for the serving layer and tools.
type (
	// MinerConfig tunes a database's background failure miner.
	MinerConfig = miner.Config
	// MinerStats is one database miner's counter snapshot.
	MinerStats = miner.Stats
	// MinerRoundReport summarizes one mining round.
	MinerRoundReport = miner.RoundReport
)

// MinerEditor is the provenance tag auto-mined edits carry through the
// regression gate, merge events and the WAL ("miner", vs "sme" for
// interactive sessions).
const MinerEditor = miner.Editor

// minerState is the per-database miner held in the Service registry
// (declared here so service.go does not import internal/miner).
type minerState = miner.Miner

// WithMiner enables the background failure miner: per database, failed
// generations are retained (a bounded ring plus whatever the generation
// cache holds) and MineRound clusters them, distills candidate
// instructions, and pushes each candidate through the same regression
// gate → approve → persist → hot-swap path SME edits take. The zero
// MinerConfig selects the defaults. The miner is strictly opt-in: without
// this option the service never retains failed records beyond the cache and
// MineRound errors, so default serving behavior is unchanged.
func WithMiner(cfg MinerConfig) Option {
	return func(s *Service) {
		s.minerCfg = &cfg
	}
}

// FailureStats counts one database's failed generations by class. Counters
// accumulate over the service's lifetime regardless of whether the miner is
// enabled — they are the serving layer's cheap health signal.
type FailureStats struct {
	// Syntax counts generations whose final SQL failed to parse.
	Syntax uint64 `json:"syntax"`
	// Exec counts generations whose final SQL parsed but failed execution.
	Exec uint64 `json:"exec"`
	// Canceled counts requests abandoned mid-pipeline (caller cancellation
	// or deadline).
	Canceled uint64 `json:"canceled"`
}

// failureRingCap bounds the per-database retained-failure ring the miner
// drains; beyond it the oldest failures are dropped (the generation cache
// usually still holds them).
const failureRingCap = 256

// dbFailures is one database's failure accounting (guarded by Service.failMu).
type dbFailures struct {
	stats FailureStats
	// ring retains recent failed records for mining, newest last. Only
	// populated when the miner is enabled.
	ring []*pipeline.Record
}

// noteFailure records one failed generation for db.
func (s *Service) noteFailure(db string, rec *pipeline.Record) {
	f := rec.Failure()
	if f == nil {
		return
	}
	s.failMu.Lock()
	defer s.failMu.Unlock()
	d := s.failureEntry(db)
	switch f.Kind {
	case "syntax":
		d.stats.Syntax++
	default:
		d.stats.Exec++
	}
	if s.minerCfg == nil {
		return
	}
	if len(d.ring) >= failureRingCap {
		copy(d.ring, d.ring[1:])
		d.ring = d.ring[:failureRingCap-1]
	}
	d.ring = append(d.ring, rec)
}

// noteCanceled records one abandoned request for db.
func (s *Service) noteCanceled(db string) {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	s.failureEntry(db).stats.Canceled++
}

// failureEntry returns (creating if needed) db's accounting; callers hold
// failMu.
func (s *Service) failureEntry(db string) *dbFailures {
	if s.failures == nil {
		s.failures = make(map[string]*dbFailures)
	}
	d, ok := s.failures[db]
	if !ok {
		d = &dbFailures{}
		s.failures[db] = d
	}
	return d
}

// FailureStats reports per-database failure counters for every database
// that has recorded at least one failure or cancellation.
func (s *Service) FailureStats() map[string]FailureStats {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	out := make(map[string]FailureStats, len(s.failures))
	for db, d := range s.failures {
		out[db] = d.stats
	}
	return out
}

// minerFor returns (building on first use) the miner for one database. The
// miner's solver shares the service's merge hook, so an approved mined
// candidate is persisted (when durable) and hot-swapped exactly like an SME
// merge — and refuses to splice if another writer committed first.
func (s *Service) minerFor(ctx context.Context, db string) (*miner.Miner, error) {
	if s.minerCfg == nil {
		return nil, fmt.Errorf("genedit: miner is not enabled (WithMiner)")
	}
	s.failMu.Lock()
	m, ok := s.miners[db]
	s.failMu.Unlock()
	if ok {
		return m, nil
	}
	solver, err := s.Solver(ctx, db, s.minerGolden(db))
	if err != nil {
		return nil, err
	}
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if m, ok := s.miners[db]; ok {
		return m, nil
	}
	if s.miners == nil {
		s.miners = make(map[string]*miner.Miner)
	}
	m = miner.New(solver, *s.minerCfg)
	s.miners[db] = m
	return m, nil
}

// minerGolden picks the regression suite gating mined merges for one
// database: its benchmark cases, capped. The cap keeps a mining round's
// cost bounded — every candidate submission replays the suite twice.
func (s *Service) minerGolden(db string) []*Case {
	const cap = 6
	var out []*Case
	for _, c := range s.suite.Cases {
		if c.DB == db {
			out = append(out, c)
			if len(out) == cap {
				break
			}
		}
	}
	return out
}

// MineRound runs one mining round for a database: drain the retained
// failure ring, merge in the generation cache's retained failures for that
// database (deduplicated by question), then cluster → distill → gate →
// approve. Rejected candidates are counted and never merged. Safe to call
// concurrently with serving; merges hot-swap like SME approvals.
func (s *Service) MineRound(ctx context.Context, db string) (MinerRoundReport, error) {
	m, err := s.minerFor(ctx, db)
	if err != nil {
		return MinerRoundReport{}, err
	}

	s.failMu.Lock()
	var drained []*pipeline.Record
	if d, ok := s.failures[db]; ok {
		drained = d.ring
		d.ring = nil
	}
	s.failMu.Unlock()

	seen := make(map[string]bool, len(drained))
	for _, rec := range drained {
		seen[task.QuestionKey(rec.Question)] = true
	}
	if s.gencache != nil {
		for _, rec := range s.gencache.FailedRecords() {
			if rec.Context.DB != db {
				continue
			}
			if k := task.QuestionKey(rec.Question); !seen[k] {
				seen[k] = true
				drained = append(drained, rec)
			}
		}
	}

	// Staleness filter: retained failures are not version-tagged, and a
	// failure observed under an older knowledge version may already be fixed
	// by a merge. When the cache holds a successful record for the question
	// at the CURRENT version, the gap is closed — mining it again would only
	// distill pointless refinements.
	failed := drained
	if s.gencache != nil {
		if engine, eerr := s.Engine(ctx, db); eerr == nil {
			version := engine.KnowledgeSet().Version()
			failed = failed[:0]
			for _, rec := range drained {
				cur, ok := s.gencache.Peek(gencache.Key(db, version, rec.Question, rec.Evidence))
				if ok && cur.OK {
					continue
				}
				failed = append(failed, rec)
			}
		}
	}
	return m.Round(ctx, failed)
}

// MinerEnabled reports whether WithMiner configured this service.
func (s *Service) MinerEnabled() bool { return s.minerCfg != nil }

// MinerStats reports the per-database miner counters (databases whose miner
// has been exercised at least once).
func (s *Service) MinerStats() map[string]MinerStats {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	out := make(map[string]MinerStats, len(s.miners))
	for db, m := range s.miners {
		out[db] = m.Stats()
	}
	return out
}

// MinerConvergenceRound is one round of the miner convergence experiment:
// execution accuracy over the injected recurring-failure families measured
// before mining, then the round's merge/reject outcome.
type MinerConvergenceRound struct {
	Round int
	// EX is the families' execution accuracy (percent) at the round's start.
	EX float64
	// Merged / Rejected / Unactionable aggregate the round's mining outcome
	// across databases.
	Merged       int
	Rejected     int
	Unactionable int
}

// RunMinerConvergence is the miner's end-to-end exhibit: a service over the
// miner workload (the standard suite plus injected recurring exec-failure
// families whose jargon no knowledge document defines) serves the failing
// questions, mines each database, and re-serves — showing EX over the
// injected families rising as gated auto-knowledge merges, with every merge
// having passed the same regression bar as an SME edit.
func RunMinerConvergence(seed, modelSeed uint64, rounds int) ([]MinerConvergenceRound, error) {
	suite, injected := workload.NewMinerSuite(seed)
	svc := NewService(suite,
		WithModelSeed(modelSeed),
		WithGenerationCache(failureRingCap),
		WithMiner(MinerConfig{}))
	defer svc.Close()
	ctx := context.Background()

	dbs := map[string]bool{}
	for _, c := range injected {
		dbs[c.DB] = true
	}

	var out []MinerConvergenceRound
	for round := 1; round <= rounds; round++ {
		correct := 0
		for _, c := range injected {
			resp, err := svc.Generate(ctx, Request{Database: c.DB, Question: c.Question, Evidence: c.Evidence})
			if err != nil {
				return nil, fmt.Errorf("round %d case %s: %w", round, c.ID, err)
			}
			if !resp.OK {
				continue
			}
			exec, err := suite.Executor(c.DB)
			if err != nil {
				return nil, err
			}
			gold, err := exec.Query(c.GoldSQL)
			if err != nil {
				return nil, fmt.Errorf("case %s gold: %w", c.ID, err)
			}
			if eval.ResultsEqual(gold, resp.Record.Result) {
				correct++
			}
		}
		r := MinerConvergenceRound{Round: round, EX: 100 * float64(correct) / float64(len(injected))}
		for db := range dbs {
			rep, err := svc.MineRound(ctx, db)
			if err != nil {
				return nil, fmt.Errorf("round %d mine %s: %w", round, db, err)
			}
			r.Merged += rep.Merged
			r.Rejected += rep.Rejected
			r.Unactionable += rep.Unactionable
		}
		out = append(out, r)
	}
	return out, nil
}

// errCanceled reports whether err is a cancellation (shared helper for the
// failure counters).
func errCanceled(err error) bool { return errors.Is(err, generr.ErrCanceled) }
