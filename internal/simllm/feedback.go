package simllm

import (
	"fmt"
	"strings"

	"genedit/internal/embed"
	"genedit/internal/llm"
)

// GenerateTargets implements feedback operator 1: determine which retrieved
// items the user feedback is about, with a brief explanation. Feedback that
// names a term with no defining instruction yields a "new" target.
func (m *Model) GenerateTargets(req *llm.FeedbackRequest) ([]llm.FeedbackTarget, error) {
	var targets []llm.FeedbackTarget
	fbTokens := embed.Tokenize(req.UserFeedback)
	fbSet := make(map[string]bool, len(fbTokens))
	for _, t := range fbTokens {
		fbSet[t] = true
	}

	// Instructions whose terms or text the feedback mentions.
	for _, ins := range req.Instructions {
		reason := ""
		for _, term := range ins.Terms {
			if fbSet[strings.ToLower(term)] {
				reason = fmt.Sprintf("the feedback mentions %s, which this instruction defines", term)
				break
			}
		}
		if reason == "" && embed.Similarity(req.UserFeedback, ins.Text) > 0.30 {
			reason = "the feedback overlaps this instruction's guidance"
		}
		if reason != "" {
			targets = append(targets, llm.FeedbackTarget{Kind: "instruction", ID: ins.ID, Why: reason})
		}
	}

	// Examples whose description or SQL the feedback overlaps.
	for _, ex := range req.Examples {
		if embed.Similarity(req.UserFeedback, ex.NL+" "+ex.SQL) > 0.30 {
			targets = append(targets, llm.FeedbackTarget{
				Kind: "example", ID: ex.ID,
				Why: "the feedback concerns the behaviour this example teaches",
			})
		}
	}

	// Terms the feedback uses that nothing in context covers become "new"
	// targets, driving insert edits.
	covered := func(term string) bool {
		for _, ins := range req.Instructions {
			for _, t := range ins.Terms {
				if strings.EqualFold(t, term) {
					return true
				}
			}
		}
		return false
	}
	for _, tok := range fbTokens {
		if len(tok) < 3 || !looksLikeTerm(tok, req.UserFeedback) || covered(tok) {
			continue
		}
		targets = append(targets, llm.FeedbackTarget{
			Kind: "new", ID: strings.ToUpper(tok),
			Why: fmt.Sprintf("the feedback introduces %q, which the knowledge set does not cover", strings.ToUpper(tok)),
		})
	}
	if len(targets) == 0 {
		targets = append(targets, llm.FeedbackTarget{
			Kind: "new", ID: "",
			Why: "the feedback describes behaviour no current knowledge item covers",
		})
	}
	return targets, nil
}

// looksLikeTerm reports whether the token appears in the original feedback
// text as an all-caps word — the acronym convention domain terms follow
// (QoQFP is matched case-insensitively by the caller's tokenization, so the
// original text is checked for the distinctive capitalized spelling).
func looksLikeTerm(token, original string) bool {
	if len(token) < 3 {
		return false
	}
	for _, word := range strings.FieldsFunc(original, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
	}) {
		if !strings.EqualFold(word, token) {
			continue
		}
		// Count upper-case letters: acronyms like QoQFP or RPV have ≥ 2.
		uppers := 0
		for _, r := range word {
			if r >= 'A' && r <= 'Z' {
				uppers++
			}
		}
		if uppers >= 2 {
			return true
		}
	}
	return false
}

// ExpandFeedback implements feedback operator 2: elaborate why the feedback
// applies to the chosen targets.
func (m *Model) ExpandFeedback(req *llm.FeedbackRequest, targets []llm.FeedbackTarget) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "The user reported: %q. ", req.UserFeedback)
	fmt.Fprintf(&sb, "The generated query was:\n%s\n", req.GeneratedSQL)
	if req.ExecFeedback != "" {
		fmt.Fprintf(&sb, "Execution feedback: %s. ", req.ExecFeedback)
	}
	for _, t := range targets {
		switch t.Kind {
		case "instruction":
			fmt.Fprintf(&sb, "Instruction %s is implicated because %s. ", t.ID, t.Why)
		case "example":
			fmt.Fprintf(&sb, "Example %s is implicated because %s. ", t.ID, t.Why)
		case "new":
			fmt.Fprintf(&sb, "New knowledge is needed: %s. ", t.Why)
		}
	}
	return sb.String(), nil
}

// PlanEdits implements feedback operator 3: a step-by-step CoT plan of the
// required changes.
func (m *Model) PlanEdits(req *llm.FeedbackRequest, expanded string, targets []llm.FeedbackTarget) ([]string, error) {
	var steps []string
	for _, t := range targets {
		switch t.Kind {
		case "instruction":
			steps = append(steps, fmt.Sprintf("Revise instruction %s so that it reflects the feedback.", t.ID))
		case "example":
			steps = append(steps, fmt.Sprintf("Revise example %s so its sub-statement matches the intended behaviour.", t.ID))
		case "new":
			name := t.ID
			if name == "" {
				name = "the described behaviour"
			}
			steps = append(steps, fmt.Sprintf("Insert a new instruction covering %s.", name))
			steps = append(steps, fmt.Sprintf("Insert a decomposed example demonstrating %s in SQL.", name))
		}
	}
	steps = append(steps, "Stage the edits, regenerate the query, and verify against the user feedback.")
	return steps, nil
}

// GenerateEdits implements feedback operator 4: full revised content for
// each planned change. The drafts use the knowledge-set representations.
func (m *Model) GenerateEdits(req *llm.FeedbackRequest, plan []string, targets []llm.FeedbackTarget) ([]llm.EditDraft, error) {
	c := m.lookup(req.Reformulated)
	if c == nil {
		c = m.lookup(req.Question)
	}
	var drafts []llm.EditDraft
	for _, t := range targets {
		switch t.Kind {
		case "instruction":
			drafts = append(drafts, llm.EditDraft{
				Op: "update", Kind: "instruction", ID: t.ID,
				Text:      refineGuidance(findInstructionText(req, t.ID), req.UserFeedback),
				Rationale: t.Why,
			})
		case "example":
			drafts = append(drafts, llm.EditDraft{
				Op: "update", Kind: "example", ID: t.ID,
				NL:        "Corrected per feedback: " + req.UserFeedback,
				SQL:       findExampleSQL(req, t.ID),
				Rationale: t.Why,
			})
		case "new":
			term := t.ID
			text := req.UserFeedback
			sqlHint := ""
			terms := []string{}
			if term != "" {
				terms = append(terms, term)
				text = fmt.Sprintf("%s: %s", term, req.UserFeedback)
			}
			// The model grounds the new knowledge in the case's latent
			// structure when it recognizes the question: the inserted
			// instruction genuinely unlocks future correct generations.
			if c != nil {
				for _, tr := range c.Terms {
					if term == "" || strings.EqualFold(tr.Term, term) {
						if term == "" {
							terms = append(terms, tr.Term)
							text = fmt.Sprintf("%s: %s", tr.Term, req.UserFeedback)
						}
						if c.Evidence != "" {
							text += " (" + c.Evidence + ")"
						}
						break
					}
				}
			}
			// Feedback-derived knowledge records the question it came from,
			// both for provenance and so future retrieval treats it as a
			// clarification of that question.
			text += " [from feedback on: " + req.Question + "]"
			drafts = append(drafts, llm.EditDraft{
				Op: "insert", Kind: "instruction",
				Text: text, SQLHint: sqlHint, Terms: terms,
				Rationale: t.Why,
			})
		}
	}
	// Retrieval-accuracy feedback becomes a directive (§1: edits "can
	// alternatively add instructions to the retrieval and reranking
	// operations").
	lower := strings.ToLower(req.UserFeedback)
	if strings.Contains(lower, "retriev") || strings.Contains(lower, "missing example") || strings.Contains(lower, "wrong example") {
		drafts = append(drafts, llm.EditDraft{
			Op: "directive", Kind: "retrieval_directive",
			Directive: "When ranking knowledge for questions like " + shorten(req.Question, 60) +
				", prefer items matching: " + shorten(req.UserFeedback, 80),
			Rationale: "the feedback concerns retrieval accuracy",
		})
	}
	return drafts, nil
}

func findInstructionText(req *llm.FeedbackRequest, id string) string {
	for _, ins := range req.Instructions {
		if ins.ID == id {
			return ins.Text
		}
	}
	return ""
}

func findExampleSQL(req *llm.FeedbackRequest, id string) string {
	for _, ex := range req.Examples {
		if ex.ID == id {
			return ex.SQL
		}
	}
	return ""
}

func refineGuidance(existing, feedback string) string {
	if existing == "" {
		return feedback
	}
	return existing + " Additionally: " + feedback
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
