package simllm

import (
	"strings"
	"testing"

	"genedit/internal/decompose"
	"genedit/internal/llm"
	"genedit/internal/task"
	"genedit/internal/workload"
)

func testModelAndSuite(t *testing.T) (*Model, *workload.Suite) {
	t.Helper()
	suite := workload.NewSuite(1)
	return New(GenEditProfile(), suite.Registry, 42), suite
}

func sportsCase(t *testing.T, suite *workload.Suite, id string) *task.Case {
	t.Helper()
	for _, c := range suite.Cases {
		if c.ID == id {
			return c
		}
	}
	t.Fatalf("case %s missing", id)
	return nil
}

func TestReformulateCanonicalForm(t *testing.T) {
	m, _ := testModelAndSuite(t)
	tests := []struct{ in, want string }{
		{"identify our 5 best teams", "Show me our 5 best teams"},
		{"show me revenue", "Show me revenue"},
		{"Show me revenue", "Show me revenue"},
		{"total revenue per org", "Show me total revenue per org"},
		{"list the stores", "Show me the stores"},
	}
	for _, tt := range tests {
		got, err := m.Reformulate(tt.in)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("Reformulate(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestReformulationPreservesRegistryLookup(t *testing.T) {
	m, suite := testModelAndSuite(t)
	for _, c := range suite.Cases {
		r, err := m.Reformulate(c.Question)
		if err != nil {
			t.Fatal(err)
		}
		if suite.Registry.Lookup(r) != c {
			t.Errorf("case %s unresolvable after reformulation: %q", c.ID, r)
		}
	}
}

func TestClassifyIntentsReturnsTrueIntent(t *testing.T) {
	m, suite := testModelAndSuite(t)
	options := []llm.IntentOption{
		{ID: "i1", Name: "financial performance", Description: "Queries about financial performance."},
		{ID: "i2", Name: "viewership analytics", Description: "Queries about viewership analytics."},
	}
	c := sportsCase(t, suite, "sports_holdings-s-top-1")
	got, err := m.ClassifyIntents(c.Question, options)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range got {
		if id == "i1" {
			found = true
		}
	}
	if !found {
		t.Errorf("ClassifyIntents = %v, want the true intent i1", got)
	}
}

func TestLinkSchemaReturnsNeededColumns(t *testing.T) {
	m, suite := testModelAndSuite(t)
	c := sportsCase(t, suite, "sports_holdings-s-top-1")
	sch := suite.Schemas[c.DB]
	els, err := m.LinkSchema(c.Question, sch, &llm.Context{Question: c.Question})
	if err != nil {
		t.Fatal(err)
	}
	// Most needed columns should be linked (misses are rare).
	linked := make(map[string]bool)
	for _, el := range els {
		linked[strings.ToUpper(el.String())] = true
	}
	hits := 0
	for _, el := range c.Needed {
		if linked[strings.ToUpper(el.String())] {
			hits++
		}
	}
	if hits < len(c.Needed)-1 {
		t.Errorf("linked %d of %d needed columns", hits, len(c.Needed))
	}
}

func TestLinkSchemaFallbackForUnknownQuestion(t *testing.T) {
	m, suite := testModelAndSuite(t)
	sch := suite.Schemas["sports_holdings"]
	els, err := m.LinkSchema("revenue of organisations", sch, &llm.Context{})
	if err != nil {
		t.Fatal(err)
	}
	if len(els) == 0 {
		t.Error("embedding fallback returned no columns")
	}
	for _, el := range els {
		if !sch.HasElement(el) {
			t.Errorf("fallback linked a non-existent column %v", el)
		}
	}
}

func TestPlanAnchorsFromExamples(t *testing.T) {
	m, suite := testModelAndSuite(t)
	c := sportsCase(t, suite, "sports_holdings-s-top-1")
	ctx := &llm.Context{Question: c.Question}

	// Without examples: no anchors.
	plan, err := m.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Steps {
		if s.Pseudo != "" {
			t.Fatalf("step %q anchored without any examples", s.Description)
		}
	}

	// With a matching fragment example: its clause anchors.
	ctx.Examples = []llm.RetrievedExample{{
		ID: "e", Clause: "from", SQL: "SPORTS_FINANCIALS", NL: "read financials",
	}}
	plan, err = m.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	anchored := 0
	for _, s := range plan.Steps {
		if s.SQL != "" {
			anchored++
			if s.Clause != "from" {
				t.Errorf("unexpected anchored clause %s", s.Clause)
			}
		}
	}
	if anchored == 0 {
		t.Error("matching example did not anchor the FROM step")
	}
}

func TestGenerateSQLComposesGoldWhenFullyAnchored(t *testing.T) {
	m, suite := testModelAndSuite(t)
	// Pick a case with no terms/decoys and force full anchoring via a
	// clarification-like context: simplest is to feed the plan produced
	// from the gold fragments themselves.
	c := sportsCase(t, suite, "sports_holdings-s-count")
	ctx := &llm.Context{Question: c.Question, Instructions: []llm.RetrievedInstruction{{
		Text: "Clarification: " + c.Question + " means exactly that.",
	}}}
	plan, err := m.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := m.GenerateSQL(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if sql == "" {
		t.Fatal("no SQL generated")
	}
	// With the clarification suppressing misunderstandings, the output
	// executes and matches gold on the case's database.
	exec, err := suite.Executor(c.DB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Query(sql); err != nil {
		// A syntax slip is still possible; repair must fix it.
		repaired, rerr := m.RepairSQL(&llm.Context{Question: c.Question, Attempt: 1}, plan, sql, err.Error())
		if rerr != nil {
			t.Fatal(rerr)
		}
		if _, err2 := exec.Query(repaired); err2 != nil {
			t.Fatalf("repair failed twice: %v", err2)
		}
	}
}

func TestGenerateSQLTermGate(t *testing.T) {
	m, suite := testModelAndSuite(t)
	c := sportsCase(t, suite, "sports_holdings-s-our")

	// Without the defining instruction or evidence: the naive (wrong) SQL.
	sql, err := m.GenerateSQL(&llm.Context{Question: c.Question}, llm.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "OWNERSHIP_FLAG_COLUMN") {
		t.Errorf("term gate failed: flag filter appeared without a definition\n%s", sql)
	}

	// With the defining instruction: the ownership filter appears.
	ctx := &llm.Context{Question: c.Question, Instructions: []llm.RetrievedInstruction{{
		Text: "'our' means OWNERSHIP_FLAG_COLUMN = 'COC'", Terms: []string{"our"},
	}}}
	plan, err := m.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sql, err = m.GenerateSQL(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "OWNERSHIP_FLAG_COLUMN") {
		t.Errorf("defining instruction did not unlock the term\n%s", sql)
	}
}

func TestGenerateSQLDeterministic(t *testing.T) {
	m, suite := testModelAndSuite(t)
	c := sportsCase(t, suite, "sports_holdings-m-pivot")
	ctx := &llm.Context{Question: c.Question}
	plan, _ := m.Plan(ctx)
	a, err := m.GenerateSQL(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.GenerateSQL(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("generation is not deterministic for identical inputs")
	}
}

func TestGenerateSQLUnknownQuestionFallback(t *testing.T) {
	m, _ := testModelAndSuite(t)
	sql, err := m.GenerateSQL(&llm.Context{
		Question:  "completely novel interactive question",
		SchemaDDL: "CREATE TABLE WIDGETS (\n  ID INTEGER\n);\n",
	}, llm.Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "WIDGETS") {
		t.Errorf("fallback SQL should target the first schema table, got %s", sql)
	}
}

func TestBreakSyntaxAlwaysBreaks(t *testing.T) {
	samples := []string{
		"SELECT A FROM T WHERE (B = 1)",
		"SELECT 1",
		"SELECT SUM(X) FROM T GROUP BY Y",
	}
	for _, sql := range samples {
		broken := breakSyntax(sql)
		if broken == sql {
			t.Errorf("breakSyntax did not change %q", sql)
		}
	}
}

func TestSplitTopLevel(t *testing.T) {
	got := splitTopLevel("A, SUM(CASE WHEN x THEN 1 ELSE 0 END), 'a,b', F(1,2)", ',')
	want := []string{"A", "SUM(CASE WHEN x THEN 1 ELSE 0 END)", "'a,b'", "F(1,2)"}
	if len(got) != len(want) {
		t.Fatalf("splitTopLevel = %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("part %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMutateConditionChangesSemantics(t *testing.T) {
	m, _ := testModelAndSuite(t)
	frag := m.mutateFragment(decompose.Fragment{Clause: decompose.ClauseWhere, SQL: "((A = 1) AND (B = 2))"}, "salt")
	if frag.SQL == "((A = 1) AND (B = 2))" {
		t.Errorf("where mutation was a no-op: %s", frag.SQL)
	}
	grp := m.mutateFragment(decompose.Fragment{Clause: decompose.ClauseGroupBy, SQL: "ENTITY"}, "salt")
	if grp.SQL == "ENTITY" {
		t.Errorf("single-expression group-by mutation was a no-op")
	}
}

func TestDecoyGuarded(t *testing.T) {
	d := task.DecoyRequirement{CorrectColumn: "REVENUE", DecoyColumn: "REVENUE_LEGACY"}
	ctx := &llm.Context{Instructions: []llm.RetrievedInstruction{{
		Text: "use the REVENUE column, not REVENUE_LEGACY",
	}}}
	if !decoyGuarded(ctx, d) {
		t.Error("guard instruction not recognized")
	}
	if decoyGuarded(&llm.Context{}, d) {
		t.Error("empty context should not guard")
	}
}

func TestFeedbackOperatorsEndToEnd(t *testing.T) {
	m, _ := testModelAndSuite(t)
	req := &llm.FeedbackRequest{
		Question:     "total revenue for our sports organisations in 2023",
		Reformulated: "Show me total revenue for our sports organisations in 2023",
		GeneratedSQL: "SELECT SUM(REVENUE) AS TOTAL FROM SPORTS_FINANCIALS WHERE (YEAR(FIN_MONTH) = 2023)",
		UserFeedback: "This response queries all sports organisations but I only care about our organisations.",
	}
	targets, err := m.GenerateTargets(req)
	if err != nil || len(targets) == 0 {
		t.Fatalf("targets = %v, err = %v", targets, err)
	}
	expanded, err := m.ExpandFeedback(req, targets)
	if err != nil || expanded == "" {
		t.Fatalf("expanded = %q, err = %v", expanded, err)
	}
	plan, err := m.PlanEdits(req, expanded, targets)
	if err != nil || len(plan) == 0 {
		t.Fatalf("plan = %v, err = %v", plan, err)
	}
	drafts, err := m.GenerateEdits(req, plan, targets)
	if err != nil || len(drafts) == 0 {
		t.Fatalf("drafts = %v, err = %v", drafts, err)
	}
	// A new-instruction draft must carry the term and reference the question.
	foundTermDraft := false
	for _, d := range drafts {
		if d.Op == "insert" && d.Kind == "instruction" {
			for _, term := range d.Terms {
				if strings.EqualFold(term, "our") {
					foundTermDraft = true
				}
			}
			if !strings.Contains(d.Text, req.Question) {
				t.Errorf("feedback-derived instruction does not reference the question: %q", d.Text)
			}
		}
	}
	if !foundTermDraft {
		t.Error("no instruction draft carries the 'our' term")
	}
}
