package simllm

import (
	"hash/fnv"
	"strconv"
	"strings"

	"genedit/internal/embed"
	"genedit/internal/llm"
	"genedit/internal/schema"
	"genedit/internal/task"
)

// Model is the deterministic simulated language model. It implements
// llm.Model and llm.FeedbackModel.
type Model struct {
	profile Profile
	reg     *task.Registry
	seed    uint64
}

// New returns a model with the given capability profile, task registry (its
// "latent knowledge" of what questions mean) and seed.
func New(profile Profile, reg *task.Registry, seed uint64) *Model {
	return &Model{profile: profile, reg: reg, seed: seed}
}

// Profile returns the model's capability profile.
func (m *Model) Profile() Profile { return m.profile }

// draw produces a deterministic pseudo-uniform value in [0, 1) keyed by the
// model seed, system name and the given aspect parts. The raw FNV-1a sum is
// passed through a splitmix64-style finalizer: FNV's trailing bytes only
// perturb the low bits, and without the avalanche step draws differing only
// in their final salt (attempt numbers, column names) would be correlated.
func (m *Model) draw(parts ...string) float64 {
	h := fnv.New64a()
	var seedBytes [8]byte
	s := m.seed
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(s >> (8 * i))
	}
	h.Write(seedBytes[:])
	h.Write([]byte(m.profile.Name))
	for _, p := range parts {
		h.Write([]byte{0x1f})
		h.Write([]byte(p))
	}
	sum := h.Sum64()
	sum ^= sum >> 30
	sum *= 0xbf58476d1ce4e5b9
	sum ^= sum >> 27
	sum *= 0x94d049bb133111eb
	sum ^= sum >> 31
	return float64(sum>>11) / float64(uint64(1)<<53)
}

// lookup resolves a question to its registered case, tolerating the
// canonical reformulation prefix.
func (m *Model) lookup(question string) *task.Case {
	if m.reg == nil {
		return nil
	}
	return m.reg.Lookup(question)
}

// Reformulate implements inference operator 1: rewrite the query into the
// canonical "Show me ..." form of §2.1.
func (m *Model) Reformulate(question string) (string, error) {
	q := strings.TrimSpace(question)
	lower := strings.ToLower(q)
	if strings.HasPrefix(lower, "show me") {
		return "Show me" + q[len("show me"):], nil
	}
	// Strip common imperative lead-ins before prefixing.
	for _, lead := range []string{"identify ", "list ", "find ", "what are ", "what is ", "give me ", "tell me "} {
		if strings.HasPrefix(lower, lead) {
			q = q[len(lead):]
			break
		}
	}
	return "Show me " + q, nil
}

// ClassifyIntents implements inference operator 2. When the case is known,
// the true intent is returned (with a small deterministic misclassification
// rate); otherwise intents are ranked by embedding similarity.
func (m *Model) ClassifyIntents(question string, options []llm.IntentOption) ([]string, error) {
	if len(options) == 0 {
		return nil, nil
	}
	bestByEmbed := ""
	bestScore := -1.0
	qv := embed.Text(question)
	for _, opt := range options {
		score := embed.Cosine(qv, embed.Text(opt.Name+" "+opt.Description))
		if score > bestScore {
			bestScore = score
			bestByEmbed = opt.ID
		}
	}
	c := m.lookup(question)
	if c == nil {
		return []string{bestByEmbed}, nil
	}
	var trueID string
	for _, opt := range options {
		if strings.EqualFold(opt.Name, c.Intent) {
			trueID = opt.ID
			break
		}
	}
	if trueID == "" || m.draw(c.ID, "intent-misclassify") < 0.03 {
		return []string{bestByEmbed}, nil
	}
	if bestByEmbed != trueID {
		return []string{trueID, bestByEmbed}, nil
	}
	return []string{trueID}, nil
}

// LinkSchema implements inference operator 5: identify relevant schema
// elements, with a per-column miss rate modelling the re-ranking filter the
// paper adds to keep the generation context small.
func (m *Model) LinkSchema(question string, full *schema.Schema, ctx *llm.Context) ([]schema.Element, error) {
	c := m.lookup(question)
	if c == nil {
		return m.linkByEmbedding(question, full), nil
	}
	needed := c.Needed
	if len(needed) == 0 {
		needed = neededElements(c.GoldSQL, full)
	}
	var linked []schema.Element
	for _, el := range needed {
		if m.draw(c.ID, "linkmiss", el.String()) < m.profile.LinkMissRate {
			continue // the re-ranker filtered out a needed column
		}
		linked = append(linked, el)
	}
	// Decoy columns are plausible: the identifier stage often includes them;
	// the correct column's presence is what protects generation.
	for _, d := range c.Decoys {
		el := schema.Element{Table: d.Table, Column: d.DecoyColumn}
		if full.HasElement(el) && m.draw(c.ID, "linkdecoy", el.String()) < 0.5 {
			linked = append(linked, el)
		}
	}
	return linked, nil
}

// linkByEmbedding selects columns whose names overlap the question, the
// fallback used for unregistered (interactive) questions.
func (m *Model) linkByEmbedding(question string, full *schema.Schema) []schema.Element {
	qv := embed.Text(question)
	type scored struct {
		el    schema.Element
		score float64
	}
	var all []scored
	for _, t := range full.Tables {
		for _, c := range t.Columns {
			text := t.Name + " " + c.Name + " " + c.Description
			all = append(all, scored{
				el:    schema.Element{Table: t.Name, Column: c.Name},
				score: embed.Cosine(qv, embed.Text(text)),
			})
		}
	}
	var out []schema.Element
	for _, s := range all {
		if s.score > 0.12 {
			out = append(out, s.el)
		}
	}
	if len(out) == 0 && len(all) > 0 {
		best := all[0]
		for _, s := range all[1:] {
			if s.score > best.score {
				best = s
			}
		}
		out = append(out, best.el)
	}
	return out
}

// neededElements scans gold SQL for the schema columns it references.
func neededElements(sql string, s *schema.Schema) []schema.Element {
	upper := " " + strings.ToUpper(nonWordToSpace(sql)) + " "
	var out []schema.Element
	for _, t := range s.Tables {
		if !strings.Contains(upper, " "+strings.ToUpper(t.Name)+" ") {
			continue
		}
		for _, c := range t.Columns {
			if strings.Contains(upper, " "+strings.ToUpper(c.Name)+" ") {
				out = append(out, schema.Element{Table: t.Name, Column: c.Name})
			}
		}
	}
	return out
}

func nonWordToSpace(s string) string {
	out := []byte(s)
	for i := 0; i < len(out); i++ {
		c := out[i]
		isWord := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !isWord {
			out[i] = ' '
		}
	}
	return string(out)
}

// hasLinkedElement reports whether ctx's linked elements include the column.
func hasLinkedElement(ctx *llm.Context, table, column string) bool {
	for _, el := range ctx.LinkedElements {
		if strings.EqualFold(el.Table, table) && strings.EqualFold(el.Column, column) {
			return true
		}
	}
	return false
}

// clarifiedBy reports whether the context contains a case-specific
// clarification: an instruction whose text restates (most of) the question,
// the kind the feedback solver inserts when an SME explains what they
// actually meant. A clarification suppresses misunderstanding failures for
// that question with high (iteration-dependent) probability — feedback is
// occasionally too vague, and iterating sharpens it.
func (m *Model) clarifiedBy(c *task.Case, ctx *llm.Context) bool {
	qTokens := embed.Tokenize(c.Question)
	if len(qTokens) == 0 {
		return false
	}
	clarifiers := 0
	clarifierBytes := 0
	for _, ins := range ctx.Instructions {
		text := strings.ToLower(ins.Text)
		matched := 0
		for _, t := range qTokens {
			if strings.Contains(text, t) {
				matched++
			}
		}
		if float64(matched) >= 0.8*float64(len(qTokens)) {
			clarifiers++
			clarifierBytes += len(ins.Text)
		}
	}
	if clarifiers == 0 {
		return false
	}
	// Effectiveness re-rolls as iterations sharpen the clarification (each
	// feedback round extends or adds clarifying text).
	return m.draw(c.ID, "clarify", strconv.Itoa(clarifiers), strconv.Itoa(clarifierBytes)) < 0.85
}

// decoyGuarded reports whether an in-context instruction names both the
// correct and the decoy column — the guard a feedback edit like "use
// REVENUE, not REVENUE_LEGACY" provides.
func decoyGuarded(ctx *llm.Context, d task.DecoyRequirement) bool {
	for _, ins := range ctx.Instructions {
		upper := strings.ToUpper(ins.Text + " " + ins.SQLHint)
		if strings.Contains(upper, strings.ToUpper(d.CorrectColumn)) &&
			strings.Contains(upper, strings.ToUpper(d.DecoyColumn)) {
			return true
		}
	}
	return false
}

// termSatisfied reports whether the generation context supplies a usable
// definition of the domain term: a defining instruction in context, or a
// successful read of the raw evidence string.
func (m *Model) termSatisfied(c *task.Case, ctx *llm.Context, term string) bool {
	for _, ins := range ctx.Instructions {
		for _, t := range ins.Terms {
			if strings.EqualFold(t, term) {
				return true
			}
		}
	}
	if ctx.Evidence != "" && strings.Contains(strings.ToUpper(ctx.Evidence), strings.ToUpper(term)) {
		return m.draw(c.ID, "evidence", term) < m.profile.EvidenceUse
	}
	return false
}
