package simllm

import (
	"fmt"
	"strconv"
	"strings"

	"genedit/internal/decompose"
	"genedit/internal/embed"
	"genedit/internal/llm"
	"genedit/internal/sqlparse"
	"genedit/internal/task"
)

// Plan implements inference operator 6: a CoT plan whose steps describe the
// decomposed fragments of the output query, each augmented with pseudo-SQL
// when a sufficiently similar retrieved example anchors it (§3.1.2).
func (m *Model) Plan(ctx *llm.Context) (llm.Plan, error) {
	c := m.lookup(ctx.Question)
	if c == nil {
		return m.fallbackPlan(ctx), nil
	}
	frags, err := decompose.DecomposeSQL(c.GoldSQL)
	if err != nil {
		return llm.Plan{}, fmt.Errorf("planning: %w", err)
	}
	wholeAnchor, _ := m.wholeQueryAnchor(ctx, c)
	var plan llm.Plan
	for _, frag := range frags {
		step := llm.PlanStep{
			Description: frag.NL,
			Unit:        frag.Unit,
			Clause:      string(frag.Clause),
			Distinct:    frag.Distinct,
		}
		if anchored, anchorSQL := m.fragmentAnchor(ctx, frag); wholeAnchor || anchored {
			step.Pseudo = frag.Pseudo()
			step.SQL = frag.SQL
			if anchorSQL != frag.SQL {
				step.AnchorSQL = anchorSQL
			}
		}
		plan.Steps = append(plan.Steps, step)
	}
	return plan, nil
}

// fragmentAnchor finds the most similar retrieved decomposed example of the
// same clause kind; the step is anchored when similarity clears the
// threshold. The anchoring example's SQL is returned so generation can model
// insufficient adaptation.
func (m *Model) fragmentAnchor(ctx *llm.Context, frag decompose.Fragment) (bool, string) {
	bestSim := 0.0
	bestSQL := ""
	for _, ex := range ctx.Examples {
		if ex.FullSQL != "" {
			continue
		}
		if ex.Clause != string(frag.Clause) {
			continue
		}
		if sim := embed.Similarity(ex.SQL, frag.SQL); sim > bestSim {
			bestSim = sim
			bestSQL = ex.SQL
		}
	}
	if bestSim >= m.profile.AnchorThreshold {
		return true, bestSQL
	}
	return false, ""
}

// wholeQueryAnchor reports whether a traditional full-query example (used
// when decomposition is ablated) matches the whole gold query closely
// enough to anchor every step, and returns that example's SQL.
func (m *Model) wholeQueryAnchor(ctx *llm.Context, c *task.Case) (bool, string) {
	for _, ex := range ctx.Examples {
		if ex.FullSQL == "" {
			continue
		}
		if embed.Similarity(ex.FullSQL, c.GoldSQL) >= m.profile.WholeQueryAnchorThreshold {
			return true, ex.FullSQL
		}
	}
	return false, ""
}

// fallbackPlan builds a generic plan from retrieved examples for questions
// outside the registry (interactive use).
func (m *Model) fallbackPlan(ctx *llm.Context) llm.Plan {
	var plan llm.Plan
	plan.Steps = append(plan.Steps, llm.PlanStep{
		Description: "Identify the relevant table and columns for: " + ctx.Question,
	})
	for i, ex := range ctx.Examples {
		if i >= 3 {
			break
		}
		plan.Steps = append(plan.Steps, llm.PlanStep{Description: ex.NL, Pseudo: ex.Pseudo})
	}
	plan.Steps = append(plan.Steps, llm.PlanStep{Description: "Assemble the final SELECT statement."})
	return plan
}

// GenerateSQL implements inference operator 7: compose the candidate query
// from the plan, gated by the knowledge actually present in the context.
func (m *Model) GenerateSQL(ctx *llm.Context, plan llm.Plan) (string, error) {
	c := m.lookup(ctx.Question)
	if c == nil {
		return m.fallbackSQL(ctx), nil
	}
	attempt := strconv.Itoa(ctx.Attempt)

	// A case-specific clarification (inserted through the feedback solver)
	// suppresses the misunderstanding failure modes for this question.
	clarified := m.clarifiedBy(c, ctx)

	// Domain terms: without a usable definition the model writes the naive
	// interpretation.
	for _, tr := range c.Terms {
		if !m.termSatisfied(c, ctx, tr.Term) && !clarified && tr.WrongSQL != "" {
			return m.maybeSlip(tr.WrongSQL, c, attempt), nil
		}
	}

	// Schema ambiguity: decoy columns.
	for _, d := range c.Decoys {
		if d.WrongSQL == "" {
			continue
		}
		if clarified || decoyGuarded(ctx, d) {
			continue
		}
		var correct bool
		if ctx.LinkedElements != nil {
			if hasLinkedElement(ctx, d.Table, d.CorrectColumn) {
				correct = m.draw(c.ID, "decoy-linked", d.DecoyColumn) >= m.profile.LinkedDecoySlip
			} else {
				// Linking filtered out the correct column; the decoy wins
				// most of the time.
				correct = m.draw(c.ID, "decoy-missed", d.DecoyColumn) >= m.profile.MissedColumnError
			}
		} else {
			correct = m.draw(c.ID, "decoy-free", d.DecoyColumn) < m.profile.DecoyResistance
		}
		if !correct {
			return m.maybeSlip(d.WrongSQL, c, attempt), nil
		}
	}

	// A whole-query anchor (traditional full-SQL few-shot) can be copied
	// insufficiently adapted: the example's parameters survive into the
	// output.
	wholeAnchored, wholeAnchorSQL := m.wholeQueryAnchor(ctx, c)
	if wholeAnchored && wholeAnchorSQL != c.GoldSQL &&
		m.draw(c.ID, "whole-copyslip") < m.profile.AnchorCopySlip {
		return m.maybeSlip(wholeAnchorSQL, c, attempt), nil
	}

	frags, err := decompose.DecomposeSQL(c.GoldSQL)
	if err != nil {
		return "", fmt.Errorf("generation: %w", err)
	}

	// Count corruption events; each corrupts one fragment deterministically.
	corruptions := 0

	// Column-resolution corruption: schema-linking misses on needed columns,
	// or context overload when the full schema is in the prompt. A whole-
	// query anchor shields both paths — the in-context example spells out
	// every needed column.
	switch {
	case wholeAnchored || clarified:
		// no column-resolution corruption
	case ctx.LinkedElements != nil:
		for _, el := range c.Needed {
			if m.draw(c.ID, "linkmiss", el.String()) >= m.profile.LinkMissRate {
				continue // column was linked
			}
			if m.draw(c.ID, "misscorrupt", el.String()) < m.profile.MissedColumnError {
				corruptions++
			}
		}
	default:
		// Context overload: the full schema is in the prompt; wrong-column
		// slips scale with query length.
		overload := m.profile.OverloadFactor * float64(len(frags))
		if overload > 0.6 {
			overload = 0.6
		}
		if m.draw(c.ID, "overload") < overload {
			corruptions++
		}
	}

	// Step derivation: anchored steps compose exactly; unanchored steps must
	// be re-derived from their descriptions. Success is drawn once per case
	// with a probability that decays in the number of unanchored steps —
	// the reasoning-budget model of §3.1.2 (pseudo-SQL "minimizes the need
	// for LLM reasoning").
	anchored := anchorSet(plan)
	hasPlan := len(plan.Steps) > 0
	slipRate := m.profile.AnchorCopySlip
	if len(ctx.Examples) == 0 {
		// The plan still carries pseudo-SQL, but without in-prompt examples
		// the anchors lose their grounding context and adaptation degrades —
		// catastrophically so for fragile multi-CTE queries.
		boost := m.profile.NoExampleSlipBoost
		if c.Fragile && m.profile.FragileNoExampleSlipBoost > boost {
			boost = m.profile.FragileNoExampleSlipBoost
		}
		if boost > 0 {
			slipRate *= boost
		}
	}
	var unanchoredIdx []int
	for i, frag := range frags {
		if !anchored[frag.Key()] {
			unanchoredIdx = append(unanchoredIdx, i)
			continue
		}
		if clarified {
			continue // the clarification pins this step's parameters
		}
		// Anchored steps whose example differs from the target fragment can
		// be copied insufficiently adapted — the example's parameters (its
		// quarter, region, threshold) leak into the output.
		if a := anchorSQLFor(plan, frag); a != "" &&
			m.draw(c.ID, "copyslip", frag.Key()) < slipRate {
			frags[i].SQL = a
		}
	}
	if len(unanchoredIdx) > 0 && !clarified {
		p := m.deriveProb(len(unanchoredIdx), hasPlan)
		if m.draw(c.ID, "derive") >= p {
			// Derivation failed: corrupt result-affecting unanchored
			// fragments (one, plus one more per five on long queries).
			mutable := mutableFragments(frags, unanchoredIdx)
			if len(mutable) == 0 {
				corruptions++
			} else {
				nMut := 1 + len(unanchoredIdx)/5
				for k := 0; k < nMut && k < len(mutable); k++ {
					pick := int(m.draw(c.ID, "derive-pick", attempt, strconv.Itoa(k)) * float64(len(mutable)))
					if pick >= len(mutable) {
						pick = len(mutable) - 1
					}
					i := mutable[pick]
					frags[i] = m.mutateFragment(frags[i], c.ID+attempt+strconv.Itoa(k))
				}
			}
		}
	}

	// Residual misunderstanding, unless the feedback clarified the intent.
	if !clarified && m.draw(c.ID, "residual") < m.profile.Residual[c.Difficulty] {
		corruptions++
	}

	sql, err := decompose.ComposeSQL(frags)
	if err != nil {
		// Mutations never change fragment keys, so composition failure is a
		// programming error worth surfacing.
		return "", fmt.Errorf("generation: %w", err)
	}
	for i := 0; i < corruptions; i++ {
		sql = m.mutateWhole(sql, c.ID, attempt, i)
	}
	return m.maybeSlip(sql, c, attempt), nil
}

// RepairSQL implements operators 8-9: regenerate using execution feedback.
// Syntax slips are fixed with profile probability; semantic failures re-roll
// the generation draws under the (incremented) attempt number.
func (m *Model) RepairSQL(ctx *llm.Context, plan llm.Plan, priorSQL, execError string) (string, error) {
	c := m.lookup(ctx.Question)
	if c == nil {
		return priorSQL, nil
	}
	if strings.Contains(execError, "syntax error") {
		if m.draw(c.ID, "repair", strconv.Itoa(ctx.Attempt)) >= m.profile.RepairSkill {
			return priorSQL, nil // repair failed; pipeline may retry again
		}
	}
	return m.GenerateSQL(ctx, plan)
}

// EditClauses implements the clause-level correction operator
// (llm.ClauseEditor): diff the failing query's fragments against the latent
// gold structure and propose targeted per-clause repairs. The operator is
// knowledge-gated exactly like generation — a misunderstanding rooted in a
// missing domain-term definition cannot be repaired by staring at the
// execution error, so such cases yield no edits (the pipeline falls back to
// full regeneration, which fails the same way until knowledge lands). Each
// wrong clause is repaired independently with probability EditSkill; the
// draws are keyed per (case, attempt, clause) so retries genuinely re-roll.
func (m *Model) EditClauses(ctx *llm.Context, plan llm.Plan, fragments []llm.ClauseFragment, execError string) ([]llm.ClauseEdit, error) {
	c := m.lookup(ctx.Question)
	if c == nil {
		return nil, nil
	}
	if !m.clarifiedBy(c, ctx) {
		for _, tr := range c.Terms {
			if !m.termSatisfied(c, ctx, tr.Term) {
				return nil, nil
			}
		}
	}
	goldFrags, err := decompose.DecomposeSQL(c.GoldSQL)
	if err != nil {
		return nil, nil
	}
	attempt := strconv.Itoa(ctx.Attempt)
	cur := make(map[string]llm.ClauseFragment, len(fragments))
	for _, f := range fragments {
		cur[f.Unit+"/"+f.Clause] = f
	}
	goldKeys := make(map[string]bool, len(goldFrags))
	var edits []llm.ClauseEdit
	for _, gf := range goldFrags {
		key := gf.Key()
		goldKeys[key] = true
		if cf, ok := cur[key]; ok && cf.SQL == gf.SQL && cf.Distinct == gf.Distinct {
			continue
		}
		if m.draw(c.ID, "clause-edit", attempt, key) >= m.profile.EditSkill {
			continue // this clause's fix missed; a later attempt re-rolls
		}
		edits = append(edits, llm.ClauseEdit{
			Unit: gf.Unit, Clause: string(gf.Clause), SQL: gf.SQL, Distinct: gf.Distinct,
		})
	}
	for _, f := range fragments { // slice order keeps the diff deterministic
		key := f.Unit + "/" + f.Clause
		if goldKeys[key] {
			continue
		}
		if m.draw(c.ID, "clause-edit-del", attempt, key) >= m.profile.EditSkill {
			continue
		}
		edits = append(edits, llm.ClauseEdit{Unit: f.Unit, Clause: f.Clause, Delete: true})
	}
	return edits, nil
}

// deriveProb is the whole-query derivation success probability given the
// number of unanchored steps.
func (m *Model) deriveProb(unanchored int, hasPlan bool) float64 {
	over := unanchored - m.profile.FreeSteps
	if over < 0 {
		over = 0
	}
	p := m.profile.DeriveBase - m.profile.DerivePenalty*float64(over)
	if !hasPlan {
		p *= m.profile.NoDescriptionFactor
	}
	if p < 0.25 {
		p = 0.25
	}
	if p > 0.995 {
		p = 0.995
	}
	return p
}

func anchorSet(plan llm.Plan) map[string]bool {
	out := make(map[string]bool, len(plan.Steps))
	for _, s := range plan.Steps {
		if s.SQL != "" {
			out[s.Unit+"/"+s.Clause] = true
		}
	}
	return out
}

// anchorSQLFor returns the differing anchor SQL recorded for a fragment's
// plan step, or "".
func anchorSQLFor(plan llm.Plan, frag decompose.Fragment) string {
	for _, s := range plan.Steps {
		if s.Unit == frag.Unit && s.Clause == string(frag.Clause) {
			return s.AnchorSQL
		}
	}
	return ""
}

// maybeSlip injects a deterministic syntax error at the profile's slip rate.
func (m *Model) maybeSlip(sql string, c *task.Case, attempt string) string {
	if m.draw(c.ID, "slip", attempt) < m.profile.SyntaxSlipRate {
		return breakSyntax(sql)
	}
	return sql
}

// breakSyntax produces a guaranteed-unparsable variant of the SQL.
func breakSyntax(sql string) string {
	if i := strings.LastIndexByte(sql, ')'); i >= 0 {
		return sql[:i] + sql[i+1:]
	}
	return sql + " WHERE"
}

// mutableFragments filters fragment indices to those whose mutation changes
// the result multiset: filters, projections, grouping and limits. Ordering
// fragments only matter under a LIMIT in the same unit (EX comparison is
// order-insensitive, like BIRD's).
func mutableFragments(frags []decompose.Fragment, idx []int) []int {
	limitUnits := make(map[string]bool)
	for _, f := range frags {
		if f.Clause == decompose.ClauseLimit {
			limitUnits[f.Unit] = true
		}
	}
	var out []int
	for _, i := range idx {
		switch frags[i].Clause {
		case decompose.ClauseWhere, decompose.ClauseHaving,
			decompose.ClauseProjection, decompose.ClauseGroupBy,
			decompose.ClauseLimit:
			out = append(out, i)
		case decompose.ClauseOrderBy:
			if limitUnits[frags[i].Unit] {
				out = append(out, i)
			}
		}
	}
	return out
}

// mutateFragment produces a plausible-but-wrong variant of one fragment, the
// failure mode of unanchored derivation.
func (m *Model) mutateFragment(frag decompose.Fragment, salt string) decompose.Fragment {
	pick := int(m.draw("mutate", frag.Key(), salt) * 4)
	switch frag.Clause {
	case decompose.ClauseWhere, decompose.ClauseHaving:
		frag.SQL = mutateCondition(frag.SQL, pick)
	case decompose.ClauseProjection:
		items := splitTopLevel(frag.SQL, ',')
		if len(items) > 1 {
			frag.SQL = strings.Join(items[:len(items)-1], ",")
		} else {
			frag.SQL = mutateCondition(frag.SQL, pick)
		}
	case decompose.ClauseOrderBy:
		// Only reached when the unit has a LIMIT: flipping the direction
		// changes which rows survive.
		if strings.HasSuffix(frag.SQL, " DESC") {
			frag.SQL = strings.TrimSuffix(frag.SQL, " DESC")
		} else {
			frag.SQL += " DESC"
		}
	case decompose.ClauseGroupBy:
		items := splitTopLevel(frag.SQL, ',')
		if len(items) > 1 {
			frag.SQL = strings.Join(items[:len(items)-1], ",")
		} else {
			// Grouping by a constant collapses every row into one group.
			frag.SQL = "1"
		}
	case decompose.ClauseLimit:
		if n, err := strconv.Atoi(strings.TrimSpace(frag.SQL)); err == nil {
			frag.SQL = strconv.Itoa(n + 1 + pick)
		}
	}
	return frag
}

// mutateCondition alters a boolean expression: drop a conjunct, negate a
// comparison, or shift a literal.
func mutateCondition(cond string, pick int) string {
	expr, err := sqlparse.ParseExpr(cond)
	if err != nil {
		return cond
	}
	switch x := expr.(type) {
	case *sqlparse.Binary:
		if x.Op == "AND" && pick%2 == 0 {
			return sqlparse.PrintExpr(x.L) // drop the last conjunct
		}
		if isComparison(x.Op) {
			x.Op = flipComparison(x.Op)
			return sqlparse.PrintExpr(x)
		}
		if x.Op == "AND" || x.Op == "OR" {
			// Mutate the right arm's comparison instead.
			if rb, ok := x.R.(*sqlparse.Binary); ok && isComparison(rb.Op) {
				rb.Op = flipComparison(rb.Op)
				return sqlparse.PrintExpr(x)
			}
			return sqlparse.PrintExpr(x.L)
		}
	}
	return "NOT (" + cond + ")"
}

func isComparison(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func flipComparison(op string) string {
	switch op {
	case "=":
		return "<>"
	case "<>":
		return "="
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	}
	return op
}

// mutateWhole applies a statement-level mutation guaranteed to change the
// result multiset: inverted filter, truncated projection, shifted limit, or
// (as a last resort) an impossible filter.
func (m *Model) mutateWhole(sql, caseID, attempt string, round int) string {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return sql
	}
	pick := int(m.draw("whole-mutate", caseID, attempt, strconv.Itoa(round)) * 2)
	// Never re-negate an already negated filter: stacked mutations must not
	// cancel back to the original query.
	_, alreadyNegated := stmt.Core.Where.(*sqlparse.Unary)
	canNegate := stmt.Core.Where != nil && !alreadyNegated
	switch {
	case canNegate && pick == 0:
		stmt.Core.Where = &sqlparse.Unary{Op: "NOT", X: stmt.Core.Where}
	case len(stmt.Core.Items) > 1:
		stmt.Core.Items = stmt.Core.Items[:len(stmt.Core.Items)-1]
	case canNegate:
		stmt.Core.Where = &sqlparse.Unary{Op: "NOT", X: stmt.Core.Where}
	case len(stmt.OrderBy) > 0 && stmt.Limit != nil:
		stmt.OrderBy[0].Desc = !stmt.OrderBy[0].Desc
	case stmt.Limit != nil:
		stmt.Limit = &sqlparse.NumberLit{Text: "1"}
	default:
		stmt.Core.Where = &sqlparse.Binary{
			Op: "=",
			L:  &sqlparse.NumberLit{Text: "1"},
			R:  &sqlparse.NumberLit{Text: "0"},
		}
	}
	return sqlparse.Print(stmt)
}

// fallbackSQL answers unregistered questions with a best-effort single-table
// query derived from the schema DDL.
func (m *Model) fallbackSQL(ctx *llm.Context) string {
	table := firstTableInDDL(ctx.SchemaDDL)
	if table == "" {
		return "SELECT 1"
	}
	return "SELECT * FROM " + table + " LIMIT 5"
}

func firstTableInDDL(ddl string) string {
	const marker = "CREATE TABLE "
	i := strings.Index(ddl, marker)
	if i < 0 {
		return ""
	}
	rest := ddl[i+len(marker):]
	if j := strings.IndexAny(rest, " (\n"); j > 0 {
		return rest[:j]
	}
	return ""
}

// splitTopLevel splits s on sep at parenthesis depth zero.
func splitTopLevel(s string, sep byte) []string {
	var parts []string
	depth := 0
	start := 0
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\'' {
				inStr = false
			}
		case c == '\'':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == sep && depth == 0:
			parts = append(parts, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	parts = append(parts, strings.TrimSpace(s[start:]))
	return parts
}
