// Package simllm provides the deterministic simulated language model that
// substitutes for GPT-4o behind the llm.Model operator interfaces.
//
// The simulation is knowledge-gated rather than random: the model "knows"
// each benchmark question's latent SQL structure (the way a real LLM knows
// language), but can only realize it correctly when the supplied context
// satisfies the case's requirement tags — a jargon term needs a defining
// instruction in context (or a lucky evidence read), an ambiguous column
// needs schema-linking context, and an unanchored plan step must be
// re-derived with a success probability that decays with query complexity.
// Every stochastic draw is a seeded hash of (system, case, aspect, attempt),
// so runs are exactly reproducible and retries genuinely re-roll.
package simllm

import "genedit/internal/task"

// Profile is a model/system capability profile. One profile exists per
// compared system (GenEdit and each Table 1 baseline); the numbers were
// calibrated so the reproduced tables match the paper's shape (see
// EXPERIMENTS.md).
type Profile struct {
	// Name identifies the system; it salts every deterministic draw.
	Name string

	// DeriveBase is the per-step success probability when re-deriving an
	// unanchored plan step from its natural-language description.
	DeriveBase float64
	// DerivePenalty is subtracted per step beyond FreeSteps, modelling the
	// reasoning budget: long queries decay without pseudo-SQL anchors.
	DerivePenalty float64
	// FreeSteps is the number of steps the model handles reliably without
	// anchors.
	FreeSteps int
	// NoDescriptionFactor scales derivation success further when the step
	// has no natural-language description either (no plan at all).
	NoDescriptionFactor float64

	// DecoyResistance is the probability of resolving a decoy column
	// correctly without schema-linking context.
	DecoyResistance float64
	// LinkedDecoySlip is the residual decoy error with linking context.
	LinkedDecoySlip float64
	// LinkMissRate is the schema-linking per-needed-column omission rate.
	LinkMissRate float64
	// MissedColumnError is the probability that a column omitted by schema
	// linking actually corrupts the generated query.
	MissedColumnError float64
	// OverloadFactor is the per-step probability of a wrong-column slip
	// when the full, unlinked schema is in context (context overload).
	OverloadFactor float64

	// EvidenceUse is the probability of correctly exploiting the raw
	// benchmark evidence string for a domain-term definition.
	EvidenceUse float64

	// SyntaxSlipRate is the probability of emitting a syntax error.
	SyntaxSlipRate float64
	// RepairSkill is the probability that a self-correction attempt fixes
	// a syntax slip.
	RepairSkill float64
	// EditSkill is the per-clause probability that the clause-level
	// correction operator (llm.ClauseEditor) repairs one wrong clause of a
	// failing query. Targeted edits are more reliable than whole-query
	// regeneration (Chen et al.): each wrong clause is fixed independently
	// instead of re-rolling every failure mode at once.
	EditSkill float64

	// Residual is the irreducible per-case misunderstanding rate by
	// difficulty — ambiguous questions, subtle semantics.
	Residual map[task.Difficulty]float64

	// AnchorThreshold is the minimum cosine similarity between a retrieved
	// example and a plan fragment for the step to receive pseudo-SQL.
	AnchorThreshold float64
	// WholeQueryAnchorThreshold is the full-SQL similarity needed for
	// traditional (undecomposed) examples to anchor a whole query.
	WholeQueryAnchorThreshold float64
	// AnchorCopySlip is the per-step probability of copying an anchoring
	// example insufficiently adapted (keeping its parameters — wrong
	// quarter, wrong region) when the anchor differs from the target
	// fragment. This is the cost decomposition pays for its reuse, and the
	// mechanism behind Table 2's "w/o Decomposition" improving Moderate.
	AnchorCopySlip float64
	// NoExampleSlipBoost multiplies AnchorCopySlip when the examples are
	// absent from the generation prompt (the plan's pseudo-SQL loses its
	// grounding context).
	NoExampleSlipBoost float64
	// FragileNoExampleSlipBoost replaces NoExampleSlipBoost for fragile
	// (clause-detail-sensitive) cases; long multi-CTE queries degrade much
	// faster without in-prompt examples.
	FragileNoExampleSlipBoost float64
}

// GenEditProfile is the profile used for GenEdit itself (GPT-4o-class across
// operators, GPT-4o-mini for schema linking per §3.3.3 — reflected in the
// non-zero LinkMissRate).
func GenEditProfile() Profile {
	return Profile{
		Name:                      "genedit",
		DeriveBase:                0.93,
		DerivePenalty:             0.055,
		FreeSteps:                 3,
		NoDescriptionFactor:       0.85,
		DecoyResistance:           0.40,
		LinkedDecoySlip:           0.025,
		LinkMissRate:              0.07,
		MissedColumnError:         0.70,
		OverloadFactor:            0.02,
		EvidenceUse:               0.15,
		SyntaxSlipRate:            0.05,
		RepairSkill:               0.9,
		EditSkill:                 0.85,
		Residual:                  map[task.Difficulty]float64{task.Simple: 0.16, task.Moderate: 0.64, task.Challenging: 0.02},
		AnchorThreshold:           0.35,
		WholeQueryAnchorThreshold: 0.90,
		AnchorCopySlip:            0.045,
		NoExampleSlipBoost:        1.2,
		FragileNoExampleSlipBoost: 9.0,
	}
}
