package sqlexec

import (
	"strings"

	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// Expression compilation: a one-time pass that lowers an expression tree
// into a closure-based eval program. Column references are bound to ordinal
// indexes against the relation's column layout at compile time (no per-row
// name lookup), constant subexpressions are folded once, and the resulting
// programs run against a reusable row environment (no per-row allocation).
//
// Parity with the tree-walking interpreter is exact — values, NULL
// semantics, short-circuit order and error text — because every non-trivial
// value operation goes through the same helpers the interpreter uses
// (applyUnary, applyBinary, applyScalarFunc, finishAggregate, likeMatch,
// sqldb.Compare/Cast), and nodes the compiler does not specialize
// (subqueries, EXISTS, IN-subquery) delegate to evalExpr on the same
// environment. Constant folding never surfaces an error early: a constant
// subexpression that fails evaluation becomes a thunk returning that error,
// raised only if and when the interpreter would have evaluated it.

// program is a compiled expression, evaluated against a (reusable) row
// environment. Programs are stateless closures over immutable compile-time
// data, so one compiled plan may execute on any number of goroutines.
type program func(env *rowEnv) (sqldb.Value, error)

// constProgram returns a program with a pre-computed result.
func constProgram(v sqldb.Value, err error) program {
	return func(*rowEnv) (sqldb.Value, error) { return v, err }
}

// foldConst evaluates a constant program once at compile time. Constant
// programs never touch their environment, so a nil env is safe.
func foldConst(prog program, isConst bool) (program, bool) {
	if !isConst {
		return prog, false
	}
	v, err := prog(nil)
	return constProgram(v, err), true
}

// delegate wraps a node the compiler does not specialize; the interpreter
// evaluates it against the same environment, so semantics are identical by
// construction.
func delegate(e sqlparse.Expr) program {
	return func(env *rowEnv) (sqldb.Value, error) { return evalExpr(e, env) }
}

// bindColumn resolves a column reference against a column layout, using
// exactly resolveColumn's search order (first match wins). It returns -1
// when the reference does not bind.
func bindColumn(cr *sqlparse.ColumnRef, cols []bindCol) int {
	for i, c := range cols {
		if cr.Table != "" && !strings.EqualFold(cr.Table, c.qual) {
			continue
		}
		if strings.EqualFold(cr.Name, c.name) {
			return i
		}
	}
	return -1
}

// compileExpr lowers e into a program bound to cols. The second result
// reports whether the program is a compile-time constant (already folded).
// Compilation always succeeds; it is evaluation that may error, exactly as
// under the interpreter.
func compileExpr(e sqlparse.Expr, cols []bindCol) (program, bool) {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		v, err := parseNumber(x.Text)
		return constProgram(v, err), true
	case *sqlparse.StringLit:
		return constProgram(sqldb.Str(x.Val), nil), true
	case *sqlparse.NullLit:
		return constProgram(sqldb.Null(), nil), true
	case *sqlparse.BoolLit:
		return constProgram(sqldb.Bool(x.Val), nil), true

	case *sqlparse.ColumnRef:
		ord := bindColumn(x, cols)
		if ord < 0 {
			name := x.Name
			if x.Table != "" {
				name = x.Table + "." + name
			}
			// Compiled statements always run with no enclosing query (inner
			// subqueries stay interpreted), so an unbound name here is the
			// same per-row error resolveColumn raises.
			return constProgram(sqldb.Null(), execErrf("unknown column %q", name)), false
		}
		return func(env *rowEnv) (sqldb.Value, error) {
			if ord < len(env.row) {
				return env.row[ord], nil
			}
			return sqldb.Null(), nil
		}, false

	case *sqlparse.Unary:
		xp, xc := compileExpr(x.X, cols)
		op := x.Op
		return foldConst(func(env *rowEnv) (sqldb.Value, error) {
			v, err := xp(env)
			if err != nil {
				return sqldb.Null(), err
			}
			return applyUnary(op, v)
		}, xc)

	case *sqlparse.Binary:
		lp, lc := compileExpr(x.L, cols)
		rp, rc := compileExpr(x.R, cols)
		op := x.Op
		switch op {
		case "AND":
			return foldConst(func(env *rowEnv) (sqldb.Value, error) {
				l, err := lp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				if !l.IsNull() && !truthy(l) {
					return sqldb.Bool(false), nil
				}
				r, err := rp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				if !r.IsNull() && !truthy(r) {
					return sqldb.Bool(false), nil
				}
				if l.IsNull() || r.IsNull() {
					return sqldb.Null(), nil
				}
				return sqldb.Bool(true), nil
			}, lc && rc)
		case "OR":
			return foldConst(func(env *rowEnv) (sqldb.Value, error) {
				l, err := lp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				if !l.IsNull() && truthy(l) {
					return sqldb.Bool(true), nil
				}
				r, err := rp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				if !r.IsNull() && truthy(r) {
					return sqldb.Bool(true), nil
				}
				if l.IsNull() || r.IsNull() {
					return sqldb.Null(), nil
				}
				return sqldb.Bool(false), nil
			}, lc && rc)
		}
		// Operator dispatch is hoisted to compile time: comparisons bind a
		// verdict function over sqldb.Compare, arithmetic goes straight to
		// evalArith — no per-row string switch. Semantics and error text
		// stay those of applyBinary.
		switch op {
		case "=", "<>", "<", "<=", ">", ">=":
			var verdict func(int) bool
			switch op {
			case "=":
				verdict = func(c int) bool { return c == 0 }
			case "<>":
				verdict = func(c int) bool { return c != 0 }
			case "<":
				verdict = func(c int) bool { return c < 0 }
			case "<=":
				verdict = func(c int) bool { return c <= 0 }
			case ">":
				verdict = func(c int) bool { return c > 0 }
			default:
				verdict = func(c int) bool { return c >= 0 }
			}
			return foldConst(func(env *rowEnv) (sqldb.Value, error) {
				l, err := lp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				r, err := rp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				if l.IsNull() || r.IsNull() {
					return sqldb.Null(), nil
				}
				c, ok := sqldb.Compare(l, r)
				if !ok {
					return sqldb.Null(), nil
				}
				return sqldb.Bool(verdict(c)), nil
			}, lc && rc)
		case "||":
			return foldConst(func(env *rowEnv) (sqldb.Value, error) {
				l, err := lp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				r, err := rp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				if l.IsNull() || r.IsNull() {
					return sqldb.Null(), nil
				}
				return sqldb.Str(l.String() + r.String()), nil
			}, lc && rc)
		case "+", "-", "*", "/", "%":
			return foldConst(func(env *rowEnv) (sqldb.Value, error) {
				l, err := lp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				r, err := rp(env)
				if err != nil {
					return sqldb.Null(), err
				}
				return evalArith(op, l, r)
			}, lc && rc)
		}
		return foldConst(func(env *rowEnv) (sqldb.Value, error) {
			l, err := lp(env)
			if err != nil {
				return sqldb.Null(), err
			}
			r, err := rp(env)
			if err != nil {
				return sqldb.Null(), err
			}
			return applyBinary(op, l, r)
		}, lc && rc)

	case *sqlparse.FuncCall:
		return compileFuncCall(x, cols)

	case *sqlparse.CaseExpr:
		return compileCase(x, cols)

	case *sqlparse.CastExpr:
		xp, xc := compileExpr(x.X, cols)
		typ := x.Type
		return foldConst(func(env *rowEnv) (sqldb.Value, error) {
			v, err := xp(env)
			if err != nil {
				return sqldb.Null(), err
			}
			cv, err := sqldb.Cast(v, typ)
			if err != nil {
				return sqldb.Null(), &ExecError{Msg: err.Error()}
			}
			return cv, nil
		}, xc)

	case *sqlparse.InExpr:
		if x.Select != nil {
			return delegate(x), false
		}
		xp, xc := compileExpr(x.X, cols)
		items := make([]program, len(x.List))
		allConst := xc
		for i, item := range x.List {
			var ic bool
			items[i], ic = compileExpr(item, cols)
			allConst = allConst && ic
		}
		not := x.Not
		return foldConst(func(env *rowEnv) (sqldb.Value, error) {
			xv, err := xp(env)
			if err != nil {
				return sqldb.Null(), err
			}
			if xv.IsNull() {
				return sqldb.Null(), nil
			}
			sawNull := false
			matched := false
			// Mirror the interpreter: every list item is evaluated (its
			// errors surface) before the membership verdict.
			candidates := make([]sqldb.Value, len(items))
			for i, p := range items {
				v, err := p(env)
				if err != nil {
					return sqldb.Null(), err
				}
				candidates[i] = v
			}
			for _, c := range candidates {
				if c.IsNull() {
					sawNull = true
					continue
				}
				if xv.Equal(c) {
					matched = true
					break
				}
			}
			if matched {
				return sqldb.Bool(!not), nil
			}
			if sawNull {
				return sqldb.Null(), nil
			}
			return sqldb.Bool(not), nil
		}, allConst)

	case *sqlparse.BetweenExpr:
		xp, xc := compileExpr(x.X, cols)
		lop, loc := compileExpr(x.Lo, cols)
		hip, hic := compileExpr(x.Hi, cols)
		not := x.Not
		return foldConst(func(env *rowEnv) (sqldb.Value, error) {
			xv, err := xp(env)
			if err != nil {
				return sqldb.Null(), err
			}
			lo, err := lop(env)
			if err != nil {
				return sqldb.Null(), err
			}
			hi, err := hip(env)
			if err != nil {
				return sqldb.Null(), err
			}
			if xv.IsNull() || lo.IsNull() || hi.IsNull() {
				return sqldb.Null(), nil
			}
			c1, ok1 := sqldb.Compare(xv, lo)
			c2, ok2 := sqldb.Compare(xv, hi)
			if !ok1 || !ok2 {
				return sqldb.Null(), nil
			}
			in := c1 >= 0 && c2 <= 0
			return sqldb.Bool(in != not), nil
		}, xc && loc && hic)

	case *sqlparse.LikeExpr:
		xp, xc := compileExpr(x.X, cols)
		pp, pc := compileExpr(x.Pattern, cols)
		not := x.Not
		if pc && !xc {
			// Constant pattern: analyze it once. Plain equality, prefix,
			// suffix and substring patterns skip the dynamic-programming
			// matcher (and its per-row buffers) entirely.
			if pv, perr := pp(nil); perr == nil && !pv.IsNull() {
				matcher := compileLikeMatcher(strings.ToLower(pv.String()))
				return func(env *rowEnv) (sqldb.Value, error) {
					xv, err := xp(env)
					if err != nil {
						return sqldb.Null(), err
					}
					if xv.IsNull() {
						return sqldb.Null(), nil
					}
					return sqldb.Bool(matcher(strings.ToLower(xv.String())) != not), nil
				}, false
			}
		}
		return foldConst(func(env *rowEnv) (sqldb.Value, error) {
			xv, err := xp(env)
			if err != nil {
				return sqldb.Null(), err
			}
			pv, err := pp(env)
			if err != nil {
				return sqldb.Null(), err
			}
			if xv.IsNull() || pv.IsNull() {
				return sqldb.Null(), nil
			}
			matched := likeMatch(strings.ToLower(xv.String()), strings.ToLower(pv.String()))
			return sqldb.Bool(matched != not), nil
		}, xc && pc)

	case *sqlparse.IsNullExpr:
		xp, xc := compileExpr(x.X, cols)
		not := x.Not
		return foldConst(func(env *rowEnv) (sqldb.Value, error) {
			v, err := xp(env)
			if err != nil {
				return sqldb.Null(), err
			}
			return sqldb.Bool(v.IsNull() != not), nil
		}, xc)

	case *sqlparse.ExistsExpr, *sqlparse.SubqueryExpr:
		return delegate(e), false
	}
	return delegate(e), false
}

// compileFuncCall lowers window, aggregate and scalar calls.
func compileFuncCall(fc *sqlparse.FuncCall, cols []bindCol) (program, bool) {
	if fc.Over != nil {
		// Cores whose SELECT items or ORDER BY contain window calls run
		// through the interpreter, so in compiled cores a window call can
		// only appear in an invalid position (WHERE, GROUP BY, HAVING) —
		// reproduce the interpreter's diagnostics exactly.
		return func(env *rowEnv) (sqldb.Value, error) {
			if env.windows == nil {
				return sqldb.Null(), execErrf("window function %s used outside SELECT or ORDER BY", fc.Name)
			}
			vals, ok := env.windows[fc]
			if !ok {
				return sqldb.Null(), execErrf("window function %s was not precomputed", fc.Name)
			}
			return vals[env.idx], nil
		}, false
	}
	if isAggregateName(fc.Name) {
		var argProg program
		if !fc.Star && len(fc.Args) == 1 {
			argProg, _ = compileExpr(fc.Args[0], cols)
		}
		return func(env *rowEnv) (sqldb.Value, error) {
			if env.aggs != nil {
				// Batch group finish: the accumulator already folded this
				// call over the group (including its error, if any).
				if r, ok := env.aggs[fc]; ok {
					return r.v, r.err
				}
			}
			if env.group == nil {
				return sqldb.Null(), execErrf("aggregate %s used outside an aggregation context", fc.Name)
			}
			if fc.Star {
				if fc.Name != "COUNT" {
					return sqldb.Null(), execErrf("%s(*) is not a valid aggregate", fc.Name)
				}
				return sqldb.Int(int64(len(env.group))), nil
			}
			if len(fc.Args) != 1 {
				return sqldb.Null(), execErrf("aggregate %s expects exactly 1 argument", fc.Name)
			}
			// One child environment per aggregate evaluation (per group),
			// reused across the group's rows — not one per row as the
			// interpreter allocates.
			child := &rowEnv{exec: env.exec, sc: env.sc, cols: env.cols, outer: env.outer}
			vals, err := collectAggregateArgs(env.group, fc.Distinct, func(row sqldb.Row) (sqldb.Value, error) {
				child.row = row
				return argProg(child)
			})
			if err != nil {
				return sqldb.Null(), err
			}
			return finishAggregate(fc.Name, vals)
		}, false
	}
	args := make([]program, len(fc.Args))
	allConst := true
	for i, a := range fc.Args {
		var ac bool
		args[i], ac = compileExpr(a, cols)
		allConst = allConst && ac
	}
	name := fc.Name
	return foldConst(func(env *rowEnv) (sqldb.Value, error) {
		// Small-arity calls evaluate into a stack buffer; applyScalarFunc
		// does not retain its argument slice.
		var buf [4]sqldb.Value
		var vals []sqldb.Value
		if len(args) <= len(buf) {
			vals = buf[:len(args)]
		} else {
			vals = make([]sqldb.Value, len(args))
		}
		for i, p := range args {
			v, err := p(env)
			if err != nil {
				return sqldb.Null(), err
			}
			vals[i] = v
		}
		return applyScalarFunc(name, vals)
	}, allConst)
}

// compileLikeMatcher specializes a lower-cased constant LIKE pattern. The
// returned matcher is exactly likeMatch for that pattern: wildcard-free
// patterns are equality, "p%" / "%s" / "%m%" (wildcard-free core) map to
// prefix/suffix/substring tests, everything else runs the shared DP.
func compileLikeMatcher(p string) func(string) bool {
	if !strings.ContainsAny(p, "%_") {
		return func(s string) bool { return s == p }
	}
	if len(p) >= 2 && p[0] == '%' && p[len(p)-1] == '%' {
		if mid := p[1 : len(p)-1]; !strings.ContainsAny(mid, "%_") {
			return func(s string) bool { return strings.Contains(s, mid) }
		}
	}
	if p[len(p)-1] == '%' {
		if pre := p[:len(p)-1]; !strings.ContainsAny(pre, "%_") {
			return func(s string) bool { return strings.HasPrefix(s, pre) }
		}
	}
	if p[0] == '%' {
		if suf := p[1:]; !strings.ContainsAny(suf, "%_") {
			return func(s string) bool { return strings.HasSuffix(s, suf) }
		}
	}
	return func(s string) bool { return likeMatch(s, p) }
}

func compileCase(ce *sqlparse.CaseExpr, cols []bindCol) (program, bool) {
	allConst := true
	var operand program
	if ce.Operand != nil {
		var oc bool
		operand, oc = compileExpr(ce.Operand, cols)
		allConst = allConst && oc
	}
	conds := make([]program, len(ce.Whens))
	thens := make([]program, len(ce.Whens))
	for i, w := range ce.Whens {
		var cc, tc bool
		conds[i], cc = compileExpr(w.Cond, cols)
		thens[i], tc = compileExpr(w.Then, cols)
		allConst = allConst && cc && tc
	}
	var elseProg program
	if ce.Else != nil {
		var ec bool
		elseProg, ec = compileExpr(ce.Else, cols)
		allConst = allConst && ec
	}
	return foldConst(func(env *rowEnv) (sqldb.Value, error) {
		if operand != nil {
			op, err := operand(env)
			if err != nil {
				return sqldb.Null(), err
			}
			for i, cond := range conds {
				cv, err := cond(env)
				if err != nil {
					return sqldb.Null(), err
				}
				if !op.IsNull() && !cv.IsNull() && op.Equal(cv) {
					return thens[i](env)
				}
			}
		} else {
			for i, cond := range conds {
				cv, err := cond(env)
				if err != nil {
					return sqldb.Null(), err
				}
				if truthy(cv) {
					return thens[i](env)
				}
			}
		}
		if elseProg != nil {
			return elseProg(env)
		}
		return sqldb.Null(), nil
	}, allConst)
}

// exprTotal reports whether evaluating e can never return an error, for any
// input row. It is deliberately conservative: only operators whose value
// semantics are total (comparisons, boolean logic, concatenation, LIKE,
// BETWEEN, IS NULL, and arity-checked string functions) qualify; arithmetic,
// CAST, numeric/date functions and subqueries can all fail on data. The
// predicate-pushdown pass relies on this to reorder evaluation without
// changing which error (if any) a query surfaces.
func exprTotal(e sqlparse.Expr, cols []bindCol) bool {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		_, err := parseNumber(x.Text)
		return err == nil
	case *sqlparse.StringLit, *sqlparse.NullLit, *sqlparse.BoolLit:
		return true
	case *sqlparse.ColumnRef:
		return bindColumn(x, cols) >= 0
	case *sqlparse.Unary:
		// "-" can fail on non-numeric strings; "+" and NOT cannot.
		return (x.Op == "+" || x.Op == "NOT") && exprTotal(x.X, cols)
	case *sqlparse.Binary:
		switch x.Op {
		case "=", "<>", "<", "<=", ">", ">=", "||", "AND", "OR":
			return exprTotal(x.L, cols) && exprTotal(x.R, cols)
		}
		return false // arithmetic errors on non-numeric operands
	case *sqlparse.CaseExpr:
		if x.Operand != nil && !exprTotal(x.Operand, cols) {
			return false
		}
		for _, w := range x.Whens {
			if !exprTotal(w.Cond, cols) || !exprTotal(w.Then, cols) {
				return false
			}
		}
		return x.Else == nil || exprTotal(x.Else, cols)
	case *sqlparse.InExpr:
		if x.Select != nil || !exprTotal(x.X, cols) {
			return false
		}
		for _, item := range x.List {
			if !exprTotal(item, cols) {
				return false
			}
		}
		return true
	case *sqlparse.BetweenExpr:
		return exprTotal(x.X, cols) && exprTotal(x.Lo, cols) && exprTotal(x.Hi, cols)
	case *sqlparse.LikeExpr:
		return exprTotal(x.X, cols) && exprTotal(x.Pattern, cols)
	case *sqlparse.IsNullExpr:
		return exprTotal(x.X, cols)
	case *sqlparse.FuncCall:
		if x.Over != nil || isAggregateName(x.Name) || x.Star || x.Distinct {
			return false
		}
		switch x.Name {
		case "UPPER", "LOWER", "TRIM", "LENGTH", "LEN":
			if len(x.Args) != 1 {
				return false
			}
		case "NULLIF":
			if len(x.Args) != 2 {
				return false
			}
		case "REPLACE":
			if len(x.Args) != 3 {
				return false
			}
		case "SUBSTR", "SUBSTRING":
			if len(x.Args) != 2 && len(x.Args) != 3 {
				return false
			}
		case "COALESCE", "IFNULL", "CONCAT":
			// any arity
		default:
			return false
		}
		for _, a := range x.Args {
			if !exprTotal(a, cols) {
				return false
			}
		}
		return true
	}
	return false
}

// staticInt folds a LIMIT/OFFSET expression to an integer. Both execution
// paths use it (the interpreter at apply time, the compiler at plan time),
// so non-constant and non-integer limits are rejected identically.
func staticInt(expr sqlparse.Expr) (int64, error) {
	prog, isConst := compileExpr(expr, nil)
	if !isConst {
		return 0, execErrf("LIMIT/OFFSET must be a constant expression")
	}
	v, err := prog(nil)
	if err != nil {
		return 0, err
	}
	n, ok := v.AsInt()
	if !ok {
		return 0, execErrf("LIMIT/OFFSET requires an integer, got %q", v.String())
	}
	return n, nil
}
