package sqlexec

import (
	"strings"

	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// Batch plan compilation: lowering a compiled statement plan onto a columnar
// table snapshot.
//
// The batch engine accepts exactly the statements whose relational core is a
// single base-table scan with no subqueries anywhere: no CTEs, no compound
// arms, no derived tables or joins, and no EXISTS / scalar-subquery /
// IN-SELECT nodes in any clause (their evaluation needs per-row interpreter
// environments whose group context the batch group-finish phase does not
// carry). Everything else keeps running through the row-compiled path —
// support is decided once per statement and cached alongside the row plan.
//
// Within a supported statement, each expression position (the WHERE filter,
// every projection item, ORDER BY key and GROUP BY key) becomes a slot:
// either a total vector kernel — compiled only when the expression provably
// cannot error given the snapshot's static column kinds — or the existing
// row program evaluated lane-at-a-time. Totality is what keeps parity exact
// without any per-lane error plumbing: a kernel may evaluate lanes (and
// subexpressions, e.g. both AND branches) the row engine would have skipped,
// because for a total, pure expression the extra evaluation is unobservable.
// Every fallible expression — arithmetic over string-kinded or mixed
// columns, CAST, scalar functions, unbound names — stays on the row program,
// which reproduces the row engine's values and error selection by
// construction.
//
// A batchPlan binds ordinals against one specific *sqldb.Columnar snapshot
// (kernels capture its typed arrays), so executors recompile the batch plan
// — not the row plan — when a table's snapshot moves (rows appended).

// batchPlan is a corePlan lowered onto a columnar snapshot.
type batchPlan struct {
	cp       *corePlan
	table    string // upper-cased base table name (snapshot cache key)
	snap     *sqldb.Columnar
	rows     []sqldb.Row // row view the snapshot was built from
	cols     []*sqldb.ColumnData
	fromCols []bindCol

	filter *slot   // nil when there is no WHERE clause
	projs  []*slot // non-aggregated cores only
	orders []*slot // per ORDER BY item; nil where orderIdx[i] >= 0
	keys   []*slot // GROUP BY key slots (aggregated cores)
	aggs   []aggSpec
}

// hasSubquery reports whether any expression contains a subquery node.
// WalkExprs visits the EXISTS/SubqueryExpr/InExpr nodes themselves without
// descending into their select trees, which is exactly the granularity the
// gate needs.
func hasSubquery(exprs ...sqlparse.Expr) bool {
	found := false
	for _, e := range exprs {
		if e == nil {
			continue
		}
		sqlparse.WalkExprs(e, func(x sqlparse.Expr) {
			switch s := x.(type) {
			case *sqlparse.ExistsExpr:
				found = true
			case *sqlparse.SubqueryExpr:
				found = true
			case *sqlparse.InExpr:
				if s.Select != nil {
					found = true
				}
			}
		})
	}
	return found
}

// compileBatch lowers a statement plan for batch execution, returning nil
// when the statement is unsupported. The returned plan is bound to the
// table's current columnar snapshot.
func compileBatch(e *Executor, sp *stmtPlan) *batchPlan {
	if sp == nil || sp.fallback || len(sp.ctes) > 0 || len(sp.compound) > 0 || sp.core == nil {
		return nil
	}
	cp := sp.core
	if cp.fallback || cp.from == nil || cp.from.leaf == nil {
		return nil
	}
	lp := cp.from.leaf
	// Single-table cores never receive pushed-down filters (pushdown is
	// join-only), but check anyway so an invariant change upstream degrades
	// to the row path instead of silently dropping predicates.
	if lp.table == "" || len(lp.filters) > 0 || len(cp.where) > 1 {
		return nil
	}
	var clauseExprs []sqlparse.Expr
	clauseExprs = append(clauseExprs, cp.src.Where, cp.src.Having)
	for _, item := range cp.items {
		clauseExprs = append(clauseExprs, item.Expr)
	}
	clauseExprs = append(clauseExprs, cp.src.GroupBy...)
	for _, o := range cp.orderBy {
		clauseExprs = append(clauseExprs, o.Expr)
	}
	if hasSubquery(clauseExprs...) {
		return nil
	}

	snap, rows := e.columnarFor(lp.table)
	if snap == nil {
		return nil
	}
	bp := &batchPlan{
		cp:       cp,
		table:    strings.ToUpper(lp.table),
		snap:     snap,
		rows:     rows,
		fromCols: cp.from.cols,
	}
	bp.cols = make([]*sqldb.ColumnData, len(snap.Cols))
	for i := range snap.Cols {
		bp.cols[i] = &snap.Cols[i]
	}

	fromCols := cp.from.cols
	if cp.src.Where != nil {
		bp.filter = compileSlot(cp.src.Where, cp.where[0], fromCols, bp.cols)
	}
	if cp.aggregated {
		for i, ge := range cp.src.GroupBy {
			bp.keys = append(bp.keys, compileSlot(ge, cp.groupBy[i], fromCols, bp.cols))
		}
		bp.aggs = collectAggSpecs(cp, fromCols, bp.cols)
		return bp
	}
	bp.projs = make([]*slot, len(cp.items))
	for i := range cp.items {
		bp.projs[i] = compileSlot(cp.items[i].Expr, cp.projs[i], fromCols, bp.cols)
	}
	bp.orders = make([]*slot, len(cp.orderBy))
	for i := range cp.orderBy {
		if cp.orderIdx[i] < 0 {
			bp.orders[i] = compileSlot(cp.orderBy[i].Expr, cp.orderProgs[i], fromCols, bp.cols)
		}
	}
	return bp
}

// compileSlot lowers one expression position: a total vector kernel when the
// expression qualifies, otherwise the already-compiled row program.
func compileSlot(e sqlparse.Expr, rowProg program, cols []bindCol, data []*sqldb.ColumnData) *slot {
	if vx := compileVec(e, cols, data); vx != nil {
		return &slot{kernel: vx.run}
	}
	return &slot{row: rowProg}
}

// ---- vector expression compilation ----

// kindAny marks a vexpr whose lane kind is not statically uniform (mixed
// columns, CASE outputs).
const kindAny = sqldb.Kind(-1)

// vexpr is a compiled total vector expression: its static lane kind (the
// kind of every non-NULL lane, or kindAny) and the kernel producing it.
// constant vexprs additionally carry their folded value so parent kernels
// can hoist it out of the lane loop.
type vexpr struct {
	kind     sqldb.Kind
	constant bool
	cv       sqldb.Value
	run      vprog
}

func constVexpr(v sqldb.Value) *vexpr {
	kind := v.K
	if v.IsNull() {
		kind = sqldb.KindNull
	}
	shared := &vec{constant: true, cv: v}
	return &vexpr{kind: kind, constant: true, cv: v,
		run: func(*vctx, []int32) *vec { return shared }}
}

// nullVexpr is an expression statically known to be NULL at every lane
// (e.g. arithmetic with a NULL operand).
func nullVexpr() *vexpr { return constVexpr(sqldb.Null()) }

// allNull reports whether every lane of the expression is statically NULL
// (a NULL constant or an all-NULL column).
func (x *vexpr) allNull() bool { return x.kind == sqldb.KindNull }

// vop is a kernel-time operand: either a hoisted constant or an evaluated
// child vector. It gives lanewise kernels one accessor shape for both.
type vop struct {
	cv sqldb.Value
	v  *vec
}

func (x *vexpr) operand(vc *vctx, sel []int32) vop {
	if x.constant {
		return vop{cv: x.cv}
	}
	return vop{v: x.run(vc, sel)}
}

func (o *vop) at(ln int32) sqldb.Value {
	if o.v == nil {
		return o.cv
	}
	return o.v.value(ln)
}

func (o *vop) isNull(ln int32) bool {
	if o.v == nil {
		return o.cv.IsNull()
	}
	return o.v.null(ln)
}

func (o *vop) isTruthy(ln int32) bool {
	if o.v == nil {
		return truthy(o.cv)
	}
	return o.v.truthyAt(ln)
}

// numericVexpr reports whether every non-NULL lane is KindInt or KindFloat —
// the precondition for the float-comparison fast paths (sqldb.Compare takes
// its numeric branch only when both sides are numeric).
func numericVexpr(x *vexpr) bool {
	if x.constant {
		return x.cv.IsNumeric()
	}
	return x.kind == sqldb.KindInt || x.kind == sqldb.KindFloat
}

// stringVexpr reports whether every non-NULL lane is KindString.
func stringVexpr(x *vexpr) bool {
	return x.kind == sqldb.KindString
}

// arithSafe reports whether an operand can never make evalArith error:
// AsFloat is total on Int/Float/Bool/NULL, while string lanes can fail to
// parse (and mixed columns may hold strings).
func arithSafe(x *vexpr) bool {
	if x.constant {
		if x.cv.IsNull() {
			return true
		}
		_, ok := x.cv.AsFloat()
		return ok
	}
	switch x.kind {
	case sqldb.KindNull, sqldb.KindInt, sqldb.KindFloat, sqldb.KindBool:
		return true
	}
	return false
}

// intVexpr reports whether every non-NULL lane is KindInt (the bothInt
// branch of evalArith).
func intVexpr(x *vexpr) bool {
	if x.constant {
		return x.cv.K == sqldb.KindInt
	}
	return x.kind == sqldb.KindInt
}

// compileVec lowers an expression to a total vector kernel, or returns nil
// when the expression is not provably error-free (or simply not worth
// vectorizing) — the caller then uses the row program for the whole slot.
// Constant subexpressions fold through compileExpr, whose semantics are the
// row engine's; a constant that folds to an error is not total and stays on
// the row path, which raises that error at the right row.
func compileVec(e sqlparse.Expr, cols []bindCol, data []*sqldb.ColumnData) *vexpr {
	if p, isConst := compileExpr(e, cols); isConst {
		v, err := p(nil)
		if err != nil {
			return nil
		}
		return constVexpr(v)
	}
	switch x := e.(type) {
	case *sqlparse.ColumnRef:
		return compileColVec(x, cols, data)

	case *sqlparse.Unary:
		xv := compileVec(x.X, cols, data)
		if xv == nil {
			return nil
		}
		switch x.Op {
		case "+":
			return xv
		case "NOT":
			return compileNotVec(xv)
		case "-":
			return compileNegVec(xv)
		}
		return nil

	case *sqlparse.Binary:
		l := compileVec(x.L, cols, data)
		if l == nil {
			return nil
		}
		r := compileVec(x.R, cols, data)
		if r == nil {
			return nil
		}
		switch x.Op {
		case "AND":
			return compileAndOrVec(l, r, true)
		case "OR":
			return compileAndOrVec(l, r, false)
		case "=", "<>", "<", "<=", ">", ">=":
			return compileCmpVec(x.Op, l, r)
		case "||":
			return compileConcatVec(l, r)
		case "+", "-", "*", "/", "%":
			return compileArithVec(x.Op, l, r)
		}
		return nil

	case *sqlparse.IsNullExpr:
		xv := compileVec(x.X, cols, data)
		if xv == nil {
			return nil
		}
		return compileIsNullVec(xv, x.Not)

	case *sqlparse.BetweenExpr:
		xv := compileVec(x.X, cols, data)
		lo := compileVec(x.Lo, cols, data)
		hi := compileVec(x.Hi, cols, data)
		if xv == nil || lo == nil || hi == nil {
			return nil
		}
		return compileBetweenVec(xv, lo, hi, x.Not)

	case *sqlparse.LikeExpr:
		xv := compileVec(x.X, cols, data)
		pv := compileVec(x.Pattern, cols, data)
		if xv == nil || pv == nil {
			return nil
		}
		return compileLikeVec(xv, pv, x.Not)

	case *sqlparse.InExpr:
		if x.Select != nil {
			return nil
		}
		xv := compileVec(x.X, cols, data)
		if xv == nil {
			return nil
		}
		items := make([]*vexpr, len(x.List))
		for i, item := range x.List {
			if items[i] = compileVec(item, cols, data); items[i] == nil {
				return nil
			}
		}
		return compileInVec(xv, items, x.Not)

	case *sqlparse.CaseExpr:
		return compileCaseVec(x, cols, data)
	}
	// CAST, scalar/aggregate/window calls, subqueries: row program.
	return nil
}

// compileColVec lowers a column reference to a zero-copy view over the
// snapshot's column arrays. The view is per-morsel only in its offsets; the
// arrays themselves are shared and read-only.
func compileColVec(cr *sqlparse.ColumnRef, cols []bindCol, data []*sqldb.ColumnData) *vexpr {
	ord := bindColumn(cr, cols)
	if ord < 0 {
		return nil // unbound reference errors per row; keep the row program
	}
	cd := data[ord]
	if cd.Mixed {
		return &vexpr{kind: kindAny, run: func(vc *vctx, sel []int32) *vec {
			out := vc.arena.vec()
			out.mixed = true
			out.vals = cd.Values[vc.base : vc.base+vc.n]
			return out
		}}
	}
	kind := cd.Kind
	return &vexpr{kind: kind, run: func(vc *vctx, sel []int32) *vec {
		out := vc.arena.vec()
		out.kind = kind
		out.nulls = cd.Nulls
		out.nullOff = vc.base
		switch kind {
		case sqldb.KindInt:
			out.ints = cd.Ints[vc.base : vc.base+vc.n]
		case sqldb.KindFloat:
			out.floats = cd.Floats[vc.base : vc.base+vc.n]
		case sqldb.KindString:
			out.strs = cd.Strs[vc.base : vc.base+vc.n]
		case sqldb.KindBool:
			out.bools = cd.Bools[vc.base : vc.base+vc.n]
		}
		return out
	}}
}

// compileNotVec lowers NOT: NULL stays NULL, everything else negates its
// truthiness (applyUnary's semantics).
func compileNotVec(xv *vexpr) *vexpr {
	if xv.allNull() {
		return nullVexpr()
	}
	return &vexpr{kind: sqldb.KindBool, run: func(vc *vctx, sel []int32) *vec {
		op := xv.operand(vc, sel)
		out := newBoolVec(vc)
		for _, ln := range sel {
			if op.isNull(ln) {
				out.nulls.Set(int(ln))
				continue
			}
			out.bools[ln] = !op.isTruthy(ln)
		}
		return out
	}}
}

// compileNegVec lowers unary minus. Int lanes negate as Int(-I); Float and
// Bool lanes go through AsFloat (total for those kinds) as Float(-f). String
// and mixed lanes can fail AsFloat, so they stay on the row program.
func compileNegVec(xv *vexpr) *vexpr {
	if xv.allNull() {
		return nullVexpr()
	}
	switch xv.kind {
	case sqldb.KindInt:
		return &vexpr{kind: sqldb.KindInt, run: func(vc *vctx, sel []int32) *vec {
			in := xv.run(vc, sel)
			out := vc.arena.vec()
			out.kind = sqldb.KindInt
			out.ints = vc.arena.int64s(vc.n)
			out.nulls = vc.arena.bitmap(vc.n)
			for _, ln := range sel {
				if in.null(ln) {
					out.nulls.Set(int(ln))
					continue
				}
				out.ints[ln] = -in.ints[ln]
			}
			return out
		}}
	case sqldb.KindFloat, sqldb.KindBool:
		kind := xv.kind
		return &vexpr{kind: sqldb.KindFloat, run: func(vc *vctx, sel []int32) *vec {
			in := xv.run(vc, sel)
			out := newFloatVec(vc)
			for _, ln := range sel {
				if in.null(ln) {
					out.nulls.Set(int(ln))
					continue
				}
				if kind == sqldb.KindFloat {
					out.floats[ln] = -in.floats[ln]
				} else if in.bools[ln] {
					out.floats[ln] = -1
				} else {
					out.floats[ln] = 0
				}
			}
			return out
		}}
	}
	return nil
}

// compileAndOrVec lowers AND/OR three-valued logic. Both sides always
// evaluate (they are total and pure, so skipping the row engine's
// short-circuit is unobservable); the lanewise verdict matches evalBinary's.
func compileAndOrVec(l, r *vexpr, isAnd bool) *vexpr {
	return &vexpr{kind: sqldb.KindBool, run: func(vc *vctx, sel []int32) *vec {
		lo := l.operand(vc, sel)
		ro := r.operand(vc, sel)
		out := newBoolVec(vc)
		for _, ln := range sel {
			ln0, rn0 := lo.isNull(ln), ro.isNull(ln)
			if isAnd {
				if (!ln0 && !lo.isTruthy(ln)) || (!rn0 && !ro.isTruthy(ln)) {
					out.bools[ln] = false
					continue
				}
				if ln0 || rn0 {
					out.nulls.Set(int(ln))
					continue
				}
				out.bools[ln] = true
			} else {
				if (!ln0 && lo.isTruthy(ln)) || (!rn0 && ro.isTruthy(ln)) {
					out.bools[ln] = true
					continue
				}
				if ln0 || rn0 {
					out.nulls.Set(int(ln))
					continue
				}
				out.bools[ln] = false
			}
		}
		return out
	}}
}

// cmpFloat is sqldb.Compare's numeric branch: strict less/greater with every
// NaN-involved comparison reading as equal.
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func verdictFor(op string) func(int) bool {
	switch op {
	case "=":
		return func(c int) bool { return c == 0 }
	case "<>":
		return func(c int) bool { return c != 0 }
	case "<":
		return func(c int) bool { return c < 0 }
	case "<=":
		return func(c int) bool { return c <= 0 }
	case ">":
		return func(c int) bool { return c > 0 }
	default:
		return func(c int) bool { return c >= 0 }
	}
}

// compileCmpVec lowers comparisons. Two fast paths — both sides numeric
// (sqldb.Compare's AsFloat branch, including Int lanes widened to float64 so
// large-magnitude ties behave identically) and both sides string (the
// rendered-string branch) — plus a lanewise boxed fallback for everything
// else (bools, mixed columns).
func compileCmpVec(op string, l, r *vexpr) *vexpr {
	if l.allNull() || r.allNull() {
		return nullVexpr()
	}
	verdict := verdictFor(op)
	if numericVexpr(l) && numericVexpr(r) {
		return &vexpr{kind: sqldb.KindBool, run: func(vc *vctx, sel []int32) *vec {
			out := newBoolVec(vc)
			switch {
			case !l.constant && r.constant:
				cf, _ := r.cv.AsFloat()
				cmpVecConstNum(out, l.run(vc, sel), cf, false, verdict, sel)
			case l.constant && !r.constant:
				cf, _ := l.cv.AsFloat()
				cmpVecConstNum(out, r.run(vc, sel), cf, true, verdict, sel)
			default:
				lv, rv := l.run(vc, sel), r.run(vc, sel)
				for _, ln := range sel {
					if lv.null(ln) || rv.null(ln) {
						out.nulls.Set(int(ln))
						continue
					}
					out.bools[ln] = verdict(cmpFloat(lv.floatLane(ln), rv.floatLane(ln)))
				}
			}
			return out
		}}
	}
	if stringVexpr(l) && stringVexpr(r) {
		return &vexpr{kind: sqldb.KindBool, run: func(vc *vctx, sel []int32) *vec {
			lo := l.operand(vc, sel)
			ro := r.operand(vc, sel)
			out := newBoolVec(vc)
			for _, ln := range sel {
				if lo.isNull(ln) || ro.isNull(ln) {
					out.nulls.Set(int(ln))
					continue
				}
				a, b := lo.strAt(ln), ro.strAt(ln)
				c := 0
				if a < b {
					c = -1
				} else if a > b {
					c = 1
				}
				out.bools[ln] = verdict(c)
			}
			return out
		}}
	}
	return &vexpr{kind: sqldb.KindBool, run: func(vc *vctx, sel []int32) *vec {
		lo := l.operand(vc, sel)
		ro := r.operand(vc, sel)
		out := newBoolVec(vc)
		for _, ln := range sel {
			if lo.isNull(ln) || ro.isNull(ln) {
				out.nulls.Set(int(ln))
				continue
			}
			c, ok := sqldb.Compare(lo.at(ln), ro.at(ln))
			if !ok {
				out.nulls.Set(int(ln))
				continue
			}
			out.bools[ln] = verdict(c)
		}
		return out
	}}
}

// strAt reads a lane known to be a non-NULL string.
func (o *vop) strAt(ln int32) string {
	if o.v == nil {
		return o.cv.S
	}
	return o.v.strs[ln]
}

// cmpVecConstNum is the hot comparison shape: one numeric column vector
// against a numeric constant (swapped reverses operand order).
func cmpVecConstNum(out *vec, v *vec, c float64, swapped bool, verdict func(int) bool, sel []int32) {
	switch v.kind {
	case sqldb.KindInt:
		ints := v.ints
		for _, ln := range sel {
			if v.nulls.Get(int(ln) + v.nullOff) {
				out.nulls.Set(int(ln))
				continue
			}
			a, b := float64(ints[ln]), c
			if swapped {
				a, b = b, a
			}
			out.bools[ln] = verdict(cmpFloat(a, b))
		}
	default: // KindFloat: numericVexpr admits only Int and Float vectors
		floats := v.floats
		for _, ln := range sel {
			if v.nulls.Get(int(ln) + v.nullOff) {
				out.nulls.Set(int(ln))
				continue
			}
			a, b := floats[ln], c
			if swapped {
				a, b = b, a
			}
			out.bools[ln] = verdict(cmpFloat(a, b))
		}
	}
}

// compileConcatVec lowers || : NULL propagates, otherwise rendered strings
// concatenate.
func compileConcatVec(l, r *vexpr) *vexpr {
	if l.allNull() || r.allNull() {
		return nullVexpr()
	}
	return &vexpr{kind: sqldb.KindString, run: func(vc *vctx, sel []int32) *vec {
		lo := l.operand(vc, sel)
		ro := r.operand(vc, sel)
		out := vc.arena.vec()
		out.kind = sqldb.KindString
		out.strs = vc.arena.strings(vc.n)
		out.nulls = vc.arena.bitmap(vc.n)
		for _, ln := range sel {
			if lo.isNull(ln) || ro.isNull(ln) {
				out.nulls.Set(int(ln))
				continue
			}
			out.strs[ln] = lo.at(ln).String() + ro.at(ln).String()
		}
		return out
	}}
}

// compileArithVec lowers +,-,*,/,% when both operands are arithmetic-safe
// kinds (evalArith's AsFloat cannot fail on Int/Float/Bool/NULL). Int×Int
// runs the integer branch (with /,% by zero yielding NULL); anything with a
// Float or Bool lane runs the float branch, replicating evalArith exactly —
// including float % going through int64 conversions.
func compileArithVec(op string, l, r *vexpr) *vexpr {
	if !arithSafe(l) || !arithSafe(r) {
		return nil
	}
	if l.allNull() || r.allNull() {
		return nullVexpr()
	}
	if intVexpr(l) && intVexpr(r) {
		return &vexpr{kind: sqldb.KindInt, run: func(vc *vctx, sel []int32) *vec {
			lo := l.operand(vc, sel)
			ro := r.operand(vc, sel)
			out := vc.arena.vec()
			out.kind = sqldb.KindInt
			out.ints = vc.arena.int64s(vc.n)
			out.nulls = vc.arena.bitmap(vc.n)
			for _, ln := range sel {
				if lo.isNull(ln) || ro.isNull(ln) {
					out.nulls.Set(int(ln))
					continue
				}
				a, b := lo.intAt(ln), ro.intAt(ln)
				switch op {
				case "+":
					out.ints[ln] = a + b
				case "-":
					out.ints[ln] = a - b
				case "*":
					out.ints[ln] = a * b
				case "/":
					if b == 0 {
						out.nulls.Set(int(ln))
						continue
					}
					out.ints[ln] = a / b
				case "%":
					if b == 0 {
						out.nulls.Set(int(ln))
						continue
					}
					out.ints[ln] = a % b
				}
			}
			return out
		}}
	}
	return &vexpr{kind: sqldb.KindFloat, run: func(vc *vctx, sel []int32) *vec {
		lo := l.operand(vc, sel)
		ro := r.operand(vc, sel)
		out := newFloatVec(vc)
		for _, ln := range sel {
			if lo.isNull(ln) || ro.isNull(ln) {
				out.nulls.Set(int(ln))
				continue
			}
			a, b := lo.floatAt(ln), ro.floatAt(ln)
			switch op {
			case "+":
				out.floats[ln] = a + b
			case "-":
				out.floats[ln] = a - b
			case "*":
				out.floats[ln] = a * b
			case "/":
				if b == 0 {
					out.nulls.Set(int(ln))
					continue
				}
				out.floats[ln] = a / b
			case "%":
				if b == 0 {
					out.nulls.Set(int(ln))
					continue
				}
				out.floats[ln] = float64(int64(a) % int64(b))
			}
		}
		return out
	}}
}

// intAt reads a lane known to be non-NULL KindInt.
func (o *vop) intAt(ln int32) int64 {
	if o.v == nil {
		return o.cv.I
	}
	return o.v.ints[ln]
}

// floatAt reads a non-NULL lane of an arithmetic-safe operand through
// AsFloat's conversions (Int widens, Bool maps to 1/0).
func (o *vop) floatAt(ln int32) float64 {
	if o.v == nil {
		f, _ := o.cv.AsFloat()
		return f
	}
	switch o.v.kind {
	case sqldb.KindInt:
		return float64(o.v.ints[ln])
	case sqldb.KindFloat:
		return o.v.floats[ln]
	default: // KindBool under arithSafe
		if o.v.bools[ln] {
			return 1
		}
		return 0
	}
}

// compileIsNullVec lowers IS [NOT] NULL; the output itself is never NULL.
func compileIsNullVec(xv *vexpr, not bool) *vexpr {
	return &vexpr{kind: sqldb.KindBool, run: func(vc *vctx, sel []int32) *vec {
		op := xv.operand(vc, sel)
		out := newBoolVec(vc)
		for _, ln := range sel {
			out.bools[ln] = op.isNull(ln) != not
		}
		return out
	}}
}

// compileBetweenVec lowers BETWEEN with a numeric fast path mirroring
// evalBetween's two Compare calls.
func compileBetweenVec(xv, lo, hi *vexpr, not bool) *vexpr {
	if xv.allNull() || lo.allNull() || hi.allNull() {
		return nullVexpr()
	}
	numeric := numericVexpr(xv) && numericVexpr(lo) && numericVexpr(hi)
	return &vexpr{kind: sqldb.KindBool, run: func(vc *vctx, sel []int32) *vec {
		xo := xv.operand(vc, sel)
		loo := lo.operand(vc, sel)
		hio := hi.operand(vc, sel)
		out := newBoolVec(vc)
		for _, ln := range sel {
			if xo.isNull(ln) || loo.isNull(ln) || hio.isNull(ln) {
				out.nulls.Set(int(ln))
				continue
			}
			if numeric {
				xf := xo.floatAt(ln)
				in := cmpFloat(xf, loo.floatAt(ln)) >= 0 && cmpFloat(xf, hio.floatAt(ln)) <= 0
				out.bools[ln] = in != not
				continue
			}
			x := xo.at(ln)
			c1, ok1 := sqldb.Compare(x, loo.at(ln))
			c2, ok2 := sqldb.Compare(x, hio.at(ln))
			if !ok1 || !ok2 {
				out.nulls.Set(int(ln))
				continue
			}
			in := c1 >= 0 && c2 <= 0
			out.bools[ln] = in != not
		}
		return out
	}}
}

// compileLikeVec lowers LIKE. A constant pattern hoists the specialized
// matcher out of the lane loop (the same compileLikeMatcher the row path
// uses); variable patterns run the shared DP per lane.
func compileLikeVec(xv, pv *vexpr, not bool) *vexpr {
	if xv.allNull() || pv.allNull() {
		return nullVexpr()
	}
	var matcher func(string) bool
	if pv.constant {
		matcher = compileLikeMatcher(strings.ToLower(pv.cv.String()))
	}
	return &vexpr{kind: sqldb.KindBool, run: func(vc *vctx, sel []int32) *vec {
		xo := xv.operand(vc, sel)
		po := pv.operand(vc, sel)
		out := newBoolVec(vc)
		for _, ln := range sel {
			if xo.isNull(ln) || po.isNull(ln) {
				out.nulls.Set(int(ln))
				continue
			}
			s := strings.ToLower(xo.at(ln).String())
			if matcher != nil {
				out.bools[ln] = matcher(s) != not
				continue
			}
			out.bools[ln] = likeMatch(s, strings.ToLower(po.at(ln).String())) != not
		}
		return out
	}}
}

// compileInVec lowers IN over a literal list: every item evaluates (total,
// so order is unobservable), then membership with NULL-poisoning.
func compileInVec(xv *vexpr, items []*vexpr, not bool) *vexpr {
	if xv.allNull() {
		return nullVexpr()
	}
	return &vexpr{kind: sqldb.KindBool, run: func(vc *vctx, sel []int32) *vec {
		xo := xv.operand(vc, sel)
		ops := make([]vop, len(items))
		for i, item := range items {
			ops[i] = item.operand(vc, sel)
		}
		out := newBoolVec(vc)
		for _, ln := range sel {
			if xo.isNull(ln) {
				out.nulls.Set(int(ln))
				continue
			}
			x := xo.at(ln)
			matched, sawNull := false, false
			for i := range ops {
				c := ops[i].at(ln)
				if c.IsNull() {
					sawNull = true
					continue
				}
				if x.Equal(c) {
					matched = true
					break
				}
			}
			switch {
			case matched:
				out.bools[ln] = !not
			case sawNull:
				out.nulls.Set(int(ln))
			default:
				out.bools[ln] = not
			}
		}
		return out
	}}
}

// compileCaseVec lowers CASE lanewise over boxed values. All branches
// evaluate for all lanes (total + pure makes that unobservable); the
// per-lane selection replicates evalCase.
func compileCaseVec(ce *sqlparse.CaseExpr, cols []bindCol, data []*sqldb.ColumnData) *vexpr {
	var operand *vexpr
	if ce.Operand != nil {
		if operand = compileVec(ce.Operand, cols, data); operand == nil {
			return nil
		}
	}
	conds := make([]*vexpr, len(ce.Whens))
	thens := make([]*vexpr, len(ce.Whens))
	for i, w := range ce.Whens {
		if conds[i] = compileVec(w.Cond, cols, data); conds[i] == nil {
			return nil
		}
		if thens[i] = compileVec(w.Then, cols, data); thens[i] == nil {
			return nil
		}
	}
	var elseV *vexpr
	if ce.Else != nil {
		if elseV = compileVec(ce.Else, cols, data); elseV == nil {
			return nil
		}
	}
	return &vexpr{kind: kindAny, run: func(vc *vctx, sel []int32) *vec {
		var opo vop
		if operand != nil {
			opo = operand.operand(vc, sel)
		}
		condOps := make([]vop, len(conds))
		thenOps := make([]vop, len(thens))
		for i := range conds {
			condOps[i] = conds[i].operand(vc, sel)
			thenOps[i] = thens[i].operand(vc, sel)
		}
		var elseOp vop
		if elseV != nil {
			elseOp = elseV.operand(vc, sel)
		}
		out := vc.arena.vec()
		out.mixed = true
		out.vals = vc.arena.values(vc.n)
		for _, ln := range sel {
			v := sqldb.Null()
			matched := false
			if operand != nil {
				op := opo.at(ln)
				for i := range condOps {
					cv := condOps[i].at(ln)
					if !op.IsNull() && !cv.IsNull() && op.Equal(cv) {
						v = thenOps[i].at(ln)
						matched = true
						break
					}
				}
			} else {
				for i := range condOps {
					if truthy(condOps[i].at(ln)) {
						v = thenOps[i].at(ln)
						matched = true
						break
					}
				}
			}
			if !matched && elseV != nil {
				v = elseOp.at(ln)
			}
			out.vals[ln] = v
		}
		return out
	}}
}

// newBoolVec allocates a boolean output vector with a cleared null bitmap.
func newBoolVec(vc *vctx) *vec {
	out := vc.arena.vec()
	out.kind = sqldb.KindBool
	out.bools = vc.arena.booleans(vc.n)
	out.nulls = vc.arena.bitmap(vc.n)
	return out
}

// newFloatVec allocates a float output vector with a cleared null bitmap.
func newFloatVec(vc *vctx) *vec {
	out := vc.arena.vec()
	out.kind = sqldb.KindFloat
	out.floats = vc.arena.float64s(vc.n)
	out.nulls = vc.arena.bitmap(vc.n)
	return out
}

// ---- aggregate specs ----

type aggMode int

const (
	// aggStarCount is COUNT(*): the group's row count, no evaluation.
	aggStarCount aggMode = iota
	// aggStaticErr is a call whose shape is statically invalid (non-COUNT
	// star, wrong arity); the row engine raises the same error per group.
	aggStaticErr
	// aggTypedCol accumulates a uniformly-typed column directly from its
	// snapshot array (no boxing, no per-row program).
	aggTypedCol
	// aggGeneric collects boxed values via the compiled argument program and
	// reduces with finishAggregate — the row engine's own code.
	aggGeneric
)

// aggSpec is one distinct aggregate call of an aggregated core, with the
// accumulation strategy decided at batch-compile time (typed eligibility
// depends on the snapshot's column kinds).
type aggSpec struct {
	fc        *sqlparse.FuncCall
	mode      aggMode
	staticErr error
	name      string
	distinct  bool
	arg       program    // aggGeneric
	ord       int        // aggTypedCol: from-layout ordinal
	kind      sqldb.Kind // aggTypedCol: column kind (KindNull = all-NULL)
}

// typedAggOK reports whether a (aggregate, column kind) pair can accumulate
// directly from the typed array with results identical to
// collectAggregateArgs + finishAggregate. All-NULL columns accumulate
// nothing, so every aggregate's empty-input rule applies; SUM/AVG/TOTAL over
// strings can error lane-by-lane (AsFloat) and bools order under Compare's
// bool branch, so those stay generic.
func typedAggOK(name string, kind sqldb.Kind) bool {
	switch kind {
	case sqldb.KindNull:
		return true
	case sqldb.KindInt, sqldb.KindFloat:
		return true
	case sqldb.KindString:
		return name == "COUNT" || name == "MIN" || name == "MAX"
	}
	return name == "COUNT" // KindBool
}

// collectAggSpecs gathers every aggregate call the compiled group-finish
// programs can evaluate — SELECT items, HAVING, and ORDER BY expressions
// that compiled to programs (position/alias targets read projected values
// instead). WalkExprs does not descend into subquery select trees, but batch
// plans exclude subqueries entirely.
func collectAggSpecs(cp *corePlan, cols []bindCol, data []*sqldb.ColumnData) []aggSpec {
	var calls []*sqlparse.FuncCall
	seen := make(map[*sqlparse.FuncCall]bool)
	add := func(e sqlparse.Expr) {
		if e == nil {
			return
		}
		sqlparse.WalkExprs(e, func(x sqlparse.Expr) {
			if fc, ok := x.(*sqlparse.FuncCall); ok && fc.Over == nil && isAggregateName(fc.Name) && !seen[fc] {
				seen[fc] = true
				calls = append(calls, fc)
			}
		})
	}
	for _, item := range cp.items {
		add(item.Expr)
	}
	add(cp.src.Having)
	for i, o := range cp.orderBy {
		if cp.orderIdx[i] < 0 {
			add(o.Expr)
		}
	}

	specs := make([]aggSpec, 0, len(calls))
	for _, fc := range calls {
		spec := aggSpec{fc: fc, name: fc.Name, distinct: fc.Distinct}
		switch {
		case fc.Star:
			if fc.Name != "COUNT" {
				spec.mode = aggStaticErr
				spec.staticErr = execErrf("%s(*) is not a valid aggregate", fc.Name)
			} else {
				spec.mode = aggStarCount
			}
		case len(fc.Args) != 1:
			spec.mode = aggStaticErr
			spec.staticErr = execErrf("aggregate %s expects exactly 1 argument", fc.Name)
		default:
			spec.mode = aggGeneric
			if cr, ok := fc.Args[0].(*sqlparse.ColumnRef); ok && !fc.Distinct {
				if ord := bindColumn(cr, cols); ord >= 0 {
					cd := data[ord]
					if !cd.Mixed && typedAggOK(fc.Name, cd.Kind) {
						spec.mode = aggTypedCol
						spec.ord = ord
						spec.kind = cd.Kind
					}
				}
			}
			if spec.mode == aggGeneric {
				spec.arg, _ = compileExpr(fc.Args[0], cols)
			}
		}
		specs = append(specs, spec)
	}
	return specs
}
