package sqlexec

import (
	"fmt"
	"testing"

	"genedit/internal/sqldb"
)

func TestVecArenaResetClearsReferences(t *testing.T) {
	a := getVecArena(8)
	v := a.vec()
	v.kind = sqldb.KindString
	v.strs = a.strings(8)
	for i := range v.strs {
		v.strs[i] = fmt.Sprintf("pinned-%d", i)
	}
	vals := a.values(8)
	for i := range vals {
		vals[i] = sqldb.Str("boxed")
	}
	a.reset()

	if v.kind != sqldb.KindNull || v.strs != nil || v.mixed || v.constant {
		t.Fatalf("vec header not zeroed on reset: %+v", v)
	}
	// The recycled buffers must hand back the same backing arrays with every
	// reference slot cleared, so a pooled arena cannot pin result strings or
	// boxed values from a previous query.
	s2 := a.strings(8)
	if &s2[0] != &a.strs[0][0] {
		t.Fatal("strings buffer not recycled after reset")
	}
	for i, s := range s2 {
		if s != "" {
			t.Fatalf("strings[%d] = %q after reset, want cleared", i, s)
		}
	}
	v2 := a.values(8)
	for i, val := range v2 {
		if !val.IsNull() {
			t.Fatalf("values[%d] = %v after reset, want zero Value", i, val)
		}
	}
}

func TestVecArenaCapacityMismatchDiscarded(t *testing.T) {
	// Unusual capacities so arenas pooled by other tests cannot satisfy the
	// lookups by accident.
	a := getVecArena(937)
	a.int64s(937)
	putVecArena(a)
	b := getVecArena(941)
	if b.cap != 941 {
		t.Fatalf("getVecArena(941) returned arena with cap %d", b.cap)
	}
	if got := b.int64s(941); len(got) != 941 {
		t.Fatalf("int64s(941) len = %d", len(got))
	}
	putVecArena(b)
}

func TestVecArenaBitmapClearedOnReuse(t *testing.T) {
	a := getVecArena(128)
	bm := a.bitmap(70)
	for i := 0; i < 70; i += 3 {
		bm.Set(i)
	}
	a.reset()
	bm2 := a.bitmap(70)
	for i := 0; i < 70; i++ {
		if bm2.Get(i) {
			t.Fatalf("recycled bitmap has stale bit %d set", i)
		}
	}
	putVecArena(a)
}

func TestVecArenaSelectionReuse(t *testing.T) {
	a := getVecArena(16)
	sel := a.selection()
	sel = append(sel, 1, 2, 3)
	a.reset()
	sel2 := a.selection()
	if len(sel2) != 0 || cap(sel2) != 16 {
		t.Fatalf("recycled selection len=%d cap=%d, want 0/16", len(sel2), cap(sel2))
	}
	if &sel[0] != &sel2[:1][0] {
		t.Fatal("selection buffer not recycled after reset")
	}
	putVecArena(a)
}

func TestIotaSelSharedAndAscending(t *testing.T) {
	s := iotaSel(100)
	for i, v := range s {
		if v != int32(i) {
			t.Fatalf("iotaSel(100)[%d] = %d", i, v)
		}
	}
	short := iotaSel(40)
	if len(short) != 40 || &short[0] != &s[0] {
		t.Fatal("shorter iotaSel should reslice the cached array")
	}
	long := iotaSel(250)
	if long[249] != 249 {
		t.Fatalf("iotaSel(250)[249] = %d", long[249])
	}
}

// TestBatchAllocsDoNotScale pins the batch engine's allocation profile: a
// cache-hit aggregate over tens of thousands of rows must cost a bounded
// number of allocations (arena-pooled vectors, one group, one result row) —
// not one-or-more per row like the boxed row paths. The bound is loose; the
// point is the asymptotic class.
func TestBatchAllocsDoNotScale(t *testing.T) {
	db := sqldb.NewDatabase("allocbench")
	tbl := sqldb.NewTable("T", sqldb.Column{Name: "V"}, sqldb.Column{Name: "W"})
	const rows = 40000
	for i := 0; i < rows; i++ {
		tbl.MustAppend(sqldb.Int(int64(i%1000)), sqldb.Float(float64(i)*0.25))
	}
	db.AddTable(tbl)
	exec := New(db)

	for _, tc := range []struct {
		sql   string
		limit float64
	}{
		{"SELECT COUNT(*), SUM(V), MIN(V), AVG(W) FROM T WHERE V >= 0", 500},
		{"SELECT V, W FROM T WHERE V = 17 AND W > 1000.0", 1500},
	} {
		if _, err := exec.Query(tc.sql); err != nil { // warm plan + arenas
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if _, err := exec.Query(tc.sql); err != nil {
				t.Error(err)
			}
		})
		if allocs > tc.limit {
			t.Errorf("%s: %.0f allocs over %d rows, want <= %.0f (per-row boxing would be >= %d)",
				tc.sql, allocs, rows, tc.limit, rows)
		}
	}
}
