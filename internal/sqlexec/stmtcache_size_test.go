package sqlexec

import (
	"fmt"
	"testing"

	"genedit/internal/sqldb"
)

func cacheTestExecutor() *Executor {
	db := sqldb.NewDatabase("d")
	tbl := sqldb.NewTable("T", sqldb.Column{Name: "V", Type: "INTEGER"})
	tbl.MustAppend(sqldb.Int(1))
	db.AddTable(tbl)
	return New(db)
}

func TestSetStatementCacheSizeBoundsEntries(t *testing.T) {
	e := cacheTestExecutor()
	e.SetStatementCacheSize(4)
	if got := e.StatementCacheSize(); got != 4 {
		t.Fatalf("size = %d, want 4", got)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Query(fmt.Sprintf("SELECT V FROM T WHERE V >= %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.stmts.entries(); n != 4 {
		t.Fatalf("cache holds %d entries, want 4", n)
	}
	// The most recent statements hit; evicted ones miss.
	h0, m0 := e.StatementCacheStats()
	if _, err := e.Query("SELECT V FROM T WHERE V >= 9"); err != nil {
		t.Fatal(err)
	}
	if h, _ := e.StatementCacheStats(); h != h0+1 {
		t.Fatalf("recent statement missed the cache (hits %d -> %d)", h0, h)
	}
	if _, err := e.Query("SELECT V FROM T WHERE V >= 0"); err != nil {
		t.Fatal(err)
	}
	if _, m := e.StatementCacheStats(); m != m0+1 {
		t.Fatalf("evicted statement hit the cache (misses %d -> %d)", m0, m)
	}
}

func TestSetStatementCacheSizeShrinkPreservesMRU(t *testing.T) {
	e := cacheTestExecutor()
	for i := 0; i < 6; i++ {
		if _, err := e.Query(fmt.Sprintf("SELECT V FROM T WHERE V >= %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	e.SetStatementCacheSize(2)
	if n := e.stmts.entries(); n != 2 {
		t.Fatalf("cache holds %d entries after shrink, want 2", n)
	}
	h0, _ := e.StatementCacheStats()
	if _, err := e.Query("SELECT V FROM T WHERE V >= 5"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("SELECT V FROM T WHERE V >= 4"); err != nil {
		t.Fatal(err)
	}
	if h, _ := e.StatementCacheStats(); h != h0+2 {
		t.Fatalf("MRU entries not preserved across shrink (hits %d -> %d)", h0, h)
	}
}

func TestSetStatementCacheSizeReenablesDisabledCache(t *testing.T) {
	e := cacheTestExecutor()
	e.SetStatementCaching(false)
	if got := e.StatementCacheSize(); got != 0 {
		t.Fatalf("disabled cache size = %d, want 0", got)
	}
	e.SetStatementCacheSize(16)
	if got := e.StatementCacheSize(); got != 16 {
		t.Fatalf("size after re-enable = %d, want 16", got)
	}
	if _, err := e.Query("SELECT V FROM T"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("SELECT V FROM T"); err != nil {
		t.Fatal(err)
	}
	if h, _ := e.StatementCacheStats(); h != 1 {
		t.Fatalf("hits = %d, want 1 after repeat query", h)
	}
}

func TestSetStatementCacheSizeNonPositiveRestoresDefault(t *testing.T) {
	e := cacheTestExecutor()
	e.SetStatementCacheSize(-3)
	if got := e.StatementCacheSize(); got != DefaultStatementCacheSize {
		t.Fatalf("size = %d, want default %d", got, DefaultStatementCacheSize)
	}
}
