package sqlexec_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"genedit/internal/sqldb"
	"genedit/internal/sqlexec"
	"genedit/internal/workload"
)

// Randomized three-engine parity over the real workload databases (seeded,
// deterministic), in the style of join_parity_test.go: every generated
// statement — including deliberately error-prone ones — must produce
// identical columns, rows and error text on the interpreter, the serial
// compiled path, and the vectorized batch path. The batch engine runs with
// a deliberately tiny morsel size plus several workers, so morsel
// boundaries, selection hand-off and the cross-morsel error merge are
// exercised by every multi-row statement. The suite's gold SQL is replayed
// the same way, so the EX tables cannot drift between engines.

var paritySuite = workload.NewSuite(1)

// parityMorselSize is intentionally tiny so even small tables span several
// morsels in the parity suites.
const parityMorselSize = 7

// assertExecParity runs sql on all three engines and asserts full output and
// error-text equality, with the interpreter as the reference.
func assertExecParity(t *testing.T, db *sqldb.Database, sql string) {
	t.Helper()
	interp := sqlexec.New(db)
	interp.SetCompiledExec(false)
	compiled := sqlexec.New(db)
	compiled.SetBatchExec(false)
	batch := sqlexec.New(db)
	batch.SetMorselSize(parityMorselSize)
	batch.SetMorselWorkers(4)

	ires, ierr := interp.Query(sql)
	for _, eng := range []struct {
		name string
		exec *sqlexec.Executor
	}{{"compiled", compiled}, {"batch", batch}} {
		res, err := eng.exec.Query(sql)
		if (err == nil) != (ierr == nil) {
			t.Fatalf("error parity broken for %q:\n  %s: %v\n  interpreted: %v", sql, eng.name, err, ierr)
		}
		if err != nil {
			if err.Error() != ierr.Error() {
				t.Fatalf("error text drift for %q:\n  %s: %q\n  interpreted: %q", sql, eng.name, err, ierr)
			}
			continue
		}
		if fmt.Sprint(res.Columns) != fmt.Sprint(ires.Columns) {
			t.Fatalf("column drift for %q: %s %v, interpreted %v", sql, eng.name, res.Columns, ires.Columns)
		}
		if len(res.Rows) != len(ires.Rows) {
			t.Fatalf("row count drift for %q: %s %d, interpreted %d", sql, eng.name, len(res.Rows), len(ires.Rows))
		}
		for i := range res.Rows {
			for j := range res.Rows[i] {
				cv, iv := res.Rows[i][j], ires.Rows[i][j]
				if cv.IsNull() != iv.IsNull() || (!cv.IsNull() && !cv.Equal(iv)) {
					t.Fatalf("row %d col %d drift for %q: %s %v, interpreted %v",
						i, j, sql, eng.name, cv.String(), iv.String())
				}
			}
		}
	}
}

// TestWorkloadGoldParity replays every gold statement of the eval suite on
// both engines.
func TestWorkloadGoldParity(t *testing.T) {
	for _, c := range paritySuite.Cases {
		assertExecParity(t, paritySuite.Databases[c.DB], c.GoldSQL)
	}
}

// sqlGen generates random SELECTs against one database's schema. The
// generator leans toward valid queries but deliberately produces a share of
// semantically failing ones (bad casts, arithmetic on text, unknown
// columns) so error parity is fuzzed too.
type sqlGen struct {
	r  *rand.Rand
	db *sqldb.Database
}

func (g *sqlGen) table() *sqldb.Table {
	tables := g.db.Tables()
	return tables[g.r.Intn(len(tables))]
}

func (g *sqlGen) column(t *sqldb.Table) string {
	return t.Columns[g.r.Intn(len(t.Columns))].Name
}

func (g *sqlGen) literal() string {
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprint(g.r.Intn(200))
	case 1:
		return fmt.Sprintf("%.1f", g.r.Float64()*100)
	case 2:
		return "'v" + fmt.Sprint(g.r.Intn(20)) + "'"
	default:
		return "NULL"
	}
}

// scalar returns a random scalar expression over t's columns; depth bounds
// recursion.
func (g *sqlGen) scalar(t *sqldb.Table, qual string, depth int) string {
	col := func() string {
		c := g.column(t)
		if qual != "" {
			return qual + "." + c
		}
		return c
	}
	if depth <= 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return col()
		}
		return g.literal()
	}
	switch g.r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s %s %s)", g.scalar(t, qual, depth-1),
			[]string{"+", "-", "*", "/", "%"}[g.r.Intn(5)], g.scalar(t, qual, depth-1))
	case 1:
		return fmt.Sprintf("COALESCE(%s, %s)", col(), g.literal())
	case 2:
		return fmt.Sprintf("UPPER(%s)", col())
	case 3:
		return fmt.Sprintf("LENGTH(%s)", col())
	case 4:
		return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END",
			g.predicate(t, qual, depth-1), g.scalar(t, qual, depth-1), g.literal())
	case 5:
		return fmt.Sprintf("CAST(%s AS %s)", col(), []string{"INTEGER", "FLOAT", "TEXT"}[g.r.Intn(3)])
	case 6:
		return fmt.Sprintf("(%s || '-')", col())
	default:
		return fmt.Sprintf("ABS(%s)", g.scalar(t, qual, depth-1))
	}
}

func (g *sqlGen) predicate(t *sqldb.Table, qual string, depth int) string {
	col := func() string {
		c := g.column(t)
		if qual != "" {
			return qual + "." + c
		}
		return c
	}
	base := func() string {
		switch g.r.Intn(6) {
		case 0:
			return fmt.Sprintf("%s %s %s", col(),
				[]string{"=", "<>", "<", "<=", ">", ">="}[g.r.Intn(6)], g.literal())
		case 1:
			return fmt.Sprintf("%s IS %sNULL", col(), []string{"", "NOT "}[g.r.Intn(2)])
		case 2:
			return fmt.Sprintf("%s IN (%s, %s, %s)", col(), g.literal(), g.literal(), g.literal())
		case 3:
			return fmt.Sprintf("%s BETWEEN %s AND %s", col(), fmt.Sprint(g.r.Intn(50)), fmt.Sprint(50+g.r.Intn(100)))
		case 4:
			return fmt.Sprintf("%s LIKE '%%%d%%'", col(), g.r.Intn(10))
		default:
			return fmt.Sprintf("%s %s %s", g.scalar(t, qual, 1),
				[]string{"=", "<", ">"}[g.r.Intn(3)], g.scalar(t, qual, 1))
		}
	}
	if depth <= 0 || g.r.Intn(2) == 0 {
		return base()
	}
	op := []string{"AND", "OR"}[g.r.Intn(2)]
	return fmt.Sprintf("(%s %s %s)", base(), op, g.predicate(t, qual, depth-1))
}

// statement builds one random SELECT; shape is chosen among scans,
// aggregates, joins, DISTINCT, compound selects and subquery filters.
func (g *sqlGen) statement() string {
	t := g.table()
	var sb strings.Builder
	switch g.r.Intn(10) {
	case 0, 1: // plain scan with expressions
		sb.WriteString("SELECT ")
		n := 1 + g.r.Intn(3)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.scalar(t, "", 2))
		}
		fmt.Fprintf(&sb, " FROM %s", t.Name)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&sb, " WHERE %s", g.predicate(t, "", 2))
		}
	case 2, 3: // aggregate / group by / having
		c1, c2 := g.column(t), g.column(t)
		agg := []string{"COUNT(*)", "SUM(" + c2 + ")", "AVG(" + c2 + ")", "MIN(" + c2 + ")", "MAX(" + c2 + ")",
			"COUNT(DISTINCT " + c2 + ")"}[g.r.Intn(6)]
		fmt.Fprintf(&sb, "SELECT %s, %s AS A FROM %s", c1, agg, t.Name)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&sb, " WHERE %s", g.predicate(t, "", 1))
		}
		fmt.Fprintf(&sb, " GROUP BY %s", c1)
		if g.r.Intn(3) == 0 {
			sb.WriteString(" HAVING COUNT(*) >= 1")
		}
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&sb, " ORDER BY A DESC, %s", c1)
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(&sb, " LIMIT %d", 1+g.r.Intn(10))
			}
		}
	case 4, 5: // join with single-side predicates (pushdown territory)
		t2 := g.table()
		kind := []string{"JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN"}[g.r.Intn(4)]
		on := fmt.Sprintf("a.%s = b.%s", g.column(t), g.column(t2))
		if g.r.Intn(4) == 0 {
			// Error-prone ON expressions: arithmetic or CAST over arbitrary
			// columns may fail per-row, which must disable pushdown and
			// surface identically on both engines.
			on = []string{
				fmt.Sprintf("a.%s + 0 = b.%s", g.column(t), g.column(t2)),
				fmt.Sprintf("CAST(a.%s AS INTEGER) = b.%s", g.column(t), g.column(t2)),
			}[g.r.Intn(2)]
		}
		fmt.Fprintf(&sb, "SELECT a.%s, b.%s FROM %s a %s %s b ON %s",
			g.column(t), g.column(t2), t.Name, kind, t2.Name, on)
		if g.r.Intn(2) == 0 {
			side := []struct {
				q string
				t *sqldb.Table
			}{{"a", t}, {"b", t2}}[g.r.Intn(2)]
			fmt.Fprintf(&sb, " WHERE %s", g.predicate(side.t, side.q, 1))
		}
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&sb, " ORDER BY 1, 2 LIMIT %d", 1+g.r.Intn(20))
		}
	case 6: // DISTINCT + ORDER BY + LIMIT/OFFSET
		fmt.Fprintf(&sb, "SELECT DISTINCT %s FROM %s ORDER BY 1", g.column(t), t.Name)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&sb, " LIMIT %d OFFSET %d", g.r.Intn(8), g.r.Intn(4))
		}
	case 7: // compound select
		t2 := g.table()
		fmt.Fprintf(&sb, "SELECT %s FROM %s %s SELECT %s FROM %s",
			g.column(t), t.Name,
			[]string{"UNION", "UNION ALL", "EXCEPT", "INTERSECT"}[g.r.Intn(4)],
			g.column(t2), t2.Name)
	case 8: // scalar subquery / IN subquery
		t2 := g.table()
		c2 := g.column(t2)
		if g.r.Intn(2) == 0 {
			fmt.Fprintf(&sb, "SELECT %s FROM %s WHERE %s IN (SELECT %s FROM %s)",
				g.column(t), t.Name, g.column(t), c2, t2.Name)
		} else {
			fmt.Fprintf(&sb, "SELECT %s, (SELECT MAX(%s) FROM %s) FROM %s",
				g.column(t), c2, t2.Name, t.Name)
		}
	default: // CTE feeding a scan
		c1, c2 := g.column(t), g.column(t)
		fmt.Fprintf(&sb, "WITH C AS (SELECT %s AS X, %s AS Y FROM %s WHERE %s) SELECT X, Y FROM C ORDER BY X, Y LIMIT %d",
			c1, c2, t.Name, g.predicate(t, "", 1), 1+g.r.Intn(12))
	}
	return sb.String()
}

// TestRandomizedCompiledParity fuzzes generated SELECTs over every workload
// database with a fixed seed. Failures print the offending statement, so a
// divergence is immediately reproducible.
func TestRandomizedCompiledParity(t *testing.T) {
	names := make([]string, 0, len(paritySuite.Databases))
	for name := range paritySuite.Databases {
		names = append(names, name)
	}
	sort.Strings(names)
	const perDB = 150
	for _, name := range names {
		db := paritySuite.Databases[name]
		g := &sqlGen{r: rand.New(rand.NewSource(int64(len(name)) * 1009)), db: db}
		for i := 0; i < perDB; i++ {
			assertExecParity(t, db, g.statement())
		}
	}
}
