package sqlexec

import (
	"sync"

	"genedit/internal/sqldb"
)

// Allocation pooling for the executor hot path. Two reuse strategies:
//
//   - keyBufPool recycles the scratch byte buffers that composite-key
//     hashing sites (hash-join buckets, DISTINCT, GROUP BY, compound set
//     ops) fill and immediately convert to a map-key string. The buffer
//     itself never escapes — only the interned string does — so pooling is
//     safe and removes one grow-to-size allocation per hashing site per
//     query.
//   - rowSlab chunk-allocates the value slots of projected output rows.
//     Rows DO escape (into Results and, through the generation cache, into
//     long-lived Records), so they are never pooled or reused — the slab
//     only amortizes allocation count by carving many rows out of one
//     backing array. A slab is per-query-scope state, never shared across
//     goroutines.
//
// Pooling rule of thumb, enforced by this split: scratch that dies inside
// one Query call may be pooled; anything reachable from a Result must come
// from ordinary (or slab) allocation.

// keyBufPool holds *[]byte scratch buffers for composite-key construction.
var keyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

func getKeyBuf() *[]byte { return keyBufPool.Get().(*[]byte) }

func putKeyBuf(b *[]byte) {
	// Oversized buffers (a query with huge string keys) are dropped rather
	// than pinned in the pool forever.
	if cap(*b) > 1<<16 {
		return
	}
	*b = (*b)[:0]
	keyBufPool.Put(b)
}

// Slab chunk sizing: chunks start small (a narrow query with a handful of
// output rows should not pin a big backing array) and double per refill, so
// a large scan converges on one allocation per rowSlabChunkMax slots.
const (
	rowSlabChunkMin = 64
	rowSlabChunkMax = 4096
)

// rowSlab carves fixed-width rows out of chunked backing arrays. take
// returns a full-length, full-capacity slice (three-index sliced) so an
// accidental append can never bleed into a neighboring row.
type rowSlab struct {
	buf   []sqldb.Value
	chunk int
}

func (s *rowSlab) take(n int) sqldb.Row {
	if n <= 0 {
		return sqldb.Row{}
	}
	if len(s.buf) < n {
		switch {
		case s.chunk == 0:
			s.chunk = rowSlabChunkMin
		case s.chunk < rowSlabChunkMax:
			s.chunk *= 2
		}
		size := s.chunk
		if n > size {
			size = n
		}
		s.buf = make([]sqldb.Value, size)
	}
	r := s.buf[:n:n]
	s.buf = s.buf[n:]
	return sqldb.Row(r)
}
