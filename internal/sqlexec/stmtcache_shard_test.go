package sqlexec

import (
	"fmt"
	"sync"
	"testing"

	"genedit/internal/sqldb"
)

func TestStmtShardCount(t *testing.T) {
	cases := []struct{ cap, want int }{
		{1, 1}, {4, 1}, {31, 1}, {32, 1}, {63, 1}, {64, 2},
		{128, 4}, {512, 16}, {10000, 16},
	}
	for _, c := range cases {
		if got := stmtShardCount(c.cap); got != c.want {
			t.Errorf("stmtShardCount(%d) = %d, want %d", c.cap, got, c.want)
		}
	}
}

func TestStmtCacheShardBudgetsSumToCapacity(t *testing.T) {
	for _, capacity := range []int{1, 5, 32, 100, 512, 513, 1000} {
		shards := newStmtShards(capacity)
		total := 0
		for i := range shards {
			total += shards[i].cap
		}
		if total != capacity {
			t.Errorf("capacity %d: shard budgets sum to %d", capacity, total)
		}
	}
}

// TestStmtCacheDefaultIsSharded pins the serving-deployment layout: the
// default 512-entry cache stripes across 16 shards so concurrent Query calls
// do not serialize on one mutex.
func TestStmtCacheDefaultIsSharded(t *testing.T) {
	e := cacheTestExecutor()
	if n := len(e.stmts.shards); n != maxStmtCacheShards {
		t.Fatalf("default cache has %d shards, want %d", n, maxStmtCacheShards)
	}
	if e.stmts.capacity() != DefaultStatementCacheSize {
		t.Fatalf("default capacity = %d", e.stmts.capacity())
	}
}

// TestStmtCacheShardedBoundsEntries fills a multi-shard cache far past its
// bound and checks the total never exceeds it, while the hottest statements
// keep hitting.
func TestStmtCacheShardedBoundsEntries(t *testing.T) {
	e := cacheTestExecutor()
	e.SetStatementCacheSize(64) // 2 shards of 32
	hot := make([]string, 8)
	for i := range hot {
		hot[i] = fmt.Sprintf("SELECT V FROM T WHERE V >= %d", i)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			if _, err := e.Query(fmt.Sprintf("SELECT V FROM T WHERE V >= %d AND V < %d", round, i+10)); err != nil {
				t.Fatal(err)
			}
		}
		// Hot statements run after the churn, so at round end they are the
		// most recent entries in their shards.
		for _, sql := range hot {
			if _, err := e.Query(sql); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := e.stmts.entries(); n > 64 {
		t.Fatalf("cache holds %d entries, bound is 64", n)
	}
	// Hot statements were re-queried each round, so they are globally recent
	// within their shards and must still hit.
	h0, _ := e.StatementCacheStats()
	for _, sql := range hot {
		if _, err := e.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if h, _ := e.StatementCacheStats(); h != h0+uint64(len(hot)) {
		t.Fatalf("hot statements missed after churn (hits %d -> %d, want +%d)", h0, h, len(hot))
	}
}

// TestStmtCacheResizeAcrossShardCounts grows a single-shard cache into a
// multi-shard one and shrinks back, checking entries survive a grow and the
// globally most recent survive a shrink.
func TestStmtCacheResizeAcrossShardCounts(t *testing.T) {
	e := cacheTestExecutor()
	e.SetStatementCacheSize(8) // 1 shard
	stmts := make([]string, 8)
	for i := range stmts {
		stmts[i] = fmt.Sprintf("SELECT V FROM T WHERE V >= %d", i)
		if _, err := e.Query(stmts[i]); err != nil {
			t.Fatal(err)
		}
	}
	e.SetStatementCacheSize(128) // 4 shards: grow must keep everything
	h0, _ := e.StatementCacheStats()
	for _, sql := range stmts {
		if _, err := e.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	h1, _ := e.StatementCacheStats()
	if h1 != h0+uint64(len(stmts)) {
		t.Fatalf("grow dropped entries (hits %d -> %d, want +%d)", h0, h1, len(stmts))
	}
	e.SetStatementCacheSize(3) // back to 1 shard: keep the 3 most recent uses
	if n := e.stmts.entries(); n != 3 {
		t.Fatalf("cache holds %d entries after shrink, want 3", n)
	}
	for _, sql := range stmts[len(stmts)-3:] {
		if _, err := e.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	h2, _ := e.StatementCacheStats()
	if h2 != h1+3 {
		t.Fatalf("shrink did not keep the most recently used (hits %d -> %d, want +3)", h1, h2)
	}
}

// TestStmtCacheConcurrentQuery hammers one shared executor from many
// goroutines mixing hits and misses; run under -race this checks the shard
// locking, and afterwards every result must still be correct.
func TestStmtCacheConcurrentQuery(t *testing.T) {
	db := sqldb.NewDatabase("d")
	tbl := sqldb.NewTable("T", sqldb.Column{Name: "V", Type: "INTEGER"})
	for i := 0; i < 10; i++ {
		tbl.MustAppend(sqldb.Int(int64(i)))
	}
	db.AddTable(tbl)
	e := New(db)
	e.SetStatementCacheSize(64)

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				want := (w + i) % 10
				res, err := e.Query(fmt.Sprintf("SELECT COUNT(*) FROM T WHERE V < %d", want))
				if err != nil {
					errs <- err
					return
				}
				if n, _ := res.Rows[0][0].AsInt(); int(n) != want {
					errs <- fmt.Errorf("worker %d: COUNT = %d, want %d", w, n, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	hits, misses := e.StatementCacheStats()
	if hits == 0 || misses == 0 {
		t.Fatalf("expected both hits and misses, got hits=%d misses=%d", hits, misses)
	}
}
