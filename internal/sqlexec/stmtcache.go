package sqlexec

import (
	"container/list"
	"sync"

	"genedit/internal/sqlparse"
)

// DefaultStatementCacheSize bounds the per-executor parsed-statement cache.
// The regeneration loop, gold evaluation and regression suite re-execute a
// small working set of SQL strings far more often than they introduce new
// ones, so a few hundred entries cover the hot set.
const DefaultStatementCacheSize = 512

// stmtCache is a concurrency-safe LRU of parsed statements and their
// compiled plans, keyed by the raw SQL text. Cached ASTs and plans are
// shared across executions; evaluation never mutates a parsed statement and
// compiled programs are stateless closures, so reuse is safe (including
// from concurrent eval workers).
type stmtCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; element values are *stmtEntry
	items map[string]*list.Element

	hits   uint64
	misses uint64
}

type stmtEntry struct {
	sql  string
	stmt *sqlparse.SelectStmt
	plan *stmtPlan // nil until first compiled execution
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		capacity = DefaultStatementCacheSize
	}
	return &stmtCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *stmtCache) get(sql string) (*sqlparse.SelectStmt, *stmtPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[sql]
	if !ok {
		c.misses++
		return nil, nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	ent := el.Value.(*stmtEntry)
	return ent.stmt, ent.plan, true
}

func (c *stmtCache) put(sql string, stmt *sqlparse.SelectStmt, plan *stmtPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[sql]; ok {
		ent := el.Value.(*stmtEntry)
		ent.stmt = stmt
		ent.plan = plan
		c.order.MoveToFront(el)
		return
	}
	c.items[sql] = c.order.PushFront(&stmtEntry{sql: sql, stmt: stmt, plan: plan})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*stmtEntry).sql)
	}
}

// setPlan attaches a compiled plan to an existing entry (a cache populated
// before compiled execution was enabled, or by a concurrent miss). It does
// not count as a use, and is a no-op if the entry has been evicted.
func (c *stmtCache) setPlan(sql string, plan *stmtPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[sql]; ok {
		el.Value.(*stmtEntry).plan = plan
	}
}

func (c *stmtCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// setCapacity rebounds the LRU, evicting least-recently-used entries when
// shrinking. Hit/miss counters are preserved.
func (c *stmtCache) setCapacity(capacity int) {
	if capacity <= 0 {
		capacity = DefaultStatementCacheSize
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*stmtEntry).sql)
	}
}

// capacity returns the current LRU bound.
func (c *stmtCache) capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

// SetStatementCaching enables or disables the executor's parsed-statement
// cache. Caching is on by default; disabling exists for benchmarks and for
// callers that stream unbounded distinct SQL.
func (e *Executor) SetStatementCaching(enabled bool) {
	if enabled {
		if e.stmts == nil {
			e.stmts = newStmtCache(DefaultStatementCacheSize)
		}
		return
	}
	e.stmts = nil
}

// SetStatementCacheSize rebounds the parsed-statement LRU to n entries,
// preserving the most recently used statements when shrinking. n <= 0
// restores DefaultStatementCacheSize. Calling it on an executor whose cache
// was disabled re-enables caching at the given size. Like the other
// configuration knobs it is not synchronized against concurrent Query calls
// — size the cache before sharing the executor across goroutines.
func (e *Executor) SetStatementCacheSize(n int) {
	if e.stmts == nil {
		if n <= 0 {
			n = DefaultStatementCacheSize
		}
		e.stmts = newStmtCache(n)
		return
	}
	e.stmts.setCapacity(n)
}

// StatementCacheSize reports the LRU bound; 0 when caching is disabled.
func (e *Executor) StatementCacheSize() int {
	if e.stmts == nil {
		return 0
	}
	return e.stmts.capacity()
}

// StatementCacheStats reports cache hits and misses since construction; both
// are zero when caching is disabled.
func (e *Executor) StatementCacheStats() (hits, misses uint64) {
	if e.stmts == nil {
		return 0, 0
	}
	return e.stmts.stats()
}
