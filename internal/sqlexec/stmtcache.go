package sqlexec

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"

	"genedit/internal/sqlparse"
)

// DefaultStatementCacheSize bounds the per-executor parsed-statement cache.
// The regeneration loop, gold evaluation and regression suite re-execute a
// small working set of SQL strings far more often than they introduce new
// ones, so a few hundred entries cover the hot set.
const DefaultStatementCacheSize = 512

// Shard layout. A single mutex-guarded LRU serializes every concurrent
// Query on one lock — under the parallel serving path that lock, not the
// work, becomes the bottleneck. The cache is therefore striped into up to
// maxStmtCacheShards independent shards (FNV-1a on the SQL text selects the
// shard), each an exact LRU with its own mutex. Small capacities collapse to
// fewer shards (minStmtShardCap entries per shard at least), so a tightly
// bounded cache keeps exact global LRU behavior instead of starving shards
// with a zero or one-entry budget.
const (
	maxStmtCacheShards = 16
	minStmtShardCap    = 32
)

// stmtCache is a concurrency-safe sharded LRU of parsed statements and their
// compiled plans, keyed by the raw SQL text. Cached ASTs and plans are
// shared across executions; evaluation never mutates a parsed statement and
// compiled programs are stateless closures, so reuse is safe (including
// from concurrent eval workers). Hot-path operations (get/put/setPlan) take
// only the owning shard's lock; a global atomic clock stamps each use so
// resizing can preserve the most recently used entries across a shard-count
// change.
type stmtCache struct {
	clock  atomic.Uint64 // global recency stamps for MRU-preserving resize
	cap    int           // total entry bound across shards
	shards []stmtShard
}

// stmtShard is one lock stripe. The trailing pad keeps adjacent shards'
// mutexes and counters out of one cache line, so contended shards do not
// false-share.
type stmtShard struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; element values are *stmtEntry
	items map[string]*list.Element

	hits   uint64
	misses uint64
	_      [64]byte
}

type stmtEntry struct {
	sql  string
	stmt *sqlparse.SelectStmt
	plan *stmtPlan // nil until first compiled execution
	// batch is the lazily-built vectorized plan riding alongside the row
	// plan; batchTried distinguishes "not yet attempted" (false, nil) from
	// "attempted, unsupported" (true, nil) so the support gate runs once per
	// statement. A non-nil batch can still be recompiled when its bound
	// snapshot goes stale — see Executor.batchFor.
	batch      *batchPlan
	batchTried bool
	lastUse    uint64 // global clock stamp of the most recent get/put
}

// cachedStmt is the lock-free view of one cache entry get returns: the
// fields are copied out under the shard lock, so callers never touch the
// live entry.
type cachedStmt struct {
	stmt       *sqlparse.SelectStmt
	plan       *stmtPlan
	batch      *batchPlan
	batchTried bool
}

// stmtShardCount picks how many stripes a capacity supports: one per
// minStmtShardCap entries, capped at maxStmtCacheShards and floored at one.
// The default 512 yields 16 shards of 32 entries each.
func stmtShardCount(capacity int) int {
	n := capacity / minStmtShardCap
	if n < 1 {
		n = 1
	}
	if n > maxStmtCacheShards {
		n = maxStmtCacheShards
	}
	return n
}

// newStmtShards builds the stripe array for a total capacity, distributing
// the entry budget as evenly as possible (earlier shards absorb the
// remainder).
func newStmtShards(capacity int) []stmtShard {
	n := stmtShardCount(capacity)
	shards := make([]stmtShard, n)
	base, rem := capacity/n, capacity%n
	for i := range shards {
		shards[i].cap = base
		if i < rem {
			shards[i].cap++
		}
		shards[i].order = list.New()
		shards[i].items = make(map[string]*list.Element, shards[i].cap)
	}
	return shards
}

func newStmtCache(capacity int) *stmtCache {
	if capacity <= 0 {
		capacity = DefaultStatementCacheSize
	}
	return &stmtCache{cap: capacity, shards: newStmtShards(capacity)}
}

// FNV-1a over the SQL text selects the shard; the same constants as
// hash/fnv's New64a.
const (
	stmtFNVOffset uint64 = 14695981039346656037
	stmtFNVPrime  uint64 = 1099511628211
)

func (c *stmtCache) shardFor(sql string) *stmtShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := stmtFNVOffset
	for i := 0; i < len(sql); i++ {
		h ^= uint64(sql[i])
		h *= stmtFNVPrime
	}
	return &c.shards[h%uint64(len(c.shards))]
}

func (c *stmtCache) get(sql string) (cachedStmt, bool) {
	sh := c.shardFor(sql)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[sql]
	if !ok {
		sh.misses++
		return cachedStmt{}, false
	}
	sh.hits++
	sh.order.MoveToFront(el)
	ent := el.Value.(*stmtEntry)
	ent.lastUse = c.clock.Add(1)
	return cachedStmt{stmt: ent.stmt, plan: ent.plan, batch: ent.batch, batchTried: ent.batchTried}, true
}

func (c *stmtCache) put(sql string, stmt *sqlparse.SelectStmt, plan *stmtPlan) {
	sh := c.shardFor(sql)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[sql]; ok {
		ent := el.Value.(*stmtEntry)
		ent.stmt = stmt
		ent.plan = plan
		ent.lastUse = c.clock.Add(1)
		sh.order.MoveToFront(el)
		return
	}
	ent := &stmtEntry{sql: sql, stmt: stmt, plan: plan, lastUse: c.clock.Add(1)}
	sh.items[sql] = sh.order.PushFront(ent)
	sh.evictOverCap()
}

// evictOverCap drops least-recently-used entries until the shard fits its
// budget. Callers hold sh.mu.
func (sh *stmtShard) evictOverCap() {
	for sh.order.Len() > sh.cap {
		oldest := sh.order.Back()
		sh.order.Remove(oldest)
		delete(sh.items, oldest.Value.(*stmtEntry).sql)
	}
}

// setPlan attaches a compiled plan to an existing entry (a cache populated
// before compiled execution was enabled, or by a concurrent miss). It does
// not count as a use, and is a no-op if the entry has been evicted.
func (c *stmtCache) setPlan(sql string, plan *stmtPlan) {
	sh := c.shardFor(sql)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[sql]; ok {
		el.Value.(*stmtEntry).plan = plan
	}
}

// setBatch records a batch-compilation outcome — a plan, or nil for
// "unsupported" — marking the attempt either way. Not a use; a no-op if the
// entry has been evicted.
func (c *stmtCache) setBatch(sql string, batch *batchPlan) {
	sh := c.shardFor(sql)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[sql]; ok {
		ent := el.Value.(*stmtEntry)
		ent.batch = batch
		ent.batchTried = true
	}
}

func (c *stmtCache) stats() (hits, misses uint64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}

// entries reports the total number of cached statements across shards.
func (c *stmtCache) entries() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// setCapacity rebounds the sharded LRU, preserving the most recently used
// entries when shrinking: every entry is redistributed into the new shard
// layout in most-recent-first order (the per-entry clock stamps give a
// total recency order across shards), each landing at the back of its new
// shard, and once a shard's budget fills, older entries bound for it are
// dropped. Within each new shard exactly its most recent entries survive;
// when the new layout is a single shard (any capacity below
// 2*minStmtShardCap, which covers every tightly bounded configuration)
// that is exactly the global MRU set. Across multiple new shards the kept
// set is per-shard MRU — a hash-skewed working set may retain a slightly
// colder entry in an underfull shard over a hotter one in a full shard.
// Hit/miss counters are preserved. Like the executor's other configuration
// knobs it is not synchronized against concurrent Query calls — size the
// cache before sharing the executor.
func (c *stmtCache) setCapacity(capacity int) {
	if capacity <= 0 {
		capacity = DefaultStatementCacheSize
	}
	if capacity == c.cap {
		return
	}
	var all []*stmtEntry
	var hits, misses uint64
	for i := range c.shards {
		sh := &c.shards[i]
		hits += sh.hits
		misses += sh.misses
		for el := sh.order.Front(); el != nil; el = el.Next() {
			all = append(all, el.Value.(*stmtEntry))
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].lastUse > all[j].lastUse })
	c.cap = capacity
	c.shards = newStmtShards(capacity)
	c.shards[0].hits = hits
	c.shards[0].misses = misses
	for _, ent := range all {
		sh := c.shardFor(ent.sql)
		if sh.order.Len() >= sh.cap {
			continue
		}
		sh.items[ent.sql] = sh.order.PushBack(ent)
	}
}

// capacity returns the current total LRU bound.
func (c *stmtCache) capacity() int { return c.cap }

// SetStatementCaching enables or disables the executor's parsed-statement
// cache. Caching is on by default; disabling exists for benchmarks and for
// callers that stream unbounded distinct SQL.
func (e *Executor) SetStatementCaching(enabled bool) {
	if enabled {
		if e.stmts == nil {
			e.stmts = newStmtCache(DefaultStatementCacheSize)
		}
		return
	}
	e.stmts = nil
}

// SetStatementCacheSize rebounds the parsed-statement LRU to n entries,
// preserving the most recently used statements when shrinking. n <= 0
// restores DefaultStatementCacheSize. Calling it on an executor whose cache
// was disabled re-enables caching at the given size. Like the other
// configuration knobs it is not synchronized against concurrent Query calls
// — size the cache before sharing the executor across goroutines.
func (e *Executor) SetStatementCacheSize(n int) {
	if e.stmts == nil {
		if n <= 0 {
			n = DefaultStatementCacheSize
		}
		e.stmts = newStmtCache(n)
		return
	}
	e.stmts.setCapacity(n)
}

// StatementCacheSize reports the LRU bound; 0 when caching is disabled.
func (e *Executor) StatementCacheSize() int {
	if e.stmts == nil {
		return 0
	}
	return e.stmts.capacity()
}

// StatementCacheStats reports cache hits and misses since construction; both
// are zero when caching is disabled.
func (e *Executor) StatementCacheStats() (hits, misses uint64) {
	if e.stmts == nil {
		return 0, 0
	}
	return e.stmts.stats()
}
