package sqlexec

import (
	"fmt"
	"math"
	"strings"

	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// evalFuncCall dispatches window, aggregate and scalar function calls.
func evalFuncCall(fc *sqlparse.FuncCall, env *rowEnv) (sqldb.Value, error) {
	if fc.Over != nil {
		if env.windows == nil {
			return sqldb.Null(), execErrf("window function %s used outside SELECT or ORDER BY", fc.Name)
		}
		vals, ok := env.windows[fc]
		if !ok {
			return sqldb.Null(), execErrf("window function %s was not precomputed", fc.Name)
		}
		return vals[env.idx], nil
	}
	if isAggregateName(fc.Name) {
		if env.group == nil {
			return sqldb.Null(), execErrf("aggregate %s used outside an aggregation context", fc.Name)
		}
		return evalAggregate(fc, env, env.group)
	}
	return evalScalarFunc(fc, env)
}

// evalScalarFunc evaluates the scalar function library.
func evalScalarFunc(fc *sqlparse.FuncCall, env *rowEnv) (sqldb.Value, error) {
	args := make([]sqldb.Value, len(fc.Args))
	for i, a := range fc.Args {
		v, err := evalExpr(a, env)
		if err != nil {
			return sqldb.Null(), err
		}
		args[i] = v
	}
	return applyScalarFunc(fc.Name, args)
}

// applyScalarFunc is the value-level semantics of the scalar function
// library, shared by the interpreter and the compiled path.
func applyScalarFunc(name string, args []sqldb.Value) (sqldb.Value, error) {
	need := func(n int) error {
		if len(args) != n {
			return execErrf("%s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "NULLIF":
		if err := need(2); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		if !args[1].IsNull() && args[0].Equal(args[1]) {
			return sqldb.Null(), nil
		}
		return args[0], nil
	case "COALESCE", "IFNULL":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqldb.Null(), nil
	case "ABS":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		if args[0].K == sqldb.KindInt {
			if args[0].I < 0 {
				return sqldb.Int(-args[0].I), nil
			}
			return args[0], nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return sqldb.Null(), execErrf("ABS of non-numeric %q", args[0].String())
		}
		return sqldb.Float(math.Abs(f)), nil
	case "ROUND":
		if len(args) < 1 || len(args) > 2 {
			return sqldb.Null(), execErrf("ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return sqldb.Null(), execErrf("ROUND of non-numeric %q", args[0].String())
		}
		digits := int64(0)
		if len(args) == 2 {
			if args[1].IsNull() {
				return sqldb.Null(), nil
			}
			digits, _ = args[1].AsInt()
		}
		scale := math.Pow(10, float64(digits))
		return sqldb.Float(math.Round(f*scale) / scale), nil
	case "UPPER":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Str(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Str(strings.ToLower(args[0].String())), nil
	case "LENGTH", "LEN":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Int(int64(len(args[0].String()))), nil
	case "TRIM":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Str(strings.TrimSpace(args[0].String())), nil
	case "REPLACE":
		if err := need(3); err != nil {
			return sqldb.Null(), err
		}
		for _, a := range args {
			if a.IsNull() {
				return sqldb.Null(), nil
			}
		}
		return sqldb.Str(strings.ReplaceAll(args[0].String(), args[1].String(), args[2].String())), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) < 2 || len(args) > 3 {
			return sqldb.Null(), execErrf("SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		s := args[0].String()
		start, _ := args[1].AsInt()
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return sqldb.Str(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 {
			if args[2].IsNull() {
				return sqldb.Null(), nil
			}
			n, _ := args[2].AsInt()
			if n < 0 {
				n = 0
			}
			if int(n) < len(out) {
				out = out[:n]
			}
		}
		return sqldb.Str(out), nil
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				return sqldb.Null(), nil
			}
			sb.WriteString(a.String())
		}
		return sqldb.Str(sb.String()), nil
	case "TO_CHAR":
		if err := need(2); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		out, err := toChar(args[0].String(), args[1].String())
		if err != nil {
			return sqldb.Null(), err
		}
		return sqldb.Str(out), nil
	case "YEAR":
		return datePart(name, args, func(d dateParts) int { return d.year })
	case "MONTH":
		return datePart(name, args, func(d dateParts) int { return d.month })
	case "DAY":
		return datePart(name, args, func(d dateParts) int { return d.day })
	case "QUARTER":
		return datePart(name, args, func(d dateParts) int { return (d.month-1)/3 + 1 })
	case "SIGN":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return sqldb.Null(), execErrf("SIGN of non-numeric %q", args[0].String())
		}
		switch {
		case f > 0:
			return sqldb.Int(1), nil
		case f < 0:
			return sqldb.Int(-1), nil
		default:
			return sqldb.Int(0), nil
		}
	case "POWER", "POW":
		if err := need(2); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		b, ok1 := args[0].AsFloat()
		p, ok2 := args[1].AsFloat()
		if !ok1 || !ok2 {
			return sqldb.Null(), execErrf("POWER of non-numeric arguments")
		}
		return sqldb.Float(math.Pow(b, p)), nil
	case "SQRT":
		if err := need(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		f, ok := args[0].AsFloat()
		if !ok || f < 0 {
			return sqldb.Null(), execErrf("SQRT of invalid argument %q", args[0].String())
		}
		return sqldb.Float(math.Sqrt(f)), nil
	}
	return sqldb.Null(), execErrf("unknown function %s", name)
}

func datePart(name string, args []sqldb.Value, get func(dateParts) int) (sqldb.Value, error) {
	if len(args) != 1 {
		return sqldb.Null(), execErrf("%s expects 1 argument", name)
	}
	if args[0].IsNull() {
		return sqldb.Null(), nil
	}
	d, err := parseDate(args[0].String())
	if err != nil {
		return sqldb.Null(), err
	}
	return sqldb.Int(int64(get(d))), nil
}

// dateParts is a calendar date extracted from a stored string.
type dateParts struct {
	year, month, day int
}

// parseDate accepts "YYYY-MM-DD", "YYYY-MM-DD hh:mm:ss" and "YYYY-MM" forms,
// the formats the synthetic datasets store dates in.
func parseDate(s string) (dateParts, error) {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	fields := strings.Split(s, "-")
	bad := func() (dateParts, error) {
		return dateParts{}, execErrf("cannot interpret %q as a date", s)
	}
	if len(fields) < 2 || len(fields) > 3 {
		return bad()
	}
	var d dateParts
	if _, err := fmt.Sscanf(fields[0], "%d", &d.year); err != nil || len(fields[0]) != 4 {
		return bad()
	}
	if _, err := fmt.Sscanf(fields[1], "%d", &d.month); err != nil || d.month < 1 || d.month > 12 {
		return bad()
	}
	d.day = 1
	if len(fields) == 3 {
		if _, err := fmt.Sscanf(fields[2], "%d", &d.day); err != nil || d.day < 1 || d.day > 31 {
			return bad()
		}
	}
	return d, nil
}

// toChar formats a stored date string using a warehouse-style format model.
// Supported tokens: YYYY, MM, DD, Q, and double-quoted literal runs — enough
// for the paper's 'YYYY"Q"Q' quarter bucketing and common variants.
func toChar(dateStr, format string) (string, error) {
	d, err := parseDate(dateStr)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	i := 0
	for i < len(format) {
		switch {
		case strings.HasPrefix(format[i:], "YYYY"):
			fmt.Fprintf(&sb, "%04d", d.year)
			i += 4
		case strings.HasPrefix(format[i:], "MM"):
			fmt.Fprintf(&sb, "%02d", d.month)
			i += 2
		case strings.HasPrefix(format[i:], "DD"):
			fmt.Fprintf(&sb, "%02d", d.day)
			i += 2
		case format[i] == 'Q':
			fmt.Fprintf(&sb, "%d", (d.month-1)/3+1)
			i++
		case format[i] == '"':
			end := strings.IndexByte(format[i+1:], '"')
			if end < 0 {
				return "", execErrf("unterminated literal in TO_CHAR format %q", format)
			}
			sb.WriteString(format[i+1 : i+1+end])
			i += end + 2
		default:
			sb.WriteByte(format[i])
			i++
		}
	}
	return sb.String(), nil
}

// evalAggregate computes a non-windowed aggregate over a group of rows.
func evalAggregate(fc *sqlparse.FuncCall, env *rowEnv, group []sqldb.Row) (sqldb.Value, error) {
	// COUNT(*) needs no argument evaluation.
	if fc.Star {
		if fc.Name != "COUNT" {
			return sqldb.Null(), execErrf("%s(*) is not a valid aggregate", fc.Name)
		}
		return sqldb.Int(int64(len(group))), nil
	}
	if len(fc.Args) != 1 {
		return sqldb.Null(), execErrf("aggregate %s expects exactly 1 argument", fc.Name)
	}
	vals, err := collectAggregateArgs(group, fc.Distinct, func(row sqldb.Row) (sqldb.Value, error) {
		child := &rowEnv{exec: env.exec, sc: env.sc, cols: env.cols, row: row, outer: env.outer}
		return evalExpr(fc.Args[0], child)
	})
	if err != nil {
		return sqldb.Null(), err
	}
	return finishAggregate(fc.Name, vals)
}

// collectAggregateArgs accumulates an aggregate's non-NULL argument values
// over a group, deduplicating by Value.Key() when distinct. Both execution
// paths share it (differing only in how the per-row value is produced), so
// NULL and DISTINCT semantics cannot diverge.
func collectAggregateArgs(group []sqldb.Row, distinct bool,
	eval func(sqldb.Row) (sqldb.Value, error)) ([]sqldb.Value, error) {

	var vals []sqldb.Value
	var seen map[string]bool
	if distinct {
		seen = make(map[string]bool)
	}
	for _, row := range group {
		v, err := eval(row)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			continue
		}
		if distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	return vals, nil
}

// finishAggregate reduces the collected non-NULL argument values of an
// aggregate call, shared by the interpreter and the compiled path.
func finishAggregate(name string, vals []sqldb.Value) (sqldb.Value, error) {
	switch name {
	case "COUNT":
		return sqldb.Int(int64(len(vals))), nil
	case "SUM", "TOTAL":
		if len(vals) == 0 {
			if name == "TOTAL" {
				return sqldb.Float(0), nil
			}
			return sqldb.Null(), nil
		}
		return sumValues(vals)
	case "AVG":
		if len(vals) == 0 {
			return sqldb.Null(), nil
		}
		sum, err := sumValues(vals)
		if err != nil {
			return sqldb.Null(), err
		}
		f, _ := sum.AsFloat()
		return sqldb.Float(f / float64(len(vals))), nil
	case "MIN":
		return extremum(vals, -1), nil
	case "MAX":
		return extremum(vals, 1), nil
	}
	return sqldb.Null(), execErrf("unknown aggregate %s", name)
}

func sumValues(vals []sqldb.Value) (sqldb.Value, error) {
	allInt := true
	for _, v := range vals {
		if v.K != sqldb.KindInt {
			allInt = false
			break
		}
	}
	if allInt {
		var total int64
		for _, v := range vals {
			total += v.I
		}
		return sqldb.Int(total), nil
	}
	var total float64
	for _, v := range vals {
		f, ok := v.AsFloat()
		if !ok {
			return sqldb.Null(), execErrf("SUM of non-numeric value %q", v.String())
		}
		total += f
	}
	return sqldb.Float(total), nil
}

func extremum(vals []sqldb.Value, dir int) sqldb.Value {
	if len(vals) == 0 {
		return sqldb.Null()
	}
	best := vals[0]
	for _, v := range vals[1:] {
		c, ok := sqldb.Compare(v, best)
		if ok && c*dir > 0 {
			best = v
		}
	}
	return best
}
