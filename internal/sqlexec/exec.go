// Package sqlexec executes parsed SQL statements against the in-memory
// database in sqldb. It supports the full dialect of sqlparse: CTEs, joins,
// grouped and windowed aggregation, HAVING, compound selects, correlated
// subqueries and the scalar function library the paper's workloads use.
package sqlexec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// Executor runs queries against a database. Executors are safe for
// concurrent use: the database is read-only during query evaluation, the
// statement cache is internally synchronized, and compiled plans are
// stateless. The configuration knobs (SetHashJoin, SetStatementCaching,
// SetCompiledExec) are not synchronized — set them before sharing the
// executor across goroutines. Compiled plans bind column ordinals against
// table layouts, so schemas must not change under a live executor (rows may
// be appended freely).
type Executor struct {
	db    *sqldb.Database
	stmts *stmtCache
	// noHashJoin forces the nested-loop join; see SetHashJoin.
	noHashJoin bool
	// noCompiled forces the tree-walking interpreter; see SetCompiledExec.
	noCompiled bool
	// noBatch disables the vectorized batch engine; see SetBatchExec.
	noBatch bool
	// morselSize/morselWorkers configure batch execution; zero means the
	// defaults (DefaultMorselSize, GOMAXPROCS at query time).
	morselSize    int
	morselWorkers int
	// colMu guards colSnaps, the per-table columnar snapshot cache the batch
	// engine scans (see columnarFor).
	colMu    sync.RWMutex
	colSnaps map[string]*colSnap
}

// New returns an executor over db with statement caching, compiled
// execution and the hash-join fast path enabled.
func New(db *sqldb.Database) *Executor {
	return &Executor{db: db, stmts: newStmtCache(DefaultStatementCacheSize)}
}

// SetCompiledExec enables or disables compiled execution (on by default).
// Disabling selects the tree-walking interpreter, the reference path the
// compiled engine is property-tested against (identical rows, columns and
// error text).
func (e *Executor) SetCompiledExec(enabled bool) { e.noCompiled = !enabled }

// Result is a materialized query result.
type Result struct {
	Columns []string
	Rows    []sqldb.Row
}

// ExecError is a runtime (semantic) execution failure, distinct from a
// sqlparse.SyntaxError; the pipeline's self-correction operator branches on
// this distinction.
type ExecError struct{ Msg string }

func (e *ExecError) Error() string { return "execution error: " + e.Msg }

func execErrf(format string, args ...any) error {
	return &ExecError{Msg: fmt.Sprintf(format, args...)}
}

// Query parses and executes sql. Parsed statements and their compiled plans
// are cached (LRU, keyed by the raw SQL text), so the regeneration loop,
// gold evaluation and regression suite re-execute repeated SQL without
// re-lexing, re-parsing or re-compiling it.
func (e *Executor) Query(sql string) (*Result, error) {
	if e.stmts != nil {
		if cs, ok := e.stmts.get(sql); ok {
			if e.noCompiled {
				return e.evalStmt(cs.stmt, &scope{}, nil)
			}
			if cs.plan == nil {
				cs.plan = compileStmt(e.db, cs.stmt)
				e.stmts.setPlan(sql, cs.plan)
			}
			if !e.noBatch {
				if bp := e.batchFor(sql, cs, cs.plan); bp != nil {
					return e.runBatch(bp)
				}
			}
			return e.runStmt(cs.plan, &scope{})
		}
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if e.noCompiled {
		if e.stmts != nil {
			e.stmts.put(sql, stmt, nil)
		}
		return e.evalStmt(stmt, &scope{}, nil)
	}
	plan := compileStmt(e.db, stmt)
	if e.stmts != nil {
		e.stmts.put(sql, stmt, plan)
	}
	if !e.noBatch {
		bp := compileBatch(e, plan)
		if e.stmts != nil {
			e.stmts.setBatch(sql, bp)
		}
		if bp != nil {
			return e.runBatch(bp)
		}
	}
	return e.runStmt(plan, &scope{})
}

// Exec executes a parsed statement. With compiled execution enabled the
// statement is compiled on each call; use Query to hit the plan cache.
func (e *Executor) Exec(stmt *sqlparse.SelectStmt) (*Result, error) {
	if e.noCompiled {
		return e.evalStmt(stmt, &scope{}, nil)
	}
	plan := compileStmt(e.db, stmt)
	if !e.noBatch {
		if bp := compileBatch(e, plan); bp != nil {
			return e.runBatch(bp)
		}
	}
	return e.runStmt(plan, &scope{})
}

// scope carries CTE visibility; scopes chain lexically.
type scope struct {
	parent *scope
	ctes   map[string]*namedRelation
}

type namedRelation struct {
	columns []string
	rows    []sqldb.Row
}

func (s *scope) lookup(name string) *namedRelation {
	for cur := s; cur != nil; cur = cur.parent {
		if rel, ok := cur.ctes[strings.ToUpper(name)]; ok {
			return rel
		}
	}
	return nil
}

func (s *scope) child() *scope {
	return &scope{parent: s, ctes: make(map[string]*namedRelation)}
}

// bindCol is one addressable column of an intermediate relation.
type bindCol struct {
	qual string // table alias/name qualifier; upper-cased
	name string // column name; original case preserved
}

// relation is an intermediate table shape during evaluation.
type relation struct {
	cols []bindCol
	rows []sqldb.Row
}

// rowEnv is the evaluation environment for one row (or one group).
type rowEnv struct {
	exec    *Executor
	sc      *scope
	cols    []bindCol
	row     sqldb.Row
	group   []sqldb.Row // non-nil in aggregate context
	outer   *rowEnv     // enclosing query's row for correlated subqueries
	windows map[*sqlparse.FuncCall][]sqldb.Value
	idx     int // this row's index into window value slices
	// aggs holds pre-accumulated aggregate results for the batch engine's
	// group-finish phase: when set, compiled aggregate closures return the
	// stored result (value or error) instead of re-scanning env.group.
	aggs map[*sqlparse.FuncCall]aggRes
}

func (e *Executor) evalStmt(stmt *sqlparse.SelectStmt, sc *scope, outer *rowEnv) (*Result, error) {
	if len(stmt.With) > 0 {
		sc = sc.child()
		for _, cte := range stmt.With {
			res, err := e.evalStmt(cte.Select, sc, outer)
			if err != nil {
				return nil, err
			}
			cols := res.Columns
			if len(cte.Columns) > 0 {
				if len(cte.Columns) != len(res.Columns) {
					return nil, execErrf("CTE %s declares %d columns but select returns %d",
						cte.Name, len(cte.Columns), len(res.Columns))
				}
				cols = cte.Columns
			}
			sc.ctes[strings.ToUpper(cte.Name)] = &namedRelation{columns: cols, rows: res.Rows}
		}
	}

	if len(stmt.Compound) == 0 {
		return e.evalCoreFull(stmt.Core, sc, outer, stmt.OrderBy, stmt.Limit, stmt.Offset)
	}

	res, err := e.evalCoreFull(stmt.Core, sc, outer, nil, nil, nil)
	if err != nil {
		return nil, err
	}
	for _, part := range stmt.Compound {
		next, err := e.evalCoreFull(part.Core, sc, outer, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		res, err = combine(part.Op, res, next)
		if err != nil {
			return nil, err
		}
	}
	if err := orderResultByOutput(res, stmt.OrderBy); err != nil {
		return nil, err
	}
	return applyLimitOffset(res, stmt.Limit, stmt.Offset)
}

// evalCoreFull runs one select core including optional statement-level
// ORDER BY / LIMIT handling (passed down so ordering can reference source
// rows, aliases and aggregates).
func (e *Executor) evalCoreFull(core *sqlparse.SelectCore, sc *scope, outer *rowEnv,
	orderBy []sqlparse.OrderItem, limit, offset sqlparse.Expr) (*Result, error) {

	rel, err := e.evalFrom(core.From, sc, outer)
	if err != nil {
		return nil, err
	}

	// WHERE.
	if core.Where != nil {
		var kept []sqldb.Row
		for _, row := range rel.rows {
			env := &rowEnv{exec: e, sc: sc, cols: rel.cols, row: row, outer: outer}
			v, err := evalExpr(core.Where, env)
			if err != nil {
				return nil, err
			}
			if truthy(v) {
				kept = append(kept, row)
			}
		}
		rel.rows = kept
	}

	// Expand stars.
	items, err := expandStars(core.Items, rel.cols)
	if err != nil {
		return nil, err
	}

	// Aggregation detection.
	aggregated := len(core.GroupBy) > 0 || core.Having != nil
	if !aggregated {
		for _, item := range items {
			if containsAggregate(item.Expr) {
				aggregated = true
				break
			}
		}
	}
	if !aggregated {
		for _, o := range orderBy {
			if containsAggregate(o.Expr) {
				aggregated = true
				break
			}
		}
	}

	// Build per-output environments.
	var envs []*rowEnv
	if aggregated {
		groups, err := e.groupRows(core.GroupBy, rel, sc, outer)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			if g == nil {
				g = []sqldb.Row{} // empty group must still read as aggregation context
			}
			env := &rowEnv{exec: e, sc: sc, cols: rel.cols, group: g, outer: outer}
			if len(g) > 0 {
				env.row = g[0]
			} else {
				env.row = make(sqldb.Row, len(rel.cols))
			}
			if core.Having != nil {
				v, err := evalExpr(core.Having, env)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					continue
				}
			}
			envs = append(envs, env)
		}
	} else {
		for _, row := range rel.rows {
			envs = append(envs, &rowEnv{exec: e, sc: sc, cols: rel.cols, row: row, outer: outer})
		}
	}

	// Window function precomputation across the output environments.
	winCalls := collectWindowCalls(items, orderBy)
	if len(winCalls) > 0 {
		windows := make(map[*sqlparse.FuncCall][]sqldb.Value, len(winCalls))
		for i, env := range envs {
			env.windows = windows
			env.idx = i
		}
		for _, fc := range winCalls {
			vals, err := e.evalWindow(fc, envs)
			if err != nil {
				return nil, err
			}
			windows[fc] = vals
		}
	}

	// Projection plus hidden ORDER BY keys.
	outCols := outputColumns(items)
	orderExprs, orderIdx, err := resolveOrderTargets(orderBy, items)
	if err != nil {
		return nil, err
	}
	type outRow struct {
		row  sqldb.Row
		keys sqldb.Row
	}
	var outs []outRow
	for _, env := range envs {
		row := make(sqldb.Row, len(items))
		for i, item := range items {
			v, err := evalExpr(item.Expr, env)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		keys := make(sqldb.Row, len(orderBy))
		for i := range orderBy {
			if orderIdx[i] >= 0 {
				keys[i] = row[orderIdx[i]]
				continue
			}
			v, err := evalExpr(orderExprs[i], env)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		outs = append(outs, outRow{row: row, keys: keys})
	}

	if core.Distinct {
		seen := make(map[string]bool)
		var dedup []outRow
		for _, o := range outs {
			k := rowKey(o.row)
			if !seen[k] {
				seen[k] = true
				dedup = append(dedup, o)
			}
		}
		outs = dedup
	}

	if len(orderBy) > 0 {
		sort.SliceStable(outs, func(i, j int) bool {
			return compareOrderKeys(outs[i].keys, outs[j].keys, orderBy) < 0
		})
	}

	res := &Result{Columns: outCols}
	for _, o := range outs {
		res.Rows = append(res.Rows, o.row)
	}
	return applyLimitOffset(res, limit, offset)
}

// applyLimitOffset folds LIMIT/OFFSET to constants (staticInt, shared with
// the compiled path) and applies them. Non-constant expressions are
// rejected with an ExecError rather than evaluated through a throwaway row
// environment as earlier revisions did.
func applyLimitOffset(res *Result, limit, offset sqlparse.Expr) (*Result, error) {
	return applyFolded(res, foldLimit(limit), foldLimit(offset))
}

// groupRows partitions the relation by the GROUP BY expressions, preserving
// first-occurrence order. With no GROUP BY it forms a single group (possibly
// empty) for whole-table aggregation.
func (e *Executor) groupRows(exprs []sqlparse.Expr, rel relation, sc *scope, outer *rowEnv) ([][]sqldb.Row, error) {
	if len(exprs) == 0 {
		return [][]sqldb.Row{rel.rows}, nil
	}
	var order []string
	groups := make(map[string][]sqldb.Row)
	var kb []byte
	for _, row := range rel.rows {
		env := &rowEnv{exec: e, sc: sc, cols: rel.cols, row: row, outer: outer}
		kb = kb[:0]
		for _, ge := range exprs {
			v, err := evalExpr(ge, env)
			if err != nil {
				return nil, err
			}
			kb = sqldb.AppendValueKey(kb, v)
		}
		key := string(kb)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], row)
	}
	out := make([][]sqldb.Row, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key])
	}
	return out, nil
}

// expandStars replaces * and table.* items with explicit column references.
func expandStars(items []sqlparse.SelectItem, cols []bindCol) ([]sqlparse.SelectItem, error) {
	var out []sqlparse.SelectItem
	for _, item := range items {
		if !item.Star {
			out = append(out, item)
			continue
		}
		matched := false
		for _, c := range cols {
			if item.Table != "" && !strings.EqualFold(item.Table, c.qual) {
				continue
			}
			matched = true
			out = append(out, sqlparse.SelectItem{
				Expr: &sqlparse.ColumnRef{Table: c.qual, Name: c.name},
			})
		}
		if item.Table != "" && !matched {
			return nil, execErrf("unknown table %q in %s.*", item.Table, item.Table)
		}
		if !matched {
			return nil, execErrf("SELECT * with no FROM clause")
		}
	}
	return out, nil
}

func outputColumns(items []sqlparse.SelectItem) []string {
	out := make([]string, len(items))
	for i, item := range items {
		switch {
		case item.Alias != "":
			out[i] = item.Alias
		default:
			if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
				out[i] = cr.Name
			} else {
				out[i] = sqlparse.PrintExpr(item.Expr)
			}
		}
	}
	return out
}

// resolveOrderTargets maps each ORDER BY item either to an output column
// index (alias or 1-based position) or to an expression evaluated in the row
// environment.
func resolveOrderTargets(orderBy []sqlparse.OrderItem, items []sqlparse.SelectItem) ([]sqlparse.Expr, []int, error) {
	exprs := make([]sqlparse.Expr, len(orderBy))
	idx := make([]int, len(orderBy))
	for i, o := range orderBy {
		idx[i] = -1
		exprs[i] = o.Expr
		switch x := o.Expr.(type) {
		case *sqlparse.NumberLit:
			n, err := strconv.Atoi(x.Text)
			if err != nil || n < 1 || n > len(items) {
				return nil, nil, execErrf("ORDER BY position %s out of range", x.Text)
			}
			idx[i] = n - 1
		case *sqlparse.ColumnRef:
			if x.Table == "" {
				for j, item := range items {
					if strings.EqualFold(item.Alias, x.Name) {
						idx[i] = j
						break
					}
				}
			}
		}
	}
	return exprs, idx, nil
}

// compareOrderKeys orders two hidden ORDER BY key rows under the ORDER BY
// items (descending items invert), returning 0 when every key compares
// equal; callers layer their own stability rule on top. Shared by the
// interpreter's stable sort, the compiled sort and the top-N heap, so
// ordering semantics cannot diverge between paths.
func compareOrderKeys(a, b sqldb.Row, orderBy []sqlparse.OrderItem) int {
	for k, item := range orderBy {
		c := sqldb.CompareForSort(a[k], b[k])
		if c == 0 {
			continue
		}
		if item.Desc {
			return -c
		}
		return c
	}
	return 0
}

// rowKey is the hashing key for DISTINCT and compound set operations;
// length-prefixed components cannot alias across column boundaries however
// the values are spelled (see sqldb.CompositeKey).
func rowKey(row sqldb.Row) string {
	return sqldb.CompositeKey(row)
}

// combine applies a compound set operation. The hashing arms share one
// pooled scratch buffer for composite keys (only the interned map-key
// strings escape).
func combine(op sqlparse.CompoundOp, a, b *Result) (*Result, error) {
	if len(a.Columns) != len(b.Columns) {
		return nil, execErrf("compound select arms have %d and %d columns", len(a.Columns), len(b.Columns))
	}
	if op == sqlparse.UnionAllOp {
		return &Result{Columns: a.Columns, Rows: append(append([]sqldb.Row{}, a.Rows...), b.Rows...)}, nil
	}
	kbp := getKeyBuf()
	kb := *kbp
	key := func(r sqldb.Row) string {
		kb = sqldb.AppendCompositeKey(kb[:0], r)
		return string(kb)
	}
	defer func() {
		*kbp = kb
		putKeyBuf(kbp)
	}()
	switch op {
	case sqlparse.UnionOp:
		seen := make(map[string]bool)
		out := &Result{Columns: a.Columns}
		for _, rows := range [][]sqldb.Row{a.Rows, b.Rows} {
			for _, r := range rows {
				k := key(r)
				if !seen[k] {
					seen[k] = true
					out.Rows = append(out.Rows, r)
				}
			}
		}
		return out, nil
	case sqlparse.ExceptOp:
		drop := make(map[string]bool)
		for _, r := range b.Rows {
			drop[key(r)] = true
		}
		seen := make(map[string]bool)
		out := &Result{Columns: a.Columns}
		for _, r := range a.Rows {
			k := key(r)
			if !drop[k] && !seen[k] {
				seen[k] = true
				out.Rows = append(out.Rows, r)
			}
		}
		return out, nil
	case sqlparse.IntersectOp:
		keep := make(map[string]bool)
		for _, r := range b.Rows {
			keep[key(r)] = true
		}
		seen := make(map[string]bool)
		out := &Result{Columns: a.Columns}
		for _, r := range a.Rows {
			k := key(r)
			if keep[k] && !seen[k] {
				seen[k] = true
				out.Rows = append(out.Rows, r)
			}
		}
		return out, nil
	}
	return nil, execErrf("unsupported compound operator")
}

// orderResultByOutput sorts a compound result; ORDER BY may reference output
// column names or 1-based positions only.
func orderResultByOutput(res *Result, orderBy []sqlparse.OrderItem) error {
	if len(orderBy) == 0 {
		return nil
	}
	idx := make([]int, len(orderBy))
	for i, o := range orderBy {
		idx[i] = -1
		switch x := o.Expr.(type) {
		case *sqlparse.NumberLit:
			n, err := strconv.Atoi(x.Text)
			if err != nil || n < 1 || n > len(res.Columns) {
				return execErrf("ORDER BY position %s out of range", x.Text)
			}
			idx[i] = n - 1
		case *sqlparse.ColumnRef:
			for j, c := range res.Columns {
				if strings.EqualFold(c, x.Name) {
					idx[i] = j
					break
				}
			}
		}
		if idx[i] < 0 {
			return execErrf("compound ORDER BY must reference output columns")
		}
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for k, item := range orderBy {
			c := sqldb.CompareForSort(res.Rows[a][idx[k]], res.Rows[b][idx[k]])
			if c == 0 {
				continue
			}
			if item.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// evalFrom materializes the FROM clause into a relation.
func (e *Executor) evalFrom(from sqlparse.TableExpr, sc *scope, outer *rowEnv) (relation, error) {
	if from == nil {
		return relation{rows: []sqldb.Row{{}}}, nil
	}
	switch x := from.(type) {
	case *sqlparse.TableName:
		qual := x.Alias
		if qual == "" {
			qual = x.Name
		}
		if cte := sc.lookup(x.Name); cte != nil {
			cols := make([]bindCol, len(cte.columns))
			for i, c := range cte.columns {
				cols[i] = bindCol{qual: strings.ToUpper(qual), name: c}
			}
			return relation{cols: cols, rows: cte.rows}, nil
		}
		tbl := e.db.Table(x.Name)
		if tbl == nil {
			return relation{}, execErrf("unknown table %q", x.Name)
		}
		cols := make([]bindCol, len(tbl.Columns))
		for i, c := range tbl.Columns {
			cols[i] = bindCol{qual: strings.ToUpper(qual), name: c.Name}
		}
		return relation{cols: cols, rows: tbl.Rows}, nil

	case *sqlparse.SubqueryTable:
		res, err := e.evalStmt(x.Select, sc, outer)
		if err != nil {
			return relation{}, err
		}
		qual := strings.ToUpper(x.Alias)
		cols := make([]bindCol, len(res.Columns))
		for i, c := range res.Columns {
			cols[i] = bindCol{qual: qual, name: c}
		}
		return relation{cols: cols, rows: res.Rows}, nil

	case *sqlparse.JoinExpr:
		return e.evalJoin(x, sc, outer)
	}
	return relation{}, execErrf("unsupported FROM clause")
}

func (e *Executor) evalJoin(j *sqlparse.JoinExpr, sc *scope, outer *rowEnv) (relation, error) {
	left, err := e.evalFrom(j.Left, sc, outer)
	if err != nil {
		return relation{}, err
	}
	right, err := e.evalFrom(j.Right, sc, outer)
	if err != nil {
		return relation{}, err
	}
	cols := append(append([]bindCol{}, left.cols...), right.cols...)
	return e.joinRelations(j, left, right, cols, sc, outer)
}

// joinRelations joins two already-materialized inputs; the compiled planner
// calls it directly after applying pushed-down predicates to the leaves.
func (e *Executor) joinRelations(j *sqlparse.JoinExpr, left, right relation, cols []bindCol,
	sc *scope, outer *rowEnv) (relation, error) {

	// Hash fast path for equality conjuncts; falls back to the nested loop
	// when no sound hash plan exists (see hashjoin.go).
	if !e.noHashJoin && j.On != nil && len(left.rows) > 0 && len(right.rows) > 0 {
		if conds, residual := analyzeJoinOn(j.On, left.cols, right.cols); len(conds) > 0 {
			out, handled, err := e.hashJoin(j, left, right, cols, conds, residual, sc, outer)
			if handled {
				return out, err
			}
		}
	}

	out := relation{cols: cols}

	matchRow := func(lr, rr sqldb.Row) (bool, error) {
		if j.On == nil {
			return true, nil
		}
		combined := append(append(sqldb.Row{}, lr...), rr...)
		env := &rowEnv{exec: e, sc: sc, cols: cols, row: combined, outer: outer}
		v, err := evalExpr(j.On, env)
		if err != nil {
			return false, err
		}
		return truthy(v), nil
	}

	rightMatched := make([]bool, len(right.rows))
	for _, lr := range left.rows {
		leftMatched := false
		for ri, rr := range right.rows {
			ok, err := matchRow(lr, rr)
			if err != nil {
				return relation{}, err
			}
			if !ok {
				continue
			}
			leftMatched = true
			rightMatched[ri] = true
			out.rows = append(out.rows, append(append(sqldb.Row{}, lr...), rr...))
		}
		if !leftMatched && (j.Kind == sqlparse.LeftJoin || j.Kind == sqlparse.FullJoin) {
			row := append(append(sqldb.Row{}, lr...), make(sqldb.Row, len(right.cols))...)
			out.rows = append(out.rows, row)
		}
	}
	if j.Kind == sqlparse.RightJoin || j.Kind == sqlparse.FullJoin {
		for ri, rr := range right.rows {
			if rightMatched[ri] {
				continue
			}
			row := append(make(sqldb.Row, len(left.cols)), rr...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}
