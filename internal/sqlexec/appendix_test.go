package sqlexec

import (
	"testing"

	"genedit/internal/sqldb"
)

// appendixQuery mirrors the paper's Appendix A output (with its one
// unbalanced parenthesis repaired) so the executor is proven against the
// exact query shape GenEdit is built to generate.
const appendixQuery = `
WITH
FINANCIALS AS (
  SELECT ORG_NAME,
    SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q1,
    SUM(CASE WHEN TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN REVENUE ELSE 0 END) AS REVENUE_2023Q2,
    COUNTRY
  FROM SPORTS_FINANCIALS
  WHERE TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
    AND COUNTRY = 'Canada'
    AND OWNERSHIP_FLAG_COLUMN = 'COC'
  GROUP BY ORG_NAME, COUNTRY
),
VIEWERSHIP AS (
  SELECT ORG_NAME,
    SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q1' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q1,
    SUM(CASE WHEN TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') = '2023Q2' THEN VIEWS ELSE 0 END) AS VIEWS_2023Q2
  FROM SPORTS_VIEWERSHIP
  WHERE TO_CHAR(VIEW_MONTH, 'YYYY"Q"Q') IN ('2023Q1', '2023Q2')
    AND COUNTRY = 'Canada'
    AND OWNERSHIP_FLAG_COLUMN = 'COC'
  GROUP BY ORG_NAME
),
CHANGE_IN_REVENUE AS (
  SELECT
    f.ORG_NAME,
    CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0) AS RPV,
    CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0) AS PRIOR_QTR_RPV,
    -1 * (
      (CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
      (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0))
    ) AS RPV_CHANGE,
    ((CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
      (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0))
    ) * NULLIF(v.VIEWS_2023Q2, 0) AS IMPACT,
    ROW_NUMBER() OVER (PARTITION BY f.COUNTRY ORDER BY (-1 * (
      (CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
      (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0)))
    ) DESC) AS SPORT_RANK,
    ROW_NUMBER() OVER (PARTITION BY f.COUNTRY ORDER BY (-1 * (
      (CAST(f.REVENUE_2023Q2 AS FLOAT) / NULLIF(v.VIEWS_2023Q2, 0)) -
      (CAST(f.REVENUE_2023Q1 AS FLOAT) / NULLIF(v.VIEWS_2023Q1, 0)))
    ) ASC) AS WORST_SPORT_RANK
  FROM FINANCIALS f
  JOIN VIEWERSHIP v ON f.ORG_NAME = v.ORG_NAME
)
SELECT
  SPORT_RANK, ORG_NAME, RPV, PRIOR_QTR_RPV, RPV_CHANGE, IMPACT
FROM
  CHANGE_IN_REVENUE
WHERE
  SPORT_RANK <= 5 OR WORST_SPORT_RANK <= 5
ORDER BY
  SPORT_RANK
`

// sportsDB builds a seven-organization Canadian sports holding dataset with
// two quarters of financials and viewership.
func sportsDB() *sqldb.Database {
	db := sqldb.NewDatabase("sports_holdings")

	fin := sqldb.NewTable("SPORTS_FINANCIALS",
		sqldb.Column{Name: "ORG_NAME", Type: "TEXT"},
		sqldb.Column{Name: "FIN_MONTH", Type: "DATE"},
		sqldb.Column{Name: "REVENUE", Type: "FLOAT"},
		sqldb.Column{Name: "COUNTRY", Type: "TEXT"},
		sqldb.Column{Name: "OWNERSHIP_FLAG_COLUMN", Type: "TEXT"},
	)
	view := sqldb.NewTable("SPORTS_VIEWERSHIP",
		sqldb.Column{Name: "ORG_NAME", Type: "TEXT"},
		sqldb.Column{Name: "VIEW_MONTH", Type: "DATE"},
		sqldb.Column{Name: "VIEWS", Type: "INTEGER"},
		sqldb.Column{Name: "COUNTRY", Type: "TEXT"},
		sqldb.Column{Name: "OWNERSHIP_FLAG_COLUMN", Type: "TEXT"},
	)

	orgs := []string{"Orcas", "Pines", "Quarry", "Rapids", "Summit", "Tundra", "Vortex"}
	for i, org := range orgs {
		flag := "COC"
		if i == 6 {
			flag = "EXT" // one organization not owned by the holding company
		}
		for q, month := range []string{"2023-02-01", "2023-05-01"} {
			rev := float64(1000 + 150*i + 400*q*(i%3))
			views := int64(500 + 90*i + 120*q*((i+1)%4))
			fin.MustAppend(sqldb.Str(org), sqldb.Str(month), sqldb.Float(rev),
				sqldb.Str("Canada"), sqldb.Str(flag))
			view.MustAppend(sqldb.Str(org), sqldb.Str(month), sqldb.Int(views),
				sqldb.Str("Canada"), sqldb.Str(flag))
		}
	}
	db.AddTable(fin)
	db.AddTable(view)
	return db
}

func TestAppendixQueryExecutes(t *testing.T) {
	res, err := New(sportsDB()).Query(appendixQuery)
	if err != nil {
		t.Fatalf("appendix query failed: %v", err)
	}
	if len(res.Columns) != 6 {
		t.Fatalf("result has %d columns, want 6", len(res.Columns))
	}
	// Six owned organizations; rank ≤ 5 or worst-rank ≤ 5 keeps all six here.
	if len(res.Rows) != 6 {
		t.Fatalf("result has %d rows, want 6", len(res.Rows))
	}
	// Ranks must be a permutation of 1..6 ordered ascending.
	for i, row := range res.Rows {
		rank, ok := row[0].AsInt()
		if !ok || rank != int64(i+1) {
			t.Errorf("row %d rank = %v, want %d", i, row[0], i+1)
		}
	}
	// The excluded (non-COC) organization must not appear.
	for _, row := range res.Rows {
		if row[1].String() == "Vortex" {
			t.Error("non-owned organization leaked through OWNERSHIP_FLAG_COLUMN filter")
		}
	}
}

func TestAppendixQuarterPivot(t *testing.T) {
	// Sanity-check the quarter bucketing feeding the appendix query.
	res := mustQuery(t, sportsDB(), `
		SELECT TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') AS q, COUNT(*)
		FROM SPORTS_FINANCIALS GROUP BY TO_CHAR(FIN_MONTH, 'YYYY"Q"Q') ORDER BY q`)
	assertRows(t, res, []string{"2023Q1|7", "2023Q2|7"})
}
