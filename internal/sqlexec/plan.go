package sqlexec

import (
	"sort"
	"strings"

	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// Statement plans: the compile-once layer above the expression programs in
// compile.go. A plan binds every clause of a statement against statically
// known relation layouts (base tables, CTEs, derived tables) and adds three
// plan-level optimizations the interpreter does not perform:
//
//   - predicate pushdown: WHERE conjuncts that are provably error-free and
//     bind entirely to one preserved-side join input are evaluated before
//     the join, shrinking hash build/probe inputs;
//   - hash DISTINCT and GROUP BY keyed by length-prefixed composite keys;
//   - top-N ORDER BY: with a static LIMIT, a bounded heap replaces the full
//     sort.
//
// Anything the compiler cannot bind statically — window functions in the
// projection, star expansion over unknown layouts, unknown tables, ORDER BY
// targets that do not resolve — falls back to the tree-walking interpreter
// at statement or core granularity, so error timing and text stay exact.

type stmtPlan struct {
	stmt     *sqlparse.SelectStmt // source AST, for fallback
	fallback bool                 // run the whole statement through the interpreter
	ctes     []ctePlan
	core     *corePlan
	compound []compoundPlan
	limit    *foldedInt
	offset   *foldedInt
}

type ctePlan struct {
	src *sqlparse.CTE
	sub *stmtPlan
}

type compoundPlan struct {
	op   sqlparse.CompoundOp
	core *corePlan
}

// foldedInt is a LIMIT/OFFSET expression folded at plan time; err is raised
// only at the clause's evaluation point, exactly as the interpreter would.
type foldedInt struct {
	n   int64
	err error
}

func foldLimit(e sqlparse.Expr) *foldedInt {
	if e == nil {
		return nil
	}
	n, err := staticInt(e)
	return &foldedInt{n: n, err: err}
}

type corePlan struct {
	// Source clauses, kept for core-granularity interpreter fallback.
	src                 *sqlparse.SelectCore
	srcOrderBy          []sqlparse.OrderItem
	srcLimit, srcOffset sqlparse.Expr
	fallback            bool

	from       *fromPlan
	where      []program // conjuncts not claimed by pushdown, in source order
	items      []sqlparse.SelectItem
	outCols    []string
	aggregated bool
	groupBy    []program
	having     program
	projs      []program
	orderBy    []sqlparse.OrderItem
	orderProgs []program // per ORDER BY item; nil where orderIdx[i] >= 0
	orderIdx   []int
	distinct   bool
	limit      *foldedInt
	offset     *foldedInt
}

type fromPlan struct {
	cols []bindCol
	leaf *leafPlan // exactly one of leaf/join is set
	join *joinPlan
}

type leafPlan struct {
	noFrom  bool
	table   string    // base table name ("" when CTE or derived)
	cte     string    // CTE name ("" when not a CTE)
	sub     *stmtPlan // derived table
	filters []program // pushed-down predicates over this leaf's columns
}

type joinPlan struct {
	src         *sqlparse.JoinExpr
	left, right *fromPlan
}

// staticScope tracks CTE column layouts during compilation, mirroring the
// runtime scope chain (lookup is case-insensitive, inner shadows outer,
// CTEs shadow base tables).
type staticScope struct {
	parent *staticScope
	ctes   map[string][]string
}

func (s *staticScope) lookup(name string) ([]string, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cols, ok := cur.ctes[strings.ToUpper(name)]; ok {
			return cols, true
		}
	}
	return nil, false
}

func (s *staticScope) child() *staticScope {
	return &staticScope{parent: s, ctes: make(map[string][]string)}
}

// compileStmt lowers a parsed statement into an executable plan. It never
// fails: parts the compiler cannot bind are marked for interpreter
// fallback, which reproduces results and error timing exactly.
func compileStmt(db *sqldb.Database, stmt *sqlparse.SelectStmt) *stmtPlan {
	sp, _, _ := compileStmtScoped(db, stmt, nil)
	return sp
}

// compileStmtScoped compiles one statement under a static CTE scope. The
// returned columns are the statement's output layout; ok reports whether
// that layout is statically known (required when the statement feeds a CTE
// without a declared column list, or a derived table).
func compileStmtScoped(db *sqldb.Database, stmt *sqlparse.SelectStmt, ss *staticScope) (*stmtPlan, []string, bool) {
	sp := &stmtPlan{stmt: stmt}
	if len(stmt.With) > 0 {
		ss = ss.child()
		for i := range stmt.With {
			cte := &stmt.With[i]
			sub, subCols, subOK := compileStmtScoped(db, cte.Select, ss)
			cols := subCols
			colsOK := subOK
			if len(cte.Columns) > 0 {
				if subOK && len(cte.Columns) != len(subCols) {
					// Declared arity mismatch: the interpreter raises it only
					// after evaluating the CTE's select, so fall back.
					sp.fallback = true
					return sp, nil, false
				}
				cols = cte.Columns
				colsOK = true
			}
			if !colsOK {
				sp.fallback = true
				return sp, nil, false
			}
			ss.ctes[strings.ToUpper(cte.Name)] = cols
			sp.ctes = append(sp.ctes, ctePlan{src: cte, sub: sub})
		}
	}

	if len(stmt.Compound) == 0 {
		core, cols, ok := compileCore(db, stmt.Core, ss, stmt.OrderBy, stmt.Limit, stmt.Offset)
		sp.core = core
		return sp, cols, ok
	}

	core, cols, ok := compileCore(db, stmt.Core, ss, nil, nil, nil)
	sp.core = core
	for _, part := range stmt.Compound {
		pc, _, _ := compileCore(db, part.Core, ss, nil, nil, nil)
		sp.compound = append(sp.compound, compoundPlan{op: part.Op, core: pc})
	}
	sp.limit = foldLimit(stmt.Limit)
	sp.offset = foldLimit(stmt.Offset)
	return sp, cols, ok
}

// compileCore compiles one select core (plus the statement-level ORDER BY /
// LIMIT / OFFSET that evalCoreFull owns). The returned columns are the
// core's output names; ok reports whether they are statically known.
func compileCore(db *sqldb.Database, core *sqlparse.SelectCore, ss *staticScope,
	orderBy []sqlparse.OrderItem, limit, offset sqlparse.Expr) (*corePlan, []string, bool) {

	cp := &corePlan{src: core, srcOrderBy: orderBy, srcLimit: limit, srcOffset: offset}
	bail := func() (*corePlan, []string, bool) {
		cp.fallback = true
		return cp, nil, false
	}

	from, ok := compileFrom(db, core.From, ss)
	if !ok {
		return bail()
	}
	items, err := expandStars(core.Items, from.cols)
	if err != nil {
		return bail()
	}
	outCols := outputColumns(items)

	// Window calls in the projection or ORDER BY need the interpreter's
	// per-output-row environments; fall back (output layout stays known).
	for _, item := range items {
		if hasWindowCall(item.Expr) {
			cp.fallback = true
			return cp, outCols, true
		}
	}
	for _, o := range orderBy {
		if hasWindowCall(o.Expr) {
			cp.fallback = true
			return cp, outCols, true
		}
	}

	orderExprs, orderIdx, err := resolveOrderTargets(orderBy, items)
	if err != nil {
		cp.fallback = true
		return cp, outCols, true
	}

	cp.from = from
	cp.items = items
	cp.outCols = outCols
	cp.distinct = core.Distinct
	cp.limit = foldLimit(limit)
	cp.offset = foldLimit(offset)

	cp.aggregated = len(core.GroupBy) > 0 || core.Having != nil
	if !cp.aggregated {
		for _, item := range items {
			if containsAggregate(item.Expr) {
				cp.aggregated = true
				break
			}
		}
	}
	if !cp.aggregated {
		for _, o := range orderBy {
			if containsAggregate(o.Expr) {
				cp.aggregated = true
				break
			}
		}
	}

	compileWhere(cp, core.Where, from)

	for _, ge := range core.GroupBy {
		p, _ := compileExpr(ge, from.cols)
		cp.groupBy = append(cp.groupBy, p)
	}
	if core.Having != nil {
		cp.having, _ = compileExpr(core.Having, from.cols)
	}
	cp.projs = make([]program, len(items))
	for i, item := range items {
		cp.projs[i], _ = compileExpr(item.Expr, from.cols)
	}
	cp.orderBy = orderBy
	cp.orderIdx = orderIdx
	cp.orderProgs = make([]program, len(orderBy))
	for i := range orderBy {
		if orderIdx[i] < 0 {
			cp.orderProgs[i], _ = compileExpr(orderExprs[i], from.cols)
		}
	}
	return cp, outCols, true
}

func hasWindowCall(e sqlparse.Expr) bool {
	found := false
	sqlparse.WalkExprs(e, func(x sqlparse.Expr) {
		if fc, ok := x.(*sqlparse.FuncCall); ok && fc.Over != nil {
			found = true
		}
	})
	return found
}

// compileWhere lowers the WHERE clause, attempting predicate pushdown when
// the FROM clause is a join. Pushdown only engages when *every* conjunct is
// total (exprTotal): under three-valued logic the kept row set of an AND
// chain is order-independent, and with no conjunct able to error,
// evaluating some of them early (on rows the interpreter never filters) or
// skipping them (on rows a pushed predicate already rejected) is
// unobservable. Every join ON expression in the tree must be total as well:
// leaf filters remove rows before the join evaluates ON, so an ON
// expression that can error on a filtered-out row would otherwise lose the
// error the interpreter raises. Conjuncts are pushed only to
// preserved-side inputs — the null-supplying side of an outer join sees
// synthesized NULL rows the pre-join input does not, where a
// null-accepting predicate could diverge.
func compileWhere(cp *corePlan, where sqlparse.Expr, from *fromPlan) {
	if where == nil {
		return
	}
	conjs := splitConjuncts(where, nil)
	pushdown := from.join != nil && joinOnTotal(from)
	if pushdown {
		for _, conj := range conjs {
			if !exprTotal(conj, from.cols) {
				pushdown = false
				break
			}
		}
	}
	if !pushdown {
		p, _ := compileExpr(where, from.cols)
		cp.where = []program{p}
		return
	}
	leaves := collectLeaves(from, true, 0, nil)
	for _, conj := range conjs {
		if leaf := pushTarget(conj, from.cols, leaves); leaf != nil {
			p, _ := compileExpr(conj, leaf.cols)
			leaf.leaf.filters = append(leaf.leaf.filters, p)
			continue
		}
		p, _ := compileExpr(conj, from.cols)
		cp.where = append(cp.where, p)
	}
}

// joinOnTotal reports whether every ON expression in the join tree is
// total (evaluated against that join node's combined layout); only then is
// filtering an input before the join unable to suppress an ON error.
func joinOnTotal(fp *fromPlan) bool {
	if fp.leaf != nil {
		return true
	}
	if on := fp.join.src.On; on != nil && !exprTotal(on, fp.cols) {
		return false
	}
	return joinOnTotal(fp.join.left) && joinOnTotal(fp.join.right)
}

// leafRange is one scan leaf of a join tree with its ordinal range in the
// combined column layout and whether predicates may be pushed to it.
type leafRange struct {
	leaf       *leafPlan
	cols       []bindCol
	start, end int
	pushable   bool
}

func collectLeaves(fp *fromPlan, pushable bool, start int, acc []leafRange) []leafRange {
	if fp.leaf != nil {
		return append(acc, leafRange{
			leaf: fp.leaf, cols: fp.cols,
			start: start, end: start + len(fp.cols), pushable: pushable,
		})
	}
	leftPush, rightPush := pushable, pushable
	switch fp.join.src.Kind {
	case sqlparse.LeftJoin:
		rightPush = false
	case sqlparse.RightJoin:
		leftPush = false
	case sqlparse.FullJoin:
		leftPush, rightPush = false, false
	}
	acc = collectLeaves(fp.join.left, leftPush, start, acc)
	return collectLeaves(fp.join.right, rightPush, start+len(fp.join.left.cols), acc)
}

// pushTarget returns the leaf a conjunct may be pushed to: every column
// reference must resolve (first-match against the combined layout, exactly
// as evaluation would) into the same pushable leaf's ordinal range. Within
// one leaf the combined-layout first match and the leaf-local first match
// are the same column, so recompiling against the leaf's own layout is
// sound. Constant-only conjuncts stay above the join.
func pushTarget(conj sqlparse.Expr, cols []bindCol, leaves []leafRange) *leafRange {
	target := -1
	ok := true
	sqlparse.WalkExprs(conj, func(x sqlparse.Expr) {
		cr, isRef := x.(*sqlparse.ColumnRef)
		if !isRef || !ok {
			return
		}
		ord := bindColumn(cr, cols)
		if ord < 0 {
			ok = false
			return
		}
		li := -1
		for i := range leaves {
			if ord >= leaves[i].start && ord < leaves[i].end {
				li = i
				break
			}
		}
		if li < 0 || (target >= 0 && target != li) {
			ok = false
			return
		}
		target = li
	})
	if !ok || target < 0 || !leaves[target].pushable {
		return nil
	}
	return &leaves[target]
}

// compileFrom lowers a FROM clause into a scan/join tree with statically
// bound column layouts. ok=false means the layout could not be determined
// (unknown table, derived table with unknown output) and the core must fall
// back.
func compileFrom(db *sqldb.Database, from sqlparse.TableExpr, ss *staticScope) (*fromPlan, bool) {
	if from == nil {
		return &fromPlan{leaf: &leafPlan{noFrom: true}}, true
	}
	switch x := from.(type) {
	case *sqlparse.TableName:
		qual := x.Alias
		if qual == "" {
			qual = x.Name
		}
		if cteCols, ok := ss.lookup(x.Name); ok {
			cols := make([]bindCol, len(cteCols))
			for i, c := range cteCols {
				cols[i] = bindCol{qual: strings.ToUpper(qual), name: c}
			}
			return &fromPlan{cols: cols, leaf: &leafPlan{cte: x.Name}}, true
		}
		tbl := db.Table(x.Name)
		if tbl == nil {
			return nil, false
		}
		cols := make([]bindCol, len(tbl.Columns))
		for i, c := range tbl.Columns {
			cols[i] = bindCol{qual: strings.ToUpper(qual), name: c.Name}
		}
		return &fromPlan{cols: cols, leaf: &leafPlan{table: x.Name}}, true

	case *sqlparse.SubqueryTable:
		sub, subCols, ok := compileStmtScoped(db, x.Select, ss)
		if !ok {
			return nil, false
		}
		qual := strings.ToUpper(x.Alias)
		cols := make([]bindCol, len(subCols))
		for i, c := range subCols {
			cols[i] = bindCol{qual: qual, name: c}
		}
		return &fromPlan{cols: cols, leaf: &leafPlan{sub: sub}}, true

	case *sqlparse.JoinExpr:
		left, ok := compileFrom(db, x.Left, ss)
		if !ok {
			return nil, false
		}
		right, ok := compileFrom(db, x.Right, ss)
		if !ok {
			return nil, false
		}
		cols := append(append([]bindCol{}, left.cols...), right.cols...)
		return &fromPlan{cols: cols, join: &joinPlan{src: x, left: left, right: right}}, true
	}
	return nil, false
}

// ---- runtime ----

// runStmt executes a compiled statement plan. The scope carries CTE rows
// and is shared with interpreter fallbacks, so the two paths interleave
// freely within one statement.
func (e *Executor) runStmt(sp *stmtPlan, sc *scope) (*Result, error) {
	if sp.fallback {
		return e.evalStmt(sp.stmt, sc, nil)
	}
	if len(sp.ctes) > 0 {
		sc = sc.child()
		for i := range sp.ctes {
			cte := sp.ctes[i].src
			res, err := e.runStmt(sp.ctes[i].sub, sc)
			if err != nil {
				return nil, err
			}
			cols := res.Columns
			if len(cte.Columns) > 0 {
				if len(cte.Columns) != len(res.Columns) {
					return nil, execErrf("CTE %s declares %d columns but select returns %d",
						cte.Name, len(cte.Columns), len(res.Columns))
				}
				cols = cte.Columns
			}
			sc.ctes[strings.ToUpper(cte.Name)] = &namedRelation{columns: cols, rows: res.Rows}
		}
	}

	if len(sp.compound) == 0 {
		return e.runCore(sp.core, sc)
	}
	res, err := e.runCore(sp.core, sc)
	if err != nil {
		return nil, err
	}
	for _, part := range sp.compound {
		next, err := e.runCore(part.core, sc)
		if err != nil {
			return nil, err
		}
		res, err = combine(part.op, res, next)
		if err != nil {
			return nil, err
		}
	}
	if err := orderResultByOutput(res, sp.stmt.OrderBy); err != nil {
		return nil, err
	}
	return applyFolded(res, sp.limit, sp.offset)
}

// applyFolded applies folded LIMIT/OFFSET, raising any fold error at the
// clause's evaluation point (offset first, as the interpreter does).
func applyFolded(res *Result, limit, offset *foldedInt) (*Result, error) {
	if offset != nil {
		if offset.err != nil {
			return nil, offset.err
		}
		n := offset.n
		if n < 0 {
			n = 0
		}
		if int(n) >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[n:]
		}
	}
	if limit != nil {
		if limit.err != nil {
			return nil, limit.err
		}
		n := limit.n
		if n < 0 {
			n = 0
		}
		if int(n) < len(res.Rows) {
			res.Rows = res.Rows[:n]
		}
	}
	return res, nil
}

// projRow is one projected output row with its hidden ORDER BY keys.
type projRow struct {
	row  sqldb.Row
	keys sqldb.Row
}

// runCore executes one compiled select core, mirroring evalCoreFull's
// clause order (and therefore its error order) exactly: FROM, WHERE,
// grouping + HAVING over all groups, projection over all survivors,
// DISTINCT, ORDER BY, LIMIT/OFFSET.
func (e *Executor) runCore(cp *corePlan, sc *scope) (*Result, error) {
	if cp.fallback {
		return e.evalCoreFull(cp.src, sc, nil, cp.srcOrderBy, cp.srcLimit, cp.srcOffset)
	}
	rel, err := e.runFrom(cp.from, sc)
	if err != nil {
		return nil, err
	}

	env := &rowEnv{exec: e, sc: sc, cols: rel.cols}

	if len(cp.where) > 0 {
		var kept []sqldb.Row
		for _, row := range rel.rows {
			env.row = row
			keep := true
			for _, p := range cp.where {
				v, err := p(env)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					keep = false
					break
				}
			}
			if keep {
				kept = append(kept, row)
			}
		}
		rel.rows = kept
	}

	// Output rows are carved out of slab chunks: they escape into the
	// Result, so they are never pooled, but chunking cuts the two
	// allocations per projected row down to a few per query. projected
	// counts projection calls so the survivors can be compacted off the
	// slab when DISTINCT/top-N discard most of them (see below).
	var slab rowSlab
	var outs []projRow
	projected := 0
	project := func() error {
		projected++
		row := slab.take(len(cp.projs))
		for i, p := range cp.projs {
			v, err := p(env)
			if err != nil {
				return err
			}
			row[i] = v
		}
		keys := slab.take(len(cp.orderBy))
		for i := range cp.orderBy {
			if cp.orderIdx[i] >= 0 {
				keys[i] = row[cp.orderIdx[i]]
				continue
			}
			v, err := cp.orderProgs[i](env)
			if err != nil {
				return err
			}
			keys[i] = v
		}
		outs = append(outs, projRow{row: row, keys: keys})
		return nil
	}

	if cp.aggregated {
		groups, err := e.runGroupBy(cp, rel, env)
		if err != nil {
			return nil, err
		}
		emptyRow := sqldb.Row(nil)
		setGroup := func(g []sqldb.Row) {
			env.group = g
			if len(g) > 0 {
				env.row = g[0]
			} else {
				if emptyRow == nil {
					emptyRow = make(sqldb.Row, len(rel.cols))
				}
				env.row = emptyRow
			}
		}
		// HAVING over every group first, projection second — the
		// interpreter builds all group environments (evaluating HAVING)
		// before its projection loop, and error order must match.
		var kept [][]sqldb.Row
		for _, g := range groups {
			if g == nil {
				g = []sqldb.Row{}
			}
			setGroup(g)
			if cp.having != nil {
				v, err := cp.having(env)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					continue
				}
			}
			kept = append(kept, g)
		}
		for _, g := range kept {
			setGroup(g)
			if err := project(); err != nil {
				return nil, err
			}
		}
	} else {
		for _, row := range rel.rows {
			env.row = row
			if err := project(); err != nil {
				return nil, err
			}
		}
	}

	return finishCore(cp, outs, projected)
}

// finishCore applies a core's post-projection stages — DISTINCT, ORDER BY
// (top-N when the limit folded), LIMIT/OFFSET, slab compaction — to the
// projected rows. It is shared by runCore and the batch executor, which
// produce outs differently but finish identically.
func finishCore(cp *corePlan, outs []projRow, projected int) (*Result, error) {
	if cp.distinct {
		seen := make(map[string]bool, len(outs))
		dedup := outs[:0:0]
		kbp := getKeyBuf()
		kb := *kbp
		for _, o := range outs {
			kb = sqldb.AppendCompositeKey(kb[:0], o.row)
			if k := string(kb); !seen[k] {
				seen[k] = true
				dedup = append(dedup, o)
			}
		}
		*kbp = kb
		putKeyBuf(kbp)
		outs = dedup
	}

	if len(cp.orderBy) > 0 {
		if n, ok := cp.topN(len(outs)); ok {
			outs = topNProjRows(outs, cp.orderBy, n)
		} else {
			sort.SliceStable(outs, func(i, j int) bool {
				return compareOrderKeys(outs[i].keys, outs[j].keys, cp.orderBy) < 0
			})
		}
	}

	res := &Result{Columns: cp.outCols}
	for _, o := range outs {
		res.Rows = append(res.Rows, o.row)
	}
	res, err := applyFolded(res, cp.limit, cp.offset)
	if err != nil {
		return nil, err
	}
	compactResultRows(res, projected, len(cp.projs))
	return res, nil
}

// compactResultRows copies a small surviving row set into fresh backing
// storage when DISTINCT, top-N or LIMIT/OFFSET discarded most of the
// projected rows. It runs after the final truncation so it sees the true
// survivor count. Without it a handful of retained rows would pin every
// mostly-dead rowSlab chunk they were carved from — plus the full
// row-header array the LIMIT/OFFSET reslice still references — for as long
// as the Result lives (which, through the generation cache, can be a long
// time).
func compactResultRows(res *Result, projected, width int) {
	if width <= 0 || len(res.Rows) == 0 || projected <= 4*len(res.Rows) {
		return
	}
	backing := make([]sqldb.Value, len(res.Rows)*width)
	rows := make([]sqldb.Row, len(res.Rows))
	for i, r := range res.Rows {
		row := backing[i*width : (i+1)*width : (i+1)*width]
		copy(row, r)
		rows[i] = row
	}
	res.Rows = rows
}

// runGroupBy partitions the relation by the compiled GROUP BY programs
// using length-prefixed composite keys, preserving first-occurrence order.
func (e *Executor) runGroupBy(cp *corePlan, rel relation, env *rowEnv) ([][]sqldb.Row, error) {
	if len(cp.groupBy) == 0 {
		return [][]sqldb.Row{rel.rows}, nil
	}
	var order []string
	groups := make(map[string][]sqldb.Row)
	kbp := getKeyBuf()
	kb := *kbp
	for _, row := range rel.rows {
		env.row = row
		kb = kb[:0]
		for _, p := range cp.groupBy {
			v, err := p(env)
			if err != nil {
				*kbp = kb
				putKeyBuf(kbp)
				return nil, err
			}
			kb = sqldb.AppendValueKey(kb, v)
		}
		key := string(kb)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], row)
	}
	*kbp = kb
	putKeyBuf(kbp)
	out := make([][]sqldb.Row, 0, len(order))
	for _, key := range order {
		out = append(out, groups[key])
	}
	return out, nil
}

// topN reports the bounded-heap size for ORDER BY when a clean static
// LIMIT (plus OFFSET) needs fewer rows than the full result; otherwise the
// full stable sort runs (which is also where folded LIMIT/OFFSET errors
// must still surface, afterwards).
func (cp *corePlan) topN(total int) (int, bool) {
	if cp.limit == nil || cp.limit.err != nil {
		return 0, false
	}
	n := cp.limit.n
	if n < 0 {
		n = 0
	}
	if n >= int64(total) {
		return 0, false
	}
	if cp.offset != nil {
		if cp.offset.err != nil {
			return 0, false
		}
		off := cp.offset.n
		if off < 0 {
			off = 0
		}
		if off >= int64(total) || n+off >= int64(total) {
			return 0, false
		}
		n += off
	}
	return int(n), true
}

// topNProjRows returns the first n rows of the stable ORDER BY sort of
// rows without sorting the whole slice. A bounded max-heap retains the
// current best n rows; ties break by original index, which makes the order
// total and its smallest-n prefix exactly the stable sort's prefix.
func topNProjRows(rows []projRow, orderBy []sqlparse.OrderItem, n int) []projRow {
	if n <= 0 {
		return nil
	}
	// less is the total sort order: ORDER BY keys, then input position.
	less := func(i, j int) bool {
		if c := compareOrderKeys(rows[i].keys, rows[j].keys, orderBy); c != 0 {
			return c < 0
		}
		return i < j
	}
	// h is a max-heap of row indices: h[0] is the worst row retained.
	h := make([]int, 0, n)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			largest := i
			if l < len(h) && less(h[largest], h[l]) {
				largest = l
			}
			if r < len(h) && less(h[largest], h[r]) {
				largest = r
			}
			if largest == i {
				return
			}
			h[i], h[largest] = h[largest], h[i]
			i = largest
		}
	}
	for i := range rows {
		if len(h) < n {
			h = append(h, i)
			for c := len(h) - 1; c > 0; {
				p := (c - 1) / 2
				if !less(h[p], h[c]) {
					break
				}
				h[p], h[c] = h[c], h[p]
				c = p
			}
			continue
		}
		if less(i, h[0]) {
			h[0] = i
			siftDown(0)
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	out := make([]projRow, len(h))
	for i, ri := range h {
		out[i] = rows[ri]
	}
	return out
}

// runFrom materializes a compiled FROM tree, applying pushed-down
// predicates at the leaves before any join builds its hash table.
func (e *Executor) runFrom(fp *fromPlan, sc *scope) (relation, error) {
	if fp.leaf != nil {
		return e.runLeaf(fp, sc)
	}
	left, err := e.runFrom(fp.join.left, sc)
	if err != nil {
		return relation{}, err
	}
	right, err := e.runFrom(fp.join.right, sc)
	if err != nil {
		return relation{}, err
	}
	return e.joinRelations(fp.join.src, left, right, fp.cols, sc, nil)
}

func (e *Executor) runLeaf(fp *fromPlan, sc *scope) (relation, error) {
	lp := fp.leaf
	var rows []sqldb.Row
	switch {
	case lp.noFrom:
		rows = []sqldb.Row{{}}
	case lp.cte != "":
		rel := sc.lookup(lp.cte)
		if rel == nil {
			return relation{}, execErrf("unknown table %q", lp.cte)
		}
		rows = rel.rows
	case lp.sub != nil:
		res, err := e.runStmt(lp.sub, sc)
		if err != nil {
			return relation{}, err
		}
		rows = res.Rows
	default:
		tbl := e.db.Table(lp.table)
		if tbl == nil {
			return relation{}, execErrf("unknown table %q", lp.table)
		}
		rows = tbl.Rows
	}
	if len(lp.filters) > 0 {
		env := &rowEnv{exec: e, sc: sc, cols: fp.cols}
		var kept []sqldb.Row
		for _, row := range rows {
			env.row = row
			keep := true
			for _, p := range lp.filters {
				v, err := p(env)
				if err != nil {
					return relation{}, err // unreachable: pushed predicates are total
				}
				if !truthy(v) {
					keep = false
					break
				}
			}
			if keep {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	return relation{cols: fp.cols, rows: rows}, nil
}
