package sqlexec

import (
	"sync"
	"sync/atomic"

	"genedit/internal/sqldb"
)

// Columnar batch execution: value vectors and their pooled allocation.
//
// The batch engine (batchcompile.go, batchexec.go) executes supported
// statements morsel-at-a-time: the scanned table is split into fixed-size
// runs of rows, and expressions evaluate over typed vectors — one value slot
// per lane (morsel-local row) — instead of dispatching a closure per row.
// A vec is one such vector. Base-table columns become zero-copy views into
// the sqldb.Columnar snapshot (typed array reslice + the table's global null
// bitmap at an offset); computed vectors are carved out of a per-morsel
// vecArena, which recycles whole buffers across morsels and queries under
// pool.go's rule: vectors are scratch that dies inside one Query, while
// anything reachable from a Result is materialized into rowSlab rows before
// the arena is released.

// vec is a vector of SQL values over one morsel. Exactly one representation
// is active:
//
//   - constant: every lane is cv (literals and folded expressions);
//   - mixed: vals boxes each lane (mixed-kind columns, CASE outputs and the
//     generic row-program fallback);
//   - typed: kind selects the one populated array; lanes whose bit is set in
//     nulls (at lane+nullOff) are NULL; kind == KindNull means every lane is
//     NULL with no array at all.
//
// Typed and mixed vectors are defined only at the lanes the producing kernel
// was asked to evaluate (its selection); other lanes hold stale buffer
// contents and must not be read.
type vec struct {
	kind     sqldb.Kind
	mixed    bool
	constant bool
	cv       sqldb.Value
	ints     []int64
	floats   []float64
	strs     []string
	bools    []bool
	vals     []sqldb.Value
	nulls    sqldb.Bitmap
	nullOff  int
}

// null reports whether a lane is NULL.
func (v *vec) null(ln int32) bool {
	if v.constant {
		return v.cv.IsNull()
	}
	if v.mixed {
		return v.vals[ln].IsNull()
	}
	if v.kind == sqldb.KindNull {
		return true
	}
	return v.nulls.Get(int(ln) + v.nullOff)
}

// value re-boxes one lane. Kernels with typed fast paths read the arrays
// directly; this is the generic accessor materialization and lanewise
// kernels use.
func (v *vec) value(ln int32) sqldb.Value {
	if v.constant {
		return v.cv
	}
	if v.mixed {
		return v.vals[ln]
	}
	if v.kind == sqldb.KindNull || v.nulls.Get(int(ln)+v.nullOff) {
		return sqldb.Null()
	}
	switch v.kind {
	case sqldb.KindInt:
		return sqldb.Int(v.ints[ln])
	case sqldb.KindFloat:
		return sqldb.Float(v.floats[ln])
	case sqldb.KindString:
		return sqldb.Str(v.strs[ln])
	default:
		return sqldb.Bool(v.bools[ln])
	}
}

// truthyAt reports filter acceptance for one lane, mirroring truthy()
// without boxing.
func (v *vec) truthyAt(ln int32) bool {
	if v.constant {
		return truthy(v.cv)
	}
	if v.mixed {
		return truthy(v.vals[ln])
	}
	if v.kind == sqldb.KindNull || v.nulls.Get(int(ln)+v.nullOff) {
		return false
	}
	switch v.kind {
	case sqldb.KindInt:
		return v.ints[ln] != 0
	case sqldb.KindFloat:
		return v.floats[ln] != 0
	case sqldb.KindString:
		return v.strs[ln] != ""
	default:
		return v.bools[ln]
	}
}

// floatLane reads a numeric lane as float64; valid only for non-null lanes
// of KindInt/KindFloat vectors (the numeric kernels' operand contract).
func (v *vec) floatLane(ln int32) float64 {
	if v.kind == sqldb.KindInt {
		return float64(v.ints[ln])
	}
	return v.floats[ln]
}

// vecArena hands out vector buffers for one morsel's evaluation. Buffers are
// capacity-sized (the configured morsel size) and recycled wholesale: an
// arena is taken from a process-wide pool per morsel, its buffers are carved
// out by bumping counters, and the whole set is reset and returned when the
// morsel's outputs have been materialized. String/Value buffers are cleared
// on reset so recycled arenas cannot pin result data; int/float/bool buffers
// hold stale lanes by design (kernels define only selected lanes).
type vecArena struct {
	cap int

	vecs []*vec
	nv   int
	ints [][]int64
	ni   int
	flts [][]float64
	nf   int
	strs [][]string
	ns   int
	bls  [][]bool
	nb   int
	vals [][]sqldb.Value
	nvl  int
	bits [][]uint64
	nbt  int
	sels [][]int32
	nsl  int
}

var vecArenaPool sync.Pool

// getVecArena returns an arena whose buffers hold capacity lanes. Pooled
// arenas sized for a different morsel capacity are discarded rather than
// resized, so changing the morsel size mid-process cannot hand out short
// buffers.
func getVecArena(capacity int) *vecArena {
	if a, _ := vecArenaPool.Get().(*vecArena); a != nil && a.cap == capacity {
		return a
	}
	return &vecArena{cap: capacity}
}

// putVecArena resets an arena and returns it to the pool.
func putVecArena(a *vecArena) {
	a.reset()
	vecArenaPool.Put(a)
}

// reset rewinds every counter and clears reference-holding buffers.
func (a *vecArena) reset() {
	for i := 0; i < a.nv; i++ {
		*a.vecs[i] = vec{}
	}
	for i := 0; i < a.ns; i++ {
		b := a.strs[i]
		clear(b[:cap(b)])
	}
	for i := 0; i < a.nvl; i++ {
		b := a.vals[i]
		clear(b[:cap(b)])
	}
	a.nv, a.ni, a.nf, a.ns, a.nb, a.nvl, a.nbt, a.nsl = 0, 0, 0, 0, 0, 0, 0, 0
}

// vec returns a fresh vector header.
func (a *vecArena) vec() *vec {
	if a.nv < len(a.vecs) {
		v := a.vecs[a.nv]
		a.nv++
		return v
	}
	v := &vec{}
	a.vecs = append(a.vecs, v)
	a.nv++
	return v
}

func (a *vecArena) int64s(n int) []int64 {
	if a.ni < len(a.ints) {
		b := a.ints[a.ni][:n]
		a.ni++
		return b
	}
	b := make([]int64, a.cap)
	a.ints = append(a.ints, b)
	a.ni++
	return b[:n]
}

func (a *vecArena) float64s(n int) []float64 {
	if a.nf < len(a.flts) {
		b := a.flts[a.nf][:n]
		a.nf++
		return b
	}
	b := make([]float64, a.cap)
	a.flts = append(a.flts, b)
	a.nf++
	return b[:n]
}

func (a *vecArena) strings(n int) []string {
	if a.ns < len(a.strs) {
		b := a.strs[a.ns][:n]
		a.ns++
		return b
	}
	b := make([]string, a.cap)
	a.strs = append(a.strs, b)
	a.ns++
	return b[:n]
}

func (a *vecArena) booleans(n int) []bool {
	if a.nb < len(a.bls) {
		b := a.bls[a.nb][:n]
		a.nb++
		return b
	}
	b := make([]bool, a.cap)
	a.bls = append(a.bls, b)
	a.nb++
	return b[:n]
}

func (a *vecArena) values(n int) []sqldb.Value {
	if a.nvl < len(a.vals) {
		b := a.vals[a.nvl][:n]
		a.nvl++
		return b
	}
	b := make([]sqldb.Value, a.cap)
	a.vals = append(a.vals, b)
	a.nvl++
	return b[:n]
}

// bitmap returns a cleared null bitmap covering n lanes.
func (a *vecArena) bitmap(n int) sqldb.Bitmap {
	w := (n + 63) / 64
	if a.nbt < len(a.bits) {
		b := a.bits[a.nbt][:w]
		a.nbt++
		clear(b)
		return sqldb.Bitmap(b)
	}
	b := make([]uint64, (a.cap+63)/64)
	a.bits = append(a.bits, b)
	a.nbt++
	return sqldb.Bitmap(b[:w])
}

// selection returns an empty selection buffer with capacity for a full
// morsel, for filters to append surviving lanes into.
func (a *vecArena) selection() []int32 {
	if a.nsl < len(a.sels) {
		b := a.sels[a.nsl][:0]
		a.nsl++
		return b
	}
	b := make([]int32, 0, a.cap)
	a.sels = append(a.sels, b)
	a.nsl++
	return b
}

// iotaSel returns the shared ascending identity selection [0, n). The backing
// array only ever grows and published slices are immutable, so concurrent
// morsels share one allocation.
var iotaCache atomic.Pointer[[]int32]

func iotaSel(n int) []int32 {
	if p := iotaCache.Load(); p != nil && len(*p) >= n {
		return (*p)[:n]
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	iotaCache.Store(&s)
	return s
}

// vctx is the evaluation context for one morsel: the base-table snapshot
// (column views plus the row view the generic fallback indexes), the
// morsel's position, its arena, and a reusable row environment for
// row-program fallbacks.
type vctx struct {
	exec  *Executor
	rows  []sqldb.Row
	cols  []*sqldb.ColumnData
	base  int
	n     int
	arena *vecArena
	env   rowEnv
}

// vprog is a compiled total vector kernel: it evaluates its expression over
// the selected lanes and can never raise an error (only provably error-free
// expressions compile to kernels; everything else runs through a slot's row
// program).
type vprog func(vc *vctx, sel []int32) *vec

// slot is one expression position of a batch plan (filter, projection item,
// ORDER BY key or GROUP BY key): either a total vector kernel or the
// already-compiled row program evaluated lane-at-a-time.
type slot struct {
	kernel vprog
	row    program
}

// eval runs the slot over a selection. Kernels cannot error; the row-program
// fallback evaluates lanes in ascending order and stops at the first error,
// which — because morsels merge in order and callers restrict later slots to
// lanes before an earlier slot's error — reproduces the row engine's
// row-major, then clause-order, error selection exactly.
func (s *slot) eval(vc *vctx, sel []int32) (*vec, int32, error) {
	if s.kernel != nil {
		return s.kernel(vc, sel), -1, nil
	}
	out := vc.arena.vec()
	out.mixed = true
	out.vals = vc.arena.values(vc.n)
	env := &vc.env
	for _, ln := range sel {
		env.row = vc.rows[vc.base+int(ln)]
		v, err := s.row(env)
		if err != nil {
			return nil, ln, err
		}
		out.vals[ln] = v
	}
	return out, -1, nil
}

// truncSel shortens an ascending selection to the lanes strictly before
// bound (the restriction applied after an earlier slot errored at bound).
func truncSel(sel []int32, bound int32) []int32 {
	for len(sel) > 0 && sel[len(sel)-1] >= bound {
		sel = sel[:len(sel)-1]
	}
	return sel
}
