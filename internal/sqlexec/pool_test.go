package sqlexec

import (
	"testing"

	"genedit/internal/sqldb"
)

func TestRowSlabRowsDoNotOverlap(t *testing.T) {
	var s rowSlab
	var rows []sqldb.Row
	widths := []int{3, 1, 7, 3, 0, 200, 3, 5000}
	for _, w := range widths {
		r := s.take(w)
		if len(r) != w || cap(r) != w && w > 0 {
			t.Fatalf("take(%d): len=%d cap=%d", w, len(r), cap(r))
		}
		for i := range r {
			r[i] = sqldb.Int(int64(len(rows)*10000 + i))
		}
		rows = append(rows, r)
	}
	// Writing each row must not have disturbed any other row.
	for ri, r := range rows {
		for i, v := range r {
			if n, _ := v.AsInt(); int(n) != ri*10000+i {
				t.Fatalf("row %d slot %d = %d, want %d (rows share backing memory)", ri, i, n, ri*10000+i)
			}
		}
	}
}

func TestRowSlabChunkGrowth(t *testing.T) {
	var s rowSlab
	s.take(1)
	if s.chunk != rowSlabChunkMin {
		t.Fatalf("first chunk = %d, want %d", s.chunk, rowSlabChunkMin)
	}
	for i := 0; i < 20; i++ {
		s.take(rowSlabChunkMax)
	}
	if s.chunk != rowSlabChunkMax {
		t.Fatalf("chunk after heavy use = %d, want capped at %d", s.chunk, rowSlabChunkMax)
	}
}

func TestKeyBufPoolDropsOversized(t *testing.T) {
	b := getKeyBuf()
	*b = append((*b)[:0], make([]byte, 1<<17)...)
	putKeyBuf(b) // must be dropped, not pooled
	n := getKeyBuf()
	if cap(*n) > 1<<16 {
		t.Fatalf("oversized buffer returned to pool (cap %d)", cap(*n))
	}
	putKeyBuf(n)
}
