package sqlexec

import (
	"context"
	"math"
	"runtime"
	"strings"

	"genedit/internal/parallel"
	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// Batch (morsel-driven) execution of compiled batch plans.
//
// A supported statement's scanned table is split into fixed-size morsels.
// The WHERE filter — and, for non-aggregated cores, projection and ORDER BY
// key evaluation — runs over morsels in parallel; results and errors merge
// in morsel order, which together with the slot-level restriction discipline
// (see slot.eval) makes output rows AND the selected error bit-identical to
// the serial compiled path. Aggregation accumulates strictly sequentially in
// morsel order so float summation associates exactly as the row engine's,
// and the group-finish phase reuses the compiled HAVING/projection programs
// with pre-accumulated aggregate results injected through rowEnv.aggs.

// DefaultMorselSize is the number of rows per morsel: large enough to
// amortize per-morsel overhead (arena checkout, task dispatch), small enough
// that per-morsel vectors stay cache-resident.
const DefaultMorselSize = 1024

// SetBatchExec enables or disables the vectorized batch engine (on by
// default). Statements the batch engine does not support always fall back to
// the compiled row path per statement, so disabling only removes the fast
// path. Like the other knobs, not synchronized — configure before sharing
// the executor.
func (e *Executor) SetBatchExec(enabled bool) { e.noBatch = !enabled }

// BatchExecEnabled reports whether the batch engine is enabled.
func (e *Executor) BatchExecEnabled() bool { return !e.noBatch }

// SetMorselSize sets the rows-per-morsel granularity. Non-positive values
// reset to DefaultMorselSize.
func (e *Executor) SetMorselSize(n int) {
	if n <= 0 {
		n = 0
	}
	e.morselSize = n
}

// MorselSize reports the effective morsel size.
func (e *Executor) MorselSize() int {
	if e.morselSize <= 0 {
		return DefaultMorselSize
	}
	return e.morselSize
}

// SetMorselWorkers bounds intra-query parallelism (morsels in flight).
// Non-positive values reset to the default, GOMAXPROCS at query time.
func (e *Executor) SetMorselWorkers(n int) {
	if n <= 0 {
		n = 0
	}
	e.morselWorkers = n
}

// MorselWorkers reports the effective morsel worker bound.
func (e *Executor) MorselWorkers() int {
	if e.morselWorkers > 0 {
		return e.morselWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// colSnap caches one table's columnar snapshot. Tables are append-only under
// live executors (schemas never change), so a snapshot is current while the
// table pointer and row count both match.
type colSnap struct {
	src   *sqldb.Table
	nrows int
	rows  []sqldb.Row
	data  *sqldb.Columnar
}

// columnarFor returns the current columnar snapshot for a base table plus
// the row view it was built from, building and caching it on first use and
// rebuilding when rows were appended. Returns nil for unknown tables (the
// row path owns that error).
func (e *Executor) columnarFor(table string) (*sqldb.Columnar, []sqldb.Row) {
	tbl := e.db.Table(table)
	if tbl == nil {
		return nil, nil
	}
	key := strings.ToUpper(table)
	e.colMu.RLock()
	cs := e.colSnaps[key]
	e.colMu.RUnlock()
	if cs != nil && cs.src == tbl && cs.nrows == len(tbl.Rows) {
		return cs.data, cs.rows
	}
	rows := tbl.Rows[:len(tbl.Rows):len(tbl.Rows)]
	view := &sqldb.Table{Name: tbl.Name, Columns: tbl.Columns, Rows: rows}
	cs = &colSnap{src: tbl, nrows: len(rows), rows: rows, data: sqldb.Columnarize(view)}
	e.colMu.Lock()
	if e.colSnaps == nil {
		e.colSnaps = make(map[string]*colSnap)
	}
	e.colSnaps[key] = cs
	e.colMu.Unlock()
	return cs.data, cs.rows
}

// batchFor resolves the batch plan for a cached statement: reuse the cached
// plan while its snapshot is current, recompile when the table grew, and
// remember unsupported statements so the gate runs once per statement, not
// once per execution.
func (e *Executor) batchFor(sql string, cs cachedStmt, plan *stmtPlan) *batchPlan {
	if cs.batchTried && cs.batch == nil {
		return nil // unsupported: plan shape is per-statement, stable
	}
	if bp := cs.batch; bp != nil {
		if snap, _ := e.columnarFor(bp.cp.from.leaf.table); snap == bp.snap {
			return bp
		}
	}
	bp := compileBatch(e, plan)
	e.stmts.setBatch(sql, bp)
	return bp
}

// aggRes is one aggregate call's pre-accumulated per-group result — the
// value or error the row engine's closure would have produced by scanning
// the group. Compiled aggregate closures return it via rowEnv.aggs.
type aggRes struct {
	v   sqldb.Value
	err error
}

// runBatch executes a compiled batch plan.
func (e *Executor) runBatch(bp *batchPlan) (*Result, error) {
	if bp.cp.aggregated {
		return e.runBatchAgg(bp)
	}
	return e.runBatchScan(bp)
}

// morselCount splits nrows into morsels of the configured size.
func (e *Executor) morselCount(nrows, size int) int {
	return (nrows + size - 1) / size
}

// runBatchScan executes a non-aggregated core: filter, project and compute
// ORDER BY keys per morsel in parallel, then merge in morsel order and
// finish through the shared DISTINCT/ORDER BY/LIMIT tail.
func (e *Executor) runBatchScan(bp *batchPlan) (*Result, error) {
	cp := bp.cp
	size := e.MorselSize()
	nrows := bp.snap.NRows
	nm := e.morselCount(nrows, size)

	type scanOut struct {
		outs      []projRow
		projected int
		whereErr  error
		projErr   error
	}
	results := make([]scanOut, nm)
	sc := &scope{}
	parallel.ForEach(context.Background(), e.MorselWorkers(), nm, func(m int) {
		out := &results[m]
		base := m * size
		n := min(size, nrows-base)
		arena := getVecArena(size)
		defer putVecArena(arena)
		vc := &vctx{exec: e, rows: bp.rows, cols: bp.cols, base: base, n: n, arena: arena}
		vc.env = rowEnv{exec: e, sc: sc, cols: bp.fromCols}
		sel := iotaSel(n)
		if bp.filter != nil {
			fv, _, err := bp.filter.eval(vc, sel)
			if err != nil {
				out.whereErr = err
				return
			}
			keep := arena.selection()
			for _, ln := range sel {
				if fv.truthyAt(ln) {
					keep = append(keep, ln)
				}
			}
			sel = keep
		}

		// Projection items then ORDER BY keys, clause order. After a slot
		// errors, later slots evaluate only lanes before the error lane, so
		// the surviving (lane, error) pair is the row-major-first one — the
		// row the serial engine would have died on.
		errLane := int32(math.MaxInt32)
		var slotErr error
		projVecs := make([]*vec, len(bp.projs))
		orderVecs := make([]*vec, len(bp.orders))
		cur := sel
		for i, s := range bp.projs {
			cur = truncSel(cur, errLane)
			v, ln, err := s.eval(vc, cur)
			if err != nil && ln < errLane {
				errLane, slotErr = ln, err
			}
			projVecs[i] = v
		}
		for i, s := range bp.orders {
			if s == nil {
				continue
			}
			cur = truncSel(cur, errLane)
			v, ln, err := s.eval(vc, cur)
			if err != nil && ln < errLane {
				errLane, slotErr = ln, err
			}
			orderVecs[i] = v
		}
		if slotErr != nil {
			out.projErr = slotErr
			return
		}

		// Materialize the morsel's surviving rows off the arena into
		// slab-backed rows: these escape into the Result (pool.go's rule),
		// while every vector dies with the arena at the deferred release.
		var slab rowSlab
		outs := make([]projRow, 0, len(sel))
		for _, ln := range sel {
			row := slab.take(len(projVecs))
			for i, v := range projVecs {
				row[i] = v.value(ln)
			}
			keys := slab.take(len(cp.orderBy))
			for i := range cp.orderBy {
				if cp.orderIdx[i] >= 0 {
					keys[i] = row[cp.orderIdx[i]]
					continue
				}
				keys[i] = orderVecs[i].value(ln)
			}
			outs = append(outs, projRow{row: row, keys: keys})
		}
		out.outs = outs
		out.projected = len(sel)
	})

	// Phase-major merge: the serial engine completes its entire WHERE pass
	// before projecting anything, so any morsel's WHERE error (earliest
	// morsel first) beats any projection error.
	for i := range results {
		if results[i].whereErr != nil {
			return nil, results[i].whereErr
		}
	}
	for i := range results {
		if results[i].projErr != nil {
			return nil, results[i].projErr
		}
	}
	total := 0
	for i := range results {
		total += len(results[i].outs)
	}
	outs := make([]projRow, 0, total)
	projected := 0
	for i := range results {
		outs = append(outs, results[i].outs...)
		projected += results[i].projected
	}
	return finishCore(cp, outs, projected)
}

// batchGroup is one GROUP BY partition under accumulation.
type batchGroup struct {
	first int // global row index of the group's first row (-1 until seen)
	count int
	accs  []aggAcc
	aggs  map[*sqlparse.FuncCall]aggRes
}

func newBatchGroup(bp *batchPlan) *batchGroup {
	return &batchGroup{first: -1, accs: make([]aggAcc, len(bp.aggs))}
}

// aggAcc is one (group, aggregate call) accumulator. Typed modes fold into
// the scalar fields; generic mode collects boxed values exactly as
// collectAggregateArgs would (first evaluation error sticks and stops
// further evaluation for this pair).
type aggAcc struct {
	n     int
	isum  int64
	fsum  float64
	ibest int64
	fbest float64
	sbest string
	vals  []sqldb.Value
	seen  map[string]bool
	err   error
}

// runBatchAgg executes an aggregated core: parallel WHERE filtering, then a
// strictly sequential (morsel-order = row-order) grouping and accumulation
// pass, then group finish through the compiled HAVING/projection programs.
func (e *Executor) runBatchAgg(bp *batchPlan) (*Result, error) {
	cp := bp.cp
	size := e.MorselSize()
	nrows := bp.snap.NRows
	nm := e.morselCount(nrows, size)
	sc := &scope{}

	// Phase 1 (parallel): filter each morsel. Arenas and selections survive
	// into the sequential phase, which consumes morsels in order and
	// releases each arena as it finishes with it.
	type filtOut struct {
		arena    *vecArena
		vc       *vctx
		sel      []int32
		whereErr error
	}
	filt := make([]filtOut, nm)
	parallel.ForEach(context.Background(), e.MorselWorkers(), nm, func(m int) {
		f := &filt[m]
		base := m * size
		n := min(size, nrows-base)
		arena := getVecArena(size)
		vc := &vctx{exec: e, rows: bp.rows, cols: bp.cols, base: base, n: n, arena: arena}
		vc.env = rowEnv{exec: e, sc: sc, cols: bp.fromCols}
		sel := iotaSel(n)
		if bp.filter != nil {
			fv, _, err := bp.filter.eval(vc, sel)
			if err != nil {
				f.whereErr = err
				putVecArena(arena)
				return
			}
			keep := arena.selection()
			for _, ln := range sel {
				if fv.truthyAt(ln) {
					keep = append(keep, ln)
				}
			}
			sel = keep
		}
		f.arena, f.vc, f.sel = arena, vc, sel
	})
	releaseFrom := func(i int) {
		for ; i < nm; i++ {
			if filt[i].arena != nil {
				putVecArena(filt[i].arena)
				filt[i].arena = nil
			}
		}
	}
	for i := range filt {
		if filt[i].whereErr != nil {
			releaseFrom(0)
			return nil, filt[i].whereErr
		}
	}

	// Phase 2 (sequential): group and accumulate in morsel order, which is
	// global row order — float sums associate exactly as the row engine's.
	var order []*batchGroup
	var gmap map[string]*batchGroup
	var single *batchGroup
	if len(cp.groupBy) == 0 {
		// No GROUP BY: always exactly one group, even over zero rows.
		single = newBatchGroup(bp)
		order = append(order, single)
	} else {
		gmap = make(map[string]*batchGroup)
	}
	genv := &rowEnv{exec: e, sc: sc, cols: bp.fromCols} // agg-arg env: no group, no aggs
	kbp := getKeyBuf()
	kb := *kbp
	var keyErr error
	for m := 0; m < nm && keyErr == nil; m++ {
		f := &filt[m]
		if single != nil {
			e.accumulateMorsel(bp, single, genv, f.vc, f.sel)
		} else {
			// GROUP BY key slots under the restriction discipline, then
			// per-row group assignment with the row engine's composite keys.
			errLane := int32(math.MaxInt32)
			var slotErr error
			keyVecs := make([]*vec, len(bp.keys))
			cur := f.sel
			for i, s := range bp.keys {
				cur = truncSel(cur, errLane)
				v, ln, err := s.eval(f.vc, cur)
				if err != nil && ln < errLane {
					errLane, slotErr = ln, err
				}
				keyVecs[i] = v
			}
			if slotErr != nil {
				keyErr = slotErr
			} else {
				for _, ln := range f.sel {
					kb = kb[:0]
					for _, kv := range keyVecs {
						kb = sqldb.AppendValueKey(kb, kv.value(ln))
					}
					key := string(kb)
					g := gmap[key]
					if g == nil {
						g = newBatchGroup(bp)
						gmap[key] = g
						order = append(order, g)
					}
					e.accumulateRow(bp, g, genv, f.vc.base+int(ln))
				}
			}
		}
		putVecArena(f.arena)
		f.arena = nil
	}
	*kbp = kb
	putKeyBuf(kbp)
	if keyErr != nil {
		releaseFrom(0)
		return nil, keyErr
	}

	// Phase 3: group finish — the compiled HAVING and projection programs
	// run per group with the accumulated aggregate results injected through
	// env.aggs, preserving the serial order: HAVING over every group first,
	// projection over the kept groups second.
	for _, g := range order {
		g.finish(bp)
	}
	env := &rowEnv{exec: e, sc: sc, cols: bp.fromCols}
	groupMarker := []sqldb.Row{}
	var emptyRow sqldb.Row
	setGroup := func(g *batchGroup) {
		env.group = groupMarker
		env.aggs = g.aggs
		if g.first >= 0 {
			env.row = bp.rows[g.first]
		} else {
			if emptyRow == nil {
				emptyRow = make(sqldb.Row, len(bp.fromCols))
			}
			env.row = emptyRow
		}
	}
	var kept []*batchGroup
	for _, g := range order {
		setGroup(g)
		if cp.having != nil {
			v, err := cp.having(env)
			if err != nil {
				return nil, err
			}
			if !truthy(v) {
				continue
			}
		}
		kept = append(kept, g)
	}
	var slab rowSlab
	outs := make([]projRow, 0, len(kept))
	projected := 0
	for _, g := range kept {
		setGroup(g)
		projected++
		row := slab.take(len(cp.projs))
		for i, p := range cp.projs {
			v, err := p(env)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		keys := slab.take(len(cp.orderBy))
		for i := range cp.orderBy {
			if cp.orderIdx[i] >= 0 {
				keys[i] = row[cp.orderIdx[i]]
				continue
			}
			v, err := cp.orderProgs[i](env)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		outs = append(outs, projRow{row: row, keys: keys})
	}
	return finishCore(cp, outs, projected)
}

// accumulateRow folds one selected row into its group's accumulators.
func (e *Executor) accumulateRow(bp *batchPlan, g *batchGroup, genv *rowEnv, row int) {
	if g.count == 0 {
		g.first = row
	}
	g.count++
	for i := range bp.aggs {
		s := &bp.aggs[i]
		switch s.mode {
		case aggTypedCol:
			accTyped(s, &g.accs[i], bp.cols[s.ord], row)
		case aggGeneric:
			accGeneric(s, &g.accs[i], genv, bp.rows[row])
		}
	}
}

// accumulateMorsel folds a whole morsel's selection into the single
// (no-GROUP-BY) group, column-at-a-time per aggregate.
func (e *Executor) accumulateMorsel(bp *batchPlan, g *batchGroup, genv *rowEnv, vc *vctx, sel []int32) {
	if len(sel) == 0 {
		return
	}
	if g.count == 0 {
		g.first = vc.base + int(sel[0])
	}
	g.count += len(sel)
	for i := range bp.aggs {
		s := &bp.aggs[i]
		acc := &g.accs[i]
		switch s.mode {
		case aggTypedCol:
			cd := bp.cols[s.ord]
			if fastTypedAcc(s, acc, cd, vc.base, sel) {
				continue
			}
			for _, ln := range sel {
				accTyped(s, acc, cd, vc.base+int(ln))
			}
		case aggGeneric:
			for _, ln := range sel {
				accGeneric(s, acc, genv, bp.rows[vc.base+int(ln)])
			}
		}
	}
}

// fastTypedAcc handles the hot COUNT/SUM/TOTAL/AVG column loops without
// per-row dispatch. Float sums still accumulate lane-at-a-time into the
// running total — no per-morsel subtotals — so association order matches the
// serial engine bit-for-bit.
func fastTypedAcc(s *aggSpec, acc *aggAcc, cd *sqldb.ColumnData, base int, sel []int32) bool {
	if s.kind == sqldb.KindNull {
		return true // every lane NULL: nothing accumulates
	}
	switch s.name {
	case "COUNT":
		if cd.Nulls == nil {
			acc.n += len(sel)
			return true
		}
		for _, ln := range sel {
			if !cd.Nulls.Get(base + int(ln)) {
				acc.n++
			}
		}
		return true
	case "SUM", "TOTAL", "AVG":
		switch s.kind {
		case sqldb.KindInt:
			ints := cd.Ints
			if cd.Nulls == nil {
				for _, ln := range sel {
					acc.isum += ints[base+int(ln)]
				}
				acc.n += len(sel)
				return true
			}
			for _, ln := range sel {
				if r := base + int(ln); !cd.Nulls.Get(r) {
					acc.isum += ints[r]
					acc.n++
				}
			}
			return true
		case sqldb.KindFloat:
			floats := cd.Floats
			if cd.Nulls == nil {
				for _, ln := range sel {
					acc.fsum += floats[base+int(ln)]
				}
				acc.n += len(sel)
				return true
			}
			for _, ln := range sel {
				if r := base + int(ln); !cd.Nulls.Get(r) {
					acc.fsum += floats[r]
					acc.n++
				}
			}
			return true
		}
	}
	return false
}

// accTyped folds one row of a uniformly-typed column into an accumulator.
func accTyped(s *aggSpec, acc *aggAcc, cd *sqldb.ColumnData, row int) {
	if cd.Null(row) {
		return
	}
	switch s.kind {
	case sqldb.KindInt:
		v := cd.Ints[row]
		switch s.name {
		case "SUM", "TOTAL", "AVG":
			acc.isum += v
		case "MIN":
			// Compare widens both Int sides to float64, so the extremum
			// test must too (large ints can tie as floats; first wins).
			if acc.n == 0 || float64(v) < float64(acc.ibest) {
				acc.ibest = v
			}
		case "MAX":
			if acc.n == 0 || float64(v) > float64(acc.ibest) {
				acc.ibest = v
			}
		}
	case sqldb.KindFloat:
		v := cd.Floats[row]
		switch s.name {
		case "SUM", "TOTAL", "AVG":
			acc.fsum += v
		case "MIN":
			// cmpFloat treats NaN-involved comparisons as ties, so a NaN
			// never displaces the incumbent — extremum's behavior.
			if acc.n == 0 || cmpFloat(v, acc.fbest) < 0 {
				acc.fbest = v
			}
		case "MAX":
			if acc.n == 0 || cmpFloat(v, acc.fbest) > 0 {
				acc.fbest = v
			}
		}
	case sqldb.KindString:
		v := cd.Strs[row]
		switch s.name {
		case "MIN":
			if acc.n == 0 || v < acc.sbest {
				acc.sbest = v
			}
		case "MAX":
			if acc.n == 0 || v > acc.sbest {
				acc.sbest = v
			}
		}
	}
	acc.n++
}

// accGeneric folds one row through the compiled argument program, with
// collectAggregateArgs' exact skip/dedup/error rules.
func accGeneric(s *aggSpec, acc *aggAcc, genv *rowEnv, row sqldb.Row) {
	if acc.err != nil {
		return // collection aborted at its first error
	}
	genv.row = row
	v, err := s.arg(genv)
	if err != nil {
		acc.err = err
		return
	}
	if v.IsNull() {
		return
	}
	if s.distinct {
		k := v.Key()
		if acc.seen == nil {
			acc.seen = make(map[string]bool)
		}
		if acc.seen[k] {
			return
		}
		acc.seen[k] = true
	}
	acc.vals = append(acc.vals, v)
}

// finish reduces the group's accumulators into the aggRes map the compiled
// programs consume via rowEnv.aggs.
func (g *batchGroup) finish(bp *batchPlan) {
	if len(bp.aggs) == 0 {
		return
	}
	g.aggs = make(map[*sqlparse.FuncCall]aggRes, len(bp.aggs))
	for i := range bp.aggs {
		s := &bp.aggs[i]
		var r aggRes
		switch s.mode {
		case aggStarCount:
			r.v = sqldb.Int(int64(g.count))
		case aggStaticErr:
			r.v, r.err = sqldb.Null(), s.staticErr
		case aggTypedCol:
			r.v, r.err = s.finishTyped(&g.accs[i])
		case aggGeneric:
			acc := &g.accs[i]
			if acc.err != nil {
				r.v, r.err = sqldb.Null(), acc.err
			} else {
				r.v, r.err = finishAggregate(s.name, acc.vals)
			}
		}
		g.aggs[s.fc] = r
	}
}

// finishTyped applies finishAggregate's reduction rules to a typed
// accumulator: COUNT counts, SUM of nothing is NULL while TOTAL of nothing
// is 0.0, int sums stay Int (wrap-adding like sumValues), AVG divides the
// float image of the sum, MIN/MAX return the incumbent.
func (s *aggSpec) finishTyped(acc *aggAcc) (sqldb.Value, error) {
	switch s.name {
	case "COUNT":
		return sqldb.Int(int64(acc.n)), nil
	case "SUM", "TOTAL":
		if acc.n == 0 {
			if s.name == "TOTAL" {
				return sqldb.Float(0), nil
			}
			return sqldb.Null(), nil
		}
		if s.kind == sqldb.KindInt {
			return sqldb.Int(acc.isum), nil
		}
		return sqldb.Float(acc.fsum), nil
	case "AVG":
		if acc.n == 0 {
			return sqldb.Null(), nil
		}
		if s.kind == sqldb.KindInt {
			return sqldb.Float(float64(acc.isum) / float64(acc.n)), nil
		}
		return sqldb.Float(acc.fsum / float64(acc.n)), nil
	case "MIN", "MAX":
		if acc.n == 0 {
			return sqldb.Null(), nil
		}
		switch s.kind {
		case sqldb.KindInt:
			return sqldb.Int(acc.ibest), nil
		case sqldb.KindFloat:
			return sqldb.Float(acc.fbest), nil
		default:
			return sqldb.Str(acc.sbest), nil
		}
	}
	return sqldb.Null(), execErrf("unknown aggregate %s", s.name)
}
