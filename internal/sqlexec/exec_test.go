package sqlexec

import (
	"strings"
	"testing"

	"genedit/internal/sqldb"
)

// testDB builds a small fixture database used across executor tests.
func testDB() *sqldb.Database {
	db := sqldb.NewDatabase("fixture")

	emp := sqldb.NewTable("EMP",
		sqldb.Column{Name: "ID", Type: "INTEGER"},
		sqldb.Column{Name: "NAME", Type: "TEXT"},
		sqldb.Column{Name: "DEPT", Type: "TEXT"},
		sqldb.Column{Name: "SALARY", Type: "FLOAT"},
		sqldb.Column{Name: "HIRED", Type: "DATE"},
	)
	rows := []struct {
		id     int64
		name   string
		dept   string
		salary float64
		hired  string
	}{
		{1, "ann", "eng", 100, "2021-01-15"},
		{2, "bob", "eng", 80, "2021-06-01"},
		{3, "cat", "sales", 60, "2022-02-10"},
		{4, "dan", "sales", 70, "2022-08-20"},
		{5, "eve", "ops", 90, "2023-03-05"},
	}
	for _, r := range rows {
		emp.MustAppend(sqldb.Int(r.id), sqldb.Str(r.name), sqldb.Str(r.dept),
			sqldb.Float(r.salary), sqldb.Str(r.hired))
	}
	db.AddTable(emp)

	dept := sqldb.NewTable("DEPT",
		sqldb.Column{Name: "DEPT", Type: "TEXT"},
		sqldb.Column{Name: "REGION", Type: "TEXT"},
	)
	dept.MustAppend(sqldb.Str("eng"), sqldb.Str("west"))
	dept.MustAppend(sqldb.Str("sales"), sqldb.Str("east"))
	dept.MustAppend(sqldb.Str("hr"), sqldb.Str("east"))
	db.AddTable(dept)

	nulls := sqldb.NewTable("NULLTAB",
		sqldb.Column{Name: "X", Type: "INTEGER"},
	)
	nulls.MustAppend(sqldb.Int(1))
	nulls.MustAppend(sqldb.Null())
	nulls.MustAppend(sqldb.Int(3))
	db.AddTable(nulls)

	return db
}

func mustQuery(t *testing.T, db *sqldb.Database, sql string) *Result {
	t.Helper()
	res, err := New(db).Query(sql)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return res
}

func rowStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func assertRows(t *testing.T, res *Result, want []string) {
	t.Helper()
	got := rowStrings(res)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d rows %v", len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSelectConstants(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT 1, 'x', NULL, TRUE")
	assertRows(t, res, []string{"1|x|NULL|TRUE"})
}

func TestWhereFilter(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT NAME FROM EMP WHERE SALARY > 75 ORDER BY NAME")
	assertRows(t, res, []string{"ann", "bob", "eve"})
}

func TestProjectionArithmetic(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT NAME, SALARY * 2 AS double FROM EMP WHERE ID = 1")
	assertRows(t, res, []string{"ann|200"})
	if res.Columns[1] != "double" {
		t.Errorf("column name = %q, want double", res.Columns[1])
	}
}

func TestIntegerDivision(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT 7 / 2, 7.0 / 2, 7 % 3, 1 / 0")
	assertRows(t, res, []string{"3|3.5|1|NULL"})
}

func TestOrderByLimitOffset(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT NAME FROM EMP ORDER BY SALARY DESC LIMIT 2 OFFSET 1")
	assertRows(t, res, []string{"eve", "bob"})
}

func TestOrderByAliasAndPosition(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT NAME, SALARY AS s FROM EMP ORDER BY s LIMIT 1")
	assertRows(t, res, []string{"cat|60"})
	res = mustQuery(t, testDB(), "SELECT NAME, SALARY FROM EMP ORDER BY 2 DESC LIMIT 1")
	assertRows(t, res, []string{"ann|100"})
}

func TestGroupByAggregates(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT DEPT, COUNT(*), SUM(SALARY), AVG(SALARY), MIN(SALARY), MAX(SALARY) FROM EMP GROUP BY DEPT ORDER BY DEPT")
	assertRows(t, res, []string{
		"eng|2|180|90|80|100",
		"ops|1|90|90|90|90",
		"sales|2|130|65|60|70",
	})
}

func TestHaving(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT DEPT FROM EMP GROUP BY DEPT HAVING COUNT(*) > 1 ORDER BY DEPT")
	assertRows(t, res, []string{"eng", "sales"})
}

func TestWholeTableAggregateOnEmptyInput(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT COUNT(*), SUM(SALARY) FROM EMP WHERE SALARY > 1000")
	assertRows(t, res, []string{"0|NULL"})
}

func TestCountDistinct(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT COUNT(DISTINCT DEPT) FROM EMP")
	assertRows(t, res, []string{"3"})
}

func TestAggregateSkipsNulls(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT COUNT(X), SUM(X), AVG(X) FROM NULLTAB")
	assertRows(t, res, []string{"2|4|2"})
}

func TestConditionalAggregation(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT SUM(CASE WHEN DEPT = 'eng' THEN SALARY ELSE 0 END) AS eng_total FROM EMP")
	assertRows(t, res, []string{"180"})
}

func TestJoins(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT e.NAME, d.REGION FROM EMP e JOIN DEPT d ON e.DEPT = d.DEPT WHERE e.ID <= 3 ORDER BY e.ID")
	assertRows(t, res, []string{"ann|west", "bob|west", "cat|east"})
}

func TestLeftJoinProducesNulls(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT e.NAME, d.REGION FROM EMP e LEFT JOIN DEPT d ON e.DEPT = d.DEPT WHERE e.DEPT = 'ops'")
	assertRows(t, res, []string{"eve|NULL"})
}

func TestRightJoin(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT d.DEPT, e.NAME FROM EMP e RIGHT JOIN DEPT d ON e.DEPT = d.DEPT WHERE e.ID IS NULL")
	assertRows(t, res, []string{"hr|NULL"})
}

func TestCrossJoinCount(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT COUNT(*) FROM EMP, DEPT")
	assertRows(t, res, []string{"15"})
}

func TestCTE(t *testing.T) {
	res := mustQuery(t, testDB(), `
		WITH high AS (SELECT NAME, SALARY FROM EMP WHERE SALARY >= 80)
		SELECT COUNT(*) FROM high`)
	assertRows(t, res, []string{"3"})
}

func TestChainedCTEs(t *testing.T) {
	res := mustQuery(t, testDB(), `
		WITH a AS (SELECT SALARY FROM EMP WHERE DEPT = 'eng'),
		     b AS (SELECT SUM(SALARY) AS total FROM a)
		SELECT total FROM b`)
	assertRows(t, res, []string{"180"})
}

func TestCTEColumnRename(t *testing.T) {
	res := mustQuery(t, testDB(), `
		WITH w (who, pay) AS (SELECT NAME, SALARY FROM EMP WHERE ID = 1)
		SELECT who, pay FROM w`)
	assertRows(t, res, []string{"ann|100"})
}

func TestSubqueryInFrom(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT s.d, s.n FROM (SELECT DEPT AS d, COUNT(*) AS n FROM EMP GROUP BY DEPT) AS s ORDER BY s.d")
	assertRows(t, res, []string{"eng|2", "ops|1", "sales|2"})
}

func TestInList(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT NAME FROM EMP WHERE DEPT IN ('eng', 'ops') ORDER BY NAME")
	assertRows(t, res, []string{"ann", "bob", "eve"})
}

func TestInSubquery(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT NAME FROM EMP WHERE DEPT IN (SELECT DEPT FROM DEPT WHERE REGION = 'east') ORDER BY NAME")
	assertRows(t, res, []string{"cat", "dan"})
}

func TestNotInWithNullIsUnknown(t *testing.T) {
	// x NOT IN (set containing NULL) is never true.
	res := mustQuery(t, testDB(), "SELECT COUNT(*) FROM EMP WHERE ID NOT IN (SELECT X FROM NULLTAB)")
	assertRows(t, res, []string{"0"})
}

func TestExistsCorrelated(t *testing.T) {
	res := mustQuery(t, testDB(), `
		SELECT d.DEPT FROM DEPT d
		WHERE EXISTS (SELECT 1 FROM EMP e WHERE e.DEPT = d.DEPT)
		ORDER BY d.DEPT`)
	assertRows(t, res, []string{"eng", "sales"})
}

func TestScalarSubqueryCorrelated(t *testing.T) {
	res := mustQuery(t, testDB(), `
		SELECT NAME, (SELECT REGION FROM DEPT d WHERE d.DEPT = e.DEPT) AS region
		FROM EMP e WHERE ID = 3`)
	assertRows(t, res, []string{"cat|east"})
}

func TestScalarSubqueryEmptyIsNull(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT (SELECT REGION FROM DEPT WHERE DEPT = 'nope')")
	assertRows(t, res, []string{"NULL"})
}

func TestCaseSearchedAndOperand(t *testing.T) {
	res := mustQuery(t, testDB(), `
		SELECT NAME,
		  CASE WHEN SALARY >= 90 THEN 'high' WHEN SALARY >= 70 THEN 'mid' ELSE 'low' END,
		  CASE DEPT WHEN 'eng' THEN 'tech' ELSE 'biz' END
		FROM EMP ORDER BY ID`)
	assertRows(t, res, []string{
		"ann|high|tech", "bob|mid|tech", "cat|low|biz", "dan|mid|biz", "eve|high|biz",
	})
}

func TestLike(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT NAME FROM EMP WHERE NAME LIKE 'a%' OR NAME LIKE '_ob' ORDER BY NAME")
	assertRows(t, res, []string{"ann", "bob"})
}

func TestBetween(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT NAME FROM EMP WHERE SALARY BETWEEN 70 AND 90 ORDER BY NAME")
	assertRows(t, res, []string{"bob", "dan", "eve"})
}

func TestDistinct(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT DISTINCT DEPT FROM EMP ORDER BY DEPT")
	assertRows(t, res, []string{"eng", "ops", "sales"})
}

func TestUnionAndUnionAll(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT DEPT FROM EMP UNION SELECT DEPT FROM DEPT ORDER BY DEPT")
	assertRows(t, res, []string{"eng", "hr", "ops", "sales"})
	res = mustQuery(t, testDB(),
		"SELECT DEPT FROM DEPT UNION ALL SELECT DEPT FROM DEPT")
	if len(res.Rows) != 6 {
		t.Errorf("UNION ALL rows = %d, want 6", len(res.Rows))
	}
}

func TestExceptIntersect(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT DEPT FROM DEPT EXCEPT SELECT DEPT FROM EMP")
	assertRows(t, res, []string{"hr"})
	res = mustQuery(t, testDB(),
		"SELECT DEPT FROM DEPT INTERSECT SELECT DEPT FROM EMP ORDER BY DEPT")
	assertRows(t, res, []string{"eng", "sales"})
}

func TestWindowRowNumber(t *testing.T) {
	res := mustQuery(t, testDB(), `
		SELECT NAME, ROW_NUMBER() OVER (PARTITION BY DEPT ORDER BY SALARY DESC) AS rn
		FROM EMP ORDER BY NAME`)
	assertRows(t, res, []string{"ann|1", "bob|2", "cat|2", "dan|1", "eve|1"})
}

func TestWindowRankAndDenseRank(t *testing.T) {
	res := mustQuery(t, testDB(), `
		SELECT NAME,
		  RANK() OVER (ORDER BY SALARY DESC) AS r,
		  DENSE_RANK() OVER (ORDER BY SALARY DESC) AS dr
		FROM EMP ORDER BY SALARY DESC, NAME`)
	assertRows(t, res, []string{"ann|1|1", "eve|2|2", "bob|3|3", "dan|4|4", "cat|5|5"})
}

func TestWindowAggregate(t *testing.T) {
	res := mustQuery(t, testDB(), `
		SELECT NAME, SUM(SALARY) OVER (PARTITION BY DEPT) AS dept_total
		FROM EMP ORDER BY NAME`)
	assertRows(t, res, []string{"ann|180", "bob|180", "cat|130", "dan|130", "eve|90"})
}

func TestWindowLagLead(t *testing.T) {
	res := mustQuery(t, testDB(), `
		SELECT NAME, LAG(SALARY) OVER (ORDER BY ID) AS prev,
		       LEAD(SALARY, 1, -1) OVER (ORDER BY ID) AS next
		FROM EMP ORDER BY ID`)
	assertRows(t, res, []string{
		"ann|NULL|80", "bob|100|60", "cat|80|70", "dan|60|90", "eve|70|-1",
	})
}

func TestWindowOverGroupedRows(t *testing.T) {
	res := mustQuery(t, testDB(), `
		SELECT DEPT, SUM(SALARY) AS total,
		  ROW_NUMBER() OVER (ORDER BY SUM(SALARY) DESC) AS rnk
		FROM EMP GROUP BY DEPT ORDER BY rnk`)
	assertRows(t, res, []string{"eng|180|1", "sales|130|2", "ops|90|3"})
}

func TestToChar(t *testing.T) {
	res := mustQuery(t, testDB(), `
		SELECT NAME, TO_CHAR(HIRED, 'YYYY"Q"Q') FROM EMP ORDER BY ID`)
	assertRows(t, res, []string{
		"ann|2021Q1", "bob|2021Q2", "cat|2022Q1", "dan|2022Q3", "eve|2023Q1",
	})
}

func TestDateParts(t *testing.T) {
	res := mustQuery(t, testDB(),
		"SELECT YEAR(HIRED), MONTH(HIRED), DAY(HIRED), QUARTER(HIRED) FROM EMP WHERE ID = 4")
	assertRows(t, res, []string{"2022|8|20|3"})
}

func TestScalarFunctions(t *testing.T) {
	res := mustQuery(t, testDB(), `SELECT ABS(-3), ROUND(2.567, 2), UPPER('ab'), LOWER('AB'),
		LENGTH('abc'), SUBSTR('hello', 2, 3), COALESCE(NULL, 5), NULLIF(3, 3), NULLIF(4, 3),
		TRIM('  x '), REPLACE('aaa', 'a', 'b'), CONCAT('x', 1, 'y')`)
	assertRows(t, res, []string{"3|2.57|AB|ab|3|ell|5|NULL|4|x|bbb|x1y"})
}

func TestNullArithmeticPropagates(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT X + 1 FROM NULLTAB ORDER BY X")
	assertRows(t, res, []string{"NULL", "2", "4"})
}

func TestThreeValuedLogic(t *testing.T) {
	// NULL OR TRUE = TRUE; NULL AND TRUE = NULL (filtered out).
	res := mustQuery(t, testDB(), "SELECT COUNT(*) FROM NULLTAB WHERE X > 0 OR 1 = 1")
	assertRows(t, res, []string{"3"})
	res = mustQuery(t, testDB(), "SELECT COUNT(*) FROM NULLTAB WHERE X > 0 AND 1 = 1")
	assertRows(t, res, []string{"2"})
}

func TestStarExpansion(t *testing.T) {
	res := mustQuery(t, testDB(), "SELECT * FROM DEPT ORDER BY DEPT LIMIT 1")
	if len(res.Columns) != 2 || res.Columns[0] != "DEPT" || res.Columns[1] != "REGION" {
		t.Errorf("columns = %v", res.Columns)
	}
	res = mustQuery(t, testDB(),
		"SELECT d.* FROM EMP e JOIN DEPT d ON e.DEPT = d.DEPT WHERE e.ID = 1")
	assertRows(t, res, []string{"eng|west"})
}

func TestExecErrors(t *testing.T) {
	tests := []struct {
		sql  string
		want string
	}{
		{"SELECT * FROM missing", "unknown table"},
		{"SELECT nope FROM EMP", "unknown column"},
		{"SELECT e.SALARY FROM EMP", "unknown column"},
		{"SELECT UNKNOWN_FUNC(1)", "unknown function"},
		{"SELECT SUM(SALARY, 2) FROM EMP", "exactly 1 argument"},
		{"SELECT NAME FROM EMP ORDER BY 9", "out of range"},
		{"SELECT 1 UNION SELECT 1, 2", "columns"},
		{"SELECT (SELECT NAME, DEPT FROM EMP)", "one column"},
		{"SELECT NAME FROM EMP WHERE SALARY > (SELECT SALARY FROM EMP)", "rows"},
	}
	db := testDB()
	for _, tt := range tests {
		_, err := New(db).Query(tt.sql)
		if err == nil {
			t.Errorf("Query(%q): want error containing %q, got nil", tt.sql, tt.want)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("Query(%q) error = %q, want containing %q", tt.sql, err, tt.want)
		}
	}
}

func TestExecErrorTypeDistinguishedFromSyntax(t *testing.T) {
	_, err := New(testDB()).Query("SELECT * FROM missing")
	if _, ok := err.(*ExecError); !ok {
		t.Errorf("semantic failure should be *ExecError, got %T", err)
	}
	_, err = New(testDB()).Query("SELECT FROM")
	if _, ok := err.(*ExecError); ok {
		t.Error("syntax failure should not be *ExecError")
	}
}
