package sqlexec

import (
	"sort"

	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// evalWindow computes the per-row values of one windowed function call over
// the ordered list of output environments. Supported functions: ROW_NUMBER,
// RANK, DENSE_RANK, NTILE-free aggregates (SUM/COUNT/AVG/MIN/MAX over the
// whole partition), and LAG/LEAD with optional offset and default.
func (e *Executor) evalWindow(fc *sqlparse.FuncCall, envs []*rowEnv) ([]sqldb.Value, error) {
	n := len(envs)
	out := make([]sqldb.Value, n)

	// Partition (length-prefixed keys: values containing delimiter bytes
	// must not alias across partition columns).
	partKeys := make([]string, n)
	var kb []byte
	for i, env := range envs {
		kb = kb[:0]
		for _, pe := range fc.Over.PartitionBy {
			v, err := evalExpr(pe, env)
			if err != nil {
				return nil, err
			}
			kb = sqldb.AppendValueKey(kb, v)
		}
		partKeys[i] = string(kb)
	}
	partitions := make(map[string][]int)
	var order []string
	for i, key := range partKeys {
		if _, ok := partitions[key]; !ok {
			order = append(order, key)
		}
		partitions[key] = append(partitions[key], i)
	}

	for _, key := range order {
		idxs := partitions[key]

		// Order within the partition.
		var sortKeys [][]sqldb.Value
		if len(fc.Over.OrderBy) > 0 {
			sortKeys = make([][]sqldb.Value, len(idxs))
			for pi, ri := range idxs {
				keys := make([]sqldb.Value, len(fc.Over.OrderBy))
				for ki, item := range fc.Over.OrderBy {
					v, err := evalExpr(item.Expr, envs[ri])
					if err != nil {
						return nil, err
					}
					keys[ki] = v
				}
				sortKeys[pi] = keys
			}
			perm := make([]int, len(idxs))
			for i := range perm {
				perm[i] = i
			}
			sort.SliceStable(perm, func(a, b int) bool {
				for ki, item := range fc.Over.OrderBy {
					c := sqldb.CompareForSort(sortKeys[perm[a]][ki], sortKeys[perm[b]][ki])
					if c == 0 {
						continue
					}
					if item.Desc {
						return c > 0
					}
					return c < 0
				}
				return false
			})
			reordered := make([]int, len(idxs))
			reorderedKeys := make([][]sqldb.Value, len(idxs))
			for i, p := range perm {
				reordered[i] = idxs[p]
				reorderedKeys[i] = sortKeys[p]
			}
			idxs = reordered
			sortKeys = reorderedKeys
		}

		if err := e.applyWindowFunc(fc, envs, idxs, sortKeys, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (e *Executor) applyWindowFunc(fc *sqlparse.FuncCall, envs []*rowEnv,
	idxs []int, sortKeys [][]sqldb.Value, out []sqldb.Value) error {

	sameKeys := func(a, b []sqldb.Value) bool {
		for i := range a {
			if sqldb.CompareForSort(a[i], b[i]) != 0 {
				return false
			}
		}
		return true
	}

	switch fc.Name {
	case "ROW_NUMBER":
		for pos, ri := range idxs {
			out[ri] = sqldb.Int(int64(pos + 1))
		}
	case "RANK":
		rank := 1
		for pos, ri := range idxs {
			if pos > 0 && sortKeys != nil && !sameKeys(sortKeys[pos-1], sortKeys[pos]) {
				rank = pos + 1
			}
			out[ri] = sqldb.Int(int64(rank))
		}
	case "DENSE_RANK":
		rank := 1
		for pos, ri := range idxs {
			if pos > 0 && sortKeys != nil && !sameKeys(sortKeys[pos-1], sortKeys[pos]) {
				rank++
			}
			out[ri] = sqldb.Int(int64(rank))
		}
	case "LAG", "LEAD":
		if len(fc.Args) < 1 || len(fc.Args) > 3 {
			return execErrf("%s expects 1 to 3 arguments", fc.Name)
		}
		offset := int64(1)
		if len(fc.Args) >= 2 {
			v, err := evalExpr(fc.Args[1], envs[idxs[0]])
			if err != nil {
				return err
			}
			if o, ok := v.AsInt(); ok {
				offset = o
			}
		}
		for pos, ri := range idxs {
			var src int
			if fc.Name == "LAG" {
				src = pos - int(offset)
			} else {
				src = pos + int(offset)
			}
			if src < 0 || src >= len(idxs) {
				if len(fc.Args) == 3 {
					v, err := evalExpr(fc.Args[2], envs[ri])
					if err != nil {
						return err
					}
					out[ri] = v
				} else {
					out[ri] = sqldb.Null()
				}
				continue
			}
			v, err := evalExpr(fc.Args[0], envs[idxs[src]])
			if err != nil {
				return err
			}
			out[ri] = v
		}
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		// Aggregate over the whole partition (no frame support).
		var vals []sqldb.Value
		if fc.Star {
			if fc.Name != "COUNT" {
				return execErrf("%s(*) is not a valid window aggregate", fc.Name)
			}
			for _, ri := range idxs {
				out[ri] = sqldb.Int(int64(len(idxs)))
			}
			return nil
		}
		if len(fc.Args) != 1 {
			return execErrf("window aggregate %s expects 1 argument", fc.Name)
		}
		for _, ri := range idxs {
			v, err := evalExpr(fc.Args[0], envs[ri])
			if err != nil {
				return err
			}
			if !v.IsNull() {
				vals = append(vals, v)
			}
		}
		var agg sqldb.Value
		switch fc.Name {
		case "COUNT":
			agg = sqldb.Int(int64(len(vals)))
		case "SUM":
			if len(vals) == 0 {
				agg = sqldb.Null()
			} else {
				s, err := sumValues(vals)
				if err != nil {
					return err
				}
				agg = s
			}
		case "AVG":
			if len(vals) == 0 {
				agg = sqldb.Null()
			} else {
				s, err := sumValues(vals)
				if err != nil {
					return err
				}
				f, _ := s.AsFloat()
				agg = sqldb.Float(f / float64(len(vals)))
			}
		case "MIN":
			agg = extremum(vals, -1)
		case "MAX":
			agg = extremum(vals, 1)
		}
		for _, ri := range idxs {
			out[ri] = agg
		}
	default:
		return execErrf("unsupported window function %s", fc.Name)
	}
	return nil
}
