package sqlexec

import (
	"fmt"
	"math/rand"
	"testing"

	"genedit/internal/sqldb"
)

// Property-style parity tests: the hash-join fast path must produce exactly
// the same rows, in the same order, as the nested-loop reference across all
// join kinds — including NULL keys, duplicate keys, residual non-equi
// conjuncts, and mixed-kind key columns (which must fall back).

// parityDB builds two tables with overlapping integer keys, NULLs and
// duplicates at the given rates, plus payload columns.
func parityDB(r *rand.Rand, leftN, rightN, keySpace int, nullRate float64) *sqldb.Database {
	db := sqldb.NewDatabase("parity")
	left := sqldb.NewTable("L",
		sqldb.Column{Name: "K"}, sqldb.Column{Name: "LV"}, sqldb.Column{Name: "GRP"})
	for i := 0; i < leftN; i++ {
		k := sqldb.Int(int64(r.Intn(keySpace)))
		if r.Float64() < nullRate {
			k = sqldb.Null()
		}
		left.MustAppend(k, sqldb.Int(int64(i)), sqldb.Str(fmt.Sprintf("g%d", r.Intn(3))))
	}
	right := sqldb.NewTable("R",
		sqldb.Column{Name: "K"}, sqldb.Column{Name: "RV"}, sqldb.Column{Name: "GRP"})
	for i := 0; i < rightN; i++ {
		k := sqldb.Int(int64(r.Intn(keySpace)))
		if r.Float64() < nullRate {
			k = sqldb.Null()
		}
		right.MustAppend(k, sqldb.Int(int64(100+i)), sqldb.Str(fmt.Sprintf("g%d", r.Intn(3))))
	}
	db.AddTable(left)
	db.AddTable(right)
	return db
}

// runBoth executes sql with the hash path enabled and disabled and asserts
// row-for-row (ordered) equality.
func runBoth(t *testing.T, db *sqldb.Database, sql string) {
	t.Helper()
	hashExec := New(db)
	nestedExec := New(db)
	nestedExec.SetHashJoin(false)

	hres, herr := hashExec.Query(sql)
	nres, nerr := nestedExec.Query(sql)
	if (herr == nil) != (nerr == nil) {
		t.Fatalf("error parity broken for %q:\n  hash:   %v\n  nested: %v", sql, herr, nerr)
	}
	if herr != nil {
		return
	}
	if len(hres.Rows) != len(nres.Rows) {
		t.Fatalf("row count mismatch for %q: hash %d, nested %d", sql, len(hres.Rows), len(nres.Rows))
	}
	for i := range hres.Rows {
		for j := range hres.Rows[i] {
			hv, nv := hres.Rows[i][j], nres.Rows[i][j]
			if hv.IsNull() != nv.IsNull() || (!hv.IsNull() && !hv.Equal(nv)) {
				t.Fatalf("row %d col %d mismatch for %q: hash %v, nested %v",
					i, j, sql, hv.String(), nv.String())
			}
		}
	}
}

var joinKinds = []string{"JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN"}

func TestHashJoinParityEquiAllKinds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		db := parityDB(r, 20+r.Intn(40), 20+r.Intn(40), 12, 0.15)
		for _, kind := range joinKinds {
			runBoth(t, db, fmt.Sprintf("SELECT L.K, LV, R.K, RV FROM L %s R ON L.K = R.K", kind))
		}
	}
}

func TestHashJoinParityResidualConjuncts(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		db := parityDB(r, 30, 30, 8, 0.1)
		for _, kind := range joinKinds {
			// Equi conjunct plus non-equi residual; conjunct order varied so
			// residual placement before/after the equi key is covered.
			runBoth(t, db, fmt.Sprintf(
				"SELECT LV, RV FROM L %s R ON L.K = R.K AND LV < RV", kind))
			runBoth(t, db, fmt.Sprintf(
				"SELECT LV, RV FROM L %s R ON LV < RV AND L.K = R.K AND L.GRP = R.GRP", kind))
		}
	}
}

func TestHashJoinParityCompositeAndExpressionKeys(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	db := parityDB(r, 40, 40, 6, 0.1)
	for _, kind := range joinKinds {
		runBoth(t, db, fmt.Sprintf(
			"SELECT LV, RV FROM L %s R ON L.K = R.K AND L.GRP = R.GRP", kind))
		// Arithmetic on one side of the key still hashes.
		runBoth(t, db, fmt.Sprintf(
			"SELECT LV, RV FROM L %s R ON L.K + 1 = R.K", kind))
		// Constant-vs-column equality conjunct.
		runBoth(t, db, fmt.Sprintf(
			"SELECT LV, RV FROM L %s R ON L.K = R.K AND R.GRP = 'g1'", kind))
	}
}

func TestHashJoinParityMixedKindKeys(t *testing.T) {
	// Compare semantics across kinds (int 1, string "1", bool, float) are
	// not an equivalence relation; the hash path must fall back and results
	// must still match the nested loop exactly.
	db := sqldb.NewDatabase("mixed")
	left := sqldb.NewTable("L", sqldb.Column{Name: "K"}, sqldb.Column{Name: "LV"})
	right := sqldb.NewTable("R", sqldb.Column{Name: "K"}, sqldb.Column{Name: "RV"})
	leftKeys := []sqldb.Value{
		sqldb.Int(1), sqldb.Str("1"), sqldb.Float(2.5), sqldb.Str("TRUE"),
		sqldb.Bool(true), sqldb.Null(), sqldb.Str("x"),
	}
	rightKeys := []sqldb.Value{
		sqldb.Float(1), sqldb.Str("2.5"), sqldb.Bool(true), sqldb.Int(1),
		sqldb.Null(), sqldb.Str("TRUE"), sqldb.Str("x"),
	}
	for i, k := range leftKeys {
		left.MustAppend(k, sqldb.Int(int64(i)))
	}
	for i, k := range rightKeys {
		right.MustAppend(k, sqldb.Int(int64(100+i)))
	}
	db.AddTable(left)
	db.AddTable(right)
	for _, kind := range joinKinds {
		runBoth(t, db, fmt.Sprintf("SELECT LV, RV FROM L %s R ON L.K = R.K", kind))
	}
}

func TestHashJoinParityDownstreamClauses(t *testing.T) {
	// Joins feeding aggregation, ordering and DISTINCT must be unaffected.
	r := rand.New(rand.NewSource(17))
	db := parityDB(r, 50, 50, 10, 0.1)
	runBoth(t, db, "SELECT L.GRP, COUNT(*), SUM(RV) FROM L JOIN R ON L.K = R.K GROUP BY L.GRP ORDER BY L.GRP")
	runBoth(t, db, "SELECT DISTINCT L.K FROM L LEFT JOIN R ON L.K = R.K ORDER BY 1")
	runBoth(t, db, "SELECT LV, RV FROM L JOIN R ON L.K = R.K ORDER BY LV, RV LIMIT 10")
	// Three-way join chains through nested JoinExprs.
	runBoth(t, db, "SELECT COUNT(*) FROM L JOIN R ON L.K = R.K JOIN L AS L2 ON R.K = L2.K")
}

func TestHashJoinEmptySides(t *testing.T) {
	db := sqldb.NewDatabase("empty")
	left := sqldb.NewTable("L", sqldb.Column{Name: "K"})
	right := sqldb.NewTable("R", sqldb.Column{Name: "K"})
	left.MustAppend(sqldb.Int(1))
	db.AddTable(left)
	db.AddTable(right)
	for _, kind := range joinKinds {
		runBoth(t, db, fmt.Sprintf("SELECT * FROM L %s R ON L.K = R.K", kind))
	}
}

func TestStatementCacheHitsAndParity(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	db := parityDB(r, 20, 20, 8, 0.1)
	exec := New(db)
	sql := "SELECT COUNT(*) FROM L JOIN R ON L.K = R.K"
	first, err := exec.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := exec.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if !first.Rows[0][0].Equal(again.Rows[0][0]) {
			t.Fatalf("cached statement changed result: %v vs %v",
				first.Rows[0][0].String(), again.Rows[0][0].String())
		}
	}
	hits, misses := exec.StatementCacheStats()
	if hits != 5 || misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 5 / 1", hits, misses)
	}

	uncached := New(db)
	uncached.SetStatementCaching(false)
	res, err := uncached.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rows[0][0].Equal(first.Rows[0][0]) {
		t.Fatalf("uncached result differs: %v vs %v", res.Rows[0][0].String(), first.Rows[0][0].String())
	}
	if h, m := uncached.StatementCacheStats(); h != 0 || m != 0 {
		t.Errorf("disabled cache reported stats %d/%d", h, m)
	}
}

func TestStatementCacheLRUEviction(t *testing.T) {
	c := newStmtCache(2)
	put := func(sql string) { c.put(sql, nil, nil) }
	put("a")
	put("b")
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a should be cached")
	}
	put("c") // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a should survive eviction")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c should be cached")
	}
}

func TestHashJoinParityDelimiterInjection(t *testing.T) {
	// Multi-column string keys containing the encoding delimiter must not
	// alias across columns ("a\x1f"+"b" vs "a"+"\x1fb").
	db := sqldb.NewDatabase("delim")
	left := sqldb.NewTable("L", sqldb.Column{Name: "A"}, sqldb.Column{Name: "B"})
	right := sqldb.NewTable("R", sqldb.Column{Name: "A"}, sqldb.Column{Name: "B"})
	left.MustAppend(sqldb.Str("a\x1f"), sqldb.Str("b"))
	left.MustAppend(sqldb.Str("7|x"), sqldb.Str("y"))
	right.MustAppend(sqldb.Str("a"), sqldb.Str("\x1fb"))
	right.MustAppend(sqldb.Str("7"), sqldb.Str("|xy"))
	right.MustAppend(sqldb.Str("a\x1f"), sqldb.Str("b"))
	db.AddTable(left)
	db.AddTable(right)
	for _, kind := range joinKinds {
		runBoth(t, db, fmt.Sprintf("SELECT L.A, L.B, R.A, R.B FROM L %s R ON L.A = R.A AND L.B = R.B", kind))
	}
}

func TestHashJoinParityResidualErrorBeforeEqui(t *testing.T) {
	// A residual conjunct that errors and precedes the equi conjunct in the
	// AND tree must fail under both paths: the nested loop evaluates it for
	// every pair, so the hash path may not skip it just because the equi key
	// never matches (equi conds are only taken from the conjunct prefix).
	db := sqldb.NewDatabase("resid")
	left := sqldb.NewTable("L", sqldb.Column{Name: "NAME"}, sqldb.Column{Name: "K"})
	right := sqldb.NewTable("R", sqldb.Column{Name: "K"})
	left.MustAppend(sqldb.Str("abc"), sqldb.Int(1))
	right.MustAppend(sqldb.Int(2))
	db.AddTable(left)
	db.AddTable(right)
	runBoth(t, db, "SELECT COUNT(*) FROM L JOIN R ON CAST(L.NAME AS INTEGER) > 0 AND L.K = R.K")
	// Same conjuncts with the equi first: the hash path applies, and both
	// paths succeed because the erroring residual is only reached for pairs
	// whose keys match (there are none).
	runBoth(t, db, "SELECT COUNT(*) FROM L JOIN R ON L.K = R.K AND CAST(L.NAME AS INTEGER) > 0")
}

func TestHashJoinParityNullKeyResidualError(t *testing.T) {
	// SQL AND does not short-circuit on NULL: for a pair whose key conjunct
	// is NULL the nested loop still evaluates the residual, so a residual
	// that errors must fail under both paths even when the only pairs
	// reaching it have NULL keys (the hash path must fall back).
	db := sqldb.NewDatabase("nullresid")
	left := sqldb.NewTable("L", sqldb.Column{Name: "K"}, sqldb.Column{Name: "NAME"})
	right := sqldb.NewTable("R", sqldb.Column{Name: "K"})
	left.MustAppend(sqldb.Null(), sqldb.Str("abc"))
	right.MustAppend(sqldb.Int(2))
	db.AddTable(left)
	db.AddTable(right)
	runBoth(t, db, "SELECT COUNT(*) FROM L JOIN R ON L.K = R.K AND CAST(L.NAME AS INTEGER) > 0")
	// Same shape where the later *key* conjunct errors on the NULL-keyed
	// row: all key expressions are evaluated for every row, so the error
	// triggers the fallback and surfaces exactly as the nested loop's.
	runBoth(t, db, "SELECT COUNT(*) FROM L JOIN R ON L.K = R.K AND CAST(L.NAME AS INTEGER) = R.K")
}

func TestHashJoinParityNullResidualContinues(t *testing.T) {
	// A NULL residual conjunct rejects the pair but does not stop the AND
	// chain: a later erroring conjunct still surfaces under both paths.
	db := sqldb.NewDatabase("nullchain")
	left := sqldb.NewTable("L", sqldb.Column{Name: "K"}, sqldb.Column{Name: "V"}, sqldb.Column{Name: "NAME"})
	right := sqldb.NewTable("R", sqldb.Column{Name: "K"})
	left.MustAppend(sqldb.Int(1), sqldb.Null(), sqldb.Str("abc"))
	right.MustAppend(sqldb.Int(1))
	db.AddTable(left)
	db.AddTable(right)
	runBoth(t, db, "SELECT COUNT(*) FROM L JOIN R ON L.K = R.K AND L.V > 0 AND CAST(L.NAME AS INTEGER) > 0")
}
