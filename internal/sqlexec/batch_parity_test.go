package sqlexec_test

import (
	"fmt"
	"testing"

	"genedit/internal/sqldb"
	"genedit/internal/sqlexec"
)

// Adversarial three-engine parity for the batch executor: hand-built tables
// and statements aimed at the seams the randomized suite only grazes —
// empty tables (zero morsels), all-NULL and mixed-kind columns, selections
// clustered at morsel boundaries, and error selection across morsels and
// phases. Everything goes through assertExecParity, so the interpreter
// remains the single source of truth.

// batchParityDB builds a database whose table shapes are aligned against
// parityMorselSize (7): 40 rows span 6 morsels with a ragged tail.
func batchParityDB() *sqldb.Database {
	db := sqldb.NewDatabase("batchparity")

	empty := sqldb.NewTable("EMPTY",
		sqldb.Column{Name: "A", Type: "INTEGER"}, sqldb.Column{Name: "B", Type: "TEXT"})
	db.AddTable(empty)

	// T: I dense ints, F floats with NULL holes, S strings, N all-NULL,
	// M mixed kinds, BAD numeric strings with poisoned rows (see below).
	tt := sqldb.NewTable("T",
		sqldb.Column{Name: "I", Type: "INTEGER"},
		sqldb.Column{Name: "F", Type: "FLOAT"},
		sqldb.Column{Name: "S", Type: "TEXT"},
		sqldb.Column{Name: "N", Type: "TEXT"},
		sqldb.Column{Name: "M", Type: "TEXT"},
		sqldb.Column{Name: "EARLY", Type: "TEXT"},
		sqldb.Column{Name: "LATE", Type: "TEXT"},
	)
	for i := 0; i < 40; i++ {
		iv := sqldb.Value(sqldb.Int(int64(i % 9)))
		fv := sqldb.Value(sqldb.Float(float64(i) * 1.25))
		if i%5 == 3 {
			fv = sqldb.Null()
		}
		sv := sqldb.Value(sqldb.Str(fmt.Sprintf("v%02d", i%6)))
		if i%11 == 7 {
			sv = sqldb.Null()
		}
		var mv sqldb.Value
		switch i % 4 {
		case 0:
			mv = sqldb.Int(int64(i))
		case 1:
			mv = sqldb.Str("m" + fmt.Sprint(i%3))
		case 2:
			mv = sqldb.Float(0.5 * float64(i))
		default:
			mv = sqldb.Null()
		}
		// EARLY errors (non-numeric under arithmetic) at row 1 only; LATE
		// errors at row 20 only — morsel 0 vs morsel 2 at size 7.
		ev := sqldb.Value(sqldb.Str("1"))
		if i == 1 {
			ev = sqldb.Str("boom")
		}
		lv := sqldb.Value(sqldb.Str("2"))
		if i == 20 {
			lv = sqldb.Str("pow")
		}
		tt.MustAppend(iv, fv, sv, sqldb.Null(), mv, ev, lv)
	}
	db.AddTable(tt)

	// BOOLS: a uniformly bool column plus ints, for kind-seam comparisons.
	bt := sqldb.NewTable("BOOLS",
		sqldb.Column{Name: "B", Type: "BOOLEAN"}, sqldb.Column{Name: "I", Type: "INTEGER"})
	for i := 0; i < 15; i++ {
		bv := sqldb.Value(sqldb.Bool(i%3 == 0))
		if i%7 == 5 {
			bv = sqldb.Null()
		}
		bt.MustAppend(bv, sqldb.Int(int64(i)))
	}
	db.AddTable(bt)
	return db
}

func TestBatchAdversarialParity(t *testing.T) {
	db := batchParityDB()
	stmts := []string{
		// Empty table: zero morsels, scans and aggregates.
		"SELECT A, B FROM EMPTY",
		"SELECT A + 1 FROM EMPTY WHERE A > 0",
		"SELECT COUNT(*), COUNT(A), SUM(A), MIN(B), TOTAL(A) FROM EMPTY",
		"SELECT A, COUNT(*) FROM EMPTY GROUP BY A",
		"SELECT DISTINCT A FROM EMPTY ORDER BY 1 LIMIT 3",

		// All-NULL column in every clause position.
		"SELECT N FROM T",
		"SELECT I FROM T WHERE N IS NULL",
		"SELECT I FROM T WHERE N = 1",
		"SELECT N || 'x', N + 1, -N, NOT N FROM T",
		"SELECT COUNT(N), SUM(N), MIN(N), MAX(N), AVG(N), TOTAL(N) FROM T",
		"SELECT N, COUNT(*) FROM T GROUP BY N",

		// Selections clustered at morsel boundaries (size 7): first lane,
		// last lane, and the ragged final morsel (rows 35..39).
		"SELECT I, F FROM T WHERE I % 7 = 0",
		"SELECT I, F FROM T WHERE I % 7 = 6",
		"SELECT I FROM T WHERE I >= 35",
		"SELECT I FROM T WHERE I < 1",

		// Kernel coverage over typed, mixed and NULL-holed columns.
		"SELECT I + 2, I - 2, I * 3, I / 2, I % 3, -I FROM T",
		"SELECT F + 0.5, F * 2.0, F / 0.0, F % 0.0, -F FROM T",
		"SELECT I / 0, I % 0 FROM T",
		"SELECT S || '-' || S, UPPER(S) FROM T",
		"SELECT I FROM T WHERE S LIKE 'V0%'",
		"SELECT I FROM T WHERE S LIKE S",
		"SELECT I FROM T WHERE I BETWEEN 2 AND 5",
		"SELECT I FROM T WHERE F BETWEEN 1.0 AND 20.0",
		"SELECT I FROM T WHERE S BETWEEN 'v01' AND 'v04'",
		"SELECT I FROM T WHERE I IN (1, 3, NULL)",
		"SELECT I FROM T WHERE S IN ('v00', 'v05')",
		"SELECT I FROM T WHERE NOT (I > 3 AND F < 30.0) OR S IS NULL",
		"SELECT CASE WHEN I > 4 THEN 'hi' WHEN F > 10.0 THEN F ELSE M END FROM T",
		"SELECT CASE I WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM T",
		"SELECT M, M = 1, M < 'm1', M + 0 IS NULL FROM T WHERE M IS NOT NULL",
		"SELECT B, NOT B, -B, B = 1, B < TRUE FROM BOOLS",
		"SELECT I FROM BOOLS WHERE B",
		"SELECT COUNT(B), MIN(B), MAX(B) FROM BOOLS",

		// Error selection: WHERE errors beat projection errors regardless of
		// morsel position (LATE poisons row 20, EARLY poisons row 1).
		"SELECT EARLY + 1 FROM T WHERE LATE + 1 > 0",
		"SELECT LATE + 1 FROM T WHERE EARLY + 1 > 0",
		"SELECT EARLY + 1, LATE + 1 FROM T",
		"SELECT LATE + 1, EARLY + 1 FROM T",
		"SELECT I FROM T ORDER BY LATE + 1, EARLY + 1",
		"SELECT I, EARLY + 1 FROM T WHERE I % 7 = 1 ORDER BY LATE + 1",

		// Aggregation: typed and generic accumulators, DISTINCT, HAVING and
		// error-carrying aggregates (SUM over non-numeric strings errors in
		// the finish; EARLY + 1 errors per-row inside the accumulator).
		"SELECT COUNT(*), COUNT(F), SUM(I), SUM(F), AVG(I), AVG(F), MIN(I), MAX(F), MIN(S), MAX(S), TOTAL(I), TOTAL(F) FROM T",
		"SELECT COUNT(DISTINCT I), SUM(DISTINCT I), COUNT(DISTINCT S) FROM T",
		"SELECT SUM(S) FROM T",
		"SELECT AVG(M) FROM T",
		"SELECT SUM(EARLY + 1) FROM T",
		"SELECT I, COUNT(*), SUM(F) FROM T GROUP BY I ORDER BY I",
		"SELECT S, AVG(I) AS A FROM T GROUP BY S HAVING COUNT(*) > 3 ORDER BY A DESC, S",
		"SELECT M, COUNT(*) FROM T GROUP BY M",
		"SELECT I % 3, SUM(LATE + 0) FROM T GROUP BY I % 3",
		"SELECT I, MAX(F) FROM T GROUP BY I HAVING SUM(EARLY + 1) > 0",
		"SELECT I, COUNT(*) FROM T WHERE F IS NOT NULL GROUP BY I HAVING COUNT(*) >= 2 ORDER BY 2 DESC, 1 LIMIT 3",
		"SELECT SUM(I) FROM T WHERE I > 100",
		"SELECT MIN(I) FROM T WHERE I > 100",

		// DISTINCT / ORDER BY / LIMIT tails over batch output.
		"SELECT DISTINCT I % 4 FROM T ORDER BY 1 DESC",
		"SELECT DISTINCT S, I FROM T ORDER BY S, I LIMIT 5 OFFSET 2",
		"SELECT I, F FROM T ORDER BY F DESC, I LIMIT 4",
		"SELECT I FROM T ORDER BY I LIMIT 100 OFFSET 38",
	}
	for _, sql := range stmts {
		assertExecParity(t, db, sql)
	}
}

// TestBatchPlanCacheAndStaleness checks the cached batch plan is reused and
// recompiled — not silently wrong — when rows are appended after the first
// execution.
func TestBatchPlanCacheAndStaleness(t *testing.T) {
	db := batchParityDB()
	exec := sqlexec.New(db)
	exec.SetMorselSize(parityMorselSize)
	const sql = "SELECT COUNT(*), SUM(I) FROM T"

	res1, err := exec.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := exec.Query(sql) // cached batch plan
	if err != nil {
		t.Fatal(err)
	}
	if n1, _ := res1.Rows[0][0].AsInt(); n1 != 40 {
		t.Fatalf("COUNT(*) = %d, want 40", n1)
	}
	if n2, _ := res2.Rows[0][0].AsInt(); n2 != 40 {
		t.Fatalf("cached COUNT(*) = %d, want 40", n2)
	}

	db.Table("T").MustAppend(sqldb.Int(100), sqldb.Float(1), sqldb.Str("new"),
		sqldb.Null(), sqldb.Null(), sqldb.Str("1"), sqldb.Str("2"))
	res3, err := exec.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if n3, _ := res3.Rows[0][0].AsInt(); n3 != 41 {
		t.Fatalf("post-append COUNT(*) = %d, want 41 (stale snapshot reused)", n3)
	}
	assertExecParity(t, db, "SELECT I, COUNT(*) FROM T GROUP BY I ORDER BY I")
}

// TestMorselParallelConsistency hammers one executor from the batch parity
// suite with several morsel workers across repeated mixed queries; it exists
// chiefly to give the race detector a dense interleaving of morsel tasks,
// arena recycling and snapshot cache hits.
func TestMorselParallelConsistency(t *testing.T) {
	db := batchParityDB()
	exec := sqlexec.New(db)
	exec.SetMorselSize(3)
	exec.SetMorselWorkers(8)
	want := map[string]int{
		"SELECT I FROM T WHERE I % 2 = 0":                22,
		"SELECT I, F FROM T WHERE F > 10.0":              25,
		"SELECT I, COUNT(*) FROM T GROUP BY I":           9,
		"SELECT S, SUM(I) FROM T GROUP BY S ORDER BY S":  7,
		"SELECT DISTINCT I % 4 FROM T":                   4,
		"SELECT COUNT(*), SUM(F), MIN(S), AVG(I) FROM T": 1,
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				for sql, rows := range want {
					res, err := exec.Query(sql)
					if err != nil {
						done <- fmt.Errorf("%s: %v", sql, err)
						return
					}
					if len(res.Rows) != rows {
						done <- fmt.Errorf("%s: got %d rows, want %d", sql, len(res.Rows), rows)
						return
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
