package sqlexec

import (
	"strings"

	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// evalExpr evaluates an expression in a row environment, following SQL
// three-valued logic: comparisons and arithmetic with NULL yield NULL.
func evalExpr(e sqlparse.Expr, env *rowEnv) (sqldb.Value, error) {
	switch x := e.(type) {
	case *sqlparse.NumberLit:
		return parseNumber(x.Text)
	case *sqlparse.StringLit:
		return sqldb.Str(x.Val), nil
	case *sqlparse.NullLit:
		return sqldb.Null(), nil
	case *sqlparse.BoolLit:
		return sqldb.Bool(x.Val), nil
	case *sqlparse.ColumnRef:
		return resolveColumn(x, env)
	case *sqlparse.Unary:
		return evalUnary(x, env)
	case *sqlparse.Binary:
		return evalBinary(x, env)
	case *sqlparse.FuncCall:
		return evalFuncCall(x, env)
	case *sqlparse.CaseExpr:
		return evalCase(x, env)
	case *sqlparse.CastExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return sqldb.Null(), err
		}
		cv, err := sqldb.Cast(v, x.Type)
		if err != nil {
			return sqldb.Null(), &ExecError{Msg: err.Error()}
		}
		return cv, nil
	case *sqlparse.InExpr:
		return evalIn(x, env)
	case *sqlparse.BetweenExpr:
		return evalBetween(x, env)
	case *sqlparse.LikeExpr:
		return evalLike(x, env)
	case *sqlparse.IsNullExpr:
		v, err := evalExpr(x.X, env)
		if err != nil {
			return sqldb.Null(), err
		}
		return sqldb.Bool(v.IsNull() != x.Not), nil
	case *sqlparse.ExistsExpr:
		res, err := env.exec.evalStmt(x.Select, env.sc, env)
		if err != nil {
			return sqldb.Null(), err
		}
		return sqldb.Bool((len(res.Rows) > 0) != x.Not), nil
	case *sqlparse.SubqueryExpr:
		return evalScalarSubquery(x.Select, env)
	}
	return sqldb.Null(), execErrf("unsupported expression %T", e)
}

func parseNumber(text string) (sqldb.Value, error) {
	if !strings.ContainsAny(text, ".eE") {
		v := sqldb.Str(text)
		if i, ok := v.AsInt(); ok {
			return sqldb.Int(i), nil
		}
	}
	v := sqldb.Str(text)
	f, ok := v.AsFloat()
	if !ok {
		return sqldb.Null(), execErrf("bad numeric literal %q", text)
	}
	return sqldb.Float(f), nil
}

// resolveColumn finds a column binding, searching the current environment
// then enclosing query environments (correlation).
func resolveColumn(cr *sqlparse.ColumnRef, env *rowEnv) (sqldb.Value, error) {
	for cur := env; cur != nil; cur = cur.outer {
		for i, c := range cur.cols {
			if cr.Table != "" && !strings.EqualFold(cr.Table, c.qual) {
				continue
			}
			if strings.EqualFold(cr.Name, c.name) {
				if i < len(cur.row) {
					return cur.row[i], nil
				}
				return sqldb.Null(), nil
			}
		}
	}
	name := cr.Name
	if cr.Table != "" {
		name = cr.Table + "." + name
	}
	return sqldb.Null(), execErrf("unknown column %q", name)
}

func evalUnary(u *sqlparse.Unary, env *rowEnv) (sqldb.Value, error) {
	v, err := evalExpr(u.X, env)
	if err != nil {
		return sqldb.Null(), err
	}
	return applyUnary(u.Op, v)
}

// applyUnary is the value-level semantics of a prefix operator, shared by
// the interpreter and the compiled path.
func applyUnary(op string, v sqldb.Value) (sqldb.Value, error) {
	switch op {
	case "-":
		if v.IsNull() {
			return sqldb.Null(), nil
		}
		if v.K == sqldb.KindInt {
			return sqldb.Int(-v.I), nil
		}
		f, ok := v.AsFloat()
		if !ok {
			return sqldb.Null(), execErrf("cannot negate %q", v.String())
		}
		return sqldb.Float(-f), nil
	case "+":
		return v, nil
	case "NOT":
		if v.IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Bool(!truthy(v)), nil
	}
	return sqldb.Null(), execErrf("unsupported unary operator %q", op)
}

func evalBinary(b *sqlparse.Binary, env *rowEnv) (sqldb.Value, error) {
	// AND/OR use three-valued logic with short-circuiting.
	switch b.Op {
	case "AND":
		l, err := evalExpr(b.L, env)
		if err != nil {
			return sqldb.Null(), err
		}
		if !l.IsNull() && !truthy(l) {
			return sqldb.Bool(false), nil
		}
		r, err := evalExpr(b.R, env)
		if err != nil {
			return sqldb.Null(), err
		}
		if !r.IsNull() && !truthy(r) {
			return sqldb.Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Bool(true), nil
	case "OR":
		l, err := evalExpr(b.L, env)
		if err != nil {
			return sqldb.Null(), err
		}
		if !l.IsNull() && truthy(l) {
			return sqldb.Bool(true), nil
		}
		r, err := evalExpr(b.R, env)
		if err != nil {
			return sqldb.Null(), err
		}
		if !r.IsNull() && truthy(r) {
			return sqldb.Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Bool(false), nil
	}

	l, err := evalExpr(b.L, env)
	if err != nil {
		return sqldb.Null(), err
	}
	r, err := evalExpr(b.R, env)
	if err != nil {
		return sqldb.Null(), err
	}
	return applyBinary(b.Op, l, r)
}

// applyBinary is the value-level semantics of a non-AND/OR infix operator,
// shared by the interpreter and the compiled path.
func applyBinary(op string, l, r sqldb.Value) (sqldb.Value, error) {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return sqldb.Null(), nil
		}
		c, ok := sqldb.Compare(l, r)
		if !ok {
			return sqldb.Null(), nil
		}
		switch op {
		case "=":
			return sqldb.Bool(c == 0), nil
		case "<>":
			return sqldb.Bool(c != 0), nil
		case "<":
			return sqldb.Bool(c < 0), nil
		case "<=":
			return sqldb.Bool(c <= 0), nil
		case ">":
			return sqldb.Bool(c > 0), nil
		case ">=":
			return sqldb.Bool(c >= 0), nil
		}
	case "||":
		if l.IsNull() || r.IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Str(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		return evalArith(op, l, r)
	}
	return sqldb.Null(), execErrf("unsupported operator %q", op)
}

func evalArith(op string, l, r sqldb.Value) (sqldb.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqldb.Null(), nil
	}
	bothInt := l.K == sqldb.KindInt && r.K == sqldb.KindInt
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return sqldb.Null(), execErrf("non-numeric operand for %q: %q, %q", op, l.String(), r.String())
	}
	if bothInt {
		switch op {
		case "+":
			return sqldb.Int(l.I + r.I), nil
		case "-":
			return sqldb.Int(l.I - r.I), nil
		case "*":
			return sqldb.Int(l.I * r.I), nil
		case "/":
			if r.I == 0 {
				return sqldb.Null(), nil
			}
			return sqldb.Int(l.I / r.I), nil
		case "%":
			if r.I == 0 {
				return sqldb.Null(), nil
			}
			return sqldb.Int(l.I % r.I), nil
		}
	}
	switch op {
	case "+":
		return sqldb.Float(lf + rf), nil
	case "-":
		return sqldb.Float(lf - rf), nil
	case "*":
		return sqldb.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return sqldb.Null(), nil
		}
		return sqldb.Float(lf / rf), nil
	case "%":
		if rf == 0 {
			return sqldb.Null(), nil
		}
		return sqldb.Float(float64(int64(lf) % int64(rf))), nil
	}
	return sqldb.Null(), execErrf("unsupported arithmetic operator %q", op)
}

func evalCase(ce *sqlparse.CaseExpr, env *rowEnv) (sqldb.Value, error) {
	if ce.Operand != nil {
		op, err := evalExpr(ce.Operand, env)
		if err != nil {
			return sqldb.Null(), err
		}
		for _, w := range ce.Whens {
			cv, err := evalExpr(w.Cond, env)
			if err != nil {
				return sqldb.Null(), err
			}
			if !op.IsNull() && !cv.IsNull() && op.Equal(cv) {
				return evalExpr(w.Then, env)
			}
		}
	} else {
		for _, w := range ce.Whens {
			cv, err := evalExpr(w.Cond, env)
			if err != nil {
				return sqldb.Null(), err
			}
			if truthy(cv) {
				return evalExpr(w.Then, env)
			}
		}
	}
	if ce.Else != nil {
		return evalExpr(ce.Else, env)
	}
	return sqldb.Null(), nil
}

func evalIn(in *sqlparse.InExpr, env *rowEnv) (sqldb.Value, error) {
	x, err := evalExpr(in.X, env)
	if err != nil {
		return sqldb.Null(), err
	}
	if x.IsNull() {
		return sqldb.Null(), nil
	}
	var candidates []sqldb.Value
	if in.Select != nil {
		res, err := env.exec.evalStmt(in.Select, env.sc, env)
		if err != nil {
			return sqldb.Null(), err
		}
		if len(res.Columns) != 1 {
			return sqldb.Null(), execErrf("IN subquery must return one column, got %d", len(res.Columns))
		}
		for _, r := range res.Rows {
			candidates = append(candidates, r[0])
		}
	} else {
		for _, item := range in.List {
			v, err := evalExpr(item, env)
			if err != nil {
				return sqldb.Null(), err
			}
			candidates = append(candidates, v)
		}
	}
	sawNull := false
	for _, c := range candidates {
		if c.IsNull() {
			sawNull = true
			continue
		}
		if x.Equal(c) {
			return sqldb.Bool(!in.Not), nil
		}
	}
	if sawNull {
		return sqldb.Null(), nil
	}
	return sqldb.Bool(in.Not), nil
}

func evalBetween(b *sqlparse.BetweenExpr, env *rowEnv) (sqldb.Value, error) {
	x, err := evalExpr(b.X, env)
	if err != nil {
		return sqldb.Null(), err
	}
	lo, err := evalExpr(b.Lo, env)
	if err != nil {
		return sqldb.Null(), err
	}
	hi, err := evalExpr(b.Hi, env)
	if err != nil {
		return sqldb.Null(), err
	}
	if x.IsNull() || lo.IsNull() || hi.IsNull() {
		return sqldb.Null(), nil
	}
	c1, ok1 := sqldb.Compare(x, lo)
	c2, ok2 := sqldb.Compare(x, hi)
	if !ok1 || !ok2 {
		return sqldb.Null(), nil
	}
	in := c1 >= 0 && c2 <= 0
	return sqldb.Bool(in != b.Not), nil
}

func evalLike(l *sqlparse.LikeExpr, env *rowEnv) (sqldb.Value, error) {
	x, err := evalExpr(l.X, env)
	if err != nil {
		return sqldb.Null(), err
	}
	p, err := evalExpr(l.Pattern, env)
	if err != nil {
		return sqldb.Null(), err
	}
	if x.IsNull() || p.IsNull() {
		return sqldb.Null(), nil
	}
	matched := likeMatch(strings.ToLower(x.String()), strings.ToLower(p.String()))
	return sqldb.Bool(matched != l.Not), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (single char)
// wildcards, case-folded by the caller.
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern/string positions.
	m, n := len(pattern), len(s)
	prev := make([]bool, n+1)
	curr := make([]bool, n+1)
	prev[0] = true
	for i := 1; i <= m; i++ {
		pc := pattern[i-1]
		if pc == '%' {
			curr[0] = prev[0]
		} else {
			curr[0] = false
		}
		for j := 1; j <= n; j++ {
			switch pc {
			case '%':
				curr[j] = curr[j-1] || prev[j]
			case '_':
				curr[j] = prev[j-1]
			default:
				curr[j] = prev[j-1] && s[j-1] == pc
			}
		}
		prev, curr = curr, prev
	}
	return prev[n]
}

func evalScalarSubquery(sel *sqlparse.SelectStmt, env *rowEnv) (sqldb.Value, error) {
	res, err := env.exec.evalStmt(sel, env.sc, env)
	if err != nil {
		return sqldb.Null(), err
	}
	if len(res.Columns) != 1 {
		return sqldb.Null(), execErrf("scalar subquery must return one column, got %d", len(res.Columns))
	}
	if len(res.Rows) == 0 {
		return sqldb.Null(), nil
	}
	if len(res.Rows) > 1 {
		return sqldb.Null(), execErrf("scalar subquery returned %d rows", len(res.Rows))
	}
	return res.Rows[0][0], nil
}

// truthy maps a value to filter acceptance: NULL and FALSE reject.
func truthy(v sqldb.Value) bool {
	switch v.K {
	case sqldb.KindNull:
		return false
	case sqldb.KindBool:
		return v.B
	case sqldb.KindInt:
		return v.I != 0
	case sqldb.KindFloat:
		return v.F != 0
	case sqldb.KindString:
		return v.S != ""
	}
	return false
}

// containsAggregate reports whether the expression contains a non-windowed
// aggregate call.
func containsAggregate(e sqlparse.Expr) bool {
	found := false
	sqlparse.WalkExprs(e, func(x sqlparse.Expr) {
		if fc, ok := x.(*sqlparse.FuncCall); ok && fc.Over == nil && isAggregateName(fc.Name) {
			found = true
		}
	})
	return found
}

func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "TOTAL":
		return true
	}
	return false
}

// collectWindowCalls gathers distinct windowed function calls from the
// projection and ORDER BY expressions.
func collectWindowCalls(items []sqlparse.SelectItem, orderBy []sqlparse.OrderItem) []*sqlparse.FuncCall {
	var calls []*sqlparse.FuncCall
	add := func(e sqlparse.Expr) {
		sqlparse.WalkExprs(e, func(x sqlparse.Expr) {
			if fc, ok := x.(*sqlparse.FuncCall); ok && fc.Over != nil {
				calls = append(calls, fc)
			}
		})
	}
	for _, item := range items {
		add(item.Expr)
	}
	for _, o := range orderBy {
		add(o.Expr)
	}
	return calls
}
