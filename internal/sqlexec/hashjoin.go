package sqlexec

import (
	"math"
	"strconv"
	"strings"

	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// Hash equi-join. evalJoin detects equality conjuncts in the ON clause whose
// two sides bind entirely to the left and right inputs, builds a hash table
// on the smaller side, and probes with the other — turning the O(n·m)
// nested-loop scan into O(n+m) for the FK joins that dominate the workload.
// Non-equi conjuncts are kept as a residual filter on hash matches, and any
// condition the analysis cannot prove safe falls back to the nested loop.
//
// Parity with the nested loop is exact: a pair of rows matches the ON clause
// iff every AND-conjunct is truthy, NULL keys never match (SQL three-valued
// equality), and the join keys are bucketed by a canonicalization that is
// only used when every non-NULL key value in a column is of one comparison
// class (numeric, boolean, or string) — sqldb.Compare's cross-class
// equalities are not an equivalence relation, so mixed-class columns (and
// NaN keys, which Compare treats as equal to everything) fall back to the
// nested loop.

// equiCond is one `leftExpr = rightExpr` conjunct: leftKey binds only to
// left-input columns (or is constant) and rightKey only to right-input
// columns (or is constant).
type equiCond struct {
	leftKey  sqlparse.Expr
	rightKey sqlparse.Expr
}

// splitConjuncts flattens an AND tree into its conjuncts, in tree order.
func splitConjuncts(e sqlparse.Expr, out []sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(*sqlparse.Binary); ok && b.Op == "AND" {
		out = splitConjuncts(b.L, out)
		return splitConjuncts(b.R, out)
	}
	return append(out, e)
}

// Expression side classification. A conjunct side is usable as a hash key
// only if evaluating it against just its own input produces the same value
// as evaluating it against the combined row, so a column ref that matches
// any left column is "left" (combined-row resolution prefers the left
// match), one matching only right columns is "right", and one resolving in
// neither (correlated/unknown) poisons the conjunct.
const (
	sideNone  = iota // no column refs: constant under both inputs
	sideLeft         // all refs bind to the left input
	sideRight        // all refs bind to the right input
	sideMixed        // refs from both sides, outer refs, or unsupported nodes
)

func refMatchesAny(cr *sqlparse.ColumnRef, cols []bindCol) bool {
	for _, c := range cols {
		if cr.Table != "" && !strings.EqualFold(cr.Table, c.qual) {
			continue
		}
		if strings.EqualFold(cr.Name, c.name) {
			return true
		}
	}
	return false
}

func mergeSide(a, b int) int {
	switch {
	case a == sideMixed || b == sideMixed:
		return sideMixed
	case a == sideNone:
		return b
	case b == sideNone || a == b:
		return a
	default:
		return sideMixed
	}
}

// exprSide classifies which input e's columns bind to. Subqueries, window
// calls and aggregates are rejected (sideMixed): they may read enclosing
// state the per-side environment does not carry.
func exprSide(e sqlparse.Expr, left, right []bindCol) int {
	side := sideNone
	sqlparse.WalkExprs(e, func(x sqlparse.Expr) {
		switch n := x.(type) {
		case *sqlparse.SubqueryExpr, *sqlparse.ExistsExpr:
			side = sideMixed
		case *sqlparse.InExpr:
			if n.Select != nil {
				side = sideMixed
			}
		case *sqlparse.FuncCall:
			if n.Over != nil || isAggregateName(n.Name) {
				side = sideMixed
			}
		case *sqlparse.ColumnRef:
			switch {
			case refMatchesAny(n, left):
				side = mergeSide(side, sideLeft)
			case refMatchesAny(n, right):
				side = mergeSide(side, sideRight)
			default:
				side = sideMixed
			}
		}
	})
	return side
}

// analyzeJoinOn partitions the ON conjuncts into hashable equi-conditions
// and a residual evaluated per candidate pair. Only the longest hashable
// *prefix* of the conjunct list becomes equi-conditions: once a residual
// appears, every later conjunct stays residual too. This preserves the
// nested loop's short-circuit error semantics exactly — a residual is then
// evaluated for precisely the pairs whose earlier conjuncts (all equi, plus
// earlier residuals) passed, never skipped because an equi conjunct *after*
// it in the AND tree failed first under hashing.
func analyzeJoinOn(on sqlparse.Expr, left, right []bindCol) (conds []equiCond, residual []sqlparse.Expr) {
	for _, conj := range splitConjuncts(on, nil) {
		if len(residual) == 0 {
			if b, ok := conj.(*sqlparse.Binary); ok && b.Op == "=" {
				ls := exprSide(b.L, left, right)
				rs := exprSide(b.R, left, right)
				switch {
				case (ls == sideLeft || ls == sideNone) && (rs == sideRight || rs == sideNone) && !(ls == sideNone && rs == sideNone):
					conds = append(conds, equiCond{leftKey: b.L, rightKey: b.R})
					continue
				case (ls == sideRight || ls == sideNone) && (rs == sideLeft || rs == sideNone) && !(ls == sideNone && rs == sideNone):
					conds = append(conds, equiCond{leftKey: b.R, rightKey: b.L})
					continue
				}
			}
		}
		residual = append(residual, conj)
	}
	return conds, residual
}

// Key classification: sqldb.Compare equates values across kinds through two
// different lenses (numeric value, rendered string), which is not transitive
// at the edges, so hashing is only attempted when each key column is
// homogeneous. Within one class a canonical string key reproduces Compare
// exactly.
const (
	classEmpty = iota // no non-NULL values seen yet
	classNumeric
	classBool
	classString
	classMixed // mixed kinds or NaN: no sound canonical key, fall back
)

func keyClassOf(v sqldb.Value) int {
	switch v.K {
	case sqldb.KindInt, sqldb.KindFloat:
		if f, _ := v.AsFloat(); math.IsNaN(f) {
			return classMixed // Compare treats NaN as equal to every number
		}
		return classNumeric
	case sqldb.KindBool:
		return classBool
	default:
		return classString
	}
}

func mergeKeyClass(a, b int) int {
	switch {
	case a == classEmpty:
		return b
	case b == classEmpty || a == b:
		return a
	default:
		return classMixed
	}
}

// canonicalKey renders v so that two values within the same class share a
// key iff sqldb.Compare orders them equal. NULL has no key (never matches).
func canonicalKey(v sqldb.Value, class int) string {
	switch class {
	case classNumeric:
		f, _ := v.AsFloat()
		if f == 0 {
			f = 0 // fold -0 into +0: Compare orders them equal
		}
		return strconv.FormatFloat(f, 'g', -1, 64)
	case classBool:
		if v.B {
			return "1"
		}
		return "0"
	default:
		return v.String()
	}
}

// joinKeys evaluates the per-row key expressions for one input. keys[i] is
// nil when any key value of row i is NULL (the row can never hash-match).
// Every expression is evaluated for every row — no early exit on NULL — so
// an evaluation error in a later key conjunct is detected (and triggers the
// nested-loop fallback) exactly as the nested loop, which does not
// short-circuit AND on NULL, would have surfaced it. hasNull reports
// whether any row carried a NULL key.
func (e *Executor) joinKeys(rows []sqldb.Row, cols []bindCol, exprs []sqlparse.Expr,
	sc *scope, outer *rowEnv) (keys [][]sqldb.Value, classes []int, hasNull bool, err error) {

	keys = make([][]sqldb.Value, len(rows))
	classes = make([]int, len(exprs))
	env := &rowEnv{exec: e, sc: sc, cols: cols, outer: outer}
	// One backing array feeds every row's key slots: n·width slots in a
	// single allocation instead of one per row. Slots of NULL-keyed rows go
	// unused, which costs nothing.
	backing := make([]sqldb.Value, len(rows)*len(exprs))
	for i, row := range rows {
		env.row = row
		vals := backing[i*len(exprs) : (i+1)*len(exprs) : (i+1)*len(exprs)]
		rowNull := false
		for j, ex := range exprs {
			v, err := evalExpr(ex, env)
			if err != nil {
				return nil, nil, false, err
			}
			if v.IsNull() {
				rowNull = true
				continue
			}
			classes[j] = mergeKeyClass(classes[j], keyClassOf(v))
			vals[j] = v
		}
		if rowNull {
			hasNull = true
		} else {
			keys[i] = vals
		}
	}
	return keys, classes, hasNull, nil
}

// hashJoin executes the join via hash matching. It reports handled=false
// (with no side effects) when a sound hash plan is unavailable — a key
// evaluation error, or a key column mixing comparison classes — in which
// case the caller runs the nested loop.
func (e *Executor) hashJoin(j *sqlparse.JoinExpr, left, right relation, cols []bindCol,
	conds []equiCond, residual []sqlparse.Expr, sc *scope, outer *rowEnv) (relation, bool, error) {

	leftExprs := make([]sqlparse.Expr, len(conds))
	rightExprs := make([]sqlparse.Expr, len(conds))
	for i, c := range conds {
		leftExprs[i] = c.leftKey
		rightExprs[i] = c.rightKey
	}
	// A key-evaluation error falls back rather than failing: the nested loop
	// may legitimately never evaluate that conjunct for the erroring row
	// (AND short-circuits on false, and unmatched pairs skip later
	// conjuncts).
	leftKeys, leftClasses, leftNull, err := e.joinKeys(left.rows, left.cols, leftExprs, sc, outer)
	if err != nil {
		return relation{}, false, nil
	}
	rightKeys, rightClasses, rightNull, err := e.joinKeys(right.rows, right.cols, rightExprs, sc, outer)
	if err != nil {
		return relation{}, false, nil
	}
	// SQL AND does not short-circuit on NULL: for a pair whose key conjunct
	// is NULL the nested loop still evaluates the residual conjuncts, whose
	// errors must surface. The hash path never visits NULL-keyed pairs, so
	// with residuals present and any NULL key it cannot reproduce that —
	// fall back.
	if len(residual) > 0 && (leftNull || rightNull) {
		return relation{}, false, nil
	}
	classes := make([]int, len(conds))
	for i := range conds {
		classes[i] = mergeKeyClass(leftClasses[i], rightClasses[i])
		if classes[i] == classMixed {
			return relation{}, false, nil
		}
	}

	// Length-prefixed encoding (sqldb.AppendLengthPrefixed): a bare
	// delimiter would let key components containing the delimiter byte alias
	// across columns ("a\x1f"+"b" vs "a"+"\x1fb") and fabricate matches the
	// nested loop never produces. One pooled scratch buffer serves every
	// build and probe key; only the interned string escapes.
	kbp := getKeyBuf()
	kb := *kbp
	defer func() {
		*kbp = kb
		putKeyBuf(kbp)
	}()
	bucketKey := func(vals []sqldb.Value) string {
		kb = kb[:0]
		for i, v := range vals {
			kb = sqldb.AppendLengthPrefixed(kb, canonicalKey(v, classes[i]))
		}
		return string(kb)
	}

	// Build on the smaller side, probe with the larger; matches are
	// accumulated per left row so emission order is identical to the nested
	// loop (left-major, right rows in input order).
	matchesPerLeft := make([][]int, len(left.rows))
	buildLeft := len(left.rows) <= len(right.rows)
	if buildLeft {
		buckets := make(map[string][]int, len(left.rows))
		for li, vals := range leftKeys {
			if vals != nil {
				k := bucketKey(vals)
				buckets[k] = append(buckets[k], li)
			}
		}
		for ri, vals := range rightKeys {
			if vals == nil {
				continue
			}
			for _, li := range buckets[bucketKey(vals)] {
				matchesPerLeft[li] = append(matchesPerLeft[li], ri)
			}
		}
	} else {
		buckets := make(map[string][]int, len(right.rows))
		for ri, vals := range rightKeys {
			if vals != nil {
				k := bucketKey(vals)
				buckets[k] = append(buckets[k], ri)
			}
		}
		for li, vals := range leftKeys {
			if vals != nil {
				matchesPerLeft[li] = buckets[bucketKey(vals)]
			}
		}
	}

	out := relation{cols: cols}
	rightMatched := make([]bool, len(right.rows))
	env := &rowEnv{exec: e, sc: sc, cols: cols, outer: outer}
	for li, lr := range left.rows {
		leftMatched := false
		for _, ri := range matchesPerLeft[li] {
			combined := append(append(make(sqldb.Row, 0, len(lr)+len(right.rows[ri])), lr...), right.rows[ri]...)
			ok := true
			env.row = combined
			for _, rexpr := range residual {
				v, err := evalExpr(rexpr, env)
				if err != nil {
					return relation{}, true, err
				}
				if v.IsNull() {
					// AND continues past NULL: the pair cannot match, but
					// later conjuncts are still evaluated (their errors
					// surface) — only a definite false stops the chain.
					ok = false
					continue
				}
				if !truthy(v) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			leftMatched = true
			rightMatched[ri] = true
			out.rows = append(out.rows, combined)
		}
		if !leftMatched && (j.Kind == sqlparse.LeftJoin || j.Kind == sqlparse.FullJoin) {
			row := append(append(make(sqldb.Row, 0, len(lr)+len(right.cols)), lr...), make(sqldb.Row, len(right.cols))...)
			out.rows = append(out.rows, row)
		}
	}
	if j.Kind == sqlparse.RightJoin || j.Kind == sqlparse.FullJoin {
		for ri, rr := range right.rows {
			if rightMatched[ri] {
				continue
			}
			row := append(make(sqldb.Row, len(left.cols), len(left.cols)+len(rr)), rr...)
			out.rows = append(out.rows, row)
		}
	}
	return out, true, nil
}

// SetHashJoin enables or disables the hash-join fast path (on by default).
// Disabling forces the nested loop; parity tests and the join benchmarks use
// it as the reference baseline.
func (e *Executor) SetHashJoin(enabled bool) { e.noHashJoin = !enabled }
