package sqlexec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"genedit/internal/sqldb"
	"genedit/internal/sqlparse"
)

// Property-style parity tests for the compiled execution engine: with
// compilation enabled (the default) every statement must produce exactly
// the interpreter's columns, rows — in order — and error text.

// runBothExec executes sql compiled and interpreted and asserts full
// parity: error presence and text, column names, row-for-row values.
func runBothExec(t *testing.T, db *sqldb.Database, sql string) {
	t.Helper()
	compiled := New(db)
	interp := New(db)
	interp.SetCompiledExec(false)

	cres, cerr := compiled.Query(sql)
	ires, ierr := interp.Query(sql)
	if (cerr == nil) != (ierr == nil) {
		t.Fatalf("error parity broken for %q:\n  compiled:    %v\n  interpreted: %v", sql, cerr, ierr)
	}
	if cerr != nil {
		if cerr.Error() != ierr.Error() {
			t.Fatalf("error text drift for %q:\n  compiled:    %q\n  interpreted: %q", sql, cerr, ierr)
		}
		return
	}
	if len(cres.Columns) != len(ires.Columns) {
		t.Fatalf("column count mismatch for %q: compiled %v, interpreted %v", sql, cres.Columns, ires.Columns)
	}
	for i := range cres.Columns {
		if cres.Columns[i] != ires.Columns[i] {
			t.Fatalf("column %d mismatch for %q: compiled %q, interpreted %q",
				i, sql, cres.Columns[i], ires.Columns[i])
		}
	}
	if len(cres.Rows) != len(ires.Rows) {
		t.Fatalf("row count mismatch for %q: compiled %d, interpreted %d", sql, len(cres.Rows), len(ires.Rows))
	}
	for i := range cres.Rows {
		if len(cres.Rows[i]) != len(ires.Rows[i]) {
			t.Fatalf("row %d arity mismatch for %q", i, sql)
		}
		for j := range cres.Rows[i] {
			cv, iv := cres.Rows[i][j], ires.Rows[i][j]
			if cv.IsNull() != iv.IsNull() || (!cv.IsNull() && !cv.Equal(iv)) {
				t.Fatalf("row %d col %d mismatch for %q: compiled %v, interpreted %v",
					i, j, sql, cv.String(), iv.String())
			}
		}
	}
}

func compiledTestDB() *sqldb.Database {
	db := sqldb.NewDatabase("compiled")
	emp := sqldb.NewTable("EMP",
		sqldb.Column{Name: "ID"}, sqldb.Column{Name: "NAME"},
		sqldb.Column{Name: "DEPT"}, sqldb.Column{Name: "SALARY"},
		sqldb.Column{Name: "HIRED"})
	rows := []struct {
		id     int64
		name   string
		dept   string
		salary sqldb.Value
		hired  string
	}{
		{1, "ann", "eng", sqldb.Int(100), "2021-03-15"},
		{2, "bob", "sales", sqldb.Int(70), "2020-07-01"},
		{3, "cat", "sales", sqldb.Int(60), "2022-01-20"},
		{4, "dan", "ops", sqldb.Null(), "2019-11-05"},
		{5, "eve", "eng", sqldb.Int(80), "2023-05-30"},
	}
	for _, r := range rows {
		emp.MustAppend(sqldb.Int(r.id), sqldb.Str(r.name), sqldb.Str(r.dept), r.salary, sqldb.Str(r.hired))
	}
	dept := sqldb.NewTable("DEPT", sqldb.Column{Name: "DEPT"}, sqldb.Column{Name: "REGION"})
	dept.MustAppend(sqldb.Str("eng"), sqldb.Str("west"))
	dept.MustAppend(sqldb.Str("sales"), sqldb.Str("east"))
	dept.MustAppend(sqldb.Str("hr"), sqldb.Str("north"))
	db.AddTable(emp)
	db.AddTable(dept)
	return db
}

func TestCompiledParityCoreShapes(t *testing.T) {
	db := compiledTestDB()
	for _, sql := range []string{
		"SELECT * FROM EMP",
		"SELECT NAME, SALARY * 2 + 1 AS D FROM EMP WHERE SALARY > 60 ORDER BY D DESC",
		"SELECT DEPT, COUNT(*), SUM(SALARY), AVG(SALARY), MIN(NAME), MAX(SALARY) FROM EMP GROUP BY DEPT ORDER BY DEPT",
		"SELECT DEPT, COUNT(*) FROM EMP GROUP BY DEPT HAVING COUNT(*) > 1 ORDER BY 2 DESC, 1",
		"SELECT DISTINCT DEPT FROM EMP ORDER BY DEPT",
		"SELECT COUNT(DISTINCT DEPT) FROM EMP",
		"SELECT NAME FROM EMP WHERE DEPT IN ('eng', 'ops') ORDER BY NAME",
		"SELECT NAME FROM EMP WHERE SALARY BETWEEN 60 AND 90 ORDER BY 1",
		"SELECT NAME FROM EMP WHERE NAME LIKE 'a%' OR NAME LIKE '%t'",
		"SELECT NAME, CASE WHEN SALARY > 75 THEN 'hi' WHEN SALARY IS NULL THEN 'none' ELSE 'lo' END FROM EMP",
		"SELECT CASE DEPT WHEN 'eng' THEN 1 WHEN 'sales' THEN 2 END, NAME FROM EMP ORDER BY NAME",
		"SELECT UPPER(NAME) || '-' || DEPT, LENGTH(NAME), SUBSTR(NAME, 1, 2) FROM EMP",
		"SELECT YEAR(HIRED), QUARTER(HIRED), COUNT(*) FROM EMP GROUP BY YEAR(HIRED), QUARTER(HIRED) ORDER BY 1, 2",
		"SELECT CAST(SALARY AS FLOAT) / 3 FROM EMP WHERE SALARY IS NOT NULL",
		"SELECT e.NAME, d.REGION FROM EMP e JOIN DEPT d ON e.DEPT = d.DEPT ORDER BY e.NAME",
		"SELECT e.NAME, d.REGION FROM EMP e LEFT JOIN DEPT d ON e.DEPT = d.DEPT ORDER BY e.NAME",
		"SELECT e.NAME, d.DEPT FROM EMP e RIGHT JOIN DEPT d ON e.DEPT = d.DEPT ORDER BY d.DEPT, e.NAME",
		"SELECT e.NAME, d.DEPT FROM EMP e FULL JOIN DEPT d ON e.DEPT = d.DEPT ORDER BY 2, 1",
		"WITH RICH AS (SELECT NAME, SALARY FROM EMP WHERE SALARY >= 80) SELECT COUNT(*), SUM(SALARY) FROM RICH",
		"WITH R(N, S) AS (SELECT NAME, SALARY FROM EMP) SELECT N FROM R WHERE S > 70 ORDER BY N",
		"SELECT T.NAME FROM (SELECT NAME, SALARY FROM EMP WHERE SALARY > 60) T ORDER BY T.NAME",
		"SELECT DEPT FROM EMP UNION SELECT DEPT FROM DEPT ORDER BY DEPT",
		"SELECT DEPT FROM EMP UNION ALL SELECT DEPT FROM DEPT",
		"SELECT DEPT FROM DEPT EXCEPT SELECT DEPT FROM EMP",
		"SELECT DEPT FROM DEPT INTERSECT SELECT DEPT FROM EMP ORDER BY 1 LIMIT 1",
		"SELECT NAME FROM EMP WHERE SALARY > (SELECT AVG(SALARY) FROM EMP)",
		"SELECT NAME FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE d.DEPT = e.DEPT)",
		"SELECT NAME, (SELECT REGION FROM DEPT d WHERE d.DEPT = e.DEPT) FROM EMP e ORDER BY NAME",
		"SELECT NAME FROM EMP WHERE DEPT IN (SELECT DEPT FROM DEPT WHERE REGION <> 'north')",
		"SELECT 1 + 2 * 3, 'a' || 'b', NOT TRUE, -(4), NULLIF(1, 1), COALESCE(NULL, 'x')",
		"SELECT NAME, ROW_NUMBER() OVER (PARTITION BY DEPT ORDER BY SALARY DESC) FROM EMP ORDER BY NAME",
		"SELECT NAME, RANK() OVER (ORDER BY SALARY DESC), SUM(SALARY) OVER () FROM EMP ORDER BY NAME",
	} {
		runBothExec(t, db, sql)
	}
}

func TestCompiledParityErrors(t *testing.T) {
	db := compiledTestDB()
	for _, sql := range []string{
		"SELECT * FROM MISSING",
		"SELECT NOPE FROM EMP",
		"SELECT x.NAME FROM EMP",
		"SELECT UNKNOWN_FUNC(NAME) FROM EMP",
		"SELECT SUM(SALARY, 2) FROM EMP",
		"SELECT AVG(*) FROM EMP",
		"SELECT NAME FROM EMP ORDER BY 9",
		"SELECT CAST(NAME AS INTEGER) FROM EMP",
		"SELECT NAME + 1 FROM EMP",
		"SELECT -NAME FROM EMP",
		"SELECT YEAR(NAME) FROM EMP",
		"SELECT SQRT(0 - SALARY) FROM EMP",
		"SELECT NAME FROM EMP WHERE CAST(NAME AS INTEGER) > 0",
		"SELECT DEPT, COUNT(*) FROM EMP GROUP BY DEPT HAVING SUM(CAST(NAME AS INTEGER)) > 0",
		"SELECT DEPT FROM EMP GROUP BY CAST(NAME AS INTEGER)",
		"SELECT NAME FROM EMP ORDER BY CAST(NAME AS INTEGER)",
		"SELECT (SELECT NAME, DEPT FROM EMP) FROM EMP",
		"SELECT (SELECT NAME FROM EMP) FROM DEPT",
		"SELECT NAME FROM EMP WHERE SALARY IN (SELECT SALARY, ID FROM EMP)",
		"WITH C(A) AS (SELECT NAME, DEPT FROM EMP) SELECT A FROM C",
		"SELECT SUM(SALARY) FROM EMP WHERE SUM(SALARY) > 0",
		"SELECT ROW_NUMBER() OVER () FROM EMP WHERE ROW_NUMBER() OVER () > 1",
		"SELECT 1 UNION SELECT 1, 2",
		"SELECT 'x' + 1",
	} {
		runBothExec(t, db, sql)
	}
}

// TestGroupKeyDelimiterInjection is the regression test for the aliasing
// bug where groupRows and rowKey joined Value.Key() components with a bare
// '\x1f': adversarial strings containing the delimiter (or the
// length-prefix characters) must not merge distinct groups, DISTINCT rows
// or compound-select rows.
func TestGroupKeyDelimiterInjection(t *testing.T) {
	db := sqldb.NewDatabase("inject")
	tbl := sqldb.NewTable("T", sqldb.Column{Name: "A"}, sqldb.Column{Name: "B"}, sqldb.Column{Name: "V"})
	pairs := [][2]string{
		{"a\x1f", "b"}, {"a", "\x1fb"},
		{"x", ""}, {"", "x"},
		{"1|y", "z"}, {"1", "|yz"},
		{"#1", "2"}, {"#", "12"},
	}
	for i, p := range pairs {
		tbl.MustAppend(sqldb.Str(p[0]), sqldb.Str(p[1]), sqldb.Int(int64(i)))
	}
	db.AddTable(tbl)

	for _, mode := range []bool{true, false} {
		exec := New(db)
		exec.SetCompiledExec(mode)
		res, err := exec.Query("SELECT A, B, COUNT(*) FROM T GROUP BY A, B")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(pairs) {
			t.Errorf("compiled=%v: GROUP BY merged adversarial keys: %d groups, want %d",
				mode, len(res.Rows), len(pairs))
		}
		for _, r := range res.Rows {
			if n, _ := r[2].AsInt(); n != 1 {
				t.Errorf("compiled=%v: group (%q,%q) has count %d, want 1", mode, r[0].S, r[1].S, n)
			}
		}
		res, err = exec.Query("SELECT DISTINCT A, B FROM T")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(pairs) {
			t.Errorf("compiled=%v: DISTINCT merged adversarial rows: %d, want %d", mode, len(res.Rows), len(pairs))
		}
		res, err = exec.Query("SELECT A, B FROM T UNION SELECT A, B FROM T")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(pairs) {
			t.Errorf("compiled=%v: UNION merged adversarial rows: %d, want %d", mode, len(res.Rows), len(pairs))
		}
	}
	runBothExec(t, db, "SELECT A, B, COUNT(*) FROM T GROUP BY A, B ORDER BY V")
	runBothExec(t, db, "SELECT A, ROW_NUMBER() OVER (PARTITION BY A, B ORDER BY V) FROM T ORDER BY V")
}

// TestLimitOffsetFolding covers the satellite bugfix: LIMIT/OFFSET are
// folded once per statement on both paths; constant expressions work,
// non-constant and non-integer ones are rejected with an ExecError, and
// fold errors surface only after the core has evaluated (a WHERE error
// still wins).
func TestLimitOffsetFolding(t *testing.T) {
	db := compiledTestDB()
	for _, sql := range []string{
		"SELECT NAME FROM EMP ORDER BY NAME LIMIT 2",
		"SELECT NAME FROM EMP ORDER BY NAME LIMIT 1 + 1 OFFSET 2 - 1",
		"SELECT NAME FROM EMP ORDER BY NAME LIMIT -1",
		"SELECT NAME FROM EMP ORDER BY NAME LIMIT 100 OFFSET 100",
		"SELECT NAME FROM EMP ORDER BY NAME LIMIT 'x'",
		"SELECT NAME FROM EMP ORDER BY NAME LIMIT SALARY",
		"SELECT NAME FROM EMP ORDER BY NAME LIMIT (SELECT 1)",
		"SELECT NAME FROM EMP ORDER BY NAME LIMIT 2 OFFSET 'y'",
		"SELECT NAME FROM EMP ORDER BY NAME LIMIT LENGTH('ab')",
		"SELECT DEPT FROM EMP UNION SELECT DEPT FROM DEPT ORDER BY DEPT LIMIT 2 OFFSET 1",
		"SELECT DEPT FROM EMP UNION SELECT DEPT FROM DEPT LIMIT UNKNOWN_FUNC(1)",
	} {
		runBothExec(t, db, sql)
	}
	for _, mode := range []bool{true, false} {
		exec := New(db)
		exec.SetCompiledExec(mode)
		_, err := exec.Query("SELECT NAME FROM EMP LIMIT SALARY")
		if err == nil || !strings.Contains(err.Error(), "constant") {
			t.Errorf("compiled=%v: non-constant LIMIT error = %v, want constant-expression rejection", mode, err)
		}
		if _, ok := err.(*ExecError); !ok {
			t.Errorf("compiled=%v: non-constant LIMIT should be *ExecError, got %T", mode, err)
		}
		_, err = exec.Query("SELECT NAME FROM EMP LIMIT 'x'")
		if err == nil || !strings.Contains(err.Error(), "requires an integer") {
			t.Errorf("compiled=%v: non-integer LIMIT error = %v", mode, err)
		}
		// A WHERE evaluation error must surface before the LIMIT fold error.
		_, err = exec.Query("SELECT NAME FROM EMP WHERE CAST(NAME AS INTEGER) > 0 LIMIT 'x'")
		if err == nil || !strings.Contains(err.Error(), "cannot cast") {
			t.Errorf("compiled=%v: WHERE error should precede LIMIT error, got %v", mode, err)
		}
	}
}

// TestTopNOrderByParity exercises the bounded-heap ORDER BY + LIMIT path
// against the interpreter's full stable sort, including duplicate keys
// (where stability is observable), NULL keys, DESC, and OFFSET.
func TestTopNOrderByParity(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	db := sqldb.NewDatabase("topn")
	tbl := sqldb.NewTable("T", sqldb.Column{Name: "K"}, sqldb.Column{Name: "V"}, sqldb.Column{Name: "G"})
	for i := 0; i < 500; i++ {
		k := sqldb.Value(sqldb.Int(int64(r.Intn(20)))) // heavy duplication: ties decided by stability
		if r.Float64() < 0.1 {
			k = sqldb.Null()
		}
		tbl.MustAppend(k, sqldb.Int(int64(i)), sqldb.Str(fmt.Sprintf("g%d", r.Intn(4))))
	}
	db.AddTable(tbl)
	for _, sql := range []string{
		"SELECT K, V FROM T ORDER BY K LIMIT 7",
		"SELECT K, V FROM T ORDER BY K DESC LIMIT 7",
		"SELECT K, V FROM T ORDER BY K, V DESC LIMIT 13 OFFSET 5",
		"SELECT K, V FROM T ORDER BY K LIMIT 0",
		"SELECT K, V FROM T ORDER BY K LIMIT 499",
		"SELECT K, V FROM T ORDER BY K LIMIT 500",
		"SELECT K, V FROM T ORDER BY K LIMIT 1000 OFFSET 490",
		"SELECT V FROM T ORDER BY K LIMIT 3",
		"SELECT DISTINCT K FROM T ORDER BY K DESC LIMIT 5",
		"SELECT G, SUM(V) AS S FROM T GROUP BY G ORDER BY S DESC LIMIT 2",
		"SELECT K, V FROM T ORDER BY 1 DESC, 2 LIMIT 9 OFFSET 3",
	} {
		runBothExec(t, db, sql)
	}
	// White-box: the heap must actually engage for a small static LIMIT.
	stmt, err := sqlparse.Parse("SELECT K FROM T ORDER BY K LIMIT 7")
	if err != nil {
		t.Fatal(err)
	}
	sp := compileStmt(db, stmt)
	if sp.fallback || sp.core.fallback {
		t.Fatal("ORDER BY + LIMIT statement should compile without fallback")
	}
	if n, ok := sp.core.topN(500); !ok || n != 7 {
		t.Errorf("topN(500) = %d, %v; want 7, true", n, ok)
	}
	if _, ok := sp.core.topN(5); ok {
		t.Error("topN should disengage when the limit covers the whole result")
	}
}

// TestPredicatePushdownParity drives single-side WHERE conjuncts across all
// join kinds, including null-accepting predicates (IS NULL) that are only
// safe to push to the preserved side, and non-total conjuncts that must
// disable pushdown entirely.
func TestPredicatePushdownParity(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	db := parityDB(r, 40, 40, 10, 0.15)
	for _, kind := range joinKinds {
		runBothExec(t, db, fmt.Sprintf(
			"SELECT LV, RV FROM L %s R ON L.K = R.K WHERE L.GRP = 'g1'", kind))
		runBothExec(t, db, fmt.Sprintf(
			"SELECT LV, RV FROM L %s R ON L.K = R.K WHERE R.GRP = 'g2' ORDER BY LV, RV", kind))
		runBothExec(t, db, fmt.Sprintf(
			"SELECT LV, RV FROM L %s R ON L.K = R.K WHERE L.GRP = 'g1' AND R.GRP <> 'g0'", kind))
		// Null-accepting predicates on each side: divergence here means a
		// predicate was pushed to a null-supplying input.
		runBothExec(t, db, fmt.Sprintf(
			"SELECT COUNT(*) FROM L %s R ON L.K = R.K WHERE L.K IS NULL", kind))
		runBothExec(t, db, fmt.Sprintf(
			"SELECT COUNT(*) FROM L %s R ON L.K = R.K WHERE R.K IS NULL", kind))
		runBothExec(t, db, fmt.Sprintf(
			"SELECT COUNT(*) FROM L %s R ON L.K = R.K WHERE R.RV IS NULL OR R.GRP = 'g1'", kind))
		// Mixed-side conjunct stays above the join.
		runBothExec(t, db, fmt.Sprintf(
			"SELECT COUNT(*) FROM L %s R ON L.K = R.K WHERE L.GRP = R.GRP AND L.LV < 20", kind))
		// A non-total conjunct (arithmetic can error) disables pushdown; an
		// erroring one must error identically.
		runBothExec(t, db, fmt.Sprintf(
			"SELECT COUNT(*) FROM L %s R ON L.K = R.K WHERE L.LV + 0 >= 0 AND R.GRP = 'g1'", kind))
		runBothExec(t, db, fmt.Sprintf(
			"SELECT COUNT(*) FROM L %s R ON L.K = R.K WHERE CAST(L.GRP AS INTEGER) > 0", kind))
	}
	// Three-way join: conjuncts push through nested join nodes.
	runBothExec(t, db,
		"SELECT COUNT(*) FROM L JOIN R ON L.K = R.K JOIN L AS L2 ON R.K = L2.K WHERE L2.GRP = 'g1' AND L.GRP = 'g0'")

	// A join whose ON expression can error must disable pushdown: the
	// interpreter evaluates ON for rows the WHERE filter would later
	// remove, so filtering them out pre-join would suppress the error.
	errDB := sqldb.NewDatabase("onerr")
	a := sqldb.NewTable("A", sqldb.Column{Name: "S"}, sqldb.Column{Name: "N"})
	a.MustAppend(sqldb.Str("drop"), sqldb.Str("abc"))
	a.MustAppend(sqldb.Str("keep"), sqldb.Int(1))
	bt := sqldb.NewTable("B", sqldb.Column{Name: "M"})
	bt.MustAppend(sqldb.Int(1))
	errDB.AddTable(a)
	errDB.AddTable(bt)
	runBothExec(t, errDB, "SELECT A.S FROM A JOIN B ON A.N + B.M = 2 WHERE A.S = 'keep'")
	runBothExec(t, errDB, "SELECT A.S FROM A JOIN B ON CAST(A.N AS INTEGER) = B.M WHERE A.S = 'keep'")
	stmtOn, err := sqlparse.Parse("SELECT A.S FROM A JOIN B ON A.N + B.M = 2 WHERE A.S = 'keep'")
	if err != nil {
		t.Fatal(err)
	}
	spOn := compileStmt(errDB, stmtOn)
	if n := len(spOn.core.from.join.left.leaf.filters); n != 0 {
		t.Errorf("non-total ON expression must disable pushdown; leaf got %d filters", n)
	}

	// White-box: inner-join single-side conjuncts land on the leaves.
	stmt, err := sqlparse.Parse("SELECT LV FROM L JOIN R ON L.K = R.K WHERE L.GRP = 'g1' AND R.GRP = 'g2'")
	if err != nil {
		t.Fatal(err)
	}
	sp := compileStmt(db, stmt)
	if sp.fallback || sp.core.fallback {
		t.Fatal("pushdown statement should compile without fallback")
	}
	if len(sp.core.where) != 0 {
		t.Errorf("inner join: %d conjuncts left above the join, want 0", len(sp.core.where))
	}
	left, right := sp.core.from.join.left.leaf, sp.core.from.join.right.leaf
	if len(left.filters) != 1 || len(right.filters) != 1 {
		t.Errorf("leaf filters = %d/%d, want 1/1", len(left.filters), len(right.filters))
	}
	// LEFT JOIN: only the preserved (left) side may receive predicates.
	stmt, err = sqlparse.Parse("SELECT LV FROM L LEFT JOIN R ON L.K = R.K WHERE L.GRP = 'g1' AND R.GRP = 'g2'")
	if err != nil {
		t.Fatal(err)
	}
	sp = compileStmt(db, stmt)
	left, right = sp.core.from.join.left.leaf, sp.core.from.join.right.leaf
	if len(left.filters) != 1 || len(right.filters) != 0 || len(sp.core.where) != 1 {
		t.Errorf("left join pushdown = %d/%d leaf filters, %d residual; want 1/0 leaf, 1 residual",
			len(left.filters), len(right.filters), len(sp.core.where))
	}
}

// TestCompiledEngagesOnWorkloadShapes pins the compiler's coverage: the
// representative statement shapes the workload templates generate must
// compile without statement- or core-level fallback (window-function cores
// excepted — those intentionally fall back).
func TestCompiledEngagesOnWorkloadShapes(t *testing.T) {
	db := compiledTestDB()
	for _, sql := range []string{
		"SELECT DEPT, SUM(SALARY) AS TOTAL FROM EMP WHERE DEPT = 'eng' AND SALARY > 0 GROUP BY DEPT ORDER BY TOTAL DESC LIMIT 5",
		"SELECT YEAR(HIRED) AS Y, SUM(SALARY) AS TOTAL FROM EMP WHERE SALARY > 0 GROUP BY YEAR(HIRED) ORDER BY TOTAL DESC LIMIT 1",
		"WITH TOTALS AS (SELECT DEPT AS ENTITY, SUM(SALARY) AS TOTAL FROM EMP WHERE SALARY > 0 GROUP BY DEPT) SELECT ENTITY, TOTAL FROM TOTALS ORDER BY TOTAL DESC",
		"SELECT e.DEPT, d.REGION, COUNT(*) FROM EMP e JOIN DEPT d ON e.DEPT = d.DEPT WHERE e.SALARY > 50 GROUP BY e.DEPT, d.REGION ORDER BY 3 DESC",
	} {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		sp := compileStmt(db, stmt)
		var check func(sp *stmtPlan) bool
		check = func(sp *stmtPlan) bool {
			if sp.fallback {
				return false
			}
			for _, c := range sp.ctes {
				if !check(c.sub) {
					return false
				}
			}
			if sp.core.fallback {
				return false
			}
			for _, p := range sp.compound {
				if p.core.fallback {
					return false
				}
			}
			return true
		}
		if !check(sp) {
			t.Errorf("workload shape fell back to the interpreter: %s", sql)
		}
	}
}

// TestCompiledConstantFolding pins folding behaviour: constant expressions
// collapse to constant programs, and folded errors stay latent until the
// expression's evaluation point (zero rows = no error).
func TestCompiledConstantFolding(t *testing.T) {
	_, isConst := compileExpr(&sqlparse.Binary{
		Op: "+",
		L:  &sqlparse.NumberLit{Text: "1"},
		R:  &sqlparse.Binary{Op: "*", L: &sqlparse.NumberLit{Text: "2"}, R: &sqlparse.NumberLit{Text: "3"}},
	}, nil)
	if !isConst {
		t.Error("constant arithmetic should fold")
	}
	if _, isConst = compileExpr(&sqlparse.ColumnRef{Name: "X"}, nil); isConst {
		t.Error("column refs must not fold")
	}

	// An erroring constant in the projection of an empty relation must not
	// surface: the interpreter never evaluates it.
	db := sqldb.NewDatabase("fold")
	empty := sqldb.NewTable("E", sqldb.Column{Name: "A"})
	db.AddTable(empty)
	runBothExec(t, db, "SELECT 'x' + 1 FROM E")
	runBothExec(t, db, "SELECT CASE WHEN FALSE THEN 'x' + 1 ELSE 0 END")
	// Short-circuited AND never evaluates its erroring right arm on FALSE.
	runBothExec(t, db, "SELECT 1 WHERE FALSE AND 'x' + 1 > 0")
}
