package miner

import (
	"reflect"
	"testing"

	"genedit/internal/pipeline"
)

func failedRec(question, sql, kind string) *pipeline.Record {
	return &pipeline.Record{
		Question: question,
		FinalSQL: sql,
		Attempts: []pipeline.Attempt{{SQL: sql, Kind: kind, Err: kind + " error"}},
	}
}

func TestClusterFailuresGroupsByShape(t *testing.T) {
	shapeA1 := "SELECT ORG_NAME, SUM(REVENUE) AS T FROM SPORTS_FINANCIALS WHERE COUNTRY = 'Canada' GROUP BY ORG_NAME ORDER BY ORG_NAME"
	shapeA2 := "SELECT ORG_NAME, SUM(REVENUE) AS T FROM SPORTS_FINANCIALS WHERE COUNTRY = 'USA' GROUP BY ORG_NAME ORDER BY ORG_NAME"
	shapeB := "SELECT COUNT(*) FROM SPORTS_VIEWERSHIP"

	clusters := ClusterFailures([]*pipeline.Record{
		failedRec("q1", shapeA1, "exec"),
		failedRec("q2", shapeA2, "exec"),
		failedRec("q3", shapeB, "exec"),
		failedRec("q1", shapeA1, "exec"), // duplicate question: one representative kept
		nil,
		{Question: "ok", FinalSQL: shapeB, OK: true}, // successes are skipped
	})
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2", len(clusters))
	}
	// Largest first.
	if got := clusters[0].Questions; !reflect.DeepEqual(got, []string{"q1", "q2"}) {
		t.Errorf("cluster 0 questions = %v", got)
	}
	if len(clusters[0].Records) != 2 {
		t.Errorf("duplicate question not deduped: %d records", len(clusters[0].Records))
	}
	if clusters[0].Kind != "exec" {
		t.Errorf("kind = %q", clusters[0].Kind)
	}
	if clusters[0].Key == clusters[1].Key {
		t.Error("different statement shapes share a cluster key")
	}
}

func TestClusterFailuresSeparatesKinds(t *testing.T) {
	sql := "SELECT ORG_NAME FROM SPORTS_FINANCIALS"
	clusters := ClusterFailures([]*pipeline.Record{
		failedRec("q1", sql, "exec"),
		failedRec("q2", sql, "syntax"),
	})
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want exec and syntax apart", len(clusters))
	}
}

func TestClusterFailuresUnparsable(t *testing.T) {
	clusters := ClusterFailures([]*pipeline.Record{
		failedRec("q1", "SELEC banana FORM", "syntax"),
		failedRec("q2", "???", "syntax"),
	})
	if len(clusters) != 1 {
		t.Fatalf("got %d clusters, want unparsable SQL pooled by kind", len(clusters))
	}
	if len(clusters[0].Records) != 2 {
		t.Fatalf("got %d records", len(clusters[0].Records))
	}
}

func TestAcronymTerms(t *testing.T) {
	got := acronymTerms("What is the NBR and QoQFP for our orgs in USA? (see NBR)")
	want := []string{"NBR", "QoQFP", "USA"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("acronymTerms = %v, want %v", got, want)
	}
	if terms := acronymTerms("no jargon here at all"); len(terms) != 0 {
		t.Errorf("extracted terms from plain text: %v", terms)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MinRecurrence != 2 || c.MaxCandidatesPerRound != 4 || c.MaxRefinements != 2 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{MinRecurrence: 5}.withDefaults()
	if c.MinRecurrence != 5 {
		t.Error("explicit MinRecurrence overridden")
	}
}

func TestCandidateIDDeterministic(t *testing.T) {
	cl := &Cluster{Key: "exec|/projection,/from|T"}
	edits := []struct{ q string }{{"q1"}, {"q2"}}
	_ = edits
	e1 := instructionEdit("q1", []string{"NBR"}, cl, 0)
	e2 := instructionEdit("q1", []string{"NBR"}, cl, 0)
	if e1.Instruction.ID != e2.Instruction.ID {
		t.Error("same question yields different instruction IDs")
	}
	if e3 := instructionEdit("q1", []string{"NBR"}, cl, 1); e3.Instruction.ID == e1.Instruction.ID {
		t.Error("refinement round shares the initial instruction ID")
	}
}
