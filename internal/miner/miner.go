// Package miner implements the background failure miner: the self-improving
// half of the serving loop. It scans the failed generation records the
// versioned cache retains (failures are cached by contract — deterministic
// for a fixed knowledge version), clusters recurring failures by failure
// type and statement shape, distills each recurring cluster into candidate
// clarification instructions, and submits them through the same
// staging → regression-gate → approve path SME edits take. Nothing the
// miner proposes reaches the live knowledge set without passing the golden
// replay bar; rejected candidates are counted and never merged.
//
// The miner never writes SQL fixes. Its theory of failure is the paper's:
// recurring errors are knowledge gaps — undefined jargon, unclarified
// intent — so the distilled artifact is knowledge (an instruction defining
// the terms a failing question uses, restating the question it keeps
// failing on), and the regression gate decides whether that knowledge
// actually helps.
package miner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"genedit/internal/decompose"
	"genedit/internal/feedback"
	"genedit/internal/knowledge"
	"genedit/internal/pipeline"
)

// Config tunes one database's miner.
type Config struct {
	// MinRecurrence is the cluster size below which a failure pattern is
	// considered noise rather than a recurring gap. Defaults to 2.
	MinRecurrence int
	// MaxCandidatesPerRound bounds how many candidate changes one round may
	// submit (each submission replays the golden suite, so rounds are
	// metered). Defaults to 4.
	MaxCandidatesPerRound int
	// MaxRefinements bounds how often the miner re-submits a refined
	// instruction for a question that stays failing although already
	// covered by mined knowledge. Defaults to 2.
	MaxRefinements int
}

func (c Config) withDefaults() Config {
	if c.MinRecurrence <= 0 {
		c.MinRecurrence = 2
	}
	if c.MaxCandidatesPerRound <= 0 {
		c.MaxCandidatesPerRound = 4
	}
	if c.MaxRefinements <= 0 {
		c.MaxRefinements = 2
	}
	return c
}

// Editor is the provenance tag mined edits carry through staging, merge
// events and the WAL — the audit trail's way to tell auto-mined knowledge
// from SME edits.
const Editor = "miner"

// Stats is a point-in-time counter snapshot for one database's miner.
type Stats struct {
	// Rounds counts completed mining rounds.
	Rounds int `json:"rounds"`
	// Scanned counts failed records examined across all rounds.
	Scanned int `json:"scanned"`
	// Clusters counts recurring clusters (size >= MinRecurrence) seen.
	Clusters int `json:"clusters"`
	// Candidates counts candidate changes submitted to the regression gate.
	Candidates int `json:"candidates"`
	// Merged counts candidates that passed the gate and were approved.
	Merged int `json:"merged"`
	// Rejected counts candidates the regression gate refused.
	Rejected int `json:"rejected"`
	// Unactionable counts clusters the miner declined to distill (syntax
	// failures, singletons, exhausted refinements).
	Unactionable int `json:"unactionable"`
}

// Cluster is one group of failed records sharing a failure type and
// statement shape.
type Cluster struct {
	// Key is the grouping key: failure kind, sorted clause-shape keys, and
	// the referenced tables.
	Key string
	// Kind is the shared failure classification ("exec" or "syntax").
	Kind string
	// Questions are the distinct failing questions, sorted.
	Questions []string
	// Records holds one representative failed record per question.
	Records []*pipeline.Record
}

// Miner mines one database's failures. It is safe for concurrent use; a
// round holds the mutex only around state updates, not around the gated
// submission (which replays the golden suite).
type Miner struct {
	cfg    Config
	solver *feedback.Solver

	mu sync.Mutex
	// rejected maps candidate feedback IDs the gate refused, so one bad
	// candidate is not resubmitted (and re-replayed) every round.
	rejected map[string]bool
	// refined counts refinement submissions per question key.
	refined map[string]int
	stats   Stats
}

// New builds a miner over one database's feedback solver. The solver owns
// the live engine and the regression gate; the miner is strictly a client
// of that path — it holds no write access to the knowledge set.
func New(solver *feedback.Solver, cfg Config) *Miner {
	return &Miner{
		cfg:      cfg.withDefaults(),
		solver:   solver,
		rejected: make(map[string]bool),
		refined:  make(map[string]int),
	}
}

// Stats returns the miner's counters.
func (m *Miner) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// RoundReport summarizes one mining round.
type RoundReport struct {
	Scanned      int `json:"scanned"`
	Clusters     int `json:"clusters"`
	Submitted    int `json:"submitted"`
	Merged       int `json:"merged"`
	Rejected     int `json:"rejected"`
	Unactionable int `json:"unactionable"`
	// MergedIDs lists the feedback IDs merged this round.
	MergedIDs []string `json:"merged_ids,omitempty"`
}

// Round runs one mining pass over the supplied failed records: cluster,
// distill, submit through the regression gate, approve what passes. The
// records are typically drained from the serving layer's failure ring plus
// the generation cache's retained failures.
func (m *Miner) Round(ctx context.Context, failed []*pipeline.Record) (RoundReport, error) {
	var rep RoundReport
	rep.Scanned = len(failed)

	clusters := ClusterFailures(failed)
	minedIDs := minedFeedbackIDs(m.solver.Engine().KnowledgeSet())

	var candidates []candidate
	for _, cl := range clusters {
		if len(cl.Records) < m.cfg.MinRecurrence {
			rep.Unactionable++
			continue
		}
		rep.Clusters++
		if cl.Kind != "exec" {
			// Syntax failures are generator slips, not knowledge gaps; no
			// instruction the miner writes changes how the model spells SQL.
			rep.Unactionable++
			continue
		}
		cand, ok := m.distill(ctx, cl, minedIDs)
		if !ok {
			rep.Unactionable++
			continue
		}
		candidates = append(candidates, cand)
	}
	if len(candidates) > m.cfg.MaxCandidatesPerRound {
		candidates = candidates[:m.cfg.MaxCandidatesPerRound]
	}

	for _, cand := range candidates {
		res, err := m.solver.SubmitCandidate(ctx, cand.feedbackID, Editor, cand.edits)
		if err != nil {
			return rep, fmt.Errorf("miner candidate %s: %w", cand.feedbackID, err)
		}
		rep.Submitted++
		if !res.Passed {
			rep.Rejected++
			m.mu.Lock()
			m.rejected[cand.feedbackID] = true
			m.mu.Unlock()
			continue
		}
		if err := m.solver.Approve(res.Pending, Editor); err != nil {
			return rep, fmt.Errorf("miner approve %s: %w", cand.feedbackID, err)
		}
		rep.Merged++
		rep.MergedIDs = append(rep.MergedIDs, cand.feedbackID)
		m.mu.Lock()
		for _, q := range cand.refinedQuestions {
			m.refined[q]++
		}
		m.mu.Unlock()
	}

	m.mu.Lock()
	m.stats.Rounds++
	m.stats.Scanned += rep.Scanned
	m.stats.Clusters += rep.Clusters
	m.stats.Candidates += rep.Submitted
	m.stats.Merged += rep.Merged
	m.stats.Rejected += rep.Rejected
	m.stats.Unactionable += rep.Unactionable
	m.mu.Unlock()
	return rep, nil
}

// ClusterFailures groups failed records by failure kind and statement
// shape. Shape is the set of clause keys of the final SQL's decomposition
// plus the tables it references — two failures of the same template land in
// one cluster even when literals differ; unparsable SQL gets its own shape.
// One representative record is kept per distinct question.
func ClusterFailures(failed []*pipeline.Record) []*Cluster {
	byKey := make(map[string]*Cluster)
	var order []string
	for _, rec := range failed {
		if rec == nil || rec.OK {
			continue
		}
		key, kind := clusterKey(rec)
		cl, ok := byKey[key]
		if !ok {
			cl = &Cluster{Key: key, Kind: kind}
			byKey[key] = cl
			order = append(order, key)
		}
		dup := false
		for _, q := range cl.Questions {
			if q == rec.Question {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		cl.Questions = append(cl.Questions, rec.Question)
		cl.Records = append(cl.Records, rec)
	}
	out := make([]*Cluster, 0, len(byKey))
	for _, k := range order {
		cl := byKey[k]
		sort.Strings(cl.Questions)
		out = append(out, cl)
	}
	// Largest clusters first: the most recurrent gap is the most valuable
	// candidate under the per-round submission budget.
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Records) > len(out[j].Records) })
	return out
}

// clusterKey derives the grouping key and failure kind for one failed
// record from its final attempt and the decomposition of its final SQL.
func clusterKey(rec *pipeline.Record) (key, kind string) {
	kind = "exec"
	if n := len(rec.Attempts); n > 0 {
		kind = rec.Attempts[n-1].Kind
	}
	shape := []string{"unparsable"}
	tables := []string{}
	if frags, err := decompose.DecomposeSQL(rec.FinalSQL); err == nil {
		shape = shape[:0]
		seen := map[string]bool{}
		for _, f := range frags {
			k := f.Key()
			if !seen[k] {
				seen[k] = true
				shape = append(shape, k)
			}
			if f.Clause == decompose.ClauseFrom {
				for _, t := range tableTokens(f.SQL) {
					tables = append(tables, t)
				}
			}
		}
		sort.Strings(shape)
		sort.Strings(tables)
	}
	return kind + "|" + strings.Join(shape, ",") + "|" + strings.Join(tables, ","), kind
}

// tableTokens extracts the schema-ish identifiers (ALL_CAPS words) from a
// FROM clause — the schema-element component of the cluster key.
func tableTokens(fromSQL string) []string {
	var out []string
	for _, tok := range strings.FieldsFunc(fromSQL, func(r rune) bool {
		return !(r == '_' || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9'))
	}) {
		if len(tok) >= 3 && tok == strings.ToUpper(tok) && tok != "JOIN" && tok != "ON" {
			out = append(out, tok)
		}
	}
	return out
}

// candidate is one distilled, ready-to-submit change.
type candidate struct {
	feedbackID string
	edits      []knowledge.Edit
	// refinedQuestions lists questions whose refinement counter should
	// advance if this candidate merges.
	refinedQuestions []string
}

// distill converts one recurring exec-failure cluster into a candidate
// change: per failing question, an instruction restating the question and
// defining the acronym jargon it uses. Questions already covered by merged
// mined knowledge are re-probed against the live engine — failure records
// are not knowledge-version-tagged, so the miner confirms the gap is still
// open before spending a refinement (a bounded number of them; beyond that
// the cluster is unactionable). The candidate's feedback ID is a content
// hash, so the same gap re-mined after a restart dedupes against the WAL
// history.
func (m *Miner) distill(ctx context.Context, cl *Cluster, minedIDs map[string]bool) (candidate, bool) {
	engine := m.solver.Engine()
	kset := engine.KnowledgeSet()

	var edits []knowledge.Edit
	var refinedQuestions []string
	for i, q := range cl.Questions {
		terms := acronymTerms(q)
		round := 0
		if covered(kset, q, terms) {
			probe, err := engine.GenerateContext(ctx, q, cl.Records[i].Evidence)
			if err != nil || probe.OK {
				continue // fixed at the current version (or unprobeable): no refinement
			}
			m.mu.Lock()
			round = m.refined[q] + 1
			m.mu.Unlock()
			if round > m.cfg.MaxRefinements {
				continue
			}
			refinedQuestions = append(refinedQuestions, q)
		}
		edits = append(edits, instructionEdit(q, terms, cl, round))
	}
	if len(edits) == 0 {
		return candidate{}, false
	}

	id := candidateID(cl, edits)
	if minedIDs[id] {
		return candidate{}, false // already merged (possibly in a prior process life)
	}
	m.mu.Lock()
	rejected := m.rejected[id]
	m.mu.Unlock()
	if rejected {
		return candidate{}, false
	}
	return candidate{feedbackID: id, edits: edits, refinedQuestions: refinedQuestions}, true
}

// instructionEdit builds the insert-instruction edit for one failing
// question. Round 0 is the initial clarification; later rounds extend the
// text so a refinement is a genuinely different clarification, not a
// retry of the same words.
func instructionEdit(question string, terms []string, cl *Cluster, round int) knowledge.Edit {
	var b strings.Builder
	fmt.Fprintf(&b, "For the question %q: answer it directly against the referenced tables.", question)
	if len(terms) > 0 {
		fmt.Fprintf(&b, " The terms %s are internal jargon for computations over existing columns only — never invent a column named after them.",
			strings.Join(terms, ", "))
	}
	if round > 0 {
		fmt.Fprintf(&b, " (refinement %d: the previous clarification of this question was insufficient; restated with the failing shape %s)",
			round, cl.Key)
	}
	return knowledge.Edit{
		Op:   knowledge.EditInsert,
		Kind: knowledge.InstructionEntity,
		Instruction: &knowledge.Instruction{
			ID:    "mined-" + shortHash(question+"|"+fmt.Sprint(round)),
			Text:  b.String(),
			Terms: terms,
		},
		Rationale: fmt.Sprintf("mined from %d recurring %s failures sharing shape %s",
			len(cl.Records), cl.Kind, cl.Key),
	}
}

// covered reports whether mined knowledge already addresses this question:
// a miner-authored instruction that defines one of its terms or restates
// the question.
func covered(kset *knowledge.Set, question string, terms []string) bool {
	lowerQ := strings.ToLower(question)
	for _, ins := range kset.Instructions() {
		if ins.Provenance.Editor != Editor {
			continue
		}
		for _, t := range ins.Terms {
			for _, want := range terms {
				if strings.EqualFold(t, want) {
					return true
				}
			}
		}
		if strings.Contains(strings.ToLower(ins.Text), lowerQ) {
			return true
		}
	}
	return false
}

// acronymTerms extracts the undefined-jargon candidates from a question:
// tokens of 2+ uppercase letters (the shape enterprise acronyms take —
// QoQFP-style mixed case included via its uppercase majority).
func acronymTerms(question string) []string {
	seen := map[string]bool{}
	var out []string
	for _, tok := range strings.Fields(question) {
		tok = strings.Trim(tok, ".,;:?!()'\"")
		upper := 0
		for _, r := range tok {
			if r >= 'A' && r <= 'Z' {
				upper++
			}
		}
		if len(tok) >= 2 && upper*2 > len(tok) && !seen[tok] {
			seen[tok] = true
			out = append(out, tok)
		}
	}
	return out
}

// minedFeedbackIDs collects the feedback IDs of previously merged mined
// changes from the set's audit history — the restart-safe dedupe source,
// since history is exactly what the WAL persists and replays.
func minedFeedbackIDs(kset *knowledge.Set) map[string]bool {
	out := map[string]bool{}
	for _, ev := range kset.History() {
		if ev.Editor == Editor && ev.FeedbackID != "" {
			out[ev.FeedbackID] = true
		}
	}
	return out
}

// candidateID is the deterministic feedback ID for a distilled candidate:
// a hash of the cluster key and the edited instruction IDs.
func candidateID(cl *Cluster, edits []knowledge.Edit) string {
	var b strings.Builder
	b.WriteString(cl.Key)
	for _, e := range edits {
		if e.Instruction != nil {
			b.WriteByte('|')
			b.WriteString(e.Instruction.ID)
		}
	}
	return "miner-" + shortHash(b.String())
}

func shortHash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:6])
}
