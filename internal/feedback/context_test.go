package feedback

import (
	"context"
	"errors"
	"testing"

	"genedit/internal/generr"
)

func TestOpenContextCanceled(t *testing.T) {
	solver, suite := testSolver(t, true)
	c := ourCase(t, suite)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := solver.OpenContext(ctx, c.Question, c.Evidence)
	if !errors.Is(err, generr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestSubmitContextCanceled(t *testing.T) {
	solver, suite := testSolver(t, true)
	c := ourCase(t, suite)
	sess, err := solver.Open(c.Question, "")
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Feedback("This response queries all sports organisations but I only care about our organisations.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Edits) == 0 {
		t.Fatal("no recommended edits to stage")
	}
	sess.Stage(rec.Edits...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.SubmitContext(ctx); !errors.Is(err, generr.ErrCanceled) {
		t.Fatalf("SubmitContext err = %v, want ErrCanceled", err)
	}
	if _, err := sess.RegenerateContext(ctx); !errors.Is(err, generr.ErrCanceled) {
		t.Fatalf("RegenerateContext err = %v, want ErrCanceled", err)
	}

	// The same submission succeeds once the context is live again.
	res, err := sess.Submit()
	if err != nil {
		t.Fatalf("Submit after canceled attempt: %v", err)
	}
	if !res.Passed {
		t.Fatalf("submission failed regression: %s", res.Detail)
	}
}
