package feedback

import (
	"errors"
	"reflect"
	"testing"

	"genedit/internal/pipeline"
)

// submitOurCase drives a session to a passing pending change.
func submitOurCase(t *testing.T, solver *Solver) *PendingChange {
	t.Helper()
	_, suite := testSolver(t, true) // only for the case lookup below
	c := ourCase(t, suite)
	sess, err := solver.Open(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Feedback("This response queries all sports organisations but I only care about our organisations.")
	if err != nil {
		t.Fatal(err)
	}
	sess.Stage(rec.Edits...)
	if _, err := sess.Regenerate(); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Submit()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed || res.Pending == nil {
		t.Fatalf("submit did not pass: %+v", res)
	}
	return res.Pending
}

// TestApproveDoesNotMutateServedSet pins the engine-swap safety contract:
// the knowledge set reachable from the pre-approval engine is bit-for-bit
// untouched by a merge — in-flight generations read a stable snapshot.
func TestApproveDoesNotMutateServedSet(t *testing.T) {
	solver, _ := testSolver(t, true)
	pending := submitOurCase(t, solver)

	oldEngine := solver.Engine()
	before := oldEngine.KnowledgeSet().State()
	if err := solver.Approve(pending, "reviewer"); err != nil {
		t.Fatal(err)
	}
	after := oldEngine.KnowledgeSet().State()
	if !reflect.DeepEqual(before, after) {
		t.Error("approve mutated the knowledge set of the previously served engine")
	}
	if solver.Engine() == oldEngine {
		t.Error("approve should swap in a new engine")
	}
	merged := solver.Engine().KnowledgeSet()
	if merged.Version() <= before.Version {
		t.Error("merged set version did not advance")
	}
	// The merged history must extend the old one: same prefix, new tail.
	hist := merged.History()
	if len(hist) <= len(before.History) {
		t.Fatal("merged history did not grow")
	}
	for i, ev := range before.History {
		if !reflect.DeepEqual(hist[i], ev) {
			t.Fatalf("merged history rewrote event %d", i)
		}
	}
}

// TestMergeHookRunsAndCanVeto: the hook sees the new engine before the
// solver adopts it, and a hook error aborts the approval atomically.
func TestMergeHookRunsAndCanVeto(t *testing.T) {
	solver, _ := testSolver(t, true)
	pending := submitOurCase(t, solver)

	oldEngine := solver.Engine()
	boom := errors.New("store down")
	solver.SetMergeHook(func(*pipeline.Engine) error { return boom })
	if err := solver.Approve(pending, "reviewer"); !errors.Is(err, boom) {
		t.Fatalf("approve with failing hook = %v, want wrapped hook error", err)
	}
	if solver.Engine() != oldEngine {
		t.Error("failed hook must leave the old engine live")
	}
	if len(solver.Pending()) != 1 {
		t.Error("failed hook must leave the change pending")
	}

	var hooked *pipeline.Engine
	solver.SetMergeHook(func(e *pipeline.Engine) error { hooked = e; return nil })
	if err := solver.Approve(pending, "reviewer"); err != nil {
		t.Fatal(err)
	}
	if hooked == nil || hooked != solver.Engine() {
		t.Error("hook must receive the engine the solver adopts")
	}
	if len(solver.Pending()) != 0 {
		t.Error("approved change should leave the pending queue")
	}
}
