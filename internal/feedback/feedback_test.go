package feedback

import (
	"strings"
	"testing"

	"genedit/internal/knowledge"
	"genedit/internal/pipeline"
	"genedit/internal/simllm"
	"genedit/internal/task"
	"genedit/internal/workload"
)

// testSolver builds a solver for the sports database with an optionally
// degraded knowledge set.
func testSolver(t *testing.T, degraded bool) (*Solver, *workload.Suite) {
	t.Helper()
	suite := workload.NewSuite(1)
	model := simllm.New(simllm.GenEditProfile(), suite.Registry, 42)
	in := suite.KB["sports_holdings"]
	if degraded {
		in.Docs = nil
	}
	kset, err := knowledge.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	engine := pipeline.New(model, kset, suite.Databases["sports_holdings"], pipeline.DefaultConfig())
	var golden []*task.Case
	for _, c := range suite.Cases {
		if c.DB == "sports_holdings" && len(golden) < 4 {
			golden = append(golden, c)
		}
	}
	return NewSolver(engine, NewRecommender(model), golden), suite
}

// ourCase returns the sports "our organisations" jargon case.
func ourCase(t *testing.T, suite *workload.Suite) *task.Case {
	t.Helper()
	for _, c := range suite.Cases {
		if c.ID == "sports_holdings-s-our" {
			return c
		}
	}
	t.Fatal("sports s-our case missing")
	return nil
}

func TestRecommenderProducesEditsForTermFeedback(t *testing.T) {
	solver, suite := testSolver(t, true) // degraded: no instructions
	c := ourCase(t, suite)
	sess, err := solver.Open(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Feedback("This response queries all sports organisations but I only care about our organisations.")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Targets) == 0 {
		t.Fatal("no feedback targets")
	}
	if len(rec.Plan) == 0 {
		t.Error("no edit plan steps")
	}
	if rec.Expanded == "" {
		t.Error("no expanded feedback")
	}
	var insertsInstruction bool
	for _, e := range rec.Edits {
		if e.Op == knowledge.EditInsert && e.Kind == knowledge.InstructionEntity {
			insertsInstruction = true
		}
	}
	if !insertsInstruction {
		t.Errorf("term feedback should recommend inserting an instruction; edits: %d", len(rec.Edits))
	}
}

func TestStageRegenerateFixesJargonCase(t *testing.T) {
	solver, suite := testSolver(t, true)
	c := ourCase(t, suite)
	// No evidence: the degraded engine has neither an instruction nor a
	// benchmark hint defining "our", so the term gate must fire.
	sess, err := solver.Open(c.Question, "")
	if err != nil {
		t.Fatal(err)
	}
	// Degraded KB: the initial generation must miss the ownership filter.
	if strings.Contains(sess.Record.FinalSQL, "OWNERSHIP_FLAG_COLUMN") {
		t.Fatalf("degraded engine unexpectedly produced the flag filter: %s", sess.Record.FinalSQL)
	}
	rec, err := sess.Feedback("This response queries all sports organisations but I only care about our organisations.")
	if err != nil {
		t.Fatal(err)
	}
	sess.Stage(rec.Edits...)
	regen, err := sess.Regenerate()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(regen.FinalSQL, "OWNERSHIP_FLAG_COLUMN") {
		t.Errorf("staged edits did not unlock the ownership filter:\n%s", regen.FinalSQL)
	}
	// The live knowledge set must be untouched until approval.
	if solver.Engine().KnowledgeSet().DefinesTerm("our") != nil {
		t.Error("staging leaked into the live knowledge set")
	}
}

func TestSubmitRegressionAndApprove(t *testing.T) {
	solver, suite := testSolver(t, true)
	c := ourCase(t, suite)
	sess, err := solver.Open(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := sess.Feedback("This response queries all sports organisations but I only care about our organisations.")
	if err != nil {
		t.Fatal(err)
	}
	sess.Stage(rec.Edits...)
	res, err := sess.Submit()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed {
		t.Fatalf("regression gate failed: %s", res.Detail)
	}
	if len(solver.Pending()) != 1 {
		t.Fatalf("pending changes = %d, want 1", len(solver.Pending()))
	}
	versionBefore := solver.Engine().KnowledgeSet().Version()
	if err := solver.Approve(res.Pending, "reviewer"); err != nil {
		t.Fatal(err)
	}
	if len(solver.Pending()) != 0 {
		t.Error("pending change not consumed by approval")
	}
	live := solver.Engine().KnowledgeSet()
	if live.Version() <= versionBefore {
		t.Error("merge did not advance the knowledge-set version")
	}
	// Audit trail: a checkpoint precedes the merge, and history records it.
	if len(live.Checkpoints()) == 0 {
		t.Error("approval did not checkpoint the knowledge set")
	}
	found := false
	for _, ev := range live.History() {
		if ev.FeedbackID == sess.FeedbackID {
			found = true
		}
	}
	if !found {
		t.Error("merged edits are not attributed to the feedback session in history")
	}
	// The fix persists in the live engine now.
	after, err := solver.Engine().Generate(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after.FinalSQL, "OWNERSHIP_FLAG_COLUMN") {
		t.Error("merged knowledge did not fix the live engine")
	}
}

func TestApproveUnknownChangeFails(t *testing.T) {
	solver, _ := testSolver(t, false)
	err := solver.Approve(&PendingChange{FeedbackID: "fb-x"}, "reviewer")
	if err == nil {
		t.Error("approving a non-pending change should fail")
	}
	if err := solver.Reject(&PendingChange{}); err == nil {
		t.Error("rejecting a non-pending change should fail")
	}
}

func TestSubmitWithoutStagedEditsFails(t *testing.T) {
	solver, suite := testSolver(t, false)
	c := ourCase(t, suite)
	sess, err := solver.Open(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Submit(); err == nil {
		t.Error("submit with nothing staged should fail")
	}
}

func TestRegressionGateBlocksHarmfulEdit(t *testing.T) {
	solver, suite := testSolver(t, false)
	c := ourCase(t, suite)
	sess, err := solver.Open(c.Question, c.Evidence)
	if err != nil {
		t.Fatal(err)
	}
	// A destructive edit: delete the instruction defining "our", which a
	// golden case depends on.
	def := solver.Engine().KnowledgeSet().DefinesTerm("our")
	if def == nil {
		t.Fatal("full KB should define 'our'")
	}
	sess.Stage(knowledge.Edit{Op: knowledge.EditDelete, Kind: knowledge.InstructionEntity, ID: def.ID})
	res, err := sess.Submit()
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed {
		t.Skip("golden subset does not cover the 'our' case for this seed; gate not exercised")
	}
	if !strings.Contains(res.Detail, "regression") {
		t.Errorf("detail = %q, want regression report", res.Detail)
	}
	if len(solver.Pending()) != 0 {
		t.Error("failed submission must not queue a pending change")
	}
}

func TestSimulatedSMEFeedbackMentionsTermOrColumn(t *testing.T) {
	suite := workload.NewSuite(1)
	sme := NewSimulatedSME(7)
	for _, c := range suite.Cases {
		rec := &pipeline.Record{Question: c.Question}
		fb := sme.FeedbackFor(c, rec)
		if fb == "" {
			t.Fatalf("no feedback for %s", c.ID)
		}
		if len(c.Terms) > 0 && !strings.Contains(strings.ToLower(fb), strings.ToLower(c.Terms[0].Term)) {
			t.Errorf("%s: feedback %q does not mention term %s", c.ID, fb, c.Terms[0].Term)
		}
		if len(c.Terms) == 0 && len(c.Decoys) > 0 && !strings.Contains(fb, c.Decoys[0].CorrectColumn) {
			t.Errorf("%s: feedback %q does not mention column", c.ID, fb)
		}
	}
}

func TestImprovementExperimentMonotoneOverall(t *testing.T) {
	suite := workload.NewSuite(1)
	res, err := RunImprovementExperiment(suite, 42, 2, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(res.Rounds))
	}
	first, last := res.Rounds[0].EX, res.Rounds[len(res.Rounds)-1].EX
	if last <= first {
		t.Errorf("improvement loop did not improve: %.2f -> %.2f", first, last)
	}
	if res.Rounds[0].Fixed == 0 {
		t.Error("first round fixed no cases")
	}
	if res.FinalHistoryLen == 0 {
		t.Error("no audit history recorded")
	}
}

func TestAcceptanceExperimentShape(t *testing.T) {
	suite := workload.NewSuite(1)
	stats, err := RunAcceptanceExperiment(suite, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions == 0 {
		t.Fatal("no failed cases -> no sessions; the suite should have failures")
	}
	if stats.AcceptedAsIs+stats.AcceptedAfterIter+stats.Abandoned != stats.Sessions {
		t.Error("session outcomes do not partition the sessions")
	}
	if stats.AcceptedAsIs == 0 {
		t.Error("no edits accepted as-is")
	}
	if stats.MergedChanges == 0 {
		t.Error("no changes merged")
	}
}
