// Package feedback implements GenEdit's continuous-improvement module (§4):
// the four edit-recommendation operators, the interactive feedback-solver
// workflow (stage → regenerate → iterate → submit), regression testing of
// staged edits, the approval/merge step, and the simulated SME used by the
// §4.2.3 experiments.
package feedback

import (
	"fmt"

	"genedit/internal/knowledge"
	"genedit/internal/llm"
	"genedit/internal/pipeline"
)

// Recommendation is the output of the four feedback operators: which items
// the feedback targets, the expanded explanation, the CoT edit plan, and the
// concrete knowledge-set edits.
type Recommendation struct {
	Targets  []llm.FeedbackTarget
	Expanded string
	Plan     []string
	Edits    []knowledge.Edit
}

// Recommender runs feedback operators 1-4 (Fig. 1, feedback mechanism).
type Recommender struct {
	model llm.FeedbackModel
}

// NewRecommender returns a recommender over the model.
func NewRecommender(model llm.FeedbackModel) *Recommender {
	return &Recommender{model: model}
}

// Recommend turns a generation record plus user feedback into recommended
// edits.
func (r *Recommender) Recommend(rec *pipeline.Record, userFeedback string) (*Recommendation, error) {
	req := &llm.FeedbackRequest{
		Question:     rec.Question,
		Reformulated: rec.Reformulated,
		GeneratedSQL: rec.FinalSQL,
		ExecFeedback: lastExecFeedback(rec),
		UserFeedback: userFeedback,
		Examples:     rec.Context.Examples,
		Instructions: rec.Context.Instructions,
		DB:           rec.Context.DB,
	}

	// Operator 1: generate targets.
	targets, err := r.model.GenerateTargets(req)
	if err != nil {
		return nil, fmt.Errorf("generate targets: %w", err)
	}
	// Operator 2: expand feedback.
	expanded, err := r.model.ExpandFeedback(req, targets)
	if err != nil {
		return nil, fmt.Errorf("expand feedback: %w", err)
	}
	// Operator 3: plan edits.
	plan, err := r.model.PlanEdits(req, expanded, targets)
	if err != nil {
		return nil, fmt.Errorf("plan edits: %w", err)
	}
	// Operator 4: generate edits.
	drafts, err := r.model.GenerateEdits(req, plan, targets)
	if err != nil {
		return nil, fmt.Errorf("generate edits: %w", err)
	}

	rec2 := &Recommendation{Targets: targets, Expanded: expanded, Plan: plan}
	for _, d := range drafts {
		edit, err := draftToEdit(d)
		if err != nil {
			return nil, err
		}
		rec2.Edits = append(rec2.Edits, edit)
	}
	return rec2, nil
}

// draftToEdit converts a model edit draft into a knowledge-set edit.
func draftToEdit(d llm.EditDraft) (knowledge.Edit, error) {
	edit := knowledge.Edit{Rationale: d.Rationale}
	switch d.Op {
	case "insert":
		edit.Op = knowledge.EditInsert
	case "update":
		edit.Op = knowledge.EditUpdate
	case "delete":
		edit.Op = knowledge.EditDelete
	case "directive":
		edit.Op = knowledge.EditDirective
		edit.Directive = d.Directive
		edit.Kind = knowledge.DirectiveEntity
		return edit, nil
	default:
		return edit, fmt.Errorf("unknown edit op %q", d.Op)
	}
	switch d.Kind {
	case "example":
		edit.Kind = knowledge.ExampleEntity
		edit.ID = d.ID
		if edit.Op != knowledge.EditDelete {
			edit.Example = &knowledge.Example{
				ID: d.ID, NL: d.NL, SQL: d.SQL, Pseudo: d.Pseudo, Clause: d.Clause,
				Terms: d.Terms,
			}
			if edit.Example.Pseudo == "" && d.SQL != "" {
				edit.Example.Pseudo = "... " + d.SQL + " ..."
			}
		}
	case "instruction":
		edit.Kind = knowledge.InstructionEntity
		edit.ID = d.ID
		if edit.Op != knowledge.EditDelete {
			edit.Instruction = &knowledge.Instruction{
				ID: d.ID, Text: d.Text, SQLHint: d.SQLHint, Terms: d.Terms,
			}
		}
	default:
		return edit, fmt.Errorf("unknown edit kind %q", d.Kind)
	}
	return edit, nil
}

func lastExecFeedback(rec *pipeline.Record) string {
	for i := len(rec.Attempts) - 1; i >= 0; i-- {
		a := rec.Attempts[i]
		if a.Err != "" {
			return a.Err
		}
		if a.Kind == "empty" {
			return "query executed but returned no rows"
		}
	}
	return ""
}
