package feedback

import (
	"fmt"
	"hash/fnv"
	"strings"

	"genedit/internal/knowledge"
	"genedit/internal/pipeline"
	"genedit/internal/task"
)

// SimulatedSME is the deterministic subject-matter expert used by the
// §4.2.3 experiments: given a failed case it writes the feedback a domain
// expert would, reviews recommended edits, and accepts or iterates.
type SimulatedSME struct {
	seed uint64
}

// NewSimulatedSME returns an SME with the given seed.
func NewSimulatedSME(seed uint64) *SimulatedSME { return &SimulatedSME{seed: seed} }

func (s *SimulatedSME) draw(parts ...string) float64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(s.seed >> (8 * i))
	}
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte{0x1f})
		h.Write([]byte(p))
	}
	// splitmix64-style finalizer; see simllm.Model.draw for why FNV alone
	// is not enough here.
	sum := h.Sum64()
	sum ^= sum >> 30
	sum *= 0xbf58476d1ce4e5b9
	sum ^= sum >> 27
	sum *= 0x94d049bb133111eb
	sum ^= sum >> 31
	return float64(sum>>11) / float64(uint64(1)<<53)
}

// FeedbackFor writes the natural-language feedback an expert gives after
// inspecting a wrong result. The text reflects what the expert knows — the
// business meaning — not the system internals.
func (s *SimulatedSME) FeedbackFor(c *task.Case, rec *pipeline.Record) string {
	// Unsatisfied domain terms dominate expert feedback (the paper's running
	// example: "I only care about our organizations").
	for _, tr := range c.Terms {
		if termInContext(rec, tr.Term) {
			continue
		}
		if strings.EqualFold(tr.Term, "our") {
			return fmt.Sprintf("This response queries all %ss but I only care about our %ss.",
				nounOf(c), nounOf(c))
		}
		def := c.Evidence
		if def == "" {
			def = tr.Term + " has a company-specific definition"
		}
		return fmt.Sprintf("The query misreads %s. Remember: %s.", tr.Term, def)
	}
	for _, d := range c.Decoys {
		return fmt.Sprintf("For %q the numbers look off; use the %s column, not %s — the wrong example may be retrieved.",
			c.Question, d.CorrectColumn, d.DecoyColumn)
	}
	return fmt.Sprintf("The result does not answer %q; please revise the calculation.", c.Question)
}

// ReviewEdits decides which recommended edits the SME stages, mimicking the
// UI flow where the user reviews each edit. Experts stage edits that look
// on-topic; occasionally they tweak one first (counted by the caller as a
// manual edit).
func (s *SimulatedSME) ReviewEdits(c *task.Case, edits []knowledge.Edit) (staged []knowledge.Edit, manual bool) {
	for _, e := range edits {
		staged = append(staged, e)
	}
	// One in five sessions the SME refines an edit's wording by hand.
	manual = s.draw(c.ID, "manual") < 0.2
	return staged, manual
}

// Satisfied reports whether the SME accepts the regenerated result at the
// given iteration. The expert checks the output against their intent; the
// caller supplies whether regeneration actually fixed the case.
func (s *SimulatedSME) Satisfied(c *task.Case, iteration int, fixed bool) bool {
	if !fixed {
		return false
	}
	// Experts occasionally iterate once more even on fixed output
	// (wording tweaks), per the paper's observation that users keep
	// iterating until satisfied.
	return s.draw(c.ID, "satisfied", fmt.Sprint(iteration)) >= 0.1
}

func termInContext(rec *pipeline.Record, term string) bool {
	for _, ins := range rec.Context.Instructions {
		for _, t := range ins.Terms {
			if strings.EqualFold(t, term) {
				return true
			}
		}
	}
	return false
}

func nounOf(c *task.Case) string {
	// The entity noun is recoverable from the question's tail; fall back to
	// a generic noun.
	words := strings.Fields(c.Question)
	for i, w := range words {
		if w == "our" && i+1 < len(words) {
			return strings.TrimSuffix(words[i+1], "s")
		}
	}
	return "organization"
}
