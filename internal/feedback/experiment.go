package feedback

import (
	"fmt"
	"strings"

	"genedit/internal/eval"
	"genedit/internal/knowledge"
	"genedit/internal/pipeline"
	"genedit/internal/simllm"
	"genedit/internal/task"
	"genedit/internal/workload"
)

// AcceptanceStats are the §4.2.3 production metrics: how many suggested
// edits are accepted as-is, and how many after iterating with the solver or
// manual knowledge-set edits.
type AcceptanceStats struct {
	Sessions          int
	AcceptedAsIs      int
	AcceptedAfterIter int
	Abandoned         int
	TotalEditsStaged  int
	MergedChanges     int
}

// String renders the stats as the experiment's report block.
func (a AcceptanceStats) String() string {
	pct := func(n int) float64 {
		if a.Sessions == 0 {
			return 0
		}
		return 100 * float64(n) / float64(a.Sessions)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "feedback sessions:            %d\n", a.Sessions)
	fmt.Fprintf(&sb, "edits accepted as-is:         %d (%.1f%%)\n", a.AcceptedAsIs, pct(a.AcceptedAsIs))
	fmt.Fprintf(&sb, "accepted after iteration:     %d (%.1f%%)\n", a.AcceptedAfterIter, pct(a.AcceptedAfterIter))
	fmt.Fprintf(&sb, "abandoned:                    %d (%.1f%%)\n", a.Abandoned, pct(a.Abandoned))
	fmt.Fprintf(&sb, "total edits staged:           %d\n", a.TotalEditsStaged)
	fmt.Fprintf(&sb, "changes merged after review:  %d\n", a.MergedChanges)
	return sb.String()
}

// RoundResult is one round of the continuous-improvement experiment.
type RoundResult struct {
	Round      int
	EX         float64
	Fixed      int
	Merged     int
	KnowledgeV int
}

// ImprovementResult is the whole improvement-loop series.
type ImprovementResult struct {
	Rounds []RoundResult
	// FinalHistoryLen is the audit-log length after the run, showing the
	// provenance trail the knowledge library exposes.
	FinalHistoryLen int
}

// String renders the series as the printable figure.
func (r ImprovementResult) String() string {
	var sb strings.Builder
	sb.WriteString("round   EX(all)   fixed-this-round   merged-edits   kset-version\n")
	for _, round := range r.Rounds {
		fmt.Fprintf(&sb, "%5d %9.2f %18d %14d %14d\n",
			round.Round, round.EX, round.Fixed, round.Merged, round.KnowledgeV)
	}
	return sb.String()
}

// experimentHarness bundles the per-database solvers for the experiments.
type experimentHarness struct {
	suite   *workload.Suite
	runner  *eval.Runner
	solvers map[string]*Solver
	sme     *SimulatedSME
}

// newHarness builds solvers over every suite database. When degraded is
// true, knowledge sets are built without the domain documents — no
// instructions — the starting point of the improvement loop.
func newHarness(suite *workload.Suite, seed uint64, degraded bool, golden map[string][]*task.Case) (*experimentHarness, error) {
	model := simllm.New(simllm.GenEditProfile(), suite.Registry, seed)
	recommender := NewRecommender(model)
	h := &experimentHarness{
		suite:   suite,
		runner:  eval.NewRunner(suite.Databases),
		solvers: make(map[string]*Solver),
		sme:     NewSimulatedSME(seed ^ 0x5ee),
	}
	for _, db := range workload.DomainNames() {
		in := suite.KB[db]
		if degraded {
			in.Docs = nil
		}
		kset, err := knowledge.Build(in)
		if err != nil {
			return nil, err
		}
		engine := pipeline.New(model, kset, suite.Databases[db], pipeline.DefaultConfig())
		h.solvers[db] = NewSolver(engine, recommender, golden[db])
	}
	return h, nil
}

// goldenSubset picks a small per-database regression suite: the first few
// cases of each database, mirroring the demo's "few selected golden
// queries".
func goldenSubset(suite *workload.Suite, perDB int) map[string][]*task.Case {
	out := make(map[string][]*task.Case)
	for _, c := range suite.Cases {
		if len(out[c.DB]) < perDB {
			out[c.DB] = append(out[c.DB], c)
		}
	}
	return out
}

// evaluate scores the harness's current engines over the eval set.
func (h *experimentHarness) evaluate(cases []*task.Case) (float64, map[string]bool, error) {
	correct := make(map[string]bool, len(cases))
	n := 0
	for _, c := range cases {
		solver := h.solvers[c.DB]
		rec, err := solver.Engine().Generate(c.Question, c.Evidence)
		if err != nil {
			return 0, nil, err
		}
		ok, err := h.runner.Evaluate(c, rec.FinalSQL)
		if err != nil {
			return 0, nil, err
		}
		correct[c.ID] = ok
		if ok {
			n++
		}
	}
	return 100 * float64(n) / float64(len(cases)), correct, nil
}

// RunAcceptanceExperiment reproduces the §4.2.3 metrics: every failed case
// of the full system opens a feedback session; the simulated SME iterates up
// to maxIter times; sessions resolve as accepted-as-is (first staging fixes
// the query), accepted-after-iteration, or abandoned.
func RunAcceptanceExperiment(suite *workload.Suite, seed uint64, maxIter int) (*AcceptanceStats, error) {
	golden := goldenSubset(suite, 4)
	h, err := newHarness(suite, seed, false, golden)
	if err != nil {
		return nil, err
	}
	_, correct, err := h.evaluate(suite.Cases)
	if err != nil {
		return nil, err
	}

	stats := &AcceptanceStats{}
	for _, c := range suite.Cases {
		if correct[c.ID] {
			continue
		}
		solver := h.solvers[c.DB]
		sess, err := solver.Open(c.Question, c.Evidence)
		if err != nil {
			return nil, err
		}
		stats.Sessions++

		resolved := false
		manualUsed := false
		for iter := 0; iter < maxIter; iter++ {
			rec, err := sess.Feedback(h.sme.FeedbackFor(c, sess.Record))
			if err != nil {
				return nil, err
			}
			// Iterations build on earlier staged edits (the paper's UI keeps
			// staged edits applied while the user keeps iterating).
			staged, manual := h.sme.ReviewEdits(c, rec.Edits)
			manualUsed = manualUsed || manual
			sess.Stage(staged...)
			stats.TotalEditsStaged += len(staged)
			regen, err := sess.Regenerate()
			if err != nil {
				return nil, err
			}
			fixed, err := h.runner.Evaluate(c, regen.FinalSQL)
			if err != nil {
				return nil, err
			}
			if h.sme.Satisfied(c, iter, fixed) {
				if iter == 0 && !manualUsed {
					stats.AcceptedAsIs++
				} else {
					stats.AcceptedAfterIter++
				}
				res, err := sess.Submit()
				if err != nil {
					return nil, err
				}
				if res.Passed {
					if err := solver.Approve(res.Pending, "reviewer"); err != nil {
						return nil, err
					}
					stats.MergedChanges++
				}
				resolved = true
				break
			}
		}
		if !resolved {
			stats.Abandoned++
		}
	}
	return stats, nil
}

// RunImprovementExperiment reproduces the continuous-improvement loop: the
// system starts with a degraded knowledge set (no instructions — the state
// before any SME feedback), and each round routes failed cases through the
// feedback solver, merging approved edits. EX climbs as the knowledge set
// absorbs the feedback.
func RunImprovementExperiment(suite *workload.Suite, seed uint64, rounds, sessionsPerRound int) (*ImprovementResult, error) {
	golden := goldenSubset(suite, 4)
	h, err := newHarness(suite, seed, true, golden)
	if err != nil {
		return nil, err
	}

	result := &ImprovementResult{}
	for round := 0; round <= rounds; round++ {
		ex, correct, err := h.evaluate(suite.Cases)
		if err != nil {
			return nil, err
		}
		rr := RoundResult{Round: round, EX: ex}
		for _, solver := range h.solvers {
			rr.KnowledgeV += solver.Engine().KnowledgeSet().Version()
		}
		if round == rounds {
			result.Rounds = append(result.Rounds, rr)
			break
		}

		// Route a batch of failed cases through the feedback solver.
		sessions := 0
		for _, c := range suite.Cases {
			if correct[c.ID] || sessions >= sessionsPerRound {
				continue
			}
			solver := h.solvers[c.DB]
			sess, err := solver.Open(c.Question, c.Evidence)
			if err != nil {
				return nil, err
			}
			recd, err := sess.Feedback(h.sme.FeedbackFor(c, sess.Record))
			if err != nil {
				return nil, err
			}
			staged, _ := h.sme.ReviewEdits(c, recd.Edits)
			sess.Stage(staged...)
			regen, err := sess.Regenerate()
			if err != nil {
				return nil, err
			}
			fixed, err := h.runner.Evaluate(c, regen.FinalSQL)
			if err != nil {
				return nil, err
			}
			if !fixed {
				continue // SME abandons; nothing merged
			}
			rr.Fixed++
			res, err := sess.Submit()
			if err != nil {
				return nil, err
			}
			if res.Passed {
				if err := solver.Approve(res.Pending, "reviewer"); err != nil {
					return nil, err
				}
				rr.Merged += len(res.Pending.Edits)
			}
			sessions++
		}
		result.Rounds = append(result.Rounds, rr)
	}
	for _, solver := range h.solvers {
		result.FinalHistoryLen += len(solver.Engine().KnowledgeSet().History())
	}
	return result, nil
}
