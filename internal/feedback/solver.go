package feedback

import (
	"context"
	"fmt"
	"sync"

	"genedit/internal/eval"
	"genedit/internal/generr"
	"genedit/internal/knowledge"
	"genedit/internal/pipeline"
	"genedit/internal/sqlexec"
	"genedit/internal/task"
)

// Solver is the feedback-solver workflow of §4.2.1: it owns the live engine
// for one database, opens feedback sessions, regression-tests submitted
// edits and merges them on approval. Every merge checkpoints the knowledge
// set first, so any prior state can be restored via the knowledge library.
//
// Concurrency contract: Solver methods are safe for concurrent use (the
// serving daemon drives many SME sessions against one solver). A merge
// never mutates the currently served knowledge set: Approve applies the
// edits to a full clone and atomically swaps the engine, so in-flight
// generations keep reading their immutable snapshot. Session values are
// NOT synchronized — each feedback session is single-user by design.
type Solver struct {
	recommender *Recommender
	golden      []*task.Case

	mu     sync.Mutex
	engine *pipeline.Engine
	// pending holds submitted changes awaiting human approval.
	pending []*PendingChange
	nextFB  int
	// mergeHook, when set, runs after a merge is assembled but before it is
	// adopted; the serving layer uses it to persist the merged events and
	// hot-swap the service's engine. An error aborts the approval.
	mergeHook func(*pipeline.Engine) error
}

// NewSolver builds a solver around a live engine. The golden cases are the
// regression suite replayed before merges.
func NewSolver(engine *pipeline.Engine, recommender *Recommender, golden []*task.Case) *Solver {
	return &Solver{engine: engine, recommender: recommender, golden: golden}
}

// SetMergeHook installs fn to run on every approved merge with the new
// live engine (rebuilt over the merged knowledge set) before the solver
// adopts it. The serving layer hooks persistence (kstore.Commit) and
// engine hot-swap here; if fn errors the approval fails and the previous
// engine stays live.
func (s *Solver) SetMergeHook(fn func(*pipeline.Engine) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mergeHook = fn
}

// Engine returns the current live engine (it changes after merges).
func (s *Solver) Engine() *pipeline.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine
}

// Pending lists changes that passed regression and await approval.
func (s *Solver) Pending() []*PendingChange {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*PendingChange(nil), s.pending...)
}

// Session is one interactive feedback exchange on one question.
type Session struct {
	solver     *Solver
	FeedbackID string
	Question   string
	Evidence   string
	// Record is the latest generation (initial or regenerated).
	Record *pipeline.Record
	// Staged are the currently staged edits.
	Staged []knowledge.Edit
	// Iterations counts feedback rounds in this session.
	Iterations int
	// LastRecommendation is the most recent operator output.
	LastRecommendation *Recommendation
}

// Open generates the initial SQL for a question and starts a session with
// no deadline.
func (s *Solver) Open(question, evidence string) (*Session, error) {
	return s.OpenContext(context.Background(), question, evidence)
}

// OpenContext generates the initial SQL for a question and starts a session.
// Cancellation propagates into the generation pipeline; a canceled ctx
// returns an error matching generr.ErrCanceled.
func (s *Solver) OpenContext(ctx context.Context, question, evidence string) (*Session, error) {
	rec, err := s.Engine().GenerateContext(ctx, question, evidence)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextFB++
	id := fmt.Sprintf("fb-%03d", s.nextFB)
	s.mu.Unlock()
	return &Session{
		solver:     s,
		FeedbackID: id,
		Question:   question,
		Evidence:   evidence,
		Record:     rec,
	}, nil
}

// Feedback submits user feedback text, producing recommended edits
// (feedback operators 1-4).
func (sess *Session) Feedback(text string) (*Recommendation, error) {
	sess.Iterations++
	rec, err := sess.solver.recommender.Recommend(sess.Record, text)
	if err != nil {
		return nil, err
	}
	sess.LastRecommendation = rec
	return rec, nil
}

// Stage accepts a subset of recommended (or manually written) edits into
// the session's staging set.
func (sess *Session) Stage(edits ...knowledge.Edit) {
	sess.Staged = append(sess.Staged, edits...)
}

// ClearStaged drops all staged edits.
func (sess *Session) ClearStaged() { sess.Staged = nil }

// Regenerate re-runs generation in a staging environment: the live
// knowledge set plus the staged edits.
func (sess *Session) Regenerate() (*pipeline.Record, error) {
	return sess.RegenerateContext(context.Background())
}

// RegenerateContext is Regenerate with cancellation: the staged-engine
// generation aborts mid-pipeline once ctx is done.
func (sess *Session) RegenerateContext(ctx context.Context) (*pipeline.Record, error) {
	live := sess.solver.Engine()
	staged, err := live.KnowledgeSet().Stage(sess.Staged, "sme", sess.FeedbackID)
	if err != nil {
		return nil, err
	}
	stagedEngine := live.WithKnowledge(staged)
	rec, err := stagedEngine.GenerateContext(ctx, sess.Question, sess.Evidence)
	if err != nil {
		return nil, err
	}
	sess.Record = rec
	return rec, nil
}

// PendingChange is a submitted set of edits that passed regression testing
// and awaits human approval (§4.2.1: "Currently, these staged edits require
// human approval after passing regression testing").
type PendingChange struct {
	FeedbackID string
	// Editor identifies the submitting actor ("sme" for interactive
	// sessions, "miner" for auto-mined candidates); it becomes the staged
	// provenance tag during regression testing.
	Editor string
	Edits  []knowledge.Edit
	// RegressionPassed and RegressionDetail record the gate outcome.
	RegressionPassed bool
	RegressionDetail string
}

// SubmitResult reports the submission outcome.
type SubmitResult struct {
	Passed  bool
	Detail  string
	Pending *PendingChange
}

// Submit closes the session's iteration loop: the staged edits run through
// the regression suite; on pass, a pending change is queued for approval.
func (sess *Session) Submit() (*SubmitResult, error) {
	return sess.SubmitContext(context.Background())
}

// SubmitContext is Submit with cancellation: the golden-suite regression
// replay checks ctx between cases and aborts mid-generation once ctx is
// done, returning an error matching generr.ErrCanceled.
func (sess *Session) SubmitContext(ctx context.Context) (*SubmitResult, error) {
	if len(sess.Staged) == 0 {
		return nil, fmt.Errorf("nothing staged to submit")
	}
	return sess.solver.submitEdits(ctx, sess.FeedbackID, "sme", sess.Staged)
}

// SubmitCandidate runs programmatically assembled edits — auto-mined
// candidates from the failure miner — through the same regression gate as
// interactive SME sessions. The editor string tags the staged provenance
// (and, via Approve, the merged events), so the audit trail distinguishes
// mined knowledge from human edits while holding both to the same replay
// bar. On pass the change is queued as pending under feedbackID.
func (s *Solver) SubmitCandidate(ctx context.Context, feedbackID, editor string, edits []knowledge.Edit) (*SubmitResult, error) {
	if len(edits) == 0 {
		return nil, fmt.Errorf("no edits to submit")
	}
	return s.submitEdits(ctx, feedbackID, editor, edits)
}

// submitEdits is the shared submission path: regression-gate the edits and
// queue a pending change when they pass.
func (s *Solver) submitEdits(ctx context.Context, feedbackID, editor string, edits []knowledge.Edit) (*SubmitResult, error) {
	passed, detail, err := s.regressionTest(ctx, edits, feedbackID, editor)
	if err != nil {
		return nil, err
	}
	res := &SubmitResult{Passed: passed, Detail: detail}
	if passed {
		p := &PendingChange{
			FeedbackID:       feedbackID,
			Editor:           editor,
			Edits:            append([]knowledge.Edit(nil), edits...),
			RegressionPassed: true,
			RegressionDetail: detail,
		}
		s.mu.Lock()
		s.pending = append(s.pending, p)
		s.mu.Unlock()
		res.Pending = p
	}
	return res, nil
}

// regressionTest replays the golden suite on the live engine and on a
// staged engine; edits pass when no golden case regresses from correct to
// incorrect.
func (s *Solver) regressionTest(ctx context.Context, edits []knowledge.Edit, feedbackID, editor string) (bool, string, error) {
	live := s.Engine()
	staged, err := live.KnowledgeSet().Stage(edits, editor, feedbackID)
	if err != nil {
		return false, "", err
	}
	before, err := s.runGolden(ctx, live)
	if err != nil {
		return false, "", err
	}
	after, err := s.runGolden(ctx, live.WithKnowledge(staged))
	if err != nil {
		return false, "", err
	}
	var regressed []string
	for id, ok := range before {
		if ok && !after[id] {
			regressed = append(regressed, id)
		}
	}
	if len(regressed) > 0 {
		return false, fmt.Sprintf("regressions on %d golden case(s): %v", len(regressed), regressed), nil
	}
	improved := 0
	for id, ok := range after {
		if ok && !before[id] {
			improved++
		}
	}
	return true, fmt.Sprintf("no regressions; %d golden case(s) improved", improved), nil
}

// runGolden evaluates the golden suite, returning per-case correctness.
// Cancellation is checked between cases and inside each generation.
func (s *Solver) runGolden(ctx context.Context, engine *pipeline.Engine) (map[string]bool, error) {
	exec := sqlexec.New(engine.Database())
	out := make(map[string]bool, len(s.golden))
	for _, c := range s.golden {
		if err := generr.FromContext(ctx); err != nil {
			return nil, err
		}
		rec, err := engine.GenerateContext(ctx, c.Question, c.Evidence)
		if err != nil {
			return nil, err
		}
		gold, err := exec.Query(c.GoldSQL)
		if err != nil {
			return nil, fmt.Errorf("golden case %s: gold SQL failed: %w", c.ID, err)
		}
		pred, err := exec.Query(rec.FinalSQL)
		if err != nil {
			out[c.ID] = false
			continue
		}
		out[c.ID] = eval.ResultsEqual(gold, pred)
	}
	return out, nil
}

// Approve merges a pending change into the next generation of the
// knowledge set. A checkpoint is recorded first so the change can be
// reverted from the knowledge library.
//
// Engine-swap safety: the merge is applied to a full clone (content,
// history and checkpoints) of the live set — the set reachable from the
// currently served engine is never written. The rebuilt engine (indices
// re-derived via WithKnowledge) is first offered to the merge hook, which
// persists the new events and hot-swaps any external registry; only then
// does the solver adopt it. In-flight generations keep their old engine
// and knowledge snapshot throughout.
func (s *Solver) Approve(p *PendingChange, approver string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	found := -1
	for i, q := range s.pending {
		if q == p {
			found = i
			break
		}
	}
	if found < 0 {
		return fmt.Errorf("change %s is not pending", p.FeedbackID)
	}
	merged := s.engine.KnowledgeSet().CloneFull()
	merged.Checkpoint("before-" + p.FeedbackID)
	for _, e := range p.Edits {
		if err := merged.Apply(e, approver, p.FeedbackID); err != nil {
			return fmt.Errorf("merging %s: %w", e.Describe(), err)
		}
	}
	// Rebuild retrieval indices over the merged set.
	next := s.engine.WithKnowledge(merged)
	if s.mergeHook != nil {
		if err := s.mergeHook(next); err != nil {
			return fmt.Errorf("merge %s: %w", p.FeedbackID, err)
		}
	}
	s.engine = next
	s.pending = append(s.pending[:found], s.pending[found+1:]...)
	return nil
}

// Reject drops a pending change without merging.
func (s *Solver) Reject(p *PendingChange) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, q := range s.pending {
		if q == p {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("change %s is not pending", p.FeedbackID)
}
