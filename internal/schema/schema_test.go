package schema

import (
	"strings"
	"testing"

	"genedit/internal/sqldb"
)

func fixtureDB() *sqldb.Database {
	db := sqldb.NewDatabase("shop")
	orders := sqldb.NewTable("ORDERS",
		sqldb.Column{Name: "ID", Type: "INTEGER"},
		sqldb.Column{Name: "REGION", Type: "TEXT", Description: "sales region"},
	)
	for _, r := range []string{"east", "east", "west"} {
		orders.MustAppend(sqldb.Int(1), sqldb.Str(r))
	}
	db.AddTable(orders)
	users := sqldb.NewTable("USERS", sqldb.Column{Name: "NAME", Type: "TEXT"})
	users.MustAppend(sqldb.Str("ann"))
	db.AddTable(users)
	return db
}

func TestFromDatabaseProfilesTopValues(t *testing.T) {
	s := FromDatabase(fixtureDB(), 5)
	tbl := s.Table("orders")
	if tbl == nil {
		t.Fatal("ORDERS table missing from schema")
	}
	region := tbl.Columns[1]
	if region.Name != "REGION" || len(region.TopValues) != 2 || region.TopValues[0] != "east" {
		t.Errorf("REGION profile = %+v, want east first", region)
	}
}

func TestElementsAndHasElement(t *testing.T) {
	s := FromDatabase(fixtureDB(), 0)
	els := s.Elements()
	if len(els) != 3 {
		t.Fatalf("Elements = %d, want 3", len(els))
	}
	if !s.HasElement(Element{Table: "orders", Column: "region"}) {
		t.Error("HasElement should be case-insensitive")
	}
	if s.HasElement(Element{Table: "ORDERS", Column: "MISSING"}) {
		t.Error("HasElement found a missing column")
	}
}

func TestParseElement(t *testing.T) {
	e, err := ParseElement("ORDERS.REGION")
	if err != nil || e.Table != "ORDERS" || e.Column != "REGION" {
		t.Errorf("ParseElement = %+v, %v", e, err)
	}
	for _, bad := range []string{"", "X", ".X", "X."} {
		if _, err := ParseElement(bad); err == nil {
			t.Errorf("ParseElement(%q) should fail", bad)
		}
	}
}

func TestSubset(t *testing.T) {
	s := FromDatabase(fixtureDB(), 0)
	sub := s.Subset([]Element{
		{Table: "ORDERS", Column: "REGION"},
		{Table: "NOPE", Column: "X"},
	})
	if len(sub.Tables) != 1 || len(sub.Tables[0].Columns) != 1 {
		t.Fatalf("Subset = %+v, want just ORDERS.REGION", sub)
	}
	if sub.Tables[0].Columns[0].Name != "REGION" {
		t.Errorf("subset column = %q", sub.Tables[0].Columns[0].Name)
	}
	if s.ColumnCount() != 3 {
		t.Error("Subset must not mutate the source schema")
	}
}

func TestDDLRendering(t *testing.T) {
	s := FromDatabase(fixtureDB(), 5)
	ddl := s.DDL()
	for _, want := range []string{
		"CREATE TABLE ORDERS", "REGION TEXT", "top values: east, west",
		"sales region", "CREATE TABLE USERS",
	} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}

func TestSortedElementsDeterministic(t *testing.T) {
	s := FromDatabase(fixtureDB(), 0)
	els := s.SortedElements()
	for i := 1; i < len(els); i++ {
		if els[i-1].String() > els[i].String() {
			t.Errorf("elements not sorted: %v before %v", els[i-1], els[i])
		}
	}
}
