// Package schema provides the prompt-facing database schema representation
// of §2.1: tables and columns augmented with the top-5 most frequent values
// per attribute, plus the element/subset machinery schema linking needs.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"genedit/internal/sqldb"
)

// DefaultTopValues is the number of frequent values attached per column,
// matching the paper's "top-5 most frequent values per attribute".
const DefaultTopValues = 5

// Element identifies one column for schema linking.
type Element struct {
	Table  string
	Column string
}

func (e Element) String() string { return e.Table + "." + e.Column }

// ParseElement parses "TABLE.COLUMN" into an Element.
func ParseElement(s string) (Element, error) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return Element{}, fmt.Errorf("schema element %q is not TABLE.COLUMN", s)
	}
	return Element{Table: s[:i], Column: s[i+1:]}, nil
}

// Column is a prompt-facing column description.
type Column struct {
	Name        string
	Type        string
	Description string
	TopValues   []string
}

// Table is a prompt-facing table description.
type Table struct {
	Name    string
	Columns []Column
}

// Schema is the promptable description of one database.
type Schema struct {
	DatabaseID string
	Tables     []Table
}

// FromDatabase profiles a database into a schema, attaching the topK most
// frequent values of every column.
func FromDatabase(db *sqldb.Database, topK int) *Schema {
	s := &Schema{DatabaseID: db.Name}
	for _, tbl := range db.Tables() {
		st := Table{Name: tbl.Name}
		for _, col := range tbl.Columns {
			sc := Column{Name: col.Name, Type: col.Type, Description: col.Description}
			for _, v := range tbl.TopValues(col.Name, topK) {
				sc.TopValues = append(sc.TopValues, v.String())
			}
			st.Columns = append(st.Columns, sc)
		}
		s.Tables = append(s.Tables, st)
	}
	return s
}

// Elements lists every column of the schema.
func (s *Schema) Elements() []Element {
	var out []Element
	for _, t := range s.Tables {
		for _, c := range t.Columns {
			out = append(out, Element{Table: t.Name, Column: c.Name})
		}
	}
	return out
}

// HasElement reports whether the schema contains the element
// (case-insensitive).
func (s *Schema) HasElement(e Element) bool {
	for _, t := range s.Tables {
		if !strings.EqualFold(t.Name, e.Table) {
			continue
		}
		for _, c := range t.Columns {
			if strings.EqualFold(c.Name, e.Column) {
				return true
			}
		}
	}
	return false
}

// Table returns the named table description, or nil.
func (s *Schema) Table(name string) *Table {
	for i := range s.Tables {
		if strings.EqualFold(s.Tables[i].Name, name) {
			return &s.Tables[i]
		}
	}
	return nil
}

// Subset returns a schema containing only the given elements (whole tables
// are retained in original column order; tables with no selected columns are
// dropped). Unknown elements are ignored.
func (s *Schema) Subset(elements []Element) *Schema {
	want := make(map[string]bool, len(elements))
	for _, e := range elements {
		want[strings.ToUpper(e.Table)+"."+strings.ToUpper(e.Column)] = true
	}
	out := &Schema{DatabaseID: s.DatabaseID}
	for _, t := range s.Tables {
		var cols []Column
		for _, c := range t.Columns {
			if want[strings.ToUpper(t.Name)+"."+strings.ToUpper(c.Name)] {
				cols = append(cols, c)
			}
		}
		if len(cols) > 0 {
			out.Tables = append(out.Tables, Table{Name: t.Name, Columns: cols})
		}
	}
	return out
}

// ColumnCount reports the total number of columns.
func (s *Schema) ColumnCount() int {
	n := 0
	for _, t := range s.Tables {
		n += len(t.Columns)
	}
	return n
}

// DDL renders the schema as annotated CREATE TABLE statements, the form
// embedded in generation prompts.
func (s *Schema) DDL() string {
	var sb strings.Builder
	for i, t := range s.Tables {
		if i > 0 {
			sb.WriteString("\n")
		}
		fmt.Fprintf(&sb, "CREATE TABLE %s (\n", t.Name)
		for j, c := range t.Columns {
			fmt.Fprintf(&sb, "  %s %s", c.Name, c.Type)
			if j < len(t.Columns)-1 {
				sb.WriteString(",")
			}
			var notes []string
			if c.Description != "" {
				notes = append(notes, c.Description)
			}
			if len(c.TopValues) > 0 {
				notes = append(notes, "top values: "+strings.Join(c.TopValues, ", "))
			}
			if len(notes) > 0 {
				sb.WriteString(" -- " + strings.Join(notes, "; "))
			}
			sb.WriteString("\n")
		}
		sb.WriteString(");\n")
	}
	return sb.String()
}

// SortedElements returns the schema's elements sorted lexically; useful for
// deterministic iteration in tests and ranking.
func (s *Schema) SortedElements() []Element {
	els := s.Elements()
	sort.Slice(els, func(i, j int) bool {
		if els[i].Table != els[j].Table {
			return els[i].Table < els[j].Table
		}
		return els[i].Column < els[j].Column
	})
	return els
}
