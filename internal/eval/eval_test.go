package eval

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"genedit/internal/sqldb"
	"genedit/internal/sqlexec"
	"genedit/internal/task"
)

func res(cols []string, rows ...[]sqldb.Value) *sqlexec.Result {
	out := &sqlexec.Result{Columns: cols}
	for _, r := range rows {
		out.Rows = append(out.Rows, sqldb.Row(r))
	}
	return out
}

func TestResultsEqualOrderInsensitive(t *testing.T) {
	a := res([]string{"x"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	b := res([]string{"x"}, []sqldb.Value{sqldb.Int(2)}, []sqldb.Value{sqldb.Int(1)})
	if !ResultsEqual(a, b) {
		t.Error("row order must not matter")
	}
}

func TestResultsEqualMultiset(t *testing.T) {
	a := res([]string{"x"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(1)})
	b := res([]string{"x"}, []sqldb.Value{sqldb.Int(1)}, []sqldb.Value{sqldb.Int(2)})
	if ResultsEqual(a, b) {
		t.Error("duplicate counts must matter")
	}
}

func TestResultsEqualShapeMismatch(t *testing.T) {
	a := res([]string{"x"}, []sqldb.Value{sqldb.Int(1)})
	b := res([]string{"x", "y"}, []sqldb.Value{sqldb.Int(1), sqldb.Int(2)})
	if ResultsEqual(a, b) {
		t.Error("column count must matter")
	}
	c := res([]string{"x"})
	if ResultsEqual(a, c) {
		t.Error("row count must matter")
	}
}

func TestResultsEqualNumericKinds(t *testing.T) {
	a := res([]string{"x"}, []sqldb.Value{sqldb.Int(3)})
	b := res([]string{"x"}, []sqldb.Value{sqldb.Float(3)})
	if !ResultsEqual(a, b) {
		t.Error("3 and 3.0 compare equal under EX")
	}
}

func TestResultsEqualProperties(t *testing.T) {
	gen := func(vals []int8) *sqlexec.Result {
		r := &sqlexec.Result{Columns: []string{"v"}}
		for _, v := range vals {
			r.Rows = append(r.Rows, sqldb.Row{sqldb.Int(int64(v))})
		}
		return r
	}
	reflexive := func(vals []int8) bool {
		r := gen(vals)
		return ResultsEqual(r, r)
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error(err)
	}
	symmetric := func(a, b []int8) bool {
		ra, rb := gen(a), gen(b)
		return ResultsEqual(ra, rb) == ResultsEqual(rb, ra)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
}

// fixedSystem returns canned SQL per case.
type fixedSystem struct {
	name string
	sql  map[string]string
}

func (f *fixedSystem) Name() string { return f.name }
func (f *fixedSystem) Generate(c *task.Case) (string, error) {
	return f.sql[c.ID], nil
}

func evalFixture() (map[string]*sqldb.Database, []*task.Case) {
	db := sqldb.NewDatabase("d1")
	tbl := sqldb.NewTable("T", sqldb.Column{Name: "X", Type: "INTEGER"})
	tbl.MustAppend(sqldb.Int(1))
	tbl.MustAppend(sqldb.Int(2))
	tbl.MustAppend(sqldb.Int(3))
	db.AddTable(tbl)
	cases := []*task.Case{
		{ID: "c1", DB: "d1", Difficulty: task.Simple, Question: "sum", GoldSQL: "SELECT SUM(X) FROM T"},
		{ID: "c2", DB: "d1", Difficulty: task.Moderate, Question: "count", GoldSQL: "SELECT COUNT(*) FROM T"},
		{ID: "c3", DB: "d1", Difficulty: task.Challenging, Question: "max", GoldSQL: "SELECT MAX(X) FROM T"},
	}
	return map[string]*sqldb.Database{"d1": db}, cases
}

func TestRunnerScoresSystems(t *testing.T) {
	dbs, cases := evalFixture()
	runner := NewRunner(dbs)
	sys := &fixedSystem{name: "fixed", sql: map[string]string{
		"c1": "SELECT 6",               // correct by value
		"c2": "SELECT COUNT(X) FROM T", // correct
		"c3": "SELECT MIN(X) FROM T",   // wrong
	}}
	rep, err := runner.Run(sys, cases)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.EX(""); got < 66 || got > 67 {
		t.Errorf("EX(all) = %.2f, want 66.67", got)
	}
	if rep.EX(task.Simple) != 100 {
		t.Errorf("EX(simple) = %v", rep.EX(task.Simple))
	}
	if rep.EX(task.Challenging) != 0 {
		t.Errorf("EX(challenging) = %v", rep.EX(task.Challenging))
	}
	if n := len(rep.Failures("")); n != 1 {
		t.Errorf("failures = %d, want 1", n)
	}
}

func TestRunnerTreatsBrokenSQLAsIncorrect(t *testing.T) {
	dbs, cases := evalFixture()
	runner := NewRunner(dbs)
	sys := &fixedSystem{name: "broken", sql: map[string]string{
		"c1": "SELEC nope", "c2": "SELECT * FROM MISSING", "c3": "",
	}}
	rep, err := runner.Run(sys, cases)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EX("") != 0 {
		t.Errorf("broken SQL scored %v", rep.EX(""))
	}
}

func TestFormatTableAndRank(t *testing.T) {
	dbs, cases := evalFixture()
	runner := NewRunner(dbs)
	good := &fixedSystem{name: "good", sql: map[string]string{
		"c1": "SELECT SUM(X) FROM T", "c2": "SELECT COUNT(*) FROM T", "c3": "SELECT MAX(X) FROM T",
	}}
	bad := &fixedSystem{name: "bad", sql: map[string]string{}}
	repGood, _ := runner.Run(good, cases)
	repBad, _ := runner.Run(bad, cases)
	table := FormatTable("title", []*Report{repBad, repGood})
	if !strings.Contains(table, "title") || !strings.Contains(table, "good") {
		t.Errorf("table rendering broken:\n%s", table)
	}
	if Rank([]*Report{repBad, repGood}, "good") != 1 {
		t.Error("good should rank first")
	}
	if Rank([]*Report{repBad, repGood}, "bad") != 2 {
		t.Error("bad should rank second")
	}
	if Rank([]*Report{repBad, repGood}, "missing") != -1 {
		t.Error("unknown system should rank -1")
	}
}

func TestRunnerUnknownDatabase(t *testing.T) {
	runner := NewRunner(map[string]*sqldb.Database{})
	_, err := runner.Evaluate(&task.Case{ID: "x", DB: "nope"}, "SELECT 1")
	if err == nil {
		t.Error("unknown database should error")
	}
}

// stubSystem is a deterministic System for runner tests: correct SQL for
// even-indexed cases, failing SQL for every third, broken SQL otherwise.
type stubSystem struct{ name string }

func (s *stubSystem) Name() string { return s.name }

func (s *stubSystem) Generate(c *task.Case) (string, error) {
	switch {
	case strings.HasSuffix(c.ID, "0") || strings.HasSuffix(c.ID, "2") ||
		strings.HasSuffix(c.ID, "4") || strings.HasSuffix(c.ID, "6") ||
		strings.HasSuffix(c.ID, "8"):
		return c.GoldSQL, nil
	case strings.HasSuffix(c.ID, "3"):
		return "SELECT nope FROM missing", nil
	default:
		return "SELECT V FROM T WHERE V < 0", nil
	}
}

func runnerFixture(n int) (*Runner, []*task.Case) {
	db := sqldb.NewDatabase("d")
	tbl := sqldb.NewTable("T", sqldb.Column{Name: "V"})
	for i := 0; i < 10; i++ {
		tbl.MustAppend(sqldb.Int(int64(i)))
	}
	db.AddTable(tbl)
	r := NewRunner(map[string]*sqldb.Database{"d": db})
	cases := make([]*task.Case, n)
	for i := range cases {
		cases[i] = &task.Case{
			ID:         fmt.Sprintf("case-%03d", i),
			DB:         "d",
			GoldSQL:    fmt.Sprintf("SELECT V FROM T WHERE V >= %d", i%10),
			Difficulty: task.Simple,
		}
	}
	return r, cases
}

func TestRunParallelMatchesSequential(t *testing.T) {
	sys := &stubSystem{name: "stub"}
	_, cases := runnerFixture(60)

	seqRunner, _ := runnerFixture(0)
	seqRunner.SetWorkers(1)
	seq, err := seqRunner.Run(sys, cases)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 8} {
		parRunner, _ := runnerFixture(0)
		parRunner.SetWorkers(workers)
		par, err := parRunner.Run(sys, cases)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Outcomes) != len(seq.Outcomes) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(par.Outcomes), len(seq.Outcomes))
		}
		for i := range seq.Outcomes {
			s, p := seq.Outcomes[i], par.Outcomes[i]
			if s.Case.ID != p.Case.ID || s.SQL != p.SQL || s.Correct != p.Correct || s.Err != p.Err {
				t.Errorf("workers=%d outcome %d differs: seq %+v, par %+v", workers, i, s, p)
			}
		}
		if seq.EX("") != par.EX("") {
			t.Errorf("workers=%d EX %v, want %v", workers, par.EX(""), seq.EX(""))
		}
	}
}

func TestRunParallelSharedGoldCache(t *testing.T) {
	// Many cases sharing few distinct gold statements: concurrent goldFor
	// calls must neither race nor duplicate entries visibly.
	sys := &stubSystem{name: "stub"}
	r, cases := runnerFixture(40)
	r.SetWorkers(8)
	rep, err := r.Run(sys, cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 40 {
		t.Fatalf("got %d outcomes", len(rep.Outcomes))
	}
	// Second run hits the warm cache and must agree.
	rep2, err := r.Run(sys, cases)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep.Outcomes {
		if rep.Outcomes[i].Correct != rep2.Outcomes[i].Correct {
			t.Fatalf("outcome %d unstable across runs", i)
		}
	}
}

func TestRunReportsLowestIndexGoldError(t *testing.T) {
	sys := &stubSystem{name: "stub"}
	r, cases := runnerFixture(20)
	cases[7].GoldSQL = "SELECT broken FROM nowhere"
	cases[13].GoldSQL = "SELECT broken FROM nowhere"
	r.SetWorkers(4)
	_, err := r.Run(sys, cases)
	if err == nil {
		t.Fatal("expected gold failure")
	}
	if !strings.Contains(err.Error(), "case-007") {
		t.Errorf("error should name the first failing case (case-007): %v", err)
	}
}

func TestSetWorkersClamps(t *testing.T) {
	r, cases := runnerFixture(3)
	r.SetWorkers(-5)
	if r.workers != 1 {
		t.Errorf("workers = %d, want 1", r.workers)
	}
	rep, err := r.Run(&stubSystem{name: "s"}, cases)
	if err != nil || len(rep.Outcomes) != 3 {
		t.Fatalf("sequential fallback broken: %v, %d outcomes", err, len(rep.Outcomes))
	}
}

func TestPrewarmGoldPopulatesCache(t *testing.T) {
	r, cases := runnerFixture(15)
	r.SetWorkers(4)
	r.PrewarmGold(cases)
	for _, c := range cases {
		r.goldMu.RLock()
		_, ok := r.gold[c.ID]
		r.goldMu.RUnlock()
		if !ok {
			t.Errorf("gold for %s not prewarmed", c.ID)
		}
	}
}
