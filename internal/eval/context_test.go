package eval

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"genedit/internal/generr"
	"genedit/internal/task"
)

// ctxSystem counts how many cases saw a live context vs a dead one.
type ctxSystem struct {
	inner System
	live  atomic.Int64
	dead  atomic.Int64
}

func (s *ctxSystem) Name() string { return s.inner.Name() }

func (s *ctxSystem) Generate(c *task.Case) (string, error) {
	return s.inner.Generate(c)
}

func (s *ctxSystem) GenerateContext(ctx context.Context, c *task.Case) (string, error) {
	if err := generr.FromContext(ctx); err != nil {
		s.dead.Add(1)
		return "", err
	}
	s.live.Add(1)
	return s.inner.Generate(c)
}

func TestRunContextMatchesRun(t *testing.T) {
	sys := &stubSystem{name: "stub"}
	r, cases := runnerFixture(40)
	want, err := r.Run(sys, cases)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.RunContext(context.Background(), sys, cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Outcomes) != len(want.Outcomes) {
		t.Fatalf("outcomes = %d, want %d", len(got.Outcomes), len(want.Outcomes))
	}
	for i := range got.Outcomes {
		if got.Outcomes[i].SQL != want.Outcomes[i].SQL || got.Outcomes[i].Correct != want.Outcomes[i].Correct {
			t.Fatalf("outcome %d differs: %+v vs %+v", i, got.Outcomes[i], want.Outcomes[i])
		}
	}
}

func TestRunContextCanceled(t *testing.T) {
	r, cases := runnerFixture(40)
	r.SetWorkers(2)
	wrapped := &ctxSystem{inner: &stubSystem{name: "stub"}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.RunContext(ctx, wrapped, cases)
	if !errors.Is(err, generr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want to match context.Canceled", err)
	}
	if n := wrapped.live.Load(); n != 0 {
		t.Fatalf("%d cases ran with a live ctx after cancellation", n)
	}
}

func TestForEachDispatchStopsOnCancel(t *testing.T) {
	var ran atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ForEach(ctx, 4, 1000, func(i int) { ran.Add(1) })
	// At most the workers' already-dequeued indices run; with a pre-canceled
	// ctx nothing should be dispatched at all.
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d indices ran after pre-canceled ctx", n)
	}
}

func TestForEachCompletesAllWithoutCancel(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var ran atomic.Int64
		ForEach(context.Background(), workers, 100, func(i int) { ran.Add(1) })
		if n := ran.Load(); n != 100 {
			t.Fatalf("workers=%d: ran %d of 100", workers, n)
		}
	}
}
