// Package eval implements the benchmark evaluation: BIRD's Execution
// Accuracy (EX) metric, the per-system runner, and the table formatting the
// benchmark harness prints.
package eval

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"genedit/internal/generr"
	"genedit/internal/parallel"
	"genedit/internal/sqldb"
	"genedit/internal/sqlexec"
	"genedit/internal/task"
)

// System is anything that turns a benchmark case into SQL: the GenEdit
// pipeline, a baseline, or an ablated variant. Runner.Run calls Generate
// from multiple goroutines (bounded by SetWorkers), so implementations must
// be safe for concurrent use; a System with per-call mutable state must
// synchronize it or be run with SetWorkers(1).
type System interface {
	Name() string
	Generate(c *task.Case) (string, error)
}

// ContextSystem is implemented by systems whose generation honors context
// cancellation. RunContext prefers GenerateContext when available, so a
// deadline propagates into the pipeline mid-case instead of only between
// cases.
type ContextSystem interface {
	System
	GenerateContext(ctx context.Context, c *task.Case) (string, error)
}

// Outcome is one case's evaluation result.
type Outcome struct {
	Case    *task.Case
	SQL     string
	Correct bool
	// Err records generation or execution failure.
	Err string
}

// Report aggregates a system's outcomes.
type Report struct {
	System   string
	Outcomes []Outcome
}

// ResultsEqual implements the EX comparison: results are equal when they
// have the same columns count and the same multiset of rows (order-
// insensitive, matching BIRD's set-style comparison).
func ResultsEqual(a, b *sqlexec.Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Rows) != len(b.Rows) || len(a.Columns) != len(b.Columns) {
		return false
	}
	counts := make(map[string]int, len(a.Rows))
	for _, r := range a.Rows {
		counts[rowKey(r)]++
	}
	for _, r := range b.Rows {
		k := rowKey(r)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

func rowKey(r sqldb.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.Key()
	}
	return strings.Join(parts, "\x1f")
}

// Runner evaluates systems over a fixed case set, caching gold results. A
// Runner fans Run out across a bounded worker pool (see SetWorkers); the
// gold cache is guarded internally, and the substrate Run drives — the
// executors (read-only database, synchronized statement cache), the
// simulated model (pure functions of its seed) and the knowledge-set read
// paths — is concurrency-safe, so outcomes are deterministic and
// input-ordered regardless of worker count.
type Runner struct {
	dbs     map[string]*sqldb.Database
	execs   map[string]*sqlexec.Executor
	workers int

	goldMu sync.RWMutex
	gold   map[string]*sqlexec.Result
}

// NewRunner builds a runner over the benchmark databases. Workers default to
// GOMAXPROCS.
func NewRunner(dbs map[string]*sqldb.Database) *Runner {
	r := &Runner{
		dbs:     dbs,
		execs:   make(map[string]*sqlexec.Executor, len(dbs)),
		gold:    make(map[string]*sqlexec.Result),
		workers: runtime.GOMAXPROCS(0),
	}
	for name, db := range dbs {
		r.execs[name] = sqlexec.New(db)
	}
	return r
}

// SetWorkers bounds the worker pool Run fans cases out across. Values below
// 1 are clamped to 1 (strictly sequential) rather than accepted — a
// non-positive pool would otherwise deadlock the dispatch channel. Workers
// reports the effective value. SetWorkers is a setup-time knob: it is not
// synchronized against an in-flight Run, so configure the pool before
// sharing the runner across goroutines.
func (r *Runner) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	r.workers = n
}

// Workers returns the effective worker-pool bound (always >= 1).
func (r *Runner) Workers() int { return r.workers }

// goldFor returns the cached gold result for a case, executing and caching
// the gold SQL on first use. Safe for concurrent callers: a lost race costs
// one redundant (deterministic, identical) execution, never a wrong result.
func (r *Runner) goldFor(c *task.Case, exec *sqlexec.Executor) (*sqlexec.Result, error) {
	r.goldMu.RLock()
	g, ok := r.gold[c.ID]
	r.goldMu.RUnlock()
	if ok {
		return g, nil
	}
	g, err := exec.Query(c.GoldSQL)
	if err != nil {
		return nil, fmt.Errorf("case %s: gold SQL failed: %w", c.ID, err)
	}
	r.goldMu.Lock()
	if cached, ok := r.gold[c.ID]; ok {
		g = cached
	} else {
		r.gold[c.ID] = g
	}
	r.goldMu.Unlock()
	return g, nil
}

// Evaluate scores one predicted SQL against a case's gold.
func (r *Runner) Evaluate(c *task.Case, predicted string) (bool, error) {
	exec, ok := r.execs[c.DB]
	if !ok {
		return false, fmt.Errorf("case %s: unknown database %q", c.ID, c.DB)
	}
	gold, err := r.goldFor(c, exec)
	if err != nil {
		return false, err
	}
	pred, err := exec.Query(predicted)
	if err != nil {
		return false, nil // predicted SQL fails to execute: not correct
	}
	return ResultsEqual(gold, pred), nil
}

// PrewarmGold executes and caches the gold results for the cases, fanning
// out across the worker pool. Run populates the cache lazily (each case is
// dispatched to exactly one worker, so golds are never computed twice
// within a run); PrewarmGold is for callers that want to front-load the
// gold execution cost — e.g. before timing a system. Gold failures are
// deliberately not reported here: Run surfaces them per-case with
// sequential-identical error selection.
func (r *Runner) PrewarmGold(cases []*task.Case) {
	r.forEachCase(context.Background(), cases, func(i int, c *task.Case) {
		if exec, ok := r.execs[c.DB]; ok {
			_, _ = r.goldFor(c, exec)
		}
	})
}

// ForEach runs fn(i) for every i in [0, n), fanned out across at most
// workers goroutines (clamped to [1, n]). It is the bounded worker-pool
// primitive behind Runner.Run and genedit.Service.GenerateBatch. Once ctx is
// done no further indices are dispatched; indices already handed to a worker
// run to completion, and ForEach returns only after all dispatched work has
// finished. Callers detect an early stop via ctx.Err().
//
// The implementation lives in internal/parallel so the SQL executor — which
// this package imports — can drive morsel scheduling over the same pool
// discipline without an import cycle; ForEach is kept here as the public
// face the evaluation-side callers already use.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) {
	parallel.ForEach(ctx, workers, n, fn)
}

// forEachCase applies fn to every case, fanning out across the worker pool.
func (r *Runner) forEachCase(ctx context.Context, cases []*task.Case, fn func(i int, c *task.Case)) {
	ForEach(ctx, r.workers, len(cases), func(i int) { fn(i, cases[i]) })
}

// Run evaluates a system over the cases with no deadline. Results are
// input-ordered and identical to a sequential run; on evaluation failure the
// error reported is the one a sequential run would have hit first.
func (r *Runner) Run(sys System, cases []*task.Case) (*Report, error) {
	return r.RunContext(context.Background(), sys, cases)
}

// RunContext evaluates a system over the cases, honoring ctx: once ctx is
// done no further cases are dispatched (and a ContextSystem aborts
// mid-case), and the run returns an error matching generr.ErrCanceled. A
// run that completes before cancellation reports exactly what Run would.
func (r *Runner) RunContext(ctx context.Context, sys System, cases []*task.Case) (*Report, error) {
	csys, _ := sys.(ContextSystem)
	outcomes := make([]Outcome, len(cases))
	errs := make([]error, len(cases))
	r.forEachCase(ctx, cases, func(i int, c *task.Case) {
		var (
			sql string
			err error
		)
		if csys != nil {
			sql, err = csys.GenerateContext(ctx, c)
		} else {
			sql, err = sys.Generate(c)
		}
		out := Outcome{Case: c, SQL: sql}
		if err != nil {
			out.Err = err.Error()
		} else {
			correct, evalErr := r.Evaluate(c, sql)
			if evalErr != nil {
				errs[i] = evalErr
			}
			out.Correct = correct
		}
		outcomes[i] = out
	})
	if err := generr.FromContext(ctx); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Report{System: sys.Name(), Outcomes: outcomes}, nil
}

// Counts returns (correct, total) for a difficulty; empty difficulty means
// all cases.
func (rep *Report) Counts(d task.Difficulty) (correct, total int) {
	for _, o := range rep.Outcomes {
		if d != "" && o.Case.Difficulty != d {
			continue
		}
		total++
		if o.Correct {
			correct++
		}
	}
	return correct, total
}

// EX returns execution accuracy (percent) for a difficulty; empty
// difficulty means all cases.
func (rep *Report) EX(d task.Difficulty) float64 {
	correct, total := rep.Counts(d)
	if total == 0 {
		return 0
	}
	return 100 * float64(correct) / float64(total)
}

// Failures lists the incorrect outcomes, optionally filtered by difficulty.
func (rep *Report) Failures(d task.Difficulty) []Outcome {
	var out []Outcome
	for _, o := range rep.Outcomes {
		if d != "" && o.Case.Difficulty != d {
			continue
		}
		if !o.Correct {
			out = append(out, o)
		}
	}
	return out
}

// Row renders the report as a benchmark table row (Simple, Moderate,
// Challenging, All), matching the paper's table layout.
func (rep *Report) Row() string {
	return fmt.Sprintf("%-22s %7.2f %9.2f %12.2f %7.2f",
		rep.System,
		rep.EX(task.Simple), rep.EX(task.Moderate), rep.EX(task.Challenging), rep.EX(""))
}

// TableHeader is the header matching Row's layout.
func TableHeader() string {
	return fmt.Sprintf("%-22s %7s %9s %12s %7s", "Method", "Simple", "Moderate", "Challenging", "All")
}

// FormatTable renders reports as the paper-style table, preserving the
// given order.
func FormatTable(title string, reports []*Report) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString(TableHeader() + "\n")
	sb.WriteString(strings.Repeat("-", 62) + "\n")
	for _, rep := range reports {
		sb.WriteString(rep.Row() + "\n")
	}
	return sb.String()
}

// Rank returns the 1-based position of the named system when reports are
// ordered by overall EX descending (ties broken by name).
func Rank(reports []*Report, name string) int {
	sorted := append([]*Report(nil), reports...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i].EX(""), sorted[j].EX("")
		if a != b {
			return a > b
		}
		return sorted[i].System < sorted[j].System
	})
	for i, rep := range sorted {
		if rep.System == name {
			return i + 1
		}
	}
	return -1
}
