// Package eval implements the benchmark evaluation: BIRD's Execution
// Accuracy (EX) metric, the per-system runner, and the table formatting the
// benchmark harness prints.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"genedit/internal/sqldb"
	"genedit/internal/sqlexec"
	"genedit/internal/task"
)

// System is anything that turns a benchmark case into SQL: the GenEdit
// pipeline, a baseline, or an ablated variant.
type System interface {
	Name() string
	Generate(c *task.Case) (string, error)
}

// Outcome is one case's evaluation result.
type Outcome struct {
	Case    *task.Case
	SQL     string
	Correct bool
	// Err records generation or execution failure.
	Err string
}

// Report aggregates a system's outcomes.
type Report struct {
	System   string
	Outcomes []Outcome
}

// ResultsEqual implements the EX comparison: results are equal when they
// have the same columns count and the same multiset of rows (order-
// insensitive, matching BIRD's set-style comparison).
func ResultsEqual(a, b *sqlexec.Result) bool {
	if a == nil || b == nil {
		return a == b
	}
	if len(a.Rows) != len(b.Rows) || len(a.Columns) != len(b.Columns) {
		return false
	}
	counts := make(map[string]int, len(a.Rows))
	for _, r := range a.Rows {
		counts[rowKey(r)]++
	}
	for _, r := range b.Rows {
		k := rowKey(r)
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

func rowKey(r sqldb.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.Key()
	}
	return strings.Join(parts, "\x1f")
}

// Runner evaluates systems over a fixed case set, caching gold results.
type Runner struct {
	dbs   map[string]*sqldb.Database
	execs map[string]*sqlexec.Executor
	gold  map[string]*sqlexec.Result
}

// NewRunner builds a runner over the benchmark databases.
func NewRunner(dbs map[string]*sqldb.Database) *Runner {
	r := &Runner{
		dbs:   dbs,
		execs: make(map[string]*sqlexec.Executor, len(dbs)),
		gold:  make(map[string]*sqlexec.Result),
	}
	for name, db := range dbs {
		r.execs[name] = sqlexec.New(db)
	}
	return r
}

// Evaluate scores one predicted SQL against a case's gold.
func (r *Runner) Evaluate(c *task.Case, predicted string) (bool, error) {
	exec, ok := r.execs[c.DB]
	if !ok {
		return false, fmt.Errorf("case %s: unknown database %q", c.ID, c.DB)
	}
	gold, ok := r.gold[c.ID]
	if !ok {
		g, err := exec.Query(c.GoldSQL)
		if err != nil {
			return false, fmt.Errorf("case %s: gold SQL failed: %w", c.ID, err)
		}
		r.gold[c.ID] = g
		gold = g
	}
	pred, err := exec.Query(predicted)
	if err != nil {
		return false, nil // predicted SQL fails to execute: not correct
	}
	return ResultsEqual(gold, pred), nil
}

// Run evaluates a system over the cases.
func (r *Runner) Run(sys System, cases []*task.Case) (*Report, error) {
	rep := &Report{System: sys.Name()}
	for _, c := range cases {
		sql, err := sys.Generate(c)
		out := Outcome{Case: c, SQL: sql}
		if err != nil {
			out.Err = err.Error()
		} else {
			correct, evalErr := r.Evaluate(c, sql)
			if evalErr != nil {
				return nil, evalErr
			}
			out.Correct = correct
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	return rep, nil
}

// Counts returns (correct, total) for a difficulty; empty difficulty means
// all cases.
func (rep *Report) Counts(d task.Difficulty) (correct, total int) {
	for _, o := range rep.Outcomes {
		if d != "" && o.Case.Difficulty != d {
			continue
		}
		total++
		if o.Correct {
			correct++
		}
	}
	return correct, total
}

// EX returns execution accuracy (percent) for a difficulty; empty
// difficulty means all cases.
func (rep *Report) EX(d task.Difficulty) float64 {
	correct, total := rep.Counts(d)
	if total == 0 {
		return 0
	}
	return 100 * float64(correct) / float64(total)
}

// Failures lists the incorrect outcomes, optionally filtered by difficulty.
func (rep *Report) Failures(d task.Difficulty) []Outcome {
	var out []Outcome
	for _, o := range rep.Outcomes {
		if d != "" && o.Case.Difficulty != d {
			continue
		}
		if !o.Correct {
			out = append(out, o)
		}
	}
	return out
}

// Row renders the report as a benchmark table row (Simple, Moderate,
// Challenging, All), matching the paper's table layout.
func (rep *Report) Row() string {
	return fmt.Sprintf("%-22s %7.2f %9.2f %12.2f %7.2f",
		rep.System,
		rep.EX(task.Simple), rep.EX(task.Moderate), rep.EX(task.Challenging), rep.EX(""))
}

// TableHeader is the header matching Row's layout.
func TableHeader() string {
	return fmt.Sprintf("%-22s %7s %9s %12s %7s", "Method", "Simple", "Moderate", "Challenging", "All")
}

// FormatTable renders reports as the paper-style table, preserving the
// given order.
func FormatTable(title string, reports []*Report) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString(TableHeader() + "\n")
	sb.WriteString(strings.Repeat("-", 62) + "\n")
	for _, rep := range reports {
		sb.WriteString(rep.Row() + "\n")
	}
	return sb.String()
}

// Rank returns the 1-based position of the named system when reports are
// ordered by overall EX descending (ties broken by name).
func Rank(reports []*Report, name string) int {
	sorted := append([]*Report(nil), reports...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i].EX(""), sorted[j].EX("")
		if a != b {
			return a > b
		}
		return sorted[i].System < sorted[j].System
	})
	for i, rep := range sorted {
		if rep.System == name {
			return i + 1
		}
	}
	return -1
}
