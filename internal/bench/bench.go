// Package bench wires the workload, pipeline, baselines and feedback module
// into the experiments that regenerate the paper's tables. Both
// cmd/benchrunner and the repository-level benchmarks call into it.
package bench

import (
	"context"
	"fmt"

	"genedit/internal/eval"
	"genedit/internal/knowledge"
	"genedit/internal/pipeline"
	"genedit/internal/simllm"
	"genedit/internal/task"
	"genedit/internal/workload"
)

// GenEditSystem adapts the pipeline (one engine per database, as each
// database is a separate "company" with its own knowledge set) to
// eval.System.
type GenEditSystem struct {
	name    string
	engines map[string]*pipeline.Engine
}

// NewGenEditSystem builds engines over every suite database, running the
// pre-processing phase (knowledge-set construction) for each.
func NewGenEditSystem(name string, suite *workload.Suite, cfg pipeline.Config, seed uint64) (*GenEditSystem, error) {
	g := &GenEditSystem{name: name, engines: make(map[string]*pipeline.Engine)}
	model := simllm.New(simllm.GenEditProfile(), suite.Registry, seed)
	for _, dbName := range workload.DomainNames() {
		kset, err := suite.BuildKnowledge(dbName)
		if err != nil {
			return nil, fmt.Errorf("building knowledge for %s: %w", dbName, err)
		}
		g.engines[dbName] = pipeline.New(model, kset, suite.Databases[dbName], cfg)
	}
	return g, nil
}

// Name implements eval.System.
func (g *GenEditSystem) Name() string { return g.name }

// Generate implements eval.System.
func (g *GenEditSystem) Generate(c *task.Case) (string, error) {
	return g.GenerateContext(context.Background(), c)
}

// GenerateContext implements eval.ContextSystem: RunContext deadlines
// propagate into the pipeline mid-case.
func (g *GenEditSystem) GenerateContext(ctx context.Context, c *task.Case) (string, error) {
	engine, ok := g.engines[c.DB]
	if !ok {
		return "", fmt.Errorf("%s: unknown database %q", g.name, c.DB)
	}
	rec, err := engine.GenerateContext(ctx, c.Question, c.Evidence)
	if err != nil {
		return "", err
	}
	return rec.FinalSQL, nil
}

// Engine exposes the per-database engine (used by the feedback experiments).
func (g *GenEditSystem) Engine(db string) *pipeline.Engine { return g.engines[db] }

// ReplaceKnowledge swaps one database's knowledge set (staging / merge).
func (g *GenEditSystem) ReplaceKnowledge(db string, kset *knowledge.Set) {
	g.engines[db] = g.engines[db].WithKnowledge(kset)
}

// Table1 reproduces the paper's Table 1: GenEdit vs the five baselines on
// the full eval set. Report order matches the paper's rows.
func Table1(suite *workload.Suite, seed uint64) ([]*eval.Report, error) {
	return Table1Context(context.Background(), suite, seed)
}

// Table1Context is Table1 with cancellation threading into every evaluated
// case.
func Table1Context(ctx context.Context, suite *workload.Suite, seed uint64) ([]*eval.Report, error) {
	runner := eval.NewRunner(suite.Databases)
	var reports []*eval.Report
	for _, b := range AllBaselines(suite, seed) {
		rep, err := runner.RunContext(ctx, b, suite.Cases)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	genedit, err := NewGenEditSystem("GenEdit", suite, pipeline.DefaultConfig(), seed)
	if err != nil {
		return nil, err
	}
	rep, err := runner.RunContext(ctx, genedit, suite.Cases)
	if err != nil {
		return nil, err
	}
	reports = append(reports, rep)
	return reports, nil
}

// Ablation names one Table 2 row.
type Ablation struct {
	Name string
	Cfg  pipeline.Config
}

// Table2Ablations returns the paper's five ablations over the default
// configuration.
func Table2Ablations() []Ablation {
	base := pipeline.DefaultConfig()
	mk := func(name string, mod func(*pipeline.Config)) Ablation {
		cfg := base
		mod(&cfg)
		return Ablation{Name: name, Cfg: cfg}
	}
	return []Ablation{
		{Name: "GenEdit", Cfg: base},
		mk("w/o Schema Linking", func(c *pipeline.Config) { c.DisableSchemaLinking = true }),
		mk("w/o Instructions", func(c *pipeline.Config) { c.DisableInstructions = true }),
		mk("w/o Examples", func(c *pipeline.Config) { c.DisableExamples = true }),
		mk("w/o Pseudo-SQL", func(c *pipeline.Config) { c.DisablePseudoSQL = true }),
		mk("w/o Decomposition", func(c *pipeline.Config) { c.DisableDecomposition = true }),
	}
}

// ExtraAblations are the design-choice ablations DESIGN.md calls out beyond
// Table 2.
func ExtraAblations() []Ablation {
	base := pipeline.DefaultConfig()
	mk := func(name string, mod func(*pipeline.Config)) Ablation {
		cfg := base
		mod(&cfg)
		return Ablation{Name: name, Cfg: cfg}
	}
	return []Ablation{
		{Name: "GenEdit", Cfg: base},
		mk("w/o Context Expansion", func(c *pipeline.Config) { c.DisableContextExpansion = true }),
		mk("w/o Planning", func(c *pipeline.Config) { c.DisablePlanning = true }),
		mk("w/o Self-Correction", func(c *pipeline.Config) { c.DisableSelfCorrection = true }),
		mk("k=1 retry", func(c *pipeline.Config) { c.MaxAttempts = 1 }),
		mk("k=2 retries", func(c *pipeline.Config) { c.MaxAttempts = 2 }),
	}
}

// RunAblations evaluates each ablation configuration over the suite.
func RunAblations(suite *workload.Suite, seed uint64, ablations []Ablation) ([]*eval.Report, error) {
	return RunAblationsContext(context.Background(), suite, seed, ablations)
}

// RunAblationsContext is RunAblations with cancellation threading into every
// evaluated case.
func RunAblationsContext(ctx context.Context, suite *workload.Suite, seed uint64, ablations []Ablation) ([]*eval.Report, error) {
	runner := eval.NewRunner(suite.Databases)
	var reports []*eval.Report
	for _, ab := range ablations {
		sys, err := NewGenEditSystem(ab.Name, suite, ab.Cfg, seed)
		if err != nil {
			return nil, err
		}
		rep, err := runner.RunContext(ctx, sys, suite.Cases)
		if err != nil {
			return nil, err
		}
		reports = append(reports, rep)
	}
	return reports, nil
}
