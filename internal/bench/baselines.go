package bench

import (
	"genedit/internal/baselines"
	"genedit/internal/eval"
	"genedit/internal/workload"
)

// AllBaselines returns the five Table 1 comparison systems as eval.Systems.
func AllBaselines(suite *workload.Suite, seed uint64) []eval.System {
	bs := baselines.AllForSuite(suite, seed)
	out := make([]eval.System, len(bs))
	for i, b := range bs {
		out[i] = b
	}
	return out
}
