package bench

import (
	"testing"

	"genedit/internal/eval"
	"genedit/internal/task"
	"genedit/internal/workload"
)

// TestTable1ReproducesPaperShape asserts the qualitative claims of the
// paper's Table 1 hold in the reproduction: the ranking of systems, GenEdit
// winning Simple, and GenEdit's exact overall EX.
func TestTable1ReproducesPaperShape(t *testing.T) {
	suite := workload.NewSuite(1)
	reports, err := Table1(suite, 42)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*eval.Report)
	for _, rep := range reports {
		byName[rep.System] = rep
	}

	// GenEdit's overall EX matches the paper to the decimal: 80/132 = 60.61.
	if got := byName["GenEdit"].EX(""); got < 60.60 || got > 60.62 {
		t.Errorf("GenEdit EX(all) = %.2f, want 60.61", got)
	}
	// GenEdit's challenging EX matches the paper: 4/11 = 36.36.
	if got := byName["GenEdit"].EX(task.Challenging); got < 36.35 || got > 36.37 {
		t.Errorf("GenEdit EX(challenging) = %.2f, want 36.36", got)
	}

	// CHESS leads overall; GenEdit is second (the paper's ranking claim).
	if eval.Rank(reports, "CHESS") != 1 {
		t.Errorf("CHESS rank = %d, want 1", eval.Rank(reports, "CHESS"))
	}
	if eval.Rank(reports, "GenEdit") != 2 {
		t.Errorf("GenEdit rank = %d, want 2", eval.Rank(reports, "GenEdit"))
	}

	// GenEdit wins the Simple tier against every baseline.
	for _, name := range []string{"CHESS", "MAC-SQL", "TA-SQL", "DAIL-SQL", "C3-SQL"} {
		if byName[name].EX(task.Simple) >= byName["GenEdit"].EX(task.Simple) {
			t.Errorf("%s beats GenEdit on Simple (%.2f >= %.2f)",
				name, byName[name].EX(task.Simple), byName["GenEdit"].EX(task.Simple))
		}
	}

	// The baseline ordering matches the paper: MAC > TA > DAIL > C3 overall.
	order := []string{"MAC-SQL", "TA-SQL", "DAIL-SQL", "C3-SQL"}
	for i := 1; i < len(order); i++ {
		if byName[order[i-1]].EX("") < byName[order[i]].EX("") {
			t.Errorf("ordering violated: %s (%.2f) < %s (%.2f)",
				order[i-1], byName[order[i-1]].EX(""), order[i], byName[order[i]].EX(""))
		}
	}
}

// TestTable2ReproducesPaperShape asserts Table 2's qualitative structure:
// instructions are the largest ablation drop, pseudo-SQL the second;
// examples the smallest; removing schema linking or decomposition HELPS
// Moderate while collapsing Challenging.
func TestTable2ReproducesPaperShape(t *testing.T) {
	suite := workload.NewSuite(1)
	reports, err := RunAblations(suite, 42, Table2Ablations())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*eval.Report)
	for _, rep := range reports {
		byName[rep.System] = rep
	}
	base := byName["GenEdit"]
	drop := func(name string) float64 { return base.EX("") - byName[name].EX("") }

	if drop("w/o Instructions") <= drop("w/o Schema Linking") ||
		drop("w/o Instructions") <= drop("w/o Examples") ||
		drop("w/o Instructions") <= drop("w/o Decomposition") {
		t.Error("instructions should be the largest ablation drop")
	}
	if drop("w/o Pseudo-SQL") <= drop("w/o Examples") {
		t.Error("pseudo-SQL should cost more than examples")
	}
	if drop("w/o Examples") > 3.5 {
		t.Errorf("examples drop = %.2f, should be small (paper: 1.52)", drop("w/o Examples"))
	}
	if drop("w/o Examples") >= drop("w/o Pseudo-SQL") || drop("w/o Examples") >= drop("w/o Instructions") {
		t.Error("examples should be the cheapest of the prompt-content ablations")
	}

	// Removing schema linking collapses Challenging (the paper also reports
	// a small Moderate improvement; in this reproduction the Moderate shift
	// is within one-case noise — see EXPERIMENTS.md deviations).
	if byName["w/o Schema Linking"].EX(task.Challenging) >= base.EX(task.Challenging) {
		t.Error("w/o Schema Linking should collapse Challenging")
	}

	// Removing decomposition helps Moderate but hurts Challenging.
	if byName["w/o Decomposition"].EX(task.Moderate) <= base.EX(task.Moderate) {
		t.Error("w/o Decomposition should improve Moderate (the paper's most surprising row)")
	}
	if byName["w/o Decomposition"].EX(task.Challenging) >= base.EX(task.Challenging) {
		t.Error("w/o Decomposition should hurt Challenging")
	}

	// Removing examples collapses Challenging (pseudo-SQL loses grounding).
	if byName["w/o Examples"].EX(task.Challenging) >= base.EX(task.Challenging) {
		t.Error("w/o Examples should collapse Challenging")
	}
}

// TestExtraAblations checks the design-choice ablations behave sanely:
// disabling self-correction or retries can only hurt.
func TestExtraAblations(t *testing.T) {
	suite := workload.NewSuite(1)
	reports, err := RunAblations(suite, 42, ExtraAblations())
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*eval.Report)
	for _, rep := range reports {
		byName[rep.System] = rep
	}
	base := byName["GenEdit"].EX("")
	if byName["w/o Self-Correction"].EX("") > base {
		t.Error("removing self-correction should not improve EX")
	}
	if byName["k=1 retry"].EX("") > base {
		t.Error("fewer retries should not improve EX")
	}
	if byName["w/o Planning"].EX("") > base {
		t.Error("removing planning should not improve EX")
	}
}

func TestGenEditSystemUnknownDatabase(t *testing.T) {
	suite := workload.NewSuite(1)
	sys, err := NewGenEditSystem("g", suite, Table2Ablations()[0].Cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Generate(&task.Case{ID: "x", DB: "nope", Question: "q"}); err == nil {
		t.Error("unknown database should error")
	}
}
