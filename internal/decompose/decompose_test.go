package decompose

import (
	"strings"
	"testing"

	"genedit/internal/sqlparse"
)

const complexQuery = `
WITH
FIN AS (
  SELECT ORG, SUM(CASE WHEN Q = '1' THEN REV ELSE 0 END) AS R1
  FROM FINANCIALS
  WHERE COUNTRY = 'Canada'
  GROUP BY ORG
),
RANKED AS (
  SELECT ORG, R1, ROW_NUMBER() OVER (ORDER BY R1 DESC) AS RNK
  FROM FIN
)
SELECT ORG, RNK FROM RANKED WHERE RNK <= 5 ORDER BY RNK LIMIT 5`

func TestDecomposeUnitsAndClauses(t *testing.T) {
	frags, err := DecomposeSQL(complexQuery)
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]Fragment)
	for _, f := range frags {
		byKey[f.Key()] = f
	}
	wantKeys := []string{
		"FIN/projection", "FIN/from", "FIN/where", "FIN/group_by",
		"RANKED/projection", "RANKED/from",
		"/projection", "/from", "/where", "/order_by", "/limit",
	}
	for _, k := range wantKeys {
		if _, ok := byKey[k]; !ok {
			t.Errorf("missing fragment %s; have %v", k, keysOf(frags))
		}
	}
	if got := byKey["FIN/where"].SQL; !strings.Contains(got, "'Canada'") {
		t.Errorf("FIN/where SQL = %q, want the Canada filter", got)
	}
}

func keysOf(frags []Fragment) []string {
	out := make([]string, len(frags))
	for i, f := range frags {
		out[i] = f.Key()
	}
	return out
}

func TestPseudoForm(t *testing.T) {
	frags, err := DecomposeSQL("SELECT A FROM SPORTS_FINANCIALS WHERE B = 1")
	if err != nil {
		t.Fatal(err)
	}
	var fromPseudo string
	for _, f := range frags {
		if f.Clause == ClauseFrom {
			fromPseudo = f.Pseudo()
		}
	}
	if fromPseudo != "... FROM SPORTS_FINANCIALS ..." {
		t.Errorf("pseudo = %q, want the paper's dotted form", fromPseudo)
	}
}

func TestComposeDecomposeRoundTrip(t *testing.T) {
	sources := []string{
		"SELECT 1",
		"SELECT A, B FROM T WHERE A > 1 GROUP BY A, B HAVING COUNT(*) > 1 ORDER BY A DESC LIMIT 3 OFFSET 1",
		"SELECT DISTINCT A FROM T",
		complexQuery,
		"WITH X AS (SELECT 1 AS V) SELECT V FROM X",
	}
	for _, src := range sources {
		frags, err := DecomposeSQL(src)
		if err != nil {
			t.Errorf("decompose %q: %v", src, err)
			continue
		}
		stmt, err := Compose(frags)
		if err != nil {
			t.Errorf("compose %q: %v", src, err)
			continue
		}
		orig, err := sqlparse.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if sqlparse.Print(stmt) != sqlparse.Print(orig) {
			t.Errorf("round trip changed query:\n in: %s\nout: %s",
				sqlparse.Print(orig), sqlparse.Print(stmt))
		}
	}
}

func TestDecomposeCompoundFallsBackToWhole(t *testing.T) {
	frags, err := DecomposeSQL("SELECT A FROM T UNION SELECT A FROM U")
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0].Clause != ClauseWhole {
		t.Fatalf("compound select should decompose to one whole fragment, got %v", keysOf(frags))
	}
	stmt, err := Compose(frags)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Compound) != 1 {
		t.Error("whole fragment lost the compound arm")
	}
}

func TestRewriteToCTE(t *testing.T) {
	stmt, err := sqlparse.Parse(
		"SELECT s.D, s.N FROM (SELECT DEPT AS D, COUNT(*) AS N FROM EMP GROUP BY DEPT) AS s WHERE s.N > 1")
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := RewriteToCTE(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rewritten.With) != 1 {
		t.Fatalf("rewrite produced %d CTEs, want 1", len(rewritten.With))
	}
	if rewritten.With[0].Name != "s" {
		t.Errorf("CTE name = %q, want subquery alias s", rewritten.With[0].Name)
	}
	if _, ok := rewritten.Core.From.(*sqlparse.TableName); !ok {
		t.Errorf("FROM should be a table reference after rewrite, got %T", rewritten.Core.From)
	}
}

func TestRewriteToCTEInsideJoin(t *testing.T) {
	stmt, err := sqlparse.Parse(
		"SELECT * FROM A JOIN (SELECT X FROM B) sub ON A.X = sub.X")
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := RewriteToCTE(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rewritten.With) != 1 {
		t.Fatalf("rewrite produced %d CTEs, want 1", len(rewritten.With))
	}
	printed := sqlparse.Print(rewritten)
	if strings.Contains(printed, "JOIN (SELECT") {
		t.Errorf("join subquery not hoisted: %s", printed)
	}
}

func TestRewriteToCTEAvoidsNameCollisions(t *testing.T) {
	stmt, err := sqlparse.Parse(
		"WITH sub AS (SELECT 1 AS X) SELECT * FROM (SELECT X FROM sub) sub2, (SELECT 2 AS Y) " +
			"WHERE 1 = 1")
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := RewriteToCTE(stmt)
	if err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, cte := range rewritten.With {
		upper := strings.ToUpper(cte.Name)
		if names[upper] {
			t.Fatalf("duplicate CTE name %q after rewrite", cte.Name)
		}
		names[upper] = true
	}
	if len(rewritten.With) != 3 {
		t.Errorf("want 3 CTEs after hoisting, got %d", len(rewritten.With))
	}
}

func TestComposeErrors(t *testing.T) {
	tests := []struct {
		name  string
		frags []Fragment
		want  string
	}{
		{
			name:  "empty",
			frags: nil,
			want:  "no final select",
		},
		{
			name: "missing projection",
			frags: []Fragment{
				{Unit: "", Clause: ClauseWhere, SQL: "A = 1"},
			},
			want: "no projection",
		},
		{
			name: "duplicate clause",
			frags: []Fragment{
				{Unit: "", Clause: ClauseProjection, SQL: "A"},
				{Unit: "", Clause: ClauseProjection, SQL: "B"},
			},
			want: "duplicate",
		},
		{
			name: "whole mixed with clause",
			frags: []Fragment{
				{Unit: "X", Clause: ClauseWhole, SQL: "SELECT 1"},
				{Unit: "X", Clause: ClauseWhere, SQL: "A = 1"},
				{Unit: "", Clause: ClauseProjection, SQL: "A"},
			},
			want: "mixes whole and clause",
		},
	}
	for _, tt := range tests {
		_, err := ComposeSQL(tt.frags)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: error = %v, want containing %q", tt.name, err, tt.want)
		}
	}
}

func TestFragmentNLIsDescriptive(t *testing.T) {
	frags, err := DecomposeSQL(complexQuery)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		if f.NL == "" {
			t.Errorf("fragment %s has no natural-language description", f.Key())
		}
	}
	for _, f := range frags {
		if f.Unit == "FIN" && f.Clause == ClauseFrom {
			if !strings.Contains(f.NL, "FINANCIALS") {
				t.Errorf("FROM description %q should mention the table", f.NL)
			}
		}
	}
}
