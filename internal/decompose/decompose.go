// Package decompose implements §3.2 of the paper: SQL queries are rewritten
// into CTE form, decomposed into sub-statements (one fragment per clause of
// each CTE and of the final select), and re-composed from fragments. The
// fragments carry pseudo-SQL ("… FROM SPORTS_FINANCIALS …") and generated
// natural-language descriptions; they are the representation stored in the
// knowledge set and referenced by CoT plan steps.
package decompose

import (
	"fmt"
	"strings"

	"genedit/internal/sqlparse"
)

// Clause identifies which part of a select unit a fragment captures.
type Clause string

// Clause kinds.
const (
	ClauseProjection Clause = "projection"
	ClauseFrom       Clause = "from"
	ClauseWhere      Clause = "where"
	ClauseGroupBy    Clause = "group_by"
	ClauseHaving     Clause = "having"
	ClauseOrderBy    Clause = "order_by"
	ClauseLimit      Clause = "limit"
	ClauseOffset     Clause = "offset"
	// ClauseWhole captures a unit too complex for clause-level decomposition
	// (compound selects or nested WITH); its SQL is the unit's full text.
	ClauseWhole Clause = "whole"
)

// Fragment is one decomposed sub-statement.
type Fragment struct {
	// Unit is the CTE name this fragment belongs to; empty for the final
	// SELECT.
	Unit string
	// Clause identifies the clause captured.
	Clause Clause
	// SQL is the canonical clause content without its introducing keyword
	// (or the full unit SQL for ClauseWhole).
	SQL string
	// Distinct records SELECT DISTINCT on projection fragments.
	Distinct bool
	// NL is a generated natural-language description of the fragment.
	NL string
}

// Pseudo renders the paper's pseudo-SQL display form: the sub-statement with
// its keyword, wrapped in "…" affixes marking it as part of a larger query.
func (f Fragment) Pseudo() string {
	body := f.SQL
	switch f.Clause {
	case ClauseProjection:
		if f.Distinct {
			body = "SELECT DISTINCT " + body
		} else {
			body = "SELECT " + body
		}
	case ClauseFrom:
		body = "FROM " + body
	case ClauseWhere:
		body = "WHERE " + body
	case ClauseGroupBy:
		body = "GROUP BY " + body
	case ClauseHaving:
		body = "HAVING " + body
	case ClauseOrderBy:
		body = "ORDER BY " + body
	case ClauseLimit:
		body = "LIMIT " + body
	case ClauseOffset:
		body = "OFFSET " + body
	}
	return "... " + body + " ..."
}

// Key returns a stable identity for the fragment within a query.
func (f Fragment) Key() string {
	return f.Unit + "/" + string(f.Clause)
}

// RewriteToCTE hoists FROM-clause subqueries into named CTEs, producing the
// "rewrite the queries to use CTEs" normalization of §3.2.1. The statement
// is deep-copied; the input is never mutated.
func RewriteToCTE(stmt *sqlparse.SelectStmt) (*sqlparse.SelectStmt, error) {
	copied, err := sqlparse.Parse(sqlparse.Print(stmt))
	if err != nil {
		return nil, fmt.Errorf("rewrite: re-parse failed: %w", err)
	}
	used := make(map[string]bool)
	for _, cte := range copied.With {
		used[strings.ToUpper(cte.Name)] = true
	}
	counter := 0
	var hoist func(t sqlparse.TableExpr) sqlparse.TableExpr
	hoist = func(t sqlparse.TableExpr) sqlparse.TableExpr {
		switch x := t.(type) {
		case *sqlparse.SubqueryTable:
			name := x.Alias
			if name == "" || used[strings.ToUpper(name)] {
				for {
					counter++
					name = fmt.Sprintf("SUBQ_%d", counter)
					if !used[strings.ToUpper(name)] {
						break
					}
				}
			}
			used[strings.ToUpper(name)] = true
			copied.With = append(copied.With, sqlparse.CTE{Name: name, Select: x.Select})
			alias := x.Alias
			if alias == "" {
				alias = name
			}
			return &sqlparse.TableName{Name: name, Alias: alias}
		case *sqlparse.JoinExpr:
			x.Left = hoist(x.Left)
			x.Right = hoist(x.Right)
			return x
		default:
			return t
		}
	}
	if copied.Core.From != nil {
		copied.Core.From = hoist(copied.Core.From)
	}
	return copied, nil
}

// Decompose splits a statement into fragments: per-clause sub-statements for
// every CTE and for the final select. The input is deep-copied first.
func Decompose(stmt *sqlparse.SelectStmt) ([]Fragment, error) {
	copied, err := sqlparse.Parse(sqlparse.Print(stmt))
	if err != nil {
		return nil, fmt.Errorf("decompose: re-parse failed: %w", err)
	}
	var frags []Fragment
	for _, cte := range copied.With {
		frags = append(frags, decomposeUnit(cte.Name, cte.Select)...)
	}
	final := &sqlparse.SelectStmt{
		Core:     copied.Core,
		Compound: copied.Compound,
		OrderBy:  copied.OrderBy,
		Limit:    copied.Limit,
		Offset:   copied.Offset,
	}
	frags = append(frags, decomposeUnit("", final)...)
	return frags, nil
}

// DecomposeSQL parses and decomposes SQL text.
func DecomposeSQL(sql string) ([]Fragment, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return Decompose(stmt)
}

func decomposeUnit(unit string, sel *sqlparse.SelectStmt) []Fragment {
	if len(sel.With) > 0 || len(sel.Compound) > 0 {
		return []Fragment{{
			Unit:   unit,
			Clause: ClauseWhole,
			SQL:    sqlparse.Print(sel),
			NL:     wholeNL(unit),
		}}
	}
	core := sel.Core
	var frags []Fragment
	frags = append(frags, Fragment{
		Unit:     unit,
		Clause:   ClauseProjection,
		SQL:      sqlparse.PrintSelectItems(core.Items),
		Distinct: core.Distinct,
		NL:       projectionNL(unit, core.Items),
	})
	if core.From != nil {
		frags = append(frags, Fragment{
			Unit:   unit,
			Clause: ClauseFrom,
			SQL:    sqlparse.PrintTableExpr(core.From),
			NL:     fromNL(core.From),
		})
	}
	if core.Where != nil {
		frags = append(frags, Fragment{
			Unit:   unit,
			Clause: ClauseWhere,
			SQL:    sqlparse.PrintExpr(core.Where),
			NL:     "Keep only the rows where " + shortText(sqlparse.PrintExpr(core.Where)) + ".",
		})
	}
	if len(core.GroupBy) > 0 {
		frags = append(frags, Fragment{
			Unit:   unit,
			Clause: ClauseGroupBy,
			SQL:    sqlparse.PrintExprList(core.GroupBy),
			NL:     "Group the rows by " + shortText(sqlparse.PrintExprList(core.GroupBy)) + ".",
		})
	}
	if core.Having != nil {
		frags = append(frags, Fragment{
			Unit:   unit,
			Clause: ClauseHaving,
			SQL:    sqlparse.PrintExpr(core.Having),
			NL:     "Keep only the groups having " + shortText(sqlparse.PrintExpr(core.Having)) + ".",
		})
	}
	if len(sel.OrderBy) > 0 {
		frags = append(frags, Fragment{
			Unit:   unit,
			Clause: ClauseOrderBy,
			SQL:    sqlparse.PrintOrderItems(sel.OrderBy),
			NL:     "Order the results by " + shortText(sqlparse.PrintOrderItems(sel.OrderBy)) + ".",
		})
	}
	if sel.Limit != nil {
		frags = append(frags, Fragment{
			Unit:   unit,
			Clause: ClauseLimit,
			SQL:    sqlparse.PrintExpr(sel.Limit),
			NL:     "Return only the first " + sqlparse.PrintExpr(sel.Limit) + " rows.",
		})
	}
	if sel.Offset != nil {
		frags = append(frags, Fragment{
			Unit:   unit,
			Clause: ClauseOffset,
			SQL:    sqlparse.PrintExpr(sel.Offset),
			NL:     "Skip the first " + sqlparse.PrintExpr(sel.Offset) + " rows.",
		})
	}
	return frags
}

// Compose reassembles fragments into a runnable statement. Units appear in
// first-occurrence order; the final (unnamed) unit becomes the outer select.
// Compose is the inverse of Decompose up to canonical formatting.
func Compose(frags []Fragment) (*sqlparse.SelectStmt, error) {
	sql, err := ComposeSQL(frags)
	if err != nil {
		return nil, err
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("compose: assembled SQL does not parse: %w", err)
	}
	return stmt, nil
}

// ComposeSQL reassembles fragments into SQL text.
func ComposeSQL(frags []Fragment) (string, error) {
	type unitParts struct {
		name  string
		parts map[Clause]Fragment
	}
	var order []string
	units := make(map[string]*unitParts)
	sawFinal := false
	for _, f := range frags {
		key := strings.ToUpper(f.Unit)
		if f.Unit == "" {
			sawFinal = true
		}
		u, ok := units[key]
		if !ok {
			u = &unitParts{name: f.Unit, parts: make(map[Clause]Fragment)}
			units[key] = u
			order = append(order, key)
		}
		if _, dup := u.parts[f.Clause]; dup {
			return "", fmt.Errorf("compose: duplicate %s fragment for unit %q", f.Clause, f.Unit)
		}
		u.parts[f.Clause] = f
	}
	if !sawFinal {
		return "", fmt.Errorf("compose: no final select fragments")
	}

	assemble := func(u *unitParts) (string, error) {
		if whole, ok := u.parts[ClauseWhole]; ok {
			if len(u.parts) > 1 {
				return "", fmt.Errorf("compose: unit %q mixes whole and clause fragments", u.name)
			}
			return whole.SQL, nil
		}
		proj, ok := u.parts[ClauseProjection]
		if !ok {
			return "", fmt.Errorf("compose: unit %q has no projection fragment", u.name)
		}
		var sb strings.Builder
		sb.WriteString("SELECT ")
		if proj.Distinct {
			sb.WriteString("DISTINCT ")
		}
		sb.WriteString(proj.SQL)
		if f, ok := u.parts[ClauseFrom]; ok {
			sb.WriteString(" FROM ")
			sb.WriteString(f.SQL)
		}
		if f, ok := u.parts[ClauseWhere]; ok {
			sb.WriteString(" WHERE ")
			sb.WriteString(f.SQL)
		}
		if f, ok := u.parts[ClauseGroupBy]; ok {
			sb.WriteString(" GROUP BY ")
			sb.WriteString(f.SQL)
		}
		if f, ok := u.parts[ClauseHaving]; ok {
			sb.WriteString(" HAVING ")
			sb.WriteString(f.SQL)
		}
		if f, ok := u.parts[ClauseOrderBy]; ok {
			sb.WriteString(" ORDER BY ")
			sb.WriteString(f.SQL)
		}
		if f, ok := u.parts[ClauseLimit]; ok {
			sb.WriteString(" LIMIT ")
			sb.WriteString(f.SQL)
		}
		if f, ok := u.parts[ClauseOffset]; ok {
			sb.WriteString(" OFFSET ")
			sb.WriteString(f.SQL)
		}
		return sb.String(), nil
	}

	var sb strings.Builder
	var cteTexts []string
	for _, key := range order {
		u := units[key]
		if u.name == "" {
			continue
		}
		body, err := assemble(u)
		if err != nil {
			return "", err
		}
		cteTexts = append(cteTexts, fmt.Sprintf("%s AS (%s)", u.name, body))
	}
	if len(cteTexts) > 0 {
		sb.WriteString("WITH ")
		sb.WriteString(strings.Join(cteTexts, ", "))
		sb.WriteString(" ")
	}
	finalBody, err := assemble(units[""])
	if err != nil {
		return "", err
	}
	sb.WriteString(finalBody)
	return sb.String(), nil
}

// --- natural-language description helpers ---

func wholeNL(unit string) string {
	if unit == "" {
		return "Combine the intermediate results into the final answer."
	}
	return fmt.Sprintf("Build the %s intermediate result.", unit)
}

func projectionNL(unit string, items []sqlparse.SelectItem) string {
	names := outputNames(items, 4)
	if unit == "" {
		return "Produce the final output columns: " + names + "."
	}
	return fmt.Sprintf("Begin by building %s, computing %s.", unit, names)
}

func fromNL(from sqlparse.TableExpr) string {
	tables := tableNames(from)
	switch len(tables) {
	case 0:
		return "Compute values without reading a table."
	case 1:
		return "Look at the data from the " + tables[0] + " table."
	default:
		return "Combine data from " + strings.Join(tables, ", ") + "."
	}
}

// tableNames lists base table / CTE names referenced in a FROM clause.
func tableNames(t sqlparse.TableExpr) []string {
	switch x := t.(type) {
	case *sqlparse.TableName:
		return []string{x.Name}
	case *sqlparse.SubqueryTable:
		return []string{"(subquery)"}
	case *sqlparse.JoinExpr:
		return append(tableNames(x.Left), tableNames(x.Right)...)
	}
	return nil
}

func outputNames(items []sqlparse.SelectItem, max int) string {
	var names []string
	for _, item := range items {
		switch {
		case item.Star:
			names = append(names, "*")
		case item.Alias != "":
			names = append(names, item.Alias)
		default:
			if cr, ok := item.Expr.(*sqlparse.ColumnRef); ok {
				names = append(names, cr.Name)
			} else {
				names = append(names, shortText(sqlparse.PrintExpr(item.Expr)))
			}
		}
		if len(names) == max && len(items) > max {
			names = append(names, fmt.Sprintf("and %d more", len(items)-max))
			break
		}
	}
	return strings.Join(names, ", ")
}

func shortText(s string) string {
	const max = 60
	if len(s) <= max {
		return s
	}
	return s[:max-1] + "…"
}
