package metrics

import (
	"flag"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// populated builds a registry exercising every exposition feature: labeled
// and unlabeled counters, gauges, a histogram with sub-bucket/overflow
// observations, label-value escaping, and names registered out of sort
// order (to prove the writer sorts them).
func populated() *Registry {
	r := NewRegistry()
	reqs := r.Counter("test_requests_total", "Requests by db and outcome.", "db", "outcome")
	reqs.With("sports_holdings", "ok").Add(41)
	reqs.With("sports_holdings", "ok").Inc()
	reqs.With("retail_chain", "failed_sql").Add(3)
	reqs.With("retail_chain", "ok").Add(7)

	r.Counter("test_builds_total", "Unlabeled counter, registered after a later name.").With().Add(5)

	g := r.Gauge("test_queue_depth", "Gauge with adds and a set.", "db")
	g.With("sports_holdings").Set(4)
	g.With("sports_holdings").Add(2.5)
	g.With("retail_chain").Set(-1)

	h := r.Histogram("test_latency_seconds", "Latency with escaping: back\\slash \"quote\"\nnewline.", []float64{0.001, 0.01, 0.1}, "db")
	h.With("weird\\db\"name\nx").Observe(0.0005)
	h.With("weird\\db\"name\nx").Observe(0.05)
	h.With("weird\\db\"name\nx").Observe(7) // +Inf overflow bucket
	h.With("plain").Observe(0.002)
	return r
}

func TestWriteTextGolden(t *testing.T) {
	var buf strings.Builder
	if err := populated().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	const golden = "testdata/golden.prom"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("exposition mismatch with %s (run with -update to rewrite)\n--- got ---\n%s", golden, got)
	}
}

// TestWriteTextDeterministic asserts byte-identical output across repeated
// renders and across construction orders.
func TestWriteTextDeterministic(t *testing.T) {
	var a, b strings.Builder
	populated().WriteText(&a)
	populated().WriteText(&b)
	if a.String() != b.String() {
		t.Error("two identically-populated registries rendered differently")
	}
	var c strings.Builder
	populated().WriteText(&c)
	if a.String() != c.String() {
		t.Error("repeated render differs")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4}, "k").With("v")
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	if got := h.Sum(); got != 112 {
		t.Errorf("Sum = %g, want 112", got)
	}
	snap := r.Gather()
	s := snap.Sample("h", "v")
	if s == nil || s.Hist == nil {
		t.Fatal("histogram sample missing from snapshot")
	}
	// le=1 admits {0.5, 1}; le=2 admits {1.5, 2}; le=4 admits {3, 4}; +Inf {100}.
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Hist.BucketCounts[i] != w {
			t.Errorf("bucket[%d] = %d, want %d", i, s.Hist.BucketCounts[i], w)
		}
	}
	f := snap.Family("h")
	if q := f.Quantile(s, 0.5); q != 2 {
		t.Errorf("p50 = %g, want 2", q)
	}
	if q := f.Quantile(s, 0.99); !math.IsInf(q, 1) {
		t.Errorf("p99 = %g, want +Inf", q)
	}

	// The rendered +Inf bucket must be cumulative and equal _count.
	var buf strings.Builder
	r.WriteText(&buf)
	out := buf.String()
	if !strings.Contains(out, `h_bucket{k="v",le="+Inf"} 7`) {
		t.Errorf("missing cumulative +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `h_count{k="v"} 7`) {
		t.Errorf("missing _count:\n%s", out)
	}
	if !strings.Contains(out, `h_sum{k="v"} 112`) {
		t.Errorf("missing _sum:\n%s", out)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "help", "db")
	b := r.Counter("c", "different help is fine", "db")
	a.With("x").Inc()
	b.With("x").Inc()
	if got := a.With("x").Value(); got != 2 {
		t.Errorf("re-registered family did not share state: %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind mismatch did not panic")
			}
		}()
		r.Gauge("c", "", "db")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label mismatch did not panic")
			}
		}()
		r.Counter("c", "", "tenant")
	}()
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	c.Set(9)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported nonzero values")
	}
}

func TestOnScrapeBridge(t *testing.T) {
	r := NewRegistry()
	var source uint64 = 10
	bridged := r.Counter("bridged_total", "").With()
	r.OnScrape(func() { bridged.Set(source) })
	if got := r.Gather().CounterValue("bridged_total"); got != 10 {
		t.Errorf("first gather = %d, want 10", got)
	}
	source = 25
	if got := r.Gather().CounterValue("bridged_total"); got != 25 {
		t.Errorf("second gather = %d, want 25", got)
	}
}

func TestSnapshotHelpers(t *testing.T) {
	r := populated()
	snap := r.Gather()
	if got := snap.CounterValue("test_requests_total", "sports_holdings", "ok"); got != 42 {
		t.Errorf("CounterValue = %d, want 42", got)
	}
	if got := snap.SumCounter("test_requests_total"); got != 52 {
		t.Errorf("SumCounter(all) = %d, want 52", got)
	}
	if got := snap.SumCounter("test_requests_total", "retail_chain", ""); got != 10 {
		t.Errorf("SumCounter(retail_chain,*) = %d, want 10", got)
	}
	if got := snap.SumCounter("test_requests_total", "", "ok"); got != 49 {
		t.Errorf("SumCounter(*,ok) = %d, want 49", got)
	}
	if got := snap.GaugeValue("test_queue_depth", "sports_holdings"); got != 6.5 {
		t.Errorf("GaugeValue = %g, want 6.5", got)
	}
	if snap.Family("nope") != nil || snap.Sample("nope") != nil {
		t.Error("missing family lookups must return nil")
	}
	// A snapshot is detached: mutating after Gather must not change it.
	r.Counter("test_requests_total", "", "db", "outcome").With("sports_holdings", "ok").Add(100)
	if got := snap.CounterValue("test_requests_total", "sports_holdings", "ok"); got != 42 {
		t.Errorf("snapshot mutated after Gather: %d", got)
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(populated().Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want 0.0.4 exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "test_requests_total") {
		t.Errorf("body missing families:\n%s", body)
	}
	post, err := srv.Client().Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST = %d, want 405", post.StatusCode)
	}
}

// TestConcurrentUse hammers registration, increments and scrapes from many
// goroutines; run under -race via ci.sh.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := r.Counter("conc_total", "", "db").With(fmt.Sprintf("db%d", n%4))
			h := r.Histogram("conc_seconds", "", nil, "db").With(fmt.Sprintf("db%d", n%4))
			g := r.Gauge("conc_gauge", "").With()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
				g.Add(1)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				r.Gather()
				r.WriteText(io.Discard)
			}
		}()
	}
	wg.Wait()
	snap := r.Gather()
	if got := snap.SumCounter("conc_total"); got != 8000 {
		t.Errorf("counter total = %d, want 8000", got)
	}
	var histTotal uint64
	f := snap.Family("conc_seconds")
	for i := range f.Series {
		histTotal += f.Series[i].Hist.Count()
	}
	if histTotal != 8000 {
		t.Errorf("histogram total = %d, want 8000", histTotal)
	}
	if got := snap.GaugeValue("conc_gauge"); got != 8000 {
		t.Errorf("gauge = %g, want 8000", got)
	}
}

func TestLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("c", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

// BenchmarkCounterInc proves the tentpole's hot-path budget: a resolved
// counter increment must cost no more than a few ns/op.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "", "db").With("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "", "db").With("x")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil, "db").With("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}

// BenchmarkVecWith measures the labeled lookup path (read lock + map hit) —
// the cost paid by call sites that do not cache their child.
func BenchmarkVecWith(b *testing.B) {
	v := NewRegistry().Counter("bench_total", "", "db", "outcome")
	v.With("sports_holdings", "ok")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("sports_holdings", "ok").Inc()
	}
}
