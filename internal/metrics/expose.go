package metrics

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of every family in a registry, taken
// after the OnScrape bridges have run. It is the single source of truth for
// every read surface: WriteText renders it as Prometheus text exposition,
// and JSON stats endpoints (geneditd's /v1/stats) derive their numbers from
// the same snapshot so the two can never disagree.
type Snapshot struct {
	Families []FamilySnapshot
}

// FamilySnapshot is one metric family with all its series, series sorted by
// label-value tuple.
type FamilySnapshot struct {
	Name    string
	Help    string
	Kind    Kind
	Labels  []string
	Buckets []float64 // histogram families only
	Series  []Sample
}

// Sample is one labeled series' current value. Counters populate Count,
// gauges populate Value, histograms populate Hist.
type Sample struct {
	LabelValues []string
	Count       uint64
	Value       float64
	Hist        *HistSample
}

// HistSample is a histogram series' state: per-bucket (non-cumulative)
// counts aligned with the family's Buckets plus a final +Inf slot, and the
// running sum of observations.
type HistSample struct {
	BucketCounts []uint64
	Sum          float64
}

// Count returns the histogram's total observation count.
func (h *HistSample) Count() uint64 {
	var n uint64
	for _, c := range h.BucketCounts {
		n += c
	}
	return n
}

// Quantile returns an estimate of quantile q (0 < q ≤ 1) from the bucket
// counts: the upper bound of the bucket containing the q-th observation.
// Returns 0 for an empty histogram and +Inf when the quantile lands in the
// overflow bucket.
func (f *FamilySnapshot) Quantile(s *Sample, q float64) float64 {
	if s.Hist == nil {
		return 0
	}
	total := s.Hist.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Hist.BucketCounts {
		cum += c
		if cum >= rank {
			if i < len(f.Buckets) {
				return f.Buckets[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Family returns the named family snapshot, or nil.
func (s *Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Sample returns the series with the given label values from the named
// family, or nil.
func (s *Snapshot) Sample(name string, labelValues ...string) *Sample {
	f := s.Family(name)
	if f == nil {
		return nil
	}
	for i := range f.Series {
		if equalValues(f.Series[i].LabelValues, labelValues) {
			return &f.Series[i]
		}
	}
	return nil
}

// CounterValue returns the named counter series' value (0 if absent).
func (s *Snapshot) CounterValue(name string, labelValues ...string) uint64 {
	if smp := s.Sample(name, labelValues...); smp != nil {
		return smp.Count
	}
	return 0
}

// GaugeValue returns the named gauge series' value (0 if absent).
func (s *Snapshot) GaugeValue(name string, labelValues ...string) float64 {
	if smp := s.Sample(name, labelValues...); smp != nil {
		return smp.Value
	}
	return 0
}

// SumCounter sums a counter family across all series whose label values
// match the given selector: a selector entry of "" matches any value at
// that position.
func (s *Snapshot) SumCounter(name string, selector ...string) uint64 {
	f := s.Family(name)
	if f == nil {
		return 0
	}
	var total uint64
	for i := range f.Series {
		if matchesSelector(f.Series[i].LabelValues, selector) {
			total += f.Series[i].Count
		}
	}
	return total
}

func equalValues(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func matchesSelector(values, selector []string) bool {
	if len(selector) == 0 {
		return true
	}
	if len(values) != len(selector) {
		return false
	}
	for i := range selector {
		if selector[i] != "" && selector[i] != values[i] {
			return false
		}
	}
	return true
}

// Gather runs the OnScrape bridges, then snapshots every family. The
// returned snapshot is detached: later metric activity does not mutate it.
func (r *Registry) Gather() *Snapshot {
	r.runHooks()
	fams := r.sortedFamilies()
	snap := &Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:    f.name,
			Help:    f.help,
			Kind:    f.kind,
			Labels:  f.labels,
			Buckets: f.buckets,
		}
		for _, c := range f.sortedChildren() {
			smp := Sample{LabelValues: c.labelValues}
			switch f.kind {
			case KindCounter:
				smp.Count = c.n.Load()
			case KindGauge:
				smp.Value = math.Float64frombits(c.bits.Load())
			case KindHistogram:
				h := &HistSample{
					BucketCounts: make([]uint64, len(c.bucketN)),
					Sum:          math.Float64frombits(c.bits.Load()),
				}
				for i := range c.bucketN {
					h.BucketCounts[i] = c.bucketN[i].Load()
				}
				smp.Hist = h
			}
			fs.Series = append(fs.Series, smp)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// WriteText renders the registry in Prometheus text exposition format
// version 0.0.4. Families appear in name order, series in label-value
// order; histograms emit cumulative le buckets ending in +Inf, then _sum
// and _count. Output is byte-for-byte deterministic for a given state.
func (r *Registry) WriteText(w io.Writer) error {
	return r.Gather().WriteText(w)
}

// WriteText renders an already-gathered snapshot (see Registry.WriteText).
func (s *Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for fi := range s.Families {
		f := &s.Families[fi]
		bw.WriteString("# HELP ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.Help))
		bw.WriteByte('\n')
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.String())
		bw.WriteByte('\n')
		for si := range f.Series {
			smp := &f.Series[si]
			switch f.Kind {
			case KindCounter:
				writeSeries(bw, f.Name, f.Labels, smp.LabelValues, "", "", formatUint(smp.Count))
			case KindGauge:
				writeSeries(bw, f.Name, f.Labels, smp.LabelValues, "", "", formatFloat(smp.Value))
			case KindHistogram:
				var cum uint64
				for bi, c := range smp.Hist.BucketCounts {
					cum += c
					le := "+Inf"
					if bi < len(f.Buckets) {
						le = formatFloat(f.Buckets[bi])
					}
					writeSeries(bw, f.Name+"_bucket", f.Labels, smp.LabelValues, "le", le, formatUint(cum))
				}
				writeSeries(bw, f.Name+"_sum", f.Labels, smp.LabelValues, "", "", formatFloat(smp.Hist.Sum))
				writeSeries(bw, f.Name+"_count", f.Labels, smp.LabelValues, "", "", formatUint(cum))
			}
		}
	}
	return bw.Flush()
}

// writeSeries emits one sample line: name{labels} value. extraName/extraVal
// append a trailing label (the histogram le) after the family labels.
func writeSeries(bw *bufio.Writer, name string, labels, values []string, extraName, extraVal, value string) {
	bw.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabelValue(values[i]))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(extraVal)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// escapeLabelValue escapes backslash, double-quote and newline per the
// text-format spec.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text (quotes are legal
// there).
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

// formatFloat renders floats the way Prometheus clients do: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the text exposition — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WriteText(w)
	})
}
