// Package metrics is the serving layer's central, dependency-free metrics
// registry: named families of counters, gauges and fixed-bucket histograms
// with Prometheus text-format (version 0.0.4) exposition. The paper's
// continuous-improvement loop is only operable in an enterprise deployment
// if the loop is visible — which questions fail, how often the miner merges,
// how hot the caches are, where request latency goes — and this package is
// the measurement substrate every other layer reports into.
//
// Design rules:
//
//   - Hot paths are lock-free. A resolved *Counter is one atomic add
//     (single-digit ns, see BenchmarkCounterInc); a *Histogram observation
//     is a short linear bucket scan plus two atomic updates. Label
//     resolution (Vec.With) takes a read lock and a map lookup, so hot call
//     sites resolve their children once and keep them.
//   - Nil instruments are no-ops. A nil *Counter/*Gauge/*Histogram accepts
//     Inc/Set/Observe and does nothing, so conditionally instrumented code
//     (a store opened without metrics) needs no guards at call sites.
//   - Family registration is idempotent: asking for an existing name with
//     the same kind and label set returns the existing family, so multiple
//     subsystems (or multiple Service instances sharing the process-global
//     registry) can wire the same catalog without coordination. A name
//     re-registered with a different kind or label arity panics — that is a
//     programming error, not an operational condition.
//   - Subsystems that already maintain their own counters (the generation
//     cache, admission control, the miner) are bridged at scrape time: an
//     OnScrape hook reads their snapshot and Sets the registry's values, so
//     the hot path is never instrumented twice and /metrics plus any
//     JSON stats surface derived from Gather can never disagree.
//
// Exposition output is deterministic: families sort by name, series by
// label-value tuple, so golden-file tests and scrape diffs are stable.
package metrics

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets are the default latency buckets (seconds): 100µs to 10s in a
// roughly exponential ladder. They cover everything this system times — a
// cache hit (~µs), a pipeline generation (~100µs–10ms), a WAL fsync (~ms),
// an engine build (~100ms+).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// Registry is a set of metric families. All methods are safe for concurrent
// use. The zero value is not usable; use NewRegistry or Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	hooks    []func()
}

// family is one named metric: a kind, a label schema and its children.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]*child
}

// child is one labeled series of a family.
type child struct {
	labelValues []string

	// counter/gauge state: counters count in n, gauges carry float64 bits
	// in bits. Histograms use bucketN (one per upper bound of buckets,
	// +Inf last) and accumulate the sum of observations in bits via CAS.
	n       atomic.Uint64
	bits    atomic.Uint64
	buckets []float64
	bucketN []atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-global registry — the default sink for every
// Service and the registry geneditd exposes on /metrics. Long-lived
// processes (the daemon, benchrunner) hold one Service, so the global is
// unambiguous; tests that assert exact counter values should pass their own
// NewRegistry to stay isolated.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

// OnScrape registers fn to run at the start of every Gather (and therefore
// every WriteText / HTTP scrape). Bridges use it to copy counters a
// subsystem already maintains into the registry. Hooks run in registration
// order with no registry locks held, so they may freely call Set on vecs
// and children.
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// register resolves (or creates) a family, enforcing schema consistency.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic("metrics: family " + name + " re-registered with a different kind or label arity")
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic("metrics: family " + name + " re-registered with different label names")
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     kind,
		labels:   labels,
		buckets:  buckets,
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// with resolves (or creates) the child for one label-value tuple.
func (f *family) with(values []string) *child {
	if len(values) != len(f.labels) {
		panic("metrics: family " + f.name + ": " + strconv.Itoa(len(values)) +
			" label values for " + strconv.Itoa(len(f.labels)) + " labels")
	}
	key := childKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	if f.kind == KindHistogram {
		c.buckets = f.buckets
		c.bucketN = make([]atomic.Uint64, len(f.buckets)+1) // +Inf last
	}
	f.children[key] = c
	return c
}

// childKey length-prefix joins label values so no tuple can alias another.
func childKey(values []string) string {
	var b strings.Builder
	for _, v := range values {
		b.WriteString(strconv.Itoa(len(v)))
		b.WriteByte('|')
		b.WriteString(v)
	}
	return b.String()
}

// CounterVec is a counter family; resolve children with With.
type CounterVec struct{ f *family }

// GaugeVec is a gauge family; resolve children with With.
type GaugeVec struct{ f *family }

// HistogramVec is a histogram family; resolve children with With.
type HistogramVec struct{ f *family }

// Counter registers (idempotently) a counter family. labels name the label
// schema; a family with no labels has exactly one series, resolved with
// With() and no arguments.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, nil, labels)}
}

// Gauge registers (idempotently) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, nil, labels)}
}

// Histogram registers (idempotently) a histogram family with fixed bucket
// upper bounds (ascending; +Inf is implicit). nil buckets selects
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram " + name + ": buckets must be strictly ascending")
		}
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, buckets, labels)}
}

// With resolves the counter for one label-value tuple (cached; the returned
// pointer is stable and should be kept by hot call sites).
func (v *CounterVec) With(values ...string) *Counter { return (*Counter)(v.f.with(values)) }

// With resolves the gauge for one label-value tuple.
func (v *GaugeVec) With(values ...string) *Gauge { return (*Gauge)(v.f.with(values)) }

// With resolves the histogram for one label-value tuple.
func (v *HistogramVec) With(values ...string) *Histogram {
	return (*Histogram)(v.f.with(values))
}

// Counter is a monotonically increasing count. A nil Counter is a no-op.
type Counter child

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.n.Add(delta)
}

// Set overwrites the counter's value. It exists for scrape-time bridges
// from subsystems that keep their own monotonic counters (the generation
// cache, admission control); hot paths use Inc/Add.
func (c *Counter) Set(v uint64) {
	if c == nil {
		return
	}
	c.n.Store(v)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a value that can go up and down. A nil Gauge is a no-op.
type Gauge child

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; safe under concurrent Add/Set).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets. A nil Histogram is
// a no-op.
type Histogram child

// Observe records one observation: the first bucket whose upper bound
// admits v is incremented (the implicit +Inf bucket catches the overflow)
// and v is added to the running sum.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.bucketN[i].Add(1)
	for {
		old := h.bits.Load()
		if h.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.bucketN {
		n += h.bucketN[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.bits.Load())
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// runHooks runs the OnScrape bridges (no registry locks held).
func (r *Registry) runHooks() {
	r.mu.RLock()
	hooks := r.hooks
	r.mu.RUnlock()
	for _, fn := range hooks {
		fn()
	}
}

// sortedChildren snapshots a family's children ordered by label-value tuple.
func (f *family) sortedChildren() []*child {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelValues, out[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
