// Package knowledge implements GenEdit's company-specific knowledge set
// (§2.1, §3.2, §4): a materialized view of decomposed SQL examples, natural-
// language instructions and schema elements grouped by user intents, with
// provenance, versioning, checkpoints and an auditable edit history.
package knowledge

import (
	"fmt"
	"sort"
	"strings"

	"genedit/internal/schema"
)

// Provenance records where a knowledge item came from, supporting the
// library's audit and reversion views (§4.2.2).
type Provenance struct {
	// Source names the origin: a query-log ID, document title, or "feedback".
	Source string
	// Editor is who created or last changed the item (an SME name or
	// "preprocessing").
	Editor string
	// FeedbackID links items created through the feedback solver.
	FeedbackID string
	// Version is the knowledge-set version at which the item last changed.
	Version int
}

// Example is a decomposed SQL sub-statement with its natural-language
// description (§3.2.1). Unlike traditional full-query few-shot examples,
// these are clause-granular fragments referenced by CoT plan steps.
type Example struct {
	ID        string
	IntentIDs []string
	// NL describes the sub-statement ("Compute RPV as revenue over views").
	NL string
	// Pseudo is the pseudo-SQL display form ("... FROM SPORTS_FINANCIALS ...").
	Pseudo string
	// SQL is the raw sub-statement content used during composition.
	SQL string
	// Clause labels the fragment kind (projection, where, ...).
	Clause string
	// SourceSQL is the full query the fragment was decomposed from.
	SourceSQL string
	// SourceQuestion is the natural-language question of the source query.
	SourceQuestion string
	// Terms lists domain terms this example exercises (e.g. "QoQFP", "RPV").
	Terms      []string
	Provenance Provenance
}

// Text renders the example for embedding and ranking.
func (e *Example) Text() string { return e.NL + " " + e.Pseudo }

// Instruction is a natural-language generation guideline, optionally with an
// expected SQL sub-expression (§3.2.2).
type Instruction struct {
	ID        string
	IntentIDs []string
	Text      string
	// SQLHint is the expected SQL sub-expression, when relevant.
	SQLHint string
	// Terms lists domain terms this instruction defines.
	Terms      []string
	Provenance Provenance
}

// Text renders the instruction for embedding and ranking.
func (i *Instruction) Text2() string { return i.Text + " " + i.SQLHint }

// Intent is a mined user intent grouping examples, instructions and schema
// elements (§2.1).
type Intent struct {
	ID          string
	Name        string
	Description string
	// Elements are schema columns considered relevant to the intent.
	Elements []schema.Element
}

// ChangeOp enumerates audit-history operations.
type ChangeOp string

// Change operations.
const (
	OpInsert     ChangeOp = "insert"
	OpUpdate     ChangeOp = "update"
	OpDelete     ChangeOp = "delete"
	OpRevert     ChangeOp = "revert"
	OpCheckpoint ChangeOp = "checkpoint"
)

// EntityKind enumerates the knowledge entities edits can touch.
type EntityKind string

// Entity kinds.
const (
	ExampleEntity     EntityKind = "example"
	InstructionEntity EntityKind = "instruction"
	IntentEntity      EntityKind = "intent"
	DirectiveEntity   EntityKind = "retrieval_directive"
)

// ChangeEvent is one audit-history record.
type ChangeEvent struct {
	Seq        int
	Version    int
	Op         ChangeOp
	Kind       EntityKind
	EntityID   string
	Summary    string
	Editor     string
	FeedbackID string
}

// Checkpoint is a named, restorable snapshot of the set.
type Checkpoint struct {
	ID      int
	Name    string
	Version int
	snap    *snapshot
}

type snapshot struct {
	examples     []*Example
	instructions []*Instruction
	intents      []*Intent
	directives   []string
}

// Set is the knowledge set: the paper's materialized view.
type Set struct {
	examples     map[string]*Example
	instructions map[string]*Instruction
	intents      map[string]*Intent
	exampleIDs   []string
	instrIDs     []string
	intentIDs    []string
	// directives are extra natural-language instructions attached to the
	// retrieval and re-ranking operators (§1, "Recommending Edits").
	directives []string

	version     int
	history     []ChangeEvent
	checkpoints []Checkpoint
	nextSeq     int
}

// NewSet returns an empty knowledge set.
func NewSet() *Set {
	return &Set{
		examples:     make(map[string]*Example),
		instructions: make(map[string]*Instruction),
		intents:      make(map[string]*Intent),
	}
}

// Version reports the current version; every mutating operation bumps it.
func (s *Set) Version() int { return s.version }

// --- intents ---

// AddIntent inserts or replaces an intent definition.
func (s *Set) AddIntent(in *Intent) {
	if _, ok := s.intents[in.ID]; !ok {
		s.intentIDs = append(s.intentIDs, in.ID)
	}
	s.intents[in.ID] = in
	s.log(OpInsert, IntentEntity, in.ID, "intent "+in.Name, "preprocessing", "")
}

// Intent returns the intent by ID, or nil.
func (s *Set) Intent(id string) *Intent { return s.intents[id] }

// Intents returns all intents in insertion order.
func (s *Set) Intents() []*Intent {
	out := make([]*Intent, 0, len(s.intentIDs))
	for _, id := range s.intentIDs {
		out = append(out, s.intents[id])
	}
	return out
}

// --- examples ---

// InsertExample adds a new example.
func (s *Set) InsertExample(e *Example, editor, feedbackID string) error {
	if e.ID == "" {
		e.ID = fmt.Sprintf("ex-%03d", len(s.exampleIDs)+1)
	}
	if _, exists := s.examples[e.ID]; exists {
		return fmt.Errorf("example %s already exists", e.ID)
	}
	s.examples[e.ID] = e
	s.exampleIDs = append(s.exampleIDs, e.ID)
	e.Provenance.Editor = editor
	e.Provenance.FeedbackID = feedbackID
	e.Provenance.Version = s.version + 1
	s.log(OpInsert, ExampleEntity, e.ID, summarize(e.NL), editor, feedbackID)
	return nil
}

// UpdateExample replaces an existing example's content.
func (s *Set) UpdateExample(e *Example, editor, feedbackID string) error {
	if _, exists := s.examples[e.ID]; !exists {
		return fmt.Errorf("example %s does not exist", e.ID)
	}
	e.Provenance.Editor = editor
	e.Provenance.FeedbackID = feedbackID
	e.Provenance.Version = s.version + 1
	s.examples[e.ID] = e
	s.log(OpUpdate, ExampleEntity, e.ID, summarize(e.NL), editor, feedbackID)
	return nil
}

// DeleteExample removes an example.
func (s *Set) DeleteExample(id, editor, feedbackID string) error {
	if _, exists := s.examples[id]; !exists {
		return fmt.Errorf("example %s does not exist", id)
	}
	delete(s.examples, id)
	s.exampleIDs = removeID(s.exampleIDs, id)
	s.log(OpDelete, ExampleEntity, id, "", editor, feedbackID)
	return nil
}

// Example returns the example by ID, or nil.
func (s *Set) Example(id string) *Example { return s.examples[id] }

// Examples returns all examples in insertion order.
func (s *Set) Examples() []*Example {
	out := make([]*Example, 0, len(s.exampleIDs))
	for _, id := range s.exampleIDs {
		out = append(out, s.examples[id])
	}
	return out
}

// ExamplesByIntent returns examples associated with the intent.
func (s *Set) ExamplesByIntent(intentID string) []*Example {
	var out []*Example
	for _, id := range s.exampleIDs {
		e := s.examples[id]
		for _, iid := range e.IntentIDs {
			if iid == intentID {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// --- instructions ---

// InsertInstruction adds a new instruction.
func (s *Set) InsertInstruction(in *Instruction, editor, feedbackID string) error {
	if in.ID == "" {
		in.ID = fmt.Sprintf("ins-%03d", len(s.instrIDs)+1)
	}
	if _, exists := s.instructions[in.ID]; exists {
		return fmt.Errorf("instruction %s already exists", in.ID)
	}
	s.instructions[in.ID] = in
	s.instrIDs = append(s.instrIDs, in.ID)
	in.Provenance.Editor = editor
	in.Provenance.FeedbackID = feedbackID
	in.Provenance.Version = s.version + 1
	s.log(OpInsert, InstructionEntity, in.ID, summarize(in.Text), editor, feedbackID)
	return nil
}

// UpdateInstruction replaces an existing instruction's content.
func (s *Set) UpdateInstruction(in *Instruction, editor, feedbackID string) error {
	if _, exists := s.instructions[in.ID]; !exists {
		return fmt.Errorf("instruction %s does not exist", in.ID)
	}
	in.Provenance.Editor = editor
	in.Provenance.FeedbackID = feedbackID
	in.Provenance.Version = s.version + 1
	s.instructions[in.ID] = in
	s.log(OpUpdate, InstructionEntity, in.ID, summarize(in.Text), editor, feedbackID)
	return nil
}

// DeleteInstruction removes an instruction.
func (s *Set) DeleteInstruction(id, editor, feedbackID string) error {
	if _, exists := s.instructions[id]; !exists {
		return fmt.Errorf("instruction %s does not exist", id)
	}
	delete(s.instructions, id)
	s.instrIDs = removeID(s.instrIDs, id)
	s.log(OpDelete, InstructionEntity, id, "", editor, feedbackID)
	return nil
}

// Instruction returns the instruction by ID, or nil.
func (s *Set) Instruction(id string) *Instruction { return s.instructions[id] }

// Instructions returns all instructions in insertion order.
func (s *Set) Instructions() []*Instruction {
	out := make([]*Instruction, 0, len(s.instrIDs))
	for _, id := range s.instrIDs {
		out = append(out, s.instructions[id])
	}
	return out
}

// InstructionsByIntent returns instructions associated with the intent.
func (s *Set) InstructionsByIntent(intentID string) []*Instruction {
	var out []*Instruction
	for _, id := range s.instrIDs {
		in := s.instructions[id]
		for _, iid := range in.IntentIDs {
			if iid == intentID {
				out = append(out, in)
				break
			}
		}
	}
	return out
}

// DefinesTerm returns the instruction defining the given domain term
// (case-insensitive), or nil.
func (s *Set) DefinesTerm(term string) *Instruction {
	for _, id := range s.instrIDs {
		in := s.instructions[id]
		for _, t := range in.Terms {
			if strings.EqualFold(t, term) {
				return in
			}
		}
	}
	return nil
}

// --- retrieval directives ---

// AddDirective appends a retrieval/re-ranking directive.
func (s *Set) AddDirective(text, editor, feedbackID string) {
	s.directives = append(s.directives, text)
	s.log(OpInsert, DirectiveEntity, fmt.Sprintf("dir-%d", len(s.directives)), summarize(text), editor, feedbackID)
}

// Directives returns the retrieval directives in insertion order.
func (s *Set) Directives() []string {
	return append([]string(nil), s.directives...)
}

// --- history, checkpoints, clone ---

func (s *Set) log(op ChangeOp, kind EntityKind, id, summary, editor, feedbackID string) {
	s.version++
	s.nextSeq++
	s.history = append(s.history, ChangeEvent{
		Seq: s.nextSeq, Version: s.version, Op: op, Kind: kind,
		EntityID: id, Summary: summary, Editor: editor, FeedbackID: feedbackID,
	})
}

// History returns the audit log, oldest first.
func (s *Set) History() []ChangeEvent {
	return append([]ChangeEvent(nil), s.history...)
}

// Checkpoint records a named snapshot and returns its ID.
func (s *Set) Checkpoint(name string) int {
	cp := Checkpoint{
		ID:      len(s.checkpoints) + 1,
		Name:    name,
		Version: s.version,
		snap:    s.snapshot(),
	}
	s.checkpoints = append(s.checkpoints, cp)
	s.log(OpCheckpoint, DirectiveEntity, fmt.Sprintf("cp-%d", cp.ID), "checkpoint "+name, "system", "")
	return cp.ID
}

// Checkpoints lists recorded checkpoints, oldest first.
func (s *Set) Checkpoints() []Checkpoint {
	return append([]Checkpoint(nil), s.checkpoints...)
}

// Revert restores the set's contents to a checkpoint. History and
// checkpoints are preserved (the revert itself is logged), matching the
// paper's "revert back to any prior checkpoint" with full auditability.
func (s *Set) Revert(checkpointID int) error {
	var cp *Checkpoint
	for i := range s.checkpoints {
		if s.checkpoints[i].ID == checkpointID {
			cp = &s.checkpoints[i]
			break
		}
	}
	if cp == nil {
		return fmt.Errorf("checkpoint %d does not exist", checkpointID)
	}
	s.restore(cp.snap)
	s.log(OpRevert, DirectiveEntity, fmt.Sprintf("cp-%d", cp.ID), "revert to "+cp.Name, "system", "")
	return nil
}

func (s *Set) snapshot() *snapshot {
	sn := &snapshot{directives: append([]string(nil), s.directives...)}
	for _, id := range s.exampleIDs {
		c := *s.examples[id]
		sn.examples = append(sn.examples, &c)
	}
	for _, id := range s.instrIDs {
		c := *s.instructions[id]
		sn.instructions = append(sn.instructions, &c)
	}
	for _, id := range s.intentIDs {
		c := *s.intents[id]
		sn.intents = append(sn.intents, &c)
	}
	return sn
}

func (s *Set) restore(sn *snapshot) {
	s.examples = make(map[string]*Example, len(sn.examples))
	s.exampleIDs = s.exampleIDs[:0]
	for _, e := range sn.examples {
		c := *e
		s.examples[c.ID] = &c
		s.exampleIDs = append(s.exampleIDs, c.ID)
	}
	s.instructions = make(map[string]*Instruction, len(sn.instructions))
	s.instrIDs = s.instrIDs[:0]
	for _, in := range sn.instructions {
		c := *in
		s.instructions[c.ID] = &c
		s.instrIDs = append(s.instrIDs, c.ID)
	}
	s.intents = make(map[string]*Intent, len(sn.intents))
	s.intentIDs = s.intentIDs[:0]
	for _, in := range sn.intents {
		c := *in
		s.intents[c.ID] = &c
		s.intentIDs = append(s.intentIDs, c.ID)
	}
	s.directives = append([]string(nil), sn.directives...)
}

// Clone deep-copies the set's contents into a fresh set with empty history.
// Clones are the staging environments of §4.2.1: edits are applied to a
// clone, regenerated against, and only merged into the live set on approval.
func (s *Set) Clone() *Set {
	out := NewSet()
	out.restore(s.snapshot())
	out.version = s.version
	return out
}

// --- edits (shared with the feedback module) ---

// EditOp enumerates edit operations on the knowledge set.
type EditOp string

// Edit operations.
const (
	EditInsert    EditOp = "insert"
	EditUpdate    EditOp = "update"
	EditDelete    EditOp = "delete"
	EditDirective EditOp = "directive"
)

// Edit is one recommended (or manual) change to the knowledge set — the unit
// the feedback solver stages, regression-tests and merges.
type Edit struct {
	Op   EditOp
	Kind EntityKind
	// ID targets the existing entity for update/delete.
	ID string
	// Example/Instruction carry new content for insert/update.
	Example     *Example
	Instruction *Instruction
	// Directive carries retrieval-directive text.
	Directive string
	// Rationale explains why the edit is recommended, shown to reviewers.
	Rationale string
}

// Describe renders a one-line human summary of the edit.
func (e Edit) Describe() string {
	switch {
	case e.Op == EditDirective:
		return "add retrieval directive: " + summarize(e.Directive)
	case e.Kind == ExampleEntity && e.Example != nil:
		return fmt.Sprintf("%s example %s: %s", e.Op, e.Example.ID, summarize(e.Example.NL))
	case e.Kind == ExampleEntity:
		return fmt.Sprintf("%s example %s", e.Op, e.ID)
	case e.Kind == InstructionEntity && e.Instruction != nil:
		return fmt.Sprintf("%s instruction %s: %s", e.Op, e.Instruction.ID, summarize(e.Instruction.Text))
	default:
		return fmt.Sprintf("%s %s %s", e.Op, e.Kind, e.ID)
	}
}

// Apply executes an edit against the set.
func (s *Set) Apply(edit Edit, editor, feedbackID string) error {
	switch edit.Op {
	case EditDirective:
		s.AddDirective(edit.Directive, editor, feedbackID)
		return nil
	case EditInsert:
		switch edit.Kind {
		case ExampleEntity:
			if edit.Example == nil {
				return fmt.Errorf("insert example edit has no payload")
			}
			// Copy so staging never mutates the caller's edit (auto-ID
			// assignment and provenance are per-application).
			e := *edit.Example
			return s.InsertExample(&e, editor, feedbackID)
		case InstructionEntity:
			if edit.Instruction == nil {
				return fmt.Errorf("insert instruction edit has no payload")
			}
			in := *edit.Instruction
			return s.InsertInstruction(&in, editor, feedbackID)
		}
	case EditUpdate:
		switch edit.Kind {
		case ExampleEntity:
			if edit.Example == nil {
				return fmt.Errorf("update example edit has no payload")
			}
			e := *edit.Example
			if e.ID == "" {
				e.ID = edit.ID
			}
			return s.UpdateExample(&e, editor, feedbackID)
		case InstructionEntity:
			if edit.Instruction == nil {
				return fmt.Errorf("update instruction edit has no payload")
			}
			in := *edit.Instruction
			if in.ID == "" {
				in.ID = edit.ID
			}
			return s.UpdateInstruction(&in, editor, feedbackID)
		}
	case EditDelete:
		switch edit.Kind {
		case ExampleEntity:
			return s.DeleteExample(edit.ID, editor, feedbackID)
		case InstructionEntity:
			return s.DeleteInstruction(edit.ID, editor, feedbackID)
		}
	}
	return fmt.Errorf("unsupported edit %s %s", edit.Op, edit.Kind)
}

// Stage clones the set and applies the edits to the clone, returning the
// staging environment. The live set is untouched.
func (s *Set) Stage(edits []Edit, editor, feedbackID string) (*Set, error) {
	staged := s.Clone()
	for _, e := range edits {
		if err := staged.Apply(e, editor, feedbackID); err != nil {
			return nil, fmt.Errorf("staging %s: %w", e.Describe(), err)
		}
	}
	return staged, nil
}

// --- helpers ---

func removeID(ids []string, id string) []string {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

func summarize(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 72 {
		return s[:71] + "…"
	}
	return s
}

// Stats summarizes set contents for display.
type Stats struct {
	Examples     int
	Instructions int
	Intents      int
	Directives   int
	Version      int
}

// Stats returns current set statistics.
func (s *Set) Stats() Stats {
	return Stats{
		Examples:     len(s.exampleIDs),
		Instructions: len(s.instrIDs),
		Intents:      len(s.intentIDs),
		Directives:   len(s.directives),
		Version:      s.version,
	}
}

// TermsIndex returns all domain terms defined by instructions, sorted.
func (s *Set) TermsIndex() []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range s.instrIDs {
		for _, t := range s.instructions[id].Terms {
			key := strings.ToUpper(t)
			if !seen[key] {
				seen[key] = true
				out = append(out, t)
			}
		}
	}
	sort.Strings(out)
	return out
}
