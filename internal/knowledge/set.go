// Package knowledge implements GenEdit's company-specific knowledge set
// (§2.1, §3.2, §4): a materialized view of decomposed SQL examples, natural-
// language instructions and schema elements grouped by user intents, with
// provenance, versioning, checkpoints and an auditable edit history.
package knowledge

import (
	"fmt"
	"sort"
	"strings"

	"genedit/internal/schema"
)

// Provenance records where a knowledge item came from, supporting the
// library's audit and reversion views (§4.2.2).
type Provenance struct {
	// Source names the origin: a query-log ID, document title, or "feedback".
	Source string `json:"source,omitempty"`
	// Editor is who created or last changed the item (an SME name or
	// "preprocessing").
	Editor string `json:"editor,omitempty"`
	// FeedbackID links items created through the feedback solver.
	FeedbackID string `json:"feedback_id,omitempty"`
	// Version is the knowledge-set version at which the item last changed.
	Version int `json:"version,omitempty"`
}

// Example is a decomposed SQL sub-statement with its natural-language
// description (§3.2.1). Unlike traditional full-query few-shot examples,
// these are clause-granular fragments referenced by CoT plan steps.
type Example struct {
	ID        string   `json:"id"`
	IntentIDs []string `json:"intent_ids,omitempty"`
	// NL describes the sub-statement ("Compute RPV as revenue over views").
	NL string `json:"nl,omitempty"`
	// Pseudo is the pseudo-SQL display form ("... FROM SPORTS_FINANCIALS ...").
	Pseudo string `json:"pseudo,omitempty"`
	// SQL is the raw sub-statement content used during composition.
	SQL string `json:"sql,omitempty"`
	// Clause labels the fragment kind (projection, where, ...).
	Clause string `json:"clause,omitempty"`
	// SourceSQL is the full query the fragment was decomposed from.
	SourceSQL string `json:"source_sql,omitempty"`
	// SourceQuestion is the natural-language question of the source query.
	SourceQuestion string `json:"source_question,omitempty"`
	// Terms lists domain terms this example exercises (e.g. "QoQFP", "RPV").
	Terms      []string   `json:"terms,omitempty"`
	Provenance Provenance `json:"provenance,omitempty"`
}

// Text renders the example for embedding and ranking.
func (e *Example) Text() string { return e.NL + " " + e.Pseudo }

// clone deep-copies the example, including its slice fields, so the copy
// shares no mutable state with the original.
func (e *Example) clone() *Example {
	c := *e
	c.IntentIDs = append([]string(nil), e.IntentIDs...)
	c.Terms = append([]string(nil), e.Terms...)
	return &c
}

// Instruction is a natural-language generation guideline, optionally with an
// expected SQL sub-expression (§3.2.2).
type Instruction struct {
	ID        string   `json:"id"`
	IntentIDs []string `json:"intent_ids,omitempty"`
	Text      string   `json:"text,omitempty"`
	// SQLHint is the expected SQL sub-expression, when relevant.
	SQLHint string `json:"sql_hint,omitempty"`
	// Terms lists domain terms this instruction defines.
	Terms      []string   `json:"terms,omitempty"`
	Provenance Provenance `json:"provenance,omitempty"`
}

// RetrievalText renders the instruction for embedding and ranking: the
// guideline text concatenated with its expected-SQL hint, so retrieval
// matches either phrasing or SQL shape.
func (i *Instruction) RetrievalText() string { return i.Text + " " + i.SQLHint }

// clone deep-copies the instruction, including its slice fields.
func (i *Instruction) clone() *Instruction {
	c := *i
	c.IntentIDs = append([]string(nil), i.IntentIDs...)
	c.Terms = append([]string(nil), i.Terms...)
	return &c
}

// Intent is a mined user intent grouping examples, instructions and schema
// elements (§2.1).
type Intent struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Description string `json:"description,omitempty"`
	// Elements are schema columns considered relevant to the intent.
	Elements []schema.Element `json:"elements,omitempty"`
}

// clone deep-copies the intent, including its element list.
func (in *Intent) clone() *Intent {
	c := *in
	c.Elements = append([]schema.Element(nil), in.Elements...)
	return &c
}

// ChangeOp enumerates audit-history operations.
type ChangeOp string

// Change operations.
const (
	OpInsert     ChangeOp = "insert"
	OpUpdate     ChangeOp = "update"
	OpDelete     ChangeOp = "delete"
	OpRevert     ChangeOp = "revert"
	OpCheckpoint ChangeOp = "checkpoint"
)

// EntityKind enumerates the knowledge entities edits can touch.
type EntityKind string

// Entity kinds.
const (
	ExampleEntity     EntityKind = "example"
	InstructionEntity EntityKind = "instruction"
	IntentEntity      EntityKind = "intent"
	DirectiveEntity   EntityKind = "retrieval_directive"
)

// ChangeEvent is one audit-history record. Events are full-fidelity: besides
// the audit metadata they carry the entity payload the operation wrote, so a
// log of events is a complete serialization of the set's evolution — the
// record format of the kstore write-ahead log. ApplyEvent replays one.
type ChangeEvent struct {
	Seq        int        `json:"seq"`
	Version    int        `json:"version"`
	Op         ChangeOp   `json:"op"`
	Kind       EntityKind `json:"kind"`
	EntityID   string     `json:"entity_id,omitempty"`
	Summary    string     `json:"summary,omitempty"`
	Editor     string     `json:"editor,omitempty"`
	FeedbackID string     `json:"feedback_id,omitempty"`

	// Payloads: exactly one is set for mutating ops (the entity content as
	// written, provenance included); all nil/zero for deletes, whose
	// EntityID suffices. Payload pointers are private snapshots taken at
	// log time — they never alias live set entries.
	Example     *Example     `json:"example,omitempty"`
	Instruction *Instruction `json:"instruction,omitempty"`
	Intent      *Intent      `json:"intent,omitempty"`
	Directive   string       `json:"directive,omitempty"`
	// CheckpointID/CheckpointName describe checkpoint and revert ops.
	CheckpointID   int    `json:"checkpoint_id,omitempty"`
	CheckpointName string `json:"checkpoint_name,omitempty"`
}

// Checkpoint is a named, restorable snapshot of the set.
type Checkpoint struct {
	ID      int
	Name    string
	Version int
	snap    *snapshot
}

type snapshot struct {
	examples     []*Example
	instructions []*Instruction
	intents      []*Intent
	directives   []string
}

// Set is the knowledge set: the paper's materialized view.
//
// Concurrency contract: a Set is NOT internally synchronized. A Set that is
// reachable from a live pipeline.Engine must be treated as read-only — the
// engine's retrieval indices are built from it once, and concurrent
// Generate calls read it without locks. All mutation flows (feedback
// merges, reverts) therefore work on a CloneFull/Clone and re-serve the
// result via Engine.WithKnowledge, never mutating a served set in place.
// The bulk accessors (Examples, Instructions, Intents, History,
// Checkpoints, Directives) return defensive copies so inspection surfaces
// (daemon endpoints, persistence) can hold results across engine swaps.
// The by-ID lookups (Example, Instruction, Intent) return live pointers
// for the engine's hot path and must not be written through.
type Set struct {
	examples     map[string]*Example
	instructions map[string]*Instruction
	intents      map[string]*Intent
	exampleIDs   []string
	instrIDs     []string
	intentIDs    []string
	// directives are extra natural-language instructions attached to the
	// retrieval and re-ranking operators (§1, "Recommending Edits").
	directives []string

	version     int
	history     []ChangeEvent
	checkpoints []Checkpoint
	nextSeq     int
	// nextCheckpointID is a monotonic counter: checkpoint IDs must stay
	// unique even after MaxCheckpoints pruning shortens the list (deriving
	// IDs from the list length would recycle them and make Revert match
	// the wrong snapshot).
	nextCheckpointID int
}

// NewSet returns an empty knowledge set.
func NewSet() *Set {
	return &Set{
		examples:     make(map[string]*Example),
		instructions: make(map[string]*Instruction),
		intents:      make(map[string]*Intent),
	}
}

// Version reports the current version; every mutating operation bumps it.
func (s *Set) Version() int { return s.version }

// --- intents ---

// AddIntent inserts or replaces an intent definition.
func (s *Set) AddIntent(in *Intent) {
	if _, ok := s.intents[in.ID]; !ok {
		s.intentIDs = append(s.intentIDs, in.ID)
	}
	s.intents[in.ID] = in
	s.log(ChangeEvent{
		Op: OpInsert, Kind: IntentEntity, EntityID: in.ID,
		Summary: "intent " + in.Name, Editor: "preprocessing", Intent: in.clone(),
	})
}

// Intent returns the intent by ID, or nil.
func (s *Set) Intent(id string) *Intent { return s.intents[id] }

// Intents returns all intents in insertion order. The returned structs are
// defensive copies (Elements share backing arrays but are never mutated in
// place once built).
func (s *Set) Intents() []*Intent {
	out := make([]*Intent, 0, len(s.intentIDs))
	for _, id := range s.intentIDs {
		out = append(out, s.intents[id].clone())
	}
	return out
}

// --- examples ---

// InsertExample adds a new example.
func (s *Set) InsertExample(e *Example, editor, feedbackID string) error {
	if e.ID == "" {
		e.ID = fmt.Sprintf("ex-%03d", len(s.exampleIDs)+1)
	}
	if _, exists := s.examples[e.ID]; exists {
		return fmt.Errorf("example %s already exists", e.ID)
	}
	s.examples[e.ID] = e
	s.exampleIDs = append(s.exampleIDs, e.ID)
	e.Provenance.Editor = editor
	e.Provenance.FeedbackID = feedbackID
	e.Provenance.Version = s.version + 1
	s.log(ChangeEvent{
		Op: OpInsert, Kind: ExampleEntity, EntityID: e.ID,
		Summary: summarize(e.NL), Editor: editor, FeedbackID: feedbackID,
		Example: e.clone(),
	})
	return nil
}

// UpdateExample replaces an existing example's content.
func (s *Set) UpdateExample(e *Example, editor, feedbackID string) error {
	if _, exists := s.examples[e.ID]; !exists {
		return fmt.Errorf("example %s does not exist", e.ID)
	}
	e.Provenance.Editor = editor
	e.Provenance.FeedbackID = feedbackID
	e.Provenance.Version = s.version + 1
	s.examples[e.ID] = e
	s.log(ChangeEvent{
		Op: OpUpdate, Kind: ExampleEntity, EntityID: e.ID,
		Summary: summarize(e.NL), Editor: editor, FeedbackID: feedbackID,
		Example: e.clone(),
	})
	return nil
}

// DeleteExample removes an example.
func (s *Set) DeleteExample(id, editor, feedbackID string) error {
	if _, exists := s.examples[id]; !exists {
		return fmt.Errorf("example %s does not exist", id)
	}
	delete(s.examples, id)
	s.exampleIDs = removeID(s.exampleIDs, id)
	s.log(ChangeEvent{
		Op: OpDelete, Kind: ExampleEntity, EntityID: id,
		Editor: editor, FeedbackID: feedbackID,
	})
	return nil
}

// Example returns the example by ID, or nil.
func (s *Set) Example(id string) *Example { return s.examples[id] }

// Examples returns all examples in insertion order. The returned structs
// are defensive copies: inspection endpoints can hold them while another
// goroutine stages a rebuild, and writes through them never reach the set.
func (s *Set) Examples() []*Example {
	out := make([]*Example, 0, len(s.exampleIDs))
	for _, id := range s.exampleIDs {
		out = append(out, s.examples[id].clone())
	}
	return out
}

// ExamplesByIntent returns examples associated with the intent.
func (s *Set) ExamplesByIntent(intentID string) []*Example {
	var out []*Example
	for _, id := range s.exampleIDs {
		e := s.examples[id]
		for _, iid := range e.IntentIDs {
			if iid == intentID {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

// --- instructions ---

// InsertInstruction adds a new instruction.
func (s *Set) InsertInstruction(in *Instruction, editor, feedbackID string) error {
	if in.ID == "" {
		in.ID = fmt.Sprintf("ins-%03d", len(s.instrIDs)+1)
	}
	if _, exists := s.instructions[in.ID]; exists {
		return fmt.Errorf("instruction %s already exists", in.ID)
	}
	s.instructions[in.ID] = in
	s.instrIDs = append(s.instrIDs, in.ID)
	in.Provenance.Editor = editor
	in.Provenance.FeedbackID = feedbackID
	in.Provenance.Version = s.version + 1
	s.log(ChangeEvent{
		Op: OpInsert, Kind: InstructionEntity, EntityID: in.ID,
		Summary: summarize(in.Text), Editor: editor, FeedbackID: feedbackID,
		Instruction: in.clone(),
	})
	return nil
}

// UpdateInstruction replaces an existing instruction's content.
func (s *Set) UpdateInstruction(in *Instruction, editor, feedbackID string) error {
	if _, exists := s.instructions[in.ID]; !exists {
		return fmt.Errorf("instruction %s does not exist", in.ID)
	}
	in.Provenance.Editor = editor
	in.Provenance.FeedbackID = feedbackID
	in.Provenance.Version = s.version + 1
	s.instructions[in.ID] = in
	s.log(ChangeEvent{
		Op: OpUpdate, Kind: InstructionEntity, EntityID: in.ID,
		Summary: summarize(in.Text), Editor: editor, FeedbackID: feedbackID,
		Instruction: in.clone(),
	})
	return nil
}

// DeleteInstruction removes an instruction.
func (s *Set) DeleteInstruction(id, editor, feedbackID string) error {
	if _, exists := s.instructions[id]; !exists {
		return fmt.Errorf("instruction %s does not exist", id)
	}
	delete(s.instructions, id)
	s.instrIDs = removeID(s.instrIDs, id)
	s.log(ChangeEvent{
		Op: OpDelete, Kind: InstructionEntity, EntityID: id,
		Editor: editor, FeedbackID: feedbackID,
	})
	return nil
}

// Instruction returns the instruction by ID, or nil.
func (s *Set) Instruction(id string) *Instruction { return s.instructions[id] }

// Instructions returns all instructions in insertion order. The returned
// structs are defensive copies, like Examples.
func (s *Set) Instructions() []*Instruction {
	out := make([]*Instruction, 0, len(s.instrIDs))
	for _, id := range s.instrIDs {
		out = append(out, s.instructions[id].clone())
	}
	return out
}

// InstructionsByIntent returns instructions associated with the intent.
func (s *Set) InstructionsByIntent(intentID string) []*Instruction {
	var out []*Instruction
	for _, id := range s.instrIDs {
		in := s.instructions[id]
		for _, iid := range in.IntentIDs {
			if iid == intentID {
				out = append(out, in)
				break
			}
		}
	}
	return out
}

// DefinesTerm returns the instruction defining the given domain term
// (case-insensitive), or nil.
func (s *Set) DefinesTerm(term string) *Instruction {
	for _, id := range s.instrIDs {
		in := s.instructions[id]
		for _, t := range in.Terms {
			if strings.EqualFold(t, term) {
				return in
			}
		}
	}
	return nil
}

// --- retrieval directives ---

// AddDirective appends a retrieval/re-ranking directive.
func (s *Set) AddDirective(text, editor, feedbackID string) {
	s.directives = append(s.directives, text)
	s.log(ChangeEvent{
		Op: OpInsert, Kind: DirectiveEntity,
		EntityID: fmt.Sprintf("dir-%d", len(s.directives)),
		Summary:  summarize(text), Editor: editor, FeedbackID: feedbackID,
		Directive: text,
	})
}

// Directives returns the retrieval directives in insertion order.
func (s *Set) Directives() []string {
	return append([]string(nil), s.directives...)
}

// --- history, checkpoints, clone ---

// log stamps Seq and Version onto the event and appends it to the history.
// All mutators funnel through here, so the history is a complete, replayable
// serialization of the set (see ApplyEvent).
func (s *Set) log(ev ChangeEvent) {
	s.version++
	s.nextSeq++
	ev.Seq = s.nextSeq
	ev.Version = s.version
	s.history = append(s.history, ev)
}

// History returns the audit log, oldest first. The returned slice is a
// defensive copy: callers (daemon inspection endpoints, persistence) may
// hold it across engine rebuilds without racing the set. Event payload
// pointers are immutable log-time snapshots and are safe to share.
func (s *Set) History() []ChangeEvent {
	return append([]ChangeEvent(nil), s.history...)
}

// HistorySince returns the audit events with Seq strictly greater than seq,
// oldest first — the tail a write-ahead log needs to persist after a commit
// at seq. The result is a defensive copy.
func (s *Set) HistorySince(seq int) []ChangeEvent {
	// Seqs are contiguous from 1, so the tail starts at index seq.
	if seq < 0 {
		seq = 0
	}
	if seq >= len(s.history) {
		return nil
	}
	return append([]ChangeEvent(nil), s.history[seq:]...)
}

// LastSeq reports the sequence number of the most recent history event (0
// for a fresh set).
func (s *Set) LastSeq() int { return s.nextSeq }

// MaxCheckpoints bounds the revert window: each checkpoint holds a full
// content snapshot and long-lived sets checkpoint on every merge, so the
// list would otherwise grow without bound (inflating every CloneFull and
// every serialized State). Older checkpoints are dropped as new ones are
// recorded; their history events remain, but Revert to them fails.
const MaxCheckpoints = 32

// Checkpoint records a named snapshot and returns its ID. Only the newest
// MaxCheckpoints snapshots are retained (see MaxCheckpoints).
func (s *Set) Checkpoint(name string) int {
	s.nextCheckpointID++
	cp := Checkpoint{
		ID:      s.nextCheckpointID,
		Name:    name,
		Version: s.version,
		snap:    s.snapshot(),
	}
	s.checkpoints = append(s.checkpoints, cp)
	s.pruneCheckpoints()
	s.log(ChangeEvent{
		Op: OpCheckpoint, Kind: DirectiveEntity,
		EntityID: fmt.Sprintf("cp-%d", cp.ID), Summary: "checkpoint " + name,
		Editor: "system", CheckpointID: cp.ID, CheckpointName: name,
	})
	return cp.ID
}

// Checkpoints lists recorded checkpoints, oldest first.
func (s *Set) Checkpoints() []Checkpoint {
	return append([]Checkpoint(nil), s.checkpoints...)
}

// pruneCheckpoints enforces MaxCheckpoints after every checkpoint append.
// It runs identically in Checkpoint() and in ApplyEvent's replay of a
// checkpoint event, so a replayed set always holds the same revert window
// as the original.
func (s *Set) pruneCheckpoints() {
	if len(s.checkpoints) <= MaxCheckpoints {
		return
	}
	s.checkpoints = append([]Checkpoint(nil), s.checkpoints[len(s.checkpoints)-MaxCheckpoints:]...)
}

// Revert restores the set's contents to a checkpoint. History and
// checkpoints are preserved (the revert itself is logged), matching the
// paper's "revert back to any prior checkpoint" with full auditability.
func (s *Set) Revert(checkpointID int) error {
	var cp *Checkpoint
	for i := range s.checkpoints {
		if s.checkpoints[i].ID == checkpointID {
			cp = &s.checkpoints[i]
			break
		}
	}
	if cp == nil {
		return fmt.Errorf("checkpoint %d does not exist", checkpointID)
	}
	s.restore(cp.snap)
	s.log(ChangeEvent{
		Op: OpRevert, Kind: DirectiveEntity,
		EntityID: fmt.Sprintf("cp-%d", cp.ID), Summary: "revert to " + cp.Name,
		Editor: "system", CheckpointID: cp.ID, CheckpointName: cp.Name,
	})
	return nil
}

func (s *Set) snapshot() *snapshot {
	sn := &snapshot{directives: append([]string(nil), s.directives...)}
	for _, id := range s.exampleIDs {
		sn.examples = append(sn.examples, s.examples[id].clone())
	}
	for _, id := range s.instrIDs {
		sn.instructions = append(sn.instructions, s.instructions[id].clone())
	}
	for _, id := range s.intentIDs {
		sn.intents = append(sn.intents, s.intents[id].clone())
	}
	return sn
}

func (s *Set) restore(sn *snapshot) {
	s.examples = make(map[string]*Example, len(sn.examples))
	s.exampleIDs = s.exampleIDs[:0]
	for _, e := range sn.examples {
		c := e.clone()
		s.examples[c.ID] = c
		s.exampleIDs = append(s.exampleIDs, c.ID)
	}
	s.instructions = make(map[string]*Instruction, len(sn.instructions))
	s.instrIDs = s.instrIDs[:0]
	for _, in := range sn.instructions {
		c := in.clone()
		s.instructions[c.ID] = c
		s.instrIDs = append(s.instrIDs, c.ID)
	}
	s.intents = make(map[string]*Intent, len(sn.intents))
	s.intentIDs = s.intentIDs[:0]
	for _, in := range sn.intents {
		c := in.clone()
		s.intents[c.ID] = c
		s.intentIDs = append(s.intentIDs, c.ID)
	}
	s.directives = append([]string(nil), sn.directives...)
}

// Clone deep-copies the set's contents into a fresh set with empty history.
// Clones are the staging environments of §4.2.1: edits are applied to a
// clone, regenerated against, and only merged into the live set on approval.
func (s *Set) Clone() *Set {
	out := NewSet()
	out.restore(s.snapshot())
	out.version = s.version
	return out
}

// CloneFull deep-copies the entire set — contents, version, sequence
// counter, audit history and checkpoints (with their snapshots). Merge
// flows use it to build the next served generation of the knowledge set
// without mutating the currently served (read-only) one: apply edits to the
// full clone, rebuild indices via Engine.WithKnowledge, hot-swap.
func (s *Set) CloneFull() *Set {
	out := NewSet()
	out.restore(s.snapshot())
	out.version = s.version
	out.nextSeq = s.nextSeq
	out.nextCheckpointID = s.nextCheckpointID
	out.history = append([]ChangeEvent(nil), s.history...)
	out.checkpoints = make([]Checkpoint, len(s.checkpoints))
	for i, cp := range s.checkpoints {
		out.checkpoints[i] = Checkpoint{ID: cp.ID, Name: cp.Name, Version: cp.Version, snap: cp.snap.clone()}
	}
	return out
}

// clone deep-copies a checkpoint snapshot.
func (sn *snapshot) clone() *snapshot {
	out := &snapshot{directives: append([]string(nil), sn.directives...)}
	for _, e := range sn.examples {
		out.examples = append(out.examples, e.clone())
	}
	for _, in := range sn.instructions {
		out.instructions = append(out.instructions, in.clone())
	}
	for _, it := range sn.intents {
		out.intents = append(out.intents, it.clone())
	}
	return out
}

// --- edits (shared with the feedback module) ---

// EditOp enumerates edit operations on the knowledge set.
type EditOp string

// Edit operations.
const (
	EditInsert    EditOp = "insert"
	EditUpdate    EditOp = "update"
	EditDelete    EditOp = "delete"
	EditDirective EditOp = "directive"
)

// Edit is one recommended (or manual) change to the knowledge set — the unit
// the feedback solver stages, regression-tests and merges.
type Edit struct {
	Op   EditOp
	Kind EntityKind
	// ID targets the existing entity for update/delete.
	ID string
	// Example/Instruction carry new content for insert/update.
	Example     *Example
	Instruction *Instruction
	// Directive carries retrieval-directive text.
	Directive string
	// Rationale explains why the edit is recommended, shown to reviewers.
	Rationale string
}

// Describe renders a one-line human summary of the edit.
func (e Edit) Describe() string {
	switch {
	case e.Op == EditDirective:
		return "add retrieval directive: " + summarize(e.Directive)
	case e.Kind == ExampleEntity && e.Example != nil:
		return fmt.Sprintf("%s example %s: %s", e.Op, e.Example.ID, summarize(e.Example.NL))
	case e.Kind == ExampleEntity:
		return fmt.Sprintf("%s example %s", e.Op, e.ID)
	case e.Kind == InstructionEntity && e.Instruction != nil:
		return fmt.Sprintf("%s instruction %s: %s", e.Op, e.Instruction.ID, summarize(e.Instruction.Text))
	default:
		return fmt.Sprintf("%s %s %s", e.Op, e.Kind, e.ID)
	}
}

// Apply executes an edit against the set.
func (s *Set) Apply(edit Edit, editor, feedbackID string) error {
	switch edit.Op {
	case EditDirective:
		s.AddDirective(edit.Directive, editor, feedbackID)
		return nil
	case EditInsert:
		switch edit.Kind {
		case ExampleEntity:
			if edit.Example == nil {
				return fmt.Errorf("insert example edit has no payload")
			}
			// Copy so staging never mutates the caller's edit (auto-ID
			// assignment and provenance are per-application).
			e := *edit.Example
			return s.InsertExample(&e, editor, feedbackID)
		case InstructionEntity:
			if edit.Instruction == nil {
				return fmt.Errorf("insert instruction edit has no payload")
			}
			in := *edit.Instruction
			return s.InsertInstruction(&in, editor, feedbackID)
		}
	case EditUpdate:
		switch edit.Kind {
		case ExampleEntity:
			if edit.Example == nil {
				return fmt.Errorf("update example edit has no payload")
			}
			e := *edit.Example
			if e.ID == "" {
				e.ID = edit.ID
			}
			return s.UpdateExample(&e, editor, feedbackID)
		case InstructionEntity:
			if edit.Instruction == nil {
				return fmt.Errorf("update instruction edit has no payload")
			}
			in := *edit.Instruction
			if in.ID == "" {
				in.ID = edit.ID
			}
			return s.UpdateInstruction(&in, editor, feedbackID)
		}
	case EditDelete:
		switch edit.Kind {
		case ExampleEntity:
			return s.DeleteExample(edit.ID, editor, feedbackID)
		case InstructionEntity:
			return s.DeleteInstruction(edit.ID, editor, feedbackID)
		}
	}
	return fmt.Errorf("unsupported edit %s %s", edit.Op, edit.Kind)
}

// Stage clones the set and applies the edits to the clone, returning the
// staging environment. The live set is untouched.
func (s *Set) Stage(edits []Edit, editor, feedbackID string) (*Set, error) {
	staged := s.Clone()
	for _, e := range edits {
		if err := staged.Apply(e, editor, feedbackID); err != nil {
			return nil, fmt.Errorf("staging %s: %w", e.Describe(), err)
		}
	}
	return staged, nil
}

// --- helpers ---

func removeID(ids []string, id string) []string {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

func summarize(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 72 {
		return s[:71] + "…"
	}
	return s
}

// Stats summarizes set contents for display.
type Stats struct {
	Examples     int
	Instructions int
	Intents      int
	Directives   int
	Version      int
}

// Stats returns current set statistics.
func (s *Set) Stats() Stats {
	return Stats{
		Examples:     len(s.exampleIDs),
		Instructions: len(s.instrIDs),
		Intents:      len(s.intentIDs),
		Directives:   len(s.directives),
		Version:      s.version,
	}
}

// TermsIndex returns all domain terms defined by instructions, sorted.
func (s *Set) TermsIndex() []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range s.instrIDs {
		for _, t := range s.instructions[id].Terms {
			key := strings.ToUpper(t)
			if !seen[key] {
				seen[key] = true
				out = append(out, t)
			}
		}
	}
	sort.Strings(out)
	return out
}
