package knowledge

import (
	"fmt"
	"strings"

	"genedit/internal/decompose"
	"genedit/internal/schema"
)

// LogEntry is one historical (question, SQL) pair from query logs — the
// pre-processing phase's first input (§2.1).
type LogEntry struct {
	ID       string
	Question string
	SQL      string
	// IntentName labels the user intent; in the paper intents are mined and
	// then verified by SMEs, so log entries arrive with verified labels.
	IntentName string
	// Terms lists domain terms the query exercises.
	Terms []string
}

// DocEntry is one glossary/practice item from domain documents — the
// pre-processing phase's second input.
type DocEntry struct {
	// Term is the domain term defined (e.g. "QoQFP"), empty for general
	// practice guidance.
	Term string
	// Definition is the natural-language guideline text.
	Definition string
	// SQLHint is the expected SQL sub-expression, when relevant.
	SQLHint string
	// IntentName associates the entry with an intent.
	IntentName string
}

// Document is a domain-specific terminology/practices document.
type Document struct {
	Title   string
	Entries []DocEntry
}

// BuildInput bundles the pre-processing inputs.
type BuildInput struct {
	Schema *schema.Schema
	Logs   []LogEntry
	Docs   []Document
}

// Build runs the pre-processing phase: it mines intents from the labelled
// logs and documents, decomposes every logged SQL query into sub-statement
// examples, converts document entries into instructions, and associates
// schema elements with intents by scanning the decomposed SQL.
func Build(in BuildInput) (*Set, error) {
	set := NewSet()
	intentByName := make(map[string]*Intent)

	// Pre-mine the schema elements each intent's logged queries reference.
	// Doing this before intent creation keeps the intent-insert audit event
	// complete — an intent is never mutated after it is logged, so replaying
	// the event history (kstore recovery) reproduces the set exactly.
	elementsByIntent := make(map[string][]schema.Element)
	if in.Schema != nil {
		for _, entry := range in.Logs {
			key := intentKey(entry.IntentName)
			for _, el := range referencedElements(entry.SQL, in.Schema) {
				if !containsElement(elementsByIntent[key], el) {
					elementsByIntent[key] = append(elementsByIntent[key], el)
				}
			}
		}
	}

	intentFor := func(name string) *Intent {
		if name == "" {
			name = "general"
		}
		key := intentKey(name)
		if it, ok := intentByName[key]; ok {
			return it
		}
		it := &Intent{
			ID:          fmt.Sprintf("intent-%03d", len(intentByName)+1),
			Name:        name,
			Description: "Queries about " + name + ".",
			Elements:    elementsByIntent[key],
		}
		intentByName[key] = it
		set.AddIntent(it)
		return it
	}

	// Instructions from documents first, so term definitions exist before
	// examples reference them.
	for _, doc := range in.Docs {
		for _, entry := range doc.Entries {
			it := intentFor(entry.IntentName)
			ins := &Instruction{
				IntentIDs: []string{it.ID},
				Text:      entry.Definition,
				SQLHint:   entry.SQLHint,
				Provenance: Provenance{
					Source: "doc:" + doc.Title,
				},
			}
			if entry.Term != "" {
				ins.Terms = []string{entry.Term}
			}
			if err := set.InsertInstruction(ins, "preprocessing", ""); err != nil {
				return nil, err
			}
		}
	}

	// Examples from query logs, decomposed per §3.2.1.
	for _, entry := range in.Logs {
		it := intentFor(entry.IntentName)
		frags, err := decompose.DecomposeSQL(entry.SQL)
		if err != nil {
			return nil, fmt.Errorf("log %s: %w", entry.ID, err)
		}
		for _, frag := range frags {
			ex := &Example{
				IntentIDs:      []string{it.ID},
				NL:             frag.NL,
				Pseudo:         frag.Pseudo(),
				SQL:            frag.SQL,
				Clause:         string(frag.Clause),
				SourceSQL:      entry.SQL,
				SourceQuestion: entry.Question,
				Terms:          termsInText(entry.Terms, frag.SQL+" "+frag.NL),
				Provenance: Provenance{
					Source: "log:" + entry.ID,
				},
			}
			if err := set.InsertExample(ex, "preprocessing", ""); err != nil {
				return nil, err
			}
		}
	}
	return set, nil
}

// intentKey normalizes an intent name the same way intentFor does.
func intentKey(name string) string {
	if name == "" {
		name = "general"
	}
	return strings.ToLower(name)
}

// termsInText keeps the subset of terms that actually appear in the
// fragment's text, so fragment-level term tagging stays precise.
func termsInText(terms []string, text string) []string {
	upper := strings.ToUpper(text)
	var out []string
	for _, t := range terms {
		if strings.Contains(upper, strings.ToUpper(t)) {
			out = append(out, t)
		}
	}
	return out
}

// referencedElements scans SQL text for schema columns it mentions.
func referencedElements(sql string, s *schema.Schema) []schema.Element {
	upper := strings.ToUpper(sql)
	var out []schema.Element
	for _, t := range s.Tables {
		if !strings.Contains(upper, strings.ToUpper(t.Name)) {
			continue
		}
		for _, c := range t.Columns {
			if strings.Contains(upper, strings.ToUpper(c.Name)) {
				out = append(out, schema.Element{Table: t.Name, Column: c.Name})
			}
		}
	}
	return out
}

func containsElement(els []schema.Element, e schema.Element) bool {
	for _, x := range els {
		if strings.EqualFold(x.Table, e.Table) && strings.EqualFold(x.Column, e.Column) {
			return true
		}
	}
	return false
}
