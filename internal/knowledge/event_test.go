package knowledge

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// mutateAll drives every mutator so replay/serialization tests cover the
// full op × kind surface, including checkpoint and revert.
func mutateAll(t *testing.T, s *Set) {
	t.Helper()
	up := *s.Example("ex-001")
	up.NL = "Compute revenue per viewer"
	if err := s.UpdateExample(&up, "sme", "fb-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertExample(&Example{
		NL: "Filter to owned organizations", SQL: "OWNERSHIP_FLAG_COLUMN = 'COC'", Clause: "where",
	}, "sme", "fb-1"); err != nil {
		t.Fatal(err)
	}
	cp := s.Checkpoint("mid")
	ins := *s.Instruction("ins-001")
	ins.Text = "Use conditional aggregation when comparing periods"
	if err := s.UpdateInstruction(&ins, "sme", "fb-2"); err != nil {
		t.Fatal(err)
	}
	s.AddDirective("rank quarter-pivot examples higher", "sme", "fb-2")
	if err := s.InsertInstruction(&Instruction{Text: "Always filter by fiscal year", Terms: []string{"FY"}}, "sme", "fb-2"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteExample("ex-001", "sme", "fb-3"); err != nil {
		t.Fatal(err)
	}
	if err := s.Revert(cp); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteInstruction("ins-001", "sme", "fb-4"); err != nil {
		t.Fatal(err)
	}
}

// TestReplayReproducesSet asserts that replaying a set's history onto a
// fresh set reproduces contents, version, and history event-for-event.
func TestReplayReproducesSet(t *testing.T) {
	s := seedSet(t)
	mutateAll(t, s)

	r := NewSet()
	if err := r.Replay(s.History()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.State(), s.State()) {
		t.Errorf("replayed state differs from original:\n got %+v\nwant %+v", r.State(), s.State())
	}
	if r.Version() != s.Version() || r.LastSeq() != s.LastSeq() {
		t.Errorf("version/seq = %d/%d, want %d/%d", r.Version(), r.LastSeq(), s.Version(), s.LastSeq())
	}
	gh, wh := r.History(), s.History()
	if len(gh) != len(wh) {
		t.Fatalf("history length %d != %d", len(gh), len(wh))
	}
	for i := range gh {
		if !reflect.DeepEqual(gh[i], wh[i]) {
			t.Errorf("history[%d] = %+v, want %+v", i, gh[i], wh[i])
		}
	}
}

// TestReplaySurvivesJSONRoundTrip mirrors the WAL path: events are
// marshaled to JSON lines and back before replay.
func TestReplaySurvivesJSONRoundTrip(t *testing.T) {
	s := seedSet(t)
	mutateAll(t, s)

	r := NewSet()
	for _, ev := range s.History() {
		raw, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		var back ChangeEvent
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if err := r.ApplyEvent(back); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(r.State(), s.State()) {
		t.Error("JSON round-tripped replay diverged from original")
	}
}

func TestReplayDetectsGaps(t *testing.T) {
	s := seedSet(t)
	hist := s.History()
	r := NewSet()
	if err := r.ApplyEvent(hist[1]); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("out-of-order replay error = %v, want gap", err)
	}
	if err := r.ApplyEvent(hist[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.ApplyEvent(hist[0]); err == nil {
		t.Error("duplicate replay should fail")
	}
}

func TestReplayInconsistentEventFails(t *testing.T) {
	r := NewSet()
	err := r.ApplyEvent(ChangeEvent{Seq: 1, Version: 1, Op: OpDelete, Kind: ExampleEntity, EntityID: "nope"})
	if err == nil {
		t.Error("deleting a missing example during replay should fail")
	}
	err = r.ApplyEvent(ChangeEvent{Seq: 1, Version: 1, Op: OpInsert, Kind: ExampleEntity})
	if err == nil || !strings.Contains(err.Error(), "payload") {
		t.Errorf("insert without payload error = %v", err)
	}
}

// TestStateRoundTrip asserts FromState(State()) is an exact deep copy,
// through JSON as the snapshot files do, and that checkpoints survive (a
// revert still works after the round trip).
func TestStateRoundTrip(t *testing.T) {
	s := seedSet(t)
	cp := s.Checkpoint("baseline")
	mutateAll(t, s)

	raw, err := json.Marshal(s.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	r := FromState(&st)
	if !reflect.DeepEqual(r.State(), s.State()) {
		t.Error("state round trip diverged")
	}
	if err := r.Revert(cp); err != nil {
		t.Fatalf("revert after round trip: %v", err)
	}
	if r.Example("ex-001") == nil {
		t.Error("revert after round trip did not restore checkpointed content")
	}
	// The round-tripped set must stay isolated from the original.
	r.AddDirective("isolated", "t", "")
	if len(s.Directives()) != 0 {
		t.Error("round-tripped set aliases the original")
	}
}

// TestBuildHistoryIsReplayable asserts the seed-build path (the builder's
// intents, instructions and decomposed examples) produces a fully
// replayable event history — the property kstore's seeding relies on.
func TestBuildHistoryIsReplayable(t *testing.T) {
	set := buildFixture(t)
	r := NewSet()
	if err := r.Replay(set.History()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.State(), set.State()) {
		t.Error("replayed seed build diverged (intent elements must be logged at insert time)")
	}
	for _, it := range set.Intents() {
		if len(it.Elements) > 0 {
			return // at least one intent carries mined schema elements
		}
	}
	t.Error("expected some intent to carry mined schema elements")
}

func TestDefensiveCopies(t *testing.T) {
	s := seedSet(t)
	s.Examples()[0].NL = "mutated"
	if s.Example("ex-001").NL == "mutated" {
		t.Error("Examples() must return defensive copies")
	}
	s.Instructions()[0].Text = "mutated"
	if s.Instruction("ins-001").Text == "mutated" {
		t.Error("Instructions() must return defensive copies")
	}
	s.Intents()[0].Name = "mutated"
	if s.Intent("intent-001").Name == "mutated" {
		t.Error("Intents() must return defensive copies")
	}
}

func TestHistorySince(t *testing.T) {
	s := seedSet(t)
	mid := s.LastSeq()
	s.AddDirective("tail event", "sme", "")
	tail := s.HistorySince(mid)
	if len(tail) != 1 || tail[0].Directive != "tail event" {
		t.Fatalf("HistorySince(%d) = %+v, want 1 directive event", mid, tail)
	}
	if got := s.HistorySince(0); len(got) != len(s.History()) {
		t.Errorf("HistorySince(0) = %d events, want %d", len(got), len(s.History()))
	}
	if got := s.HistorySince(s.LastSeq()); got != nil {
		t.Errorf("HistorySince(last) = %+v, want nil", got)
	}
}

func TestCloneFull(t *testing.T) {
	s := seedSet(t)
	cp := s.Checkpoint("baseline")
	mutateAll(t, s)

	c := s.CloneFull()
	if !reflect.DeepEqual(c.State(), s.State()) {
		t.Fatal("CloneFull state differs from original")
	}
	// Mutating the clone (including its checkpoints via revert) must not
	// touch the original.
	if err := c.Revert(cp); err != nil {
		t.Fatal(err)
	}
	c.AddDirective("clone-only", "t", "")
	if len(s.History()) == len(c.History()) {
		t.Error("clone history should have diverged")
	}
	if reflect.DeepEqual(c.State(), s.State()) {
		t.Error("mutating clone affected original")
	}
}

// TestCheckpointBoundIsReplayed: the MaxCheckpoints revert window is an
// invariant of the mutators, so a replayed set holds the same window as
// the original and Revert to a pruned checkpoint fails on both.
func TestCheckpointBoundIsReplayed(t *testing.T) {
	s := seedSet(t)
	var first int
	for i := 0; i <= MaxCheckpoints; i++ {
		id := s.Checkpoint(fmt.Sprintf("cp-%d", i))
		if i == 0 {
			first = id
		}
	}
	if got := len(s.Checkpoints()); got != MaxCheckpoints {
		t.Fatalf("checkpoints = %d, want bound %d", got, MaxCheckpoints)
	}
	if err := s.Revert(first); err == nil {
		t.Error("revert to a pruned checkpoint should fail")
	}
	// IDs stay monotonic across pruning — never recycled from list length.
	nextID := s.Checkpoint("one-more")
	if nextID != MaxCheckpoints+2 {
		t.Errorf("checkpoint ID after pruning = %d, want %d", nextID, MaxCheckpoints+2)
	}
	seen := make(map[int]bool)
	for _, cp := range s.Checkpoints() {
		if seen[cp.ID] {
			t.Fatalf("duplicate checkpoint ID %d after pruning", cp.ID)
		}
		seen[cp.ID] = true
	}
	r := NewSet()
	if err := r.Replay(s.History()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.State(), s.State()) {
		t.Error("replayed set's checkpoint window diverged from original")
	}
	if err := r.Revert(first); err == nil {
		t.Error("replayed set must also have pruned the first checkpoint")
	}
}
