package knowledge

import (
	"strings"
	"testing"

	"genedit/internal/schema"
	"genedit/internal/sqldb"
)

func buildFixture(t *testing.T) *Set {
	t.Helper()
	db := sqldb.NewDatabase("sports")
	fin := sqldb.NewTable("SPORTS_FINANCIALS",
		sqldb.Column{Name: "ORG_NAME", Type: "TEXT"},
		sqldb.Column{Name: "REVENUE", Type: "FLOAT"},
		sqldb.Column{Name: "COUNTRY", Type: "TEXT"},
	)
	fin.MustAppend(sqldb.Str("Orcas"), sqldb.Float(100), sqldb.Str("Canada"))
	db.AddTable(fin)

	in := BuildInput{
		Schema: schema.FromDatabase(db, 5),
		Logs: []LogEntry{
			{
				ID:         "q1",
				Question:   "total revenue by organization in Canada",
				SQL:        "SELECT ORG_NAME, SUM(REVENUE) AS TOTAL FROM SPORTS_FINANCIALS WHERE COUNTRY = 'Canada' GROUP BY ORG_NAME",
				IntentName: "financial performance",
			},
			{
				ID:         "q2",
				Question:   "QoQFP for our organizations",
				SQL:        "WITH F AS (SELECT ORG_NAME, SUM(REVENUE) AS R FROM SPORTS_FINANCIALS GROUP BY ORG_NAME) SELECT ORG_NAME FROM F ORDER BY R DESC",
				IntentName: "financial performance",
				Terms:      []string{"QoQFP"},
			},
		},
		Docs: []Document{
			{
				Title: "finance-glossary",
				Entries: []DocEntry{
					{
						Term:       "QoQFP",
						Definition: "QoQFP means quarter-over-quarter financial performance; compare RPV between consecutive quarters.",
						SQLHint:    "SUM(CASE WHEN quarter = 'Q1' THEN REVENUE ELSE 0 END)",
						IntentName: "financial performance",
					},
					{
						Definition: "Apply a -1 multiplier when calculating the change in performance metrics.",
						IntentName: "financial performance",
					},
				},
			},
		},
	}
	set, err := Build(in)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestBuildCreatesIntents(t *testing.T) {
	set := buildFixture(t)
	intents := set.Intents()
	if len(intents) != 1 {
		t.Fatalf("intents = %d, want 1 (shared across logs and docs)", len(intents))
	}
	if intents[0].Name != "financial performance" {
		t.Errorf("intent name = %q", intents[0].Name)
	}
}

func TestBuildDecomposesLogsIntoExamples(t *testing.T) {
	set := buildFixture(t)
	examples := set.Examples()
	if len(examples) < 6 {
		t.Fatalf("examples = %d, want at least 6 decomposed fragments", len(examples))
	}
	var sawWhere, sawPseudo bool
	for _, e := range examples {
		if e.Clause == "where" && strings.Contains(e.SQL, "'Canada'") {
			sawWhere = true
		}
		if strings.HasPrefix(e.Pseudo, "... ") && strings.HasSuffix(e.Pseudo, " ...") {
			sawPseudo = true
		}
		if e.Provenance.Source == "" {
			t.Errorf("example %s has no provenance", e.ID)
		}
	}
	if !sawWhere {
		t.Error("no WHERE fragment with the Canada filter")
	}
	if !sawPseudo {
		t.Error("examples missing pseudo-SQL dotted form")
	}
}

func TestBuildInstructionsAndTerms(t *testing.T) {
	set := buildFixture(t)
	if len(set.Instructions()) != 2 {
		t.Fatalf("instructions = %d, want 2", len(set.Instructions()))
	}
	def := set.DefinesTerm("QoQFP")
	if def == nil {
		t.Fatal("QoQFP definition missing")
	}
	if def.SQLHint == "" {
		t.Error("QoQFP instruction lost its SQL hint")
	}
	if def.Provenance.Source != "doc:finance-glossary" {
		t.Errorf("instruction provenance = %q", def.Provenance.Source)
	}
}

func TestBuildAssociatesSchemaElements(t *testing.T) {
	set := buildFixture(t)
	it := set.Intents()[0]
	if len(it.Elements) == 0 {
		t.Fatal("intent has no schema elements")
	}
	found := false
	for _, el := range it.Elements {
		if el.Table == "SPORTS_FINANCIALS" && el.Column == "REVENUE" {
			found = true
		}
	}
	if !found {
		t.Errorf("intent elements = %v, want SPORTS_FINANCIALS.REVENUE", it.Elements)
	}
}

func TestBuildTermTaggingIsFragmentPrecise(t *testing.T) {
	set := buildFixture(t)
	// Only fragments whose text mentions QoQFP should carry the term;
	// the q2 SQL never spells the term, so no example should carry it.
	for _, e := range set.Examples() {
		for _, term := range e.Terms {
			if term == "QoQFP" && !strings.Contains(strings.ToUpper(e.SQL+e.NL), "QOQFP") {
				t.Errorf("example %s tagged QoQFP without mentioning it", e.ID)
			}
		}
	}
}

func TestBuildRejectsBadSQL(t *testing.T) {
	_, err := Build(BuildInput{Logs: []LogEntry{{ID: "bad", SQL: "SELEC nope"}}})
	if err == nil {
		t.Error("Build should reject unparsable log SQL")
	}
}
