package knowledge

import (
	"strings"
	"testing"
)

func seedSet(t *testing.T) *Set {
	t.Helper()
	s := NewSet()
	s.AddIntent(&Intent{ID: "intent-001", Name: "financial performance"})
	s.AddIntent(&Intent{ID: "intent-002", Name: "viewership"})
	if err := s.InsertExample(&Example{
		ID: "ex-001", IntentIDs: []string{"intent-001"},
		NL: "Compute RPV as revenue over views", Pseudo: "... REVENUE / NULLIF(VIEWS, 0) ...",
		SQL: "REVENUE / NULLIF(VIEWS, 0)", Clause: "projection", Terms: []string{"RPV"},
	}, "preprocessing", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertInstruction(&Instruction{
		ID: "ins-001", IntentIDs: []string{"intent-001"},
		Text:  "Apply a -1 multiplier when calculating the change in performance metrics",
		Terms: []string{"QoQFP"},
	}, "preprocessing", ""); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInsertUpdateDeleteExample(t *testing.T) {
	s := seedSet(t)
	if got := len(s.Examples()); got != 1 {
		t.Fatalf("examples = %d, want 1", got)
	}
	updated := *s.Example("ex-001")
	updated.NL = "Compute revenue per viewer"
	if err := s.UpdateExample(&updated, "sme", "fb-1"); err != nil {
		t.Fatal(err)
	}
	if s.Example("ex-001").NL != "Compute revenue per viewer" {
		t.Error("update did not take effect")
	}
	if s.Example("ex-001").Provenance.Editor != "sme" {
		t.Error("provenance editor not recorded")
	}
	if err := s.DeleteExample("ex-001", "sme", "fb-1"); err != nil {
		t.Fatal(err)
	}
	if s.Example("ex-001") != nil {
		t.Error("delete did not take effect")
	}
	if err := s.DeleteExample("ex-001", "sme", ""); err == nil {
		t.Error("double delete should fail")
	}
}

func TestInsertDuplicateFails(t *testing.T) {
	s := seedSet(t)
	err := s.InsertExample(&Example{ID: "ex-001"}, "x", "")
	if err == nil {
		t.Error("duplicate insert should fail")
	}
	err = s.InsertInstruction(&Instruction{ID: "ins-001"}, "x", "")
	if err == nil {
		t.Error("duplicate instruction insert should fail")
	}
}

func TestAutoAssignedIDs(t *testing.T) {
	s := NewSet()
	e := &Example{NL: "x"}
	if err := s.InsertExample(e, "p", ""); err != nil {
		t.Fatal(err)
	}
	if e.ID == "" {
		t.Error("example ID not auto-assigned")
	}
	in := &Instruction{Text: "y"}
	if err := s.InsertInstruction(in, "p", ""); err != nil {
		t.Fatal(err)
	}
	if in.ID == "" {
		t.Error("instruction ID not auto-assigned")
	}
}

func TestByIntentLookups(t *testing.T) {
	s := seedSet(t)
	if got := len(s.ExamplesByIntent("intent-001")); got != 1 {
		t.Errorf("examples by intent-001 = %d, want 1", got)
	}
	if got := len(s.ExamplesByIntent("intent-002")); got != 0 {
		t.Errorf("examples by intent-002 = %d, want 0", got)
	}
	if got := len(s.InstructionsByIntent("intent-001")); got != 1 {
		t.Errorf("instructions by intent-001 = %d, want 1", got)
	}
}

func TestDefinesTerm(t *testing.T) {
	s := seedSet(t)
	if s.DefinesTerm("qoqfp") == nil {
		t.Error("DefinesTerm should be case-insensitive")
	}
	if s.DefinesTerm("RPV") != nil {
		t.Error("RPV is exercised by an example, not defined by an instruction")
	}
}

func TestHistoryRecordsOperations(t *testing.T) {
	s := seedSet(t)
	before := len(s.History())
	up := *s.Example("ex-001")
	if err := s.UpdateExample(&up, "sme", "fb-9"); err != nil {
		t.Fatal(err)
	}
	hist := s.History()
	if len(hist) != before+1 {
		t.Fatalf("history grew by %d, want 1", len(hist)-before)
	}
	last := hist[len(hist)-1]
	if last.Op != OpUpdate || last.Kind != ExampleEntity || last.FeedbackID != "fb-9" {
		t.Errorf("history event = %+v", last)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Seq <= hist[i-1].Seq {
			t.Error("history sequence numbers not increasing")
		}
	}
}

func TestCheckpointAndRevert(t *testing.T) {
	s := seedSet(t)
	cpID := s.Checkpoint("before-edits")
	if err := s.DeleteExample("ex-001", "sme", ""); err != nil {
		t.Fatal(err)
	}
	s.AddDirective("prefer quarterly examples", "sme", "")
	if err := s.Revert(cpID); err != nil {
		t.Fatal(err)
	}
	if s.Example("ex-001") == nil {
		t.Error("revert did not restore deleted example")
	}
	if len(s.Directives()) != 0 {
		t.Error("revert did not remove directive")
	}
	// History must still record everything including the revert.
	hist := s.History()
	last := hist[len(hist)-1]
	if last.Op != OpRevert {
		t.Errorf("last history op = %s, want revert", last.Op)
	}
	if err := s.Revert(999); err == nil {
		t.Error("revert to missing checkpoint should fail")
	}
}

func TestCloneIsolation(t *testing.T) {
	s := seedSet(t)
	c := s.Clone()
	if err := c.DeleteExample("ex-001", "sme", ""); err != nil {
		t.Fatal(err)
	}
	c.Example("ins-no")
	if s.Example("ex-001") == nil {
		t.Error("mutating clone affected original")
	}
	// Mutating a fetched entity on the clone must not leak either.
	c2 := s.Clone()
	c2.Instruction("ins-001").Text = "changed"
	if s.Instruction("ins-001").Text == "changed" {
		t.Error("clone shares instruction pointers with original")
	}
}

func TestStageAppliesEditsToClone(t *testing.T) {
	s := seedSet(t)
	edits := []Edit{
		{Op: EditUpdate, Kind: InstructionEntity, Instruction: &Instruction{
			ID: "ins-001", Text: "Use conditional aggregation when comparing periods",
		}},
		{Op: EditInsert, Kind: ExampleEntity, Example: &Example{
			NL: "Filter to owned organizations", SQL: "OWNERSHIP_FLAG_COLUMN = 'COC'", Clause: "where",
		}},
		{Op: EditDirective, Directive: "rank quarter-pivot examples higher"},
	}
	staged, err := s.Stage(edits, "sme", "fb-2")
	if err != nil {
		t.Fatal(err)
	}
	if staged.Instruction("ins-001").Text == s.Instruction("ins-001").Text {
		t.Error("staged instruction update missing")
	}
	if len(staged.Examples()) != len(s.Examples())+1 {
		t.Error("staged example insert missing")
	}
	if len(staged.Directives()) != 1 {
		t.Error("staged directive missing")
	}
	if s.Version() == staged.Version() {
		t.Error("staging should bump only the clone's version")
	}
}

func TestStageInvalidEditFails(t *testing.T) {
	s := seedSet(t)
	_, err := s.Stage([]Edit{{Op: EditDelete, Kind: ExampleEntity, ID: "nope"}}, "sme", "")
	if err == nil {
		t.Error("staging a delete of a missing example should fail")
	}
	_, err = s.Stage([]Edit{{Op: EditInsert, Kind: ExampleEntity}}, "sme", "")
	if err == nil || !strings.Contains(err.Error(), "payload") {
		t.Errorf("insert without payload error = %v", err)
	}
}

func TestEditDescribe(t *testing.T) {
	e := Edit{Op: EditInsert, Kind: InstructionEntity,
		Instruction: &Instruction{ID: "ins-9", Text: "Always filter by country"}}
	if !strings.Contains(e.Describe(), "ins-9") {
		t.Errorf("Describe = %q", e.Describe())
	}
}

func TestStatsAndTermsIndex(t *testing.T) {
	s := seedSet(t)
	st := s.Stats()
	if st.Examples != 1 || st.Instructions != 1 || st.Intents != 2 {
		t.Errorf("Stats = %+v", st)
	}
	terms := s.TermsIndex()
	if len(terms) != 1 || terms[0] != "QoQFP" {
		t.Errorf("TermsIndex = %v", terms)
	}
}
