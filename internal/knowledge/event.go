package knowledge

import "fmt"

// This file is the persistence surface of the knowledge set: full-fidelity
// change events (replayed one at a time by ApplyEvent — the write-ahead-log
// half of internal/kstore) and the State snapshot form (the compaction
// half). Together they satisfy the invariant the store's recovery tests
// pin down: for any set built through the mutators,
//
//	FromState(s.State())            == s   (content, history, checkpoints)
//	replay(NewSet(), s.History())   == s   (event-for-event)
//	FromState(snap) + replay(tail)  == s   (snapshot + WAL tail)

// ApplyEvent replays one audit event against the set, reproducing both the
// mutation and the history record exactly as the original operation wrote
// them. Events must be applied in order: ev.Seq must be exactly
// LastSeq()+1, so gaps in a recovered log are detected rather than papered
// over. Unlike the mutators, ApplyEvent never re-stamps provenance or
// assigns IDs — the event payload is authoritative.
func (s *Set) ApplyEvent(ev ChangeEvent) error {
	if ev.Seq != s.nextSeq+1 {
		return fmt.Errorf("replay gap: event seq %d after seq %d", ev.Seq, s.nextSeq)
	}
	if err := s.applyEventMutation(ev); err != nil {
		return fmt.Errorf("replaying event seq %d (%s %s %s): %w", ev.Seq, ev.Op, ev.Kind, ev.EntityID, err)
	}
	s.history = append(s.history, ev)
	s.nextSeq = ev.Seq
	s.version = ev.Version
	return nil
}

func (s *Set) applyEventMutation(ev ChangeEvent) error {
	switch ev.Op {
	case OpInsert:
		switch ev.Kind {
		case ExampleEntity:
			if ev.Example == nil {
				return fmt.Errorf("insert event has no example payload")
			}
			if _, exists := s.examples[ev.Example.ID]; exists {
				return fmt.Errorf("example %s already exists", ev.Example.ID)
			}
			c := ev.Example.clone()
			s.examples[c.ID] = c
			s.exampleIDs = append(s.exampleIDs, c.ID)
			return nil
		case InstructionEntity:
			if ev.Instruction == nil {
				return fmt.Errorf("insert event has no instruction payload")
			}
			if _, exists := s.instructions[ev.Instruction.ID]; exists {
				return fmt.Errorf("instruction %s already exists", ev.Instruction.ID)
			}
			c := ev.Instruction.clone()
			s.instructions[c.ID] = c
			s.instrIDs = append(s.instrIDs, c.ID)
			return nil
		case IntentEntity:
			if ev.Intent == nil {
				return fmt.Errorf("insert event has no intent payload")
			}
			c := ev.Intent.clone()
			if _, ok := s.intents[c.ID]; !ok {
				s.intentIDs = append(s.intentIDs, c.ID)
			}
			s.intents[c.ID] = c
			return nil
		case DirectiveEntity:
			s.directives = append(s.directives, ev.Directive)
			return nil
		}
	case OpUpdate:
		switch ev.Kind {
		case ExampleEntity:
			if ev.Example == nil {
				return fmt.Errorf("update event has no example payload")
			}
			if _, exists := s.examples[ev.Example.ID]; !exists {
				return fmt.Errorf("example %s does not exist", ev.Example.ID)
			}
			s.examples[ev.Example.ID] = ev.Example.clone()
			return nil
		case InstructionEntity:
			if ev.Instruction == nil {
				return fmt.Errorf("update event has no instruction payload")
			}
			if _, exists := s.instructions[ev.Instruction.ID]; !exists {
				return fmt.Errorf("instruction %s does not exist", ev.Instruction.ID)
			}
			s.instructions[ev.Instruction.ID] = ev.Instruction.clone()
			return nil
		}
	case OpDelete:
		switch ev.Kind {
		case ExampleEntity:
			if _, exists := s.examples[ev.EntityID]; !exists {
				return fmt.Errorf("example %s does not exist", ev.EntityID)
			}
			delete(s.examples, ev.EntityID)
			s.exampleIDs = removeID(s.exampleIDs, ev.EntityID)
			return nil
		case InstructionEntity:
			if _, exists := s.instructions[ev.EntityID]; !exists {
				return fmt.Errorf("instruction %s does not exist", ev.EntityID)
			}
			delete(s.instructions, ev.EntityID)
			s.instrIDs = removeID(s.instrIDs, ev.EntityID)
			return nil
		}
	case OpCheckpoint:
		// At replay time the set's contents equal the original pre-checkpoint
		// state (events are applied in order), so snapshotting here recreates
		// the checkpoint exactly. s.version is still the pre-event version,
		// matching Checkpoint()'s pre-log stamp.
		s.checkpoints = append(s.checkpoints, Checkpoint{
			ID:      ev.CheckpointID,
			Name:    ev.CheckpointName,
			Version: s.version,
			snap:    s.snapshot(),
		})
		// IDs are assigned monotonically, so the event's ID is also the
		// counter state after the original operation.
		s.nextCheckpointID = ev.CheckpointID
		s.pruneCheckpoints()
		return nil
	case OpRevert:
		for i := range s.checkpoints {
			if s.checkpoints[i].ID == ev.CheckpointID {
				s.restore(s.checkpoints[i].snap)
				return nil
			}
		}
		return fmt.Errorf("checkpoint %d does not exist", ev.CheckpointID)
	}
	return fmt.Errorf("unsupported event op %q kind %q", ev.Op, ev.Kind)
}

// Replay applies a sequence of events in order, failing fast on the first
// inconsistent event.
func (s *Set) Replay(events []ChangeEvent) error {
	for _, ev := range events {
		if err := s.ApplyEvent(ev); err != nil {
			return err
		}
	}
	return nil
}

// State is the full serializable form of a Set: contents, version,
// sequence counter, audit history and checkpoints. It is what kstore's
// compaction writes as snapshot-<version>.json. All slices are
// insertion-ordered, so FromState(State()) reproduces retrieval-index
// iteration order (and therefore generation output) exactly.
type State struct {
	Version          int               `json:"version"`
	NextSeq          int               `json:"next_seq"`
	NextCheckpointID int               `json:"next_checkpoint_id,omitempty"`
	Examples         []*Example        `json:"examples,omitempty"`
	Instructions     []*Instruction    `json:"instructions,omitempty"`
	Intents          []*Intent         `json:"intents,omitempty"`
	Directives       []string          `json:"directives,omitempty"`
	History          []ChangeEvent     `json:"history,omitempty"`
	Checkpoints      []CheckpointState `json:"checkpoints,omitempty"`
}

// CheckpointState is the serializable form of one checkpoint, content
// included (checkpoints must survive restarts for revert to keep working).
type CheckpointState struct {
	ID           int            `json:"id"`
	Name         string         `json:"name"`
	Version      int            `json:"version"`
	Examples     []*Example     `json:"examples,omitempty"`
	Instructions []*Instruction `json:"instructions,omitempty"`
	Intents      []*Intent      `json:"intents,omitempty"`
	Directives   []string       `json:"directives,omitempty"`
}

// State captures the set as a deep-copied State value.
func (s *Set) State() *State {
	st := &State{
		Version:          s.version,
		NextSeq:          s.nextSeq,
		NextCheckpointID: s.nextCheckpointID,
		Directives:       append([]string(nil), s.directives...),
		History:          append([]ChangeEvent(nil), s.history...),
	}
	sn := s.snapshot()
	st.Examples = sn.examples
	st.Instructions = sn.instructions
	st.Intents = sn.intents
	for _, cp := range s.checkpoints {
		cs := CheckpointState{ID: cp.ID, Name: cp.Name, Version: cp.Version, Directives: append([]string(nil), cp.snap.directives...)}
		c := cp.snap.clone()
		cs.Examples = c.examples
		cs.Instructions = c.instructions
		cs.Intents = c.intents
		st.Checkpoints = append(st.Checkpoints, cs)
	}
	return st
}

// FromState reconstructs a Set from its serialized form. The input is
// deep-copied, so the State can be reused or mutated afterwards.
func FromState(st *State) *Set {
	s := NewSet()
	s.restore(&snapshot{
		examples:     st.Examples,
		instructions: st.Instructions,
		intents:      st.Intents,
		directives:   st.Directives,
	})
	s.version = st.Version
	s.nextSeq = st.NextSeq
	s.nextCheckpointID = st.NextCheckpointID
	s.history = append([]ChangeEvent(nil), st.History...)
	for _, cs := range st.Checkpoints {
		sn := (&snapshot{
			examples:     cs.Examples,
			instructions: cs.Instructions,
			intents:      cs.Intents,
			directives:   cs.Directives,
		}).clone()
		s.checkpoints = append(s.checkpoints, Checkpoint{ID: cs.ID, Name: cs.Name, Version: cs.Version, snap: sn})
	}
	return s
}
