// Package generr defines the error taxonomy shared by GenEdit's layers.
// It sits below pipeline, eval and feedback (none of which may import each
// other) so that one cancellation sentinel threads through the whole stack
// and the public facade can re-export it.
package generr

import (
	"context"
	"errors"
)

// ErrCanceled reports that work stopped because the caller's context was
// canceled or its deadline expired mid-pipeline. Errors returned by the
// context-aware entry points wrap both ErrCanceled and the underlying
// context error, so errors.Is matches ErrCanceled as well as
// context.Canceled / context.DeadlineExceeded.
var ErrCanceled = errors.New("genedit: generation canceled")

type canceled struct{ cause error }

func (c *canceled) Error() string {
	return "genedit: generation canceled: " + c.cause.Error()
}

func (c *canceled) Unwrap() []error { return []error{ErrCanceled, c.cause} }

// Canceled wraps cause (normally a ctx.Err()) into the taxonomy's
// cancellation error. A nil cause defaults to context.Canceled.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &canceled{cause: cause}
}

// FromContext returns nil while ctx is live and a Canceled error once it is
// done. The pipeline calls this between operators so cancellation propagates
// promptly without every operator taking a context.
func FromContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return Canceled(err)
	}
	return nil
}
