// Package generr defines the error taxonomy shared by GenEdit's layers.
// It sits below pipeline, eval and feedback (none of which may import each
// other) so that one cancellation sentinel threads through the whole stack
// and the public facade can re-export it.
package generr

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrCanceled reports that work stopped because the caller's context was
// canceled or its deadline expired mid-pipeline. Errors returned by the
// context-aware entry points wrap both ErrCanceled and the underlying
// context error, so errors.Is matches ErrCanceled as well as
// context.Canceled / context.DeadlineExceeded.
var ErrCanceled = errors.New("genedit: generation canceled")

type canceled struct{ cause error }

func (c *canceled) Error() string {
	return "genedit: generation canceled: " + c.cause.Error()
}

func (c *canceled) Unwrap() []error { return []error{ErrCanceled, c.cause} }

// Canceled wraps cause (normally a ctx.Err()) into the taxonomy's
// cancellation error. A nil cause defaults to context.Canceled.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &canceled{cause: cause}
}

// FromContext returns nil while ctx is live and a Canceled error once it is
// done. The pipeline calls this between operators so cancellation propagates
// promptly without every operator taking a context.
func FromContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return Canceled(err)
	}
	return nil
}

// Overload sentinels. Admission control sheds work with one of these two
// classes; serving layers map them onto 429 (the tenant is over its budget —
// retrying after the hint will succeed) and 503 (the whole service is out of
// capacity — back off).
var (
	// ErrRateLimited reports that a tenant exhausted its token-bucket
	// budget. The request was never queued; retry after the hint.
	ErrRateLimited = errors.New("genedit: rate limited")
	// ErrOverloaded reports that the service shed the request: the request
	// queue is full, the request could not start before its deadline, or
	// the service is shutting down.
	ErrOverloaded = errors.New("genedit: overloaded")
)

// OverloadError is the concrete error behind ErrRateLimited / ErrOverloaded:
// it names the tenant, explains the shed decision, and carries the
// Retry-After hint the HTTP layer serializes.
type OverloadError struct {
	// Sentinel is ErrRateLimited or ErrOverloaded.
	Sentinel error
	// Tenant is the database whose request was shed ("" for service-wide
	// decisions such as shutdown).
	Tenant string
	// Reason is a one-clause human explanation ("token budget exhausted",
	// "queue full at depth 64", "cannot start before deadline").
	Reason string
	// RetryAfter estimates when a retry could succeed (0 = no estimate).
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	msg := e.Sentinel.Error()
	if e.Tenant != "" {
		msg += " [" + e.Tenant + "]"
	}
	if e.Reason != "" {
		msg += ": " + e.Reason
	}
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf(" (retry after %s)", e.RetryAfter.Round(time.Millisecond))
	}
	return msg
}

func (e *OverloadError) Unwrap() error { return e.Sentinel }

// RateLimited builds a tenant-over-budget shed error.
func RateLimited(tenant, reason string, retryAfter time.Duration) error {
	return &OverloadError{Sentinel: ErrRateLimited, Tenant: tenant, Reason: reason, RetryAfter: retryAfter}
}

// Overloaded builds a capacity shed error.
func Overloaded(tenant, reason string, retryAfter time.Duration) error {
	return &OverloadError{Sentinel: ErrOverloaded, Tenant: tenant, Reason: reason, RetryAfter: retryAfter}
}

// RetryAfterHint extracts the retry hint from an overload error chain.
// ok is false when err carries no OverloadError or no estimate.
func RetryAfterHint(err error) (d time.Duration, ok bool) {
	var oe *OverloadError
	if errors.As(err, &oe) && oe.RetryAfter > 0 {
		return oe.RetryAfter, true
	}
	return 0, false
}
