package kstore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"genedit/internal/knowledge"
)

// seedSet builds a small knowledge set through the mutators.
func seedSet(t *testing.T) *knowledge.Set {
	t.Helper()
	s := knowledge.NewSet()
	s.AddIntent(&knowledge.Intent{ID: "intent-001", Name: "financial performance"})
	if err := s.InsertExample(&knowledge.Example{
		ID: "ex-001", IntentIDs: []string{"intent-001"},
		NL: "Compute RPV as revenue over views", SQL: "REVENUE / NULLIF(VIEWS, 0)", Clause: "projection",
	}, "preprocessing", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.InsertInstruction(&knowledge.Instruction{
		ID: "ins-001", Text: "Apply a -1 multiplier for QoQFP", Terms: []string{"QoQFP"},
	}, "preprocessing", ""); err != nil {
		t.Fatal(err)
	}
	return s
}

// edit applies one distinguishable change per call.
func edit(t *testing.T, s *knowledge.Set, i int) {
	t.Helper()
	if err := s.InsertInstruction(&knowledge.Instruction{
		Text: "guideline " + strings.Repeat("x", i+1),
	}, "sme", "fb-001"); err != nil {
		t.Fatal(err)
	}
}

func mustOpen(t *testing.T, dir string, opts ...Option) *Store {
	t.Helper()
	st, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func assertSame(t *testing.T, got, want *knowledge.Set, context string) {
	t.Helper()
	if !reflect.DeepEqual(got.State(), want.State()) {
		t.Fatalf("%s: recovered set diverged", context)
	}
	gh, wh := got.History(), want.History()
	if len(gh) != len(wh) {
		t.Fatalf("%s: history %d events, want %d", context, len(gh), len(wh))
	}
	for i := range gh {
		if !reflect.DeepEqual(gh[i], wh[i]) {
			t.Fatalf("%s: history[%d] = %+v, want %+v", context, i, gh[i], wh[i])
		}
	}
}

func TestFreshStoreIsEmpty(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	if !st.Empty() {
		t.Error("fresh store should be empty")
	}
	if st.Recovered().Version() != 0 {
		t.Error("fresh store should recover an empty set")
	}
}

// TestCommitReopenRecovers is the core WAL property: commit, kill (close),
// reopen, and the recovered set matches the in-memory one event-for-event.
func TestCommitReopenRecovers(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	set := seedSet(t)
	if err := st.Commit(set); err != nil {
		t.Fatal(err)
	}
	edit(t, set, 0)
	edit(t, set, 1)
	if err := st.Commit(set); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2 := mustOpen(t, dir)
	if st2.Empty() {
		t.Fatal("store should not be empty after commits")
	}
	assertSame(t, st2.Recovered(), set, "pure WAL replay")
}

// TestSnapshotPlusReplayEquivalence compares the two recovery paths: pure
// WAL replay vs snapshot + WAL-tail replay must recover identical sets.
func TestSnapshotPlusReplayEquivalence(t *testing.T) {
	set := seedSet(t)

	// Path A: everything through the WAL.
	dirA := t.TempDir()
	stA := mustOpen(t, dirA)
	if err := stA.Commit(set); err != nil {
		t.Fatal(err)
	}

	// Path B: snapshot mid-stream, then WAL tail.
	dirB := t.TempDir()
	stB := mustOpen(t, dirB)
	if err := stB.Compact(set); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		edit(t, set, i)
	}
	if err := stA.Commit(set); err != nil {
		t.Fatal(err)
	}
	if err := stB.Commit(set); err != nil {
		t.Fatal(err)
	}
	stA.Close()
	stB.Close()

	recA := mustOpen(t, dirA)
	recB := mustOpen(t, dirB)
	if recA.SnapshotVersion() != 0 {
		t.Error("path A should have no snapshot")
	}
	if recB.SnapshotVersion() == 0 {
		t.Error("path B should have a snapshot")
	}
	setA, setB := recA.Recovered(), recB.Recovered()
	assertSame(t, setA, set, "pure replay")
	assertSame(t, setB, set, "snapshot+replay")
	assertSame(t, setA, setB, "replay vs snapshot+replay")
}

// TestTornTailTruncated simulates a crash mid-append: the final WAL record
// is cut short. Recovery must drop exactly that record and keep the rest.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, 7, 24} {
		dir := t.TempDir()
		st := mustOpen(t, dir)
		set := seedSet(t)
		if err := st.Commit(set); err != nil {
			t.Fatal(err)
		}
		before := set.CloneFull()
		edit(t, set, 0)
		if err := st.Commit(set); err != nil {
			t.Fatal(err)
		}
		st.Close()

		wal := filepath.Join(dir, walName)
		raw, err := os.ReadFile(wal)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(wal, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}

		st2 := mustOpen(t, dir)
		resumed := st2.Recovered()
		assertSame(t, resumed, before, "torn tail recovery")

		// The truncated log must accept new commits cleanly.
		edit(t, resumed, 5)
		if err := st2.Commit(resumed); err != nil {
			t.Fatal(err)
		}
		st2.Close()
		st3 := mustOpen(t, dir)
		assertSame(t, st3.Recovered(), resumed, "commit after torn-tail truncation")
	}
}

// TestCorruptionBeforeTailRefused: flipping bytes in a non-final record is
// unrecoverable corruption, not a torn tail, and Open must refuse it.
func TestCorruptionBeforeTailRefused(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	set := seedSet(t)
	if err := st.Commit(set); err != nil {
		t.Fatal(err)
	}
	st.Close()

	wal := filepath.Join(dir, walName)
	raw, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < 3 {
		t.Fatalf("want >= 2 WAL records, got %d", len(lines)-1)
	}
	// Corrupt the first record's CRC-covered payload.
	lines[0] = strings.Replace(lines[0], `"op":"insert"`, `"op":"INSERT"`, 1)
	if err := os.WriteFile(wal, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("Open with mid-log corruption = %v, want corrupt-WAL error", err)
	}
}

// TestCrashBetweenAppendAndCompact is the seeded crash-point test: the
// process dies after the WAL append but before compaction truncates the
// log (simulated by never calling Compact), and again after compaction
// with a stale WAL left behind (simulated by restoring the pre-compaction
// WAL bytes). Both recoveries must match the in-memory set.
func TestCrashBetweenAppendAndCompact(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	set := seedSet(t)
	if err := st.Commit(set); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		edit(t, set, i)
		if err := st.Commit(set); err != nil {
			t.Fatal(err)
		}
	}
	walBytes, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// Crash point 1: append done, compaction never ran.
	st.Close()
	rec1 := mustOpen(t, dir)
	assertSame(t, rec1.Recovered(), set, "crash after append, before compact")
	rec1.Close()

	// Crash point 2: compaction published the snapshot but died before the
	// WAL truncation became durable — snapshot and full WAL coexist, and
	// replay must skip the overlap instead of double-applying.
	st2 := mustOpen(t, dir)
	if err := st2.Compact(set); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if err := os.WriteFile(filepath.Join(dir, walName), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	rec2 := mustOpen(t, dir)
	assertSame(t, rec2.Recovered(), set, "crash between snapshot rename and WAL truncate")
}

// TestAutoCompaction: Commit compacts once the WAL crosses the threshold,
// and the recovered set stays exact.
func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, WithCompactEvery(4))
	set := seedSet(t)
	if err := st.Commit(set); err != nil { // 3 events -> no compact
		t.Fatal(err)
	}
	if st.SnapshotVersion() != 0 {
		t.Fatal("compaction should not have run yet")
	}
	edit(t, set, 0)
	if err := st.Commit(set); err != nil { // 4th event crosses threshold
		t.Fatal(err)
	}
	if st.SnapshotVersion() != set.Version() {
		t.Fatalf("snapshot version = %d, want %d", st.SnapshotVersion(), set.Version())
	}
	raw, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 {
		t.Errorf("WAL should be truncated after compaction, has %d bytes", len(raw))
	}
	st.Close()
	rec := mustOpen(t, dir)
	assertSame(t, rec.Recovered(), set, "post-auto-compaction recovery")
}

// TestSnapshotPruning keeps only the configured number of generations.
func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, WithKeepSnapshots(2))
	set := seedSet(t)
	for i := 0; i < 4; i++ {
		edit(t, set, i)
		if err := st.Compact(set); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(st.snapshotVersions()); got != 2 {
		t.Errorf("snapshots on disk = %d, want 2", got)
	}
}

// TestCorruptLatestSnapshotFallsBack: a rotted newest snapshot must not
// lose the store — recovery falls back to the previous generation plus
// whatever the WAL still holds.
func TestCorruptLatestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, WithKeepSnapshots(3))
	set := seedSet(t)
	if err := st.Compact(set); err != nil {
		t.Fatal(err)
	}
	edit(t, set, 0)
	if err := st.Compact(set); err != nil {
		t.Fatal(err)
	}
	versions := st.snapshotVersions()
	st.Close()
	latest := versions[len(versions)-1]
	if err := os.WriteFile(st.snapshotPath(latest), []byte("{ rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec := mustOpen(t, dir)
	// The older snapshot lacks the last edit, and the WAL was truncated by
	// compaction — recovery lands on the previous durable generation.
	if got, want := rec.Recovered().Version(), versions[len(versions)-2]; got != want {
		t.Errorf("fallback recovered version %d, want %d", got, want)
	}
}

// TestCommitRefusesDivergedHistory: two writers branching from the same
// persisted state cannot both land — the second writer's history no longer
// contains the durable log's last event, so its commit is refused instead
// of silently losing edits or splicing incompatible events into the log.
func TestCommitRefusesDivergedHistory(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	base := seedSet(t)
	if err := st.Commit(base); err != nil {
		t.Fatal(err)
	}

	forkA := base.CloneFull()
	if err := forkA.InsertInstruction(&knowledge.Instruction{Text: "writer A's edit"}, "a", "fb-a"); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(forkA); err != nil {
		t.Fatal(err)
	}

	// Fork B branched before A landed; same LastSeq, different history.
	forkB := base.CloneFull()
	if err := forkB.InsertInstruction(&knowledge.Instruction{Text: "writer B's edit"}, "b", "fb-b"); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(forkB); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Errorf("commit of equal-length fork = %v, want diverged error", err)
	}
	// A longer fork diverges too (its event at the persisted seq differs).
	if err := forkB.InsertInstruction(&knowledge.Instruction{Text: "writer B again"}, "b", "fb-b"); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(forkB); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Errorf("commit of longer fork = %v, want diverged error", err)
	}

	// The store remains usable for the canonical lineage, including across
	// a reopen (the lineage anchor must be rebuilt from recovery).
	if err := forkA.InsertInstruction(&knowledge.Instruction{Text: "writer A continues"}, "a", "fb-a2"); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(forkA); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2 := mustOpen(t, dir)
	rec := st2.Recovered()
	assertSame(t, rec, forkA, "canonical lineage after divergence refusals")
	if err := st2.Commit(forkB); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Errorf("post-reopen commit of fork = %v, want diverged error", err)
	}
}

func TestCommitBehindStoreFails(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	set := seedSet(t)
	if err := st.Commit(set); err != nil {
		t.Fatal(err)
	}
	stale := knowledge.NewSet()
	if err := st.Commit(stale); err == nil || !strings.Contains(err.Error(), "behind") {
		t.Errorf("committing a stale set = %v, want behind-store error", err)
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	st.Close()
	if err := st.Commit(seedSet(t)); err != ErrClosed {
		t.Errorf("Commit on closed store = %v, want ErrClosed", err)
	}
	if err := st.Compact(seedSet(t)); err != ErrClosed {
		t.Errorf("Compact on closed store = %v, want ErrClosed", err)
	}
}

// TestCommitIsIdempotentOnSeq: committing the same set twice writes the
// tail once.
func TestCommitIsIdempotentOnSeq(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	set := seedSet(t)
	if err := st.Commit(set); err != nil {
		t.Fatal(err)
	}
	raw1, _ := os.ReadFile(filepath.Join(dir, walName))
	if err := st.Commit(set); err != nil {
		t.Fatal(err)
	}
	raw2, _ := os.ReadFile(filepath.Join(dir, walName))
	if len(raw1) != len(raw2) {
		t.Error("re-committing an unchanged set must not grow the WAL")
	}
}
