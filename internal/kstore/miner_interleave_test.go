package kstore

import (
	"strings"
	"sync"
	"testing"

	"genedit/internal/knowledge"
)

// editAs applies one instruction insert under the given editor/feedback
// provenance (the miner commits as "miner", SMEs as "sme").
func editAs(t *testing.T, s *knowledge.Set, editor, feedbackID, text string) {
	t.Helper()
	if err := s.InsertInstruction(&knowledge.Instruction{Text: text}, editor, feedbackID); err != nil {
		t.Fatal(err)
	}
}

// TestLineageGuardInterleavedMinerSME drives the scenario the background
// miner introduces: two writers — an SME approval and an auto-mined merge —
// each branch from the same committed state. The WAL's lineage anchor must
// let the first committer win and refuse the second outright (fork-refusal),
// never splice the two histories; the loser rebuilds from the winning
// lineage and then commits cleanly. Sequential interleaving of the two
// editors on one lineage always works.
func TestLineageGuardInterleavedMinerSME(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	base := seedSet(t)
	if err := st.Commit(base); err != nil {
		t.Fatal(err)
	}

	// Both writers branch from the same committed state.
	smeBranch := base.CloneFull()
	editAs(t, smeBranch, "sme", "fb-001", "SME clarification")
	minerBranch := base.CloneFull()
	editAs(t, minerBranch, "miner", "miner-aaaa", "mined clarification")

	// SME lands first; the mined branch must be refused, not spliced.
	if err := st.Commit(smeBranch); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(minerBranch); err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("mined fork commit = %v, want diverged refusal", err)
	}

	// The miner rebuilds its candidate on the winning lineage (what
	// Solver.Approve does by cloning the live set) and commits cleanly.
	rebuilt := smeBranch.CloneFull()
	editAs(t, rebuilt, "miner", "miner-aaaa", "mined clarification")
	if err := st.Commit(rebuilt); err != nil {
		t.Fatalf("rebuilt mined merge refused: %v", err)
	}

	// Sequential interleaving on one lineage: sme, miner, sme, miner.
	live := rebuilt
	for i, editor := range []string{"sme", "miner", "sme", "miner"} {
		next := live.CloneFull()
		editAs(t, next, editor, "it-"+editor, "interleaved edit "+strings.Repeat("i", i+1))
		if err := st.Commit(next); err != nil {
			t.Fatalf("interleaved %s commit %d: %v", editor, i, err)
		}
		live = next
	}

	// Recovery preserves the interleaved provenance exactly.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, st.Dir())
	recovered := st2.Recovered()
	assertSame(t, recovered, live, "recovered interleaved lineage")
	editors := map[string]int{}
	for _, ev := range recovered.History() {
		editors[ev.Editor]++
	}
	if editors["miner"] < 3 || editors["sme"] < 3 {
		t.Errorf("recovered editor mix = %v, want both miner and sme merges", editors)
	}
}

// TestLineageGuardConcurrentMinerSME races a mined merge against an SME
// merge branched from the same state: exactly one must win the WAL append,
// the other must get the divergence refusal.
func TestLineageGuardConcurrentMinerSME(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	base := seedSet(t)
	if err := st.Commit(base); err != nil {
		t.Fatal(err)
	}

	smeBranch := base.CloneFull()
	editAs(t, smeBranch, "sme", "fb-009", "concurrent SME edit")
	minerBranch := base.CloneFull()
	editAs(t, minerBranch, "miner", "miner-bbbb", "concurrent mined edit")

	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, set := range []*knowledge.Set{smeBranch, minerBranch} {
		wg.Add(1)
		go func(i int, set *knowledge.Set) {
			defer wg.Done()
			errs[i] = st.Commit(set)
		}(i, set)
	}
	wg.Wait()

	wins, forks := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			wins++
		case strings.Contains(err.Error(), "diverged"):
			forks++
		default:
			t.Fatalf("unexpected commit error: %v", err)
		}
	}
	if wins != 1 || forks != 1 {
		t.Fatalf("wins=%d forks=%d, want exactly one winner and one refusal", wins, forks)
	}
}
