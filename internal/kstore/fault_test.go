package kstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"genedit/internal/knowledge"
)

// faultWorkload drives a deterministic commit/compact mix against a store
// opened through fs. Errors are tolerated (they are the point); the
// returned ackedSeq is the highest sequence the store acknowledged as
// durable, and full is the in-memory set that was being committed (a
// superset of everything that could legally be on disk).
func faultWorkload(fs FS, dir string, edits int) (full *knowledge.Set, ackedSeq int, err error) {
	st, err := Open(dir, WithFS(fs), WithCompactEvery(3))
	if err != nil {
		return nil, 0, err
	}
	defer st.Close()
	set := st.Recovered()
	if set == nil {
		return nil, 0, errors.New("no recovered set")
	}
	ackedSeq = set.LastSeq()
	for i := 0; i < edits; i++ {
		if insErr := set.InsertInstruction(&knowledge.Instruction{
			Text: fmt.Sprintf("fault-workload edit %d", i),
		}, "sme", fmt.Sprintf("fb-%03d", i)); insErr != nil {
			return set, ackedSeq, insErr
		}
		var opErr error
		if i%4 == 3 {
			opErr = st.Compact(set)
		} else {
			opErr = st.Commit(set)
		}
		if opErr == nil {
			ackedSeq = set.LastSeq()
		}
		// Keep committing after failures: a failed append must leave the
		// store either cleanly rolled back (later commits append the
		// backlog) or failed-fast — never silently corrupting.
	}
	return set, ackedSeq, nil
}

// assertRecovery reopens dir through a clean filesystem — the disk state a
// reboot sees — and asserts the durability contract: every acknowledged
// event recovered, the recovered history an exact prefix of the writer's
// in-memory history, and the store still able to accept and persist new
// commits.
func assertRecovery(t *testing.T, dir string, full *knowledge.Set, ackedSeq int, context string) {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("%s: recovery open failed: %v", context, err)
	}
	defer st.Close()
	rec := st.Recovered()

	if rec.LastSeq() < ackedSeq {
		t.Fatalf("%s: EVENT LOSS — acknowledged seq %d, recovered only %d", context, ackedSeq, rec.LastSeq())
	}
	if rec.LastSeq() > full.LastSeq() {
		t.Fatalf("%s: recovered seq %d beyond everything written (%d)", context, rec.LastSeq(), full.LastSeq())
	}
	fullHist, recHist := full.History(), rec.History()
	if len(recHist) != rec.LastSeq() {
		t.Fatalf("%s: recovered history has %d events for seq %d", context, len(recHist), rec.LastSeq())
	}
	for i, ev := range recHist {
		got, _ := json.Marshal(ev)
		want, _ := json.Marshal(fullHist[i])
		if string(got) != string(want) {
			t.Fatalf("%s: LINEAGE CORRUPTION at seq %d:\n got %s\nwant %s", context, i+1, got, want)
		}
	}

	// The recovered set must replay to itself: state and log agree.
	replayed := knowledge.NewSet()
	for _, ev := range recHist {
		if err := replayed.ApplyEvent(ev); err != nil {
			t.Fatalf("%s: recovered history does not replay: %v", context, err)
		}
	}
	gotState, _ := json.Marshal(replayed.State())
	wantState, _ := json.Marshal(rec.State())
	if string(gotState) != string(wantState) {
		t.Fatalf("%s: recovered state diverges from its own history replay", context)
	}

	// Convergence: the survivor must accept new work and persist it.
	if err := rec.InsertInstruction(&knowledge.Instruction{Text: "post-recovery edit"}, "sme", "fb-post"); err != nil {
		t.Fatalf("%s: post-recovery mutation: %v", context, err)
	}
	if err := st.Commit(rec); err != nil {
		t.Fatalf("%s: post-recovery commit: %v", context, err)
	}
}

// TestFaultSweepExhaustive measures the filesystem-operation space of a
// fixed commit/compact workload, then re-runs it once per (operation,
// fault-kind) pair with that single fault injected — exhaustively covering
// every fsync failure, short write, torn rename and crash point the
// workload can hit — and asserts full recovery after each.
func TestFaultSweepExhaustive(t *testing.T) {
	// Measure the op space fault-free.
	probeDir := t.TempDir()
	probe := NewFaultFS(OSFS)
	if _, _, err := faultWorkload(probe, probeDir, 10); err != nil {
		t.Fatalf("fault-free probe failed: %v", err)
	}
	ops := probe.Ops()
	if ops < 20 {
		t.Fatalf("workload issued only %d ops; seam is not being exercised", ops)
	}

	for _, kind := range []Fault{FaultErr, FaultPartial, FaultCrash} {
		for op := int64(0); op < ops; op++ {
			dir := t.TempDir()
			ffs := NewFaultFS(OSFS)
			ffs.PlanFault(op, kind)
			full, acked, err := faultWorkload(ffs, dir, 10)
			context := fmt.Sprintf("fault %s at op %d", kind, op)
			if full == nil {
				// The fault fired inside Open before a set existed; the
				// store must still reopen cleanly as empty-or-prior state.
				if err == nil {
					t.Fatalf("%s: Open returned neither set nor error", context)
				}
				full, acked = knowledge.NewSet(), 0
			}
			if ffs.Injected() == 0 {
				t.Fatalf("%s: fault never fired (op space shrank?)", context)
			}
			assertRecovery(t, dir, full, acked, context)
		}
	}
}

// TestCrashFuzz is the randomized counterpart to the exhaustive sweep:
// each iteration evolves a knowledge set through a random mutation mix
// (inserts, updates, deletes, directives, checkpoints) interleaved with
// commits and compactions, with 1–3 random faults — including cascading
// crashes — planted at random operation indices. After every iteration the
// store must recover all acknowledged events with an uncorrupted lineage.
// KSTORE_FUZZ_ITERS overrides the iteration count (CI pins it ≥ 1000).
func TestCrashFuzz(t *testing.T) {
	iters := 1000
	if v := os.Getenv("KSTORE_FUZZ_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad KSTORE_FUZZ_ITERS %q: %v", v, err)
		}
		iters = n
	}
	if testing.Short() {
		iters = 50
	}
	for i := 0; i < iters; i++ {
		crashFuzzIteration(t, int64(i))
	}
}

func crashFuzzIteration(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()

	// Phase 1: an acknowledged durable base through a clean filesystem.
	base, err := Open(dir, WithCompactEvery(3))
	if err != nil {
		t.Fatalf("seed %d: base open: %v", seed, err)
	}
	set := base.Recovered()
	if err := set.InsertExample(&knowledge.Example{
		NL: "compute revenue per view", SQL: "REVENUE / NULLIF(VIEWS, 0)", Clause: "projection",
	}, "preprocessing", ""); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if err := base.Commit(set); err != nil {
		t.Fatalf("seed %d: base commit: %v", seed, err)
	}
	if err := base.Close(); err != nil {
		t.Fatalf("seed %d: base close: %v", seed, err)
	}
	acked := set.LastSeq()

	// Phase 2: reopen through a faulty filesystem and keep mutating.
	ffs := NewFaultFS(OSFS)
	for n := 1 + rng.Intn(3); n > 0; n-- {
		ffs.PlanFault(int64(rng.Intn(250)), Fault(rng.Intn(3)))
	}
	if rng.Intn(4) == 0 {
		ffs.PlanDelay(int64(rng.Intn(100)), time.Millisecond) // stalling disk
	}
	st, err := Open(dir, WithFS(ffs), WithCompactEvery(1+rng.Intn(4)))
	if err != nil {
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("seed %d: faulted open: %v", seed, err)
		}
		assertRecovery(t, dir, set, acked, fmt.Sprintf("seed %d (open faulted)", seed))
		return
	}
	if recovered := st.Recovered(); recovered != nil {
		set = recovered
		acked = set.LastSeq()
	}
	steps := 5 + rng.Intn(15)
	for i := 0; i < steps; i++ {
		mutate(t, rng, set, seed, i)
		var opErr error
		if rng.Intn(5) == 0 {
			opErr = st.Compact(set)
		} else {
			opErr = st.Commit(set)
		}
		if opErr == nil {
			acked = set.LastSeq()
		} else if !errors.Is(opErr, ErrInjected) && !isSecondary(opErr) {
			t.Fatalf("seed %d step %d: non-injected failure: %v", seed, i, opErr)
		}
	}
	st.Close()

	assertRecovery(t, dir, set, acked, fmt.Sprintf("seed %d", seed))
}

// isSecondary matches errors caused by an earlier injected fault rather
// than injected directly: a store that failed-fast after a broken rollback
// refuses writes with its own wrapped error.
func isSecondary(err error) bool {
	return err != nil && (errors.Is(err, ErrClosed) ||
		strings.Contains(err.Error(), "store is failed") ||
		strings.Contains(err.Error(), "file already closed"))
}

// mutate applies one random knowledge mutation.
func mutate(t *testing.T, rng *rand.Rand, set *knowledge.Set, seed int64, i int) {
	t.Helper()
	tag := fmt.Sprintf("s%d-i%d", seed, i)
	switch rng.Intn(6) {
	case 0:
		// Explicit ID: the auto-ID counter is count-derived and collides
		// after deletes.
		if err := set.InsertExample(&knowledge.Example{
			ID: "ex-" + tag,
			NL: "question " + tag, SQL: "SELECT " + tag, Clause: "projection",
		}, "sme", tag); err != nil {
			t.Fatalf("insert example: %v", err)
		}
	case 1:
		if err := set.InsertInstruction(&knowledge.Instruction{Text: "rule " + tag}, "sme", tag); err != nil {
			t.Fatalf("insert instruction: %v", err)
		}
	case 2:
		set.AddDirective("directive "+tag, "sme", tag)
	case 3:
		if exs := set.Examples(); len(exs) > 0 {
			ex := exs[rng.Intn(len(exs))]
			ex.NL = ex.NL + " (edited " + tag + ")"
			if err := set.UpdateExample(ex, "sme", tag); err != nil {
				t.Fatalf("update example: %v", err)
			}
		} else {
			set.AddDirective("directive "+tag, "sme", tag)
		}
	case 4:
		if exs := set.Examples(); len(exs) > 1 {
			if err := set.DeleteExample(exs[rng.Intn(len(exs))].ID, "sme", tag); err != nil {
				t.Fatalf("delete example: %v", err)
			}
		} else {
			set.AddDirective("directive "+tag, "sme", tag)
		}
	case 5:
		set.Checkpoint("cp-" + tag)
	}
}
