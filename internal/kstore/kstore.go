// Package kstore is the durable, crash-safe persistence layer for a
// knowledge set (one store per database). GenEdit's continuous-improvement
// claim (§4) only holds in production if approved SME edits survive
// restarts; kstore gives the serving layer that durability with a classic
// WAL + snapshot design:
//
//   - wal.log — an append-only JSON-lines write-ahead log. Each line frames
//     one knowledge.ChangeEvent with a CRC32 of its serialized form. Commit
//     appends the set's new history tail and fsyncs before returning, so an
//     acknowledged approval is on disk.
//   - snapshot-<version>.json — a full knowledge.State, written by
//     compaction via temp file + atomic rename (+ directory fsync), after
//     which the WAL is truncated. Older snapshots are kept as fallbacks and
//     pruned to a small window.
//
// Open recovers by loading the newest readable snapshot and replaying the
// WAL tail through knowledge.ApplyEvent. A torn final WAL record (the
// tail a crash mid-append leaves behind) is detected by CRC/parse failure
// and truncated; corruption before the tail is refused. Because events are
// full-fidelity and insertion-ordered, the recovered set is event-for-event
// identical to the pre-crash one — same contents, version, audit history
// and checkpoints — so a rebuilt engine generates bit-identical SQL.
package kstore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"genedit/internal/knowledge"
)

const walName = "wal.log"

// DefaultCompactEvery is the WAL-record count that triggers automatic
// compaction on Commit.
const DefaultCompactEvery = 512

// DefaultKeepSnapshots is how many snapshot generations survive pruning.
const DefaultKeepSnapshots = 2

// ErrClosed reports an operation on a closed store.
var ErrClosed = errors.New("kstore: store is closed")

// Option configures a Store.
type Option func(*Store)

// WithCompactEvery sets the WAL-record threshold for automatic compaction
// during Commit (default DefaultCompactEvery; 0 disables auto-compaction).
func WithCompactEvery(n int) Option { return func(s *Store) { s.compactEvery = n } }

// WithKeepSnapshots sets how many snapshot generations to retain (minimum
// 1; default DefaultKeepSnapshots).
func WithKeepSnapshots(n int) Option {
	return func(s *Store) {
		if n < 1 {
			n = 1
		}
		s.keepSnapshots = n
	}
}

// WithFS substitutes the filesystem the store writes through (default
// OSFS). Durability tests pass a FaultFS to inject failures at exact
// operation boundaries.
func WithFS(fs FS) Option { return func(s *Store) { s.fs = fs } }

// Store is the durable backing of one database's knowledge set.
//
// Concurrency contract: all methods are safe for concurrent use; Commit and
// Compact serialize on an internal mutex. The Store never retains the sets
// it is given — callers keep ownership of their (immutable, hot-swapped)
// live sets and pass the latest generation to Commit.
type Store struct {
	dir string
	fs  FS

	mu            sync.Mutex
	wal           File
	walRecords    int
	walSize       int64
	lastSeq       int
	snapVersion   int
	compactEvery  int
	keepSnapshots int
	recovered     *knowledge.Set
	closed        bool
	// lastEvent is the serialized form of the event at lastSeq — the
	// lineage anchor. A Commit whose set does not contain this exact event
	// at that seq has forked from the durable history and is refused.
	lastEvent []byte
	// broken is set when the WAL could not be restored to a consistent
	// state after a failed append; all further writes are refused.
	broken error
	// compactErr remembers the last automatic-compaction failure (commits
	// themselves stayed durable); cleared on the next success.
	compactErr error
	// metrics holds the store's instruments (WithMetrics); the zero value
	// is a no-op.
	metrics storeMetrics
}

// walRecord frames one event on a WAL line. The CRC covers the serialized
// event bytes, catching both torn writes and bit rot.
type walRecord struct {
	CRC   uint32          `json:"crc"`
	Event json.RawMessage `json:"event"`
}

// Open opens (creating if needed) the store rooted at dir and recovers its
// knowledge set: newest readable snapshot + WAL tail replay. A torn final
// WAL record is truncated away; earlier corruption is an error.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{
		dir:           dir,
		fs:            OSFS,
		compactEvery:  DefaultCompactEvery,
		keepSnapshots: DefaultKeepSnapshots,
	}
	for _, opt := range opts {
		opt(s)
	}
	if err := s.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kstore: creating %s: %w", dir, err)
	}

	set, snapVersion, err := s.loadLatestSnapshot()
	if err != nil {
		return nil, err
	}
	s.snapVersion = snapVersion

	events, kept, err := s.recoverWAL()
	if err != nil {
		return nil, err
	}
	for _, ev := range events {
		if ev.Seq <= set.LastSeq() {
			// Already contained in the snapshot: a crash between snapshot
			// rename and WAL truncation leaves this overlap behind.
			continue
		}
		if err := set.ApplyEvent(ev); err != nil {
			return nil, fmt.Errorf("kstore: WAL replay: %w", err)
		}
	}
	s.walRecords = kept
	s.lastSeq = set.LastSeq()
	s.recovered = set
	if s.lastSeq > 0 {
		tail := set.HistorySince(s.lastSeq - 1)
		if len(tail) == 0 {
			// A snapshot whose next_seq exceeds its history is semantically
			// inconsistent; refuse it cleanly rather than panicking.
			return nil, fmt.Errorf("kstore: recovered set has no event at seq %d (inconsistent snapshot)", s.lastSeq)
		}
		if s.lastEvent, err = json.Marshal(tail[0]); err != nil {
			return nil, fmt.Errorf("kstore: fingerprinting recovered history: %w", err)
		}
	}

	wal, err := s.fs.OpenFile(s.walPath(), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kstore: opening WAL: %w", err)
	}
	s.wal = wal
	// The size must be exact — rollbackWAL truncates to this boundary after
	// a failed append, so guessing low would discard acknowledged records.
	fi, err := wal.Stat()
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("kstore: sizing WAL: %w", err)
	}
	s.walSize = fi.Size()
	return s, nil
}

// Recovered returns the knowledge set reconstructed at Open — an empty set
// for a fresh store — and transfers ownership: the store drops its
// reference so superseded knowledge generations can be collected, and
// subsequent calls return nil. The caller serves/mutates the set under its
// own regime.
func (s *Store) Recovered() *knowledge.Set {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.recovered
	s.recovered = nil
	return set
}

// Empty reports whether the store held no persisted state at Open — the
// signal for the service to seed-build the knowledge set.
func (s *Store) Empty() bool { return s.lastSeq == 0 }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// LastSeq reports the highest event sequence durably persisted.
func (s *Store) LastSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// SnapshotVersion reports the knowledge version of the newest snapshot (0
// when none has been written).
func (s *Store) SnapshotVersion() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapVersion
}

// Commit appends the set's history events newer than the last persisted
// sequence to the WAL and fsyncs before returning — the durability point
// for an approved change. When the WAL grows past the compaction threshold
// the set is also snapshotted and the log truncated.
func (s *Store) Commit(set *knowledge.Set) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.appendLocked(set); err != nil {
		return err
	}
	if s.compactEvery > 0 && s.walRecords >= s.compactEvery {
		// The append above already fsynced — the commit IS durable. A
		// compaction failure here must not fail the commit (the caller
		// would report an approval as failed that a restart resurrects,
		// and its in-memory state would fall behind the log, wedging every
		// later commit on the lineage check). Compaction is maintenance:
		// remember the error and retry on the next commit, since
		// walRecords stays over the threshold.
		if err := s.compactLocked(set); err != nil {
			s.compactErr = err
		} else {
			s.compactErr = nil
		}
	}
	return nil
}

// CompactionErr reports the most recent automatic-compaction failure, nil
// when the last attempt succeeded. Commits stay durable regardless; this
// is an operational signal that the WAL is not being truncated.
func (s *Store) CompactionErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactErr
}

// Failed reports whether the store has refused further writes: set when a
// failed WAL append could not be rolled back to the last durable boundary,
// so accepting more commits could corrupt the log beyond recovery. nil
// means the store is healthy. Unlike CompactionErr this is terminal — the
// serving layer's readiness probe treats a failed store as not-ready.
func (s *Store) Failed() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.broken
}

// appendLocked writes the set's unpersisted history tail to the WAL and
// fsyncs. Caller holds s.mu.
func (s *Store) appendLocked(set *knowledge.Set) error {
	if s.broken != nil {
		return fmt.Errorf("kstore: store is failed: %w", s.broken)
	}
	if set.LastSeq() < s.lastSeq {
		return fmt.Errorf("kstore: set at seq %d is behind the store (seq %d)", set.LastSeq(), s.lastSeq)
	}
	// Lineage check: the committing set must contain the exact event the
	// store persisted last at that seq. A set whose history forked from
	// the durable log (e.g. a second solver that branched before another
	// writer's merge landed) is refused instead of silently losing its
	// edits or splicing incompatible events into the log.
	if s.lastSeq > 0 {
		tail := set.HistorySince(s.lastSeq - 1)
		if len(tail) == 0 {
			return fmt.Errorf("kstore: set has no event at persisted seq %d", s.lastSeq)
		}
		anchor, err := json.Marshal(tail[0])
		if err != nil {
			return fmt.Errorf("kstore: encoding lineage anchor: %w", err)
		}
		if string(anchor) != string(s.lastEvent) {
			return fmt.Errorf("kstore: set history diverged from the durable log at seq %d (another writer committed first; rebuild from the current live set)", s.lastSeq)
		}
	}
	events := set.HistorySince(s.lastSeq)
	if len(events) == 0 {
		return nil
	}
	appendStart := time.Now()
	var buf, lastRaw []byte
	for _, ev := range events {
		raw, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("kstore: encoding event seq %d: %w", ev.Seq, err)
		}
		line, err := json.Marshal(walRecord{CRC: crc32.ChecksumIEEE(raw), Event: raw})
		if err != nil {
			return err
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
		lastRaw = raw
	}
	if _, err := s.wal.Write(buf); err != nil {
		// A partial write (ENOSPC, I/O error) leaves residue that a later
		// successful append would seal into the middle of the log; roll the
		// file back to the last durable boundary so the store stays usable.
		s.rollbackWAL()
		return fmt.Errorf("kstore: appending WAL: %w", err)
	}
	syncStart := time.Now()
	if err := s.wal.Sync(); err != nil {
		// The write may or may not have reached disk; it was never
		// acknowledged, so restoring the pre-append boundary is safe.
		s.rollbackWAL()
		return fmt.Errorf("kstore: fsync WAL: %w", err)
	}
	done := time.Now()
	s.metrics.fsyncSec.Observe(done.Sub(syncStart).Seconds())
	s.metrics.appendSec.Observe(done.Sub(appendStart).Seconds())
	s.lastSeq = set.LastSeq()
	s.walRecords += len(events)
	s.walSize += int64(len(buf))
	s.lastEvent = lastRaw
	s.metrics.walRecords.Set(float64(s.walRecords))
	return nil
}

// rollbackWAL truncates the log back to the last acknowledged boundary
// after a failed append. If even that fails, the store is marked failed:
// accepting further commits could corrupt the log beyond recovery.
func (s *Store) rollbackWAL() {
	if err := s.wal.Truncate(s.walSize); err != nil {
		s.broken = fmt.Errorf("WAL rollback to %d bytes failed: %w", s.walSize, err)
		s.metrics.unhealthy.Set(1)
	}
}

// Compact writes a full versioned snapshot of the set and truncates the
// WAL. The snapshot lands via temp file + atomic rename, so a crash at any
// point leaves either the old or the new snapshot readable, never a
// partial one; the WAL is truncated only after the rename is durable.
func (s *Store) Compact(set *knowledge.Set) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Make sure every event is in the log first, so a crash mid-compaction
	// still recovers the full state from snapshot+WAL.
	if err := s.appendLocked(set); err != nil {
		return err
	}
	return s.compactLocked(set)
}

// compactLocked wraps the compaction work with its instrumentation:
// successful compactions count and report their duration, failures count
// separately (the caller decides whether a failure is fatal — auto-compaction
// during Commit retries on the next commit).
func (s *Store) compactLocked(set *knowledge.Set) error {
	start := time.Now()
	if err := s.doCompactLocked(set); err != nil {
		s.metrics.compactErrs.Inc()
		return err
	}
	s.metrics.compactions.Inc()
	s.metrics.compactSec.Observe(time.Since(start).Seconds())
	return nil
}

func (s *Store) doCompactLocked(set *knowledge.Set) error {
	version := set.Version()
	tmp, err := s.fs.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("kstore: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(set.State()); err != nil {
		tmp.Close()
		s.fs.Remove(tmpName)
		return fmt.Errorf("kstore: encoding snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		s.fs.Remove(tmpName)
		return fmt.Errorf("kstore: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		s.fs.Remove(tmpName)
		return err
	}
	final := s.snapshotPath(version)
	if err := s.fs.Rename(tmpName, final); err != nil {
		s.fs.Remove(tmpName)
		return fmt.Errorf("kstore: publishing snapshot: %w", err)
	}
	if err := s.syncDir(); err != nil {
		return err
	}
	// The snapshot is durable; the WAL's contents are now redundant.
	if err := s.truncateWAL(); err != nil {
		return err
	}
	s.snapVersion = version
	s.lastSeq = set.LastSeq()
	s.pruneSnapshots()
	return nil
}

// truncateWAL resets the log after a successful compaction.
func (s *Store) truncateWAL() error {
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			return err
		}
	}
	// O_APPEND is load-bearing: rollbackWAL may shrink the file after a
	// failed append, and an append-mode handle repositions to the new end.
	// A plain O_WRONLY handle would keep its old offset and zero-fill the
	// gap on the next write, corrupting the middle of the log.
	wal, err := s.fs.OpenFile(s.walPath(), os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("kstore: truncating WAL: %w", err)
	}
	if err := wal.Sync(); err != nil {
		wal.Close()
		return err
	}
	s.wal = wal
	s.walRecords = 0
	s.walSize = 0
	s.metrics.walRecords.Set(0)
	return nil
}

// pruneSnapshots deletes all but the newest keepSnapshots snapshot files.
// Best-effort: pruning failures leave extra fallbacks behind, never lose
// data.
func (s *Store) pruneSnapshots() {
	versions := s.snapshotVersions()
	if len(versions) <= s.keepSnapshots {
		return
	}
	for _, v := range versions[:len(versions)-s.keepSnapshots] {
		s.fs.Remove(s.snapshotPath(v))
	}
}

// Close releases the WAL handle. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

func (s *Store) walPath() string { return filepath.Join(s.dir, walName) }

func (s *Store) snapshotPath(version int) string {
	return filepath.Join(s.dir, fmt.Sprintf("snapshot-%010d.json", version))
}

// snapshotVersions lists on-disk snapshot versions, ascending.
func (s *Store) snapshotVersions() []int {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snapshot-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		var v int
		if _, err := fmt.Sscanf(name, "snapshot-%d.json", &v); err == nil {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// loadLatestSnapshot loads the newest readable snapshot, falling back to
// older generations if the newest is corrupt (e.g. bit rot — atomic rename
// already rules out partial writes). Returns an empty set when no snapshot
// is usable.
func (s *Store) loadLatestSnapshot() (*knowledge.Set, int, error) {
	versions := s.snapshotVersions()
	for i := len(versions) - 1; i >= 0; i-- {
		raw, err := s.fs.ReadFile(s.snapshotPath(versions[i]))
		if err != nil {
			continue
		}
		var st knowledge.State
		if err := json.Unmarshal(raw, &st); err != nil {
			continue
		}
		return knowledge.FromState(&st), versions[i], nil
	}
	return knowledge.NewSet(), 0, nil
}

// recoverWAL reads the log, returning its decoded events and record count.
// A torn final record is truncated from the file; corruption followed by
// further data is refused as unrecoverable.
func (s *Store) recoverWAL() ([]knowledge.ChangeEvent, int, error) {
	f, err := s.fs.Open(s.walPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("kstore: opening WAL: %w", err)
	}
	defer f.Close()

	var (
		events  []knowledge.ChangeEvent
		goodEnd int64
		r       = bufio.NewReader(f)
	)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) == 0 && errors.Is(err, io.EOF) {
			break
		}
		torn := errors.Is(err, io.EOF) // final line without newline
		if err != nil && !torn {
			return nil, 0, fmt.Errorf("kstore: reading WAL: %w", err)
		}
		ev, decErr := decodeWALLine(line)
		if decErr != nil || torn {
			// Only acceptable as the very tail of the log.
			if rest, _ := io.ReadAll(r); len(strings.TrimSpace(string(rest))) > 0 {
				return nil, 0, fmt.Errorf("kstore: corrupt WAL record before tail: %v", decErr)
			}
			if err := s.fs.Truncate(s.walPath(), goodEnd); err != nil {
				return nil, 0, fmt.Errorf("kstore: truncating torn WAL tail: %w", err)
			}
			break
		}
		events = append(events, ev)
		goodEnd += int64(len(line))
	}
	return events, len(events), nil
}

// decodeWALLine parses and CRC-checks one WAL line.
func decodeWALLine(line []byte) (knowledge.ChangeEvent, error) {
	var rec walRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		return knowledge.ChangeEvent{}, fmt.Errorf("parse: %w", err)
	}
	if crc32.ChecksumIEEE(rec.Event) != rec.CRC {
		return knowledge.ChangeEvent{}, errors.New("crc mismatch")
	}
	var ev knowledge.ChangeEvent
	if err := json.Unmarshal(rec.Event, &ev); err != nil {
		return knowledge.ChangeEvent{}, fmt.Errorf("event parse: %w", err)
	}
	return ev, nil
}

// syncDir fsyncs the store directory so a just-renamed file is durable.
func (s *Store) syncDir() error {
	d, err := s.fs.Open(s.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("kstore: fsync dir %s: %w", s.dir, err)
	}
	return nil
}
