package kstore

import (
	"genedit/internal/metrics"
)

// storeMetrics holds one store's resolved instruments. The zero value (all
// nil) is fully operational as a no-op — metrics instruments are nil-safe —
// so uninstrumented stores pay nothing but a few time.Now calls per commit.
type storeMetrics struct {
	appendSec   *metrics.Histogram
	fsyncSec    *metrics.Histogram
	compactSec  *metrics.Histogram
	compactions *metrics.Counter
	compactErrs *metrics.Counter
	walRecords  *metrics.Gauge
	unhealthy   *metrics.Gauge
}

// storeFamilies are the kstore metric family vecs on one registry.
type storeFamilies struct {
	appendSec   *metrics.HistogramVec
	fsyncSec    *metrics.HistogramVec
	compactSec  *metrics.HistogramVec
	compactions *metrics.CounterVec
	compactErrs *metrics.CounterVec
	walRecords  *metrics.GaugeVec
	unhealthy   *metrics.GaugeVec
}

// familiesFor registers (idempotently) the kstore families on reg.
func familiesFor(reg *metrics.Registry) storeFamilies {
	return storeFamilies{
		appendSec: reg.Histogram("genedit_kstore_wal_append_seconds",
			"WAL append latency per commit (marshal + write + fsync).", nil, "db"),
		fsyncSec: reg.Histogram("genedit_kstore_wal_fsync_seconds",
			"WAL fsync latency per commit — the durability point of an approval.", nil, "db"),
		compactSec: reg.Histogram("genedit_kstore_compaction_seconds",
			"Snapshot compaction duration (successful compactions only).", nil, "db"),
		compactions: reg.Counter("genedit_kstore_compactions_total",
			"Completed snapshot compactions.", "db"),
		compactErrs: reg.Counter("genedit_kstore_compaction_errors_total",
			"Failed compaction attempts. Commits stay durable; a growing count means the WAL is not being truncated.", "db"),
		walRecords: reg.Gauge("genedit_kstore_wal_records",
			"Events currently in the WAL (resets to 0 on compaction).", "db"),
		unhealthy: reg.Gauge("genedit_kstore_unhealthy",
			"1 when the store refused further writes after a failed WAL rollback.", "db"),
	}
}

// RegisterMetrics registers the kstore metric families on reg without
// binding them to a store, so /metrics advertises the catalog (HELP/TYPE
// lines) before the first durable commit. Registration is idempotent.
func RegisterMetrics(reg *metrics.Registry) { familiesFor(reg) }

// WithMetrics instruments the store: WAL append and fsync latency
// histograms, compaction count/duration/error counters, a WAL-depth gauge
// and an unhealthy flag, all labeled with db on reg.
func WithMetrics(reg *metrics.Registry, db string) Option {
	return func(s *Store) {
		if reg == nil {
			return
		}
		f := familiesFor(reg)
		s.metrics = storeMetrics{
			appendSec:   f.appendSec.With(db),
			fsyncSec:    f.fsyncSec.With(db),
			compactSec:  f.compactSec.With(db),
			compactions: f.compactions.With(db),
			compactErrs: f.compactErrs.With(db),
			walRecords:  f.walRecords.With(db),
			unhealthy:   f.unhealthy.With(db),
		}
	}
}
