package kstore

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// ErrInjected is the sentinel every FaultFS-injected failure wraps.
// Recovery tests branch on it to distinguish injected faults from real
// filesystem errors (which would be a test-environment problem).
var ErrInjected = errors.New("kstore: injected fault")

// Fault is the kind of failure FaultFS injects at a planned operation.
type Fault int

const (
	// FaultErr fails the operation cleanly: no bytes reach the inner
	// filesystem. Models EIO/ENOSPC surfaced before any data landed.
	FaultErr Fault = iota
	// FaultPartial applies to writes: half the buffer lands in the inner
	// filesystem, then the call errors — a short write whose residue is a
	// torn record the next recovery must truncate. Non-write operations
	// degrade to FaultErr.
	FaultPartial
	// FaultCrash fails the operation (partially applying writes, like
	// FaultPartial) and then kills the filesystem: every subsequent
	// operation fails too, modelling a machine that died mid-syscall. The
	// on-disk state stays readable through a fresh FS — that is the state a
	// reopened store must recover from.
	FaultCrash
)

func (f Fault) String() string {
	switch f {
	case FaultErr:
		return "err"
	case FaultPartial:
		return "partial"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// FaultFS wraps an FS and injects failures by operation index: every
// filesystem call — opens, writes, fsyncs, renames, truncates — increments
// one shared counter, and a fault planned at index n fires on the n-th
// call. Deterministic given a deterministic caller, which is what lets the
// crash-fuzz harness sweep the fault point across an entire commit/compact
// interleaving.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	op       int64
	plan     map[int64]Fault
	delay    map[int64]time.Duration
	crashed  bool
	injected int64
}

// NewFaultFS wraps inner (normally OSFS over a temp dir).
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{
		inner: inner,
		plan:  make(map[int64]Fault),
		delay: make(map[int64]time.Duration),
	}
}

// PlanFault schedules a fault to fire on the op-th filesystem operation
// (0-based, counting every FS and File call).
func (f *FaultFS) PlanFault(op int64, fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan[op] = fault
}

// PlanDelay schedules added latency on the op-th operation (the operation
// itself succeeds). Models a stalling disk.
func (f *FaultFS) PlanDelay(op int64, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay[op] = d
}

// Ops reports how many operations have been issued — run a workload once
// fault-free to measure the op space, then sweep faults across [0, Ops).
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.op
}

// Injected reports how many operations failed with an injected fault.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Crashed reports whether a FaultCrash has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// begin accounts one operation and returns the fault to apply, if any.
func (f *FaultFS) begin(what string) (Fault, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		f.injected++
		return 0, fmt.Errorf("%w: %s after crash", ErrInjected, what)
	}
	op := f.op
	f.op++
	if d, ok := f.delay[op]; ok {
		time.Sleep(d)
	}
	fault, ok := f.plan[op]
	if !ok {
		return 0, nil
	}
	f.injected++
	if fault == FaultCrash {
		f.crashed = true
	}
	return fault, fmt.Errorf("%w: %s at op %d (%s)", ErrInjected, what, op, fault)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.begin("mkdirall"); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, err := f.begin("openfile"); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if _, err := f.begin("open"); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if _, err := f.begin("readfile"); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if _, err := f.begin("createtemp"); err != nil {
		return nil, err
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.begin("rename"); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if _, err := f.begin("remove"); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := f.begin("readdir"); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if _, err := f.begin("truncate"); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

// faultFile routes file operations through the owning FaultFS's counter.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Name() string { return f.inner.Name() }

func (f *faultFile) Read(p []byte) (int, error) {
	if _, err := f.fs.begin("read"); err != nil {
		return 0, err
	}
	return f.inner.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	fault, err := f.fs.begin("write")
	if err != nil {
		// A short write leaves a torn prefix behind — exactly what a crash
		// mid-append does to the WAL.
		if (fault == FaultPartial || fault == FaultCrash) && len(p) > 1 {
			n, _ := f.inner.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if _, err := f.fs.begin("sync"); err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if _, err := f.fs.begin("ftruncate"); err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Stat() (os.FileInfo, error) {
	if _, err := f.fs.begin("stat"); err != nil {
		return nil, err
	}
	return f.inner.Stat()
}

func (f *faultFile) Close() error {
	// Close is never failed: the store's cleanup paths (rollback, temp
	// removal) must be able to release handles even mid-crash, and the OS
	// releases descriptors on process death regardless.
	return f.inner.Close()
}
