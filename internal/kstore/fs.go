package kstore

import (
	"io"
	"os"
)

// FS is the filesystem seam every durable operation in kstore goes
// through. Production uses OSFS; durability tests substitute a FaultFS to
// inject fsync failures, short writes, torn renames and crashes at exact
// operation boundaries — the only way to exercise the recovery paths
// deterministically without killing the process.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	ReadFile(name string) ([]byte, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	Truncate(name string, size int64) error
}

// File is the subset of *os.File the store uses.
type File interface {
	io.Reader
	io.Writer
	Name() string
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Close() error
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
