package embed

import (
	"fmt"
	"math/rand"
	"testing"
)

// annTestDim keeps the fuzz sweep fast; the index is dimension-agnostic.
const annTestDim = 32

// fuzzVector draws from a small pool of directions (so exact-duplicate
// scores are common and the ID tie-break is exercised constantly), scales
// some of them (same direction, different magnitude — identical cosine),
// and makes a few exactly zero.
func fuzzVector(rng *rand.Rand, pool []Vector) Vector {
	if rng.Intn(20) == 0 {
		return make(Vector, annTestDim) // zero vector
	}
	base := pool[rng.Intn(len(pool))]
	v := append(Vector(nil), base...)
	if rng.Intn(3) == 0 {
		scale := 0.25 + 3*rng.Float64()
		for i := range v {
			v[i] *= scale
		}
	}
	return v
}

func fuzzPool(rng *rand.Rand, size int) []Vector {
	pool := make([]Vector, size)
	for i := range pool {
		v := make(Vector, annTestDim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		pool[i] = v
	}
	return pool
}

// assertSameHits requires bitwise-equal results: same IDs, same order, same
// float64 scores.
func assertSameHits(t *testing.T, ctx string, got, want []Hit) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d hits, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("%s: hit %d = {%s %v}, want {%s %v}", ctx,
				i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

func assertParity(t *testing.T, ctx string, ix *Index, q Vector, k int) {
	t.Helper()
	assertSameHits(t, fmt.Sprintf("%s k=%d", ctx, k), ix.SearchVector(q, k), ix.SearchVectorBrute(q, k))
}

// TestANNParitySweep is the seeded fuzz gate: across index sizes (including
// 0, 1, k-1, k, and 10k), duplicate scores, zero vectors, and replaced IDs,
// ANN top-k must be order-identical — scores and tie-breaks — to
// SearchVectorBrute for every (n, k, nprobe) combination.
func TestANNParitySweep(t *testing.T) {
	const refK = 8
	sizes := []int{0, 1, refK - 1, refK, 300, 10000}
	probes := []int{1, 2, 4, 16}

	for _, n := range sizes {
		for _, nprobe := range probes {
			rng := rand.New(rand.NewSource(int64(421*n + nprobe)))
			pool := fuzzPool(rng, 40)
			ix := NewIndex()
			for i := 0; i < n; i++ {
				ix.AddVector(fmt.Sprintf("item-%05d", i), fuzzVector(rng, pool))
			}
			ix.EnableANN(ANNConfig{MinSize: 1, Probes: nprobe})
			ix.Build()

			ks := []int{0, 1, refK - 1, refK, 25, n - 1, n, n + 5, -1}
			queries := make([]Vector, 0, 8)
			for i := 0; i < 5; i++ {
				queries = append(queries, fuzzVector(rng, pool))
			}
			queries = append(queries, make(Vector, annTestDim)) // zero query
			if n > 0 {
				stored := ix.vecs[rng.Intn(n)]
				queries = append(queries, stored)
				neg := append(Vector(nil), stored...)
				for i := range neg {
					neg[i] = -neg[i]
				}
				queries = append(queries, neg)
			}

			ctx := fmt.Sprintf("n=%d nprobe=%d", n, nprobe)
			for qi, q := range queries {
				for _, k := range ks {
					assertParity(t, fmt.Sprintf("%s q=%d", ctx, qi), ix, q, k)
				}
			}

			// Replace a slice of IDs in place (old partitions keep their
			// conservative cones) and re-check.
			for i := 0; i < n/10; i++ {
				ix.AddVector(fmt.Sprintf("item-%05d", rng.Intn(n)), fuzzVector(rng, pool))
			}
			// Grow the index with fresh IDs; crossing 2x the built size must
			// transparently repartition.
			grow := n/3 + 1
			for i := 0; i < grow; i++ {
				ix.AddVector(fmt.Sprintf("late-%05d", i), fuzzVector(rng, pool))
			}
			for qi, q := range queries {
				for _, k := range ks {
					assertParity(t, fmt.Sprintf("%s(mutated) q=%d", ctx, qi), ix, q, k)
				}
			}
		}
	}
}

// TestANNSubLinearScan pins the point of the whole layer: on clustered data
// at the 10k scale, the average ANN search must score well under a quarter
// of the index (in practice a few percent), not degenerate to brute force.
func TestANNSubLinearScan(t *testing.T) {
	const n = 10000
	rng := rand.New(rand.NewSource(99))
	pool := fuzzPool(rng, 64)
	ix := NewIndex()
	for i := 0; i < n; i++ {
		base := pool[rng.Intn(len(pool))]
		v := append(Vector(nil), base...)
		for d := range v {
			v[d] += 0.05 * rng.NormFloat64()
		}
		ix.AddVector(fmt.Sprintf("item-%05d", i), v)
	}
	ix.EnableANN(ANNConfig{MinSize: 1})
	ix.Build()

	before := ix.Stats()
	const searches = 100
	for i := 0; i < searches; i++ {
		q := append(Vector(nil), pool[i%len(pool)]...)
		for d := range q {
			q[d] += 0.05 * rng.NormFloat64()
		}
		assertParity(t, "sublinear", ix, q, 16)
	}
	st := ix.Stats()
	annSearches := st.ANNSearches - before.ANNSearches
	// The brute reference run by assertParity goes through SearchVectorBrute
	// directly, which is unrecorded, so the counters below are ANN-only.
	if annSearches != searches {
		t.Fatalf("expected %d ANN searches, got %d", searches, annSearches)
	}
	avg := float64(st.CandidatesScanned-before.CandidatesScanned) / float64(annSearches)
	if avg >= n/4 {
		t.Fatalf("ANN scanned %.0f candidates/search on clustered data; want < %d", avg, n/4)
	}
	t.Logf("ANN scanned %.1f candidates/search over %d items (%.2f%%), %d full sweeps",
		avg, n, 100*avg/n, st.FullSweeps-before.FullSweeps)
}

// TestANNDeterministicBuild: identical build inputs must yield identical
// partitionings, observable through identical probe/scan counters.
func TestANNDeterministicBuild(t *testing.T) {
	build := func() *Index {
		rng := rand.New(rand.NewSource(7))
		pool := fuzzPool(rng, 32)
		ix := NewIndex()
		for i := 0; i < 2000; i++ {
			ix.AddVector(fmt.Sprintf("item-%05d", i), fuzzVector(rng, pool))
		}
		ix.EnableANN(ANNConfig{MinSize: 1, Probes: 2})
		ix.Build()
		return ix
	}
	a, b := build(), build()
	rng := rand.New(rand.NewSource(8))
	pool := fuzzPool(rng, 32)
	for i := 0; i < 50; i++ {
		q := fuzzVector(rng, pool)
		assertSameHits(t, "deterministic", a.SearchVector(q, 10), b.SearchVector(q, 10))
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.CandidatesScanned != sb.CandidatesScanned || sa.PartitionsProbed != sb.PartitionsProbed {
		t.Fatalf("identical builds diverged: %+v vs %+v", sa, sb)
	}
}

// TestANNBelowMinSizeStaysBrute: Build must not partition a too-small index,
// and the plain path must keep serving it.
func TestANNBelowMinSizeStaysBrute(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 10; i++ {
		ix.Add(fmt.Sprintf("doc-%d", i), fmt.Sprintf("quarterly revenue report %d", i))
	}
	ix.EnableANN(ANNConfig{MinSize: 100})
	ix.Build()
	if ix.ann != nil {
		t.Fatal("index below MinSize should not be partitioned")
	}
	q := Text("revenue report")
	assertParity(t, "below-min", ix, q, 3)
	st := ix.Stats()
	if st.ANNSearches != 0 {
		t.Fatalf("expected no ANN searches below MinSize, got %d", st.ANNSearches)
	}
}

// TestAddNormMatchesGeneralPath guards the Add fast path (satellite: Text
// vectors arrive with their norm precomputed): the cached squared norm — and
// therefore every score — must be bitwise identical to the general
// recompute-the-norm path.
func TestAddNormMatchesGeneralPath(t *testing.T) {
	texts := []string{
		"total revenue per store in Canada for 2023",
		"QoQFP per sports organisation",
		"",
		"    ",
		"UPPER lower MiXeD 123 tokens tokens tokens",
	}
	fast, general := NewIndex(), NewIndex()
	for i, s := range texts {
		id := fmt.Sprintf("t-%d", i)
		fast.Add(id, s)
		general.AddVector(id, Text(s))
		// The cached norms must agree bitwise, not just approximately.
		if fast.norms2[i] != general.norms2[i] {
			t.Fatalf("text %q: fast-path norm %v != general-path norm %v",
				s, fast.norms2[i], general.norms2[i])
		}
		v, n2 := textAndNorm(s)
		var want float64
		for _, x := range v {
			want += x * x
		}
		if n2 != want {
			t.Fatalf("text %q: textAndNorm norm %v != recomputed %v", s, n2, want)
		}
	}
	q := Text("revenue per organisation")
	assertSameHits(t, "add-paths", fast.SearchVector(q, 3), general.SearchVector(q, 3))
}

// TestANNZeroQueryAndAllZeroIndex covers the degenerate corners explicitly.
func TestANNZeroQueryAndAllZeroIndex(t *testing.T) {
	// All-zero index: Build declines to partition, searches still work.
	zeroIx := NewIndex()
	for i := 0; i < 8; i++ {
		zeroIx.AddVector(fmt.Sprintf("z-%d", i), make(Vector, annTestDim))
	}
	zeroIx.EnableANN(ANNConfig{MinSize: 1})
	zeroIx.Build()
	rng := rand.New(rand.NewSource(3))
	q := fuzzPool(rng, 1)[0]
	assertParity(t, "all-zero index", zeroIx, q, 3)

	// Mixed index, zero query: every score is 0, order is pure ID order.
	ix := NewIndex()
	pool := fuzzPool(rng, 8)
	for i := 0; i < 50; i++ {
		ix.AddVector(fmt.Sprintf("m-%02d", i), fuzzVector(rng, pool))
	}
	ix.EnableANN(ANNConfig{MinSize: 1})
	ix.Build()
	assertParity(t, "zero query", ix, make(Vector, annTestDim), 5)
}

// BenchmarkIndexAdd guards the Add fast path: embedding plus insertion with
// the norm fused into normalization (no second pass over the vector).
func BenchmarkIndexAdd(b *testing.B) {
	texts := make([]string, 64)
	for i := range texts {
		texts[i] = fmt.Sprintf("top %d stores by total net sales in district %d for 2023", i, i%7)
	}
	b.ReportAllocs()
	ix := NewIndex()
	for i := 0; i < b.N; i++ {
		ix.Add(fmt.Sprintf("id-%d", i), texts[i%len(texts)])
	}
}

// BenchmarkANNVsBrute measures the raw index speedup at 1x/10x/100x of a
// typical per-database knowledge scale (~150 items); the serving-level
// version lives in the root package's BenchmarkANNSearch.
func BenchmarkANNVsBrute(b *testing.B) {
	for _, scale := range []int{1, 10, 100} {
		n := 150 * scale
		rng := rand.New(rand.NewSource(int64(scale)))
		pool := fuzzPool(rng, 64)
		build := func(ann bool) *Index {
			ix := NewIndex()
			for i := 0; i < n; i++ {
				base := pool[rng.Intn(len(pool))]
				v := append(Vector(nil), base...)
				for d := range v {
					v[d] += 0.05 * rng.NormFloat64()
				}
				ix.AddVector(fmt.Sprintf("item-%06d", i), v)
			}
			if ann {
				ix.EnableANN(ANNConfig{MinSize: 1})
				ix.Build()
			}
			return ix
		}
		queries := make([]Vector, 32)
		for i := range queries {
			q := append(Vector(nil), pool[i%len(pool)]...)
			for d := range q {
				q[d] += 0.05 * rng.NormFloat64()
			}
			queries[i] = q
		}
		for _, mode := range []string{"brute", "ann"} {
			ix := build(mode == "ann")
			b.Run(fmt.Sprintf("scale=%dx/%s", scale, mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ix.SearchVector(queries[i%len(queries)], 16)
				}
			})
		}
	}
}
