// Package embed provides deterministic text embeddings and cosine-similarity
// retrieval. It substitutes for the hosted embedding service an enterprise
// deployment would call: feature-hashed bag-of-words with word bigrams,
// TF-weighted and L2-normalized, so similar texts land near each other and
// every run is reproducible.
package embed

import (
	"container/heap"
	"math"
	"sort"
	"time"
	"unicode"
)

// Dim is the embedding dimensionality.
const Dim = 192

// Vector is a dense embedding.
type Vector []float64

// FNV-1a, inlined so the hot tokenization loop allocates no hasher and
// bigram hashes continue from the first word's state instead of re-hashing a
// concatenated string. Values are identical to hash/fnv's New64a.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvAdd(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// lowerAlnum lower-cases one rune and reports whether the result is a kept
// token rune ([a-z0-9]). Every kept rune is a single ASCII byte, which is
// what lets Text hash tokens incrementally without building strings.
func lowerAlnum(r rune) (byte, bool) {
	if r >= 'A' && r <= 'Z' {
		return byte(r + ('a' - 'A')), true
	}
	if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
		return byte(r), true
	}
	if r >= 0x80 {
		// Non-ASCII uppercase letters can lower-case into the kept ASCII
		// range (e.g. the Kelvin sign U+212A -> 'k'); mirror the previous
		// strings.ToLower-based tokenizer exactly.
		if lr := unicode.ToLower(r); lr >= 'a' && lr <= 'z' {
			return byte(lr), true
		}
	}
	return 0, false
}

// Text embeds a string. Tokenization lower-cases and splits on
// non-alphanumeric runes; unigrams and adjacent-word bigrams are hashed into
// Dim buckets with signed hashing to reduce collision bias.
//
// The token stream is consumed as it is scanned — no token slice or lowered
// copy of s is materialized. Two running FNV-1a states track the current
// word: one from the hash offset (the unigram) and one continued from the
// previous word through a "_" byte (the bigram), so each feature hash is
// bitwise identical to hashing the materialized token strings. Bucket
// updates happen in the same order as the token-slice implementation
// (unigram w0, bigram w0_w1, unigram w1, ...), so the accumulated — and
// then normalized — vectors are bit-identical to the reference.
func Text(s string) Vector {
	v, _ := textAndNorm(s)
	return v
}

// textAndNorm is Text plus the squared L2 norm of the returned vector,
// accumulated inside the normalization pass in index order — the same
// operations, in the same order, as a separate `for _, x := range v { n2 +=
// x*x }` loop over the result, so callers caching the norm (Index.Add) get a
// value bitwise identical to recomputing it.
func textAndNorm(s string) (Vector, float64) {
	v := make(Vector, Dim)
	add := func(sum uint64, weight float64) {
		bucket := int(sum % Dim)
		sign := 1.0
		if (sum>>32)&1 == 1 {
			sign = -1.0
		}
		v[bucket] += sign * weight
	}
	var (
		h        uint64 // FNV state of the current word
		hBig     uint64 // FNV state of prevWord+"_"+current word so far
		inWord   bool
		havePrev bool
		prevH    uint64 // completed FNV state of the previous word
	)
	endWord := func() {
		if !inWord {
			return
		}
		if havePrev {
			add(hBig, 0.6) // bigram(prev, current) lands before unigram(current)
		}
		add(h, 1.0)
		prevH = h
		havePrev = true
		inWord = false
	}
	for _, r := range s {
		c, ok := lowerAlnum(r)
		if !ok {
			endWord()
			continue
		}
		if !inWord {
			inWord = true
			h = fnvOffset64
			if havePrev {
				// Continue hashing "prev_current" from prev's state: same
				// sum as hashing the concatenated token, no string built.
				hBig = (prevH ^ '_') * fnvPrime64
			}
		}
		h = (h ^ uint64(c)) * fnvPrime64
		if havePrev {
			hBig = (hBig ^ uint64(c)) * fnvPrime64
		}
	}
	endWord()
	n2 := normalizeInPlace(v)
	return v, n2
}

// Tokenize lower-cases and splits text into alphanumeric word tokens.
func Tokenize(s string) []string {
	var words []string
	// All kept runes are single ASCII bytes, so one reusable byte buffer
	// replaces the per-token strings.Builder (and the lowered copy of s).
	var cur []byte
	flush := func() {
		if len(cur) > 0 {
			words = append(words, string(cur))
			cur = cur[:0]
		}
	}
	for _, r := range s {
		if c, ok := lowerAlnum(r); ok {
			cur = append(cur, c)
		} else {
			flush()
		}
	}
	flush()
	return words
}

// normalizeInPlace scales v to unit length in place (zero vectors are left
// unchanged), with the same operations — and therefore bit pattern — as
// Normalize. It returns the squared norm of the *scaled* vector, accumulated
// in index order over the stored values, so the caller can cache it without
// a second pass (0 for zero vectors, matching what that pass would compute).
func normalizeInPlace(v Vector) float64 {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		return 0
	}
	norm = math.Sqrt(norm)
	var n2 float64
	for i, x := range v {
		v[i] = x / norm
		n2 += v[i] * v[i]
	}
	return n2
}

// Normalize returns the vector scaled to unit length (zero vectors pass
// through unchanged).
func (v Vector) Normalize() Vector {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		return v
	}
	norm = math.Sqrt(norm)
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = x / norm
	}
	return out
}

// Cosine returns the cosine similarity of two vectors (0 when either is
// zero or lengths differ).
func Cosine(a, b Vector) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Similarity embeds both texts and returns their cosine similarity.
func Similarity(a, b string) float64 {
	return Cosine(Text(a), Text(b))
}

// Hit is one retrieval result.
type Hit struct {
	ID    string
	Score float64
}

// Index is a cosine top-k index. Squared norms are cached at insertion (Text
// vectors are already L2-normalized, so each is ~1), which lets search
// compute one dot product per candidate instead of a full cosine, and a
// bounded heap replaces the full sort when k is small. Scores are bitwise
// identical to Cosine: the same accumulation order, with only the
// per-candidate recomputation of both norms hoisted out.
//
// By default every search scans all items. EnableANN + Build add a
// partitioned IVF layer on top (see ann.go) whose results stay
// order-identical to SearchVectorBrute while scanning sub-linearly many
// candidates on clustered data.
//
// Concurrency: mutation (Add, AddVector, EnableANN, Build) must not overlap
// search; any number of Search/SearchVector calls may then run concurrently.
type Index struct {
	ids    []string
	vecs   []Vector
	norms2 []float64 // cached squared L2 norms of vecs
	pos    map[string]int

	annCfg    ANNConfig
	annWanted bool
	ann       *annPartitions // nil until Build partitions the index
	stats     searchCounters
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{pos: make(map[string]int)}
}

// Add inserts or replaces an item by ID. Text vectors arrive L2-normalized
// with their squared norm computed during normalization, so no extra pass
// over the vector runs here (AddVector keeps the general path for arbitrary
// vectors).
func (ix *Index) Add(id, text string) {
	vec, n2 := textAndNorm(text)
	ix.insert(id, vec, n2)
}

// AddVector inserts or replaces an item with a caller-supplied embedding of
// any length or scale; the squared norm is computed here.
func (ix *Index) AddVector(id string, vec Vector) {
	var n2 float64
	for _, x := range vec {
		n2 += x * x
	}
	ix.insert(id, vec, n2)
}

func (ix *Index) insert(id string, vec Vector, n2 float64) {
	if p, ok := ix.pos[id]; ok {
		ix.vecs[p] = vec
		ix.norms2[p] = n2
		ix.annAbsorb(p, true)
		return
	}
	p := len(ix.ids)
	ix.pos[id] = p
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, vec)
	ix.norms2 = append(ix.norms2, n2)
	ix.annAbsorb(p, false)
}

// Len reports the number of items indexed.
func (ix *Index) Len() int { return len(ix.ids) }

// Vector returns the stored embedding for an ID, or nil when absent. The
// returned slice is the index's own storage — callers must not mutate it.
func (ix *Index) Vector(id string) Vector {
	if p, ok := ix.pos[id]; ok {
		return ix.vecs[p]
	}
	return nil
}

// Search returns the top-k items most similar to the query text, highest
// score first with ties broken by ID for determinism.
func (ix *Index) Search(query string, k int) []Hit {
	return ix.SearchVector(Text(query), k)
}

// score reproduces Cosine(q, ix.vecs[i]) exactly, with the query norm
// computed once by the caller and the candidate norm read from the cache.
func (ix *Index) score(q Vector, qNorm2 float64, i int) float64 {
	v := ix.vecs[i]
	if len(q) != len(v) || len(v) == 0 || qNorm2 == 0 || ix.norms2[i] == 0 {
		return 0
	}
	var dot float64
	for j := range q {
		dot += q[j] * v[j]
	}
	return dot / (math.Sqrt(qNorm2) * math.Sqrt(ix.norms2[i]))
}

// hitHeap is a bounded min-heap: the worst retained hit (lowest score,
// largest ID on ties) sits at the root so it can be evicted in O(log k).
type hitHeap []Hit

func (h hitHeap) Len() int      { return len(h) }
func (h hitHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h hitHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID
}
func (h *hitHeap) Push(x any) { *h = append(*h, x.(Hit)) }
func (h *hitHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// SearchVector is Search with a precomputed query vector. For small k it
// keeps a bounded heap of the best candidates instead of sorting the whole
// index; results are identical to the full sort (IDs are unique, so the
// score-then-ID order is total). When an ANN partitioning is built (see
// ann.go) the sweep is restricted to partitions whose cone bound can still
// reach the top-k — with results provably identical to the full scan.
func (ix *Index) SearchVector(q Vector, k int) []Hit {
	start := time.Now()
	if k < 0 || k >= len(ix.ids) {
		hits := ix.SearchVectorBrute(q, k)
		ix.stats.record(start, len(ix.ids), 0, false, false)
		return hits
	}
	if k == 0 {
		ix.stats.record(start, 0, 0, false, false)
		return []Hit{}
	}
	var qNorm2 float64
	for _, x := range q {
		qNorm2 += x * x
	}
	if ix.ann != nil && qNorm2 != 0 {
		hits, scanned, probed, full := ix.searchANN(q, qNorm2, k)
		ix.stats.record(start, scanned, probed, true, full)
		return hits
	}
	h := make(hitHeap, 0, k+1)
	for i, id := range ix.ids {
		hit := Hit{ID: id, Score: ix.score(q, qNorm2, i)}
		if len(h) < k {
			heap.Push(&h, hit)
			continue
		}
		// Keep hit only if it beats the current worst.
		if hit.Score > h[0].Score || (hit.Score == h[0].Score && hit.ID < h[0].ID) {
			h[0] = hit
			heap.Fix(&h, 0)
		}
	}
	hits := sortHits(h)
	ix.stats.record(start, len(ix.ids), 0, false, false)
	return hits
}

// sortHits orders heap contents into the public result order: score
// descending, ID ascending on ties.
func sortHits(h hitHeap) []Hit {
	hits := []Hit(h)
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].ID < hits[b].ID
	})
	return hits
}

// SearchVectorBrute is the full-sort reference implementation of
// SearchVector; parity tests and benchmarks compare against it.
func (ix *Index) SearchVectorBrute(q Vector, k int) []Hit {
	var qNorm2 float64
	for _, x := range q {
		qNorm2 += x * x
	}
	hits := make([]Hit, 0, len(ix.ids))
	for i, id := range ix.ids {
		hits = append(hits, Hit{ID: id, Score: ix.score(q, qNorm2, i)})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].ID < hits[b].ID
	})
	if k >= 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
