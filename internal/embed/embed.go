// Package embed provides deterministic text embeddings and cosine-similarity
// retrieval. It substitutes for the hosted embedding service an enterprise
// deployment would call: feature-hashed bag-of-words with word bigrams,
// TF-weighted and L2-normalized, so similar texts land near each other and
// every run is reproducible.
package embed

import (
	"hash/fnv"
	"math"
	"sort"
	"strings"
)

// Dim is the embedding dimensionality.
const Dim = 192

// Vector is a dense embedding.
type Vector []float64

// Text embeds a string. Tokenization lower-cases and splits on
// non-alphanumeric runes; unigrams and adjacent-word bigrams are hashed into
// Dim buckets with signed hashing to reduce collision bias.
func Text(s string) Vector {
	v := make(Vector, Dim)
	words := Tokenize(s)
	add := func(tok string, weight float64) {
		h := fnv.New64a()
		h.Write([]byte(tok))
		sum := h.Sum64()
		bucket := int(sum % Dim)
		sign := 1.0
		if (sum>>32)&1 == 1 {
			sign = -1.0
		}
		v[bucket] += sign * weight
	}
	for i, w := range words {
		add(w, 1.0)
		if i+1 < len(words) {
			add(w+"_"+words[i+1], 0.6)
		}
	}
	return v.Normalize()
}

// Tokenize lower-cases and splits text into alphanumeric word tokens.
func Tokenize(s string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, cur.String())
			cur.Reset()
		}
	}
	for _, r := range strings.ToLower(s) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return words
}

// Normalize returns the vector scaled to unit length (zero vectors pass
// through unchanged).
func (v Vector) Normalize() Vector {
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		return v
	}
	norm = math.Sqrt(norm)
	out := make(Vector, len(v))
	for i, x := range v {
		out[i] = x / norm
	}
	return out
}

// Cosine returns the cosine similarity of two vectors (0 when either is
// zero or lengths differ).
func Cosine(a, b Vector) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Similarity embeds both texts and returns their cosine similarity.
func Similarity(a, b string) float64 {
	return Cosine(Text(a), Text(b))
}

// Hit is one retrieval result.
type Hit struct {
	ID    string
	Score float64
}

// Index is a brute-force cosine top-k index, sufficient for knowledge sets
// of thousands of items.
type Index struct {
	ids  []string
	vecs []Vector
	pos  map[string]int
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{pos: make(map[string]int)}
}

// Add inserts or replaces an item by ID.
func (ix *Index) Add(id, text string) {
	vec := Text(text)
	if p, ok := ix.pos[id]; ok {
		ix.vecs[p] = vec
		return
	}
	ix.pos[id] = len(ix.ids)
	ix.ids = append(ix.ids, id)
	ix.vecs = append(ix.vecs, vec)
}

// Len reports the number of items indexed.
func (ix *Index) Len() int { return len(ix.ids) }

// Search returns the top-k items most similar to the query text, highest
// score first with ties broken by ID for determinism.
func (ix *Index) Search(query string, k int) []Hit {
	return ix.SearchVector(Text(query), k)
}

// SearchVector is Search with a precomputed query vector.
func (ix *Index) SearchVector(q Vector, k int) []Hit {
	hits := make([]Hit, 0, len(ix.ids))
	for i, id := range ix.ids {
		hits = append(hits, Hit{ID: id, Score: Cosine(q, ix.vecs[i])})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score != hits[b].Score {
			return hits[a].Score > hits[b].Score
		}
		return hits[a].ID < hits[b].ID
	})
	if k >= 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
