package embed

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Show me the Top-5 orgs (QoQFP)!")
	want := []string{"show", "me", "the", "top", "5", "orgs", "qoqfp"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTextDeterministic(t *testing.T) {
	a := Text("quarterly revenue per viewer")
	b := Text("quarterly revenue per viewer")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding is not deterministic")
		}
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	s := "total revenue for canadian organizations in Q2 2023"
	if sim := Similarity(s, s); math.Abs(sim-1.0) > 1e-9 {
		t.Errorf("self similarity = %v, want 1.0", sim)
	}
}

func TestRelatedTextsScoreHigherThanUnrelated(t *testing.T) {
	query := "revenue per viewer for sports organizations"
	related := "sum of revenue divided by viewers per organization"
	unrelated := "patient diagnosis codes by hospital ward"
	if Similarity(query, related) <= Similarity(query, unrelated) {
		t.Errorf("related text (%v) should outscore unrelated (%v)",
			Similarity(query, related), Similarity(query, unrelated))
	}
}

func TestCosineBounds(t *testing.T) {
	f := func(a, b string) bool {
		sim := Similarity(a, b)
		return sim >= -1.0000001 && sim <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineEdgeCases(t *testing.T) {
	if got := Cosine(Vector{1, 0}, Vector{1, 0, 0}); got != 0 {
		t.Errorf("mismatched lengths should score 0, got %v", got)
	}
	if got := Cosine(Vector{}, Vector{}); got != 0 {
		t.Errorf("empty vectors should score 0, got %v", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 1}); got != 0 {
		t.Errorf("zero vector should score 0, got %v", got)
	}
}

func TestNormalizeUnitLength(t *testing.T) {
	v := Text("some sample text for normalization")
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1.0) > 1e-9 {
		t.Errorf("embedding norm = %v, want 1.0", math.Sqrt(norm))
	}
}

func TestIndexSearchRanksExactMatchFirst(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", "count employees by department")
	ix.Add("b", "total revenue per region last year")
	ix.Add("c", "average salary of engineers")
	hits := ix.Search("total revenue per region last year", 2)
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if hits[0].ID != "b" {
		t.Errorf("top hit = %s, want b", hits[0].ID)
	}
	if hits[0].Score < hits[1].Score {
		t.Error("hits not sorted by score")
	}
}

func TestIndexReplace(t *testing.T) {
	ix := NewIndex()
	ix.Add("x", "alpha beta")
	ix.Add("x", "gamma delta")
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", ix.Len())
	}
	hits := ix.Search("gamma delta", 1)
	if hits[0].Score < 0.9 {
		t.Errorf("replaced vector not searchable: score %v", hits[0].Score)
	}
}

func TestIndexKBounds(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", "one")
	ix.Add("b", "two")
	if got := len(ix.Search("one", 10)); got != 2 {
		t.Errorf("k larger than index returned %d hits, want 2", got)
	}
	if got := len(ix.Search("one", 0)); got != 0 {
		t.Errorf("k=0 returned %d hits, want 0", got)
	}
	if got := len(ix.Search("one", -1)); got != 2 {
		t.Errorf("k=-1 (all) returned %d hits, want 2", got)
	}
}

func TestIndexTieBreakDeterministic(t *testing.T) {
	ix := NewIndex()
	ix.Add("z", "identical text")
	ix.Add("a", "identical text")
	hits := ix.Search("identical text", 2)
	if hits[0].ID != "a" || hits[1].ID != "z" {
		t.Errorf("tie break not by ID: %v", hits)
	}
}

func TestSearchHeapMatchesBruteSort(t *testing.T) {
	// The bounded-heap top-k must return exactly the same IDs, order and
	// scores as the full-sort reference, including score ties broken by ID.
	ix := NewIndex()
	words := []string{"revenue", "viewer", "organisation", "quarter", "canada", "sports", "total", "sum"}
	for i := 0; i < 300; i++ {
		text := words[i%len(words)] + " " + words[(i*3+1)%len(words)] + " " + words[(i*7+2)%len(words)]
		ix.Add(fmt.Sprintf("item-%03d", i), text)
	}
	// Duplicate texts under different IDs force exact score ties.
	ix.Add("tie-b", "identical tie text")
	ix.Add("tie-a", "identical tie text")
	ix.Add("tie-c", "identical tie text")

	queries := []string{
		"revenue per viewer", "identical tie text", "canada quarter total",
		"completely unrelated words xyzzy", "",
	}
	for _, q := range queries {
		qv := Text(q)
		for _, k := range []int{0, 1, 3, 8, 50, 302, 500, -1} {
			heapHits := ix.SearchVector(qv, k)
			bruteHits := ix.SearchVectorBrute(qv, k)
			if len(heapHits) != len(bruteHits) {
				t.Fatalf("q=%q k=%d: heap %d hits, brute %d", q, k, len(heapHits), len(bruteHits))
			}
			for i := range heapHits {
				if heapHits[i].ID != bruteHits[i].ID || heapHits[i].Score != bruteHits[i].Score {
					t.Fatalf("q=%q k=%d hit %d: heap %+v, brute %+v",
						q, k, i, heapHits[i], bruteHits[i])
				}
			}
		}
	}
}

func TestSearchScoresMatchCosineExactly(t *testing.T) {
	// The cached-norm dot-product scoring must be bitwise identical to
	// Cosine so retrieval (and therefore EX metrics) cannot drift.
	ix := NewIndex()
	texts := map[string]string{
		"a": "total revenue by organisation",
		"b": "viewers per quarter in canada",
		"c": "sports holdings financial performance",
	}
	for id, text := range texts {
		ix.Add(id, text)
	}
	q := "revenue per viewer for sports organisations"
	qv := Text(q)
	for _, hit := range ix.SearchVector(qv, -1) {
		want := Cosine(qv, Text(texts[hit.ID]))
		if hit.Score != want {
			t.Errorf("score for %s = %v, want exact Cosine %v", hit.ID, hit.Score, want)
		}
	}
}

func TestTextMatchesHashFNVReference(t *testing.T) {
	// The inlined FNV-1a and continued bigram hashing must reproduce the
	// original hash/fnv-based embedding exactly.
	ref := func(s string) Vector {
		v := make(Vector, Dim)
		words := Tokenize(s)
		add := func(tok string, weight float64) {
			h := fnv.New64a()
			h.Write([]byte(tok))
			sum := h.Sum64()
			bucket := int(sum % Dim)
			sign := 1.0
			if (sum>>32)&1 == 1 {
				sign = -1.0
			}
			v[bucket] += sign * weight
		}
		for i, w := range words {
			add(w, 1.0)
			if i+1 < len(words) {
				add(w+"_"+words[i+1], 0.6)
			}
		}
		return v.Normalize()
	}
	f := func(s string) bool {
		got, want := Text(s), ref(s)
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTokenizeMatchesToLowerReference pins the per-rune lower-casing scan
// against the original strings.ToLower-then-filter tokenizer, including the
// non-ASCII runes that lower-case into [a-z] (Kelvin sign, dotted capital I).
func TestTokenizeMatchesToLowerReference(t *testing.T) {
	ref := func(s string) []string {
		var words []string
		var cur strings.Builder
		flush := func() {
			if cur.Len() > 0 {
				words = append(words, cur.String())
				cur.Reset()
			}
		}
		for _, r := range strings.ToLower(s) {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
				cur.WriteRune(r)
			} else {
				flush()
			}
		}
		flush()
		return words
	}
	fixed := []string{
		"", "  ", "Hello, World!", "a-b_c d",
		"Kİ temperature", // Kelvin sign + dotted capital I
		"café Ångström 42", "\xff invalid \xfe utf8",
	}
	for _, s := range fixed {
		got, want := Tokenize(s), ref(s)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("Tokenize(%q) = %q, want %q", s, got, want)
		}
	}
	f := func(s string) bool {
		return fmt.Sprint(Tokenize(s)) == fmt.Sprint(ref(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestTextAllocsDoNotScaleWithTokens: the streaming scan must not allocate
// per token — embedding a long text costs the same allocations (the vector
// plus a fixed closure overhead) as a short one.
func TestTextAllocsDoNotScaleWithTokens(t *testing.T) {
	short := "revenue"
	long := strings.Repeat("quarterly revenue per viewer across organisations in canada ", 40)
	allocsShort := testing.AllocsPerRun(50, func() { Text(short) })
	allocsLong := testing.AllocsPerRun(50, func() { Text(long) })
	if allocsLong > allocsShort {
		t.Errorf("Text allocations scale with input: short=%v long=%v", allocsShort, allocsLong)
	}
}
