package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Show me the Top-5 orgs (QoQFP)!")
	want := []string{"show", "me", "the", "top", "5", "orgs", "qoqfp"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTextDeterministic(t *testing.T) {
	a := Text("quarterly revenue per viewer")
	b := Text("quarterly revenue per viewer")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding is not deterministic")
		}
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	s := "total revenue for canadian organizations in Q2 2023"
	if sim := Similarity(s, s); math.Abs(sim-1.0) > 1e-9 {
		t.Errorf("self similarity = %v, want 1.0", sim)
	}
}

func TestRelatedTextsScoreHigherThanUnrelated(t *testing.T) {
	query := "revenue per viewer for sports organizations"
	related := "sum of revenue divided by viewers per organization"
	unrelated := "patient diagnosis codes by hospital ward"
	if Similarity(query, related) <= Similarity(query, unrelated) {
		t.Errorf("related text (%v) should outscore unrelated (%v)",
			Similarity(query, related), Similarity(query, unrelated))
	}
}

func TestCosineBounds(t *testing.T) {
	f := func(a, b string) bool {
		sim := Similarity(a, b)
		return sim >= -1.0000001 && sim <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosineEdgeCases(t *testing.T) {
	if got := Cosine(Vector{1, 0}, Vector{1, 0, 0}); got != 0 {
		t.Errorf("mismatched lengths should score 0, got %v", got)
	}
	if got := Cosine(Vector{}, Vector{}); got != 0 {
		t.Errorf("empty vectors should score 0, got %v", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 1}); got != 0 {
		t.Errorf("zero vector should score 0, got %v", got)
	}
}

func TestNormalizeUnitLength(t *testing.T) {
	v := Text("some sample text for normalization")
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	if math.Abs(norm-1.0) > 1e-9 {
		t.Errorf("embedding norm = %v, want 1.0", math.Sqrt(norm))
	}
}

func TestIndexSearchRanksExactMatchFirst(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", "count employees by department")
	ix.Add("b", "total revenue per region last year")
	ix.Add("c", "average salary of engineers")
	hits := ix.Search("total revenue per region last year", 2)
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2", len(hits))
	}
	if hits[0].ID != "b" {
		t.Errorf("top hit = %s, want b", hits[0].ID)
	}
	if hits[0].Score < hits[1].Score {
		t.Error("hits not sorted by score")
	}
}

func TestIndexReplace(t *testing.T) {
	ix := NewIndex()
	ix.Add("x", "alpha beta")
	ix.Add("x", "gamma delta")
	if ix.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", ix.Len())
	}
	hits := ix.Search("gamma delta", 1)
	if hits[0].Score < 0.9 {
		t.Errorf("replaced vector not searchable: score %v", hits[0].Score)
	}
}

func TestIndexKBounds(t *testing.T) {
	ix := NewIndex()
	ix.Add("a", "one")
	ix.Add("b", "two")
	if got := len(ix.Search("one", 10)); got != 2 {
		t.Errorf("k larger than index returned %d hits, want 2", got)
	}
	if got := len(ix.Search("one", 0)); got != 0 {
		t.Errorf("k=0 returned %d hits, want 0", got)
	}
	if got := len(ix.Search("one", -1)); got != 2 {
		t.Errorf("k=-1 (all) returned %d hits, want 2", got)
	}
}

func TestIndexTieBreakDeterministic(t *testing.T) {
	ix := NewIndex()
	ix.Add("z", "identical text")
	ix.Add("a", "identical text")
	hits := ix.Search("identical text", 2)
	if hits[0].ID != "a" || hits[1].ID != "z" {
		t.Errorf("tie break not by ID: %v", hits)
	}
}
