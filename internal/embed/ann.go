package embed

import (
	"container/heap"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// This file adds a partitioned IVF-style layer to Index. The stored vectors
// are clustered into O(sqrt(n)) partitions by a deterministic, iteration-
// bounded spherical k-means; each search ranks partitions by how close the
// query is to their centroid and scans them best-first. What makes it exact
// rather than approximate is the cone bound kept per partition: the centroid
// plus the cosine of the widest member angle upper-bounds the cosine score
// any member can reach. A partition is skipped only when that bound is
// strictly below the current kth-best score, so the scanned set is always a
// superset of the true top-k and the returned hits — scored by the very same
// score() the brute scan uses — are order-identical (score and ID tie-break)
// to SearchVectorBrute. On adversarial queries the guard degrades gracefully
// into a full sweep: an automatic brute-force fallback, never a wrong answer.

// ANNConfig tunes the partitioned index. Zero values select the defaults.
type ANNConfig struct {
	// MinSize is the minimum item count before Build partitions the index;
	// below it searches use the plain scan (partitioning a tiny index costs
	// more than it saves). <= 0 means DefaultANNMinSize.
	MinSize int
	// Probes is the number of best-ranked partitions scanned unconditionally
	// before the cone-bound guard takes over. <= 0 means DefaultANNProbes.
	Probes int
}

// Default ANN tuning.
const (
	DefaultANNMinSize = 128
	DefaultANNProbes  = 4
)

// boundEps pads every cone bound so floating-point rounding in the bound
// arithmetic can only cause an extra scan, never a wrongly skipped
// partition. Scores themselves come from score() and are never padded.
const boundEps = 1e-9

// kmeansMaxIters bounds the Lloyd refinement so builds are fast and
// reproducible; assignments usually stabilize in far fewer rounds.
const kmeansMaxIters = 6

// SearchStats is a snapshot of an index's retrieval counters. Candidate and
// partition counts are the sub-linearity evidence: CandidatesScanned /
// Searches approaching Len() means the guard is degenerating to brute force.
type SearchStats struct {
	// Searches counts SearchVector calls (ANN and scan paths combined).
	Searches uint64
	// ANNSearches counts searches answered through the partitioned sweep.
	ANNSearches uint64
	// CandidatesScanned is the total number of stored vectors scored.
	CandidatesScanned uint64
	// PartitionsProbed is the total number of partitions scanned by ANN
	// searches (probe floor + guard extensions).
	PartitionsProbed uint64
	// FullSweeps counts ANN searches whose guard ended up scanning every
	// partition — the automatic brute-force fallback engaging.
	FullSweeps uint64
	// SearchNanos is the cumulative wall time spent inside SearchVector.
	SearchNanos uint64
}

// searchCounters is the atomic backing store for SearchStats.
type searchCounters struct {
	searches    atomic.Uint64
	annSearches atomic.Uint64
	scanned     atomic.Uint64
	probed      atomic.Uint64
	fullSweeps  atomic.Uint64
	nanos       atomic.Uint64
}

func (c *searchCounters) record(start time.Time, scanned, probed int, ann, fullSweep bool) {
	c.searches.Add(1)
	c.scanned.Add(uint64(scanned))
	if ann {
		c.annSearches.Add(1)
		c.probed.Add(uint64(probed))
		if fullSweep {
			c.fullSweeps.Add(1)
		}
	}
	c.nanos.Add(uint64(time.Since(start)))
}

// Stats returns a snapshot of the index's retrieval counters. Safe to call
// concurrently with searches.
func (ix *Index) Stats() SearchStats {
	return SearchStats{
		Searches:          ix.stats.searches.Load(),
		ANNSearches:       ix.stats.annSearches.Load(),
		CandidatesScanned: ix.stats.scanned.Load(),
		PartitionsProbed:  ix.stats.probed.Load(),
		FullSweeps:        ix.stats.fullSweeps.Load(),
		SearchNanos:       ix.stats.nanos.Load(),
	}
}

// annPartitions is one immutable-after-Build partitioning of the index.
type annPartitions struct {
	builtN    int // items present when Build ran (repartition trigger)
	probes    int // resolved probe floor
	centroids []Vector
	members   [][]int   // item positions per partition
	cosR      []float64 // cos of each partition's widest member angle
	sinR      []float64
	assign    []int // per-position partition (-1 = zero vector)
	zeros     []int // zero-norm positions; always candidates, score 0
}

// EnableANN arms the partitioned layer with the given tuning; the next
// Build call (re)partitions the index. It does not build by itself, so the
// usual sequence is Add… → EnableANN → Build.
func (ix *Index) EnableANN(cfg ANNConfig) {
	if cfg.MinSize <= 0 {
		cfg.MinSize = DefaultANNMinSize
	}
	if cfg.Probes <= 0 {
		cfg.Probes = DefaultANNProbes
	}
	ix.annCfg = cfg
	ix.annWanted = true
}

// DisableANN drops the partitioned layer; searches revert to the plain scan.
func (ix *Index) DisableANN() {
	ix.annWanted = false
	ix.ann = nil
}

// Build (re)partitions the index when ANN is enabled and the index has
// reached the configured minimum size; otherwise it clears any stale
// partitioning. Builds are deterministic in the index contents (seeded by
// ID order, iteration-bounded) and idempotent.
func (ix *Index) Build() {
	ix.ann = nil
	if !ix.annWanted || len(ix.ids) < ix.annCfg.MinSize {
		return
	}

	// Unit-normalize once; zero vectors score 0 against everything and live
	// outside the partitioning.
	n := len(ix.ids)
	units := make([]Vector, n)
	var nonzero, zeros []int
	for i := 0; i < n; i++ {
		if ix.norms2[i] == 0 || len(ix.vecs[i]) == 0 {
			zeros = append(zeros, i)
			continue
		}
		inv := 1 / math.Sqrt(ix.norms2[i])
		u := make(Vector, len(ix.vecs[i]))
		for j, x := range ix.vecs[i] {
			u[j] = x * inv
		}
		units[i] = u
		nonzero = append(nonzero, i)
	}
	if len(nonzero) == 0 {
		return // all-zero index: every search is trivially score 0
	}

	nlist := int(math.Sqrt(float64(len(nonzero))))
	if nlist < 1 {
		nlist = 1
	}
	if nlist > len(nonzero) {
		nlist = len(nonzero)
	}

	// Deterministic seeding: stride over the ID-sorted nonzero items, so the
	// build depends only on index contents, not insertion order.
	byID := append([]int(nil), nonzero...)
	sort.Slice(byID, func(a, b int) bool { return ix.ids[byID[a]] < ix.ids[byID[b]] })
	centroids := make([]Vector, nlist)
	for j := 0; j < nlist; j++ {
		seed := byID[(j*len(byID))/nlist]
		centroids[j] = append(Vector(nil), units[seed]...)
	}

	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < kmeansMaxIters; iter++ {
		changed := false
		for _, p := range nonzero {
			best := nearestCentroid(units[p], centroids)
			if assign[p] != best {
				assign[p] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		// Recompute centroids as normalized member means; a partition left
		// empty keeps its previous centroid (it simply attracts no one).
		sums := make([]Vector, nlist)
		counts := make([]int, nlist)
		for _, p := range nonzero {
			j := assign[p]
			if sums[j] == nil {
				sums[j] = make(Vector, len(units[p]))
			}
			s := sums[j]
			for d, x := range units[p] {
				s[d] += x
			}
			counts[j]++
		}
		for j := 0; j < nlist; j++ {
			if counts[j] == 0 || sums[j] == nil {
				continue
			}
			if normalizeInPlace(sums[j]) != 0 {
				centroids[j] = sums[j]
			}
		}
	}

	a := &annPartitions{
		builtN:    n,
		probes:    ix.annCfg.Probes,
		centroids: centroids,
		members:   make([][]int, nlist),
		cosR:      make([]float64, nlist),
		sinR:      make([]float64, nlist),
		assign:    assign,
		zeros:     zeros,
	}
	for j := range a.cosR {
		a.cosR[j] = 1
	}
	for _, p := range nonzero {
		j := assign[p]
		a.members[j] = append(a.members[j], p)
		a.widen(j, dotClamped(units[p], centroids[j]))
	}
	ix.ann = a
}

// widen grows partition j's cone to include a member at cosine d from the
// centroid.
func (a *annPartitions) widen(j int, d float64) {
	if d < a.cosR[j] {
		a.cosR[j] = d
		a.sinR[j] = math.Sqrt(math.Max(0, 1-d*d))
	}
}

// nearestCentroid returns the centroid with the largest dot product against
// the unit vector u (ties break to the lowest partition, for determinism).
func nearestCentroid(u Vector, centroids []Vector) int {
	best, bestDot := 0, math.Inf(-1)
	for j, c := range centroids {
		d := dot(u, c)
		if d > bestDot {
			best, bestDot = j, d
		}
	}
	return best
}

func dot(a, b Vector) float64 {
	if len(a) != len(b) {
		return 0
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func dotClamped(a, b Vector) float64 {
	d := dot(a, b)
	if d > 1 {
		return 1
	}
	if d < -1 {
		return -1
	}
	return d
}

// annAbsorb integrates a freshly inserted or replaced item at position p
// into the live partitioning, so an index can keep serving between Build
// calls without going stale. The item joins its nearest partition and the
// cone widens to cover it exactly; a replaced item's old partition keeps its
// (now conservative) cone, which can only cause extra scans, never a miss.
// Once the index doubles past its built size the partitioning is rebuilt so
// the partition count stays O(sqrt(n)) and the cones stay tight.
func (ix *Index) annAbsorb(p int, replaced bool) {
	a := ix.ann
	if a == nil {
		return
	}
	if len(ix.ids) >= 2*a.builtN {
		ix.Build()
		return
	}
	if replaced {
		switch old := a.assign[p]; {
		case old >= 0:
			a.members[old] = removePos(a.members[old], p)
		default:
			a.zeros = removePos(a.zeros, p)
		}
	} else {
		a.assign = append(a.assign, -1)
	}
	if ix.norms2[p] == 0 || len(ix.vecs[p]) == 0 {
		a.assign[p] = -1
		a.zeros = append(a.zeros, p)
		return
	}
	inv := 1 / math.Sqrt(ix.norms2[p])
	u := make(Vector, len(ix.vecs[p]))
	for d, x := range ix.vecs[p] {
		u[d] = x * inv
	}
	j := nearestCentroid(u, a.centroids)
	a.assign[p] = j
	a.members[j] = append(a.members[j], p)
	a.widen(j, dotClamped(u, a.centroids[j]))
}

func removePos(list []int, p int) []int {
	for i, v := range list {
		if v == p {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// searchANN answers a top-k query through the partitioned sweep. Requires
// 0 < k < len(ix.ids), qNorm2 > 0, and ix.ann != nil. Returns the hits plus
// the candidates-scanned / partitions-probed counts and whether the guard
// swept every partition (the brute-fallback case).
func (ix *Index) searchANN(q Vector, qNorm2 float64, k int) ([]Hit, int, int, bool) {
	a := ix.ann
	invQ := 1 / math.Sqrt(qNorm2)

	// Rank partitions by the best cosine any member could reach: 1 when the
	// query direction lies inside the cone, cos(angle-to-centroid minus the
	// cone half-angle) otherwise — which expands to d·cosR + sqrt(1−d²)·sinR.
	type ranked struct {
		j     int
		bound float64
	}
	order := make([]ranked, 0, len(a.centroids))
	for j, c := range a.centroids {
		if len(a.members[j]) == 0 {
			continue
		}
		d := dot(q, c) * invQ
		if d > 1 {
			d = 1
		} else if d < -1 {
			d = -1
		}
		b := 1.0
		if d < a.cosR[j] {
			b = d*a.cosR[j] + math.Sqrt(1-d*d)*a.sinR[j]
		}
		order = append(order, ranked{j: j, bound: b + boundEps})
	}
	sort.Slice(order, func(x, y int) bool {
		if order[x].bound != order[y].bound {
			return order[x].bound > order[y].bound
		}
		return order[x].j < order[y].j
	})

	scanned := 0
	h := make(hitHeap, 0, k+1)
	scanItem := func(i int) {
		scanned++
		hit := Hit{ID: ix.ids[i], Score: ix.score(q, qNorm2, i)}
		if len(h) < k {
			heap.Push(&h, hit)
			return
		}
		if hit.Score > h[0].Score || (hit.Score == h[0].Score && hit.ID < h[0].ID) {
			h[0] = hit
			heap.Fix(&h, 0)
		}
	}

	// Zero vectors score 0 against every query; they are cheap permanent
	// candidates so ties at score 0 resolve by ID exactly as in brute.
	for _, i := range a.zeros {
		scanItem(i)
	}

	probed := 0
	for rank, r := range order {
		// Partitions arrive bound-descending, so the first skippable one ends
		// the sweep: everything after it is bounded at least as low. Skipping
		// demands a STRICT bound shortfall — a partition whose bound ties the
		// kth score could hold an equal-score member with a smaller ID.
		if rank >= a.probes && len(h) == k && r.bound < h[0].Score {
			break
		}
		for _, i := range a.members[r.j] {
			scanItem(i)
		}
		probed++
	}

	return sortHits(h), scanned, probed, probed == len(order)
}
