package task

import (
	"testing"
	"testing/quick"
)

func TestQuestionKeyNormalizes(t *testing.T) {
	tests := []struct {
		a, b string
	}{
		{"Top 5 orgs", "top  5  ORGS"},
		{"  leading and trailing  ", "leading and trailing"},
		{"tabs\tand\nnewlines", "tabs and newlines"},
	}
	for _, tt := range tests {
		if QuestionKey(tt.a) != QuestionKey(tt.b) {
			t.Errorf("QuestionKey(%q) != QuestionKey(%q)", tt.a, tt.b)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	c := &Case{ID: "x", Question: "total revenue for our organisations in 2023"}
	r := NewRegistry([]*Case{c})
	if got := r.Lookup("Total  Revenue for our organisations in 2023"); got != c {
		t.Error("case-insensitive, whitespace-normalized lookup failed")
	}
	if got := r.Lookup("Show me total revenue for our organisations in 2023"); got != c {
		t.Error("reformulated-prefix lookup failed")
	}
	if got := r.Lookup("something else entirely"); got != nil {
		t.Error("unknown question should not resolve")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestRegistryAdd(t *testing.T) {
	r := NewRegistry(nil)
	c := &Case{ID: "y", Question: "how many widgets"}
	r.Add(c)
	if r.Lookup("how many widgets") != c {
		t.Error("Add did not register the case")
	}
}

func TestQuestionKeyIdempotent(t *testing.T) {
	f := func(s string) bool {
		k := QuestionKey(s)
		return QuestionKey(k) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
