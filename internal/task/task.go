// Package task defines the benchmark case model shared by the workload
// generator, the simulated model and the evaluation harness.
//
// A Case bundles a natural-language question with its gold SQL and a set of
// requirement tags describing what knowledge is needed to answer it
// correctly. The tags are the honest core of the LLM substitution (see
// DESIGN.md §1): instead of replacing natural-language understanding with a
// network, the simulated model checks explicitly whether the supplied
// context satisfies each requirement, and emits the corresponding wrong —
// but executable — SQL when it does not.
package task

import (
	"strings"

	"genedit/internal/schema"
)

// Difficulty mirrors BIRD's three tiers.
type Difficulty string

// Difficulty tiers.
const (
	Simple      Difficulty = "simple"
	Moderate    Difficulty = "moderate"
	Challenging Difficulty = "challenging"
)

// TermRequirement marks a domain term (e.g. "QoQFP") the question uses. A
// generator that lacks the term's definition produces WrongSQL — the query a
// model would plausibly write under the naive interpretation.
type TermRequirement struct {
	Term string
	// WrongSQL is the full query under the naive interpretation.
	WrongSQL string
}

// DecoyRequirement marks a schema ambiguity: the correct column has a
// plausible decoy (e.g. REVENUE vs REVENUE_LEGACY). Without schema-linking
// context a generator may resolve to the decoy, producing WrongSQL.
type DecoyRequirement struct {
	CorrectColumn string
	DecoyColumn   string
	Table         string
	// WrongSQL is the gold query with the decoy column substituted.
	WrongSQL string
}

// Case is one benchmark question.
type Case struct {
	ID         string
	DB         string
	Difficulty Difficulty
	// Intent is the verified user-intent label (mined in pre-processing).
	Intent string
	// Question is the natural-language input, possibly using domain jargon.
	Question string
	// Evidence is the BIRD-style external-knowledge string handed to every
	// system (baselines exploit it probabilistically; GenEdit instead
	// retrieves from its knowledge set).
	Evidence string
	GoldSQL  string
	// Terms lists jargon requirements.
	Terms []TermRequirement
	// Decoys lists schema-ambiguity requirements.
	Decoys []DecoyRequirement
	// Patterns tags structural sub-statement patterns the query needs
	// (e.g. "quarter_pivot", "window_rank", "cond_agg"); plan steps only
	// receive pseudo-SQL anchors for patterns covered by retrieved examples.
	Patterns []string
	// Needed lists the schema columns the gold query references; schema
	// linking and its miss model operate over this list.
	Needed []schema.Element
	// Steps is the number of decomposed fragments in the gold query,
	// the complexity measure used by the derivation budget.
	Steps int
	// Fragile marks cases whose gold SQL depends on subtle clause details,
	// so unanchored re-derivation is more error-prone.
	Fragile bool
}

// QuestionKey normalizes a question for registry lookup: the simulated
// model identifies a task by its question text the way a real model
// identifies it by meaning.
func QuestionKey(question string) string {
	return strings.Join(strings.Fields(strings.ToLower(question)), " ")
}

// Registry maps questions to cases for the simulated model.
type Registry struct {
	byKey map[string]*Case
}

// NewRegistry builds a registry over the cases.
func NewRegistry(cases []*Case) *Registry {
	r := &Registry{byKey: make(map[string]*Case, len(cases))}
	for _, c := range cases {
		r.byKey[QuestionKey(c.Question)] = c
	}
	return r
}

// Add registers one case.
func (r *Registry) Add(c *Case) { r.byKey[QuestionKey(c.Question)] = c }

// Lookup resolves a question (original or reformulated) to its case. The
// reformulated "Show me ..." prefix is stripped before matching.
func (r *Registry) Lookup(question string) *Case {
	key := QuestionKey(question)
	if c, ok := r.byKey[key]; ok {
		return c
	}
	for _, prefix := range []string{"show me ", "show me, "} {
		if strings.HasPrefix(key, prefix) {
			if c, ok := r.byKey[strings.TrimPrefix(key, prefix)]; ok {
				return c
			}
		}
	}
	return nil
}

// Len reports the number of registered cases.
func (r *Registry) Len() int { return len(r.byKey) }
