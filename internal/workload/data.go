package workload

import (
	"fmt"
	"hash/fnv"

	"genedit/internal/sqldb"
)

// months is the seeded data range: July 2022 through December 2023, so
// every 2023 quarter is complete and year-over-year comparisons have data.
var months = buildMonths()

func buildMonths() []string {
	var out []string
	for m := 7; m <= 12; m++ {
		out = append(out, fmt.Sprintf("2022-%02d-15", m))
	}
	for m := 1; m <= 12; m++ {
		out = append(out, fmt.Sprintf("2023-%02d-15", m))
	}
	return out
}

// noise produces a deterministic pseudo-random integer in [0, mod) from the
// suite seed and salt parts.
func noise(seed uint64, mod int, parts ...string) int {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seed >> (8 * i))
	}
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte{0x1f})
		h.Write([]byte(p))
	}
	return int(h.Sum64() % uint64(mod))
}

// entityRegion assigns each entity a home region.
func (d *domainSpec) entityRegion(i int) string { return d.Regions[i%len(d.Regions)] }

// entityFlag marks two of the eight entities as externally held.
func (d *domainSpec) entityFlag(i int) string {
	if i%4 == 3 {
		return d.OtherFlag
	}
	return d.OwnedFlag
}

// buildDatabase materializes one domain's database with seeded rows.
func buildDatabase(d *domainSpec, seed uint64) *sqldb.Database {
	db := sqldb.NewDatabase(d.DB)

	factA := sqldb.NewTable(d.FactA.Table,
		sqldb.Column{Name: d.EntityCol, Type: "TEXT"},
		sqldb.Column{Name: d.FactA.DateCol, Type: "DATE"},
		sqldb.Column{Name: d.FactA.Metric, Type: "FLOAT"},
		sqldb.Column{Name: d.FactA.Decoy, Type: "FLOAT",
			Description: "legacy pre-restatement figures; do not use for reporting"},
		sqldb.Column{Name: d.CategoryCol, Type: "TEXT"},
		sqldb.Column{Name: d.RegionCol, Type: "TEXT"},
		sqldb.Column{Name: d.FlagCol, Type: "TEXT"},
	)
	factB := sqldb.NewTable(d.FactB.Table,
		sqldb.Column{Name: d.EntityCol, Type: "TEXT"},
		sqldb.Column{Name: d.FactB.DateCol, Type: "DATE"},
		sqldb.Column{Name: d.FactB.Metric, Type: "INTEGER"},
		sqldb.Column{Name: d.RegionCol, Type: "TEXT"},
		sqldb.Column{Name: d.FlagCol, Type: "TEXT"},
	)
	dim := sqldb.NewTable(d.DimTable,
		sqldb.Column{Name: d.EntityCol, Type: "TEXT"},
		sqldb.Column{Name: d.SegmentCol, Type: "TEXT"},
		sqldb.Column{Name: d.RegionCol, Type: "TEXT"},
	)

	for i, entity := range d.Entities {
		region := d.entityRegion(i)
		flag := d.entityFlag(i)
		dim.MustAppend(sqldb.Str(entity), sqldb.Str(d.Segments[i%len(d.Segments)]), sqldb.Str(region))
		base := 900.0 + 137.0*float64(i)
		baseB := 400 + 61*i
		for mi, month := range months {
			metric := base + 25.0*float64(mi) +
				float64(noise(seed, 120, d.DB, entity, month, "a"))
			decoy := 0.8*metric + 7.0
			category := d.Categories[(i+mi)%len(d.Categories)]
			factA.MustAppend(
				sqldb.Str(entity), sqldb.Str(month), sqldb.Float(metric),
				sqldb.Float(decoy), sqldb.Str(category), sqldb.Str(region), sqldb.Str(flag),
			)
			metricB := int64(baseB + 17*mi + noise(seed, 80, d.DB, entity, month, "b") + 1)
			factB.MustAppend(
				sqldb.Str(entity), sqldb.Str(month), sqldb.Int(metricB),
				sqldb.Str(region), sqldb.Str(flag),
			)
		}
	}
	db.AddTable(factA)
	db.AddTable(factB)
	db.AddTable(dim)
	return db
}
