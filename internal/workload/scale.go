package workload

import (
	"fmt"

	"genedit/internal/knowledge"
	"genedit/internal/schema"
	"genedit/internal/sqldb"
	"genedit/internal/task"
)

// ScaleConfig sizes a stress-scale suite (NewScaledSuite). The standard
// benchmark is 8 databases with ~30 decomposed examples each; the ROADMAP's
// 100x hardening item needs two orthogonal multipliers:
//
//   - DBFactor clones every domain into that many tenant databases. Clones
//     share schema vocabulary but get distinct names, distinct seeded data
//     (the row noise is salted with the database name) and their own
//     knowledge sets — DBFactor 100 is the 100x database/case suite.
//   - KnowledgeFactor multiplies each database's query log with parameter
//     variants (different regions, months, thresholds, limits), growing the
//     per-engine example index — the scale at which sub-linear retrieval is
//     measurable. KnowledgeFactor ~10 pushes an index past the default ANN
//     partitioning threshold.
type ScaleConfig struct {
	DBFactor        int
	KnowledgeFactor int
}

// NewScaledSuite generates a stress-scale variant of the benchmark. Unlike
// NewSuite it keeps every generated case (no eval-set truncation), so case
// count scales with DBFactor. Factors < 1 are treated as 1; {1, 1} yields
// the standard domains with the standard knowledge (but the full case set).
func NewScaledSuite(seed uint64, sc ScaleConfig) *Suite {
	if sc.DBFactor < 1 {
		sc.DBFactor = 1
	}
	if sc.KnowledgeFactor < 1 {
		sc.KnowledgeFactor = 1
	}
	nDB := len(domains) * sc.DBFactor
	s := &Suite{
		Seed:      seed,
		Databases: make(map[string]*sqldb.Database, nDB),
		Schemas:   make(map[string]*schema.Schema, nDB),
		KB:        make(map[string]knowledge.BuildInput, nDB),
	}

	for f := 0; f < sc.DBFactor; f++ {
		for i := range domains {
			d := domains[i] // value copy; clones only change the DB name
			if f > 0 {
				d.DB = fmt.Sprintf("%s_x%03d", d.DB, f)
			}
			db := buildDatabase(&d, seed)
			s.Databases[d.DB] = db
			s.Schemas[d.DB] = schema.FromDatabase(db, schema.DefaultTopValues)

			termGated := i == 0
			s.Cases = append(s.Cases, d.simpleCases()...)
			s.Cases = append(s.Cases, d.moderateCases()...)
			s.Cases = append(s.Cases, d.challengingCases(termGated)...)

			logs := d.logEntries()
			logs = append(logs, d.variantLogEntries(sc.KnowledgeFactor)...)
			s.KB[d.DB] = knowledge.BuildInput{
				Schema: s.Schemas[d.DB],
				Logs:   logs,
				Docs:   []knowledge.Document{d.document()},
			}
		}
	}

	for _, c := range s.Cases {
		s.finalizeCase(c)
	}
	s.Registry = task.NewRegistry(s.Cases)
	return s
}

// variantLogEntries fabricates (factor-1) extra rounds of query-log history:
// parameter variants — region, month, year, threshold, limit — of the
// standard log templates, the way a production log accretes the same
// analyses re-run with different filters. Every variant question is
// distinct, so each contributes distinct vectors to the retrieval index.
func (d *domainSpec) variantLogEntries(factor int) []knowledge.LogEntry {
	fa := d.FactA
	var out []knowledge.LogEntry
	add := func(id, question, sql, intent string, terms ...string) {
		out = append(out, knowledge.LogEntry{
			ID: d.DB + "-" + id, Question: question, SQL: sql,
			IntentName: intent, Terms: terms,
		})
	}
	for v := 1; v < factor; v++ {
		region := d.Regions[v%len(d.Regions)]
		year := 2022 + v%2
		month := months[v%len(months)][:7] // "YYYY-MM"
		limit := 2 + v%6
		threshold := 820 + 9*(v%23)

		add(fmt.Sprintf("log-v%d-top", v),
			fmt.Sprintf("top %d %ss by total %s in %s for %d", limit, d.EntityNoun, d.MetricNoun, region, year),
			fmt.Sprintf("SELECT %s, SUM(%s) AS TOTAL FROM %s WHERE %s = '%s' AND %s GROUP BY %s ORDER BY TOTAL DESC LIMIT %d",
				d.EntityCol, fa.Metric, fa.Table, d.RegionCol, region, yearIs(fa.DateCol, year), d.EntityCol, limit),
			d.IntentPerformance)

		add(fmt.Sprintf("log-v%d-list", v),
			fmt.Sprintf("%ss with %s above %d in %s", d.EntityNoun, d.MetricNoun, threshold, month),
			fmt.Sprintf("SELECT DISTINCT %s FROM %s WHERE %s > %d AND %s = '%s' ORDER BY %s",
				d.EntityCol, fa.Table, fa.Metric, threshold, monthExpr(fa.DateCol), month, d.EntityCol),
			d.IntentPerformance)

		add(fmt.Sprintf("log-v%d-avg", v),
			fmt.Sprintf("average %s in %s during %s", d.MetricNoun, region, month),
			fmt.Sprintf("SELECT AVG(%s) AS AVG_VALUE FROM %s WHERE %s = '%s' AND %s = '%s'",
				fa.Metric, fa.Table, d.RegionCol, region, monthExpr(fa.DateCol), month),
			d.IntentPerformance)

		add(fmt.Sprintf("log-v%d-adj", v),
			fmt.Sprintf("%s per %s in %s for %d", d.AdjTerm, d.EntityNoun, region, year),
			fmt.Sprintf(
				"SELECT %s, SUM(CASE WHEN %s <> '%s' THEN %s * %s ELSE 0 END) AS ADJUSTED FROM %s WHERE %s = '%s' AND %s GROUP BY %s ORDER BY %s",
				d.EntityCol, d.CategoryCol, d.AdjExcluded, fa.Metric, d.AdjFactor, fa.Table,
				d.RegionCol, region, yearIs(fa.DateCol, year), d.EntityCol, d.EntityCol),
			d.IntentPerformance, d.AdjTerm)

		add(fmt.Sprintf("log-v%d-segment", v),
			fmt.Sprintf("total %s by %s in %s for %d", d.MetricNoun, d.SegmentCol, region, year),
			fmt.Sprintf(
				"SELECT d.%s, SUM(f.%s) AS TOTAL FROM %s f JOIN %s d ON f.%s = d.%s WHERE f.%s = '%s' AND %s GROUP BY d.%s ORDER BY d.%s",
				d.SegmentCol, fa.Metric, fa.Table, d.DimTable, d.EntityCol, d.EntityCol,
				d.RegionCol, region, yearIs("f."+fa.DateCol, year), d.SegmentCol, d.SegmentCol),
			d.IntentPerformance)
	}
	return out
}
