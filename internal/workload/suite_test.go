package workload

import (
	"strings"
	"testing"

	"genedit/internal/task"
)

func TestSuiteSizesMatchPaperDenominators(t *testing.T) {
	s := NewSuite(1)
	if got := len(s.CasesByDifficulty(task.Simple)); got != SimpleCount {
		t.Errorf("simple cases = %d, want %d", got, SimpleCount)
	}
	if got := len(s.CasesByDifficulty(task.Moderate)); got != ModerateCount {
		t.Errorf("moderate cases = %d, want %d", got, ModerateCount)
	}
	if got := len(s.CasesByDifficulty(task.Challenging)); got != ChallengingCount {
		t.Errorf("challenging cases = %d, want %d", got, ChallengingCount)
	}
	if got := len(s.Cases); got != SimpleCount+ModerateCount+ChallengingCount {
		t.Errorf("total cases = %d, want 132", got)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := NewSuite(7)
	b := NewSuite(7)
	if len(a.Cases) != len(b.Cases) {
		t.Fatal("case counts differ across identical seeds")
	}
	for i := range a.Cases {
		if a.Cases[i].ID != b.Cases[i].ID || a.Cases[i].GoldSQL != b.Cases[i].GoldSQL {
			t.Fatalf("case %d differs across identical seeds", i)
		}
	}
	ta := a.Databases["sports_holdings"].Table("SPORTS_FINANCIALS")
	tb := b.Databases["sports_holdings"].Table("SPORTS_FINANCIALS")
	for i := range ta.Rows {
		for j := range ta.Rows[i] {
			if !ta.Rows[i][j].Equal(tb.Rows[i][j]) && !(ta.Rows[i][j].IsNull() && tb.Rows[i][j].IsNull()) {
				t.Fatalf("data row %d differs across identical seeds", i)
			}
		}
	}
}

func TestSuiteSeedChangesData(t *testing.T) {
	a := NewSuite(1)
	b := NewSuite(2)
	ta := a.Databases["sports_holdings"].Table("SPORTS_FINANCIALS")
	tb := b.Databases["sports_holdings"].Table("SPORTS_FINANCIALS")
	same := true
	for i := range ta.Rows {
		if !ta.Rows[i][2].Equal(tb.Rows[i][2]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical metric data")
	}
}

func TestValidateGold(t *testing.T) {
	s := NewSuite(1)
	if err := s.ValidateGold(); err != nil {
		t.Fatal(err)
	}
}

func TestCasesCarryDerivedFields(t *testing.T) {
	s := NewSuite(1)
	for _, c := range s.Cases {
		if c.Steps < 2 {
			t.Errorf("case %s has %d steps; decomposition looks wrong", c.ID, c.Steps)
		}
		if len(c.Needed) == 0 {
			t.Errorf("case %s has no needed schema elements", c.ID)
		}
		if c.Question == "" || c.GoldSQL == "" {
			t.Errorf("case %s missing question or gold", c.ID)
		}
	}
}

func TestChallengingCasesAreComplex(t *testing.T) {
	s := NewSuite(1)
	for _, c := range s.CasesByDifficulty(task.Challenging) {
		if c.Steps < 8 {
			t.Errorf("challenging case %s has only %d steps", c.ID, c.Steps)
		}
	}
	for _, c := range s.CasesByDifficulty(task.Simple) {
		if c.Steps > 8 {
			t.Errorf("simple case %s has %d steps; tiering looks wrong", c.ID, c.Steps)
		}
	}
}

func TestJargonDistribution(t *testing.T) {
	s := NewSuite(1)
	count := func(d task.Difficulty) int {
		n := 0
		for _, c := range s.CasesByDifficulty(d) {
			if len(c.Terms) > 0 {
				n++
			}
		}
		return n
	}
	if got := count(task.Simple); got < 12 || got > 18 {
		t.Errorf("simple jargon cases = %d, want 12-18 (paper's w/o-instructions drop implies ~13)", got)
	}
	if got := count(task.Moderate); got < 5 || got > 9 {
		t.Errorf("moderate jargon cases = %d, want 5-9", got)
	}
	if got := count(task.Challenging); got > 3 {
		t.Errorf("challenging jargon cases = %d, want <= 3 (paper shows challenging is complexity-bound)", got)
	}
}

func TestRegistryResolvesAllQuestions(t *testing.T) {
	s := NewSuite(1)
	for _, c := range s.Cases {
		if got := s.Registry.Lookup(c.Question); got != c {
			t.Errorf("registry failed to resolve %s", c.ID)
		}
		if got := s.Registry.Lookup("Show me " + c.Question); got != c {
			t.Errorf("registry failed to resolve reformulated %s", c.ID)
		}
	}
}

func TestBuildKnowledgePerDatabase(t *testing.T) {
	s := NewSuite(1)
	for _, db := range DomainNames() {
		set, err := s.BuildKnowledge(db)
		if err != nil {
			t.Fatalf("BuildKnowledge(%s): %v", db, err)
		}
		st := set.Stats()
		if st.Examples < 30 {
			t.Errorf("%s: only %d examples in knowledge set", db, st.Examples)
		}
		if st.Instructions != 6 {
			t.Errorf("%s: %d instructions, want 6", db, st.Instructions)
		}
		if len(set.TermsIndex()) < 4 {
			t.Errorf("%s: terms index %v too small", db, set.TermsIndex())
		}
	}
	if _, err := s.BuildKnowledge("nope"); err == nil {
		t.Error("BuildKnowledge of unknown database should fail")
	}
}

func TestReplaceColumn(t *testing.T) {
	got := replaceColumn("SELECT REVENUE, REVENUE_LEGACY FROM T WHERE REVENUE > 1", "REVENUE", "X")
	want := "SELECT X, REVENUE_LEGACY FROM T WHERE X > 1"
	if got != want {
		t.Errorf("replaceColumn = %q, want %q", got, want)
	}
}

func TestEvidencePresentOnJargonCases(t *testing.T) {
	s := NewSuite(1)
	for _, c := range s.Cases {
		for _, tr := range c.Terms {
			if c.Evidence == "" {
				t.Errorf("jargon case %s has no evidence string", c.ID)
			}
			if !strings.Contains(strings.ToUpper(c.Evidence), strings.ToUpper(tr.Term)) {
				t.Errorf("case %s evidence does not mention term %s", c.ID, tr.Term)
			}
		}
	}
}
