package workload

import (
	"fmt"

	"genedit/internal/knowledge"
	"genedit/internal/task"
)

// SQL string helpers keep the templates readable.

func yearIs(dateCol string, year int) string {
	return fmt.Sprintf("YEAR(%s) = %d", dateCol, year)
}

func quarterExpr(dateCol string) string {
	return fmt.Sprintf("TO_CHAR(%s, 'YYYY\"Q\"Q')", dateCol)
}

func monthExpr(dateCol string) string {
	return fmt.Sprintf("TO_CHAR(%s, 'YYYY-MM')", dateCol)
}

func quarterPivot(dateCol, metric, q string, alias string) string {
	return fmt.Sprintf("SUM(CASE WHEN %s = '%s' THEN %s ELSE 0 END) AS %s",
		quarterExpr(dateCol), q, metric, alias)
}

// simpleCases builds the per-domain simple tier (12 cases).
func (d *domainSpec) simpleCases() []*task.Case {
	fa := d.FactA
	var out []*task.Case
	add := func(tmpl, question, gold string, mod func(*task.Case)) {
		c := &task.Case{
			ID:         fmt.Sprintf("%s-%s", d.DB, tmpl),
			DB:         d.DB,
			Difficulty: task.Simple,
			Intent:     d.IntentPerformance,
			Question:   question,
			GoldSQL:    gold,
		}
		if mod != nil {
			mod(c)
		}
		out = append(out, c)
	}

	// s-top-1 / s-top-2: top-N by total metric.
	for i, p := range []struct {
		n      int
		region string
	}{{5, d.Regions[0]}, {3, d.Regions[1]}} {
		p := p
		add(fmt.Sprintf("s-top-%d", i+1),
			fmt.Sprintf("top %d %ss by total %s in %s for 2023", p.n, d.EntityNoun, d.MetricNoun, p.region),
			fmt.Sprintf("SELECT %s, SUM(%s) AS TOTAL FROM %s WHERE %s = '%s' AND %s GROUP BY %s ORDER BY TOTAL DESC LIMIT %d",
				d.EntityCol, fa.Metric, fa.Table, d.RegionCol, p.region, yearIs(fa.DateCol, 2023), d.EntityCol, p.n),
			nil)
	}

	// s-count: row counts per category.
	add("s-count",
		fmt.Sprintf("number of %s records per %s in 2023", d.MetricNoun, d.CategoryCol),
		fmt.Sprintf("SELECT %s, COUNT(*) AS N FROM %s WHERE %s GROUP BY %s ORDER BY %s",
			d.CategoryCol, fa.Table, yearIs(fa.DateCol, 2023), d.CategoryCol, d.CategoryCol),
		nil)

	// s-list-1 / s-list-2: entities above a threshold in a month.
	for i, p := range []struct {
		v     int
		month string
	}{{1200, "2023-05"}, {1500, "2023-10"}} {
		p := p
		add(fmt.Sprintf("s-list-%d", i+1),
			fmt.Sprintf("which %ss recorded %s above %d in %s", d.EntityNoun, d.MetricNoun, p.v, p.month),
			fmt.Sprintf("SELECT DISTINCT %s FROM %s WHERE %s > %d AND %s = '%s' ORDER BY %s",
				d.EntityCol, fa.Table, fa.Metric, p.v, monthExpr(fa.DateCol), p.month, d.EntityCol),
			nil)
	}

	// s-avg-1 / s-avg-2: average metric in region/month.
	for i, p := range []struct {
		region string
		month  string
	}{{d.Regions[0], "2023-03"}, {d.Regions[2], "2023-08"}} {
		p := p
		add(fmt.Sprintf("s-avg-%d", i+1),
			fmt.Sprintf("average %s in %s during %s", d.MetricNoun, p.region, p.month),
			fmt.Sprintf("SELECT AVG(%s) AS AVG_VALUE FROM %s WHERE %s = '%s' AND %s = '%s'",
				fa.Metric, fa.Table, d.RegionCol, p.region, monthExpr(fa.DateCol), p.month),
			nil)
	}

	// s-decoy: generic metric totals where the legacy column tempts.
	gold := fmt.Sprintf("SELECT %s, SUM(%s) AS TOTAL FROM %s WHERE %s = '%s' AND %s GROUP BY %s ORDER BY %s",
		d.EntityCol, fa.Metric, fa.Table, d.RegionCol, d.Regions[0], yearIs(fa.DateCol, 2023), d.EntityCol, d.EntityCol)
	add("s-decoy",
		fmt.Sprintf("total %s per %s in %s for 2023", d.MetricNoun, d.EntityNoun, d.Regions[0]),
		gold,
		func(c *task.Case) {
			c.Decoys = []task.DecoyRequirement{{
				CorrectColumn: fa.Metric, DecoyColumn: fa.Decoy, Table: fa.Table,
				WrongSQL: replaceColumn(gold, fa.Metric, fa.Decoy),
			}}
		})

	// s-our: the company-specific "our" filter (jargon).
	goldOur := fmt.Sprintf("SELECT SUM(%s) AS TOTAL FROM %s WHERE %s = '%s' AND %s",
		fa.Metric, fa.Table, d.FlagCol, d.OwnedFlag, yearIs(fa.DateCol, 2023))
	wrongOur := fmt.Sprintf("SELECT SUM(%s) AS TOTAL FROM %s WHERE %s",
		fa.Metric, fa.Table, yearIs(fa.DateCol, 2023))
	add("s-our",
		fmt.Sprintf("total %s for %s %ss in 2023", d.MetricNoun, d.OwnPhrase, d.EntityNoun),
		goldOur,
		func(c *task.Case) {
			c.Terms = []task.TermRequirement{{Term: d.OwnPhrase, WrongSQL: wrongOur}}
			c.Evidence = fmt.Sprintf("%s %ss are those with %s = '%s'",
				d.OwnPhrase, d.EntityNoun, d.FlagCol, d.OwnedFlag)
		})

	// s-adj: the adjusted-metric acronym (jargon).
	goldAdj := fmt.Sprintf(
		"SELECT %s, SUM(CASE WHEN %s <> '%s' THEN %s * %s ELSE 0 END) AS ADJUSTED FROM %s WHERE %s GROUP BY %s ORDER BY %s",
		d.EntityCol, d.CategoryCol, d.AdjExcluded, fa.Metric, d.AdjFactor, fa.Table,
		yearIs(fa.DateCol, 2023), d.EntityCol, d.EntityCol)
	wrongAdj := fmt.Sprintf("SELECT %s, SUM(%s) AS ADJUSTED FROM %s WHERE %s GROUP BY %s ORDER BY %s",
		d.EntityCol, fa.Metric, fa.Table, yearIs(fa.DateCol, 2023), d.EntityCol, d.EntityCol)
	add("s-adj",
		fmt.Sprintf("%s per %s for 2023", d.AdjTerm, d.EntityNoun),
		goldAdj,
		func(c *task.Case) {
			c.Terms = []task.TermRequirement{{Term: d.AdjTerm, WrongSQL: wrongAdj}}
			c.Evidence = d.AdjDesc
		})

	// s-min: per-entity minimum.
	add("s-min",
		fmt.Sprintf("lowest single month %s for each %s in %s", d.MetricNoun, d.EntityNoun, d.Regions[1]),
		fmt.Sprintf("SELECT %s, MIN(%s) AS LOW FROM %s WHERE %s = '%s' GROUP BY %s ORDER BY %s",
			d.EntityCol, fa.Metric, fa.Table, d.RegionCol, d.Regions[1], d.EntityCol, d.EntityCol),
		nil)

	// s-month: best month of 2023.
	add("s-month",
		fmt.Sprintf("which month had the highest total %s in 2023", d.MetricNoun),
		fmt.Sprintf("SELECT %s AS MONTH, SUM(%s) AS TOTAL FROM %s WHERE %s GROUP BY %s ORDER BY TOTAL DESC LIMIT 1",
			monthExpr(fa.DateCol), fa.Metric, fa.Table, yearIs(fa.DateCol, 2023), monthExpr(fa.DateCol)),
		nil)

	return out
}

// moderateCases builds the per-domain moderate tier (4 cases).
func (d *domainSpec) moderateCases() []*task.Case {
	fa, fb := d.FactA, d.FactB
	var out []*task.Case
	add := func(tmpl, question, gold, intent string, mod func(*task.Case)) {
		c := &task.Case{
			ID:         fmt.Sprintf("%s-%s", d.DB, tmpl),
			DB:         d.DB,
			Difficulty: task.Moderate,
			Intent:     intent,
			Question:   question,
			GoldSQL:    gold,
		}
		if mod != nil {
			mod(c)
		}
		out = append(out, c)
	}

	// m-segment: dim join + HAVING.
	add("m-segment",
		fmt.Sprintf("total %s by %s for segments with more than one %s-flag %s in 2023",
			d.MetricNoun, d.SegmentCol, d.OwnedFlag, d.EntityNoun),
		fmt.Sprintf(
			"SELECT d.%s, SUM(f.%s) AS TOTAL FROM %s f JOIN %s d ON f.%s = d.%s WHERE %s AND f.%s = '%s' GROUP BY d.%s HAVING COUNT(DISTINCT f.%s) > 1 ORDER BY d.%s",
			d.SegmentCol, fa.Metric, fa.Table, d.DimTable, d.EntityCol, d.EntityCol,
			yearIs("f."+fa.DateCol, 2023), d.FlagCol, d.OwnedFlag, d.SegmentCol, d.EntityCol, d.SegmentCol),
		d.IntentPerformance, nil)

	// m-ratio: the domain ratio term across both fact tables (jargon).
	goldRatio := fmt.Sprintf(
		"WITH A AS (SELECT %s, SUM(%s) AS TOTAL_A FROM %s WHERE %s AND %s = '%s' GROUP BY %s), B AS (SELECT %s, SUM(%s) AS TOTAL_B FROM %s WHERE %s AND %s = '%s' GROUP BY %s) SELECT a.%s, CAST(a.TOTAL_A AS FLOAT) / NULLIF(b.TOTAL_B, 0) AS %s FROM A a JOIN B b ON a.%s = b.%s ORDER BY a.%s",
		d.EntityCol, fa.Metric, fa.Table, yearIs(fa.DateCol, 2023), d.RegionCol, d.Regions[2], d.EntityCol,
		d.EntityCol, fb.Metric, fb.Table, yearIs(fb.DateCol, 2023), d.RegionCol, d.Regions[2], d.EntityCol,
		d.EntityCol, d.RatioTerm, d.EntityCol, d.EntityCol, d.EntityCol)
	wrongRatio := fmt.Sprintf("SELECT %s, SUM(%s) AS %s FROM %s WHERE %s AND %s = '%s' GROUP BY %s ORDER BY %s",
		d.EntityCol, fa.Metric, d.RatioTerm, fa.Table, yearIs(fa.DateCol, 2023), d.RegionCol, d.Regions[2], d.EntityCol, d.EntityCol)
	add("m-ratio",
		fmt.Sprintf("%s per %s in %s for 2023", d.RatioTerm, d.EntityNoun, d.Regions[2]),
		goldRatio,
		d.IntentEfficiency,
		func(c *task.Case) {
			c.Terms = []task.TermRequirement{{Term: d.RatioTerm, WrongSQL: wrongRatio}}
			c.Evidence = d.RatioDesc
		})

	// m-pivot: conditional aggregation across quarters.
	add("m-pivot",
		fmt.Sprintf("compare Q1 and Q2 2023 total %s per %s in %s excluding %s rows",
			d.MetricNoun, d.EntityNoun, d.Regions[0], d.Categories[2]),
		fmt.Sprintf(
			"SELECT %s, %s, %s FROM %s WHERE %s IN ('2023Q1', '2023Q2') AND %s = '%s' AND %s <> '%s' GROUP BY %s ORDER BY %s",
			d.EntityCol,
			quarterPivot(fa.DateCol, fa.Metric, "2023Q1", "Q1_TOTAL"),
			quarterPivot(fa.DateCol, fa.Metric, "2023Q2", "Q2_TOTAL"),
			fa.Table, quarterExpr(fa.DateCol), d.RegionCol, d.Regions[0],
			d.CategoryCol, d.Categories[2], d.EntityCol, d.EntityCol),
		d.IntentPerformance, nil)

	// m-above: entities above the average total (CTE + scalar subquery).
	add("m-above",
		fmt.Sprintf("which %ss had 2023 total %s above the average across all %ss, counting only %s category rows",
			d.EntityNoun, d.MetricNoun, d.EntityNoun, d.Categories[0]),
		fmt.Sprintf(
			"WITH TOTALS AS (SELECT %s, SUM(%s) AS TOTAL FROM %s WHERE %s AND %s = '%s' GROUP BY %s) SELECT %s, TOTAL FROM TOTALS WHERE TOTAL > (SELECT AVG(TOTAL) FROM TOTALS) ORDER BY %s",
			d.EntityCol, fa.Metric, fa.Table, yearIs(fa.DateCol, 2023), d.CategoryCol, d.Categories[0], d.EntityCol,
			d.EntityCol, d.EntityCol),
		d.IntentPerformance, nil)

	return out
}

// challengingCases builds the per-domain challenging tier (2 cases).
func (d *domainSpec) challengingCases(termGated bool) []*task.Case {
	fa, fb := d.FactA, d.FactB
	var out []*task.Case

	// c-qoq: the appendix-style best/worst quarter-over-quarter ratio
	// change with window ranks.
	region := d.Regions[0]
	goldQoQ := fmt.Sprintf(
		"WITH FIN AS (SELECT %s, %s, %s FROM %s WHERE %s IN ('2023Q1', '2023Q2') AND %s = '%s' GROUP BY %s), "+
			"VOL AS (SELECT %s, %s, %s FROM %s WHERE %s IN ('2023Q1', '2023Q2') AND %s = '%s' GROUP BY %s), "+
			"CHG AS (SELECT f.%s AS ENTITY, -1 * ((CAST(f.A2 AS FLOAT) / NULLIF(v.B2, 0)) - (CAST(f.A1 AS FLOAT) / NULLIF(v.B1, 0))) AS PERF FROM FIN f JOIN VOL v ON f.%s = v.%s), "+
			"RANKED AS (SELECT ENTITY, PERF, ROW_NUMBER() OVER (ORDER BY PERF DESC) AS BEST_RANK, ROW_NUMBER() OVER (ORDER BY PERF ASC) AS WORST_RANK FROM CHG) "+
			"SELECT BEST_RANK, ENTITY, PERF FROM RANKED WHERE BEST_RANK <= 3 OR WORST_RANK <= 3 ORDER BY BEST_RANK",
		d.EntityCol, quarterPivot(fa.DateCol, fa.Metric, "2023Q1", "A1"), quarterPivot(fa.DateCol, fa.Metric, "2023Q2", "A2"),
		fa.Table, quarterExpr(fa.DateCol), d.RegionCol, region, d.EntityCol,
		d.EntityCol, quarterPivot(fb.DateCol, fb.Metric, "2023Q1", "B1"), quarterPivot(fb.DateCol, fb.Metric, "2023Q2", "B2"),
		fb.Table, quarterExpr(fb.DateCol), d.RegionCol, region, d.EntityCol,
		d.EntityCol, d.EntityCol, d.EntityCol)
	wrongQoQ := fmt.Sprintf(
		"WITH FIN AS (SELECT %s, %s, %s FROM %s WHERE %s IN ('2023Q1', '2023Q2') AND %s = '%s' GROUP BY %s) "+
			"SELECT %s, A2 - A1 AS PERF FROM FIN ORDER BY PERF DESC LIMIT 3",
		d.EntityCol, quarterPivot(fa.DateCol, fa.Metric, "2023Q1", "A1"), quarterPivot(fa.DateCol, fa.Metric, "2023Q2", "A2"),
		fa.Table, quarterExpr(fa.DateCol), d.RegionCol, region, d.EntityCol, d.EntityCol)

	qoq := &task.Case{
		ID:         fmt.Sprintf("%s-c-qoq", d.DB),
		DB:         d.DB,
		Difficulty: task.Challenging,
		Intent:     d.IntentPerformance,
		GoldSQL:    goldQoQ,
		Patterns:   []string{"quarter_pivot", "ratio", "window_rank"},
		Fragile:    true,
		Decoys: []task.DecoyRequirement{{
			CorrectColumn: fa.Metric, DecoyColumn: fa.Decoy, Table: fa.Table,
			WrongSQL: replaceColumn(goldQoQ, fa.Metric, fa.Decoy),
		}},
	}
	if termGated {
		qoq.Question = fmt.Sprintf("the 3 %ss with the best and worst %s in %s for Q2 2023",
			d.EntityNoun, d.ChangeTerm, region)
		qoq.Terms = []task.TermRequirement{{Term: d.ChangeTerm, WrongSQL: wrongQoQ}}
		qoq.Evidence = d.ChangeDesc + "; " + d.RatioDesc
	} else {
		qoq.Question = fmt.Sprintf(
			"rank %ss in %s by the drop in %s per %s from Q1 to Q2 2023 and show the best and worst 3",
			d.EntityNoun, region, d.MetricNoun, d.MetricBNoun)
		qoq.Evidence = d.RatioDesc
	}
	out = append(out, qoq)

	// c-share: share-of-total with window aggregate and rank over a joined
	// CTE.
	goldShare := fmt.Sprintf(
		"WITH TOTALS AS (SELECT f.%s AS ENTITY, d.%s AS SEGMENT, SUM(f.%s) AS TOTAL FROM %s f JOIN %s d ON f.%s = d.%s WHERE %s AND f.%s = '%s' GROUP BY f.%s, d.%s), "+
			"RANKED AS (SELECT ENTITY, SEGMENT, TOTAL, CAST(TOTAL AS FLOAT) / NULLIF(SUM(TOTAL) OVER (), 0) AS SHARE, RANK() OVER (ORDER BY TOTAL DESC) AS RNK FROM TOTALS) "+
			"SELECT RNK, ENTITY, SEGMENT, TOTAL, SHARE FROM RANKED WHERE RNK <= 5 ORDER BY RNK",
		d.EntityCol, d.SegmentCol, fa.Metric, fa.Table, d.DimTable, d.EntityCol, d.EntityCol,
		yearIs("f."+fa.DateCol, 2023), d.RegionCol, d.Regions[1], d.EntityCol, d.SegmentCol)
	share := &task.Case{
		ID:         fmt.Sprintf("%s-c-share", d.DB),
		DB:         d.DB,
		Difficulty: task.Challenging,
		Intent:     d.IntentPerformance,
		Question: fmt.Sprintf("share of total 2023 %s and rank for each %s in %s including its %s",
			d.MetricNoun, d.EntityNoun, d.Regions[1], d.SegmentCol),
		GoldSQL:  goldShare,
		Patterns: []string{"window_share", "window_rank", "dim_join"},
		Fragile:  true,
		Decoys: []task.DecoyRequirement{{
			CorrectColumn: fa.Metric, DecoyColumn: fa.Decoy, Table: fa.Table,
			WrongSQL: replaceColumn(goldShare, fa.Metric, fa.Decoy),
		}},
	}
	out = append(out, share)
	return out
}

// replaceColumn swaps a column identifier in SQL text. Column names in the
// synthetic schemas are unique, so plain token replacement is unambiguous.
func replaceColumn(sql, from, to string) string {
	out := ""
	for i := 0; i < len(sql); {
		if matchWord(sql, i, from) {
			out += to
			i += len(from)
			continue
		}
		out += string(sql[i])
		i++
	}
	return out
}

func matchWord(s string, i int, word string) bool {
	if i+len(word) > len(s) || s[i:i+len(word)] != word {
		return false
	}
	isWordByte := func(c byte) bool {
		return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
	}
	if i > 0 && isWordByte(s[i-1]) {
		return false
	}
	if i+len(word) < len(s) && isWordByte(s[i+len(word)]) {
		return false
	}
	return true
}

// logEntries builds the per-domain historical query log used by
// pre-processing. The entries are parameter variants of the eval templates
// (different year, region, thresholds) plus partial building blocks of the
// challenging queries — production logs contain the pieces, not the exact
// 16-step monster.
func (d *domainSpec) logEntries() []knowledge.LogEntry {
	fa, fb := d.FactA, d.FactB
	var out []knowledge.LogEntry
	add := func(id, question, sql, intent string, terms ...string) {
		out = append(out, knowledge.LogEntry{
			ID: d.DB + "-" + id, Question: question, SQL: sql,
			IntentName: intent, Terms: terms,
		})
	}

	add("log-top",
		fmt.Sprintf("top 4 %ss by total %s in %s for 2022", d.EntityNoun, d.MetricNoun, d.Regions[2]),
		fmt.Sprintf("SELECT %s, SUM(%s) AS TOTAL FROM %s WHERE %s = '%s' AND %s GROUP BY %s ORDER BY TOTAL DESC LIMIT 4",
			d.EntityCol, fa.Metric, fa.Table, d.RegionCol, d.Regions[2], yearIs(fa.DateCol, 2022), d.EntityCol),
		d.IntentPerformance)

	add("log-list",
		fmt.Sprintf("%ss with %s above 900 in 2022-09", d.EntityNoun, d.MetricNoun),
		fmt.Sprintf("SELECT DISTINCT %s FROM %s WHERE %s > 900 AND %s = '2022-09' ORDER BY %s",
			d.EntityCol, fa.Table, fa.Metric, monthExpr(fa.DateCol), d.EntityCol),
		d.IntentPerformance)

	add("log-avg",
		fmt.Sprintf("average %s in %s during 2022-11", d.MetricNoun, d.Regions[1]),
		fmt.Sprintf("SELECT AVG(%s) AS AVG_VALUE FROM %s WHERE %s = '%s' AND %s = '2022-11'",
			fa.Metric, fa.Table, d.RegionCol, d.Regions[1], monthExpr(fa.DateCol)),
		d.IntentPerformance)

	add("log-our",
		fmt.Sprintf("total %s for %s %ss in 2022", d.MetricNoun, d.OwnPhrase, d.EntityNoun),
		fmt.Sprintf("SELECT SUM(%s) AS TOTAL FROM %s WHERE %s = '%s' AND %s",
			fa.Metric, fa.Table, d.FlagCol, d.OwnedFlag, yearIs(fa.DateCol, 2022)),
		d.IntentPerformance, d.OwnPhrase)

	add("log-adj",
		fmt.Sprintf("%s per %s for 2022", d.AdjTerm, d.EntityNoun),
		fmt.Sprintf(
			"SELECT %s, SUM(CASE WHEN %s <> '%s' THEN %s * %s ELSE 0 END) AS ADJUSTED FROM %s WHERE %s GROUP BY %s ORDER BY %s",
			d.EntityCol, d.CategoryCol, d.AdjExcluded, fa.Metric, d.AdjFactor, fa.Table,
			yearIs(fa.DateCol, 2022), d.EntityCol, d.EntityCol),
		d.IntentPerformance, d.AdjTerm)

	add("log-segment",
		fmt.Sprintf("total %s by %s in 2022", d.MetricNoun, d.SegmentCol),
		fmt.Sprintf(
			"SELECT d.%s, SUM(f.%s) AS TOTAL FROM %s f JOIN %s d ON f.%s = d.%s WHERE %s GROUP BY d.%s ORDER BY d.%s",
			d.SegmentCol, fa.Metric, fa.Table, d.DimTable, d.EntityCol, d.EntityCol,
			yearIs("f."+fa.DateCol, 2022), d.SegmentCol, d.SegmentCol),
		d.IntentPerformance)

	add("log-pivot",
		fmt.Sprintf("compare Q3 and Q4 2022 total %s per %s", d.MetricNoun, d.EntityNoun),
		fmt.Sprintf(
			"SELECT %s, %s, %s FROM %s WHERE %s IN ('2022Q3', '2022Q4') GROUP BY %s ORDER BY %s",
			d.EntityCol,
			quarterPivot(fa.DateCol, fa.Metric, "2022Q3", "Q1_TOTAL"),
			quarterPivot(fa.DateCol, fa.Metric, "2022Q4", "Q2_TOTAL"),
			fa.Table, quarterExpr(fa.DateCol), d.EntityCol, d.EntityCol),
		d.IntentPerformance)

	add("log-ratio",
		fmt.Sprintf("%s per %s for 2022", d.RatioTerm, d.EntityNoun),
		fmt.Sprintf(
			"WITH A AS (SELECT %s, SUM(%s) AS TOTAL_A FROM %s WHERE %s GROUP BY %s), B AS (SELECT %s, SUM(%s) AS TOTAL_B FROM %s WHERE %s GROUP BY %s) SELECT a.%s, CAST(a.TOTAL_A AS FLOAT) / NULLIF(b.TOTAL_B, 0) AS %s FROM A a JOIN B b ON a.%s = b.%s ORDER BY a.%s",
			d.EntityCol, fa.Metric, fa.Table, yearIs(fa.DateCol, 2022), d.EntityCol,
			d.EntityCol, fb.Metric, fb.Table, yearIs(fb.DateCol, 2022), d.EntityCol,
			d.EntityCol, d.RatioTerm, d.EntityCol, d.EntityCol, d.EntityCol),
		d.IntentEfficiency, d.RatioTerm)

	// Partial building blocks of the challenging tier: a standalone ranking
	// query and a standalone ratio-change query over 2022 quarters.
	add("log-rank",
		fmt.Sprintf("rank %ss by total 2022 %s", d.EntityNoun, d.MetricNoun),
		fmt.Sprintf(
			"WITH TOTALS AS (SELECT %s AS ENTITY, SUM(%s) AS TOTAL FROM %s WHERE %s GROUP BY %s) SELECT ENTITY, TOTAL, ROW_NUMBER() OVER (ORDER BY TOTAL DESC) AS RNK FROM TOTALS ORDER BY RNK",
			d.EntityCol, fa.Metric, fa.Table, yearIs(fa.DateCol, 2022), d.EntityCol),
		d.IntentPerformance)

	add("log-change",
		fmt.Sprintf("change in %s per %s between Q3 and Q4 2022 per %s with the -1 sign convention",
			d.MetricNoun, d.MetricBNoun, d.EntityNoun),
		fmt.Sprintf(
			"WITH FIN AS (SELECT %s, %s, %s FROM %s WHERE %s IN ('2022Q3', '2022Q4') GROUP BY %s), "+
				"VOL AS (SELECT %s, %s, %s FROM %s WHERE %s IN ('2022Q3', '2022Q4') GROUP BY %s) "+
				"SELECT f.%s AS ENTITY, -1 * ((CAST(f.A2 AS FLOAT) / NULLIF(v.B2, 0)) - (CAST(f.A1 AS FLOAT) / NULLIF(v.B1, 0))) AS PERF FROM FIN f JOIN VOL v ON f.%s = v.%s ORDER BY PERF DESC",
			d.EntityCol, quarterPivot(fa.DateCol, fa.Metric, "2022Q3", "A1"), quarterPivot(fa.DateCol, fa.Metric, "2022Q4", "A2"),
			fa.Table, quarterExpr(fa.DateCol), d.EntityCol,
			d.EntityCol, quarterPivot(fb.DateCol, fb.Metric, "2022Q3", "B1"), quarterPivot(fb.DateCol, fb.Metric, "2022Q4", "B2"),
			fb.Table, quarterExpr(fb.DateCol), d.EntityCol,
			d.EntityCol, d.EntityCol, d.EntityCol),
		d.IntentPerformance, d.ChangeTerm)

	return out
}

// document builds the per-domain terminology/practices document.
func (d *domainSpec) document() knowledge.Document {
	return knowledge.Document{
		Title: d.DB + "-glossary",
		Entries: []knowledge.DocEntry{
			{
				Term: d.RatioTerm, Definition: d.RatioDesc,
				SQLHint:    fmt.Sprintf("CAST(SUM(%s) AS FLOAT) / NULLIF(SUM(%s), 0)", d.FactA.Metric, d.FactB.Metric),
				IntentName: d.IntentEfficiency,
			},
			{
				Term: d.ChangeTerm, Definition: d.ChangeDesc,
				SQLHint:    "-1 * (current_quarter_ratio - prior_quarter_ratio)",
				IntentName: d.IntentPerformance,
			},
			{
				Term: d.OwnPhrase,
				Definition: fmt.Sprintf("'%s %ss' means rows where %s = '%s'",
					d.OwnPhrase, d.EntityNoun, d.FlagCol, d.OwnedFlag),
				SQLHint:    fmt.Sprintf("%s = '%s'", d.FlagCol, d.OwnedFlag),
				IntentName: d.IntentPerformance,
			},
			{
				Term: d.AdjTerm, Definition: d.AdjDesc,
				SQLHint: fmt.Sprintf("SUM(CASE WHEN %s <> '%s' THEN %s * %s ELSE 0 END)",
					d.CategoryCol, d.AdjExcluded, d.FactA.Metric, d.AdjFactor),
				IntentName: d.IntentPerformance,
			},
			{
				Definition: "Apply a -1 multiplier when calculating the change in performance metrics",
				IntentName: d.IntentPerformance,
			},
			{
				Definition: "Use conditional aggregation (SUM of CASE WHEN) when comparing metric data across periods",
				IntentName: d.IntentPerformance,
			},
		},
	}
}
