// Package workload generates the synthetic BIRD-like benchmark ("mini-BIRD")
// the reproduction evaluates on: eight enterprise databases with seeded data,
// natural-language questions in three difficulty tiers sized to the paper's
// implied eval-set denominators (93 simple / 28 moderate / 11 challenging),
// gold SQL, requirement tags, evidence strings, and the query-log/document
// inputs GenEdit's pre-processing phase builds its knowledge set from.
package workload

// factSpec describes one fact table of a domain.
type factSpec struct {
	Table   string
	Metric  string
	Decoy   string // legacy/duplicate metric column ("" when none)
	DateCol string
}

// domainSpec declares one synthetic enterprise database: its schema
// vocabulary, entities, and the domain-specific terminology (jargon) its
// analysts use.
type domainSpec struct {
	DB        string
	EntityCol string
	Entities  []string
	// EntityNoun / MetricNoun / MetricBNoun word the questions.
	EntityNoun  string
	MetricNoun  string
	MetricBNoun string

	RegionCol string
	Regions   []string

	FlagCol   string
	OwnedFlag string
	OtherFlag string
	// OwnPhrase is how analysts refer to owned entities ("our").
	OwnPhrase string

	CategoryCol string
	Categories  []string

	FactA factSpec
	FactB factSpec

	DimTable   string
	SegmentCol string
	Segments   []string

	// RatioTerm is the metricA-per-metricB jargon (e.g. RPV = revenue per
	// viewer); RatioDesc defines it.
	RatioTerm string
	RatioDesc string
	// ChangeTerm is the quarter-over-quarter performance jargon (QoQFP);
	// it implies the ratio change with the company's -1 multiplier
	// convention.
	ChangeTerm string
	ChangeDesc string
	// AdjTerm is the adjusted-metric jargon (e.g. AGR = adjusted gross
	// revenue): Metric × AdjFactor excluding AdjExcluded categories.
	AdjTerm     string
	AdjDesc     string
	AdjFactor   string
	AdjExcluded string

	// Intent names for the domain.
	IntentPerformance string
	IntentEfficiency  string
}

// domains is the eight-database suite. The first domain mirrors the paper's
// running example (sports holding company, QoQFP/RPV).
var domains = []domainSpec{
	{
		DB: "sports_holdings", EntityCol: "ORG_NAME",
		Entities:   []string{"Orcas", "Pines", "Quarry", "Rapids", "Summit", "Tundra", "Vortex", "Wolves"},
		EntityNoun: "sports organisation", MetricNoun: "revenue", MetricBNoun: "viewers",
		RegionCol: "COUNTRY", Regions: []string{"Canada", "USA", "Mexico"},
		FlagCol: "OWNERSHIP_FLAG_COLUMN", OwnedFlag: "COC", OtherFlag: "EXT", OwnPhrase: "our",
		CategoryCol: "LEAGUE", Categories: []string{"hockey", "soccer", "exhibition"},
		FactA:    factSpec{Table: "SPORTS_FINANCIALS", Metric: "REVENUE", Decoy: "REVENUE_LEGACY", DateCol: "FIN_MONTH"},
		FactB:    factSpec{Table: "SPORTS_VIEWERSHIP", Metric: "VIEWS", DateCol: "VIEW_MONTH"},
		DimTable: "ORG_DIRECTORY", SegmentCol: "SEGMENT", Segments: []string{"pro", "amateur", "youth"},
		RatioTerm: "RPV", RatioDesc: "RPV (revenue per viewer) is total revenue divided by total viewers",
		ChangeTerm: "QoQFP", ChangeDesc: "QoQFP (quarter-over-quarter financial performance) is the change in RPV between consecutive quarters with a -1 multiplier applied",
		AdjTerm: "AGR", AdjDesc: "AGR (adjusted gross revenue) is revenue scaled by 0.9 excluding exhibition league rows",
		AdjFactor: "0.9", AdjExcluded: "exhibition",
		IntentPerformance: "financial performance", IntentEfficiency: "viewership analytics",
	},
	{
		DB: "retail_chain", EntityCol: "STORE_NAME",
		Entities:   []string{"Aspen", "Birch", "Cedar", "Dogwood", "Elm", "Fir", "Grove", "Hazel"},
		EntityNoun: "store", MetricNoun: "net sales", MetricBNoun: "visitors",
		RegionCol: "DISTRICT", Regions: []string{"North", "Central", "South"},
		FlagCol: "BANNER_FLAG", OwnedFlag: "CORE", OtherFlag: "FRN", OwnPhrase: "our",
		CategoryCol: "DEPT", Categories: []string{"grocery", "apparel", "clearance"},
		FactA:    factSpec{Table: "STORE_SALES", Metric: "NET_SALES", Decoy: "NET_SALES_OLD", DateCol: "SALE_MONTH"},
		FactB:    factSpec{Table: "STORE_TRAFFIC", Metric: "FOOTFALL", DateCol: "TRAFFIC_MONTH"},
		DimTable: "STORE_DIRECTORY", SegmentCol: "FORMAT", Segments: []string{"flagship", "standard", "outlet"},
		RatioTerm: "SPV", RatioDesc: "SPV (sales per visitor) is net sales divided by footfall",
		ChangeTerm: "QoQSP", ChangeDesc: "QoQSP (quarter-over-quarter sales performance) is the change in SPV between consecutive quarters with a -1 multiplier applied",
		AdjTerm: "ANS", AdjDesc: "ANS (adjusted net sales) is net sales scaled by 0.95 excluding clearance departments",
		AdjFactor: "0.95", AdjExcluded: "clearance",
		IntentPerformance: "sales performance", IntentEfficiency: "traffic analytics",
	},
	{
		DB: "healthcare_network", EntityCol: "CLINIC_NAME",
		Entities:   []string{"Alder", "Basil", "Clover", "Dahlia", "Ember", "Fable", "Garnet", "Harbor"},
		EntityNoun: "clinic", MetricNoun: "billed amount", MetricBNoun: "visits",
		RegionCol: "STATE", Regions: []string{"OR", "WA", "ID"},
		FlagCol: "NETWORK_FLAG", OwnedFlag: "INN", OtherFlag: "OON", OwnPhrase: "our",
		CategoryCol: "SERVICE_LINE", Categories: []string{"primary", "specialty", "elective"},
		FactA:    factSpec{Table: "CLINIC_BILLING", Metric: "BILLED_AMOUNT", Decoy: "BILLED_AMOUNT_RAW", DateCol: "BILL_MONTH"},
		FactB:    factSpec{Table: "CLINIC_VISITS", Metric: "VISITS", DateCol: "VISIT_MONTH"},
		DimTable: "CLINIC_DIRECTORY", SegmentCol: "TIER", Segments: []string{"urban", "suburban", "rural"},
		RatioTerm: "BPV", RatioDesc: "BPV (billed per visit) is billed amount divided by visit count",
		ChangeTerm: "QoQCP", ChangeDesc: "QoQCP (quarter-over-quarter clinical performance) is the change in BPV between consecutive quarters with a -1 multiplier applied",
		AdjTerm: "ABA", AdjDesc: "ABA (adjusted billed amount) is billed amount scaled by 0.85 excluding elective service lines",
		AdjFactor: "0.85", AdjExcluded: "elective",
		IntentPerformance: "billing performance", IntentEfficiency: "visit analytics",
	},
	{
		DB: "logistics_fleet", EntityCol: "ROUTE_NAME",
		Entities:   []string{"Anchor", "Beacon", "Compass", "Derrick", "Escort", "Freight", "Gantry", "Harbor"},
		EntityNoun: "route", MetricNoun: "haul cost", MetricBNoun: "deliveries",
		RegionCol: "CORRIDOR", Regions: []string{"East", "West", "Gulf"},
		FlagCol: "FLEET_FLAG", OwnedFlag: "OWN", OtherFlag: "3PL", OwnPhrase: "our",
		CategoryCol: "CARGO_TYPE", Categories: []string{"dry", "reefer", "expedited"},
		FactA:    factSpec{Table: "ROUTE_COSTS", Metric: "HAUL_COST", Decoy: "HAUL_COST_LEGACY", DateCol: "COST_MONTH"},
		FactB:    factSpec{Table: "ROUTE_DELIVERIES", Metric: "DELIVERIES", DateCol: "DELIVERY_MONTH"},
		DimTable: "ROUTE_DIRECTORY", SegmentCol: "MODE", Segments: []string{"rail", "road", "intermodal"},
		RatioTerm: "CPD", RatioDesc: "CPD (cost per delivery) is haul cost divided by delivery count",
		ChangeTerm: "QoQLC", ChangeDesc: "QoQLC (quarter-over-quarter logistics cost performance) is the change in CPD between consecutive quarters with a -1 multiplier applied",
		AdjTerm: "ALC", AdjDesc: "ALC (adjusted logistics cost) is haul cost scaled by 0.9 excluding expedited cargo",
		AdjFactor: "0.9", AdjExcluded: "expedited",
		IntentPerformance: "cost performance", IntentEfficiency: "delivery analytics",
	},
	{
		DB: "banking_branches", EntityCol: "BRANCH_NAME",
		Entities:   []string{"Atlas", "Bedrock", "Cornice", "Drake", "Emblem", "Fulcrum", "Granite", "Helm"},
		EntityNoun: "branch", MetricNoun: "interest income", MetricBNoun: "accounts",
		RegionCol: "REGION", Regions: []string{"Coastal", "Inland", "Metro"},
		FlagCol: "CHARTER_FLAG", OwnedFlag: "CHR", OtherFlag: "AGY", OwnPhrase: "our",
		CategoryCol: "PRODUCT_LINE", Categories: []string{"mortgage", "commercial", "feewaived"},
		FactA:    factSpec{Table: "BRANCH_INCOME", Metric: "INTEREST_INCOME", Decoy: "INTEREST_INCOME_PRIOR", DateCol: "INCOME_MONTH"},
		FactB:    factSpec{Table: "BRANCH_ACCOUNTS", Metric: "ACCOUNTS", DateCol: "ACCT_MONTH"},
		DimTable: "BRANCH_DIRECTORY", SegmentCol: "TIER", Segments: []string{"hub", "satellite", "kiosk"},
		RatioTerm: "IPA", RatioDesc: "IPA (income per account) is interest income divided by account count",
		ChangeTerm: "QoQBP", ChangeDesc: "QoQBP (quarter-over-quarter branch performance) is the change in IPA between consecutive quarters with a -1 multiplier applied",
		AdjTerm: "AII", AdjDesc: "AII (adjusted interest income) is interest income scaled by 0.92 excluding feewaived product lines",
		AdjFactor: "0.92", AdjExcluded: "feewaived",
		IntentPerformance: "income performance", IntentEfficiency: "account analytics",
	},
	{
		DB: "telecom_subscribers", EntityCol: "MARKET_NAME",
		Entities:   []string{"Aria", "Breve", "Chord", "Diapason", "Encore", "Forte", "Groove", "Hymn"},
		EntityNoun: "market", MetricNoun: "service revenue", MetricBNoun: "subscribers",
		RegionCol: "ZONE", Regions: []string{"Urban", "Suburban", "Rural"},
		FlagCol: "CARRIER_FLAG", OwnedFlag: "MNO", OtherFlag: "MVN", OwnPhrase: "our",
		CategoryCol: "PLAN_TYPE", Categories: []string{"postpaid", "prepaid", "roaming"},
		FactA:    factSpec{Table: "MARKET_REVENUE", Metric: "SERVICE_REVENUE", Decoy: "SERVICE_REVENUE_V1", DateCol: "REV_MONTH"},
		FactB:    factSpec{Table: "MARKET_SUBSCRIBERS", Metric: "SUBSCRIBERS", DateCol: "SUB_MONTH"},
		DimTable: "MARKET_DIRECTORY", SegmentCol: "DENSITY", Segments: []string{"dense", "standard", "sparse"},
		RatioTerm: "ARPU", RatioDesc: "ARPU (average revenue per user) is service revenue divided by subscriber count",
		ChangeTerm: "QoQMP", ChangeDesc: "QoQMP (quarter-over-quarter market performance) is the change in ARPU between consecutive quarters with a -1 multiplier applied",
		AdjTerm: "ASR", AdjDesc: "ASR (adjusted service revenue) is service revenue scaled by 0.88 excluding roaming plans",
		AdjFactor: "0.88", AdjExcluded: "roaming",
		IntentPerformance: "revenue performance", IntentEfficiency: "subscriber analytics",
	},
	{
		DB: "energy_grid", EntityCol: "PLANT_NAME",
		Entities:   []string{"Aurora", "Bastion", "Cinder", "Dynamo", "Ember", "Flux", "Geyser", "Hearth"},
		EntityNoun: "plant", MetricNoun: "generation", MetricBNoun: "capacity hours",
		RegionCol: "GRID_REGION", Regions: []string{"Northern", "Central", "Southern"},
		FlagCol: "OWNERSHIP_FLAG", OwnedFlag: "UTIL", OtherFlag: "IPP", OwnPhrase: "our",
		CategoryCol: "FUEL_TYPE", Categories: []string{"hydro", "wind", "peaker"},
		FactA:    factSpec{Table: "PLANT_OUTPUT", Metric: "MWH_GENERATED", Decoy: "MWH_GENERATED_EST", DateCol: "GEN_MONTH"},
		FactB:    factSpec{Table: "PLANT_CAPACITY", Metric: "CAPACITY_HOURS", DateCol: "CAP_MONTH"},
		DimTable: "PLANT_DIRECTORY", SegmentCol: "CLASS", Segments: []string{"baseload", "peaking", "storage"},
		RatioTerm: "GPC", RatioDesc: "GPC (generation per capacity hour) is MWh generated divided by capacity hours",
		ChangeTerm: "QoQGP", ChangeDesc: "QoQGP (quarter-over-quarter grid performance) is the change in GPC between consecutive quarters with a -1 multiplier applied",
		AdjTerm: "ANG", AdjDesc: "ANG (adjusted net generation) is MWh generated scaled by 0.93 excluding peaker fuel rows",
		AdjFactor: "0.93", AdjExcluded: "peaker",
		IntentPerformance: "generation performance", IntentEfficiency: "capacity analytics",
	},
	{
		DB: "media_streaming", EntityCol: "TITLE_NAME",
		Entities:   []string{"Argo", "Boreal", "Cascade", "Drift", "Eclipse", "Fathom", "Glacier", "Horizon"},
		EntityNoun: "title", MetricNoun: "license revenue", MetricBNoun: "streams",
		RegionCol: "TERRITORY", Regions: []string{"Americas", "EMEA", "APAC"},
		FlagCol: "CATALOG_FLAG", OwnedFlag: "ORIG", OtherFlag: "LIC", OwnPhrase: "our",
		CategoryCol: "GENRE", Categories: []string{"drama", "documentary", "trailer"},
		FactA:    factSpec{Table: "TITLE_REVENUE", Metric: "LICENSE_REVENUE", Decoy: "LICENSE_REVENUE_GROSS", DateCol: "REV_MONTH"},
		FactB:    factSpec{Table: "TITLE_STREAMS", Metric: "STREAMS", DateCol: "STREAM_MONTH"},
		DimTable: "TITLE_DIRECTORY", SegmentCol: "FORMAT", Segments: []string{"series", "film", "short"},
		RatioTerm: "RPS", RatioDesc: "RPS (revenue per stream) is license revenue divided by stream count",
		ChangeTerm: "QoQTP", ChangeDesc: "QoQTP (quarter-over-quarter title performance) is the change in RPS between consecutive quarters with a -1 multiplier applied",
		AdjTerm: "ALR", AdjDesc: "ALR (adjusted license revenue) is license revenue scaled by 0.9 excluding trailer genre rows",
		AdjFactor: "0.9", AdjExcluded: "trailer",
		IntentPerformance: "licensing performance", IntentEfficiency: "streaming analytics",
	},
}

// Domains exposes the domain count for tests and tools.
func Domains() int { return len(domains) }

// DomainNames lists the synthetic database names in suite order.
func DomainNames() []string {
	out := make([]string, len(domains))
	for i, d := range domains {
		out[i] = d.DB
	}
	return out
}
