package workload

import (
	"strings"
	"testing"
)

func TestOverloadMixDeterministicAndSkewed(t *testing.T) {
	s := NewSuite(1)
	m := NewOverloadMix(s, 7, 0.5, 0.2)

	const n = 2000
	counts := map[string]int{}
	uniques := map[string]int{}
	hotDB := m.HotDatabase()
	for i := 0; i < n; i++ {
		r := m.Request(i)
		counts[r.Kind]++
		if r.Kind == "hot" && r.Database != hotDB {
			t.Fatalf("hot request on %q, want %q", r.Database, hotDB)
		}
		if r.Kind == "unique" {
			uniques[r.Question]++
			if !strings.Contains(r.Question, "follow-up") {
				t.Fatalf("unique question %q lacks the cache-busting suffix", r.Question)
			}
		}
		// Determinism: the same index always yields the same request.
		if again := m.Request(i); again != r {
			t.Fatalf("Request(%d) is not deterministic", i)
		}
	}
	// Fractions hold to within a loose tolerance.
	if f := float64(counts["hot"]) / n; f < 0.4 || f > 0.6 {
		t.Fatalf("hot fraction %.2f, want ~0.5", f)
	}
	if f := float64(counts["unique"]) / n; f < 0.12 || f > 0.28 {
		t.Fatalf("unique fraction %.2f, want ~0.2", f)
	}
	if counts["normal"] == 0 {
		t.Fatal("no normal traffic in the mix")
	}
	// Every unique question really is unique.
	for q, c := range uniques {
		if c != 1 {
			t.Fatalf("cache-busting question %q repeated %d times", q, c)
		}
	}
}

func TestOverloadMixClamping(t *testing.T) {
	s := NewSuite(1)
	m := NewOverloadMix(s, 1, 0.9, 0.9) // sums > 1: unique is capped
	if m.hotFrac != 0.9 || m.hotFrac+m.uniqueFrac > 1 {
		t.Fatalf("fractions = %v/%v, want 0.9 and sum <= 1", m.hotFrac, m.uniqueFrac)
	}
	m = NewOverloadMix(s, 1, -1, 2)
	if m.hotFrac != 0 || m.uniqueFrac != 1 {
		t.Fatalf("fractions = %v/%v, want 0/1", m.hotFrac, m.uniqueFrac)
	}
}
