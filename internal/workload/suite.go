package workload

import (
	"fmt"
	"strings"

	"genedit/internal/decompose"
	"genedit/internal/knowledge"
	"genedit/internal/schema"
	"genedit/internal/sqldb"
	"genedit/internal/sqlexec"
	"genedit/internal/task"
)

// Eval-set sizes: the exact denominators implied by the paper's reported
// percentages (65/93 = 69.89%, 11/28 = 39.29%, 4/11 = 36.36%).
const (
	SimpleCount      = 93
	ModerateCount    = 28
	ChallengingCount = 11
)

// Suite is the full mini-BIRD benchmark: databases, eval cases, knowledge
// inputs per database, and the question registry the simulated model uses.
type Suite struct {
	Seed      uint64
	Databases map[string]*sqldb.Database
	Schemas   map[string]*schema.Schema
	Cases     []*task.Case
	// KB holds pre-processing inputs (query logs + documents) per database.
	KB map[string]knowledge.BuildInput
	// Registry resolves questions to cases for the simulated model.
	Registry *task.Registry
}

// NewSuite generates the standard benchmark with the given seed.
func NewSuite(seed uint64) *Suite {
	s := &Suite{
		Seed:      seed,
		Databases: make(map[string]*sqldb.Database, len(domains)),
		Schemas:   make(map[string]*schema.Schema, len(domains)),
		KB:        make(map[string]knowledge.BuildInput, len(domains)),
	}

	var simple, moderate, challenging [][]*task.Case
	for i := range domains {
		d := &domains[i]
		db := buildDatabase(d, seed)
		s.Databases[d.DB] = db
		s.Schemas[d.DB] = schema.FromDatabase(db, schema.DefaultTopValues)

		// Only the first two domains keep their change-term jargon on the
		// challenging tier; the rest spell the computation out, matching
		// the paper's ablation profile (challenging EX is complexity-bound,
		// not instruction-bound).
		termGated := i == 0
		simple = append(simple, d.simpleCases())
		moderate = append(moderate, d.moderateCases())
		challenging = append(challenging, d.challengingCases(termGated))

		s.KB[d.DB] = knowledge.BuildInput{
			Schema: s.Schemas[d.DB],
			Logs:   d.logEntries(),
			Docs:   []knowledge.Document{d.document()},
		}
	}

	s.Cases = append(s.Cases, interleave(simple, SimpleCount)...)
	s.Cases = append(s.Cases, interleave(moderate, ModerateCount)...)
	s.Cases = append(s.Cases, interleave(challenging, ChallengingCount)...)

	for _, c := range s.Cases {
		s.finalizeCase(c)
	}
	s.Registry = task.NewRegistry(s.Cases)
	return s
}

// interleave draws cases template-by-template across domains (round-robin)
// and truncates to n, so every domain contributes evenly to the eval set.
func interleave(perDomain [][]*task.Case, n int) []*task.Case {
	var out []*task.Case
	maxLen := 0
	for _, cases := range perDomain {
		if len(cases) > maxLen {
			maxLen = len(cases)
		}
	}
	for i := 0; i < maxLen; i++ {
		for _, cases := range perDomain {
			if i < len(cases) {
				out = append(out, cases[i])
			}
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// finalizeCase computes the derived fields: needed schema elements and the
// decomposed step count.
func (s *Suite) finalizeCase(c *task.Case) {
	sch := s.Schemas[c.DB]
	c.Needed = neededElements(c.GoldSQL, sch)
	frags, err := decompose.DecomposeSQL(c.GoldSQL)
	if err != nil {
		panic(fmt.Sprintf("case %s: gold SQL does not decompose: %v", c.ID, err))
	}
	c.Steps = len(frags)
}

// neededElements scans SQL text for the schema columns it references.
func neededElements(sql string, s *schema.Schema) []schema.Element {
	padded := " " + strings.ToUpper(wordsOnly(sql)) + " "
	var out []schema.Element
	for _, t := range s.Tables {
		if !strings.Contains(padded, " "+strings.ToUpper(t.Name)+" ") {
			continue
		}
		for _, c := range t.Columns {
			if strings.Contains(padded, " "+strings.ToUpper(c.Name)+" ") {
				out = append(out, schema.Element{Table: t.Name, Column: c.Name})
			}
		}
	}
	return out
}

func wordsOnly(s string) string {
	out := []byte(s)
	for i := 0; i < len(out); i++ {
		c := out[i]
		isWord := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !isWord {
			out[i] = ' '
		}
	}
	return string(out)
}

// CasesByDifficulty filters the eval set.
func (s *Suite) CasesByDifficulty(d task.Difficulty) []*task.Case {
	var out []*task.Case
	for _, c := range s.Cases {
		if c.Difficulty == d {
			out = append(out, c)
		}
	}
	return out
}

// BuildKnowledge runs the pre-processing phase for one database, returning
// its company-specific knowledge set.
func (s *Suite) BuildKnowledge(db string) (*knowledge.Set, error) {
	in, ok := s.KB[db]
	if !ok {
		return nil, fmt.Errorf("unknown database %q", db)
	}
	return knowledge.Build(in)
}

// Executor returns an executor over the named database.
func (s *Suite) Executor(db string) (*sqlexec.Executor, error) {
	d, ok := s.Databases[db]
	if !ok {
		return nil, fmt.Errorf("unknown database %q", db)
	}
	return sqlexec.New(d), nil
}

// ValidateGold executes every case's gold SQL and every wrong variant,
// checking that gold runs and that each wrong variant produces a different
// result. The workload's honesty depends on this property: a knowledge gap
// must be observable through execution accuracy.
func (s *Suite) ValidateGold() error {
	for _, c := range s.Cases {
		exec, err := s.Executor(c.DB)
		if err != nil {
			return err
		}
		gold, err := exec.Query(c.GoldSQL)
		if err != nil {
			return fmt.Errorf("case %s: gold SQL failed: %w", c.ID, err)
		}
		if len(gold.Rows) == 0 {
			return fmt.Errorf("case %s: gold SQL returned no rows", c.ID)
		}
		check := func(kind, wrongSQL string) error {
			if wrongSQL == "" {
				return nil
			}
			wrong, err := exec.Query(wrongSQL)
			if err != nil {
				return fmt.Errorf("case %s: %s wrong variant failed to execute: %w", c.ID, kind, err)
			}
			if resultsEqual(gold, wrong) {
				return fmt.Errorf("case %s: %s wrong variant is indistinguishable from gold", c.ID, kind)
			}
			return nil
		}
		for _, tr := range c.Terms {
			if err := check("term "+tr.Term, tr.WrongSQL); err != nil {
				return err
			}
		}
		for _, dr := range c.Decoys {
			if err := check("decoy "+dr.DecoyColumn, dr.WrongSQL); err != nil {
				return err
			}
		}
	}
	return nil
}

// resultsEqual compares results as multisets of stringified rows (the EX
// comparison; duplicated in internal/eval which owns the public metric).
func resultsEqual(a, b *sqlexec.Result) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Columns) != len(b.Columns) {
		return false
	}
	counts := make(map[string]int, len(a.Rows))
	for _, r := range a.Rows {
		counts[rowKey(r)]++
	}
	for _, r := range b.Rows {
		counts[rowKey(r)]--
		if counts[rowKey(r)] < 0 {
			return false
		}
	}
	return true
}

func rowKey(r sqldb.Row) string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.Key()
	}
	return strings.Join(parts, "\x1f")
}
