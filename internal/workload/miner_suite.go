package workload

import (
	"fmt"

	"genedit/internal/task"
)

// NewMinerSuite builds the standard suite plus injected recurring-failure
// families for the background failure miner's convergence experiments. The
// injected cases hinge on company jargon ("NBR", "PML") that no knowledge
// document defines, and their wrong variants reference columns that do not
// exist — so every generation attempt exec-fails, the failed record lands in
// the generation cache, and the same failure recurs across the family. That
// recurrence is exactly the signal the miner clusters on.
//
// The injected cases are returned separately and are NOT part of
// Suite.Cases: ValidateGold requires every wrong variant to execute (a
// knowledge gap must surface as wrong results, not errors), while a miner
// family needs the opposite — a hard, observable failure that repeats until
// knowledge fills the gap. They are registered with the suite's Registry so
// the simulated model resolves their questions.
func NewMinerSuite(seed uint64) (*Suite, []*task.Case) {
	s := NewSuite(seed)
	var injected []*task.Case
	for i := range domains {
		if i >= 2 {
			break // two databases exercise the per-db miner without bloating rounds
		}
		d := &domains[i]
		fam := append(d.minerBaselineFamily(), d.minerPeakMonthFamily()...)
		for _, c := range fam {
			s.finalizeCase(c)
			s.Registry.Add(c)
		}
		injected = append(injected, fam...)
	}
	return s, injected
}

// minerBaselineFamily is one recurring-failure family: three questions using
// the undefined "NBR" (net baseline <metric>) jargon over the same statement
// shape, differing only in the region literal. Without a defining
// instruction the model emits the wrong variant, whose baseline column does
// not exist — an exec failure on every attempt.
func (d *domainSpec) minerBaselineFamily() []*task.Case {
	fa := d.FactA
	var out []*task.Case
	for i, region := range d.Regions {
		gold := fmt.Sprintf(
			"SELECT %s, SUM(%s * 0.8) AS NBR FROM %s WHERE %s = '%s' AND %s GROUP BY %s ORDER BY %s",
			d.EntityCol, fa.Metric, fa.Table, d.RegionCol, region,
			yearIs(fa.DateCol, 2023), d.EntityCol, d.EntityCol)
		wrong := replaceColumn(gold, fa.Metric, fa.Metric+"_BASE")
		out = append(out, &task.Case{
			ID:         fmt.Sprintf("%s-mine-nbr-%d", d.DB, i+1),
			DB:         d.DB,
			Difficulty: task.Simple,
			Intent:     d.IntentPerformance,
			Question:   fmt.Sprintf("NBR per %s in %s for 2023", d.EntityNoun, region),
			GoldSQL:    gold,
			Terms:      []task.TermRequirement{{Term: "NBR", WrongSQL: wrong}},
		})
	}
	return out
}

// minerPeakMonthFamily is the second family: "PML" (peak month level)
// questions sharing a top-1-month shape, again exec-failing through a
// nonexistent source column until the term is defined.
func (d *domainSpec) minerPeakMonthFamily() []*task.Case {
	fa := d.FactA
	var out []*task.Case
	for i, region := range d.Regions {
		gold := fmt.Sprintf(
			"SELECT %s AS MONTH, SUM(%s) AS PML FROM %s WHERE %s = '%s' AND %s GROUP BY %s ORDER BY PML DESC LIMIT 1",
			monthExpr(fa.DateCol), fa.Metric, fa.Table, d.RegionCol, region,
			yearIs(fa.DateCol, 2023), monthExpr(fa.DateCol))
		wrong := replaceColumn(gold, fa.Metric, fa.Metric+"_PML_SRC")
		out = append(out, &task.Case{
			ID:         fmt.Sprintf("%s-mine-pml-%d", d.DB, i+1),
			DB:         d.DB,
			Difficulty: task.Simple,
			Intent:     d.IntentPerformance,
			Question:   fmt.Sprintf("PML for %ss in %s during 2023", d.EntityNoun, region),
			GoldSQL:    gold,
			Terms:      []task.TermRequirement{{Term: "PML", WrongSQL: wrong}},
		})
	}
	return out
}
