package workload

import (
	"fmt"
	"math/rand"

	"genedit/internal/task"
)

// OverloadRequest is one request of the adversarial serving mix.
type OverloadRequest struct {
	Database string
	Question string
	Evidence string
	// Kind tags the request class for load-report breakdowns:
	// "hot" (skewed repeat), "unique" (cache-busting), "normal".
	Kind string
}

// OverloadMix generates a deterministic adversarial request stream for
// overload testing. Three ingredients, each hostile to a different serving
// defense:
//
//   - hot-key skew: a tiny set of questions on ONE database absorbs hotFrac
//     of the stream. Cache-friendly, but drains that tenant's token bucket
//     and concentrates queueing on one engine — per-tenant isolation is
//     what keeps the other databases responsive.
//   - cache-busting uniques: uniqueFrac of requests take a real question
//     and append a never-repeated suffix. They miss the generation cache,
//     defeat coalescing, and fall off the simllm registry onto the
//     embedding path — every one pays full pipeline cost, many produce
//     failed records, exercising the failure-note path under load.
//   - the remainder samples the eval set uniformly across databases — the
//     well-behaved traffic whose latency the shedding is protecting.
//
// Request(i) is pure in (seed, i): concurrent workers can partition the
// index space without coordination and replays are exact.
type OverloadMix struct {
	seed       uint64
	hotFrac    float64
	uniqueFrac float64
	hot        []*task.Case
	all        []*task.Case
}

// DefaultHotKeys is how many distinct questions the hot set contains.
const DefaultHotKeys = 3

// NewOverloadMix builds the mix over the suite's eval set. hotFrac and
// uniqueFrac are clamped to [0, 1] (their sum capped at 1); the hot set is
// the first DefaultHotKeys cases of the suite's first database.
func NewOverloadMix(s *Suite, seed uint64, hotFrac, uniqueFrac float64) *OverloadMix {
	hotFrac = clamp01(hotFrac)
	uniqueFrac = clamp01(uniqueFrac)
	if hotFrac+uniqueFrac > 1 {
		uniqueFrac = 1 - hotFrac
	}
	m := &OverloadMix{seed: seed, hotFrac: hotFrac, uniqueFrac: uniqueFrac, all: s.Cases}
	hotDB := s.Cases[0].DB
	for _, c := range s.Cases {
		if c.DB == hotDB {
			m.hot = append(m.hot, c)
			if len(m.hot) == DefaultHotKeys {
				break
			}
		}
	}
	return m
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Request returns the i-th request of the stream.
func (m *OverloadMix) Request(i int) OverloadRequest {
	rng := rand.New(rand.NewSource(int64(m.seed ^ uint64(i)*0x9e3779b97f4a7c15)))
	r := rng.Float64()
	switch {
	case r < m.hotFrac:
		c := m.hot[rng.Intn(len(m.hot))]
		return OverloadRequest{Database: c.DB, Question: c.Question, Evidence: c.Evidence, Kind: "hot"}
	case r < m.hotFrac+m.uniqueFrac:
		c := m.all[rng.Intn(len(m.all))]
		return OverloadRequest{
			Database: c.DB,
			// The suffix guarantees a registry and cache miss while keeping
			// the question realistic enough to flow through reformulation.
			Question: fmt.Sprintf("%s (follow-up %d)", c.Question, i),
			Evidence: c.Evidence,
			Kind:     "unique",
		}
	default:
		c := m.all[rng.Intn(len(m.all))]
		return OverloadRequest{Database: c.DB, Question: c.Question, Evidence: c.Evidence, Kind: "normal"}
	}
}

// HotDatabase returns the database the hot set hammers.
func (m *OverloadMix) HotDatabase() string { return m.hot[0].DB }
