package workload

import (
	"testing"
)

func TestScaledSuiteShape(t *testing.T) {
	sc := ScaleConfig{DBFactor: 3, KnowledgeFactor: 10}
	s := NewScaledSuite(1, sc)

	wantDBs := Domains() * sc.DBFactor
	if len(s.Databases) != wantDBs {
		t.Fatalf("databases = %d, want %d", len(s.Databases), wantDBs)
	}
	// Every domain contributes its full 12+4+2 template set per clone.
	wantCases := wantDBs * 18
	if len(s.Cases) != wantCases {
		t.Fatalf("cases = %d, want %d", len(s.Cases), wantCases)
	}

	// Clone databases must have distinct seeded data from their base (the
	// row noise is salted with the database name).
	base := s.Databases["sports_holdings"]
	clone := s.Databases["sports_holdings_x001"]
	if base == nil || clone == nil {
		t.Fatal("expected both base and clone databases")
	}
	bt, ct := base.Table("SPORTS_FINANCIALS"), clone.Table("SPORTS_FINANCIALS")
	if bt == nil || ct == nil {
		t.Fatal("expected fact tables in base and clone")
	}
	same := true
	for i := range bt.Rows {
		if bt.Rows[i][2].Key() != ct.Rows[i][2].Key() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("clone database has identical metric data to its base; noise salting broke")
	}

	// Case IDs are unique across the whole scaled suite.
	seen := make(map[string]bool, len(s.Cases))
	for _, c := range s.Cases {
		if seen[c.ID] {
			t.Fatalf("duplicate case ID %s", c.ID)
		}
		seen[c.ID] = true
		if s.Databases[c.DB] == nil {
			t.Fatalf("case %s references unknown database %s", c.ID, c.DB)
		}
	}
}

func TestScaledSuiteKnowledgeGrowth(t *testing.T) {
	s := NewScaledSuite(1, ScaleConfig{DBFactor: 1, KnowledgeFactor: 10})
	kset, err := s.BuildKnowledge("sports_holdings")
	if err != nil {
		t.Fatal(err)
	}
	scaled := len(kset.Examples())

	base := NewSuite(1)
	bset, err := base.BuildKnowledge("sports_holdings")
	if err != nil {
		t.Fatal(err)
	}
	if scaled < 4*len(bset.Examples()) {
		t.Fatalf("KnowledgeFactor 10 grew examples only %d -> %d; variant log entries are not feeding the index",
			len(bset.Examples()), scaled)
	}
}

func TestScaledSuiteGoldExecutes(t *testing.T) {
	s := NewScaledSuite(1, ScaleConfig{DBFactor: 2, KnowledgeFactor: 2})
	// Sample across the case list: every clone's templates share shape with
	// the gold-validated base suite; this guards that cloning kept the SQL
	// executable against the re-seeded data.
	for i := 0; i < len(s.Cases); i += 7 {
		c := s.Cases[i]
		exec, err := s.Executor(c.DB)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Query(c.GoldSQL)
		if err != nil {
			t.Fatalf("case %s: gold SQL failed: %v", c.ID, err)
		}
		if len(res.Rows) == 0 {
			t.Fatalf("case %s: gold SQL returned no rows", c.ID)
		}
	}
}

func TestScaledSuiteDeterministic(t *testing.T) {
	a := NewScaledSuite(7, ScaleConfig{DBFactor: 2, KnowledgeFactor: 3})
	b := NewScaledSuite(7, ScaleConfig{DBFactor: 2, KnowledgeFactor: 3})
	if len(a.Cases) != len(b.Cases) {
		t.Fatalf("case counts differ: %d vs %d", len(a.Cases), len(b.Cases))
	}
	for i := range a.Cases {
		if a.Cases[i].ID != b.Cases[i].ID || a.Cases[i].GoldSQL != b.Cases[i].GoldSQL {
			t.Fatalf("case %d differs between identical builds", i)
		}
	}
	for db, in := range a.KB {
		if len(in.Logs) != len(b.KB[db].Logs) {
			t.Fatalf("db %s: log counts differ", db)
		}
	}
}
