package workload

import (
	"reflect"
	"testing"

	"genedit/internal/decompose"
	"genedit/internal/sqlparse"
)

// TestGoldPrintParseRoundTrip: every gold query survives print∘parse with an
// identical AST — the printer property over the whole realistic workload.
func TestGoldPrintParseRoundTrip(t *testing.T) {
	s := NewSuite(1)
	for _, c := range s.Cases {
		stmt, err := sqlparse.Parse(c.GoldSQL)
		if err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		again, err := sqlparse.Parse(sqlparse.Print(stmt))
		if err != nil {
			t.Fatalf("%s: re-parse: %v", c.ID, err)
		}
		if !reflect.DeepEqual(stmt, again) {
			t.Errorf("%s: print∘parse changed the AST", c.ID)
		}
	}
}

// TestGoldComposeDecomposeEXEquivalent: the §3.2 property the whole system
// rests on — re-composing a query from its decomposed fragments yields an
// execution-equivalent query — holds for every gold query in the benchmark.
func TestGoldComposeDecomposeEXEquivalent(t *testing.T) {
	s := NewSuite(1)
	for _, c := range s.Cases {
		frags, err := decompose.DecomposeSQL(c.GoldSQL)
		if err != nil {
			t.Fatalf("%s: decompose: %v", c.ID, err)
		}
		composed, err := decompose.ComposeSQL(frags)
		if err != nil {
			t.Fatalf("%s: compose: %v", c.ID, err)
		}
		exec, err := s.Executor(c.DB)
		if err != nil {
			t.Fatal(err)
		}
		want, err := exec.Query(c.GoldSQL)
		if err != nil {
			t.Fatalf("%s: gold: %v", c.ID, err)
		}
		got, err := exec.Query(composed)
		if err != nil {
			t.Fatalf("%s: composed query failed: %v\n%s", c.ID, err, composed)
		}
		if !resultsEqual(want, got) {
			t.Errorf("%s: compose∘decompose changed the result", c.ID)
		}
	}
}

// TestLogQueriesDecomposeAndExecute: the pre-processing inputs (query logs)
// are themselves executable and decomposable for every domain.
func TestLogQueriesDecomposeAndExecute(t *testing.T) {
	s := NewSuite(1)
	for db, in := range s.KB {
		exec, err := s.Executor(db)
		if err != nil {
			t.Fatal(err)
		}
		for _, entry := range in.Logs {
			if _, err := exec.Query(entry.SQL); err != nil {
				t.Errorf("%s: log %s does not execute: %v", db, entry.ID, err)
			}
			if _, err := decompose.DecomposeSQL(entry.SQL); err != nil {
				t.Errorf("%s: log %s does not decompose: %v", db, entry.ID, err)
			}
		}
	}
}
