package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genedit/internal/generr"
)

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestTokenBucketPerTenant(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{RatePerSec: 1, Burst: 2})
	c.SetClock(clk.Now)
	ctx := context.Background()

	// Tenant A spends its burst of 2; the third request is rate-limited.
	for i := 0; i < 2; i++ {
		release, err := c.Admit(ctx, "a")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release()
	}
	_, err := c.Admit(ctx, "a")
	if !errors.Is(err, generr.ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
	if hint, ok := generr.RetryAfterHint(err); !ok || hint <= 0 || hint > time.Second {
		t.Fatalf("want retry hint in (0, 1s], got %v ok=%v", hint, ok)
	}

	// Tenant B has its own bucket: unaffected by A's exhaustion.
	if release, err := c.Admit(ctx, "b"); err != nil {
		t.Fatalf("tenant b should be admitted: %v", err)
	} else {
		release()
	}

	// Refill: after 1s tenant A has one token again.
	clk.Advance(time.Second)
	if release, err := c.Admit(ctx, "a"); err != nil {
		t.Fatalf("tenant a after refill: %v", err)
	} else {
		release()
	}
	// ...but only one.
	if _, err := c.Admit(ctx, "a"); !errors.Is(err, generr.ErrRateLimited) {
		t.Fatalf("want ErrRateLimited after spending refill, got %v", err)
	}

	st := c.Stats()
	if st.RateLimited != 2 {
		t.Fatalf("want 2 rate-limited, got %d", st.RateLimited)
	}
	if ts := st.Tenants["a"]; ts.Admitted != 3 || ts.RateLimited != 2 {
		t.Fatalf("tenant a stats = %+v", ts)
	}
	if ts := st.Tenants["b"]; ts.Admitted != 1 || ts.RateLimited != 0 {
		t.Fatalf("tenant b stats = %+v", ts)
	}
}

func TestBurstDefaultsToRate(t *testing.T) {
	c := New(Config{RatePerSec: 0.5})
	if c.cfg.Burst != 1 {
		t.Fatalf("want burst default 1, got %v", c.cfg.Burst)
	}
	c = New(Config{RatePerSec: 8})
	if c.cfg.Burst != 8 {
		t.Fatalf("want burst default 8, got %v", c.cfg.Burst)
	}
}

func TestConcurrencyGateAndQueueFIFO(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 2})
	ctx := context.Background()

	release1, err := c.Admit(ctx, "a")
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}

	// Two waiters queue; a third arrival sheds with ErrOverloaded.
	results := make(chan int, 2)
	var started sync.WaitGroup
	admitAsync := func(id int) {
		started.Add(1)
		go func() {
			started.Done()
			release, err := c.Admit(ctx, "a")
			if err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			results <- id
			release()
		}()
	}
	admitAsync(1)
	started.Wait()
	waitForQueued(t, c, 1)
	admitAsync(2)
	started.Wait()
	waitForQueued(t, c, 2)

	if _, err := c.Admit(ctx, "a"); !errors.Is(err, generr.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded on full queue, got %v", err)
	}

	// Release dispatches the waiters in FIFO order.
	release1()
	if got := <-results; got != 1 {
		t.Fatalf("want waiter 1 first, got %d", got)
	}
	if got := <-results; got != 2 {
		t.Fatalf("want waiter 2 second, got %d", got)
	}
	st := c.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("want drained gauges, got inflight=%d queued=%d", st.InFlight, st.Queued)
	}
	if st.Admitted != 3 || st.ShedQueueFull != 1 || st.MaxQueueDepth != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeadlineAwareShed(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{MaxConcurrent: 1, MaxQueue: 8})
	c.SetClock(clk.Now)
	ctx := context.Background()

	// Seed the service-time estimate: one 100ms request.
	release, err := c.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(100 * time.Millisecond)
	release()

	// Occupy the only slot.
	releaseHold, err := c.Admit(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}

	// A request whose deadline is sooner than the ~100ms estimated wait is
	// shed immediately instead of queued to die. The context deadline is
	// real wall-clock, but the controller compares against its own clock:
	// pick a deadline far in the fake clock's past... the controller uses
	// ctx.Deadline() verbatim, so build one relative to the fake now.
	doomed, cancel := context.WithDeadline(context.Background(), clk.Now().Add(10*time.Millisecond))
	defer cancel()
	_, err = c.Admit(doomed, "a")
	if !errors.Is(err, generr.ErrOverloaded) {
		t.Fatalf("want deadline shed (ErrOverloaded), got %v", err)
	}
	if st := c.Stats(); st.ShedDeadline != 1 || st.Queued != 0 {
		t.Fatalf("stats after deadline shed = %+v", st)
	}

	// A request with generous headroom queues instead. (Real wall-clock
	// deadline: context expiry runs on the real clock even though the
	// controller's estimate math runs on the fake one.)
	roomy, cancel2 := context.WithTimeout(context.Background(), time.Hour)
	defer cancel2()
	admitted := make(chan struct{})
	go func() {
		release, err := c.Admit(roomy, "a")
		if err != nil {
			t.Errorf("roomy waiter: %v", err)
			return
		}
		release()
		close(admitted)
	}()
	waitForQueued(t, c, 1)
	releaseHold()
	<-admitted
}

func TestQueuedWaiterCancellation(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	release, err := c.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, "a")
		errCh <- err
	}()
	waitForQueued(t, c, 1)
	cancel()
	if err := <-errCh; !errors.Is(err, generr.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want canceled error, got %v", err)
	}
	if st := c.Stats(); st.CanceledInQueue != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The abandoned waiter must not consume the released slot.
	release()
	if release2, err := c.Admit(context.Background(), "a"); err != nil {
		t.Fatalf("slot should be free after cancel+release: %v", err)
	} else {
		release2()
	}
}

func TestCloseShedsQueueAndRefusesNewWork(t *testing.T) {
	c := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	release, err := c.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), "a")
		errCh <- err
	}()
	waitForQueued(t, c, 1)
	c.Close()
	if err := <-errCh; !errors.Is(err, generr.ErrOverloaded) {
		t.Fatalf("queued waiter on Close: want ErrOverloaded, got %v", err)
	}
	if _, err := c.Admit(context.Background(), "a"); !errors.Is(err, generr.ErrOverloaded) {
		t.Fatalf("post-Close admit: want ErrOverloaded, got %v", err)
	}
	// The in-flight request's release stays valid after Close.
	release()
	c.Close() // idempotent
}

func TestReleaseIdempotent(t *testing.T) {
	c := New(Config{MaxConcurrent: 2, MaxQueue: 0})
	release, err := c.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // double release must not free a second slot
	if st := c.Stats(); st.InFlight != 0 {
		t.Fatalf("inflight = %d after double release", st.InFlight)
	}
	r1, err := c.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	r2, err := c.Admit(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer r2()
	if st := c.Stats(); st.InFlight != 2 {
		t.Fatalf("inflight = %d, want 2", st.InFlight)
	}
}

// TestAdmissionStress hammers the controller from many goroutines under
// -race: slots never exceed MaxConcurrent, every admit is released, and the
// controller drains to zero.
func TestAdmissionStress(t *testing.T) {
	const (
		workers       = 16
		perWorker     = 200
		maxConcurrent = 4
	)
	c := New(Config{RatePerSec: 1e9, MaxConcurrent: maxConcurrent, MaxQueue: 8})
	var inflight, peak atomic.Int64
	var admitted, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx := context.Background()
				if i%7 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Millisecond)
					defer cancel()
				}
				release, err := c.Admit(ctx, "tenant")
				if err != nil {
					shed.Add(1)
					continue
				}
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				admitted.Add(1)
				inflight.Add(-1)
				release()
			}
		}(w)
	}
	wg.Wait()
	if p := peak.Load(); p > maxConcurrent {
		t.Fatalf("observed %d concurrent admissions, cap is %d", p, maxConcurrent)
	}
	st := c.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("controller did not drain: %+v", st)
	}
	if got := int64(st.Admitted); got != admitted.Load() {
		t.Fatalf("admitted counter %d != observed %d", got, admitted.Load())
	}
}

// waitForQueued polls until the controller reports n queued waiters.
func waitForQueued(t *testing.T, c *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Stats().Queued == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached %d (stats %+v)", n, c.Stats())
}
