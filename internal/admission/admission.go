// Package admission is the serving layer's overload defense: per-tenant
// token-bucket rate limiting in front of a bounded, deadline-aware request
// queue. It decides, for every request, one of three fates *before* any
// expensive work runs:
//
//   - admit: a concurrency slot is held until the caller's release func runs;
//   - rate-limit: the tenant is over its token budget — shed immediately
//     with generr.ErrRateLimited and a Retry-After hint (never queued, so
//     one hot tenant cannot fill the queue and starve the rest);
//   - overload: the service is out of capacity — queue full, the request
//     provably cannot start before its deadline, or the controller is
//     shutting down — shed with generr.ErrOverloaded.
//
// Deadline awareness is the load-shedding refinement: a queued request that
// will miss its deadline anyway is pure waste (it occupies a queue slot,
// then dies at dispatch). The controller keeps an EWMA of recent service
// times and sheds a request at arrival when its estimated queue wait already
// overruns the context deadline — failing in microseconds instead of
// timing out in seconds, and leaving the queue for requests that can still
// make it.
//
// Concurrency contract: all methods are safe for concurrent use. Admit
// blocks only while queued (bounded by MaxQueue) and honors ctx
// cancellation; Close wakes every queued waiter with an overload error.
package admission

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"genedit/internal/generr"
)

// Config bounds one Controller.
type Config struct {
	// RatePerSec is each tenant's token-bucket refill rate (tokens per
	// second, one token per request). <= 0 disables rate limiting.
	RatePerSec float64
	// Burst is each tenant's bucket capacity — the largest instantaneous
	// spike a tenant can spend. Defaults to max(1, RatePerSec) when unset.
	Burst float64
	// MaxConcurrent bounds requests past admission at once. <= 0 disables
	// the concurrency gate (rate limiting may still apply).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a concurrency slot; arrivals
	// beyond it are shed immediately. Only meaningful with MaxConcurrent;
	// <= 0 means no waiting — a full house sheds instantly.
	MaxQueue int
}

// Stats is a point-in-time snapshot of the controller's counters.
type Stats struct {
	// Admitted counts requests granted a slot (including after queueing).
	Admitted uint64 `json:"admitted"`
	// RateLimited counts sheds by a tenant's token bucket.
	RateLimited uint64 `json:"rate_limited"`
	// ShedQueueFull counts sheds because the wait queue was at MaxQueue.
	ShedQueueFull uint64 `json:"shed_queue_full"`
	// ShedDeadline counts arrivals shed because their estimated queue wait
	// overran the request deadline.
	ShedDeadline uint64 `json:"shed_deadline"`
	// CanceledInQueue counts waiters whose context died while queued.
	CanceledInQueue uint64 `json:"canceled_in_queue"`
	// ShedShutdown counts requests refused because the controller closed.
	ShedShutdown uint64 `json:"shed_shutdown"`
	// InFlight and Queued are current gauges; MaxQueueDepth is the
	// high-water mark of Queued over the controller's lifetime.
	InFlight      int `json:"in_flight"`
	Queued        int `json:"queued"`
	MaxQueueDepth int `json:"max_queue_depth"`
	// AvgServiceMS is the EWMA of recent admitted-request service times
	// (the deadline-shedding estimate), 0 until the first completion.
	AvgServiceMS float64 `json:"avg_service_ms"`
	// Tenants holds per-tenant admission counters.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's admission record.
type TenantStats struct {
	Admitted    uint64 `json:"admitted"`
	RateLimited uint64 `json:"rate_limited"`
}

// ewmaAlpha weights the newest service-time sample; ~20 samples of memory.
const ewmaAlpha = 0.1

// bucket is one tenant's token bucket, refilled lazily on access.
type bucket struct {
	tokens float64
	last   time.Time
	stats  TenantStats
}

// waiter is one queued request. Its outcome (granted slot vs. shutdown) is
// decided exactly once under the controller mutex — resolved flips first,
// then done is closed — so the slow queue path, ctx cancellation and Close
// can race without double-granting or leaking a slot.
type waiter struct {
	done     chan struct{}
	resolved bool // outcome decided; entry no longer counts as queued
	granted  bool // valid once resolved: true = owns a concurrency slot
}

// Controller enforces one Config. The zero value is not usable; use New.
type Controller struct {
	cfg Config
	// now is the clock, swappable in tests.
	now func() time.Time

	mu       sync.Mutex
	buckets  map[string]*bucket
	inflight int
	queue    []*waiter // FIFO; resolved entries are skipped at dispatch
	queued   int       // unresolved queue entries
	avgSvc   float64   // EWMA of service seconds; 0 = no estimate yet
	closed   bool
	stats    Stats
}

// New builds a Controller for cfg, normalizing defaults (Burst defaults to
// max(1, RatePerSec) so a configured rate always admits single requests).
func New(cfg Config) *Controller {
	if cfg.RatePerSec > 0 && cfg.Burst <= 0 {
		cfg.Burst = math.Max(1, cfg.RatePerSec)
	}
	return &Controller{
		cfg:     cfg,
		now:     time.Now,
		buckets: make(map[string]*bucket),
	}
}

// SetClock replaces the controller's time source (tests only; not safe
// concurrently with Admit).
func (c *Controller) SetClock(now func() time.Time) { c.now = now }

// Admit runs the full admission decision for one request of tenant. On
// success it returns a release func that MUST be called exactly once when
// the request finishes — it frees the concurrency slot (handing it to the
// oldest live waiter) and feeds the service-time estimate. On shed it
// returns a typed overload error (generr.ErrRateLimited /
// generr.ErrOverloaded); if ctx dies while queued, a generr.Canceled error.
func (c *Controller) Admit(ctx context.Context, tenant string) (release func(), err error) {
	c.mu.Lock()
	if c.closed {
		c.stats.ShedShutdown++
		c.mu.Unlock()
		return nil, generr.Overloaded(tenant, "service is shutting down", 0)
	}

	// Stage 1: per-tenant token bucket. Over-budget tenants are shed here,
	// before they can occupy queue capacity shared with everyone else.
	if c.cfg.RatePerSec > 0 {
		b := c.bucketLocked(tenant)
		if b.tokens < 1 {
			b.stats.RateLimited++
			c.stats.RateLimited++
			wait := time.Duration((1 - b.tokens) / c.cfg.RatePerSec * float64(time.Second))
			c.mu.Unlock()
			return nil, generr.RateLimited(tenant, "token budget exhausted", wait)
		}
		b.tokens--
		b.stats.Admitted++
	}

	// Stage 2: concurrency gate.
	if c.cfg.MaxConcurrent <= 0 || c.inflight < c.cfg.MaxConcurrent {
		c.inflight++
		c.stats.Admitted++
		start := c.now()
		c.mu.Unlock()
		return c.releaseFunc(start), nil
	}

	// Full house: shed on a full queue, fail fast on a doomed deadline,
	// otherwise queue.
	if c.queued >= c.cfg.MaxQueue {
		c.stats.ShedQueueFull++
		retry := c.retryEstimateLocked(c.queued)
		depth := c.queued
		c.mu.Unlock()
		return nil, generr.Overloaded(tenant,
			fmt.Sprintf("queue full at depth %d", depth), retry)
	}
	if dl, ok := ctx.Deadline(); ok && c.avgSvc > 0 {
		// Estimated wait until this request could start: everyone queued
		// ahead of it plus itself, served MaxConcurrent at a time.
		wait := c.queueWaitLocked(c.queued + 1)
		if c.now().Add(wait).After(dl) {
			c.stats.ShedDeadline++
			c.mu.Unlock()
			return nil, generr.Overloaded(tenant,
				fmt.Sprintf("cannot start before deadline (estimated wait %s)", wait.Round(time.Millisecond)),
				wait)
		}
	}

	w := &waiter{done: make(chan struct{})}
	c.queue = append(c.queue, w)
	c.queued++
	if c.queued > c.stats.MaxQueueDepth {
		c.stats.MaxQueueDepth = c.queued
	}
	c.mu.Unlock()

	select {
	case <-w.done:
		return c.settleWoken(w, tenant)
	case <-ctx.Done():
		c.mu.Lock()
		if w.resolved {
			// A grant or shutdown landed between ctx.Done and the lock;
			// honor it — taking a granted slot beats leaking it.
			c.mu.Unlock()
			<-w.done
			return c.settleWoken(w, tenant)
		}
		w.resolved = true
		c.queued--
		c.stats.CanceledInQueue++
		c.mu.Unlock()
		return nil, generr.Canceled(ctx.Err())
	}
}

// settleWoken finishes a waiter whose outcome was decided by a releasing
// request (granted) or by Close (shutdown).
func (c *Controller) settleWoken(w *waiter, tenant string) (func(), error) {
	if !w.granted {
		return nil, generr.Overloaded(tenant, "service is shutting down", 0)
	}
	c.mu.Lock()
	c.stats.Admitted++
	start := c.now()
	c.mu.Unlock()
	return c.releaseFunc(start), nil
}

// releaseFunc builds the once-only completion callback for an admitted
// request.
func (c *Controller) releaseFunc(start time.Time) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			elapsed := c.now().Sub(start).Seconds()
			c.mu.Lock()
			if c.avgSvc == 0 {
				c.avgSvc = elapsed
			} else {
				c.avgSvc = (1-ewmaAlpha)*c.avgSvc + ewmaAlpha*elapsed
			}
			// Hand the slot to the oldest live waiter (inflight unchanged),
			// else free it.
			var grant *waiter
			for len(c.queue) > 0 {
				w := c.queue[0]
				c.queue = c.queue[1:]
				if w.resolved {
					continue
				}
				w.resolved = true
				w.granted = true
				c.queued--
				grant = w
				break
			}
			if grant == nil {
				c.inflight--
			}
			c.mu.Unlock()
			if grant != nil {
				close(grant.done)
			}
		})
	}
}

// bucketLocked refills and returns tenant's bucket. Caller holds c.mu.
func (c *Controller) bucketLocked(tenant string) *bucket {
	b, ok := c.buckets[tenant]
	now := c.now()
	if !ok {
		b = &bucket{tokens: c.cfg.Burst, last: now}
		c.buckets[tenant] = b
		return b
	}
	b.tokens = math.Min(c.cfg.Burst, b.tokens+now.Sub(b.last).Seconds()*c.cfg.RatePerSec)
	b.last = now
	return b
}

// queueWaitLocked estimates how long a request at queue position pos (1 =
// next to start) waits for a slot. Caller holds c.mu; avgSvc > 0.
func (c *Controller) queueWaitLocked(pos int) time.Duration {
	waves := math.Ceil(float64(pos) / float64(c.cfg.MaxConcurrent))
	return time.Duration(waves * c.avgSvc * float64(time.Second))
}

// retryEstimateLocked is the Retry-After hint for a queue-full shed: the
// estimated time for the queue to drain one request's worth of headroom.
func (c *Controller) retryEstimateLocked(depth int) time.Duration {
	if c.avgSvc == 0 || c.cfg.MaxConcurrent <= 0 {
		return 0
	}
	return c.queueWaitLocked(depth)
}

// Close sheds every queued waiter with generr.ErrOverloaded and makes all
// future Admit calls fail fast the same way. In-flight requests are
// unaffected; their release funcs stay valid. Close is idempotent.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	var wake []*waiter
	for _, w := range c.queue {
		if !w.resolved {
			w.resolved = true
			c.queued--
			c.stats.ShedShutdown++
			wake = append(wake, w)
		}
	}
	c.queue = nil
	c.mu.Unlock()
	for _, w := range wake {
		close(w.done)
	}
}

// Stats snapshots the controller's counters and gauges.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.InFlight = c.inflight
	st.Queued = c.queued
	st.AvgServiceMS = c.avgSvc * 1000
	st.Tenants = make(map[string]TenantStats, len(c.buckets))
	for t, b := range c.buckets {
		st.Tenants[t] = b.stats
	}
	return st
}
