package gencache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"genedit/internal/generr"
	"genedit/internal/pipeline"
)

func record(sql string) *pipeline.Record {
	return &pipeline.Record{FinalSQL: sql, OK: true}
}

func TestKeyComponentsDoNotAlias(t *testing.T) {
	// Distinct tuples must produce distinct keys however the components are
	// spelled around the separators.
	keys := map[string]string{}
	add := func(db string, ver int, q, ev string) {
		k := Key(db, ver, q, ev)
		id := fmt.Sprintf("(%q,%d,%q,%q)", db, ver, q, ev)
		if prev, ok := keys[k]; ok {
			t.Errorf("key collision: %s and %s -> %q", prev, id, k)
		}
		keys[k] = id
	}
	add("db", 1, "q", "")
	add("db", 1, "", "q")
	add("db1", 1, "q", "")
	add("db", 11, "q", "")
	add("db", 1, "q 1", "")
	add("d", 1, "bq", "")
	add("db", 1, "q", "e")
	add("db", 1, "q e", "")
}

func TestKeyNormalizesQuestion(t *testing.T) {
	a := Key("db", 3, "  Top   5 ORGS\tby revenue ", "ev")
	b := Key("db", 3, "top 5 orgs by revenue", "ev")
	if a != b {
		t.Errorf("normalized questions should share a key:\n%q\n%q", a, b)
	}
	if Key("db", 3, "top 5 orgs", "ev") == Key("db", 4, "top 5 orgs", "ev") {
		t.Error("different knowledge versions must not share a key")
	}
}

func TestDoCachesAndHits(t *testing.T) {
	c := New(8)
	calls := 0
	gen := func() (*pipeline.Record, error) {
		calls++
		return record("SELECT 1"), nil
	}
	ctx := context.Background()
	rec1, cached, err := c.Do(ctx, "k", gen)
	if err != nil || cached || calls != 1 {
		t.Fatalf("first Do: rec=%v cached=%v err=%v calls=%d", rec1, cached, err, calls)
	}
	rec2, cached, err := c.Do(ctx, "k", gen)
	if err != nil || !cached || calls != 1 {
		t.Fatalf("second Do: cached=%v err=%v calls=%d", cached, err, calls)
	}
	if rec1 != rec2 {
		t.Error("cache hit must return the identical shared record")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 || st.Entries != 1 || st.Capacity != 8 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDoDoesNotCacheErrors(t *testing.T) {
	c := New(8)
	calls := 0
	boom := errors.New("boom")
	gen := func() (*pipeline.Record, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return record("ok"), nil
	}
	ctx := context.Background()
	if _, _, err := c.Do(ctx, "k", gen); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("error result was cached: %+v", st)
	}
	rec, cached, err := c.Do(ctx, "k", gen)
	if err != nil || cached || rec.FinalSQL != "ok" || calls != 2 {
		t.Fatalf("retry after error: rec=%v cached=%v err=%v calls=%d", rec, cached, err, calls)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	ctx := context.Background()
	gen := func(sql string) func() (*pipeline.Record, error) {
		return func() (*pipeline.Record, error) { return record(sql), nil }
	}
	c.Do(ctx, "a", gen("a"))
	c.Do(ctx, "b", gen("b"))
	c.Do(ctx, "a", gen("a")) // refresh a
	c.Do(ctx, "c", gen("c")) // evicts b
	if _, cached, _ := c.Do(ctx, "a", gen("a2")); !cached {
		t.Error("a should have survived (recently used)")
	}
	if rec, cached, _ := c.Do(ctx, "b", gen("b2")); cached || rec.FinalSQL != "b2" {
		t.Errorf("b should have been evicted; cached=%v rec=%v", cached, rec)
	}
}

func TestCoalescingSharesOneGeneration(t *testing.T) {
	c := New(8)
	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	gen := func() (*pipeline.Record, error) {
		calls.Add(1)
		close(started)
		<-release
		return record("shared"), nil
	}
	ctx := context.Background()

	leaderDone := make(chan *pipeline.Record, 1)
	go func() {
		rec, _, _ := c.Do(ctx, "k", gen)
		leaderDone <- rec
	}()
	<-started

	const waiters = 8
	var wg sync.WaitGroup
	recs := make([]*pipeline.Record, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec, cached, err := c.Do(ctx, "k", func() (*pipeline.Record, error) {
				t.Error("waiter ran its own generation")
				return nil, errors.New("unreachable")
			})
			if err != nil || !cached {
				t.Errorf("waiter %d: cached=%v err=%v", i, cached, err)
			}
			recs[i] = rec
		}(i)
	}
	// Give the waiters time to join the flight before releasing the leader.
	for {
		if st := c.Stats(); st.Coalesced == waiters {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	leader := <-leaderDone

	if calls.Load() != 1 {
		t.Fatalf("generation ran %d times, want 1", calls.Load())
	}
	for i, rec := range recs {
		if rec != leader {
			t.Errorf("waiter %d got a different record than the leader", i)
		}
	}
	st := c.Stats()
	if st.Coalesced != waiters || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWaiterCancellationLeavesFlightRunning(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	release := make(chan struct{})
	gen := func() (*pipeline.Record, error) {
		close(started)
		<-release
		return record("late"), nil
	}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do(context.Background(), "k", gen)
	}()
	<-started

	wctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.Do(wctx, "k", nil) // nil generate: must never run
		waiterErr <- err
	}()
	for {
		if st := c.Stats(); st.Coalesced == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-waiterErr; !errors.Is(err, generr.ErrCanceled) {
		t.Fatalf("canceled waiter err = %v, want ErrCanceled", err)
	}
	close(release)
	<-leaderDone
	// The flight still completed and cached its record.
	rec, cached, err := c.Do(context.Background(), "k", nil)
	if err != nil || !cached || rec.FinalSQL != "late" {
		t.Fatalf("flight result lost: rec=%v cached=%v err=%v", rec, cached, err)
	}
}

func TestCanceledLeaderDoesNotPoisonWaiters(t *testing.T) {
	c := New(8)
	started := make(chan struct{})
	release := make(chan struct{})
	leaderGen := func() (*pipeline.Record, error) {
		close(started)
		<-release
		return nil, generr.Canceled(context.Canceled)
	}
	go c.Do(context.Background(), "k", leaderGen)
	<-started

	waiterDone := make(chan *pipeline.Record, 1)
	go func() {
		rec, _, err := c.Do(context.Background(), "k", func() (*pipeline.Record, error) {
			return record("retried"), nil
		})
		if err != nil {
			t.Errorf("waiter err = %v", err)
		}
		waiterDone <- rec
	}()
	for {
		if st := c.Stats(); st.Coalesced >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	// The waiter must retry (becoming the new leader) rather than inherit
	// the leader's cancellation.
	if rec := <-waiterDone; rec == nil || rec.FinalSQL != "retried" {
		t.Fatalf("waiter record = %v, want retried generation", rec)
	}
}

func TestDoConcurrentMixedKeys(t *testing.T) {
	c := New(64)
	var calls atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				rec, _, err := c.Do(context.Background(), key, func() (*pipeline.Record, error) {
					calls.Add(1)
					return record("sql-" + key), nil
				})
				if err != nil || rec.FinalSQL != "sql-"+key {
					t.Errorf("worker %d: rec=%v err=%v", w, rec, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// 16 distinct keys: at most a few generations each under heavy reuse.
	if n := calls.Load(); n < 16 || n > 64 {
		t.Errorf("generation calls = %d, want close to 16", n)
	}
	st := c.Stats()
	if st.Hits+st.Coalesced+st.Misses != 8*200 {
		t.Errorf("counter sum %d != request count %d (%+v)", st.Hits+st.Coalesced+st.Misses, 8*200, st)
	}
}

func TestNormalizeQuestion(t *testing.T) {
	cases := map[string]string{
		"  Top   5  ":        "top 5",
		"A\tB\nC":            "a b c",
		"":                   "",
		"   ":                "",
		"already normalized": "already normalized",
	}
	for in, want := range cases {
		if got := NormalizeQuestion(in); got != want {
			t.Errorf("NormalizeQuestion(%q) = %q, want %q", in, got, want)
		}
	}
	if !strings.Contains(Key("db", 1, "A  B", ""), "a b") {
		t.Error("key should embed the normalized question")
	}
}

func TestStaleFamilyIndex(t *testing.T) {
	c := New(8)
	ctx := context.Background()
	k1 := RequestKey{Database: "db", Version: 1, Question: "top orgs", Evidence: "ev"}

	// Nothing cached: no stale hit.
	if _, _, ok := c.PeekStale(k1); ok {
		t.Fatal("PeekStale hit on empty cache")
	}

	// Cache a v1 record; a v2 request's family finds it.
	if _, _, err := c.DoVersioned(ctx, k1, func() (*pipeline.Record, error) {
		return record("SELECT v1"), nil
	}); err != nil {
		t.Fatal(err)
	}
	k2 := k1
	k2.Version = 2
	rec, ver, ok := c.PeekStale(k2)
	if !ok || ver != 1 || rec.FinalSQL != "SELECT v1" {
		t.Fatalf("stale lookup = (%v, %d, %v), want v1 record", rec, ver, ok)
	}

	// Question normalization applies to the family key too.
	kNorm := RequestKey{Database: "db", Version: 9, Question: "  TOP   ORGS ", Evidence: "ev"}
	if _, ver, ok := c.PeekStale(kNorm); !ok || ver != 1 {
		t.Fatalf("normalized family lookup = (%d, %v), want hit at v1", ver, ok)
	}
	// Different evidence is a different family.
	kEv := k2
	kEv.Evidence = "other"
	if _, _, ok := c.PeekStale(kEv); ok {
		t.Fatal("different evidence must not share a family")
	}

	// After v2 generates, the family points at the newest version.
	if _, _, err := c.DoVersioned(ctx, k2, func() (*pipeline.Record, error) {
		return record("SELECT v2"), nil
	}); err != nil {
		t.Fatal(err)
	}
	k3 := k1
	k3.Version = 3
	rec, ver, ok = c.PeekStale(k3)
	if !ok || ver != 2 || rec.FinalSQL != "SELECT v2" {
		t.Fatalf("stale after v2 insert = (%q, %d, %v), want v2", rec.FinalSQL, ver, ok)
	}
	if st := c.Stats(); st.StaleServed != 3 {
		t.Fatalf("StaleServed = %d, want 3", st.StaleServed)
	}
}

func TestStaleIndexClearedOnEviction(t *testing.T) {
	c := New(2)
	ctx := context.Background()
	gen := func(sql string) func() (*pipeline.Record, error) {
		return func() (*pipeline.Record, error) { return record(sql), nil }
	}
	kA := RequestKey{Database: "db", Version: 1, Question: "a"}
	kB := RequestKey{Database: "db", Version: 1, Question: "b"}
	kC := RequestKey{Database: "db", Version: 1, Question: "c"}
	c.DoVersioned(ctx, kA, gen("a"))
	c.DoVersioned(ctx, kB, gen("b"))
	c.DoVersioned(ctx, kC, gen("c")) // evicts a
	if _, _, ok := c.PeekStale(RequestKey{Database: "db", Version: 5, Question: "a"}); ok {
		t.Fatal("family index must not survive its entry's eviction")
	}
	if _, ver, ok := c.PeekStale(RequestKey{Database: "db", Version: 5, Question: "b"}); !ok || ver != 1 {
		t.Fatalf("family b should still hit at v1, got (%d, %v)", ver, ok)
	}
	// A stale hit promotes: b is now MRU, so inserting d evicts c, not b.
	c.DoVersioned(ctx, RequestKey{Database: "db", Version: 1, Question: "d"}, gen("d"))
	if _, _, ok := c.PeekStale(RequestKey{Database: "db", Version: 5, Question: "c"}); ok {
		t.Fatal("c should have been evicted after b's stale-hit promotion")
	}
	if _, _, ok := c.PeekStale(RequestKey{Database: "db", Version: 5, Question: "b"}); !ok {
		t.Fatal("b should have survived via stale-hit promotion")
	}
}
