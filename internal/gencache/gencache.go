// Package gencache implements the versioned generation cache of the serving
// layer: a bounded LRU of completed pipeline Records keyed by
// (database, knowledge version, normalized question, evidence), with
// singleflight coalescing so N concurrent identical requests run one
// generation and share its result.
//
// The knowledge version in the key is the invalidation contract. An
// approved SME merge hot-swaps a freshly built engine whose knowledge set
// carries a strictly greater version (every mutation bumps it, including
// checkpoint reverts), so every post-swap request computes a new key and
// misses — stale entries are never served and never need an explicit flush;
// the LRU simply ages them out.
//
// Two result classes are deliberately not cached:
//
//   - errors (cancellation, operator failures): they describe one request's
//     fate, not the question's answer, and must not poison later requests;
//   - traced requests are expected to bypass the cache entirely (the caller
//     checks, since the trace hook rides on its context): a per-operator
//     timing hook observes an actual pipeline run, and a cache hit runs no
//     operators.
//
// Records whose final SQL failed ARE cached: generation is deterministic
// for a fixed knowledge version, so the same question reproduces the same
// failure — re-running the pipeline to rediscover it is pure waste.
package gencache

import (
	"container/list"
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"

	"genedit/internal/generr"
	"genedit/internal/pipeline"
	"genedit/internal/task"
)

// Cache is the versioned generation cache. It is safe for concurrent use.
// Cached *pipeline.Record values are shared across all callers and must be
// treated as read-only (the serving layer already documents Records as
// immutable traces).
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *entry
	items   map[string]*list.Element
	flights map[string]*flight
	// families maps a versionless request key to the newest cached element
	// for that (database, question, evidence) across knowledge versions —
	// the stale-serve index. Admission sheds consult it to degrade
	// gracefully: a previous version's answer beats a 503.
	families map[string]*list.Element

	hits        uint64 // LRU lookups that found a completed record
	misses      uint64 // lookups that started a new generation (flight leaders)
	coalesced   uint64 // lookups that joined an in-flight generation
	staleServed uint64 // PeekStale lookups that found a record
}

type entry struct {
	key string
	rec *pipeline.Record
	// family and version are set for version-aware insertions (DoVersioned)
	// and power the stale-serve index; family == "" for plain Do entries.
	family  string
	version int
}

// flight is one in-progress generation; waiters block on done.
type flight struct {
	done chan struct{}
	rec  *pipeline.Record
	err  error
	// family/version tag the record for the stale index when it caches.
	family  string
	version int
}

// New returns a cache bounded to capacity records. Capacity must be
// positive — the serving layer represents "cache disabled" as a nil *Cache,
// not a zero-capacity one.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("gencache: capacity must be positive")
	}
	return &Cache{
		cap:      capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element, capacity),
		flights:  make(map[string]*flight),
		families: make(map[string]*list.Element),
	}
}

// RequestKey is the structured form of one request's cache identity. ID is
// the exact-version cache key (what Do keys flights and entries on); Family
// drops the version, naming the request across knowledge versions — the
// stale-serve lookup key.
type RequestKey struct {
	Database string
	Version  int
	Question string
	Evidence string
}

// ID returns the full, version-qualified cache key.
func (k RequestKey) ID() string {
	return Key(k.Database, k.Version, k.Question, k.Evidence)
}

// Family returns the versionless key identifying this request across
// knowledge versions.
func (k RequestKey) Family() string {
	q := NormalizeQuestion(k.Question)
	var b strings.Builder
	b.Grow(len(k.Database) + len(q) + len(k.Evidence) + 16)
	writeLenPrefixed(&b, k.Database)
	writeLenPrefixed(&b, q)
	writeLenPrefixed(&b, k.Evidence)
	return b.String()
}

func writeLenPrefixed(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte('|')
	b.WriteString(s)
}

// Key builds the cache key for one request. The question is normalized
// (lower-cased, whitespace runs collapsed) so trivially re-spelled duplicates
// of a hot question share an entry; evidence is taken verbatim. Components
// are length-prefixed so no spelling of one tuple can alias another.
func Key(database string, version int, question, evidence string) string {
	q := NormalizeQuestion(question)
	var b strings.Builder
	b.Grow(len(database) + len(q) + len(evidence) + 24)
	writeLenPrefixed(&b, database)
	writeLenPrefixed(&b, strconv.Itoa(version))
	writeLenPrefixed(&b, q)
	writeLenPrefixed(&b, evidence)
	return b.String()
}

// NormalizeQuestion lower-cases a question and collapses runs of whitespace
// to single spaces (leading/trailing runs dropped). Two questions with the
// same normal form are served the same cached record.
//
// This is deliberately task.QuestionKey: the simulated model resolves
// questions through the registry at exactly that granularity, so the cache
// key can never be coarser than the model's own question resolution. Making
// this function coarser than QuestionKey (e.g. stripping punctuation) would
// let two questions with different registered answers share one entry.
func NormalizeQuestion(q string) string {
	return task.QuestionKey(q)
}

// Do returns the cached record for key, joins an in-flight generation for
// it, or — as the flight leader — runs generate and publishes the result.
// The cached bool reports whether the record came from the cache or a
// shared flight rather than this caller's own generate run.
//
// Error contract: a leader's error is returned to the leader and to every
// waiter that joined its flight, and nothing is cached. The exception is a
// leader canceled by its own context: waiters whose contexts are still live
// retry (one becomes the next leader) instead of inheriting a cancellation
// that was never theirs. A waiter whose own ctx expires stops waiting and
// returns its cancellation; the flight keeps running for the others.
func (c *Cache) Do(ctx context.Context, key string, generate func() (*pipeline.Record, error)) (*pipeline.Record, bool, error) {
	return c.do(ctx, key, "", 0, generate)
}

// DoVersioned is Do with the structured key: identical semantics, plus the
// cached record is registered in the stale-serve family index under its
// knowledge version, making it eligible for PeekStale after the version
// moves on.
func (c *Cache) DoVersioned(ctx context.Context, key RequestKey, generate func() (*pipeline.Record, error)) (*pipeline.Record, bool, error) {
	return c.do(ctx, key.ID(), key.Family(), key.Version, generate)
}

func (c *Cache) do(ctx context.Context, key, family string, version int, generate func() (*pipeline.Record, error)) (*pipeline.Record, bool, error) {
	for {
		c.mu.Lock()
		if el, ok := c.items[key]; ok {
			c.hits++
			c.order.MoveToFront(el)
			rec := el.Value.(*entry).rec
			c.mu.Unlock()
			return rec, true, nil
		}
		if f, ok := c.flights[key]; ok {
			c.coalesced++
			c.mu.Unlock()
			select {
			case <-f.done:
				if f.err != nil {
					if errors.Is(f.err, generr.ErrCanceled) && ctx.Err() == nil {
						// Leader was canceled, we were not: retry (possibly
						// becoming the next leader). The retry iteration will
						// count this request again, so take back the
						// coalesced increment — each request contributes
						// exactly one counter tick.
						c.mu.Lock()
						c.coalesced--
						c.mu.Unlock()
						continue
					}
					return nil, false, f.err
				}
				return f.rec, true, nil
			case <-ctx.Done():
				return nil, false, generr.Canceled(ctx.Err())
			}
		}
		c.misses++
		f := &flight{done: make(chan struct{}), family: family, version: version}
		c.flights[key] = f
		c.mu.Unlock()

		// The flight must resolve even if generate panics (e.g. recovered
		// by an http handler above us): publish whatever state we have and
		// wake the waiters, then let the panic continue.
		completed := false
		defer func() {
			if !completed {
				if f.err == nil && f.rec == nil {
					f.err = errors.New("gencache: generation panicked")
				}
				c.finishFlight(key, f)
			}
		}()
		f.rec, f.err = generate()
		completed = true
		c.finishFlight(key, f)
		return f.rec, false, f.err
	}
}

// finishFlight retires a flight, caching successful records, and wakes its
// waiters.
func (c *Cache) finishFlight(key string, f *flight) {
	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil && f.rec != nil {
		c.insertLocked(key, f.family, f.version, f.rec)
	}
	c.mu.Unlock()
	close(f.done)
}

// insertLocked adds (or refreshes) one completed record under c.mu,
// maintaining the family index: a family always points at its newest-version
// cached element, and an evicted element's family pointer is cleared so the
// index never outlives the LRU entries it references.
func (c *Cache) insertLocked(key, family string, version int, rec *pipeline.Record) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		e.rec = rec
		c.order.MoveToFront(el)
		c.indexFamilyLocked(el, e)
		return
	}
	el := c.order.PushFront(&entry{key: key, rec: rec, family: family, version: version})
	c.items[key] = el
	c.indexFamilyLocked(el, el.Value.(*entry))
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*entry)
		delete(c.items, e.key)
		if e.family != "" && c.families[e.family] == oldest {
			delete(c.families, e.family)
		}
	}
}

// indexFamilyLocked points e's family at el unless a strictly newer version
// is already indexed (versions only move forward, so this only triggers in
// odd interleavings; the guard keeps the index monotonic regardless).
func (c *Cache) indexFamilyLocked(el *list.Element, e *entry) {
	if e.family == "" {
		return
	}
	if cur, ok := c.families[e.family]; ok && cur.Value.(*entry).version > e.version {
		return
	}
	c.families[e.family] = el
}

// PeekStale returns the newest cached record for the request's family,
// regardless of knowledge version — the graceful-degradation path for shed
// requests. The returned version says which knowledge version produced the
// record, so callers can tag the response as stale. A hit counts as a use:
// the entry is promoted in the LRU (hot questions keep their stale answer
// alive through an overload), and StaleServed is incremented.
func (c *Cache) PeekStale(key RequestKey) (*pipeline.Record, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.families[key.Family()]
	if !ok {
		return nil, 0, false
	}
	e := el.Value.(*entry)
	c.order.MoveToFront(el)
	c.staleServed++
	return e.rec, e.version, true
}

// FailedRecords returns the cached records whose final SQL failed, newest
// (most recently used) first. The background failure miner scans these as
// its live-traffic signal: failed records are cached by contract (see the
// package comment), so the cache doubles as a bounded log of what live
// questions the current knowledge version cannot answer. The returned
// records are the shared cached values and must be treated as read-only.
func (c *Cache) FailedRecords() []*pipeline.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*pipeline.Record
	for el := c.order.Front(); el != nil; el = el.Next() {
		if rec := el.Value.(*entry).rec; rec != nil && !rec.OK {
			out = append(out, rec)
		}
	}
	return out
}

// Peek returns the completed record cached under key without joining or
// starting a flight and without promoting the entry in the LRU — a pure
// read for inspection paths (the failure miner's staleness check).
func (c *Cache) Peek(key string) (*pipeline.Record, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry).rec, true
	}
	return nil, false
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits counts requests served straight from the LRU.
	Hits uint64 `json:"hits"`
	// Misses counts requests that ran a generation (flight leaders).
	Misses uint64 `json:"misses"`
	// Coalesced counts requests that joined another request's in-flight
	// generation instead of running their own.
	Coalesced uint64 `json:"coalesced"`
	// StaleServed counts PeekStale hits — shed requests degraded onto a
	// previous knowledge version's cached record instead of failing.
	StaleServed uint64 `json:"stale_served"`
	// Entries and Capacity describe the LRU's current fill and bound.
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// Stats reports the cache's counters. Safe to call concurrently with Do.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Coalesced:   c.coalesced,
		StaleServed: c.staleServed,
		Entries:     c.order.Len(),
		Capacity:    c.cap,
	}
}
